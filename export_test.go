package metascritic

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"metascritic/internal/mat"
)

func TestExportRoundTrip(t *testing.T) {
	p, res := topoResult(t)
	exp := p.Export(res, 0.5)
	if exp.Metro == "" || exp.EffectiveRank != res.Rank {
		t.Fatalf("export metadata wrong: %+v", exp)
	}
	if len(exp.MemberASNs) != len(res.Members) {
		t.Fatalf("member count mismatch")
	}
	if len(exp.Links) == 0 {
		t.Fatalf("no links exported")
	}
	asnSet := map[int]bool{}
	for _, a := range exp.MemberASNs {
		asnSet[a] = true
	}
	for _, l := range exp.Links {
		if !asnSet[l.ASNA] || !asnSet[l.ASNB] {
			t.Fatalf("link references non-member ASN: %+v", l)
		}
		if l.Rating < 0.5 && !l.Measured {
			t.Fatalf("link below minRating exported: %+v", l)
		}
	}

	var buf bytes.Buffer
	if err := exp.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Export
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Metro != exp.Metro || len(back.Links) != len(exp.Links) {
		t.Fatalf("round trip lost data")
	}
}

func TestExportContext(t *testing.T) {
	p, res := topoResult(t)
	ctx := context.Background()

	exp, err := p.ExportContext(ctx, res, 0.5)
	if err != nil {
		t.Fatalf("ExportContext on a valid result: %v", err)
	}
	plain := p.Export(res, 0.5)
	if exp.Metro != plain.Metro || len(exp.Links) != len(plain.Links) {
		t.Fatalf("ExportContext diverges from Export: %d vs %d links", len(exp.Links), len(plain.Links))
	}

	if _, err := p.ExportContext(ctx, nil, 0.5); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("nil result: got %v, want ErrInvalidConfig", err)
	}
	if _, err := p.ExportContext(ctx, res, math.NaN()); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("NaN minRating: got %v, want ErrInvalidConfig", err)
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := p.ExportContext(cancelled, res, 0.5); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: got %v, want context.Canceled", err)
	}

	// A corrupted (asymmetric) ratings matrix must be rejected, and the
	// check must not mutate the caller's result.
	bad := *res
	bad.Ratings = &mat.Matrix{
		Rows: res.Ratings.Rows,
		Cols: res.Ratings.Cols,
		Data: append([]float64(nil), res.Ratings.Data...),
	}
	bad.Ratings.Set(0, 1, bad.Ratings.At(0, 1)+1)
	if _, err := p.ExportContext(ctx, &bad, 0.5); err == nil {
		t.Fatalf("asymmetric ratings accepted")
	} else if errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("asymmetry is corruption, not misconfiguration: %v", err)
	}
}
