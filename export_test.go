package metascritic

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestExportRoundTrip(t *testing.T) {
	p, res := topoResult(t)
	exp := p.Export(res, 0.5)
	if exp.Metro == "" || exp.EffectiveRank != res.Rank {
		t.Fatalf("export metadata wrong: %+v", exp)
	}
	if len(exp.MemberASNs) != len(res.Members) {
		t.Fatalf("member count mismatch")
	}
	if len(exp.Links) == 0 {
		t.Fatalf("no links exported")
	}
	asnSet := map[int]bool{}
	for _, a := range exp.MemberASNs {
		asnSet[a] = true
	}
	for _, l := range exp.Links {
		if !asnSet[l.ASNA] || !asnSet[l.ASNB] {
			t.Fatalf("link references non-member ASN: %+v", l)
		}
		if l.Rating < 0.5 && !l.Measured {
			t.Fatalf("link below minRating exported: %+v", l)
		}
	}

	var buf bytes.Buffer
	if err := exp.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Export
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Metro != exp.Metro || len(back.Links) != len(exp.Links) {
		t.Fatalf("round trip lost data")
	}
}
