package metascritic

// Streaming topology support: a pipeline built over a world at epoch e can
// absorb an evolution batch (netsim.World.Evolve / Apply) and keep serving
// without being rebuilt. ApplyEvolution mirrors the batch onto every layer
// the pipeline owns — the BGP topology and route cache, the address plan,
// the probe hitlist and the observation store's evidence epoch — after
// which Rescore re-derives a metro's result from the accumulated evidence
// at a fraction of a full run's cost: no measurements, no rank sweep, no
// hyperparameter grid, and an ALS warm-started from the previous factors.

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"metascritic/internal/als"
	"metascritic/internal/netsim"
)

// EvolutionStats summarizes what absorbing one batch did to the pipeline.
type EvolutionStats struct {
	// Epoch is the world (and evidence) epoch after the batch.
	Epoch uint32
	// Events is the number of events in the batch.
	Events int
	// NewASes is the number of AS arrivals in the batch.
	NewASes int
	// Invalidated is the number of cached route views dropped; Retained is
	// the number that survived the scoped invalidation (0 when the AS index
	// space grew and the whole cache had to go).
	Invalidated int
	Retained    int
	// NewAddresses is the number of interface/IXP-LAN addresses the
	// registry allocated for new presences.
	NewAddresses int
}

// Evolve draws an evolution batch from the pipeline's world (consuming
// rng exactly like netsim.World.Evolve), applies it to the world, and
// mirrors it onto the pipeline. It is the one-call form of
// World.Evolve + ApplyEvolution.
func (p *Pipeline) Evolve(rng *rand.Rand, spec netsim.EvolveSpec) (*netsim.EventBatch, EvolutionStats, error) {
	batch, err := p.World.Evolve(rng, spec)
	if err != nil {
		return nil, EvolutionStats{}, err
	}
	st, err := p.ApplyEvolution(batch)
	return batch, st, err
}

// ApplyEvolution mirrors an already-applied evolution batch onto the
// pipeline's derived state. The world must be at the batch's epoch (the
// caller ran World.Evolve, or replayed the batch with World.Apply); the
// graph the observation store shares with the world is therefore already
// mutated, and this call brings the rest of the pipeline up to date:
//
//   - the traceroute engine's BGP topology absorbs the link churn in
//     place (grown first when ASes arrived);
//   - the route cache drops exactly the destinations the batch can have
//     re-routed (scoped invalidation; everything after an arrival);
//   - the address registry extends to new presences without renumbering;
//   - newly arrived responsive ASes join the hitlist;
//   - the observation store advances its evidence epoch, so records that
//     stop being re-observed age toward demotion.
//
// It must not run concurrently with traceroute simulation or estimation
// (the serving layer holds its world lock across the call).
func (p *Pipeline) ApplyEvolution(batch *netsim.EventBatch) (EvolutionStats, error) {
	w := p.World
	if w.Epoch != batch.Epoch {
		return EvolutionStats{}, fmt.Errorf("metascritic: %w: world is at epoch %d, batch is for epoch %d (apply the batch to the world first)",
			ErrInvalidConfig, w.Epoch, batch.Epoch)
	}
	topo := p.Engine.Cache.Topology()
	oldN := topo.N()
	grew := w.G.N() > oldN
	if grew {
		topo.Grow(w.G.N())
	}

	nextNew := oldN
	for _, ev := range batch.Events {
		switch ev.Kind {
		case netsim.LinkDown:
			// Only the pair's last interconnection removes the AS-level
			// link; the post-apply relationship map is the arbiter.
			if _, still := w.RelOf(ev.A, ev.B); !still {
				topo.RemoveP2P(ev.A, ev.B)
			}
		case netsim.Depeer:
			topo.RemoveP2P(ev.A, ev.B)
		case netsim.LinkUp:
			// A LinkUp can add metros to a link that already exists (or
			// that an earlier event in this batch created); the AS-level
			// topology is metro-blind, so only the first materialization
			// counts.
			if !topo.HasP2P(ev.A, ev.B) {
				topo.AddP2P(ev.A, ev.B)
			}
		case netsim.NewASArrival:
			// Arrivals were assigned indices sequentially in event order.
			idx := nextNew
			nextNew++
			for _, prov := range ev.New.Providers {
				topo.AddC2P(idx, prov)
			}
		case netsim.IXPJoin:
			// Route-server peerings arrive as explicit LinkUp events; the
			// membership itself does not change AS-level routing.
		}
	}
	if nextNew != w.G.N() {
		return EvolutionStats{}, fmt.Errorf("metascritic: ApplyEvolution: batch carries %d arrivals but the world grew by %d ASes (batch already applied elsewhere?)",
			nextNew-oldN, w.G.N()-oldN)
	}

	st := EvolutionStats{
		Epoch:   batch.Epoch,
		Events:  len(batch.Events),
		NewASes: nextNew - oldN,
	}
	if grew {
		st.Invalidated = p.Engine.Cache.InvalidateAll()
	} else {
		before := p.Engine.Cache.Stats().Retained
		st.Invalidated = p.Engine.Cache.Invalidate(batch.TouchedLinks())
		st.Retained = int(p.Engine.Cache.Stats().Retained - before)
	}
	st.NewAddresses = p.Engine.Reg.Extend()
	for i := oldN; i < w.G.N(); i++ {
		if w.Responsive[i] {
			p.Hitlist = append(p.Hitlist, i)
		}
	}
	p.Store.AdvanceEpoch()
	return st, nil
}

// Rescore re-derives a metro's result from the evidence accumulated so
// far, reusing the warm state of a previous full run: prev's estimated
// rank and tuned hyperparameters stand in for the rank-estimation loop
// and the tune grid, prev's ALS factors warm-start the completion, and no
// measurements are issued. It is the incremental re-score path of the
// streaming pipeline — after ApplyEvolution and a round of post-churn
// traces, the estimate it returns is byte-identical to what a cold full
// rerun over the same store would measure (obs.Store.Estimate is a pure
// function of the store), at a small fraction of the cost.
//
// Only cfg.NegPolicy, cfg.Rank.Iterations, cfg.Seed and the validation
// rules are consulted; measurement knobs are ignored. The metro's member
// list is re-read from the graph, so ASes that arrived since prev are
// scored too (growth makes prev's factors dimensionally incompatible, in
// which case the completion falls back to a cold start — still without
// rank sweep or tuning).
func (p *Pipeline) Rescore(ctx context.Context, prev *Result, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("metascritic: metro %d: %w", prev.Metro, err)
	}
	if prev.Ratings == nil || prev.Rank <= 0 {
		return nil, fmt.Errorf("metascritic: %w: Rescore needs a completed previous result for metro %d", ErrInvalidConfig, prev.Metro)
	}
	g := p.World.G
	metro := prev.Metro
	if metro < 0 || metro >= len(g.Metros) {
		return nil, fmt.Errorf("metascritic: %w: metro index %d out of range [0,%d)", ErrInvalidConfig, metro, len(g.Metros))
	}
	if err := ctx.Err(); err != nil {
		return nil, abortErr(metro, "rescore", err)
	}
	members := g.Metros[metro].Members
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{
		Metro:   metro,
		Members: members,
		Rank:    prev.Rank,
	}

	estStart := time.Now()
	est := p.Store.Estimate(metro, members, cfg.NegPolicy)
	res.Timings.Estimate = time.Since(estStart)
	res.Estimate = est

	phaseStart := time.Now()
	features := BuildFeatures(g, members)
	opts := als.Options{
		Rank:          prev.Rank,
		Lambda:        prev.Lambda,
		FeatureWeight: prev.FeatureWeight,
		Iterations:    cfg.Rank.Iterations + 5,
		Seed:          cfg.Seed,
	}
	res.Lambda = opts.Lambda
	res.FeatureWeight = opts.FeatureWeight
	var prob *als.Problem
	if opts.FeatureWeight > 0 {
		prob = als.NewProblem(est.E, est.Mask, features)
	} else {
		prob = als.NewProblem(est.E, est.Mask, nil)
	}
	res.Ratings, res.Factors = prob.CompleteFactors(opts, nil, prev.Factors)
	res.Timings.Completion = time.Since(phaseStart)
	if err := ctx.Err(); err != nil {
		return res, abortErr(metro, "rescore completion", err)
	}

	phaseStart = time.Now()
	res.Threshold = p.pickThreshold(est, prob, opts, rng)
	res.Timings.Threshold = time.Since(phaseStart)
	return res, nil
}
