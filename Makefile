GO ?= go

.PHONY: build test check bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: vet everything, then run the engine
# package (and the rest of the tree) under the race detector. The
# engine runs metros concurrently over shared read-only state, so a
# race-clean pass is part of its contract.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/engine/... ./...

bench:
	$(GO) test -bench RunAll -benchtime 2x -run '^$$' ./internal/engine/

clean:
	$(GO) clean ./...
