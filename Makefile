GO ?= go

# Perf-trajectory benchmarks (see DESIGN.md §Performance): size via
# METASCRITIC_BENCH_SCALE, select the completion / rank-sweep / propagation
# micro-benchmarks, record machine-readable results for later PRs to diff.
BENCH_SCALE ?= 0.05
BENCH_PATTERN = BenchmarkComplete|BenchmarkRankEstimate|BenchmarkPropagate$$|BenchmarkPropagateInto|BenchmarkRoutesToAll|BenchmarkVisibleLinks|BenchmarkRunMetro|BenchmarkStore|BenchmarkEstimateHandler|BenchmarkSnapshotLoad
BENCH_PKGS = . ./internal/als ./internal/rank ./internal/bgp ./internal/obs ./internal/api ./internal/api/snapshot
BENCH_OUT ?= BENCH_PR6.json
BENCH_BASELINE ?=

.PHONY: build test check bench bench-engine race-measure race-obs race-bgp race-api clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: vet everything, then run the engine
# package (and the rest of the tree) under the race detector. The
# engine runs metros concurrently over shared read-only state, so a
# race-clean pass is part of its contract.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/engine/... ./...

# bench runs the hot-path micro-benchmarks at the CI trajectory scale and
# writes $(BENCH_OUT). Set BENCH_BASELINE to a prior run's text output to
# embed before/after speedups.
bench:
	METASCRITIC_BENCH_SCALE=$(BENCH_SCALE) $(GO) test -run '^$$' \
		-bench '$(BENCH_PATTERN)' -benchmem -benchtime 2s $(BENCH_PKGS) \
		| tee /tmp/metascritic_bench.txt
	$(GO) run ./cmd/benchjson -in /tmp/metascritic_bench.txt \
		$(if $(BENCH_BASELINE),-before $(BENCH_BASELINE)) \
		-scale $(BENCH_SCALE) -out $(BENCH_OUT)

bench-engine:
	$(GO) test -bench RunAll -benchtime 2x -run '^$$' ./internal/engine/

# race-measure exercises the speculative measurement pipeline (fan-out,
# ordered commit, prefetch, parallel tune/eval helpers) under the race
# detector — the concurrency contract of measure.go is part of tier-1.
race-measure:
	$(GO) test -race . ./internal/traceroute/ ./internal/engine/ \
		./internal/als/ ./internal/eval/ ./internal/mat/

# race-obs exercises the evidence layer's copy-on-write snapshots under
# the race detector: concurrent Clones plus divergent base/snapshot
# mutation (the engine's isolation pattern) must be race-free.
race-obs:
	$(GO) test -race ./internal/obs/

# race-bgp exercises the routing substrate's concurrency contract: the
# sharded route cache's singleflight, the batched RoutesToAll fan-out on
# overlapping destination sets, and per-worker propagation scratches.
race-bgp:
	$(GO) test -race ./internal/bgp/

# race-api exercises the serving daemon under the race detector: readers
# on the atomically-swapped State while runs commit, middleware
# coalescing/limiting, and the run manager's drain/cancel paths.
race-api:
	$(GO) test -race ./internal/api/... ./internal/engine/ ./cmd/metascriticd/

clean:
	$(GO) clean ./...
