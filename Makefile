GO ?= go

# Perf-trajectory benchmarks (see DESIGN.md §Performance): size via
# METASCRITIC_BENCH_SCALE, select the completion / rank-sweep / propagation
# micro-benchmarks, record machine-readable results for later PRs to diff.
BENCH_SCALE ?= 0.05
BENCH_PATTERN = BenchmarkComplete|BenchmarkRankEstimate|BenchmarkPropagate$$|BenchmarkPropagateInto|BenchmarkRoutesToAll|BenchmarkVisibleLinks|BenchmarkRunMetro|BenchmarkRunAll|BenchmarkStore|BenchmarkEstimateHandler|BenchmarkSnapshotLoad|BenchmarkGenerate|BenchmarkEvolve|BenchmarkIncrementalRescore
BENCH_PKGS = . ./internal/als ./internal/rank ./internal/bgp ./internal/obs ./internal/api ./internal/api/snapshot ./internal/engine ./internal/netsim
BENCH_OUT ?= BENCH_PR10.json
BENCH_BASELINE ?=
# The most recent recorded report other than BENCH_OUT becomes the
# default baseline, so every new report carries before/after deltas
# against its predecessor (override with BENCH_BASELINE=<bench text>).
BENCH_PREV = $(lastword $(sort $(filter-out $(BENCH_OUT),$(wildcard BENCH_PR*.json))))
PROFILE_DIR ?= profiles

.PHONY: build test check bench bench-engine bench-100k bench-compare profile race-run race-measure race-obs race-bgp race-api race-netsim race-stream clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: vet everything, then run the engine
# package (and the rest of the tree) under the race detector. The
# engine runs metros concurrently over shared read-only state, so a
# race-clean pass is part of its contract.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/engine/... ./...

# bench runs the hot-path micro-benchmarks at the CI trajectory scale and
# writes $(BENCH_OUT). The baseline defaults to the previous BENCH_PR*.json
# (so reports always carry before/after deltas); set BENCH_BASELINE to a
# prior run's text output to override.
# -p 1 serializes the per-package test binaries: by default go test
# runs them concurrently, which lets one package's benchmark contend
# with another's and inflates wall-clock numbers by 20-40%.
# (No pipe into tee here: under plain sh the pipeline would report
# tee's exit status and a benchmark failure would silently produce a
# partial report.)
bench:
	METASCRITIC_BENCH_SCALE=$(BENCH_SCALE) $(GO) test -p 1 -run '^$$' \
		-bench '$(BENCH_PATTERN)' -benchmem -benchtime 2s $(BENCH_PKGS) \
		> /tmp/metascritic_bench.txt || { cat /tmp/metascritic_bench.txt; exit 1; }
	cat /tmp/metascritic_bench.txt
	$(GO) run ./cmd/benchjson -in /tmp/metascritic_bench.txt \
		$(if $(BENCH_BASELINE),-before $(BENCH_BASELINE),$(if $(BENCH_PREV),-before-json $(BENCH_PREV))) \
		-scale $(BENCH_SCALE) -out $(BENCH_OUT)

bench-engine:
	$(GO) test -bench RunAll -benchtime 2x -run '^$$' ./internal/engine/

# bench-100k runs the opt-in Internet-scale end-to-end benchmark: one
# full RunMetro against a 100k-AS InternetMetros world under a bounded
# route-cache budget, reporting wall-clock, peak RSS and eviction
# counters (see runmetro100k_bench_test.go for the env knobs). Minutes
# of wall-clock on a single core — not part of `make bench`.
BENCH_100K_ASES ?= 100000
BENCH_100K_CACHE_MB ?= 256
bench-100k:
	METASCRITIC_BENCH_100K=1 METASCRITIC_BENCH_ASES=$(BENCH_100K_ASES) \
	METASCRITIC_BENCH_CACHE_MB=$(BENCH_100K_CACHE_MB) \
	$(GO) test -run '^$$' -bench 'BenchmarkRunMetro100k' -benchmem \
		-benchtime 1x -timeout 2h .

# bench-compare diffs the two most recent recorded reports and fails on
# a >10% wall-clock or >15% peak-RSS regression in any end-to-end
# benchmark (RunMetro / RunAll) — the pre-merge perf gate. When the
# newer report embeds a same-session baseline (bench run with
# BENCH_BASELINE=<bench text of the prior tree re-run on this machine>),
# the gate compares against that instead of the older report's
# absolutes, so hardware drift between recording sessions cannot fake a
# regression.
bench-compare:
	@set -- $$(ls BENCH_PR*.json 2>/dev/null | sort -V | tail -n 2); \
	if [ $$# -lt 2 ]; then echo "bench-compare: need at least two BENCH_PR*.json reports"; exit 1; fi; \
	echo "comparing $$1 -> $$2"; \
	$(GO) run ./cmd/benchjson -compare -rss-threshold 0.15 $$1 $$2

# profile captures CPU and heap profiles from a scaled-down end-to-end
# RunAll batch, plus the test binary pprof needs to symbolize them:
#	go tool pprof $(PROFILE_DIR)/engine.test $(PROFILE_DIR)/runall.cpu.pprof
profile:
	mkdir -p $(PROFILE_DIR)
	METASCRITIC_BENCH_SCALE=0.15 $(GO) test -run '^$$' \
		-bench 'BenchmarkRunAll/metros=4/workers=4' -benchtime 3x \
		-cpuprofile $(PROFILE_DIR)/runall.cpu.pprof \
		-memprofile $(PROFILE_DIR)/runall.mem.pprof \
		-o $(PROFILE_DIR)/engine.test ./internal/engine/

# race-run vets and races the end-to-end run path: one multi-metro batch
# and the speculative single-metro pipeline, both under the race
# detector at a small but non-trivial scale.
race-run:
	$(GO) vet . ./internal/engine/
	METASCRITIC_BENCH_SCALE=0.15 $(GO) test -race -run '^$$' \
		-bench 'BenchmarkRunAll/metros=4/workers=4|BenchmarkRunMetro' \
		-benchtime 1x . ./internal/engine/

# race-measure exercises the speculative measurement pipeline (fan-out,
# ordered commit, prefetch, parallel tune/eval helpers) under the race
# detector — the concurrency contract of measure.go is part of tier-1.
race-measure:
	$(GO) test -race . ./internal/traceroute/ ./internal/engine/ \
		./internal/als/ ./internal/eval/ ./internal/mat/

# race-obs exercises the evidence layer's copy-on-write snapshots under
# the race detector: concurrent Clones plus divergent base/snapshot
# mutation (the engine's isolation pattern) must be race-free.
race-obs:
	$(GO) test -race ./internal/obs/

# race-bgp exercises the routing substrate's concurrency contract: the
# sharded route cache's singleflight, the batched RoutesToAll fan-out on
# overlapping destination sets, and per-worker propagation scratches.
race-bgp:
	$(GO) test -race ./internal/bgp/

# race-api exercises the serving daemon under the race detector: readers
# on the atomically-swapped State while runs commit, middleware
# coalescing/limiting, and the run manager's drain/cancel paths.
race-api:
	$(GO) test -race ./internal/api/... ./internal/engine/ ./cmd/metascriticd/

# race-netsim exercises the parallel world-generation path (metro-bucketed
# candidate enumeration over the worker pool) under the race detector,
# including the worker-count invariance test at several pool sizes.
race-netsim:
	$(GO) test -race ./internal/netsim/ ./internal/asgraph/ ./internal/graphmetrics/

# race-stream vets and races the streaming path end to end: netsim
# evolution (replayable EventBatches), obs epoch advance / windowed
# refresh, the root Evolve/Rescore composition, and the daemon's ingest
# endpoint serving readers while churn is absorbed.
race-stream:
	$(GO) vet ./internal/netsim/ ./internal/obs/ ./internal/api/... .
	$(GO) test -race -run 'Evolve|Epoch|Stale|Stream|Rescore|Ingest' \
		./internal/netsim/ ./internal/obs/ ./internal/api/... .

clean:
	$(GO) clean ./...
