package metascritic

import "errors"

// Sentinel errors of the public API. Every error returned by Run (and the
// engine/serving layers built on it) wraps exactly one of these, so
// callers can branch with errors.Is instead of string matching:
//
//	res, err := pipe.Run(ctx, metro, cfg)
//	switch {
//	case errors.Is(err, metascritic.ErrInvalidConfig):   // reject: caller bug
//	case errors.Is(err, metascritic.ErrCanceled):        // aborted: retryable
//	case errors.Is(err, metascritic.ErrBudgetExhausted): // raise the budget
//	}
var (
	// ErrInvalidConfig is wrapped by every validation failure, so callers
	// can distinguish configuration mistakes from runtime failures.
	ErrInvalidConfig = errors.New("invalid config")

	// ErrCanceled is wrapped by every context-abort error. The same error
	// also wraps the context's own cause (context.Canceled or
	// context.DeadlineExceeded), so errors.Is matches either form.
	ErrCanceled = errors.New("run canceled")

	// ErrBudgetExhausted is wrapped when a measurement budget is too small
	// for the work it must cover: a strict-budget run (Config.StrictBudget)
	// whose budget ran dry before the bootstrap calibration completed, or a
	// serving-layer run submission exceeding the server's budget cap.
	ErrBudgetExhausted = errors.New("measurement budget exhausted")
)
