package report

import (
	"bytes"
	"strings"
	"testing"
)

type fakeTable struct {
	title  string
	header []string
	rows   [][]string
}

func (f fakeTable) TitleText() string    { return f.title }
func (f fakeTable) HeaderRow() []string  { return f.header }
func (f fakeTable) DataRows() [][]string { return f.rows }

func TestMarkdown(t *testing.T) {
	tbl := fakeTable{
		title:  "Demo",
		header: []string{"a", "b"},
		rows:   [][]string{{"1", "x|y"}, {"2"}},
	}
	var buf bytes.Buffer
	if err := Markdown(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### Demo", "| a | b |", "| --- | --- |", "x\\|y", "| 2 |  |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
	// Empty header renders nothing but the title.
	buf.Reset()
	if err := Markdown(&buf, fakeTable{title: "T"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "### T") {
		t.Fatalf("title missing")
	}
}

func TestCSV(t *testing.T) {
	tbl := fakeTable{
		header: []string{"a", "b"},
		rows:   [][]string{{"1", "two, three"}},
	}
	var buf bytes.Buffer
	if err := CSV(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a,b\n") || !strings.Contains(out, `"two, three"`) {
		t.Fatalf("csv wrong: %q", out)
	}
}
