// Package report renders experiment tables in exchange formats: GitHub
// markdown (for EXPERIMENTS.md-style documents) and CSV (for plotting the
// paper's figures with external tools).
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is the minimal shape report can render (matches eval.Table).
type Table interface {
	TitleText() string
	HeaderRow() []string
	DataRows() [][]string
}

// Markdown writes the table as a GitHub-flavored markdown table with its
// title as a heading.
func Markdown(w io.Writer, t Table) error {
	if title := t.TitleText(); title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", title); err != nil {
			return err
		}
	}
	header := t.HeaderRow()
	if len(header) == 0 {
		return nil
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		b.WriteByte('|')
		for _, c := range cells {
			b.WriteByte(' ')
			b.WriteString(escapeCell(c))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeRow(header); err != nil {
		return err
	}
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = "---"
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.DataRows() {
		padded := make([]string, len(header))
		copy(padded, row)
		if err := writeRow(padded); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// CSV writes the table as CSV (header first, no title).
func CSV(w io.Writer, t Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.HeaderRow()); err != nil {
		return err
	}
	for _, row := range t.DataRows() {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func escapeCell(s string) string {
	s = strings.ReplaceAll(s, "|", "\\|")
	return strings.ReplaceAll(s, "\n", " ")
}
