// Package graphmetrics validates the structural realism of generated
// AS-level topologies. It computes the metrics the topology-modeling
// literature uses to judge AS graphs — degree distribution with a
// power-law fit, average clustering by degree, k-core decomposition, and
// joint-degree assortativity — so every generated world ships with a
// report that can be compared against the known shape of the measured
// Internet (heavy-tailed degrees with α≈2.1, high clustering at low
// degree, deep k-cores concentrated in the transit core, disassortative
// mixing).
package graphmetrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Report is the structural summary of one undirected graph.
type Report struct {
	Nodes int
	Edges int

	// Degree distribution summary.
	AvgDegree float64
	MaxDegree int
	// DegreeCCDF holds (degree, fraction of nodes with degree ≥ d) at
	// logarithmically spaced degrees — compact enough to print, detailed
	// enough to see the tail shape.
	DegreeCCDF []CCDFPoint

	// PowerLawAlpha is the Clauset-style MLE exponent of the degree tail
	// (fit over degrees ≥ PowerLawDmin, chosen by minimizing the KS
	// distance). The measured Internet sits near α ≈ 2.1.
	PowerLawAlpha float64
	PowerLawDmin  int
	// PowerLawKS is the Kolmogorov–Smirnov distance of the fit.
	PowerLawKS float64

	// AvgClustering is the mean local clustering coefficient over nodes
	// with degree ≥ 2. ClusteringByDegree buckets it by log₂(degree).
	AvgClustering      float64
	ClusteringByDegree []DegreeBucket

	// MaxCore is the largest k with a non-empty k-core; CoreSizes[k] is
	// the number of nodes with coreness exactly k (index 0..MaxCore).
	MaxCore   int
	CoreSizes []int

	// Assortativity is the Pearson correlation of degrees across edge
	// endpoints (negative = disassortative, like the Internet).
	Assortativity float64
}

// CCDFPoint is one point of the degree CCDF.
type CCDFPoint struct {
	Degree int
	Frac   float64
}

// DegreeBucket aggregates a metric over nodes whose degree falls in
// [Lo, Hi].
type DegreeBucket struct {
	Lo, Hi int
	Nodes  int
	Value  float64
}

// clusteringSampleCap bounds the neighbor pairs examined per node when
// computing local clustering. Nodes up to this degree are exact; beyond
// it, clustering is estimated from a deterministic stride sample (the
// hypergiant-degree nodes would otherwise cost O(d²) set intersections).
const clusteringSampleCap = 128

// Compute builds a Report from an undirected adjacency list. Neighbor
// lists may be unsorted; self-loops are ignored and duplicate edges
// counted once.
func Compute(adj [][]int32) *Report {
	n := len(adj)
	r := &Report{Nodes: n}
	if n == 0 {
		return r
	}

	// Sorted, deduplicated neighbor sets.
	nbr := make([][]int32, n)
	totalDeg := 0
	for i, l := range adj {
		s := make([]int32, 0, len(l))
		for _, v := range l {
			if int(v) != i {
				s = append(s, v)
			}
		}
		sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		// Dedup in place.
		k := 0
		for j, v := range s {
			if j == 0 || v != s[j-1] {
				s[k] = v
				k++
			}
		}
		nbr[i] = s[:k]
		totalDeg += k
	}
	r.Edges = totalDeg / 2
	r.AvgDegree = float64(totalDeg) / float64(n)

	deg := make([]int, n)
	for i := range nbr {
		deg[i] = len(nbr[i])
		if deg[i] > r.MaxDegree {
			r.MaxDegree = deg[i]
		}
	}

	r.DegreeCCDF = degreeCCDF(deg)
	r.PowerLawAlpha, r.PowerLawDmin, r.PowerLawKS = fitPowerLaw(deg)
	r.AvgClustering, r.ClusteringByDegree = clustering(nbr, deg)
	coreness := Coreness(nbr)
	for _, c := range coreness {
		if c > r.MaxCore {
			r.MaxCore = c
		}
	}
	r.CoreSizes = make([]int, r.MaxCore+1)
	for _, c := range coreness {
		r.CoreSizes[c]++
	}
	r.Assortativity = assortativity(nbr, deg)
	return r
}

func degreeCCDF(deg []int) []CCDFPoint {
	n := len(deg)
	sorted := append([]int(nil), deg...)
	sort.Ints(sorted)
	var out []CCDFPoint
	for d := 1; d <= sorted[n-1]; d *= 2 {
		// Fraction of nodes with degree >= d.
		i := sort.SearchInts(sorted, d)
		out = append(out, CCDFPoint{Degree: d, Frac: float64(n-i) / float64(n)})
	}
	return out
}

// fitPowerLaw estimates the tail exponent with the discrete-approximation
// Clauset MLE α = 1 + n_tail / Σ ln(d/(dmin-1/2)), scanning candidate
// dmin values and keeping the one with the smallest KS distance between
// the empirical tail CCDF and the fitted power law.
func fitPowerLaw(deg []int) (alpha float64, dmin int, ks float64) {
	tail := make([]int, 0, len(deg))
	for _, d := range deg {
		if d > 0 {
			tail = append(tail, d)
		}
	}
	if len(tail) < 10 {
		return 0, 0, 0
	}
	sort.Ints(tail)
	// Candidate dmin values: distinct degrees in the lower half of the
	// distribution (capped so the scan stays cheap).
	cands := []int{}
	for i, d := range tail {
		if (i == 0 || d != tail[i-1]) && d >= 1 {
			cands = append(cands, d)
		}
		if len(cands) >= 24 || d > tail[len(tail)/2] {
			break
		}
	}
	best := math.Inf(1)
	for _, dm := range cands {
		i := sort.SearchInts(tail, dm)
		nt := len(tail) - i
		if nt < 10 {
			continue
		}
		sum := 0.0
		for _, d := range tail[i:] {
			sum += math.Log(float64(d) / (float64(dm) - 0.5))
		}
		if sum <= 0 {
			continue
		}
		a := 1 + float64(nt)/sum
		k := ksDistance(tail[i:], a, dm)
		if k < best {
			best, alpha, dmin, ks = k, a, dm, k
		}
	}
	return alpha, dmin, ks
}

// ksDistance compares the empirical CCDF of tail (sorted, all ≥ dmin)
// with the continuous power-law CCDF (d/dmin)^(1-α).
func ksDistance(tail []int, alpha float64, dmin int) float64 {
	n := len(tail)
	maxD := 0.0
	for i := 0; i < n; {
		j := i
		for j < n && tail[j] == tail[i] {
			j++
		}
		empCCDF := float64(n-i) / float64(n)
		model := math.Pow(float64(tail[i])/float64(dmin), 1-alpha)
		if d := math.Abs(empCCDF - model); d > maxD {
			maxD = d
		}
		i = j
	}
	return maxD
}

// clustering returns the average local clustering coefficient (degree ≥ 2
// nodes) and its breakdown by log₂-degree bucket. Neighbor lists must be
// sorted.
func clustering(nbr [][]int32, deg []int) (float64, []DegreeBucket) {
	type acc struct {
		n   int
		sum float64
	}
	buckets := map[int]*acc{}
	total, cnt := 0.0, 0
	for i := range nbr {
		d := deg[i]
		if d < 2 {
			continue
		}
		c := localClustering(nbr, i)
		total += c
		cnt++
		b := 0
		for v := d; v > 1; v >>= 1 {
			b++
		}
		if buckets[b] == nil {
			buckets[b] = &acc{}
		}
		buckets[b].n++
		buckets[b].sum += c
	}
	var keys []int
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var out []DegreeBucket
	for _, k := range keys {
		out = append(out, DegreeBucket{
			Lo:    1 << k,
			Hi:    1<<(k+1) - 1,
			Nodes: buckets[k].n,
			Value: buckets[k].sum / float64(buckets[k].n),
		})
	}
	if cnt == 0 {
		return 0, out
	}
	return total / float64(cnt), out
}

// localClustering computes (or, above clusteringSampleCap, estimates via
// a deterministic stride sample of neighbor pairs) the fraction of
// neighbor pairs of node i that are themselves adjacent.
func localClustering(nbr [][]int32, i int) float64 {
	s := nbr[i]
	d := len(s)
	if d < 2 {
		return 0
	}
	if d <= clusteringSampleCap {
		links := 0
		for a := 0; a < d; a++ {
			for b := a + 1; b < d; b++ {
				if hasSorted(nbr[s[a]], s[b]) {
					links++
				}
			}
		}
		return 2 * float64(links) / float64(d*(d-1))
	}
	// Deterministic pseudo-random pair sample: stride through the pair
	// space with a step co-prime to d so the sample spreads evenly.
	samples := clusteringSampleCap * 8
	links := 0
	stepA := d/3 + 1
	for k := 0; k < samples; k++ {
		a := (k * stepA) % d
		b := (a + 1 + (k*2654435761)%(d-1)) % d
		if a == b {
			b = (b + 1) % d
		}
		if hasSorted(nbr[s[a]], s[b]) {
			links++
		}
	}
	return float64(links) / float64(samples)
}

func hasSorted(s []int32, v int32) bool {
	i := sort.Search(len(s), func(j int) bool { return s[j] >= v })
	return i < len(s) && s[i] == v
}

// Coreness computes the k-core decomposition (Batagelj–Zaversnik bucket
// algorithm, O(V+E)): Coreness(nbr)[i] is the largest k such that node i
// belongs to the k-core. Neighbor lists must be deduplicated.
func Coreness(nbr [][]int32) []int {
	n := len(nbr)
	deg := make([]int, n)
	maxDeg := 0
	for i := range nbr {
		deg[i] = len(nbr[i])
		if deg[i] > maxDeg {
			maxDeg = deg[i]
		}
	}
	// Bucket sort nodes by degree.
	bin := make([]int, maxDeg+2)
	for _, d := range deg {
		bin[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		c := bin[d]
		bin[d] = start
		start += c
	}
	pos := make([]int, n)
	vert := make([]int, n)
	for i, d := range deg {
		pos[i] = bin[d]
		vert[pos[i]] = i
		bin[d]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	core := make([]int, n)
	copy(core, deg)
	for i := 0; i < n; i++ {
		v := vert[i]
		for _, u32 := range nbr[v] {
			u := int(u32)
			if core[u] > core[v] {
				// Move u one bucket down.
				du, pu := core[u], pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != w {
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, u
				}
				bin[du]++
				core[u]--
			}
		}
	}
	return core
}

// assortativity is the Pearson correlation coefficient of the degrees at
// either end of each edge (each edge counted in both directions, the
// standard Newson r). Returns 0 when degenerate (fewer than 2 distinct
// endpoint degrees).
func assortativity(nbr [][]int32, deg []int) float64 {
	var m, sx, sxx, sxy float64
	for i := range nbr {
		for _, j := range nbr[i] {
			x, y := float64(deg[i]), float64(deg[j])
			m++
			sx += x
			sxx += x * x
			sxy += x * y
		}
	}
	if m == 0 {
		return 0
	}
	mean := sx / m
	varX := sxx/m - mean*mean
	if varX <= 1e-12 {
		return 0
	}
	cov := sxy/m - mean*mean
	return cov / varX
}

// String renders the report as a compact human-readable block.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph: %d nodes, %d edges, avg degree %.2f, max degree %d\n",
		r.Nodes, r.Edges, r.AvgDegree, r.MaxDegree)
	fmt.Fprintf(&b, "power law: alpha=%.2f (dmin=%d, KS=%.3f)\n",
		r.PowerLawAlpha, r.PowerLawDmin, r.PowerLawKS)
	fmt.Fprintf(&b, "clustering: avg=%.3f over deg>=2\n", r.AvgClustering)
	for _, db := range r.ClusteringByDegree {
		fmt.Fprintf(&b, "  deg %d-%d: C=%.3f (n=%d)\n", db.Lo, db.Hi, db.Value, db.Nodes)
	}
	fmt.Fprintf(&b, "k-core: max core %d; core sizes tail:", r.MaxCore)
	lo := r.MaxCore - 4
	if lo < 0 {
		lo = 0
	}
	for k := lo; k <= r.MaxCore; k++ {
		fmt.Fprintf(&b, " %d:%d", k, r.CoreSizes[k])
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "assortativity: %.3f\n", r.Assortativity)
	ccdf := "degree CCDF:"
	for _, p := range r.DegreeCCDF {
		ccdf += fmt.Sprintf(" %d:%.4f", p.Degree, p.Frac)
	}
	b.WriteString(ccdf)
	b.WriteByte('\n')
	return b.String()
}
