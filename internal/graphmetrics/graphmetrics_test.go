package graphmetrics

import (
	"math"
	"math/rand"
	"testing"
)

// undirected builds a symmetric adjacency list from an edge list.
func undirected(n int, edges [][2]int) [][]int32 {
	adj := make([][]int32, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], int32(e[1]))
		adj[e[1]] = append(adj[e[1]], int32(e[0]))
	}
	return adj
}

func star(n int) [][]int32 {
	edges := make([][2]int, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{0, i})
	}
	return undirected(n, edges)
}

func clique(n int) [][]int32 {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return undirected(n, edges)
}

// twoCore: a 4-clique core (nodes 0-3) with a pendant path 4-5 hanging
// off node 0.
func twoCore() [][]int32 {
	edges := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {0, 4}, {4, 5}}
	return undirected(6, edges)
}

func TestStarGolden(t *testing.T) {
	r := Compute(star(11))
	if r.Nodes != 11 || r.Edges != 10 {
		t.Fatalf("star: nodes=%d edges=%d", r.Nodes, r.Edges)
	}
	if r.MaxDegree != 10 {
		t.Fatalf("star: max degree %d, want 10", r.MaxDegree)
	}
	if r.AvgClustering != 0 {
		t.Fatalf("star: clustering %v, want 0", r.AvgClustering)
	}
	if r.MaxCore != 1 {
		t.Fatalf("star: max core %d, want 1", r.MaxCore)
	}
	// Star is maximally disassortative: hub (deg 10) connects only to
	// leaves (deg 1). Pearson r = -1.
	if math.Abs(r.Assortativity-(-1)) > 1e-9 {
		t.Fatalf("star: assortativity %v, want -1", r.Assortativity)
	}
}

func TestCliqueGolden(t *testing.T) {
	r := Compute(clique(6))
	if r.Edges != 15 {
		t.Fatalf("clique: edges=%d, want 15", r.Edges)
	}
	if r.AvgClustering != 1 {
		t.Fatalf("clique: clustering %v, want 1", r.AvgClustering)
	}
	if r.MaxCore != 5 {
		t.Fatalf("clique: max core %d, want 5", r.MaxCore)
	}
	if r.CoreSizes[5] != 6 {
		t.Fatalf("clique: core-5 size %d, want 6", r.CoreSizes[5])
	}
	// All degrees equal: assortativity is degenerate, reported as 0.
	if r.Assortativity != 0 {
		t.Fatalf("clique: assortativity %v, want 0", r.Assortativity)
	}
}

func TestTwoCoreGolden(t *testing.T) {
	nbr := twoCore()
	core := Coreness(nbr)
	want := []int{3, 3, 3, 3, 1, 1}
	for i, w := range want {
		if core[i] != w {
			t.Fatalf("coreness = %v, want %v", core, want)
		}
	}
	r := Compute(nbr)
	if r.MaxCore != 3 {
		t.Fatalf("max core %d, want 3", r.MaxCore)
	}
	// Node 0: neighbors {1,2,3,4}; links among them: (1,2),(1,3),(2,3) of
	// C(4,2)=6 → 0.5. Nodes 1,2,3: neighbors are a triangle → 1.
	// Node 4: neighbors {0,5} not adjacent → 0. Avg = (0.5+3·1+0)/5 = 0.7.
	if math.Abs(r.AvgClustering-0.7) > 1e-9 {
		t.Fatalf("avg clustering %v, want 0.7", r.AvgClustering)
	}
}

func TestPowerLawRecovery(t *testing.T) {
	// Sample degrees from a discrete power law with alpha=2.5 via inverse
	// CDF on the continuous approximation; MLE should land near 2.5.
	rng := rand.New(rand.NewSource(7))
	deg := make([]int, 20000)
	for i := range deg {
		u := rng.Float64()
		deg[i] = int(math.Pow(1-u, -1/1.5)) // alpha=2.5 → exponent 1/(α-1)
		if deg[i] < 1 {
			deg[i] = 1
		}
	}
	alpha, dmin, _ := fitPowerLaw(deg)
	if alpha < 2.2 || alpha > 2.8 {
		t.Fatalf("alpha=%v (dmin=%d), want ≈2.5", alpha, dmin)
	}
}

// TestCorenessMonotoneUnderEdgeRemoval is the property test: removing any
// edge can never increase any node's coreness.
func TestCorenessMonotoneUnderEdgeRemoval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 60
	var edges [][2]int
	// Random graph dense enough for a multi-level core structure.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.12 {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	base := Coreness(undirected(n, edges))
	for trial := 0; trial < 40; trial++ {
		drop := rng.Intn(len(edges))
		reduced := make([][2]int, 0, len(edges)-1)
		reduced = append(reduced, edges[:drop]...)
		reduced = append(reduced, edges[drop+1:]...)
		after := Coreness(undirected(n, reduced))
		for i := range after {
			if after[i] > base[i] {
				t.Fatalf("dropping edge %v raised coreness of %d: %d > %d",
					edges[drop], i, after[i], base[i])
			}
		}
	}
}

// TestSampledClusteringAgreesOnDenseNode checks the stride sample stays
// close to the exact value on a graph where high-degree clustering is
// known: a clique big enough to trigger sampling has clustering 1.
func TestSampledClusteringAgreesOnDenseNode(t *testing.T) {
	r := Compute(clique(clusteringSampleCap + 20))
	if r.AvgClustering != 1 {
		t.Fatalf("large clique sampled clustering %v, want exactly 1", r.AvgClustering)
	}
}
