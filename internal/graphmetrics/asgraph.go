package graphmetrics

import "metascritic/internal/asgraph"

// FromGraph computes the report over the union AS-level adjacency of g:
// peering and transit edges together, direction dropped — the graph a
// topology-measurement study would evaluate.
func FromGraph(g *asgraph.Graph) *Report {
	n := g.N()
	adj := make([][]int32, n)
	for i := 0; i < n; i++ {
		l := make([]int32, 0, len(g.Peers[i])+len(g.Providers[i])+len(g.Customers[i]))
		l = append(l, g.Peers[i]...)
		l = append(l, g.Providers[i]...)
		l = append(l, g.Customers[i]...)
		adj[i] = l
	}
	return Compute(adj)
}
