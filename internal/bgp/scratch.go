package bgp

import "sync"

// propScratch is the reusable workspace of one propagation run: every
// per-AS working array (distances, flags, next hops for the three route
// classes), the BFS queue and the Dial bucket queue of the provider-route
// Dijkstra. A warm scratch makes repeated propagations allocation-free —
// the property the pooled path pins with a 0 allocs/op test.
//
// Reset strategy, chosen by profiling: the four distance arrays are
// refilled with `unreached` at the start of every run (branch-free
// sequential writes — an epoch-stamp guard on these was measured ~30%
// slower because every hot read had to touch a stamp array and a value
// array); the flag/hop arrays are never reset, they are initialized on
// first discovery exactly like the seed implementation's fresh
// allocations were; the queue and buckets are drained in place.
type propScratch struct {
	n int

	// Customer routes (phase 1).
	custDist  []int32
	custHop   []int32
	custFlags []uint8

	// Peer routes (phase 2).
	peerDist  []int32
	peerHop   []int32
	peerFlags []uint8

	// Provider routes (phase 3).
	provDist  []int32
	provHop   []int32
	provFlags []uint8

	// expLen[q] is the AS-path length q exports to its customers
	// (customer dist, else peer dist, else provider dist) — the seed
	// implementation's exportLen closure, materialized so the Dijkstra
	// loop and the flag pass read an array instead of calling a closure.
	expLen []int32

	queue   []int32   // phase-1 BFS queue
	buckets [][]int32 // Dial bucket queue of the provider-route Dijkstra

	origin1 [1]Origin // single-origin scratch for the cache path
}

// scratchPool recycles propagation workspaces across Propagate calls and
// across the workers of batched route fan-outs.
var scratchPool = sync.Pool{New: func() any { return new(propScratch) }}

func getScratch(n int) *propScratch {
	s := scratchPool.Get().(*propScratch)
	s.ensure(n)
	return s
}

func putScratch(s *propScratch) { scratchPool.Put(s) }

// ensure sizes the scratch for an n-AS topology.
func (s *propScratch) ensure(n int) {
	if s.n < n {
		s.custDist = make([]int32, n)
		s.custHop = make([]int32, n)
		s.custFlags = make([]uint8, n)
		s.peerDist = make([]int32, n)
		s.peerHop = make([]int32, n)
		s.peerFlags = make([]uint8, n)
		s.provDist = make([]int32, n)
		s.provHop = make([]int32, n)
		s.provFlags = make([]uint8, n)
		s.expLen = make([]int32, n)
	}
	s.n = n
}

// reset prepares the scratch for a new run over the first n ASes.
func (s *propScratch) reset(n int) {
	fillUnreached(s.custDist[:n])
	fillUnreached(s.peerDist[:n])
	fillUnreached(s.provDist[:n])
	fillUnreached(s.expLen[:n])
}

func fillUnreached(dst []int32) {
	for i := range dst {
		dst[i] = unreached
	}
}

// bucketAt grows the bucket array on demand and returns bucket d.
func (s *propScratch) bucketAt(d int32) *[]int32 {
	for int(d) >= len(s.buckets) {
		s.buckets = append(s.buckets, nil)
	}
	return &s.buckets[d]
}

// run executes the three Gao-Rexford propagation phases over t, leaving
// the selected state in the scratch arrays for one of the emitters below.
// The algorithm is the seed Propagate implementation with the per-call
// allocations replaced by the pooled workspace, the Dijkstra binary heap
// replaced by a Dial bucket queue (relaxations are +1, so processing
// buckets in increasing distance settles nodes in the same order class),
// and the exportLen closure materialized as an array. Results are
// byte-identical; the equivalence property test pins this against a copy
// of the seed code.
func (s *propScratch) run(t *Topology, origins []Origin) {
	n := int32(t.n)
	s.reset(t.n)
	custDist, custHop, custFlags := s.custDist, s.custHop, s.custFlags
	peerDist, peerHop, peerFlags := s.peerDist, s.peerHop, s.peerFlags
	provDist, provHop, provFlags := s.provDist, s.provHop, s.provFlags
	expLen := s.expLen

	// Phase 1: customer routes — BFS from the origins over customer →
	// provider edges. Distances first; flags and hops are initialized at
	// discovery (the seed implementation's freshly zeroed allocations).
	queue := s.queue[:0]
	for _, o := range origins {
		a := int32(o.AS)
		if custDist[a] != 0 {
			custDist[a] = 0
			custFlags[a] = 0
			custHop[a] = -1
			queue = append(queue, a)
		}
		custFlags[a] |= o.Flag
	}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		dx := custDist[x] + 1
		for _, p := range t.providers[x] {
			if custDist[p] == unreached {
				custDist[p] = dx
				custFlags[p] = 0
				custHop[p] = -1
				queue = append(queue, p)
			}
		}
	}
	s.queue = queue
	// Flags and next hops in increasing-distance order (queue is ordered
	// by BFS level).
	for _, x := range queue {
		dx := custDist[x]
		if dx == 0 {
			continue
		}
		best := int32(-1)
		for _, c := range t.customers[x] {
			if custDist[c] == dx-1 {
				custFlags[x] |= custFlags[c]
				if best == -1 || c < best {
					best = c
				}
			}
		}
		custHop[x] = best
	}

	// Phase 2: peer routes — one peer hop onto a customer route (or the
	// origin itself). Push-based: only the reached ASes (exactly the BFS
	// queue) export over peer edges, so unreached peer lists are never
	// scanned. The result is order-independent — distance is a min, the
	// tie flags are a commutative OR, the tie hop is a min — so visiting
	// edges from the exporter side leaves every selection identical to the
	// seed's per-importer scan.
	for _, b := range queue {
		d := custDist[b] + 1
		f := custFlags[b]
		for _, a := range t.peers[b] {
			switch {
			case d < peerDist[a]:
				peerDist[a] = d
				peerFlags[a] = f
				peerHop[a] = b
			case d == peerDist[a]:
				peerFlags[a] |= f
				if b < peerHop[a] {
					peerHop[a] = b
				}
			}
		}
	}

	// Phase 3: provider routes — Dijkstra over provider → customer edges.
	// An AS with a customer or peer route exports that selection to its
	// customers; ASes without either depend on their providers' provider
	// routes. All edge relaxations are +1, so a Dial bucket queue
	// processed in increasing distance replaces the binary heap, and every
	// node enters the queue exactly once with its final distance:
	// candidates from later-settled exporters are never smaller, so the
	// first relaxation of a node is also its best, and no stale-entry or
	// settled bookkeeping is needed.
	//
	// Flags and next hops are pushed forward during relaxation instead of
	// recovered by a separate distance-ordered pass over provider edges:
	// when q drains from bucket d, every contributor to q's own provider
	// flags (a parent with export length d-1) drained from an earlier
	// bucket, so q's selected flags are final here. A strictly-better
	// relaxation seeds the child's flags/hop, an equal-distance one merges
	// (flags OR in, the hop takes the minimum exporter) — the same set of
	// contributing parents, flag unions and hop tie-breaks the seed
	// implementation's flag pass computed, without traversing the
	// non-contributing provider edges it had to scan past.
	maxB := int32(-1)
	for q := int32(0); q < n; q++ {
		el := custDist[q]
		if el == unreached {
			el = peerDist[q]
		}
		if el == unreached {
			continue
		}
		expLen[q] = el
		b := s.bucketAt(el)
		*b = append(*b, q)
		if el > maxB {
			maxB = el
		}
	}
	for d := int32(0); d <= maxB; d++ {
		bq := s.buckets[d]
		cand := d + 1
		for k := 0; k < len(bq); k++ {
			q := bq[k]
			// q's selected flags, in preference order (customer > peer >
			// provider) — final at drain time, see above.
			var qf uint8
			switch {
			case custDist[q] != unreached:
				qf = custFlags[q]
			case peerDist[q] != unreached:
				qf = peerFlags[q]
			default:
				qf = provFlags[q]
			}
			for _, c := range t.customers[q] {
				switch pd := provDist[c]; {
				case pd == unreached:
					provDist[c] = cand
					provFlags[c] = qf
					provHop[c] = q
					// expLen still unset means c has neither a customer
					// nor a peer route, so it depends on this provider
					// route and joins the queue.
					if expLen[c] == unreached {
						expLen[c] = cand
						nb := s.bucketAt(cand)
						*nb = append(*nb, c)
						if cand > maxB {
							maxB = cand
						}
					}
				case pd == cand:
					provFlags[c] |= qf
					if q < provHop[c] {
						provHop[c] = q
					}
				}
			}
		}
		s.buckets[d] = bq[:0] // bucket fully drained; reset for the next run
	}
}

// emitRoutes writes the per-AS route selection into dst (the seed
// Propagate's output format).
func (s *propScratch) emitRoutes(dst []Route) {
	for a := range dst {
		switch {
		case s.custDist[a] == 0:
			dst[a] = Route{Class: ClassOwn, Len: 0, NextHop: -1, Flags: s.custFlags[a]}
		case s.custDist[a] != unreached:
			dst[a] = Route{Class: ClassCustomer, Len: s.custDist[a], NextHop: s.custHop[a], Flags: s.custFlags[a]}
		case s.peerDist[a] != unreached:
			dst[a] = Route{Class: ClassPeer, Len: s.peerDist[a], NextHop: s.peerHop[a], Flags: s.peerFlags[a]}
		case s.provDist[a] != unreached:
			dst[a] = Route{Class: ClassProvider, Len: s.provDist[a], NextHop: s.provHop[a], Flags: s.provFlags[a]}
		default:
			dst[a] = Route{Class: ClassNone, NextHop: -1}
		}
	}
}

// emitPacked writes the selection into a compact struct-of-arrays Routes
// value (the route cache's storage format).
func (s *propScratch) emitPacked(r Routes) {
	for a := 0; a < len(r.class); a++ {
		switch {
		case s.custDist[a] == 0:
			r.set(a, ClassOwn, 0, -1, s.custFlags[a])
		case s.custDist[a] != unreached:
			r.set(a, ClassCustomer, s.custDist[a], s.custHop[a], s.custFlags[a])
		case s.peerDist[a] != unreached:
			r.set(a, ClassPeer, s.peerDist[a], s.peerHop[a], s.peerFlags[a])
		case s.provDist[a] != unreached:
			r.set(a, ClassProvider, s.provDist[a], s.provHop[a], s.provFlags[a])
		default:
			r.set(a, ClassNone, 0, -1, 0)
		}
	}
}

// emitFlags writes only the union-of-origin flags of each reachable AS
// (the SimulateHijack output), skipping the full route materialization.
func (s *propScratch) emitFlags(dst []uint8) {
	for a := range dst {
		switch {
		case s.custDist[a] != unreached:
			dst[a] = s.custFlags[a]
		case s.peerDist[a] != unreached:
			dst[a] = s.peerFlags[a]
		case s.provDist[a] != unreached:
			dst[a] = s.provFlags[a]
		default:
			dst[a] = 0
		}
	}
}
