package bgp

// Routes is a compact struct-of-arrays view of one propagation result:
// per AS, the selected route's next hop, AS-path length, class and origin
// flags, stored in four parallel arrays (8 bytes per AS instead of the 16
// bytes of a padded []Route). This is the route cache's storage format;
// experiments that sweep thousands of cached destinations read through it
// directly without materializing []Route slices.
//
// The zero Routes is empty. A Routes value is immutable once published by
// the cache and safe for concurrent readers.
type Routes struct {
	next  []int32
	plen  []uint16
	class []uint8
	flags []uint8
}

// newRoutes allocates a packed view for an n-AS topology.
func newRoutes(n int) Routes {
	return Routes{
		next:  make([]int32, n),
		plen:  make([]uint16, n),
		class: make([]uint8, n),
		flags: make([]uint8, n),
	}
}

// set writes AS a's selected route. Path lengths are bounded by the
// topology diameter; 65535 hops would require a pathological provider
// chain longer than any AS graph this package models, so overflow is a
// programming error worth a panic rather than silent truncation.
func (r Routes) set(a int, class RouteClass, length, nextHop int32, flags uint8) {
	if length > 65535 {
		panic("bgp: AS-path length overflows packed route encoding")
	}
	r.next[a] = nextHop
	r.plen[a] = uint16(length)
	r.class[a] = uint8(class)
	r.flags[a] = flags
}

// Len reports the number of ASes covered by the view.
func (r Routes) Len() int { return len(r.class) }

// At reconstructs AS a's route in the classic Route form.
func (r Routes) At(a int) Route {
	return Route{
		Class:   RouteClass(r.class[a]),
		Len:     int32(r.plen[a]),
		NextHop: r.next[a],
		Flags:   r.flags[a],
	}
}

// Class returns the route class selected by AS a.
func (r Routes) Class(a int) RouteClass { return RouteClass(r.class[a]) }

// PathLen returns the AS-path length of a's selected route. It is only
// meaningful when Class(a) != ClassNone.
func (r Routes) PathLen(a int) int { return int(r.plen[a]) }

// NextHop returns the neighbor a forwards through, or -1 for origins and
// unreachable ASes.
func (r Routes) NextHop(a int) int { return int(r.next[a]) }

// Flags returns the union of origin flags carried by a's selected route.
func (r Routes) Flags(a int) uint8 { return r.flags[a] }

// Reachable reports whether a selected any route to the destination.
func (r Routes) Reachable(a int) bool { return r.class[a] != uint8(ClassNone) }

// Bytes reports the packed view's storage footprint, used by the cache's
// byte accounting.
func (r Routes) Bytes() int {
	return 4*len(r.next) + 2*len(r.plen) + len(r.class) + len(r.flags)
}

// Expand materializes the view as a []Route slice for callers written
// against the classic representation.
func (r Routes) Expand() []Route {
	out := make([]Route, r.Len())
	for a := range out {
		out[a] = r.At(a)
	}
	return out
}

// Path walks the next-hop chain from AS `from` toward the destination the
// view was computed for, mirroring Path on []Route: nil when `from` has no
// route, and nil on a corrupt (cyclic) chain.
func (r Routes) PathFrom(from int) []int {
	if from < 0 || from >= r.Len() || !r.Reachable(from) {
		return nil
	}
	path := []int{from}
	cur := from
	for RouteClass(r.class[cur]) != ClassOwn {
		nh := int(r.next[cur])
		if nh < 0 || len(path) > r.Len()+1 {
			return nil // corrupt route data
		}
		path = append(path, nh)
		cur = nh
	}
	return path
}

// AppendPathFrom is PathFrom with caller-provided storage: it appends the
// walk onto buf and returns the extended slice, letting hot loops reuse
// one backing array across destinations.
func (r Routes) AppendPathFrom(buf []int, from int) []int {
	if from < 0 || from >= r.Len() || !r.Reachable(from) {
		return buf
	}
	start := len(buf)
	buf = append(buf, from)
	cur := from
	for RouteClass(r.class[cur]) != ClassOwn {
		nh := int(r.next[cur])
		if nh < 0 || len(buf)-start > r.Len()+1 {
			return buf[:start] // corrupt route data
		}
		buf = append(buf, nh)
		cur = nh
	}
	return buf
}
