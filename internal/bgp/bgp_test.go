package bgp

import (
	"math/rand"
	"testing"

	"metascritic/internal/asgraph"
)

// chainTopology builds:
//
//	T1a(0) ── T1b(1)   (peers)
//	 |          |
//	 Ta(2)     Tb(3)   (transits, customers of T1s; Ta–Tb peer)
//	 |          |
//	 Sa(4)     Sb(5)   (stubs)
//	 Sa(4) ─── Sc(6)   (6 is customer of 4)
func chainTopology() *Topology {
	t := NewTopology(7)
	t.AddP2P(0, 1)
	t.AddC2P(2, 0)
	t.AddC2P(3, 1)
	t.AddP2P(2, 3)
	t.AddC2P(4, 2)
	t.AddC2P(5, 3)
	t.AddC2P(6, 4)
	return t
}

func TestPropagateClasses(t *testing.T) {
	top := chainTopology()
	routes := top.PropagateFrom(5) // stub Sb originates
	if routes[5].Class != ClassOwn || routes[5].Len != 0 {
		t.Fatalf("origin route %+v", routes[5])
	}
	// Tb learns from customer.
	if routes[3].Class != ClassCustomer || routes[3].Len != 1 {
		t.Fatalf("Tb route %+v", routes[3])
	}
	// T1b: customer route via Tb (len 2).
	if routes[1].Class != ClassCustomer || routes[1].Len != 2 {
		t.Fatalf("T1b route %+v", routes[1])
	}
	// Ta: peer route via Tb (Tb exports its customer route to peers).
	if routes[2].Class != ClassPeer || routes[2].Len != 2 {
		t.Fatalf("Ta route %+v", routes[2])
	}
	// T1a: peer route via T1b, len 3.
	if routes[0].Class != ClassPeer || routes[0].Len != 3 {
		t.Fatalf("T1a route %+v", routes[0])
	}
	// Sa: provider route via Ta (Ta exports its peer route to customers).
	if routes[4].Class != ClassProvider || routes[4].Len != 3 {
		t.Fatalf("Sa route %+v", routes[4])
	}
	// Sc: provider route via Sa, one more hop.
	if routes[6].Class != ClassProvider || routes[6].Len != 4 {
		t.Fatalf("Sc route %+v", routes[6])
	}
}

func TestCustomerPreferredOverShorterPeer(t *testing.T) {
	// AS 0 has: customer route of length 3 and a peer route of length 1.
	// Gao-Rexford must still select the customer route.
	top := NewTopology(5)
	// Customer chain: 0 <- 1 <- 2 <- 3 (3 originates; 3 cust of 2 cust of 1 cust of 0)
	top.AddC2P(3, 2)
	top.AddC2P(2, 1)
	top.AddC2P(1, 0)
	// Peer shortcut: 0 peers with 4, 3 is customer of 4.
	top.AddC2P(3, 4)
	top.AddP2P(0, 4)
	routes := top.PropagateFrom(3)
	if routes[0].Class != ClassCustomer || routes[0].Len != 3 {
		t.Fatalf("AS0 should prefer its customer route: %+v", routes[0])
	}
}

func TestValleyFree(t *testing.T) {
	// Peer routes must not be exported to peers or providers:
	//  origin 0 —peer— 1 —peer— 2: AS2 must NOT reach 0 via 1.
	top := NewTopology(3)
	top.AddP2P(0, 1)
	top.AddP2P(1, 2)
	routes := top.PropagateFrom(0)
	if routes[1].Class != ClassPeer {
		t.Fatalf("AS1 %+v", routes[1])
	}
	if routes[2].Reachable() {
		t.Fatalf("AS2 should be unreachable (valley-free), got %+v", routes[2])
	}
	// Provider routes must not be exported upward: 0 provider of 1,
	// 1 provider of... make 1 learn from provider 0 and check 1's other
	// provider 2 does not learn it.
	top2 := NewTopology(3)
	top2.AddC2P(1, 0)
	top2.AddC2P(1, 2)
	routes2 := top2.PropagateFrom(0)
	if routes2[1].Class != ClassProvider {
		t.Fatalf("AS1 %+v", routes2[1])
	}
	if routes2[2].Reachable() {
		t.Fatalf("AS2 should not learn a provider route from its customer's provider, got %+v", routes2[2])
	}
}

func TestPathReconstruction(t *testing.T) {
	top := chainTopology()
	routes := top.PropagateFrom(5)
	p := Path(routes, 6)
	want := []int{6, 4, 2, 3, 5}
	if len(p) != len(want) {
		t.Fatalf("path %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path %v, want %v", p, want)
		}
	}
	// Path length matches route length.
	if int(routes[6].Len) != len(p)-1 {
		t.Fatalf("route len %d vs path %v", routes[6].Len, p)
	}
	// Unreachable source.
	iso := NewTopology(2)
	r := iso.PropagateFrom(0)
	if Path(r, 1) != nil {
		t.Fatalf("unreachable path should be nil")
	}
}

func TestPathLengthsConsistentProperty(t *testing.T) {
	// Random topologies: every reachable AS's path reconstruction length
	// equals its route length, and paths end at the origin.
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 30
		top := NewTopology(n)
		// Random DAG-ish hierarchy: AS i buys from 1-2 lower-numbered ASes.
		for i := 1; i < n; i++ {
			for k := 0; k < 1+rng.Intn(2); k++ {
				top.AddC2P(i, rng.Intn(i))
			}
		}
		// Random peering.
		for k := 0; k < n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				top.AddP2P(a, b)
			}
		}
		dest := rng.Intn(n)
		routes := top.PropagateFrom(dest)
		for a := 0; a < n; a++ {
			if !routes[a].Reachable() {
				continue
			}
			p := Path(routes, a)
			if p == nil {
				t.Fatalf("seed %d: AS %d reachable but no path", seed, a)
			}
			if len(p)-1 != int(routes[a].Len) {
				t.Fatalf("seed %d: AS %d path len %d != route len %d", seed, a, len(p)-1, routes[a].Len)
			}
			if p[len(p)-1] != dest {
				t.Fatalf("seed %d: path does not end at origin: %v", seed, p)
			}
		}
		// The origin's providers always have a customer route.
		for _, pr := range top.providers[dest] {
			if routes[pr].Class != ClassCustomer && routes[pr].Class != ClassOwn {
				t.Fatalf("seed %d: origin's provider class %v", seed, routes[pr].Class)
			}
		}
	}
}

func TestMultiOriginFlags(t *testing.T) {
	// Victim at 4 (customer of 2), attacker at 5 (customer of 3).
	top := chainTopology()
	flags := top.SimulateHijack([]int{4}, []int{5})
	if flags[4]&FlagVictim == 0 {
		t.Fatalf("victim seed lacks victim flag: %b", flags[4])
	}
	if flags[5]&FlagAttacker == 0 {
		t.Fatalf("attacker seed lacks attacker flag: %b", flags[5])
	}
	// Ta (2) hears victim via customer 4 (len 1, customer class) and the
	// attacker only via peer: customer wins.
	if flags[2] != FlagVictim {
		t.Fatalf("Ta flags %b, want victim only", flags[2])
	}
	if flags[3] != FlagAttacker {
		t.Fatalf("Tb flags %b, want attacker only", flags[3])
	}
}

func TestTiedRoutesMergeFlags(t *testing.T) {
	// AS 0 is provider of both 1 and 2; victim seeds at 1, attacker at 2.
	// AS 0 has two customer routes of length 1, tied: flags must merge.
	top := NewTopology(3)
	top.AddC2P(1, 0)
	top.AddC2P(2, 0)
	flags := top.SimulateHijack([]int{1}, []int{2})
	if flags[0] != FlagVictim|FlagAttacker {
		t.Fatalf("AS0 flags %b, want both", flags[0])
	}
}

func TestVisibleLinksBias(t *testing.T) {
	// Peering link between stubs 4-6's providers is invisible to a
	// monitor outside their cones.
	top := NewTopology(6)
	// 0 Tier1; 1, 2 transits (customers of 0); 3, 4 stubs.
	top.AddC2P(1, 0)
	top.AddC2P(2, 0)
	top.AddC2P(3, 1)
	top.AddC2P(4, 2)
	top.AddP2P(3, 4) // edge peering, invisible from the core
	top.AddC2P(5, 0) // monitor AS: another customer of the Tier1
	cache := NewRouteCache(top)
	dests := []int{0, 1, 2, 3, 4, 5}
	visFromCore := VisibleLinks(cache, []int{5}, dests)
	if visFromCore[asgraph.MakePair(3, 4)] {
		t.Fatalf("edge peering should be invisible from core monitor")
	}
	// A monitor inside one of the peers sees it.
	visFromEdge := VisibleLinks(NewRouteCache(top), []int{3}, dests)
	if !visFromEdge[asgraph.MakePair(3, 4)] {
		t.Fatalf("edge peering should be visible from the peer itself")
	}
	// Transit links on used paths are visible.
	if !visFromCore[asgraph.MakePair(0, 1)] {
		t.Fatalf("core transit link should be visible")
	}
}

func TestFlatteningMetrics(t *testing.T) {
	// Without the peering link, stub 3 reaches 4 via providers; with it,
	// directly via a customerless peer route.
	base := NewTopology(5)
	base.AddC2P(1, 0)
	base.AddC2P(2, 0)
	base.AddC2P(3, 1)
	base.AddC2P(4, 2)
	flat := base.Clone()
	flat.AddP2P(3, 4)

	mBase := Flattening(NewRouteCache(base), []int{3}, []int{4})
	mFlat := Flattening(NewRouteCache(flat), []int{3}, []int{4})
	if mBase.MeanPathLen <= mFlat.MeanPathLen {
		t.Fatalf("peering should shorten path: base %v flat %v", mBase.MeanPathLen, mFlat.MeanPathLen)
	}
	if mBase.ProviderFrac != 1 || mFlat.ProviderFrac != 0 {
		t.Fatalf("provider fractions: base %v flat %v", mBase.ProviderFrac, mFlat.ProviderFrac)
	}
	if mBase.Reachable != 1 || mFlat.Reachable != 1 {
		t.Fatalf("reachable counts wrong")
	}
}

func TestRouteCacheMemoizes(t *testing.T) {
	top := chainTopology()
	c := NewRouteCache(top)
	r1 := c.RoutesTo(5)
	r2 := c.RoutesTo(5)
	if &r1.class[0] != &r2.class[0] {
		t.Fatalf("cache should return the same packed view")
	}
	if got := c.Computed(); got != 1 {
		t.Fatalf("Computed = %d, want 1", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Computed != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 computed / 1 entry", st)
	}
	// Byte accounting charges the packed arrays plus the per-entry
	// bookkeeping (map bucket, entry struct, clock slot) so the eviction
	// budget reflects real footprint.
	if want := int64(r1.Bytes()) + entryOverheadBytes; st.Bytes != want {
		t.Fatalf("stats bytes %d, want %d", st.Bytes, want)
	}
	if c.Topology() != top {
		t.Fatalf("Topology accessor wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := chainTopology()
	b := a.Clone()
	b.AddP2P(4, 5)
	if a.NumP2P() == b.NumP2P() {
		t.Fatalf("clone should not alias original")
	}
}

func TestNumP2P(t *testing.T) {
	top := chainTopology()
	if got := top.NumP2P(); got != 2 {
		t.Fatalf("NumP2P = %d, want 2", got)
	}
}

func TestRouteClassString(t *testing.T) {
	for _, c := range []RouteClass{ClassOwn, ClassCustomer, ClassPeer, ClassProvider, ClassNone} {
		if c.String() == "" {
			t.Fatalf("empty class name")
		}
	}
}

func TestFromGraph(t *testing.T) {
	g := asgraph.NewGraph()
	for i := 0; i < 3; i++ {
		g.AddAS(&asgraph.AS{ASN: i})
	}
	g.AddC2P(1, 0)
	g.AddPeer(1, 2)
	top := FromGraph(g)
	routes := top.PropagateFrom(0)
	if routes[1].Class != ClassProvider {
		t.Fatalf("AS1 should reach 0 via provider, got %+v", routes[1])
	}
	if routes[2].Reachable() {
		t.Fatalf("AS2 should not reach 0 through peer's provider route")
	}
	if top.NumP2P() != 1 {
		t.Fatalf("NumP2P = %d", top.NumP2P())
	}
}
