package bgp

// Topology mutation and epoch-scoped route-cache invalidation: the BGP
// layer's half of the streaming-world contract. When a churn batch lands
// the topology is edited in place, and instead of discarding the whole
// route cache the caller invalidates only the destinations whose results
// can actually change — a destination's routes depend on a link (a,b)
// only if a or b selected a route toward it, so every unaffected cached
// view survives into the next epoch and keeps serving hits.
//
// Mutation and invalidation are NOT safe to run concurrently with
// propagation: callers must hold the topology exclusively (the serving
// layer's world lock) across the edit + Invalidate sequence. Cached
// views handed out before the edit stay immutable and valid for their
// epoch.

// RemoveP2P deletes the peering between a and b, preserving adjacency
// order, and reports whether a link was removed.
func (t *Topology) RemoveP2P(a, b int) bool {
	la, oka := removeAdj(t.peers[a], int32(b))
	lb, okb := removeAdj(t.peers[b], int32(a))
	if !oka || !okb {
		return oka || okb
	}
	t.peers[a], t.peers[b] = la, lb
	return true
}

// RemoveC2P deletes the transit relationship where customer buys from
// provider and reports whether it existed.
func (t *Topology) RemoveC2P(customer, provider int) bool {
	lp, okp := removeAdj(t.providers[customer], int32(provider))
	lc, okc := removeAdj(t.customers[provider], int32(customer))
	if !okp || !okc {
		return okp || okc
	}
	t.providers[customer], t.customers[provider] = lp, lc
	return true
}

// Grow extends the topology to n ASes with empty adjacency (new-AS
// arrivals). It is a no-op when the topology is already that large.
func (t *Topology) Grow(n int) {
	for t.n < n {
		t.providers = append(t.providers, nil)
		t.customers = append(t.customers, nil)
		t.peers = append(t.peers, nil)
		t.n++
	}
}

// HasP2P reports whether a and b currently peer.
func (t *Topology) HasP2P(a, b int) bool {
	for _, x := range t.peers[a] {
		if x == int32(b) {
			return true
		}
	}
	return false
}

// removeAdj deletes the first occurrence of v in place, preserving order
// (adjacency rows are capacity-clamped, so the shift stays inside the
// row's own backing segment).
func removeAdj(xs []int32, v int32) ([]int32, bool) {
	for i, x := range xs {
		if x == v {
			copy(xs[i:], xs[i+1:])
			return xs[:len(xs)-1], true
		}
	}
	return xs, false
}

// Invalidate drops every cached destination whose routes can be affected
// by churn (removal or addition) of the given peering links, advances the
// cache epoch, and returns the number of entries dropped.
//
// The staleness test is exact up to flag ties, and rests on how peerings
// enter Gao-Rexford propagation: a peer edge (a,b) carries exactly one
// kind of candidate — each endpoint's customer-or-origin route, exported
// to the other side (scratch.go phase 2). Customer routes themselves
// never traverse peer edges, so churning the link cannot change either
// endpoint's customer-class state, and the cached selection is enough to
// decide influence per side:
//
//   - the exporter has no customer/origin route (selected class below
//     customer) — nothing crosses the link, no influence;
//   - the importer's selected class is customer or better — peer
//     candidates are never selected and never re-exported, no influence;
//   - the importer selects a peer route — the link matters iff the
//     candidate (exporter's length + 1) is no longer than the selection
//     (shorter = reroute, equal = tie flags / hop tie-break);
//   - the importer selects a provider route or nothing — a peer route is
//     strictly preferred, so the link always matters.
//
// Everything failing the test on every churned link is retained and keeps
// serving hits. Index-space growth (new-AS arrival) is not expressible as
// a link set; use InvalidateAll after Grow. Transit (C2P) churn is out of
// scope for the same reason.
// Dropped entries leave their clock-queue slots behind; eviction skips
// them lazily by sequence mismatch, so invalidation stays O(cached
// entries) with no queue surgery.
func (c *RouteCache) Invalidate(links [][2]int) int {
	dropped := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for d, e := range sh.cache {
			if routesAffected(e.routes, links) {
				sh.bytes -= entrySize(e.routes)
				delete(sh.cache, d)
				dropped++
			} else {
				c.retained.Add(1)
			}
		}
		sh.mu.Unlock()
	}
	c.epoch.Add(1)
	c.invalidated.Add(int64(dropped))
	return dropped
}

// routesAffected reports whether churn on any of the given peering links
// can change the cached view r (see Invalidate for the argument).
func routesAffected(r Routes, links [][2]int) bool {
	n := r.Len()
	for _, l := range links {
		a, b := l[0], l[1]
		if a < 0 || b < 0 || a >= n || b >= n {
			return true // outside this view's index space: be conservative
		}
		if peerInfluences(r, a, b) || peerInfluences(r, b, a) {
			return true
		}
	}
	return false
}

// peerInfluences reports whether exporter's customer-or-origin route (if
// any) can influence importer's state across a peering edge between them.
func peerInfluences(r Routes, exporter, importer int) bool {
	if r.Class(exporter) < ClassCustomer {
		return false // nothing exportable over a peering
	}
	switch ic := r.Class(importer); {
	case ic >= ClassCustomer:
		return false // peer candidates are neither selected nor re-exported
	case ic == ClassPeer:
		return r.PathLen(exporter)+1 <= r.PathLen(importer)
	default:
		return true // provider route or unreachable: a peer route wins
	}
}

// InvalidateAll drops every cached destination, advances the cache
// epoch, and returns the number of entries dropped. Required after the
// AS index space grows (Topology.Grow).
func (c *RouteCache) InvalidateAll() int {
	dropped := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		dropped += len(sh.cache)
		sh.cache = map[int]*cacheEntry{}
		sh.queue = nil
		sh.qhead = 0
		sh.bytes = 0
		sh.mu.Unlock()
	}
	c.epoch.Add(1)
	c.invalidated.Add(int64(dropped))
	return dropped
}

// Epoch returns the number of invalidation passes the cache has
// absorbed; cached views are valid for the epoch they were computed in.
func (c *RouteCache) Epoch() uint32 { return c.epoch.Load() }
