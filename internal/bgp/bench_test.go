package bgp

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"metascritic/internal/benchscale"
)

func benchTopology(n int) *Topology {
	rng := rand.New(rand.NewSource(1))
	return randomTopology(rng, n)
}

func BenchmarkPropagate(b *testing.B) {
	n := benchscale.N(30000, 1500)
	top := benchTopology(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top.PropagateFrom(i % n)
	}
}

// BenchmarkPropagateInto measures the pooled, reuse-everything path — the
// one RouteCache workers ride. Its allocs/op must stay 0 after warm-up;
// TestPropagateIntoZeroAllocs pins that as a regression test.
func BenchmarkPropagateInto(b *testing.B) {
	n := benchscale.N(30000, 1500)
	top := benchTopology(n)
	dst := make([]Route, n)
	origins := make([]Origin, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		origins[0] = Origin{AS: i % n, Flag: 1}
		dst = top.PropagateInto(dst, origins)
	}
}

func BenchmarkSimulateHijack(b *testing.B) {
	n := benchscale.N(30000, 1500)
	top := benchTopology(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top.SimulateHijack([]int{i % n, (i + 7) % n}, []int{(i + 100) % n})
	}
}

func BenchmarkVisibleLinks(b *testing.B) {
	n := benchscale.N(12000, 600)
	top := benchTopology(n)
	monitors := []int{0, 1, 2, 3, 4}
	dests := make([]int, 100)
	for i := range dests {
		dests[i] = i * 6 % n
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VisibleLinks(NewRouteCache(top), monitors, dests)
	}
}

// BenchmarkRoutesToAll measures a cold 64-destination sweep: serial is one
// RoutesTo per destination, pooled is the batched fan-out (one scratch per
// worker). The sub-benchmark names match the PR 4 baseline shim so
// cmd/benchjson can diff them.
func BenchmarkRoutesToAll(b *testing.B) {
	n := benchscale.N(30000, 1500)
	top := benchTopology(n)
	dests := make([]int, 64)
	for i := range dests {
		dests[i] = (i * 131) % n
	}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := NewRouteCache(top)
			for _, d := range dests {
				c.RoutesTo(d)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := NewRouteCache(top)
			if _, err := c.RoutesToAll(context.Background(), dests, runtime.GOMAXPROCS(0)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestPropagateIntoZeroAllocs pins the pooled path's allocation-free
// steady state. sync.Pool may be drained by a concurrent GC, so the pin
// tolerates a stray refill rather than demanding a perfect zero.
func TestPropagateIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation pin only holds in normal builds")
	}
	top := benchTopology(800)
	dst := make([]Route, top.N())
	origins := make([]Origin, 1)
	// Warm the pool and the scratch's bucket arrays.
	for i := 0; i < 5; i++ {
		origins[0] = Origin{AS: i, Flag: 1}
		dst = top.PropagateInto(dst, origins)
	}
	avg := testing.AllocsPerRun(100, func() {
		origins[0] = Origin{AS: 7, Flag: 1}
		dst = top.PropagateInto(dst, origins)
	})
	if avg >= 1 {
		t.Fatalf("pooled PropagateInto allocates %.1f allocs/op after warm-up, want 0", avg)
	}
}
