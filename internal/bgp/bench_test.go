package bgp

import (
	"math/rand"
	"testing"

	"metascritic/internal/benchscale"
)

func benchTopology(n int) *Topology {
	rng := rand.New(rand.NewSource(1))
	return randomTopology(rng, n)
}

func BenchmarkPropagate(b *testing.B) {
	n := benchscale.N(30000, 1500)
	top := benchTopology(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top.PropagateFrom(i % n)
	}
}

func BenchmarkSimulateHijack(b *testing.B) {
	n := benchscale.N(30000, 1500)
	top := benchTopology(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top.SimulateHijack([]int{i % n, (i + 7) % n}, []int{(i + 100) % n})
	}
}

func BenchmarkVisibleLinks(b *testing.B) {
	n := benchscale.N(12000, 600)
	top := benchTopology(n)
	monitors := []int{0, 1, 2, 3, 4}
	dests := make([]int, 100)
	for i := range dests {
		dests[i] = i * 6 % n
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VisibleLinks(NewRouteCache(top), monitors, dests)
	}
}
