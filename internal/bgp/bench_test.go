package bgp

import (
	"math/rand"
	"testing"
)

func benchTopology(n int) *Topology {
	rng := rand.New(rand.NewSource(1))
	return randomTopology(rng, n)
}

func BenchmarkPropagate(b *testing.B) {
	top := benchTopology(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top.PropagateFrom(i % 1500)
	}
}

func BenchmarkSimulateHijack(b *testing.B) {
	top := benchTopology(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top.SimulateHijack([]int{i % 1500, (i + 7) % 1500}, []int{(i + 100) % 1500})
	}
}

func BenchmarkVisibleLinks(b *testing.B) {
	top := benchTopology(600)
	monitors := []int{0, 1, 2, 3, 4}
	dests := make([]int, 100)
	for i := range dests {
		dests[i] = i * 6 % 600
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VisibleLinks(NewRouteCache(top), monitors, dests)
	}
}
