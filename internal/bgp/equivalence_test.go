package bgp

import (
	"math/rand"
	"testing"
)

// referencePropagate is a verbatim copy of the pre-pooling Propagate
// implementation (heap-based Dijkstra, per-call allocations). The pooled
// path must stay byte-identical to it — every experiment output in the
// repo rides on that equivalence.
func referencePropagate(t *Topology, origins []Origin) []Route {
	n := t.n
	custDist := refFill32(n, unreached)
	custFlags := make([]uint8, n)
	custHop := refFill32(n, -1)

	queue := make([]int32, 0, n)
	for _, o := range origins {
		if custDist[o.AS] != 0 {
			custDist[o.AS] = 0
			queue = append(queue, int32(o.AS))
		}
		custFlags[o.AS] |= o.Flag
	}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		for _, p := range t.providers[x] {
			if custDist[p] == unreached {
				custDist[p] = custDist[x] + 1
				queue = append(queue, p)
			}
		}
	}
	for _, x := range queue {
		if custDist[x] == 0 {
			continue
		}
		best := int32(-1)
		for _, c := range t.customers[x] {
			if custDist[c] == custDist[x]-1 {
				custFlags[x] |= custFlags[c]
				if best == -1 || c < best {
					best = c
				}
			}
		}
		custHop[x] = best
	}

	peerDist := refFill32(n, unreached)
	peerFlags := make([]uint8, n)
	peerHop := refFill32(n, -1)
	for a := 0; a < n; a++ {
		for _, b := range t.peers[a] {
			if custDist[b] == unreached {
				continue
			}
			d := custDist[b] + 1
			switch {
			case d < peerDist[a]:
				peerDist[a] = d
				peerFlags[a] = custFlags[b]
				peerHop[a] = b
			case d == peerDist[a]:
				peerFlags[a] |= custFlags[b]
				if b < peerHop[a] {
					peerHop[a] = b
				}
			}
		}
	}

	provDist := refFill32(n, unreached)
	provFlags := make([]uint8, n)
	provHop := refFill32(n, -1)
	pq := &refHeap{}
	exportLen := func(q int32) int32 {
		if custDist[q] != unreached {
			return custDist[q]
		}
		if peerDist[q] != unreached {
			return peerDist[q]
		}
		return provDist[q]
	}
	for q := int32(0); q < int32(n); q++ {
		if custDist[q] != unreached || peerDist[q] != unreached {
			pq.push(refNode{q, exportLen(q)})
		}
	}
	settled := make([]bool, n)
	for len(*pq) > 0 {
		nd := pq.pop()
		q := nd.id
		if settled[q] || exportLen(q) != nd.dist {
			continue
		}
		settled[q] = true
		for _, c := range t.customers[q] {
			cand := nd.dist + 1
			if cand < provDist[c] {
				provDist[c] = cand
				if custDist[c] == unreached && peerDist[c] == unreached {
					pq.push(refNode{c, cand})
				}
			}
		}
	}
	order := make([]int32, 0, n)
	for a := int32(0); a < int32(n); a++ {
		if provDist[a] != unreached {
			order = append(order, a)
		}
	}
	refSortByDist(order, provDist)
	selFlags := func(q int32) uint8 {
		if custDist[q] != unreached {
			return custFlags[q]
		}
		if peerDist[q] != unreached {
			return peerFlags[q]
		}
		return provFlags[q]
	}
	for _, a := range order {
		best := int32(-1)
		for _, q := range t.providers[a] {
			if exportLen(q) != unreached && exportLen(q)+1 == provDist[a] {
				provFlags[a] |= selFlags(q)
				if best == -1 || q < best {
					best = q
				}
			}
		}
		provHop[a] = best
	}

	routes := make([]Route, n)
	for a := 0; a < n; a++ {
		switch {
		case custDist[a] == 0:
			routes[a] = Route{Class: ClassOwn, Len: 0, NextHop: -1, Flags: custFlags[a]}
		case custDist[a] != unreached:
			routes[a] = Route{Class: ClassCustomer, Len: custDist[a], NextHop: custHop[a], Flags: custFlags[a]}
		case peerDist[a] != unreached:
			routes[a] = Route{Class: ClassPeer, Len: peerDist[a], NextHop: peerHop[a], Flags: peerFlags[a]}
		case provDist[a] != unreached:
			routes[a] = Route{Class: ClassProvider, Len: provDist[a], NextHop: provHop[a], Flags: provFlags[a]}
		default:
			routes[a] = Route{Class: ClassNone, NextHop: -1}
		}
	}
	return routes
}

type refNode struct {
	id   int32
	dist int32
}

type refHeap []refNode

func (h *refHeap) push(x refNode) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].dist <= s[i].dist {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *refHeap) pop() refNode {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		small := l
		if r := l + 1; r < last && s[r].dist < s[l].dist {
			small = r
		}
		if s[i].dist <= s[small].dist {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	return top
}

func refFill32(n int, v int32) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func refSortByDist(ids []int32, dist []int32) {
	maxD := int32(0)
	for _, id := range ids {
		if dist[id] > maxD {
			maxD = dist[id]
		}
	}
	buckets := make([][]int32, maxD+1)
	for _, id := range ids {
		buckets[dist[id]] = append(buckets[dist[id]], id)
	}
	k := 0
	for _, b := range buckets {
		for _, id := range b {
			ids[k] = id
			k++
		}
	}
}

func randomOrigins(rng *rand.Rand, n int) []Origin {
	k := 1 + rng.Intn(4)
	origins := make([]Origin, 0, k)
	for i := 0; i < k; i++ {
		origins = append(origins, Origin{AS: rng.Intn(n), Flag: uint8(1 << uint(rng.Intn(3)))})
	}
	return origins
}

// TestPropagateIntoMatchesReference pins the pooled propagation path
// byte-identical to the seed implementation across random topologies and
// multi-origin announcement sets, with a shared dst slice reused across
// calls to exercise the epoch-stamped lazy reset.
func TestPropagateIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var dst []Route
	for trial := 0; trial < 60; trial++ {
		n := 10 + rng.Intn(120)
		top := randomTopology(rng, n)
		for rep := 0; rep < 4; rep++ {
			origins := randomOrigins(rng, n)
			want := referencePropagate(top, origins)
			dst = top.PropagateInto(dst, origins)
			for a := range want {
				if dst[a] != want[a] {
					t.Fatalf("trial %d rep %d: AS %d: pooled %+v, reference %+v (origins %v)",
						trial, rep, a, dst[a], want[a], origins)
				}
			}
		}
	}
}

// TestPackedRoutesMatchReference pins the cache's struct-of-arrays
// encoding: expanding the packed view must reproduce the reference
// single-origin propagation exactly.
func TestPackedRoutesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 10 + rng.Intn(100)
		top := randomTopology(rng, n)
		cache := NewRouteCache(top)
		for rep := 0; rep < 3; rep++ {
			d := rng.Intn(n)
			want := referencePropagate(top, []Origin{{AS: d, Flag: 1}})
			got := cache.RoutesTo(d)
			if got.Len() != n {
				t.Fatalf("packed view covers %d ASes, want %d", got.Len(), n)
			}
			for a := 0; a < n; a++ {
				if got.At(a) != want[a] {
					t.Fatalf("trial %d dest %d: AS %d: packed %+v, reference %+v",
						trial, d, a, got.At(a), want[a])
				}
				wantPath := Path(want, a)
				gotPath := got.PathFrom(a)
				if len(wantPath) != len(gotPath) {
					t.Fatalf("path length mismatch at AS %d: %v vs %v", a, gotPath, wantPath)
				}
				for i := range wantPath {
					if wantPath[i] != gotPath[i] {
						t.Fatalf("path mismatch at AS %d: %v vs %v", a, gotPath, wantPath)
					}
				}
			}
		}
	}
}

// FuzzPropagateOrigins fuzzes the origin set (count, ids, flags, and
// duplicates) on a fixed topology against the reference implementation.
func FuzzPropagateOrigins(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(2), uint8(3))
	f.Add(int64(9), uint8(0), uint8(255), uint8(7))
	rng := rand.New(rand.NewSource(1234))
	top := randomTopology(rng, 60)
	f.Fuzz(func(t *testing.T, seed int64, a, b, c uint8) {
		n := top.N()
		origins := []Origin{
			{AS: int(seed%int64(n)+int64(n)) % n, Flag: a},
			{AS: int(a) % n, Flag: b},
			{AS: int(b) % n, Flag: c},
			{AS: int(a) % n, Flag: c}, // duplicate origin, extra flag
		}
		want := referencePropagate(top, origins)
		got := top.PropagateInto(nil, origins)
		for as := range want {
			if got[as] != want[as] {
				t.Fatalf("AS %d: pooled %+v, reference %+v (origins %v)", as, got[as], want[as], origins)
			}
		}
	})
}

// TestSimulateHijackMatchesReference checks the flags-only emitter against
// a full reference propagation.
func TestSimulateHijackMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(100)
		top := randomTopology(rng, n)
		nv := 1 + rng.Intn(3)
		na := 1 + rng.Intn(3)
		var vict, att []int
		for i := 0; i < nv; i++ {
			vict = append(vict, rng.Intn(n))
		}
		for i := 0; i < na; i++ {
			att = append(att, rng.Intn(n))
		}
		origins := make([]Origin, 0, nv+na)
		for _, s := range vict {
			origins = append(origins, Origin{AS: s, Flag: FlagVictim})
		}
		for _, s := range att {
			origins = append(origins, Origin{AS: s, Flag: FlagAttacker})
		}
		want := referencePropagate(top, origins)
		got := top.SimulateHijack(vict, att)
		for a := range want {
			var exp uint8
			if want[a].Reachable() {
				exp = want[a].Flags
			}
			if got[a] != exp {
				t.Fatalf("trial %d AS %d: flags %d, want %d", trial, a, got[a], exp)
			}
		}
	}
}

// TestCloneSharedBackingIsolation covers the exact-capacity Clone: the
// per-AS slices share one backing array, so appending to one AS's list on
// the clone must not clobber a neighbor's adjacency.
func TestCloneSharedBackingIsolation(t *testing.T) {
	top := NewTopology(4)
	top.AddC2P(0, 1)
	top.AddC2P(1, 2)
	top.AddC2P(2, 3)
	top.AddP2P(0, 3)

	c := top.Clone()
	c.AddC2P(0, 2) // grows providers[0] / customers[2] past their exact capacity
	c.AddP2P(1, 3)

	if got := len(top.providers[0]); got != 1 {
		t.Fatalf("original providers[0] grew to %d entries", got)
	}
	if top.providers[1][0] != 2 {
		t.Fatalf("original providers[1] corrupted: %v", top.providers[1])
	}
	if got := len(c.providers[0]); got != 2 {
		t.Fatalf("clone providers[0] has %d entries, want 2", got)
	}
	// The clone's untouched lists must still match the original.
	if c.providers[2][0] != 3 || c.customers[3][0] != 2 {
		t.Fatalf("clone adjacency corrupted: providers[2]=%v customers[3]=%v", c.providers[2], c.customers[3])
	}
}
