package bgp

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestRoutesToAllMatchesSerial checks the batch API returns exactly what a
// serial RoutesTo loop would, in input order, with duplicates sharing one
// cached view.
func TestRoutesToAllMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	top := randomTopology(rng, 200)
	dests := []int{3, 50, 3, 120, 50, 7} // duplicates on purpose

	serial := NewRouteCache(top)
	want := make([]Routes, len(dests))
	for i, d := range dests {
		want[i] = serial.RoutesTo(d)
	}

	batch := NewRouteCache(top)
	got, err := batch.RoutesToAll(context.Background(), dests, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(dests) {
		t.Fatalf("got %d views, want %d", len(got), len(dests))
	}
	for i := range dests {
		for a := 0; a < top.N(); a++ {
			if got[i].At(a) != want[i].At(a) {
				t.Fatalf("dest %d AS %d: batch %+v, serial %+v", dests[i], a, got[i].At(a), want[i].At(a))
			}
		}
	}
	// Duplicate destinations share one view.
	if &got[0].class[0] != &got[2].class[0] {
		t.Fatalf("duplicate destinations should share one cached view")
	}
	// Distinct destinations each computed exactly once.
	if got := batch.Computed(); got != 4 {
		t.Fatalf("Computed = %d, want 4", got)
	}
}

// TestRoutesToAllConcurrent hammers one cache with overlapping destination
// sets from many goroutines — run under -race (make race-bgp) this pins
// the shard locking and per-worker scratch isolation.
func TestRoutesToAllConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	top := randomTopology(rng, 300)
	cache := NewRouteCache(top)

	// Reference results from an independent serial cache.
	serial := NewRouteCache(top)

	const callers = 8
	var start, done sync.WaitGroup
	start.Add(1)
	errs := make(chan error, callers)
	for w := 0; w < callers; w++ {
		done.Add(1)
		go func(w int) {
			defer done.Done()
			// Overlapping windows: caller w sweeps [w*10, w*10+80).
			dests := make([]int, 80)
			for i := range dests {
				dests[i] = (w*10 + i) % top.N()
			}
			start.Wait()
			got, err := cache.RoutesToAll(context.Background(), dests, 4)
			if err != nil {
				errs <- err
				return
			}
			for i, d := range dests {
				want := serial.RoutesTo(d)
				for a := 0; a < top.N(); a++ {
					if got[i].At(a) != want.At(a) {
						t.Errorf("caller %d dest %d AS %d: %+v != %+v", w, d, a, got[i].At(a), want.At(a))
						return
					}
				}
			}
		}(w)
	}
	start.Done()
	done.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every destination in the union was computed exactly once despite the
	// overlap (singleflight across workers and callers).
	union := map[int]struct{}{}
	for w := 0; w < callers; w++ {
		for i := 0; i < 80; i++ {
			union[(w*10+i)%top.N()] = struct{}{}
		}
	}
	if got := cache.Computed(); got != int64(len(union)) {
		t.Fatalf("Computed = %d, want %d (one run per distinct destination)", got, len(union))
	}
}

// TestWarmCancellation checks a cancelled Warm still reports the missing
// count and leaves the cache consistent (claimed flights complete).
func TestWarmCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	top := randomTopology(rng, 400)
	cache := NewRouteCache(top)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the fan-out even starts
	dests := []int{1, 2, 3, 4, 5}
	if got := cache.Warm(ctx, dests, 2); got != len(dests) {
		t.Fatalf("Warm returned %d, want %d (missing count, even when cancelled)", got, len(dests))
	}
	// A later uncancelled lookup must still work and find a consistent cache.
	r := cache.RoutesTo(1)
	if r.Len() != top.N() {
		t.Fatalf("post-cancel lookup broken: %d ASes", r.Len())
	}

	// Cancellation mid-flight: start a slow warm and cancel shortly after.
	big := make([]int, top.N())
	for i := range big {
		big[i] = i
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel2()
	}()
	cache.Warm(ctx2, big, 2)
	<-ctx2.Done()
	if _, err := cache.RoutesToAll(ctx2, big[:10], 2); err == nil {
		t.Fatalf("RoutesToAll on a cancelled context should return the context error")
	}
}

// TestWarmCountsMissingOnly checks Warm skips destinations already cached
// and dedups the input.
func TestWarmCountsMissingOnly(t *testing.T) {
	top := chainTopology()
	cache := NewRouteCache(top)
	cache.RoutesTo(5)
	got := cache.Warm(context.Background(), []int{5, 6, 6, 0}, 0)
	if got != 2 {
		t.Fatalf("Warm = %d, want 2 (dest 5 cached, dest 6 duplicated)", got)
	}
	if cache.Computed() != 3 {
		t.Fatalf("Computed = %d, want 3", cache.Computed())
	}
}
