package bgp

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"metascritic/internal/asgraph"
)

// numShards spreads the route cache over independently locked shards so
// concurrent metros (and fan-out workers) touching different destinations
// never contend on one mutex. 16 is comfortably above the engine's worker
// counts and keeps the shard picker a shift-and-mask.
const numShards = 16

// entryOverheadBytes is the per-entry bookkeeping charged on top of the
// packed Routes storage: the Routes slice headers + seq/ref inside
// cacheEntry (~112 B as a heap object), the map bucket share for an
// int→pointer entry (~24 B amortized), and the clock-queue slot (8 B).
// The byte budget is meant to bound real process footprint, so the
// accounting must include what the shard structures themselves cost, not
// just the arrays they point at.
const entryOverheadBytes = 144

// shardOf maps a destination to its shard with a Fibonacci hash — cheap
// and well mixed even for the sequential destination ids the experiments
// sweep.
func shardOf(dest int) uint32 {
	return (uint32(dest) * 0x9E3779B9) >> 28 & (numShards - 1)
}

// Admission tells the cache how a lookup relates to the working set.
//
// AdmitWorking (the default, used by the measurement pipeline) marks the
// entry recently-used on hit and always admits on miss. AdmitTransient is
// for one-shot sweeps — forensics VisibleLinks scans, looking-glass dumps —
// that read thousands of destinations exactly once: a transient hit does
// not refresh the entry's clock bit, and a transient miss is not admitted
// at all when the shard is already at its byte budget, so a sweep cannot
// evict the measurement working set it races with.
type Admission uint8

const (
	AdmitWorking Admission = iota
	AdmitTransient
)

// RouteCache computes and memoizes per-destination propagation results in
// the packed Routes encoding. It is safe for concurrent use: the cache is
// sharded by destination hash, and concurrent misses on the same
// destination are deduplicated singleflight-style — the first caller runs
// the propagation, every other caller blocks on that in-flight computation
// instead of duplicating the run. Under the multi-metro engine many metros
// ask for the same transit destinations at once.
//
// The cache can be byte-bounded (SetBudget): each shard keeps a
// second-chance FIFO over its entries and evicts cold destinations once
// its share of the budget is exceeded. Eviction only drops the cache's
// reference — published views stay immutable and valid — and an evicted
// destination recomputes through the normal singleflight path on its next
// lookup, so a bounded cache returns byte-identical routes to an unbounded
// one (propagation is deterministic per topology epoch).
//
// Returned Routes views are immutable; callers may hold them indefinitely.
type RouteCache struct {
	t      *Topology
	shards [numShards]cacheShard

	// budget is the total byte budget across shards; 0 means unbounded.
	budget atomic.Int64

	// propNanos accumulates wall-time spent inside propagation runs
	// (summed across workers, so it can exceed elapsed time on
	// multi-core fan-outs).
	propNanos atomic.Int64

	// epoch counts invalidation passes (see mutate.go); invalidated and
	// retained tally entries dropped vs. kept across those passes.
	epoch       atomic.Uint32
	invalidated atomic.Int64
	retained    atomic.Int64
}

type cacheShard struct {
	mu       sync.Mutex
	cache    map[int]*cacheEntry
	inflight map[int]*routeFlight

	// queue is the second-chance FIFO: one live slot per cached entry,
	// identified by (dest, seq). Slots are popped from qhead; a slot
	// whose seq no longer matches the map entry is stale (the entry was
	// invalidated or recycled) and is skipped lazily, which keeps
	// Invalidate O(affected entries) with no queue surgery.
	queue   []clockSlot
	qhead   int
	nextSeq uint32

	hits         int64 // lookups served from cache
	computed     int64 // propagation runs actually executed
	bytes        int64 // footprint held: packed storage + per-entry overhead
	evicted      int64 // entries dropped by budget eviction
	evictedBytes int64 // bytes released by budget eviction
	bypassed     int64 // transient misses not admitted (shard at budget)
}

// cacheEntry is one cached destination. ref is the clock bit: set on a
// working-set hit, cleared (second chance) the first time the eviction
// scan reaches the entry, evicted the second time.
type cacheEntry struct {
	routes Routes
	seq    uint32
	ref    bool
}

type clockSlot struct {
	dest int32
	seq  uint32
}

// routeFlight is one in-progress propagation; routes is written before
// done is closed and read only after it.
type routeFlight struct {
	done   chan struct{}
	routes Routes
}

// NewRouteCache returns an unbounded cache over t.
func NewRouteCache(t *Topology) *RouteCache {
	c := &RouteCache{t: t}
	for i := range c.shards {
		c.shards[i].cache = map[int]*cacheEntry{}
		c.shards[i].inflight = map[int]*routeFlight{}
	}
	return c
}

// SetBudget bounds the cache to roughly budget bytes of route storage
// (packed arrays + per-entry overhead), split evenly across shards. A
// budget <= 0 removes the bound. Shrinking the budget evicts immediately;
// each shard always retains at least one entry, so a budget smaller than
// one packed view degrades to per-shard most-recent caching rather than
// thrashing forever.
func (c *RouteCache) SetBudget(budget int64) {
	if budget < 0 {
		budget = 0
	}
	c.budget.Store(budget)
	if budget == 0 {
		return
	}
	per := c.shardBudget()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.evict(per)
		sh.mu.Unlock()
	}
}

// Budget returns the configured byte budget (0 = unbounded).
func (c *RouteCache) Budget() int64 { return c.budget.Load() }

// shardBudget is one shard's share of the total budget, rounded up.
func (c *RouteCache) shardBudget() int64 {
	b := c.budget.Load()
	if b <= 0 {
		return 0
	}
	return (b + numShards - 1) / numShards
}

// entrySize is the footprint charged for one cached view.
func entrySize(r Routes) int64 { return int64(r.Bytes()) + entryOverheadBytes }

// RoutesTo returns (computing if needed) all ASes' best routes toward
// dest as a packed view, admitting the entry to the working set.
func (c *RouteCache) RoutesTo(dest int) Routes {
	return c.routesTo(dest, nil, AdmitWorking)
}

// RoutesToTransient is RoutesTo for one-shot sweeps: the lookup neither
// refreshes the entry's recency nor admits a new entry when the shard is
// already at its byte budget (see Admission).
func (c *RouteCache) RoutesToTransient(dest int) Routes {
	return c.routesTo(dest, nil, AdmitTransient)
}

// routesTo is RoutesTo with an optional caller-owned propagation scratch;
// fan-out workers pass their per-worker scratch, single lookups borrow one
// from the pool for the duration of the run.
func (c *RouteCache) routesTo(dest int, s *propScratch, adm Admission) Routes {
	sh := &c.shards[shardOf(dest)]
	sh.mu.Lock()
	if e, ok := sh.cache[dest]; ok {
		sh.hits++
		if adm == AdmitWorking {
			e.ref = true
		}
		r := e.routes
		sh.mu.Unlock()
		return r
	}
	if fl, ok := sh.inflight[dest]; ok {
		// Someone else is already propagating this destination: wait for
		// their result instead of duplicating the run.
		sh.mu.Unlock()
		<-fl.done
		return fl.routes
	}
	fl := &routeFlight{done: make(chan struct{})}
	sh.inflight[dest] = fl
	sh.computed++
	sh.mu.Unlock()

	scratch := s
	if scratch == nil {
		scratch = getScratch(c.t.n)
	}
	start := time.Now()
	scratch.origin1[0] = Origin{AS: dest, Flag: 1}
	scratch.run(c.t, scratch.origin1[:])
	r := newRoutes(c.t.n)
	scratch.emitPacked(r)
	c.propNanos.Add(time.Since(start).Nanoseconds())
	if s == nil {
		putScratch(scratch)
	}
	fl.routes = r

	per := c.shardBudget()
	sh.mu.Lock()
	if adm == AdmitTransient && per > 0 && sh.bytes+entrySize(r) > per {
		// A sweep destination the budget has no room for: hand the view
		// to the caller (and any singleflight joiners) without caching
		// it, so the sweep cannot push the working set out.
		sh.bypassed++
	} else {
		sh.insert(dest, r)
		sh.evict(per)
	}
	delete(sh.inflight, dest)
	sh.mu.Unlock()
	close(fl.done)
	return r
}

// insert adds a freshly computed view under sh.mu.
func (sh *cacheShard) insert(dest int, r Routes) {
	sh.nextSeq++
	sh.cache[dest] = &cacheEntry{routes: r, seq: sh.nextSeq}
	sh.queue = append(sh.queue, clockSlot{dest: int32(dest), seq: sh.nextSeq})
	sh.bytes += entrySize(r)
}

// evict walks the second-chance queue under sh.mu until the shard fits its
// budget share (0 = unbounded, no-op). Entries with the clock bit set get
// it cleared and move to the back; stale slots — seq mismatch after an
// invalidation or recycle — are skipped. At least one entry is always
// retained so an oversized single view cannot thrash.
func (sh *cacheShard) evict(budget int64) {
	if budget <= 0 {
		return
	}
	for sh.bytes > budget && len(sh.cache) > 1 && sh.qhead < len(sh.queue) {
		slot := sh.queue[sh.qhead]
		sh.qhead++
		e, ok := sh.cache[int(slot.dest)]
		if !ok || e.seq != slot.seq {
			continue // stale: entry invalidated or recycled since queued
		}
		if e.ref {
			e.ref = false
			sh.queue = append(sh.queue, slot)
			continue
		}
		size := entrySize(e.routes)
		delete(sh.cache, int(slot.dest))
		sh.bytes -= size
		sh.evicted++
		sh.evictedBytes += size
	}
	sh.compact()
}

// compact reclaims the consumed queue prefix once it dominates the slice,
// keeping queue memory proportional to the live entry count.
func (sh *cacheShard) compact() {
	if sh.qhead > 64 && sh.qhead > len(sh.queue)/2 {
		n := copy(sh.queue, sh.queue[sh.qhead:])
		sh.queue = sh.queue[:n]
		sh.qhead = 0
	}
}

// Contains reports whether dest's routes are already cached. An in-flight
// computation counts as absent: the caller may still want to join it via
// RoutesTo, and a prefetcher that skips in-flight destinations would give
// up the chance to block until they are warm.
func (c *RouteCache) Contains(dest int) bool {
	sh := &c.shards[shardOf(dest)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.cache[dest]
	return ok
}

// Warm computes routes for every distinct destination in dests that is not
// yet cached, fanning the propagation runs over a bounded worker pool with
// one pooled scratch per worker. It returns the number of distinct missing
// destinations it set out to compute. Cancelling ctx stops the fan-out
// early; destinations already claimed keep computing via singleflight, so
// no waiter is ever stranded.
func (c *RouteCache) Warm(ctx context.Context, dests []int, workers int) int {
	seen := make(map[int]struct{}, len(dests))
	todo := make([]int, 0, len(dests))
	for _, d := range dests {
		if _, ok := seen[d]; ok {
			continue
		}
		seen[d] = struct{}{}
		if !c.Contains(d) {
			todo = append(todo, d)
		}
	}
	if len(todo) == 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(todo) {
		workers = len(todo)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s := getScratch(c.t.n)
			defer putScratch(s)
			for {
				if ctx != nil && ctx.Err() != nil {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= len(todo) {
					return
				}
				c.routesTo(todo[i], s, AdmitWorking)
			}
		}()
	}
	wg.Wait()
	return len(todo)
}

// RoutesToAll is the batch form of RoutesTo: it warms every distinct
// missing destination across the worker pool, then gathers the views in
// input order (out[i] corresponds to dests[i]; duplicate destinations
// share one cached view). On cancellation it returns ctx.Err without
// gathering.
func (c *RouteCache) RoutesToAll(ctx context.Context, dests []int, workers int) ([]Routes, error) {
	c.Warm(ctx, dests, workers)
	if ctx != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	out := make([]Routes, len(dests))
	for i, d := range dests {
		out[i] = c.routesTo(d, nil, AdmitWorking)
	}
	return out, nil
}

// Computed returns the number of propagation runs executed so far — the
// cache's miss count after singleflight deduplication (used by tests and
// run stats).
func (c *RouteCache) Computed() int64 {
	var total int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += sh.computed
		sh.mu.Unlock()
	}
	return total
}

// Topology returns the underlying topology.
func (c *RouteCache) Topology() *Topology { return c.t }

// CacheStats is a point-in-time snapshot of a route cache's counters,
// surfaced through engine.RunStats, the daemon's /admin/stats, and the
// CLI batch summary.
type CacheStats struct {
	Shards       int           // number of lock shards
	Entries      int           // cached destinations
	Bytes        int64         // footprint held (packed storage + per-entry overhead)
	BudgetBytes  int64         // configured byte budget (0 = unbounded)
	Hits         int64         // lookups served from cache
	Computed     int64         // propagation runs executed (misses after dedup)
	Evicted      int64         // entries dropped by budget eviction
	EvictedBytes int64         // bytes released by budget eviction
	Bypassed     int64         // transient lookups not admitted (shard at budget)
	PropTime     time.Duration // wall-time summed over propagation runs
	Epoch        uint32        // invalidation passes absorbed
	Invalidated  int64         // entries dropped by scoped/full invalidation
	Retained     int64         // entries that survived scoped invalidation passes
}

// Stats snapshots the cache counters across all shards.
func (c *RouteCache) Stats() CacheStats {
	st := CacheStats{
		Shards:      numShards,
		BudgetBytes: c.budget.Load(),
		PropTime:    time.Duration(c.propNanos.Load()),
		Epoch:       c.epoch.Load(),
		Invalidated: c.invalidated.Load(),
		Retained:    c.retained.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Entries += len(sh.cache)
		st.Bytes += sh.bytes
		st.Hits += sh.hits
		st.Computed += sh.computed
		st.Evicted += sh.evicted
		st.EvictedBytes += sh.evictedBytes
		st.Bypassed += sh.bypassed
		sh.mu.Unlock()
	}
	return st
}

// VisibleLinks returns the AS-level links that appear on the best paths
// from the monitor ASes toward every destination: the "public BGP view" of
// a set of collectors. Valley-free export makes peering links invisible
// unless a monitor sits in one of the peers or their customer cones,
// reproducing the visibility bias of §1.
//
// Per destination the selected routes form an in-tree (one next hop per
// AS), so instead of re-walking one full path per monitor the walk stops
// at the first AS already visited for this destination — every link past
// it was emitted by an earlier monitor's walk.
//
// The sweep reads each destination once, so lookups use transient
// admission: on a budgeted cache a forensics scan cannot evict the
// measurement working set it runs beside.
func VisibleLinks(cache *RouteCache, monitors []int, dests []int) map[asgraph.Pair]bool {
	visible := map[asgraph.Pair]bool{}
	n := cache.t.n
	visited := make([]uint32, n)
	var epoch uint32
	for _, d := range dests {
		routes := cache.RoutesToTransient(d)
		epoch++
		for _, m := range monitors {
			if m < 0 || m >= n || !routes.Reachable(m) {
				continue
			}
			cur := m
			for steps := 0; routes.Class(cur) != ClassOwn; steps++ {
				if visited[cur] == epoch {
					break // suffix already emitted for this destination
				}
				visited[cur] = epoch
				nh := routes.NextHop(cur)
				if nh < 0 || steps > n {
					break // defensive: corrupt route state
				}
				visible[asgraph.MakePair(cur, nh)] = true
				cur = nh
			}
		}
	}
	return visible
}

// LookingGlass returns one AS's full routing view toward the given
// destinations: the AS-level paths its selected best routes follow. This
// is the per-operator view the paper queries from public Looking Glass
// servers (§4.1, Appx. H). Lookups use transient admission (see
// VisibleLinks).
func LookingGlass(cache *RouteCache, as int, dests []int) map[int][]int {
	out := make(map[int][]int, len(dests))
	for _, d := range dests {
		if p := cache.RoutesToTransient(d).PathFrom(as); p != nil {
			out[d] = p
		}
	}
	return out
}

// FlatteningMetrics summarizes the best-path structure from a set of source
// ASes toward a set of destinations: the mean AS-path length and the
// fraction of routes whose selected class at the source is Provider (the
// source must buy transit to reach the destination).
type FlatteningMetrics struct {
	MeanPathLen  float64
	ProviderFrac float64
	Reachable    int
}

// Flattening computes FlatteningMetrics over the given sources and
// destinations (skipping src == dst and unreachable pairs). Lookups use
// transient admission (see VisibleLinks).
func Flattening(cache *RouteCache, sources, dests []int) FlatteningMetrics {
	var m FlatteningMetrics
	var lenSum float64
	provider := 0
	for _, d := range dests {
		routes := cache.RoutesToTransient(d)
		for _, s := range sources {
			if s == d || !routes.Reachable(s) {
				continue
			}
			m.Reachable++
			lenSum += float64(routes.PathLen(s))
			if routes.Class(s) == ClassProvider {
				provider++
			}
		}
	}
	if m.Reachable > 0 {
		m.MeanPathLen = lenSum / float64(m.Reachable)
		m.ProviderFrac = float64(provider) / float64(m.Reachable)
	}
	return m
}
