//go:build race

package bgp

// raceEnabled reports whether the race detector is active; sync.Pool
// deliberately drops items under -race, so allocation pins are skipped.
const raceEnabled = true
