package bgp

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// routesEqual compares two packed views byte-for-byte.
func routesEqual(a, b Routes) bool {
	if a.Len() != b.Len() {
		return false
	}
	ab := make([]byte, 0, a.Bytes())
	bb := make([]byte, 0, b.Bytes())
	for i := 0; i < a.Len(); i++ {
		ab = append(ab, byte(a.next[i]), byte(a.next[i]>>8), byte(a.next[i]>>16), byte(a.next[i]>>24),
			byte(a.plen[i]), byte(a.plen[i]>>8), a.class[i], a.flags[i])
		bb = append(bb, byte(b.next[i]), byte(b.next[i]>>8), byte(b.next[i]>>16), byte(b.next[i]>>24),
			byte(b.plen[i]), byte(b.plen[i]>>8), b.class[i], b.flags[i])
	}
	return bytes.Equal(ab, bb)
}

// shardAccounting recomputes a cache's byte counter from its live entries
// and checks it matches the incremental bookkeeping.
func shardAccounting(t *testing.T, c *RouteCache) {
	t.Helper()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		var want int64
		for _, e := range sh.cache {
			want += entrySize(e.routes)
		}
		got := sh.bytes
		sh.mu.Unlock()
		if got != want {
			t.Fatalf("shard %d bytes counter %d, recomputed %d", i, got, want)
		}
	}
}

// Property: a budget-capped cache returns byte-identical routes to an
// unbounded one over the same (random) lookup sequence, for any budget —
// eviction may cost recomputes, never correctness.
func TestBudgetedCacheByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		n := 20 + rng.Intn(40)
		top := randomTopology(rng, n)
		free := NewRouteCache(top)
		capped := NewRouteCache(top)
		// A budget near a handful of entries forces constant eviction.
		capped.SetBudget(int64(4 * (8*n + entryOverheadBytes)))
		for i := 0; i < 200; i++ {
			d := rng.Intn(n)
			var a, b Routes
			if rng.Intn(4) == 0 {
				a, b = free.RoutesToTransient(d), capped.RoutesToTransient(d)
			} else {
				a, b = free.RoutesTo(d), capped.RoutesTo(d)
			}
			if !routesEqual(a, b) {
				t.Fatalf("trial %d: routes to %d differ between capped and unbounded cache", trial, d)
			}
		}
		st := capped.Stats()
		if st.Evicted == 0 {
			t.Fatalf("trial %d: tight budget evicted nothing (stats %+v)", trial, st)
		}
		if st.Bytes > st.BudgetBytes+numShards*int64(8*n+entryOverheadBytes) {
			t.Fatalf("trial %d: bytes %d far above budget %d", trial, st.Bytes, st.BudgetBytes)
		}
		shardAccounting(t, capped)
	}
}

// The budget actually bounds the footprint: sweeping many destinations
// through a capped cache keeps Bytes near the budget and counts evictions,
// while the same sweep on an unbounded cache grows linearly.
func TestBudgetBoundsBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 64
	top := randomTopology(rng, n)
	c := NewRouteCache(top)
	budget := int64(20 * (8*n + entryOverheadBytes))
	c.SetBudget(budget)
	if c.Budget() != budget {
		t.Fatalf("Budget() = %d, want %d", c.Budget(), budget)
	}
	for d := 0; d < n; d++ {
		c.RoutesTo(d)
	}
	st := c.Stats()
	// Each shard may round its share up and retains at least one entry,
	// so allow one entry of slack per shard above the configured budget.
	slack := numShards * int64(8*n+entryOverheadBytes)
	if st.Bytes > budget+slack {
		t.Fatalf("bytes %d exceeds budget %d (+%d slack)", st.Bytes, budget, slack)
	}
	if st.Evicted == 0 || st.EvictedBytes == 0 {
		t.Fatalf("expected evictions, stats %+v", st)
	}
	if st.Entries >= n {
		t.Fatalf("all %d destinations still cached under budget", n)
	}
	shardAccounting(t, c)

	// Removing the bound stops eviction: everything fits again.
	c.SetBudget(0)
	for d := 0; d < n; d++ {
		c.RoutesTo(d)
	}
	evictedBefore := c.Stats().Evicted
	for d := 0; d < n; d++ {
		c.RoutesTo(d)
	}
	st = c.Stats()
	if st.Entries != n {
		t.Fatalf("unbounded cache holds %d entries, want %d", st.Entries, n)
	}
	if st.Evicted != evictedBefore {
		t.Fatalf("unbounded cache evicted (%d -> %d)", evictedBefore, st.Evicted)
	}
}

// Second chance: entries the working set keeps hitting survive a sweep of
// cold lookups; purely cold entries are the ones evicted.
func TestEvictionPrefersCold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 96
	top := randomTopology(rng, n)
	c := NewRouteCache(top)
	c.SetBudget(int64(32 * (8*n + entryOverheadBytes)))

	hot := []int{3, 17, 29, 41}
	touchHot := func() {
		for _, d := range hot {
			c.RoutesTo(d)
		}
	}
	touchHot()
	for d := 0; d < n; d++ {
		c.RoutesTo(d)
		if d%4 == 0 {
			touchHot() // keep the clock bits set while cold entries stream by
		}
	}
	for _, d := range hot {
		if !c.Contains(d) {
			t.Fatalf("hot destination %d was evicted despite constant hits", d)
		}
	}
	if st := c.Stats(); st.Evicted == 0 {
		t.Fatalf("cold sweep evicted nothing, stats %+v", st)
	}
}

// Transient admission: once the budget is full, a transient sweep is
// served without displacing the cached working set.
func TestTransientAdmissionBypassesFullCache(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 80
	top := randomTopology(rng, n)
	c := NewRouteCache(top)
	working := 12
	c.SetBudget(int64(working * (8*n + entryOverheadBytes)))
	for d := 0; d < working; d++ {
		c.RoutesTo(d)
	}
	cachedBefore := map[int]bool{}
	for d := 0; d < working; d++ {
		cachedBefore[d] = c.Contains(d)
	}
	for d := working; d < n; d++ {
		c.RoutesToTransient(d)
	}
	for d := 0; d < working; d++ {
		if cachedBefore[d] && !c.Contains(d) {
			t.Fatalf("transient sweep evicted working-set destination %d", d)
		}
	}
	st := c.Stats()
	if st.Bypassed == 0 {
		t.Fatalf("transient sweep over a full cache bypassed nothing, stats %+v", st)
	}
	shardAccounting(t, c)
}

// Eviction composes with epoch invalidation: scoped and full invalidation
// leave stale queue slots behind, and subsequent budgeted inserts must
// skip them without corrupting the byte accounting or the route results.
func TestEvictionComposesWithInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 60
	top := randomTopology(rng, n)
	c := NewRouteCache(top)
	c.SetBudget(int64(10 * (8*n + entryOverheadBytes)))
	for d := 0; d < n; d++ {
		c.RoutesTo(d)
	}
	if top.RemoveP2P(1, 2) {
		top.AddP2P(1, 2)
	}
	c.Invalidate([][2]int{{1, 2}})
	shardAccounting(t, c)
	for d := 0; d < n; d++ {
		c.RoutesTo(d)
	}
	shardAccounting(t, c)
	c.InvalidateAll()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("InvalidateAll left entries=%d bytes=%d", st.Entries, st.Bytes)
	}
	for d := 0; d < n; d++ {
		fresh := top.PropagateFrom(d)
		got := c.RoutesTo(d).Expand()
		for a := range got {
			if got[a] != fresh[a] {
				t.Fatalf("post-invalidation route mismatch dest %d as %d", d, a)
			}
		}
	}
	shardAccounting(t, c)
}

// Concurrent RoutesTo / Warm / eviction / invalidation / stats: the
// budgeted cache's concurrency contract, exercised under `make race-bgp`.
func TestConcurrentEvictInvalidateRace(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 50
	top := randomTopology(rng, n)
	c := NewRouteCache(top)
	c.SetBudget(int64(8 * (8*n + entryOverheadBytes)))

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				d := r.Intn(n)
				if r.Intn(5) == 0 {
					c.RoutesToTransient(d)
				} else {
					c.RoutesTo(d)
				}
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			c.Warm(nil, []int{i % n, (i * 7) % n, (i * 13) % n}, 2)
			c.Stats()
		}
	}()
	wg.Wait()

	// Mutation + invalidation requires exclusive topology access (the
	// serving layer's world lock), so it runs after the readers drain.
	c.Invalidate([][2]int{{0, 1}})
	shardAccounting(t, c)
	for d := 0; d < n; d++ {
		c.RoutesTo(d)
	}
	shardAccounting(t, c)
}
