package bgp

import (
	"math/rand"
	"testing"
)

func hasAdj(xs []int32, v int32) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func sameRoutes(a, b Routes) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			return false
		}
	}
	return true
}

// TestInvalidateScopedSoundness is the load-bearing property of the
// epoch invalidation: after random link churn + Invalidate(links),
// every destination — recomputed or retained — must serve routes
// byte-identical to a cold cache over the mutated topology.
func TestInvalidateScopedSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	retainedTotal := 0
	for trial := 0; trial < 25; trial++ {
		n := 30 + rng.Intn(40)
		topo := randomTopology(rng, n)
		c := NewRouteCache(topo)
		for d := 0; d < n; d++ {
			c.RoutesTo(d)
		}

		// Random churn: drop some existing peerings, add some new ones.
		var links [][2]int
		var peerings [][2]int
		for a := 0; a < n; a++ {
			for _, b := range topo.peers[a] {
				if a < int(b) {
					peerings = append(peerings, [2]int{a, int(b)})
				}
			}
		}
		for k := 0; k < 3 && len(peerings) > 0; k++ {
			i := rng.Intn(len(peerings))
			pr := peerings[i]
			peerings = append(peerings[:i], peerings[i+1:]...)
			if !topo.RemoveP2P(pr[0], pr[1]) {
				t.Fatalf("trial %d: RemoveP2P(%d,%d) found no link", trial, pr[0], pr[1])
			}
			links = append(links, pr)
		}
		for k := 0; k < 3; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b || hasAdj(topo.peers[a], int32(b)) ||
				hasAdj(topo.providers[a], int32(b)) || hasAdj(topo.customers[a], int32(b)) {
				continue
			}
			topo.AddP2P(a, b)
			links = append(links, [2]int{a, b})
		}

		dropped := c.Invalidate(links)
		retainedTotal += n - dropped
		cold := NewRouteCache(topo)
		for d := 0; d < n; d++ {
			if got, want := c.RoutesTo(d), cold.RoutesTo(d); !sameRoutes(got, want) {
				t.Fatalf("trial %d: dest %d routes diverge after scoped invalidation (dropped=%d, links=%v)",
					trial, d, dropped, links)
			}
		}
	}
	// The criterion must actually be scoped: across the random trials a
	// solid share of warm entries has to survive link churn.
	if retainedTotal == 0 {
		t.Fatal("scoped invalidation never retained a single entry across 25 trials")
	}
	t.Logf("retained %d entries across trials", retainedTotal)
}

// TestInvalidateRetainsUnaffected pins that scoped invalidation actually
// retains entries: on a line topology 0—1—2 … a leaf-link edit must not
// evict destinations on the far side that never route through it.
func TestInvalidateRetainsUnaffected(t *testing.T) {
	// Two provider trees joined only at the root peering: 1←0, 2←0 … and
	// a disjoint island 3←4 with no route between the components.
	topo := NewTopology(6)
	topo.AddC2P(1, 0) // 1 buys from 0
	topo.AddC2P(2, 0)
	topo.AddP2P(1, 2)
	topo.AddC2P(3, 4) // island: {3,4,5}
	topo.AddP2P(4, 5)
	c := NewRouteCache(topo)
	for d := 0; d < 6; d++ {
		c.RoutesTo(d)
	}
	// Churn inside the island: mainland destinations are unreachable from
	// 4 and 5, so their entries must survive.
	topo.RemoveP2P(4, 5)
	dropped := c.Invalidate([][2]int{{4, 5}})
	if dropped == 0 {
		t.Fatal("island churn dropped nothing; island destinations route through 4-5")
	}
	st := c.Stats()
	if st.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", st.Epoch)
	}
	if st.Invalidated != int64(dropped) || st.Retained == 0 {
		t.Fatalf("stats = %+v, want Invalidated=%d and Retained>0", st, dropped)
	}
	if dropped >= 6 {
		t.Fatalf("all %d entries dropped; invalidation is not destination-scoped", dropped)
	}
	if c.Contains(4) {
		t.Fatal("dest 4 survived invalidation though 4 routes to itself")
	}
	if !c.Contains(0) {
		t.Fatal("mainland dest 0 was evicted by island churn")
	}
}

func TestInvalidateAllAfterGrow(t *testing.T) {
	topo := NewTopology(3)
	topo.AddC2P(1, 0)
	topo.AddC2P(2, 0)
	c := NewRouteCache(topo)
	for d := 0; d < 3; d++ {
		c.RoutesTo(d)
	}
	topo.Grow(4)
	if topo.N() != 4 {
		t.Fatalf("N = %d, want 4", topo.N())
	}
	topo.AddC2P(3, 1)
	if dropped := c.InvalidateAll(); dropped != 3 {
		t.Fatalf("InvalidateAll dropped %d, want 3", dropped)
	}
	r := c.RoutesTo(3)
	if r.Len() != 4 {
		t.Fatalf("post-grow routes sized %d, want 4", r.Len())
	}
	if !r.Reachable(0) || r.PathLen(0) != 2 {
		t.Fatalf("AS 0 cannot reach the new AS: %+v", r.At(0))
	}
	st := c.Stats()
	if st.Epoch != 1 || st.Invalidated != 3 {
		t.Fatalf("stats = %+v, want Epoch=1 Invalidated=3", st)
	}
}

func TestRemoveC2PTopology(t *testing.T) {
	topo := NewTopology(3)
	topo.AddC2P(1, 0)
	topo.AddC2P(2, 1)
	if !topo.RemoveC2P(2, 1) {
		t.Fatal("RemoveC2P found no relationship")
	}
	if topo.RemoveC2P(2, 1) {
		t.Fatal("second RemoveC2P reported a removal")
	}
	r := NewRouteCache(topo).RoutesTo(0)
	if r.Reachable(2) {
		t.Fatal("AS 2 still reaches 0 after losing its provider")
	}
	if !r.Reachable(1) {
		t.Fatal("AS 1 lost its provider route collaterally")
	}
}
