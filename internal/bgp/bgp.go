// Package bgp implements Gao-Rexford interdomain route propagation over an
// AS-level topology, the routing substrate the paper uses everywhere: to
// simulate traceroutes, to model the public BGP view of collectors, to
// predict the impact of prefix hijacks (§6, Fig. 7), and to compute the
// flattening metrics of Table 3.
//
// The model follows the standard Gao-Rexford conditions [58]:
//
//   - route preference: customer routes > peer routes > provider routes,
//     then shortest AS-path, then lowest next-hop index (deterministic
//     tie-break);
//   - export: customer routes (and own prefixes) are exported to everyone;
//     peer and provider routes are exported only to customers (valley-free
//     routing).
//
// Propagation supports several simultaneous origins for the same prefix,
// tracking per-AS which origins are reachable over routes tied for best —
// the paper "propagates all paths that are tied for best according to the
// Gao-Rexford model".
//
// The package is built for throughput, because every experiment funnels
// through it:
//
//   - Propagation runs on a pooled, epoch-stamped workspace (propScratch):
//     after warm-up a run touches only the ASes it reaches and performs no
//     allocations. PropagateInto exposes the pooled path directly;
//     Propagate/PropagateFrom are thin wrappers with unchanged results.
//   - The provider-route Dijkstra uses a Dial bucket queue (all edge
//     relaxations are +1), replacing the binary heap of earlier revisions.
//   - RouteCache is sharded by destination hash, stores results in a
//     compact struct-of-arrays encoding (Routes, ~8 bytes per AS), and
//     batch-computes missing destinations over a worker pool
//     (Warm/RoutesToAll) with singleflight deduplication per destination.
package bgp

import (
	"math"

	"metascritic/internal/asgraph"
)

// Topology is the AS-level routing substrate: a transit hierarchy plus a
// peering mesh. Build one with NewTopology/AddC2P/AddP2P or FromGraph.
type Topology struct {
	n         int
	providers [][]int32 // providers[a] = ASes a buys transit from
	customers [][]int32 // reverse of providers
	peers     [][]int32
}

// NewTopology returns an empty topology over n ASes.
func NewTopology(n int) *Topology {
	return &Topology{
		n:         n,
		providers: make([][]int32, n),
		customers: make([][]int32, n),
		peers:     make([][]int32, n),
	}
}

// FromGraph copies the adjacency of an asgraph.Graph, sizing every
// adjacency list exactly over one backing array per relation.
func FromGraph(g *asgraph.Graph) *Topology {
	n := g.N()
	t := NewTopology(n)
	provDeg := make([]int, n)
	custDeg := make([]int, n)
	peerDeg := make([]int, n)
	for c := range g.Providers {
		for _, p := range g.Providers[c] {
			provDeg[c]++
			custDeg[p]++
		}
	}
	for a := range g.Peers {
		peerDeg[a] = len(g.Peers[a])
	}
	t.providers = carveAdj(provDeg)
	t.customers = carveAdj(custDeg)
	t.peers = carveAdj(peerDeg)
	for c := range g.Providers {
		for _, p := range g.Providers[c] {
			t.providers[c] = append(t.providers[c], int32(p))
			t.customers[p] = append(t.customers[p], int32(c))
		}
	}
	for a := range g.Peers {
		for _, b := range g.Peers[a] {
			t.peers[a] = append(t.peers[a], int32(b))
		}
	}
	return t
}

// carveAdj carves per-AS slices of the given capacities (and length 0)
// out of a single backing array. The slices are capacity-clamped, so a
// later append past an AS's degree reallocates instead of bleeding into
// its neighbor's list.
func carveAdj(deg []int) [][]int32 {
	total := 0
	for _, d := range deg {
		total += d
	}
	backing := make([]int32, total)
	out := make([][]int32, len(deg))
	off := 0
	for i, d := range deg {
		if d == 0 {
			continue
		}
		out[i] = backing[off : off : off+d]
		off += d
	}
	return out
}

// N returns the number of ASes.
func (t *Topology) N() int { return t.n }

// AddC2P records that customer buys transit from provider.
func (t *Topology) AddC2P(customer, provider int) {
	t.providers[customer] = append(t.providers[customer], int32(provider))
	t.customers[provider] = append(t.customers[provider], int32(customer))
}

// AddP2P records a settlement-free peering between a and b.
func (t *Topology) AddP2P(a, b int) {
	t.peers[a] = append(t.peers[a], int32(b))
	t.peers[b] = append(t.peers[b], int32(a))
}

// Clone returns a deep copy that can be extended independently (used to
// derive the +measured and +inferred prediction topologies). Each relation
// is copied into one exactly sized backing array; the per-AS slices are
// capacity-clamped so appends on the clone reallocate instead of
// clobbering a neighbor's adjacency.
func (t *Topology) Clone() *Topology {
	return &Topology{
		n:         t.n,
		providers: cloneAdj(t.providers),
		customers: cloneAdj(t.customers),
		peers:     cloneAdj(t.peers),
	}
}

func cloneAdj(adj [][]int32) [][]int32 {
	total := 0
	for _, s := range adj {
		total += len(s)
	}
	backing := make([]int32, 0, total)
	out := make([][]int32, len(adj))
	for i, s := range adj {
		if len(s) == 0 {
			continue
		}
		off := len(backing)
		backing = append(backing, s...)
		out[i] = backing[off:len(backing):len(backing)]
	}
	return out
}

// NumP2P returns the number of distinct peering links.
func (t *Topology) NumP2P() int {
	total := 0
	for _, ps := range t.peers {
		total += len(ps)
	}
	return total / 2
}

// RouteClass orders routes by Gao-Rexford preference.
type RouteClass int8

// Route classes, from most to least preferred.
const (
	ClassNone RouteClass = iota // no route
	ClassProvider
	ClassPeer
	ClassCustomer
	ClassOwn // the AS originates the prefix
)

func (c RouteClass) String() string {
	switch c {
	case ClassOwn:
		return "own"
	case ClassCustomer:
		return "customer"
	case ClassPeer:
		return "peer"
	case ClassProvider:
		return "provider"
	default:
		return "none"
	}
}

// Route is the selected best route of one AS toward the propagated prefix.
type Route struct {
	Class   RouteClass
	Len     int32 // AS-path length in hops (0 at the origin)
	NextHop int32 // neighbor the route was learned from; -1 at the origin
	Flags   uint8 // union of origin flags over all routes tied for best
}

// Reachable reports whether the AS has any route.
func (r Route) Reachable() bool { return r.Class != ClassNone }

// Origin is one announcement source: the prefix is originated at AS with
// the given flag bit(s) set.
type Origin struct {
	AS   int
	Flag uint8
}

const unreached = int32(math.MaxInt32)

// PropagateInto computes every AS's best route toward a prefix announced
// by the given origins, under Gao-Rexford preferences and valley-free
// export, writing the result into dst (grown if too small) and returning
// it. The run borrows a pooled workspace, so a caller that reuses dst
// across calls propagates with zero allocations after warm-up.
func (t *Topology) PropagateInto(dst []Route, origins []Origin) []Route {
	if cap(dst) < t.n {
		dst = make([]Route, t.n)
	}
	dst = dst[:t.n]
	s := getScratch(t.n)
	s.run(t, origins)
	s.emitRoutes(dst)
	putScratch(s)
	return dst
}

// Propagate is PropagateInto with a freshly allocated result slice.
func (t *Topology) Propagate(origins []Origin) []Route {
	return t.PropagateInto(nil, origins)
}

// PropagateFrom is the common single-origin case.
func (t *Topology) PropagateFrom(origin int) []Route {
	return t.Propagate([]Origin{{AS: origin, Flag: 1}})
}

// Path reconstructs the AS-level path from AS `from` to the origin using
// the next-hop chain of a propagation result. Returns nil when unreachable.
func Path(routes []Route, from int) []int {
	if !routes[from].Reachable() {
		return nil
	}
	path := []int{from}
	cur := from
	for routes[cur].Class != ClassOwn {
		nh := int(routes[cur].NextHop)
		if nh < 0 || len(path) > len(routes)+1 {
			return nil // defensive: corrupt route state
		}
		path = append(path, nh)
		cur = nh
	}
	return path
}

// Flag bits for hijack experiments.
const (
	FlagVictim   uint8 = 1
	FlagAttacker uint8 = 2
)

// SimulateHijack propagates competing announcements of the same prefix:
// the victim's announcement is seeded at victimSeeds (the providers that
// receive the legitimate announcement) and the attacker's at attackerSeeds.
// The returned slice holds, per AS, the union of origin flags over its
// routes tied for best. The run emits only the flag bytes straight off the
// pooled workspace — the hijack sweeps of Fig. 7 never need full routes.
func (t *Topology) SimulateHijack(victimSeeds, attackerSeeds []int) []uint8 {
	origins := make([]Origin, 0, len(victimSeeds)+len(attackerSeeds))
	for _, s := range victimSeeds {
		origins = append(origins, Origin{AS: s, Flag: FlagVictim})
	}
	for _, s := range attackerSeeds {
		origins = append(origins, Origin{AS: s, Flag: FlagAttacker})
	}
	s := getScratch(t.n)
	s.run(t, origins)
	out := make([]uint8, t.n)
	s.emitFlags(out)
	putScratch(s)
	return out
}
