// Package bgp implements Gao-Rexford interdomain route propagation over an
// AS-level topology, the routing substrate the paper uses everywhere: to
// simulate traceroutes, to model the public BGP view of collectors, to
// predict the impact of prefix hijacks (§6, Fig. 7), and to compute the
// flattening metrics of Table 3.
//
// The model follows the standard Gao-Rexford conditions [58]:
//
//   - route preference: customer routes > peer routes > provider routes,
//     then shortest AS-path, then lowest next-hop index (deterministic
//     tie-break);
//   - export: customer routes (and own prefixes) are exported to everyone;
//     peer and provider routes are exported only to customers (valley-free
//     routing).
//
// Propagation supports several simultaneous origins for the same prefix,
// tracking per-AS which origins are reachable over routes tied for best —
// the paper "propagates all paths that are tied for best according to the
// Gao-Rexford model".
package bgp

import (
	"math"
	"sync"

	"metascritic/internal/asgraph"
)

// Topology is the AS-level routing substrate: a transit hierarchy plus a
// peering mesh. Build one with NewTopology/AddC2P/AddP2P or FromGraph.
type Topology struct {
	n         int
	providers [][]int32 // providers[a] = ASes a buys transit from
	customers [][]int32 // reverse of providers
	peers     [][]int32
}

// NewTopology returns an empty topology over n ASes.
func NewTopology(n int) *Topology {
	return &Topology{
		n:         n,
		providers: make([][]int32, n),
		customers: make([][]int32, n),
		peers:     make([][]int32, n),
	}
}

// FromGraph copies the adjacency of an asgraph.Graph.
func FromGraph(g *asgraph.Graph) *Topology {
	t := NewTopology(g.N())
	for c := range g.Providers {
		for _, p := range g.Providers[c] {
			t.AddC2P(c, p)
		}
	}
	for a := range g.Peers {
		for _, b := range g.Peers[a] {
			if a < b {
				t.AddP2P(a, b)
			}
		}
	}
	return t
}

// N returns the number of ASes.
func (t *Topology) N() int { return t.n }

// AddC2P records that customer buys transit from provider.
func (t *Topology) AddC2P(customer, provider int) {
	t.providers[customer] = append(t.providers[customer], int32(provider))
	t.customers[provider] = append(t.customers[provider], int32(customer))
}

// AddP2P records a settlement-free peering between a and b.
func (t *Topology) AddP2P(a, b int) {
	t.peers[a] = append(t.peers[a], int32(b))
	t.peers[b] = append(t.peers[b], int32(a))
}

// Clone returns a deep copy that can be extended independently (used to
// derive the +measured and +inferred prediction topologies).
func (t *Topology) Clone() *Topology {
	c := NewTopology(t.n)
	for i := 0; i < t.n; i++ {
		c.providers[i] = append([]int32(nil), t.providers[i]...)
		c.customers[i] = append([]int32(nil), t.customers[i]...)
		c.peers[i] = append([]int32(nil), t.peers[i]...)
	}
	return c
}

// NumP2P returns the number of distinct peering links.
func (t *Topology) NumP2P() int {
	total := 0
	for _, ps := range t.peers {
		total += len(ps)
	}
	return total / 2
}

// RouteClass orders routes by Gao-Rexford preference.
type RouteClass int8

// Route classes, from most to least preferred.
const (
	ClassNone RouteClass = iota // no route
	ClassProvider
	ClassPeer
	ClassCustomer
	ClassOwn // the AS originates the prefix
)

func (c RouteClass) String() string {
	switch c {
	case ClassOwn:
		return "own"
	case ClassCustomer:
		return "customer"
	case ClassPeer:
		return "peer"
	case ClassProvider:
		return "provider"
	default:
		return "none"
	}
}

// Route is the selected best route of one AS toward the propagated prefix.
type Route struct {
	Class   RouteClass
	Len     int32 // AS-path length in hops (0 at the origin)
	NextHop int32 // neighbor the route was learned from; -1 at the origin
	Flags   uint8 // union of origin flags over all routes tied for best
}

// Reachable reports whether the AS has any route.
func (r Route) Reachable() bool { return r.Class != ClassNone }

// Origin is one announcement source: the prefix is originated at AS with
// the given flag bit(s) set.
type Origin struct {
	AS   int
	Flag uint8
}

const unreached = int32(math.MaxInt32)

// Propagate computes every AS's best route toward a prefix announced by
// the given origins, under Gao-Rexford preferences and valley-free export.
func (t *Topology) Propagate(origins []Origin) []Route {
	n := t.n
	custDist := fill32(n, unreached)
	custFlags := make([]uint8, n)
	custHop := fill32(n, -1)

	// Phase 1: customer routes — BFS from the origins over customer →
	// provider edges. Distances first.
	queue := make([]int32, 0, n)
	for _, o := range origins {
		if custDist[o.AS] != 0 {
			custDist[o.AS] = 0
			queue = append(queue, int32(o.AS))
		}
		custFlags[o.AS] |= o.Flag
	}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		for _, p := range t.providers[x] {
			if custDist[p] == unreached {
				custDist[p] = custDist[x] + 1
				queue = append(queue, p)
			}
		}
	}
	// Flags and next hops in increasing-distance order (queue is ordered
	// by BFS level).
	for _, x := range queue {
		if custDist[x] == 0 {
			continue
		}
		best := int32(-1)
		for _, c := range t.customers[x] {
			if custDist[c] == custDist[x]-1 {
				custFlags[x] |= custFlags[c]
				if best == -1 || c < best {
					best = c
				}
			}
		}
		custHop[x] = best
	}

	// Phase 2: peer routes — one peer hop onto a customer route (or the
	// origin itself).
	peerDist := fill32(n, unreached)
	peerFlags := make([]uint8, n)
	peerHop := fill32(n, -1)
	for a := 0; a < n; a++ {
		for _, b := range t.peers[a] {
			if custDist[b] == unreached {
				continue
			}
			d := custDist[b] + 1
			switch {
			case d < peerDist[a]:
				peerDist[a] = d
				peerFlags[a] = custFlags[b]
				peerHop[a] = b
			case d == peerDist[a]:
				peerFlags[a] |= custFlags[b]
				if b < peerHop[a] {
					peerHop[a] = b
				}
			}
		}
	}

	// Phase 3: provider routes — Dijkstra over provider → customer edges.
	// An AS with a customer or peer route exports that selection to its
	// customers; ASes without either depend on their providers' provider
	// routes, hence the priority queue.
	provDist := fill32(n, unreached)
	provFlags := make([]uint8, n)
	provHop := fill32(n, -1)
	pq := &nodeHeap{}
	exportLen := func(q int32) int32 {
		if custDist[q] != unreached {
			return custDist[q]
		}
		if peerDist[q] != unreached {
			return peerDist[q]
		}
		return provDist[q]
	}
	for q := int32(0); q < int32(n); q++ {
		if custDist[q] != unreached || peerDist[q] != unreached {
			pq.push(node{q, exportLen(q)})
		}
	}
	settled := make([]bool, n)
	for len(*pq) > 0 {
		nd := pq.pop()
		q := nd.id
		if settled[q] || exportLen(q) != nd.dist {
			continue
		}
		settled[q] = true
		for _, c := range t.customers[q] {
			cand := nd.dist + 1
			if cand < provDist[c] {
				provDist[c] = cand
				if custDist[c] == unreached && peerDist[c] == unreached {
					pq.push(node{c, cand})
				}
			}
		}
	}
	// Provider-route flags and hops, relaxed in increasing provDist order.
	order := make([]int32, 0, n)
	for a := int32(0); a < int32(n); a++ {
		if provDist[a] != unreached {
			order = append(order, a)
		}
	}
	sortByDist(order, provDist)
	selFlags := func(q int32) uint8 {
		if custDist[q] != unreached {
			return custFlags[q]
		}
		if peerDist[q] != unreached {
			return peerFlags[q]
		}
		return provFlags[q]
	}
	for _, a := range order {
		best := int32(-1)
		for _, q := range t.providers[a] {
			if exportLen(q) != unreached && exportLen(q)+1 == provDist[a] {
				provFlags[a] |= selFlags(q)
				if best == -1 || q < best {
					best = q
				}
			}
		}
		provHop[a] = best
	}

	// Selection.
	routes := make([]Route, n)
	for a := 0; a < n; a++ {
		switch {
		case custDist[a] == 0:
			routes[a] = Route{Class: ClassOwn, Len: 0, NextHop: -1, Flags: custFlags[a]}
		case custDist[a] != unreached:
			routes[a] = Route{Class: ClassCustomer, Len: custDist[a], NextHop: custHop[a], Flags: custFlags[a]}
		case peerDist[a] != unreached:
			routes[a] = Route{Class: ClassPeer, Len: peerDist[a], NextHop: peerHop[a], Flags: peerFlags[a]}
		case provDist[a] != unreached:
			routes[a] = Route{Class: ClassProvider, Len: provDist[a], NextHop: provHop[a], Flags: provFlags[a]}
		default:
			routes[a] = Route{Class: ClassNone, NextHop: -1}
		}
	}
	return routes
}

// PropagateFrom is the common single-origin case.
func (t *Topology) PropagateFrom(origin int) []Route {
	return t.Propagate([]Origin{{AS: origin, Flag: 1}})
}

// Path reconstructs the AS-level path from AS `from` to the origin using
// the next-hop chain of a propagation result. Returns nil when unreachable.
func Path(routes []Route, from int) []int {
	if !routes[from].Reachable() {
		return nil
	}
	path := []int{from}
	cur := from
	for routes[cur].Class != ClassOwn {
		nh := int(routes[cur].NextHop)
		if nh < 0 || len(path) > len(routes)+1 {
			return nil // defensive: corrupt route state
		}
		path = append(path, nh)
		cur = nh
	}
	return path
}

// RouteCache computes and memoizes per-destination propagation results.
// It is safe for concurrent use, and concurrent misses on the same
// destination are deduplicated singleflight-style: the first caller runs
// Propagate, every other caller blocks on that in-flight computation
// instead of duplicating the whole run — under the multi-metro engine many
// metros ask for the same transit destinations at once. Callers must treat
// returned routes as read-only.
type RouteCache struct {
	t  *Topology
	mu sync.Mutex
	// cache and inflight guarded by mu.
	cache    map[int][]Route
	inflight map[int]*routeFlight
	computed int64 // number of Propagate runs actually executed
}

// routeFlight is one in-progress propagation; routes is written before done
// is closed and read only after it.
type routeFlight struct {
	done   chan struct{}
	routes []Route
}

// NewRouteCache returns a cache over t.
func NewRouteCache(t *Topology) *RouteCache {
	return &RouteCache{t: t, cache: map[int][]Route{}, inflight: map[int]*routeFlight{}}
}

// RoutesTo returns (computing if needed) all ASes' best routes toward dest.
func (c *RouteCache) RoutesTo(dest int) []Route {
	c.mu.Lock()
	if r, ok := c.cache[dest]; ok {
		c.mu.Unlock()
		return r
	}
	if fl, ok := c.inflight[dest]; ok {
		// Someone else is already propagating this destination: wait for
		// their result instead of duplicating the run.
		c.mu.Unlock()
		<-fl.done
		return fl.routes
	}
	fl := &routeFlight{done: make(chan struct{})}
	c.inflight[dest] = fl
	c.computed++
	c.mu.Unlock()

	fl.routes = c.t.PropagateFrom(dest)

	c.mu.Lock()
	c.cache[dest] = fl.routes
	delete(c.inflight, dest)
	c.mu.Unlock()
	close(fl.done)
	return fl.routes
}

// Contains reports whether dest's routes are already cached. An in-flight
// computation counts as absent: the caller may still want to join it via
// RoutesTo, and a prefetcher that skips in-flight destinations would give
// up the chance to block until they are warm.
func (c *RouteCache) Contains(dest int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.cache[dest]
	return ok
}

// Computed returns the number of propagation runs executed so far — the
// cache's miss count after deduplication (used by tests and run stats).
func (c *RouteCache) Computed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.computed
}

// Topology returns the underlying topology.
func (c *RouteCache) Topology() *Topology { return c.t }

// VisibleLinks returns the AS-level links that appear on the best paths
// from the monitor ASes toward every destination: the "public BGP view" of
// a set of collectors. Valley-free export makes peering links invisible
// unless a monitor sits in one of the peers or their customer cones,
// reproducing the visibility bias of §1.
func VisibleLinks(cache *RouteCache, monitors []int, dests []int) map[asgraph.Pair]bool {
	visible := map[asgraph.Pair]bool{}
	for _, d := range dests {
		routes := cache.RoutesTo(d)
		for _, m := range monitors {
			p := Path(routes, m)
			for i := 0; i+1 < len(p); i++ {
				visible[asgraph.MakePair(p[i], p[i+1])] = true
			}
		}
	}
	return visible
}

// LookingGlass returns one AS's full routing view toward the given
// destinations: the AS-level paths its selected best routes follow. This
// is the per-operator view the paper queries from public Looking Glass
// servers (§4.1, Appx. H).
func LookingGlass(cache *RouteCache, as int, dests []int) map[int][]int {
	out := make(map[int][]int, len(dests))
	for _, d := range dests {
		if p := Path(cache.RoutesTo(d), as); p != nil {
			out[d] = p
		}
	}
	return out
}

// Flag bits for hijack experiments.
const (
	FlagVictim   uint8 = 1
	FlagAttacker uint8 = 2
)

// SimulateHijack propagates competing announcements of the same prefix:
// the victim's announcement is seeded at victimSeeds (the providers that
// receive the legitimate announcement) and the attacker's at attackerSeeds.
// The returned slice holds, per AS, the union of origin flags over its
// routes tied for best.
func (t *Topology) SimulateHijack(victimSeeds, attackerSeeds []int) []uint8 {
	origins := make([]Origin, 0, len(victimSeeds)+len(attackerSeeds))
	for _, s := range victimSeeds {
		origins = append(origins, Origin{AS: s, Flag: FlagVictim})
	}
	for _, s := range attackerSeeds {
		origins = append(origins, Origin{AS: s, Flag: FlagAttacker})
	}
	routes := t.Propagate(origins)
	out := make([]uint8, t.n)
	for i, r := range routes {
		if r.Reachable() {
			out[i] = r.Flags
		}
	}
	return out
}

// FlatteningMetrics summarizes the best-path structure from a set of source
// ASes toward a set of destinations: the mean AS-path length and the
// fraction of routes whose selected class at the source is Provider (the
// source must buy transit to reach the destination).
type FlatteningMetrics struct {
	MeanPathLen  float64
	ProviderFrac float64
	Reachable    int
}

// Flattening computes FlatteningMetrics over the given sources and
// destinations (skipping src == dst and unreachable pairs).
func Flattening(cache *RouteCache, sources, dests []int) FlatteningMetrics {
	var m FlatteningMetrics
	var lenSum float64
	provider := 0
	for _, d := range dests {
		routes := cache.RoutesTo(d)
		for _, s := range sources {
			if s == d || !routes[s].Reachable() {
				continue
			}
			m.Reachable++
			lenSum += float64(routes[s].Len)
			if routes[s].Class == ClassProvider {
				provider++
			}
		}
	}
	if m.Reachable > 0 {
		m.MeanPathLen = lenSum / float64(m.Reachable)
		m.ProviderFrac = float64(provider) / float64(m.Reachable)
	}
	return m
}

// --- helpers ---

type node struct {
	id   int32
	dist int32
}

// nodeHeap is a typed binary min-heap on dist. It replaces the earlier
// container/heap implementation: Push/Pop through the heap.Interface box
// every node in an interface{}, which on the Dijkstra phase of Propagate
// meant one allocation per queue operation. The typed sift loops keep the
// queue allocation-free after the backing array warms up.
type nodeHeap []node

func (h *nodeHeap) push(x node) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].dist <= s[i].dist {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *nodeHeap) pop() node {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		small := l
		if r := l + 1; r < last && s[r].dist < s[l].dist {
			small = r
		}
		if s[i].dist <= s[small].dist {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	return top
}

func fill32(n int, v int32) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func sortByDist(ids []int32, dist []int32) {
	// Insertion-friendly small sort is not enough; use a simple counting
	// bucket sort since distances are small non-negative ints.
	maxD := int32(0)
	for _, id := range ids {
		if dist[id] > maxD {
			maxD = dist[id]
		}
	}
	buckets := make([][]int32, maxD+1)
	for _, id := range ids {
		buckets[dist[id]] = append(buckets[dist[id]], id)
	}
	k := 0
	for _, b := range buckets {
		for _, id := range b {
			ids[k] = id
			k++
		}
	}
}
