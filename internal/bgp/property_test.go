package bgp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomTopology builds a random valley-free-able topology: a provider DAG
// (AS i buys from lower-indexed ASes) plus random peering.
func randomTopology(rng *rand.Rand, n int) *Topology {
	t := NewTopology(n)
	kind := map[[2]int]bool{} // existing transit pairs (canonical order)
	key := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	for i := 1; i < n; i++ {
		for k := 0; k < 1+rng.Intn(2); k++ {
			p := rng.Intn(i)
			if kind[key(i, p)] {
				continue
			}
			kind[key(i, p)] = true
			t.AddC2P(i, p)
		}
	}
	for k := 0; k < n/2; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		// A pair has exactly one relationship: never peer where a transit
		// link already exists.
		if a != b && !kind[key(a, b)] {
			kind[key(a, b)] = true
			t.AddP2P(a, b)
		}
	}
	return t
}

// Property: every reconstructed path is valley-free — once the path goes
// "down" (provider→customer) or "across" (peer), it never goes "up" or
// "across" again.
func TestValleyFreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		top := randomTopology(rng, n)
		dest := rng.Intn(n)
		routes := top.PropagateFrom(dest)
		isProviderOf := func(p, c int) bool {
			for _, x := range top.providers[c] {
				if int(x) == p {
					return true
				}
			}
			return false
		}
		isPeer := func(a, b int) bool {
			for _, x := range top.peers[a] {
				if int(x) == b {
					return true
				}
			}
			return false
		}
		for src := 0; src < n; src++ {
			p := Path(routes, src)
			if p == nil {
				continue
			}
			// Walking from src toward dest: hops are "up" when the next
			// AS is our provider, "across" when a peer, "down" when our
			// customer. Valley-free: up* (across)? down*.
			phase := 0 // 0=climbing, 1=crossed, 2=descending
			for i := 0; i+1 < len(p); i++ {
				x, y := p[i], p[i+1]
				switch {
				case isProviderOf(y, x): // up
					if phase != 0 {
						return false
					}
				case isPeer(x, y): // across
					if phase != 0 {
						return false
					}
					phase = 1
				case isProviderOf(x, y): // down
					phase = 2
				default:
					return false // hop over a non-existent link
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: route preference — an AS with any customer route never selects
// peer or provider; with a peer route never selects provider.
func TestPreferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		top := randomTopology(rng, n)
		dest := rng.Intn(n)
		routes := top.PropagateFrom(dest)
		// Recompute customer-route reachability independently: BFS from
		// dest over customer→provider edges.
		reach := make([]bool, n)
		reach[dest] = true
		queue := []int{dest}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, p := range top.providers[x] {
				if !reach[p] {
					reach[p] = true
					queue = append(queue, int(p))
				}
			}
		}
		for as := 0; as < n; as++ {
			if reach[as] && as != dest {
				if routes[as].Class != ClassCustomer {
					return false
				}
			}
			if !reach[as] && routes[as].Class == ClassCustomer {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: hijack flags are monotone — adding more victim seeds can never
// remove the victim flag from an AS that already had it via strictly
// preferred routes... (weaker check: every seed AS carries its own flag).
func TestHijackSeedsCarryFlags(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		top := randomTopology(rng, n)
		nv, na := 1+rng.Intn(3), 1+rng.Intn(3)
		var vict, att []int
		for i := 0; i < nv; i++ {
			vict = append(vict, rng.Intn(n))
		}
		for i := 0; i < na; i++ {
			att = append(att, rng.Intn(n))
		}
		flags := top.SimulateHijack(vict, att)
		for _, s := range vict {
			if flags[s]&FlagVictim == 0 {
				return false
			}
		}
		for _, s := range att {
			if flags[s]&FlagAttacker == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLookingGlass(t *testing.T) {
	top := chainTopology()
	cache := NewRouteCache(top)
	view := LookingGlass(cache, 4, []int{0, 5, 6})
	if len(view) != 3 {
		t.Fatalf("LG view size %d", len(view))
	}
	for d, p := range view {
		if p[0] != 4 || p[len(p)-1] != d {
			t.Fatalf("LG path endpoints wrong: %v -> %d", p, d)
		}
	}
	// Unreachable destinations are absent.
	iso := NewTopology(3)
	cache2 := NewRouteCache(iso)
	if v := LookingGlass(cache2, 0, []int{1, 2}); len(v) != 0 {
		t.Fatalf("isolated LG should see nothing, got %v", v)
	}
}
