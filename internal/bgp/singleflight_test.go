package bgp

import (
	"math/rand"
	"sync"
	"testing"
)

// TestRouteCacheSingleflight checks that concurrent misses on the same
// destination run Propagate exactly once per destination, and that every
// caller sees the shared result.
func TestRouteCacheSingleflight(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	top := randomTopology(rng, 300)
	cache := NewRouteCache(top)

	const callers = 16
	dests := []int{5, 17, 42}
	results := make([]Routes, callers*len(dests))
	var start, done sync.WaitGroup
	start.Add(1)
	for w := 0; w < callers; w++ {
		for di, d := range dests {
			done.Add(1)
			go func(slot, dest int) {
				defer done.Done()
				start.Wait() // maximize concurrent misses
				results[slot] = cache.RoutesTo(dest)
			}(w*len(dests)+di, d)
		}
	}
	start.Done()
	done.Wait()

	if got := cache.Computed(); got != int64(len(dests)) {
		t.Fatalf("Computed = %d, want %d (one Propagate per destination)", got, len(dests))
	}
	for w := 0; w < callers; w++ {
		for di := range dests {
			a := results[di]
			b := results[w*len(dests)+di]
			if a.Len() != b.Len() {
				t.Fatalf("result length mismatch for dest %d", dests[di])
			}
			for i := 0; i < a.Len(); i++ {
				if a.At(i) != b.At(i) {
					t.Fatalf("caller %d saw different routes for dest %d at AS %d", w, dests[di], i)
				}
			}
		}
	}
	// A warm hit must not count as a new computation.
	cache.RoutesTo(dests[0])
	if got := cache.Computed(); got != int64(len(dests)) {
		t.Fatalf("warm hit recomputed: Computed = %d", got)
	}
}
