// Package api is metascriticd's versioned HTTP/JSON surface over the
// metAScritic engine. Readers serve lock-free from an atomically-swapped
// immutable State (a copy-on-write store snapshot plus frozen results);
// POST /v1/runs schedules asynchronous engine batches whose results are
// committed by swapping in a new State. See DESIGN.md §8 for the
// concurrency story and the snapshot artifact format.
//
// v1 endpoints:
//
//	GET  /v1/estimate/{metro}/{a}/{b}   estimated connectivity for an AS pair
//	GET  /v1/peers/{metro}/{as}?k=N    top-K likely peers of an AS
//	GET  /v1/consistency/{metro}       routing-consistency report (Appx. D.5)
//	GET  /v1/hijack/{victim}/{attacker}?thr=λ  §6 hijack blast-radius forensics
//	POST /v1/runs                      submit an asynchronous run
//	GET  /v1/runs                      list runs
//	GET  /v1/runs/{id}                 poll one run
//	POST /v1/ingest                    absorb topology churn and re-score (streaming)
//	GET  /admin/stats                  engine + route-cache statistics
//	GET  /healthz                      liveness
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"metascritic"
	"metascritic/internal/engine"
	"metascritic/internal/forensics"
	"metascritic/internal/sysmem"
)

// Options configures a Server.
type Options struct {
	// WorldCfg is the generation config of the served world (persisted
	// into snapshots).
	WorldCfg metascritic.WorldConfig
	// Base is the pipeline config template for submitted runs.
	Base metascritic.Config
	// MaxRunBudget caps the per-run measurement budget a client may
	// request; 0 means no cap. Requests above the cap are rejected with
	// 422 (the serving-layer face of ErrBudgetExhausted).
	MaxRunBudget int
	// RateLimit/RateBurst configure the per-client token bucket; zero
	// values disable rate limiting.
	RateLimit float64
	RateBurst float64
}

// Server owns the serving state and the run manager. Construct with
// NewServer; Handler returns the routed (and middleware-wrapped) handler.
type Server struct {
	opts  Options
	eng   *engine.Engine
	runs  *engine.RunManager
	state atomic.Pointer[State]

	commitMu sync.Mutex // serializes Commit's read-modify-swap
	start    time.Time
	requests atomic.Int64
	lastRun  atomic.Pointer[engine.RunStats]

	// worldMu is the streaming seam: ingest mutates the world (and the
	// shared route cache, registry and base store) in place, so it takes
	// the write side while every handler that reads world-derived state
	// holds the read side. Run execution is not covered by the lock —
	// ingest instead refuses (409) while runs are active, and new
	// submissions block on the read lock for the duration of an ingest.
	worldMu sync.RWMutex

	// Ingest counters (epoch-advancing batches absorbed since boot).
	ingestBatches  atomic.Int64
	ingestEvents   atomic.Int64
	ingestNewASes  atomic.Int64
	ingestTraces   atomic.Int64
	ingestRescores atomic.Int64
	lastIngest     atomic.Pointer[metascritic.EvolutionStats]
}

// NewServer builds a server over a pipeline and initial result set. The
// pipeline's store must not be mutated after this call: every State
// snapshots it copy-on-write.
func NewServer(p *metascritic.Pipeline, results map[int]*metascritic.Result, opts Options) *Server {
	s := &Server{opts: opts, eng: engine.New(p), start: time.Now()}
	if results == nil {
		results = map[int]*metascritic.Result{}
	}
	s.state.Store(NewState(1, opts.WorldCfg, p, results))
	s.runs = engine.NewRunManager(s.eng, s.commit)
	return s
}

// State returns the current serving snapshot.
func (s *Server) State() *State { return s.state.Load() }

// Runs exposes the run manager (the daemon drains it on shutdown).
func (s *Server) Runs() *engine.RunManager { return s.runs }

// commit merges a finished batch into a fresh State and swaps it in.
// Readers keep the old snapshot until their request completes.
func (s *Server) commit(id string, mr *engine.MultiResult) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	cur := s.state.Load()
	merged := make(map[int]*metascritic.Result, len(cur.Results)+len(mr.Results))
	for m, r := range cur.Results {
		merged[m] = r
	}
	for m, r := range mr.Results {
		merged[m] = r
	}
	st := mr.Stats
	s.lastRun.Store(&st)
	s.state.Store(NewState(cur.Seq+1, cur.WorldCfg, cur.Pipe, merged))
}

// Handler returns the fully-wired handler: routes, then coalescing, then
// rate limiting outermost (a limited request never reaches the
// coalescer).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /v1/estimate/{metro}/{a}/{b}", s.handleEstimate)
	mux.HandleFunc("GET /v1/peers/{metro}/{as}", s.handlePeers)
	mux.HandleFunc("GET /v1/consistency/{metro}", s.handleConsistency)
	mux.HandleFunc("GET /v1/hijack/{victim}/{attacker}", s.handleHijack)
	mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	mux.HandleFunc("GET /v1/runs", s.handleListRuns)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleRunStatus)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("GET /admin/stats", s.handleStats)

	var h http.Handler = mux
	h = Chain(h, NewCoalescer().Middleware())
	if s.opts.RateLimit > 0 {
		h = Chain(h, NewRateLimiter(s.opts.RateLimit, s.opts.RateBurst).Middleware())
	}
	counted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		h.ServeHTTP(w, r)
	})
	return counted
}

// --- helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// metroResult resolves a metro path element that must have a served
// result, writing the error response itself when it cannot.
func (s *Server) metroResult(w http.ResponseWriter, st *State, name string) (*metascritic.Result, bool) {
	m := st.Metro(name)
	if m == nil {
		writeError(w, http.StatusNotFound, "unknown metro %q", name)
		return nil, false
	}
	res := st.Results[m.Index]
	if res == nil {
		writeError(w, http.StatusNotFound, "metro %s has no committed run yet", m.Name)
		return nil, false
	}
	return res, true
}

func atoiParam(w http.ResponseWriter, r *http.Request, name string) (int, bool) {
	v, err := strconv.Atoi(r.PathValue(name))
	if err != nil {
		writeError(w, http.StatusBadRequest, "path element %q must be an integer, got %q", name, r.PathValue(name))
		return 0, false
	}
	return v, true
}

// --- v1 handlers ---

type estimateResponse struct {
	Metro string `json:"metro"`
	A     int    `json:"a"`
	B     int    `json:"b"`
	// Observed is true when E_m has direct or transferred evidence for
	// the pair; Evidence is that entry of E_m (weighted, in [-1,1]).
	Observed bool    `json:"observed"`
	Evidence float64 `json:"evidence"`
	// Rating is the completed matrix entry C_m[a,b] in [-1,1].
	Rating float64 `json:"rating"`
	// Link is the final verdict at the run's threshold λ.
	Link      bool    `json:"link"`
	Threshold float64 `json:"threshold"`
	// Measured marks pairs whose link status was directly observed.
	Measured bool `json:"measured"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	s.worldMu.RLock()
	defer s.worldMu.RUnlock()
	st := s.State()
	res, ok := s.metroResult(w, st, r.PathValue("metro"))
	if !ok {
		return
	}
	a, ok := atoiParam(w, r, "a")
	if !ok {
		return
	}
	b, ok := atoiParam(w, r, "b")
	if !ok {
		return
	}
	ai, aok := st.ASIndex(a)
	bi, bok := st.ASIndex(b)
	if !aok || !bok {
		writeError(w, http.StatusNotFound, "unknown ASN %d", pick(!aok, a, b))
		return
	}
	i, iok := res.Estimate.Index[ai]
	j, jok := res.Estimate.Index[bi]
	if !iok || !jok {
		writeError(w, http.StatusNotFound, "AS%d is not a member of metro %s", pick(!iok, a, b), r.PathValue("metro"))
		return
	}
	if i == j {
		writeError(w, http.StatusBadRequest, "asked for the self-pair of AS%d", a)
		return
	}
	ev, observed := res.Estimate.Value(ai, bi)
	rating := res.Ratings.At(i, j)
	out := estimateResponse{
		Metro:     st.Metro(r.PathValue("metro")).Name,
		A:         a,
		B:         b,
		Observed:  observed,
		Evidence:  ev,
		Rating:    rating,
		Threshold: res.Threshold,
		Measured:  observed && ev > 0,
	}
	out.Link = out.Measured || (!observed && rating >= res.Threshold)
	writeJSON(w, http.StatusOK, out)
}

func pick(first bool, a, b int) int {
	if first {
		return a
	}
	return b
}

type peerEntry struct {
	ASN      int     `json:"asn"`
	Score    float64 `json:"score"`
	Measured bool    `json:"measured"`
	Link     bool    `json:"link"`
}

type peersResponse struct {
	Metro     string      `json:"metro"`
	ASN       int         `json:"asn"`
	K         int         `json:"k"`
	Threshold float64     `json:"threshold"`
	Peers     []peerEntry `json:"peers"`
}

func (s *Server) handlePeers(w http.ResponseWriter, r *http.Request) {
	s.worldMu.RLock()
	defer s.worldMu.RUnlock()
	st := s.State()
	res, ok := s.metroResult(w, st, r.PathValue("metro"))
	if !ok {
		return
	}
	asn, ok := atoiParam(w, r, "as")
	if !ok {
		return
	}
	ai, aok := st.ASIndex(asn)
	if !aok {
		writeError(w, http.StatusNotFound, "unknown ASN %d", asn)
		return
	}
	i, iok := res.Estimate.Index[ai]
	if !iok {
		writeError(w, http.StatusNotFound, "AS%d is not a member of metro %s", asn, r.PathValue("metro"))
		return
	}
	k := 10
	if kq := r.URL.Query().Get("k"); kq != "" {
		v, err := strconv.Atoi(kq)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, "k must be a positive integer, got %q", kq)
			return
		}
		k = v
	}
	if k > 200 {
		k = 200
	}

	g := st.Pipe.World.G
	peers := make([]peerEntry, 0, len(res.Members)-1)
	for j, bj := range res.Members {
		if j == i {
			continue
		}
		e := peerEntry{ASN: g.ASes[bj].ASN}
		if v, obs := res.Estimate.Value(res.Members[i], bj); obs {
			e.Measured = true
			e.Link = v > 0
			e.Score = 1
			if v <= 0 {
				e.Score = 0 // measured non-link: certain, but not a peer
			}
		} else {
			e.Score = res.Ratings.At(i, j)
			e.Link = e.Score >= res.Threshold
		}
		peers = append(peers, e)
	}
	sort.Slice(peers, func(a, b int) bool {
		if peers[a].Score != peers[b].Score {
			return peers[a].Score > peers[b].Score
		}
		return peers[a].ASN < peers[b].ASN
	})
	if len(peers) > k {
		peers = peers[:k]
	}
	writeJSON(w, http.StatusOK, peersResponse{
		Metro:     st.Metro(r.PathValue("metro")).Name,
		ASN:       asn,
		K:         k,
		Threshold: res.Threshold,
		Peers:     peers,
	})
}

func (s *Server) handleConsistency(w http.ResponseWriter, r *http.Request) {
	s.worldMu.RLock()
	defer s.worldMu.RUnlock()
	st := s.State()
	m := st.Metro(r.PathValue("metro"))
	if m == nil {
		writeError(w, http.StatusNotFound, "unknown metro %q", r.PathValue("metro"))
		return
	}
	rep := st.Consistency(m.Index)
	if rep == nil {
		writeError(w, http.StatusNotFound, "metro %s has no committed run yet", m.Name)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleHijack(w http.ResponseWriter, r *http.Request) {
	s.worldMu.RLock()
	defer s.worldMu.RUnlock()
	st := s.State()
	vm := st.Metro(r.PathValue("victim"))
	am := st.Metro(r.PathValue("attacker"))
	if vm == nil || am == nil {
		writeError(w, http.StatusNotFound, "unknown metro %q",
			r.PathValue(map[bool]string{true: "victim", false: "attacker"}[vm == nil]))
		return
	}
	var results []*metascritic.Result
	thr := 0.0
	for _, m := range []int{vm.Index, am.Index} {
		if res := st.Results[m]; res != nil {
			results = append(results, res)
			if res.Threshold > thr {
				thr = res.Threshold
			}
		}
	}
	if len(results) == 0 {
		writeError(w, http.StatusNotFound, "neither %s nor %s has a committed run", vm.Name, am.Name)
		return
	}
	if tq := r.URL.Query().Get("thr"); tq != "" {
		v, err := strconv.ParseFloat(tq, 64)
		if err != nil || v < 0 || v > 1 {
			writeError(w, http.StatusBadRequest, "thr must be in [0,1], got %q", tq)
			return
		}
		thr = v
	}
	rep, err := forensics.Analyze(st.Pipe.World, vm, am, results, thr)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// --- run handlers ---

// runRequest is the POST /v1/runs body. All fields are optional: zero
// values inherit the server's base config.
type runRequest struct {
	// Metros lists metro names (or indices as strings); empty means the
	// world's primary metros.
	Metros []string `json:"metros"`
	// Budget overrides MaxMeasurements.
	Budget int `json:"budget"`
	// Workers bounds the engine pool.
	Workers int `json:"workers"`
	// SharePriors streams learned priors between the batch's metros.
	SharePriors bool `json:"share_priors"`
	// Seed overrides the base seed.
	Seed *int64 `json:"seed"`
}

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	// The read lock spans validation and Submit: a submission either
	// lands before an ingest acquires the write lock (and the ingest then
	// sees it via Active and backs off with 409) or waits until the world
	// mutation is fully mirrored.
	s.worldMu.RLock()
	defer s.worldMu.RUnlock()
	var req runRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	st := s.State()
	cfg := s.opts.Base
	if req.Budget != 0 {
		if cap := s.opts.MaxRunBudget; cap > 0 && req.Budget > cap {
			writeError(w, http.StatusUnprocessableEntity,
				"%v: requested budget %d exceeds the server cap %d", metascritic.ErrBudgetExhausted, req.Budget, cap)
			return
		}
		cfg.MaxMeasurements = req.Budget
	}
	if req.Seed != nil {
		cfg.Seed = *req.Seed
	}
	var metros []int
	for _, name := range req.Metros {
		m := st.Metro(name)
		if m == nil {
			writeError(w, http.StatusNotFound, "unknown metro %q", name)
			return
		}
		metros = append(metros, m.Index)
	}
	id, err := s.runs.Submit(engine.Config{
		Base:        cfg,
		Metros:      metros,
		Workers:     req.Workers,
		SharePriors: req.SharePriors,
	})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/runs/"+id)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "status": "/v1/runs/" + id})
}

func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"runs": s.runs.List()})
}

func (s *Server) handleRunStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rs, ok := s.runs.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run %q", id)
		return
	}
	writeJSON(w, http.StatusOK, rs)
}

// --- admin ---

type statsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	SnapshotSeq   int64   `json:"snapshot_seq"`
	// Epoch is the served world's evolution epoch (0 until the first
	// POST /v1/ingest batch is absorbed).
	Epoch    uint32 `json:"epoch"`
	Requests int64  `json:"requests"`
	// World summarizes the served world.
	World struct {
		ASes   int `json:"ases"`
		Metros int `json:"metros"`
		Probes int `json:"probes"`
	} `json:"world"`
	ServedMetros []string `json:"served_metros"`
	ActiveRuns   int      `json:"active_runs"`
	TotalRuns    int      `json:"total_runs"`
	// LastRun is the engine's aggregated statistics for the most
	// recently committed batch (engine.RunStats; durations in ns).
	LastRun *engine.RunStats `json:"last_run,omitempty"`
	// Ingest aggregates the streaming counters since boot.
	Ingest struct {
		Batches  int64 `json:"batches"`
		Events   int64 `json:"events"`
		NewASes  int64 `json:"new_ases"`
		Traces   int64 `json:"traces"`
		Rescores int64 `json:"rescores"`
	} `json:"ingest"`
	// LastIngest is what absorbing the most recent batch did to the
	// pipeline (metascritic.EvolutionStats).
	LastIngest *metascritic.EvolutionStats `json:"last_ingest,omitempty"`
	// RouteCache snapshots the shared route cache (bgp.CacheStats), which
	// since the streaming refactor includes the invalidation counters —
	// Epoch (passes absorbed), Invalidated and Retained entries — and,
	// with the byte-budgeted cache, the pressure counters: BudgetBytes,
	// Evicted, EvictedBytes and Bypassed.
	RouteCache any `json:"route_cache"`
	// Process reports kernel-level memory counters so an operator can see
	// cache pressure against real footprint (zeros where procfs is
	// unavailable).
	Process struct {
		PeakRSSBytes    int64 `json:"peak_rss_bytes"`
		CurrentRSSBytes int64 `json:"current_rss_bytes"`
	} `json:"process"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.worldMu.RLock()
	defer s.worldMu.RUnlock()
	st := s.State()
	g := st.Pipe.World.G
	var out statsResponse
	out.UptimeSeconds = time.Since(s.start).Seconds()
	out.SnapshotSeq = st.Seq
	out.Epoch = st.Epoch
	out.Requests = s.requests.Load()
	out.World.ASes = g.N()
	out.World.Metros = len(g.Metros)
	out.World.Probes = len(st.Pipe.World.Probes)
	out.ServedMetros = []string{}
	for _, m := range st.ServedMetros() {
		out.ServedMetros = append(out.ServedMetros, g.Metros[m].Name)
	}
	out.ActiveRuns = s.runs.Active()
	out.TotalRuns = len(s.runs.List())
	out.LastRun = s.lastRun.Load()
	out.Ingest.Batches = s.ingestBatches.Load()
	out.Ingest.Events = s.ingestEvents.Load()
	out.Ingest.NewASes = s.ingestNewASes.Load()
	out.Ingest.Traces = s.ingestTraces.Load()
	out.Ingest.Rescores = s.ingestRescores.Load()
	out.LastIngest = s.lastIngest.Load()
	out.RouteCache = st.Pipe.Engine.Cache.Stats()
	mem := sysmem.Read()
	out.Process.PeakRSSBytes = mem.PeakRSSBytes
	out.Process.CurrentRSSBytes = mem.CurrentRSSBytes
	writeJSON(w, http.StatusOK, out)
}
