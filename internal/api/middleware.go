package api

// Composable HTTP middleware for the serving daemon: per-client
// token-bucket rate limiting and in-flight coalescing of identical GETs
// (a hand-rolled singleflight — the whole repo is stdlib-only). Both are
// plain func(http.Handler) http.Handler values, so cmd wiring composes
// them with Chain in whatever order a deployment wants.

import (
	"bytes"
	"net"
	"net/http"
	"sync"
	"time"
)

// Middleware wraps a handler.
type Middleware func(http.Handler) http.Handler

// Chain applies middleware outermost-first: Chain(h, a, b) serves
// a(b(h)).
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// --- rate limiting ---

type bucket struct {
	tokens   float64
	lastFill time.Time
	lastSeen time.Time
}

// RateLimiter is a per-client token bucket: each client (keyed by the
// host part of RemoteAddr) gets Burst tokens refilled at Rate per
// second; a request without a token gets 429 with a Retry-After hint.
type RateLimiter struct {
	// Rate is tokens per second; Burst the bucket capacity.
	Rate  float64
	Burst float64
	// Now is the clock (tests inject a fake one); nil means time.Now.
	Now func() time.Time

	mu      sync.Mutex
	clients map[string]*bucket
}

// NewRateLimiter builds a limiter allowing rate requests/second with the
// given burst.
func NewRateLimiter(rate, burst float64) *RateLimiter {
	return &RateLimiter{Rate: rate, Burst: burst, clients: map[string]*bucket{}}
}

// Allow consumes a token for the client, reporting whether one was
// available.
func (l *RateLimiter) Allow(client string) bool {
	now := time.Now
	if l.Now != nil {
		now = l.Now
	}
	t := now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.clients[client]
	if b == nil {
		// Opportunistic GC: drop clients idle for 10+ minutes before
		// admitting a new one, so the map cannot grow without bound.
		if len(l.clients) >= 1024 {
			for k, old := range l.clients {
				if t.Sub(old.lastSeen) > 10*time.Minute {
					delete(l.clients, k)
				}
			}
		}
		b = &bucket{tokens: l.Burst, lastFill: t}
		l.clients[client] = b
	}
	b.tokens += t.Sub(b.lastFill).Seconds() * l.Rate
	if b.tokens > l.Burst {
		b.tokens = l.Burst
	}
	b.lastFill = t
	b.lastSeen = t
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Middleware returns the limiter as composable middleware.
func (l *RateLimiter) Middleware() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !l.Allow(clientKey(r)) {
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// clientKey extracts the client identity from a request.
func clientKey(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// --- coalescing ---

// recorded is a buffered response, replayable to any number of waiters.
type recorded struct {
	status int
	header http.Header
	body   bytes.Buffer
}

func (rec *recorded) Header() http.Header {
	if rec.header == nil {
		rec.header = http.Header{}
	}
	return rec.header
}

func (rec *recorded) WriteHeader(status int) {
	if rec.status == 0 {
		rec.status = status
	}
}

func (rec *recorded) Write(p []byte) (int, error) {
	rec.WriteHeader(http.StatusOK)
	return rec.body.Write(p)
}

func (rec *recorded) replay(w http.ResponseWriter, coalesced bool) {
	h := w.Header()
	for k, vs := range rec.header {
		h[k] = vs
	}
	if coalesced {
		h.Set("X-Coalesced", "1")
	}
	status := rec.status
	if status == 0 {
		status = http.StatusOK
	}
	w.WriteHeader(status)
	w.Write(rec.body.Bytes())
}

type flight struct {
	done chan struct{}
	rec  *recorded
}

// Coalescer deduplicates concurrent identical GETs: the first request
// for a (method, URL) executes the handler into a buffer, every request
// that arrives while it is in flight waits and replays the same response
// (marked with an X-Coalesced header). Non-GET requests pass through
// untouched. Nothing is cached: once the leader finishes, the next
// request executes afresh.
type Coalescer struct {
	mu       sync.Mutex
	inflight map[string]*flight
}

// NewCoalescer builds an empty coalescer.
func NewCoalescer() *Coalescer {
	return &Coalescer{inflight: map[string]*flight{}}
}

// Middleware returns the coalescer as composable middleware.
func (c *Coalescer) Middleware() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				next.ServeHTTP(w, r)
				return
			}
			key := r.URL.RequestURI()
			c.mu.Lock()
			if f := c.inflight[key]; f != nil {
				c.mu.Unlock()
				select {
				case <-f.done:
					f.rec.replay(w, true)
				case <-r.Context().Done():
					writeError(w, http.StatusServiceUnavailable, "request canceled while coalesced")
				}
				return
			}
			f := &flight{done: make(chan struct{}), rec: &recorded{}}
			c.inflight[key] = f
			c.mu.Unlock()

			next.ServeHTTP(f.rec, r)

			c.mu.Lock()
			delete(c.inflight, key)
			c.mu.Unlock()
			close(f.done)
			f.rec.replay(w, false)
		})
	}
}
