package api

// POST /v1/ingest is the daemon's streaming face: one request draws a
// deterministic evolution batch from the served world (link churn,
// depeerings, new peerings, AS arrivals, IXP joins), mirrors it onto
// every layer of the pipeline (BGP topology, scoped route-cache
// invalidation, address plan, hitlist, evidence epoch), refreshes the
// public view with a round of post-churn traceroutes, and re-scores
// every served metro incrementally — warm ALS factors, no rank sweep,
// no tune grid — before swapping in a new serving State at the next
// epoch. Readers keep the old snapshot until their request returns.
//
// Ingest mutates the world in place, which asynchronous runs read
// without holding the world lock for their whole lifetime; the endpoint
// therefore refuses with 409 Conflict while any run is active, and new
// submissions queue behind the write lock for the (short) duration of
// the mutation.

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"

	"metascritic"
	"metascritic/internal/netsim"
)

// ingestRequest is the POST /v1/ingest body. The event counts are
// targets, clamped to the world's candidate pools (netsim.EvolveSpec);
// at least one must be positive.
type ingestRequest struct {
	// Seed drives the evolution draw and the post-churn trace sample.
	// Equal worlds + equal ingest sequences give byte-identical states.
	Seed       int64 `json:"seed"`
	LinkDowns  int   `json:"link_downs"`
	Depeerings int   `json:"depeerings"`
	LinkUps    int   `json:"link_ups"`
	NewASes    int   `json:"new_ases"`
	IXPJoins   int   `json:"ixp_joins"`
	// TracesPerProbe sizes the post-churn public-view refresh (default 4;
	// 0 is valid and skips the refresh).
	TracesPerProbe *int `json:"traces_per_probe"`
}

// ingestResponse reports what absorbing the batch did.
type ingestResponse struct {
	// Epoch is the world epoch after the batch; SnapshotSeq the serving
	// snapshot that now reflects it.
	Epoch       uint32 `json:"epoch"`
	SnapshotSeq int64  `json:"snapshot_seq"`
	Events      int    `json:"events"`
	NewASes     int    `json:"new_ases"`
	// Invalidated/Retained are this batch's route-cache eviction split
	// (Retained is 0 when an AS arrival forced a full invalidation).
	Invalidated  int `json:"invalidated"`
	Retained     int `json:"retained"`
	NewAddresses int `json:"new_addresses"`
	// Traces is the number of post-churn public traceroutes absorbed.
	Traces int `json:"traces"`
	// Rescored lists the metros re-scored incrementally, by name.
	Rescored []string `json:"rescored"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	for _, c := range []int{req.LinkDowns, req.Depeerings, req.LinkUps, req.NewASes, req.IXPJoins} {
		if c < 0 {
			writeError(w, http.StatusBadRequest, "event counts must be non-negative")
			return
		}
	}
	if req.LinkDowns+req.Depeerings+req.LinkUps+req.NewASes+req.IXPJoins == 0 {
		writeError(w, http.StatusBadRequest, "empty evolution spec: at least one event count must be positive")
		return
	}
	traces := 4
	if req.TracesPerProbe != nil {
		if *req.TracesPerProbe < 0 {
			writeError(w, http.StatusBadRequest, "traces_per_probe must be non-negative")
			return
		}
		traces = *req.TracesPerProbe
	}

	s.worldMu.Lock()
	defer s.worldMu.Unlock()
	if n := s.runs.Active(); n > 0 {
		writeError(w, http.StatusConflict,
			"%d run(s) active: ingest mutates the world in place; retry once they finish", n)
		return
	}

	p := s.eng.Pipeline()
	rng := rand.New(rand.NewSource(req.Seed))
	_, est, err := p.Evolve(rng, netsim.EvolveSpec{
		LinkDowns:  req.LinkDowns,
		Depeerings: req.Depeerings,
		LinkUps:    req.LinkUps,
		NewASes:    req.NewASes,
		IXPJoins:   req.IXPJoins,
	})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	nTraces := 0
	if traces > 0 {
		nTraces = p.SeedPublicMeasurements(traces, rng)
	}

	// Re-score the served metros from the accumulated evidence. No run is
	// active and submissions are blocked on the world lock, so the current
	// state cannot change underneath the merge. The rescore runs on a
	// background context: a client hanging up must not abort a mutation
	// that is already half mirrored.
	cur := s.State()
	merged := make(map[int]*metascritic.Result, len(cur.Results))
	for m, res := range cur.Results {
		merged[m] = res
	}
	g := p.World.G
	rescored := []string{}
	var rescoreErr error
	for _, m := range cur.ServedMetros() {
		res, err := p.Rescore(context.Background(), cur.Results[m], s.opts.Base)
		if err != nil {
			rescoreErr = err
			break
		}
		merged[m] = res
		rescored = append(rescored, g.Metros[m].Name)
	}

	// Commit even when a rescore failed: the world has already evolved,
	// and a state at the new epoch (with the old results where the
	// rescore did not land) is strictly better than one frozen behind it.
	s.commitMu.Lock()
	next := NewState(cur.Seq+1, cur.WorldCfg, p, merged)
	s.state.Store(next)
	s.commitMu.Unlock()

	s.ingestBatches.Add(1)
	s.ingestEvents.Add(int64(est.Events))
	s.ingestNewASes.Add(int64(est.NewASes))
	s.ingestTraces.Add(int64(nTraces))
	s.ingestRescores.Add(int64(len(rescored)))
	last := est
	s.lastIngest.Store(&last)

	if rescoreErr != nil {
		writeError(w, http.StatusInternalServerError,
			"batch absorbed (epoch %d) but rescore failed after %d metro(s): %v", est.Epoch, len(rescored), rescoreErr)
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{
		Epoch:        est.Epoch,
		SnapshotSeq:  next.Seq,
		Events:       est.Events,
		NewASes:      est.NewASes,
		Invalidated:  est.Invalidated,
		Retained:     est.Retained,
		NewAddresses: est.NewAddresses,
		Traces:       nTraces,
		Rescored:     rescored,
	})
}
