package api

// State is the daemon's immutable serving snapshot. Handlers load the
// current *State through one atomic pointer and then touch nothing
// mutable: the pipeline handle is a copy-on-write store snapshot nobody
// writes to, results are frozen, and the routing-consistency reports are
// precomputed here — obs.Store.ConsistentASes mutates its cache on read,
// so it must never run on a request path shared between goroutines.
// Committing a finished run builds a whole new State and swaps the
// pointer; in-flight requests keep the old snapshot until they return.

import (
	"sort"
	"strconv"

	"metascritic"
	"metascritic/internal/asgraph"
)

// ConsistencyScope is one scope row of a metro's consistency report.
type ConsistencyScope struct {
	Scope string `json:"scope"`
	// Consistent is the number of member ASes with consistent routing at
	// this scope; InconsistentASNs lists the members that are not.
	Consistent       int   `json:"consistent"`
	InconsistentASNs []int `json:"inconsistent_asns"`
}

// ConsistencyReport is the precomputed /v1/consistency payload for one
// metro (Appx. D.5 run at every geographic scope).
type ConsistencyReport struct {
	Metro   string             `json:"metro"`
	Members int                `json:"members"`
	Scopes  []ConsistencyScope `json:"scopes"`
}

// State is one immutable serving snapshot.
type State struct {
	// Seq increments on every swap; /admin/stats exposes it so clients
	// can observe commits.
	Seq int64
	// Epoch is the world's evolution epoch this state was built at (the
	// world itself is shared and mutates on ingest; this field is the
	// frozen view's provenance).
	Epoch uint32
	// WorldCfg regenerates the world (persisted verbatim in snapshots).
	WorldCfg metascritic.WorldConfig
	// Pipe owns this state's store snapshot. Never mutated after build.
	Pipe *metascritic.Pipeline
	// Results maps metro index to its served result.
	Results map[int]*metascritic.Result

	metroByName map[string]*asgraph.Metro
	asnIndex    map[int]int
	consistency map[int]*ConsistencyReport
}

var scopeNames = map[asgraph.GeoScope]string{
	asgraph.SameMetro:     "metro",
	asgraph.SameCountry:   "country",
	asgraph.SameContinent: "continent",
	asgraph.Elsewhere:     "global",
}

// NewState freezes a serving snapshot: it takes its own copy-on-write
// handle on the pipeline's store and precomputes everything handlers
// must not compute per-request. The pipeline's store must not be
// concurrently mutated during the call (the daemon's base store is only
// ever mutated before serving starts).
func NewState(seq int64, worldCfg metascritic.WorldConfig, p *metascritic.Pipeline, results map[int]*metascritic.Result) *State {
	st := &State{
		Seq:         seq,
		Epoch:       p.World.Epoch,
		WorldCfg:    worldCfg,
		Pipe:        p.Snapshot(),
		Results:     results,
		metroByName: map[string]*asgraph.Metro{},
		asnIndex:    map[int]int{},
		consistency: map[int]*ConsistencyReport{},
	}
	g := st.Pipe.World.G
	for i := range g.Metros {
		st.metroByName[g.Metros[i].Name] = g.Metros[i]
	}
	for i := range g.ASes {
		st.asnIndex[g.ASes[i].ASN] = i
	}
	// Precompute consistency per served metro, at every scope. The reads
	// run on this state's own store clone, so the cache mutations they
	// cause are invisible to every other state and to the base store.
	for m := range results {
		metro := g.Metros[m]
		rep := &ConsistencyReport{Metro: metro.Name, Members: len(metro.Members)}
		for sc := asgraph.SameMetro; sc <= asgraph.Elsewhere; sc++ {
			ok := st.Pipe.Store.ConsistentASes(sc)
			row := ConsistencyScope{Scope: scopeNames[sc], InconsistentASNs: []int{}}
			for _, ai := range metro.Members {
				if ok[ai] {
					row.Consistent++
				} else {
					row.InconsistentASNs = append(row.InconsistentASNs, g.ASes[ai].ASN)
				}
			}
			sort.Ints(row.InconsistentASNs)
			rep.Scopes = append(rep.Scopes, row)
		}
		st.consistency[m] = rep
	}
	return st
}

// Metro resolves a path element to a metro: by name, or by numeric index.
func (st *State) Metro(name string) *asgraph.Metro {
	if m := st.metroByName[name]; m != nil {
		return m
	}
	if idx, err := strconv.Atoi(name); err == nil {
		g := st.Pipe.World.G
		if idx >= 0 && idx < len(g.Metros) {
			return g.Metros[idx]
		}
	}
	return nil
}

// ASIndex resolves an ASN to its graph index.
func (st *State) ASIndex(asn int) (int, bool) {
	i, ok := st.asnIndex[asn]
	return i, ok
}

// Consistency returns the precomputed report for a metro (nil when the
// metro has no served result).
func (st *State) Consistency(metro int) *ConsistencyReport {
	return st.consistency[metro]
}

// ServedMetros returns the metro indices with results, ascending.
func (st *State) ServedMetros() []int {
	out := make([]int, 0, len(st.Results))
	for m := range st.Results {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}
