package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"metascritic"
	"metascritic/internal/api/snapshot"
)

// testFixture builds a small served world once per test binary: worlds
// and runs are pure functions of their configs, so sharing is safe as
// long as tests treat the pieces as read-only (NewServer snapshots the
// pipeline's store copy-on-write anyway).
var fixture struct {
	once     sync.Once
	worldCfg metascritic.WorldConfig
	base     metascritic.Config
	pipe     *metascritic.Pipeline
	metro    string // served metro name
	results  map[int]*metascritic.Result
}

func testFixture(t testing.TB) {
	t.Helper()
	fixture.once.Do(func() {
		fixture.worldCfg = metascritic.WorldConfig{Seed: 7, Metros: metascritic.DefaultMetros(0.1)}
		w := metascritic.GenerateWorld(fixture.worldCfg)
		fixture.pipe = metascritic.NewPipeline(w)
		fixture.pipe.SeedPublicMeasurements(8, rand.New(rand.NewSource(7)))
		cfg := metascritic.DefaultConfig()
		cfg.MaxMeasurements = 600
		cfg.BatchSize = 60
		cfg.Rank.MaxRank = 6
		cfg.Rank.Iterations = 3
		fixture.base = cfg
		vm := w.G.MetroOfName("Sydney")
		res, err := fixture.pipe.Snapshot().Run(context.Background(), vm.Index, cfg)
		if err != nil {
			panic(err)
		}
		fixture.metro = vm.Name
		fixture.results = map[int]*metascritic.Result{vm.Index: res}
	})
}

func testServer(t testing.TB, opts Options) *Server {
	t.Helper()
	testFixture(t)
	opts.WorldCfg = fixture.worldCfg
	if opts.Base.MaxMeasurements == 0 {
		opts.Base = fixture.base
	}
	return NewServer(fixture.pipe, fixture.results, opts)
}

func get(t testing.TB, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, _ := io.ReadAll(res.Body)
	return res, string(body)
}

func memberASNs(t testing.TB) (int, int) {
	t.Helper()
	g := fixture.pipe.World.G
	m := g.MetroOfName(fixture.metro)
	if len(m.Members) < 2 {
		t.Fatalf("metro %s has %d members", m.Name, len(m.Members))
	}
	return g.ASes[m.Members[0]].ASN, g.ASes[m.Members[1]].ASN
}

func TestEndpoints(t *testing.T) {
	s := testServer(t, Options{})
	h := s.Handler()
	a, b := memberASNs(t)

	res, body := get(t, h, "/healthz")
	if res.StatusCode != 200 {
		t.Fatalf("healthz: %d %s", res.StatusCode, body)
	}

	res, body = get(t, h, fmt.Sprintf("/v1/estimate/%s/%d/%d", fixture.metro, a, b))
	if res.StatusCode != 200 {
		t.Fatalf("estimate: %d %s", res.StatusCode, body)
	}
	var est estimateResponse
	if err := json.Unmarshal([]byte(body), &est); err != nil {
		t.Fatal(err)
	}
	if est.A != a || est.B != b || est.Metro != fixture.metro {
		t.Fatalf("echoed identifiers wrong: %+v", est)
	}
	if est.Rating < -1.0001 || est.Rating > 1.0001 {
		t.Fatalf("rating out of range: %+v", est)
	}
	if est.Threshold <= 0 || est.Threshold > 1 {
		t.Fatalf("threshold out of range: %+v", est)
	}

	res, body = get(t, h, fmt.Sprintf("/v1/peers/%s/%d?k=5", fixture.metro, a))
	if res.StatusCode != 200 {
		t.Fatalf("peers: %d %s", res.StatusCode, body)
	}
	var peers peersResponse
	if err := json.Unmarshal([]byte(body), &peers); err != nil {
		t.Fatal(err)
	}
	if len(peers.Peers) != 5 || peers.K != 5 {
		t.Fatalf("expected 5 peers, got %+v", peers)
	}
	for i := 1; i < len(peers.Peers); i++ {
		if peers.Peers[i].Score > peers.Peers[i-1].Score {
			t.Fatalf("peers not sorted by score: %+v", peers.Peers)
		}
	}

	res, body = get(t, h, "/v1/consistency/"+fixture.metro)
	if res.StatusCode != 200 {
		t.Fatalf("consistency: %d %s", res.StatusCode, body)
	}
	var rep ConsistencyReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Scopes) != 4 || rep.Members == 0 {
		t.Fatalf("bad consistency report: %s", body)
	}
	for _, sc := range rep.Scopes {
		if sc.Consistent+len(sc.InconsistentASNs) != rep.Members {
			t.Fatalf("scope %s does not partition the members: %s", sc.Scope, body)
		}
	}

	res, body = get(t, h, "/v1/hijack/"+fixture.metro+"/Tokyo")
	if res.StatusCode != 200 {
		t.Fatalf("hijack: %d %s", res.StatusCode, body)
	}
	if !strings.Contains(body, "extended") {
		t.Fatalf("hijack report missing extended outcome: %s", body)
	}

	res, body = get(t, h, "/admin/stats")
	if res.StatusCode != 200 {
		t.Fatalf("stats: %d %s", res.StatusCode, body)
	}
	var stats map[string]any
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["snapshot_seq"].(float64) != 1 {
		t.Fatalf("expected snapshot_seq 1: %s", body)
	}
	if _, ok := stats["route_cache"].(map[string]any); !ok {
		t.Fatalf("stats missing route_cache: %s", body)
	}

	// Error surface.
	for path, want := range map[string]int{
		"/v1/estimate/Nowhere/1/2":                                    404,
		fmt.Sprintf("/v1/estimate/%s/%d/%d", fixture.metro, a, a):     400, // self-pair
		fmt.Sprintf("/v1/estimate/%s/%d/999999999", fixture.metro, a): 404,
		fmt.Sprintf("/v1/estimate/%s/%d/notanas", fixture.metro, a):   400,
		"/v1/consistency/Tokyo":                                       404, // no committed run
		fmt.Sprintf("/v1/peers/%s/%d?k=zero", fixture.metro, a):       400,
		"/v1/runs/run-9999":                                           404,
	} {
		res, body = get(t, h, path)
		if res.StatusCode != want {
			t.Errorf("%s: got %d want %d (%s)", path, res.StatusCode, want, body)
		}
		if !strings.Contains(res.Header.Get("Content-Type"), "json") {
			t.Errorf("%s: error not JSON", path)
		}
	}
}

func TestRateLimit(t *testing.T) {
	s := testServer(t, Options{RateLimit: 1, RateBurst: 2})
	h := s.Handler()
	codes := []int{}
	for i := 0; i < 4; i++ {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		req.RemoteAddr = "10.0.0.9:1234"
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		codes = append(codes, rec.Code)
		if rec.Code == http.StatusTooManyRequests && rec.Header().Get("Retry-After") == "" {
			t.Fatalf("429 without Retry-After")
		}
	}
	if codes[0] != 200 || codes[1] != 200 || codes[2] != 429 || codes[3] != 429 {
		t.Fatalf("burst of 2 should admit exactly 2: %v", codes)
	}
	// A different client has its own bucket.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.RemoteAddr = "10.0.0.10:1234"
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("independent client was limited: %d", rec.Code)
	}
}

func TestRateLimiterRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	l := NewRateLimiter(2, 1) // 2 tokens/sec, burst 1
	l.Now = func() time.Time { return now }
	if !l.Allow("c") {
		t.Fatal("first request should pass")
	}
	if l.Allow("c") {
		t.Fatal("bucket should be empty")
	}
	now = now.Add(600 * time.Millisecond) // refills 1.2 tokens
	if !l.Allow("c") {
		t.Fatal("refill did not admit")
	}
	if l.Allow("c") {
		t.Fatal("burst cap should clamp the refill")
	}
}

func TestCoalescing(t *testing.T) {
	// Deterministic middleware-level test: the leader blocks until all
	// followers are queued behind it, then everyone gets the same body
	// and only followers carry the marker header.
	release := make(chan struct{})
	var calls int
	var mu sync.Mutex
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		<-release
		w.Header().Set("X-From", "handler")
		fmt.Fprintf(w, "payload")
	})
	h := Chain(inner, NewCoalescer().Middleware())

	const followers = 8
	var wg sync.WaitGroup
	recs := make([]*httptest.ResponseRecorder, followers+1)
	start := make(chan struct{})
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			rec := httptest.NewRecorder()
			recs[i] = rec
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/estimate/Sydney/1/2", nil))
		}(i)
	}
	close(start)
	// Wait until the leader is inside the handler, then give the
	// followers a moment to park on the flight, then release.
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		c := calls
		mu.Unlock()
		if c == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("leader never reached the handler")
		case <-time.After(time.Millisecond):
		}
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if calls != 1 {
		// Followers that arrived after the leader finished re-execute;
		// the sleep above makes that unlikely but not impossible. Accept
		// a small number of extra executions, require real coalescing.
		if calls > 3 {
			t.Fatalf("expected ~1 handler execution, got %d", calls)
		}
	}
	coalesced := 0
	for _, rec := range recs {
		if rec.Code != 200 || rec.Body.String() != "payload" {
			t.Fatalf("bad replayed response: %d %q", rec.Code, rec.Body.String())
		}
		if rec.Header().Get("X-From") != "handler" {
			t.Fatalf("replay dropped handler headers")
		}
		if rec.Header().Get("X-Coalesced") == "1" {
			coalesced++
		}
	}
	if coalesced < followers-2 {
		t.Fatalf("expected most of %d followers coalesced, got %d", followers, coalesced)
	}
	// POSTs are never coalesced.
	rec := httptest.NewRecorder()
	Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(204)
	}), NewCoalescer().Middleware()).ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/x", nil))
	if rec.Code != 204 || rec.Header().Get("X-Coalesced") != "" {
		t.Fatalf("POST touched the coalescer: %d", rec.Code)
	}
}

func TestSubmitRunValidation(t *testing.T) {
	s := testServer(t, Options{MaxRunBudget: 500})
	h := s.Handler()
	post := func(body string) (*http.Response, string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/runs", bytes.NewReader([]byte(body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		res := rec.Result()
		b, _ := io.ReadAll(res.Body)
		return res, string(b)
	}

	res, body := post(`{"budget": 100000}`)
	if res.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("over-budget run accepted: %d %s", res.StatusCode, body)
	}
	if !strings.Contains(body, "budget") || !strings.Contains(body, "cap") {
		t.Fatalf("422 does not explain the budget cap: %s", body)
	}

	res, body = post(`{"metros": ["Atlantis"]}`)
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown metro accepted: %d %s", res.StatusCode, body)
	}
	res, body = post(`{"unknown_field": 1}`)
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d %s", res.StatusCode, body)
	}
	res, body = post(`{"metros": []`)
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated JSON accepted: %d %s", res.StatusCode, body)
	}
}

// TestServeWhileCommit is the ISSUE's race-enabled serve-while-commit
// test: readers hammer every GET endpoint while a run executes and
// commits a new State underneath them.
func TestServeWhileCommit(t *testing.T) {
	s := testServer(t, Options{})
	h := s.Handler()
	a, b := memberASNs(t)

	paths := []string{
		fmt.Sprintf("/v1/estimate/%s/%d/%d", fixture.metro, a, b),
		fmt.Sprintf("/v1/peers/%s/%d?k=3", fixture.metro, a),
		"/v1/consistency/" + fixture.metro,
		"/admin/stats",
		"/v1/runs",
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				res, body := get(t, h, paths[(i+n)%len(paths)])
				if res.StatusCode != 200 {
					t.Errorf("reader got %d for %s: %s", res.StatusCode, paths[(i+n)%len(paths)], body)
					return
				}
			}
		}(i)
	}

	// Submit a run on Tokyo and wait for its commit.
	req := httptest.NewRequest(http.MethodPost, "/v1/runs", strings.NewReader(`{"metros": ["Tokyo"], "budget": 400}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	var accepted map[string]string
	json.Unmarshal(rec.Body.Bytes(), &accepted)
	id := accepted["id"]
	if id == "" {
		t.Fatalf("no run id in %s", rec.Body.String())
	}

	deadline := time.After(60 * time.Second)
	for {
		res, body := get(t, h, "/v1/runs/"+id)
		if res.StatusCode != 200 {
			t.Fatalf("status poll: %d %s", res.StatusCode, body)
		}
		var st map[string]any
		json.Unmarshal([]byte(body), &st)
		state, _ := st["state"].(string)
		if state == "done" {
			break
		}
		if state == "failed" || state == "canceled" {
			t.Fatalf("run ended %s: %s", state, body)
		}
		select {
		case <-deadline:
			t.Fatalf("run %s never finished: %s", id, body)
		case <-time.After(20 * time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()

	// The commit swapped in a new snapshot that now serves Tokyo.
	if got := s.State().Seq; got < 2 {
		t.Fatalf("commit did not bump the snapshot seq: %d", got)
	}
	res, body := get(t, h, "/v1/consistency/Tokyo")
	if res.StatusCode != 200 {
		t.Fatalf("Tokyo not served after commit: %d %s", res.StatusCode, body)
	}
	// The original metro is still served from the merged state.
	res, body = get(t, h, "/v1/consistency/"+fixture.metro)
	if res.StatusCode != 200 {
		t.Fatalf("%s lost after commit: %d %s", fixture.metro, res.StatusCode, body)
	}
	if err := s.Runs().Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestRestartByteIdentity proves the -save / -load contract: a server
// booted from a snapshot artifact serves byte-identical responses.
func TestRestartByteIdentity(t *testing.T) {
	s := testServer(t, Options{})
	h := s.Handler()

	art := snapshot.Capture(fixture.worldCfg, fixture.pipe, fixture.results)
	var buf bytes.Buffer
	if err := snapshot.Encode(&buf, art); err != nil {
		t.Fatal(err)
	}
	art2, err := snapshot.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p2, results2, err := snapshot.Restore(art2)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewServer(p2, results2, Options{WorldCfg: art2.World, Base: fixture.base})
	h2 := s2.Handler()

	a, b := memberASNs(t)
	paths := []string{
		"/healthz",
		fmt.Sprintf("/v1/estimate/%s/%d/%d", fixture.metro, a, b),
		fmt.Sprintf("/v1/estimate/%s/%d/%d", fixture.metro, b, a),
		fmt.Sprintf("/v1/peers/%s/%d?k=25", fixture.metro, a),
		"/v1/consistency/" + fixture.metro,
		"/v1/hijack/" + fixture.metro + "/Tokyo",
		"/v1/hijack/" + fixture.metro + "/Tokyo?thr=0.4",
	}
	for _, path := range paths {
		res1, body1 := get(t, h, path)
		res2, body2 := get(t, h2, path)
		if res1.StatusCode != res2.StatusCode {
			t.Errorf("%s: status %d vs %d after restart", path, res1.StatusCode, res2.StatusCode)
			continue
		}
		if body1 != body2 {
			t.Errorf("%s: response changed across restart:\n before: %s\n after:  %s", path, body1, body2)
		}
	}
}

func BenchmarkEstimateHandler(b *testing.B) {
	s := testServer(b, Options{})
	h := s.Handler()
	x, y := memberASNs(b)
	path := fmt.Sprintf("/v1/estimate/%s/%d/%d", fixture.metro, x, y)
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		b.Fatalf("estimate: %d %s", rec.Code, rec.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatal(rec.Code)
		}
	}
}
