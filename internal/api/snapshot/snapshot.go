// Package snapshot defines the serving daemon's persistence artifact: a
// versioned, checksummed binary file from which metascriticd boots warm
// (`-load`) and which cmd/metascritic can produce after a batch (`-save`).
//
// An artifact holds (1) the world configuration — worlds are generated
// deterministically from it, so the graph itself is never serialized —
// (2) the serving store's accumulated evidence (the obs package's
// deterministic codec payload), and (3) the served per-metro results:
// everything the v1 endpoints read, omitting run diagnostics the API does
// not expose (RankHistory, Calibrations, Timings).
//
// File framing:
//
//	offset 0  magic   [8]byte  "msacSNAP"
//	offset 8  version uint16   little-endian, currently 2
//	offset 10 length  uint64   payload byte count
//	offset 18 crc     uint32   IEEE CRC-32 of the payload
//	offset 22 payload
//
// The payload is a deterministic uvarint/zigzag/fixed64 encoding (maps in
// sorted key order), so Encode(Decode(x)) is byte-identical to x and two
// equivalent artifacts encode identically — the property behind the
// daemon's "restart with -load serves byte-identical responses" contract.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"metascritic"
	"metascritic/internal/mat"
	"metascritic/internal/obs"
)

// Version is the current artifact format version. Version 2 added epoch
// stamps to the embedded evidence payload (obs epoch log and per-record
// stamps); version-1 artifacts are rejected rather than misread.
const Version = 2

var magic = [8]byte{'m', 's', 'a', 'c', 'S', 'N', 'A', 'P'}

// Typed decode failures, distinguishable with errors.Is.
var (
	// ErrNotSnapshot means the input does not start with the artifact
	// magic — it is some other file, not a corrupted snapshot.
	ErrNotSnapshot = errors.New("snapshot: not a snapshot file")
	// ErrVersion means the artifact was written by an unknown (newer or
	// retired) format version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrCorrupt means the framing was recognized but the content is
	// damaged: truncation, checksum mismatch, or a malformed payload.
	ErrCorrupt = errors.New("snapshot: corrupt")
)

// maxPayload bounds the declared payload length (1 GiB) so a corrupted
// header cannot drive a huge allocation before the CRC check.
const maxPayload = 1 << 30

// Artifact is the decoded form of a snapshot file.
type Artifact struct {
	// World is the generation config; Restore regenerates the world from
	// it (worlds are pure functions of their config).
	World metascritic.WorldConfig
	// Evidence is the serving store's obs codec payload.
	Evidence []byte
	// Results holds the served per-metro results.
	Results map[int]*metascritic.Result
}

// Capture builds an artifact from a pipeline's current store and a result
// set. The pipeline must have been built over a world generated from cfg.
func Capture(cfg metascritic.WorldConfig, p *metascritic.Pipeline, results map[int]*metascritic.Result) *Artifact {
	return &Artifact{World: cfg, Evidence: p.Store.EncodeEvidence(), Results: results}
}

// Restore rebuilds a servable pipeline and result set from an artifact:
// the world is regenerated from the config, the pipeline's store is
// loaded from the evidence payload, and results are returned as decoded.
func Restore(a *Artifact) (*metascritic.Pipeline, map[int]*metascritic.Result, error) {
	w := metascritic.GenerateWorld(a.World)
	p := metascritic.NewPipeline(w)
	if err := p.Store.LoadEvidence(a.Evidence); err != nil {
		return nil, nil, fmt.Errorf("%w: evidence: %w", ErrCorrupt, err)
	}
	for m, r := range a.Results {
		if m < 0 || m >= len(w.G.Metros) || r.Metro != m {
			return nil, nil, fmt.Errorf("%w: result metro %d out of range for the encoded world", ErrCorrupt, m)
		}
		for _, as := range r.Members {
			if as < 0 || as >= w.G.N() {
				return nil, nil, fmt.Errorf("%w: metro %d member AS %d out of range", ErrCorrupt, m, as)
			}
		}
	}
	return p, a.Results, nil
}

// Save writes an encoded artifact to path (atomically via a temp file and
// rename, so a crash mid-write never leaves a half-snapshot behind).
func Save(path string, a *Artifact) error {
	tmp, err := os.CreateTemp(dirOf(path), ".snap-*")
	if err != nil {
		return fmt.Errorf("snapshot: save: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Encode(tmp, a); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: save %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: save %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapshot: save: %w", err)
	}
	return nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

// Load reads and decodes an artifact from path.
func Load(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: load: %w", err)
	}
	defer f.Close()
	a, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("snapshot: load %s: %w", path, err)
	}
	return a, nil
}

// Encode frames and writes the artifact.
func Encode(w io.Writer, a *Artifact) error {
	payload := appendPayload(nil, a)
	hdr := make([]byte, 22)
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint16(hdr[8:], Version)
	binary.LittleEndian.PutUint64(hdr[10:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[18:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("snapshot: encode: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("snapshot: encode: %w", err)
	}
	return nil
}

// Decode reads a framed artifact: magic, version and CRC are verified
// before any payload parsing.
func Decode(r io.Reader) (*Artifact, error) {
	hdr := make([]byte, 22)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: header truncated", ErrNotSnapshot)
		}
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrNotSnapshot, hdr[:8])
	}
	if v := binary.LittleEndian.Uint16(hdr[8:]); v != Version {
		return nil, fmt.Errorf("%w: file version %d, this build reads %d", ErrVersion, v, Version)
	}
	n := binary.LittleEndian.Uint64(hdr[10:])
	if n > maxPayload {
		return nil, fmt.Errorf("%w: declared payload length %d exceeds the %d limit", ErrCorrupt, n, maxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: payload truncated: %v", ErrCorrupt, err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(hdr[18:]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (file %08x, content %08x)", ErrCorrupt, want, got)
	}
	// Reject trailing bytes: a snapshot file is exactly one artifact.
	var one [1]byte
	if _, err := r.Read(one[:]); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing bytes after payload", ErrCorrupt)
	}
	return decodePayload(payload)
}

// --- payload encoding ---

func appendPayload(b []byte, a *Artifact) []byte {
	b = appendWorld(b, a.World)
	b = binary.AppendUvarint(b, uint64(len(a.Evidence)))
	b = append(b, a.Evidence...)

	metros := make([]int, 0, len(a.Results))
	for m := range a.Results {
		metros = append(metros, m)
	}
	sort.Ints(metros)
	b = binary.AppendUvarint(b, uint64(len(metros)))
	for _, m := range metros {
		b = appendResult(b, a.Results[m])
	}
	return b
}

func appendWorld(b []byte, cfg metascritic.WorldConfig) []byte {
	b = binary.AppendVarint(b, cfg.Seed)
	b = binary.AppendUvarint(b, uint64(len(cfg.Metros)))
	for _, m := range cfg.Metros {
		b = appendString(b, m.Name)
		b = appendString(b, m.Country)
		b = appendString(b, m.Continent)
		b = binary.AppendUvarint(b, uint64(m.NumASes))
		b = appendF64(b, m.VPCoverage)
		b = appendBool(b, m.Primary)
	}
	b = binary.AppendUvarint(b, uint64(cfg.LatentDim))
	b = appendF64(b, cfg.FeatureNoise)
	b = appendF64(b, cfg.LinkMaterializeProb)
	b = binary.AppendUvarint(b, uint64(cfg.NumTier1))
	b = binary.AppendUvarint(b, uint64(cfg.NumHypergiants))
	b = binary.AppendUvarint(b, uint64(cfg.NumArchetypes))
	return b
}

func appendResult(b []byte, r *metascritic.Result) []byte {
	b = binary.AppendUvarint(b, uint64(r.Metro))
	b = binary.AppendUvarint(b, uint64(len(r.Members)))
	for _, m := range r.Members {
		b = binary.AppendUvarint(b, uint64(m))
	}
	b = binary.AppendUvarint(b, uint64(r.Rank))
	b = appendF64(b, r.Threshold)
	b = appendF64(b, r.Lambda)
	b = appendF64(b, r.FeatureWeight)
	b = binary.AppendUvarint(b, uint64(r.Measurements))
	b = binary.AppendUvarint(b, uint64(r.BootstrapMeasurements))
	for _, v := range r.StrategyRates {
		b = appendF64(b, v)
	}
	b = appendMatrix(b, r.Ratings)
	b = appendMatrix(b, r.Estimate.E)
	b = appendMask(b, r.Estimate.Mask)
	return b
}

func appendMatrix(b []byte, m *mat.Matrix) []byte {
	b = binary.AppendUvarint(b, uint64(m.Rows))
	b = binary.AppendUvarint(b, uint64(m.Cols))
	for _, v := range m.Data {
		b = appendF64(b, v)
	}
	return b
}

func appendMask(b []byte, m *mat.Mask) []byte {
	n := m.N()
	b = binary.AppendUvarint(b, uint64(n))
	for i := 0; i < n; i++ {
		row := m.RowView(i)
		b = binary.AppendUvarint(b, uint64(len(row)))
		for _, j := range row {
			b = binary.AppendUvarint(b, uint64(j))
		}
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// --- payload decoding ---

func decodePayload(data []byte) (*Artifact, error) {
	d := &decoder{data: data}
	a := &Artifact{}
	a.World = d.world()

	en := d.count("evidence length")
	if d.err == nil {
		a.Evidence = append([]byte(nil), d.take(en, "evidence")...)
	}

	nr := d.count("result")
	a.Results = make(map[int]*metascritic.Result, nr)
	prev := -1
	for i := 0; i < nr && d.err == nil; i++ {
		r := d.result()
		if d.err != nil {
			break
		}
		if r.Metro <= prev {
			d.fail("results not sorted by metro at %d", r.Metro)
			break
		}
		prev = r.Metro
		a.Results[r.Metro] = r
	}
	if d.err == nil && len(d.data) > 0 {
		d.fail("%d trailing payload bytes", len(d.data))
	}
	if d.err != nil {
		return nil, d.err
	}
	return a, nil
}

type decoder struct {
	data []byte
	err  error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (d *decoder) uint(what string) int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 || (n > 1 && d.data[n-1] == 0) {
		d.fail("bad varint for %s", what)
		return 0
	}
	if v > uint64(int(^uint(0)>>1)) {
		d.fail("%s overflows int", what)
		return 0
	}
	d.data = d.data[n:]
	return int(v)
}

func (d *decoder) int64(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data)
	if n <= 0 || (n > 1 && d.data[n-1] == 0) {
		d.fail("bad varint for %s", what)
		return 0
	}
	d.data = d.data[n:]
	return v
}

// count reads a collection length, bounded by the remaining input.
func (d *decoder) count(what string) int {
	n := d.uint(what + " count")
	if d.err == nil && n > len(d.data) {
		d.fail("%s count %d exceeds remaining input", what, n)
		return 0
	}
	return n
}

func (d *decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n > len(d.data) {
		d.fail("truncated %s", what)
		return nil
	}
	out := d.data[:n]
	d.data = d.data[n:]
	return out
}

func (d *decoder) f64(what string) float64 {
	b := d.take(8, what)
	if d.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (d *decoder) str(what string) string {
	n := d.count(what)
	return string(d.take(n, what))
}

func (d *decoder) bool(what string) bool {
	b := d.take(1, what)
	if d.err != nil {
		return false
	}
	if b[0] > 1 {
		d.fail("bad bool byte %d for %s", b[0], what)
		return false
	}
	return b[0] == 1
}

func (d *decoder) world() metascritic.WorldConfig {
	var cfg metascritic.WorldConfig
	cfg.Seed = d.int64("world seed")
	nm := d.count("metro spec")
	for i := 0; i < nm && d.err == nil; i++ {
		cfg.Metros = append(cfg.Metros, metascritic.MetroSpec{
			Name:       d.str("metro name"),
			Country:    d.str("metro country"),
			Continent:  d.str("metro continent"),
			NumASes:    d.uint("metro NumASes"),
			VPCoverage: d.f64("metro VPCoverage"),
			Primary:    d.bool("metro Primary"),
		})
	}
	cfg.LatentDim = d.uint("LatentDim")
	cfg.FeatureNoise = d.f64("FeatureNoise")
	cfg.LinkMaterializeProb = d.f64("LinkMaterializeProb")
	cfg.NumTier1 = d.uint("NumTier1")
	cfg.NumHypergiants = d.uint("NumHypergiants")
	cfg.NumArchetypes = d.uint("NumArchetypes")
	return cfg
}

func (d *decoder) result() *metascritic.Result {
	r := &metascritic.Result{Metro: d.uint("result metro")}
	nm := d.count("member")
	r.Members = make([]int, 0, nm)
	for i := 0; i < nm && d.err == nil; i++ {
		r.Members = append(r.Members, d.uint("member"))
	}
	r.Rank = d.uint("rank")
	r.Threshold = d.f64("threshold")
	r.Lambda = d.f64("lambda")
	r.FeatureWeight = d.f64("feature weight")
	r.Measurements = d.uint("measurements")
	r.BootstrapMeasurements = d.uint("bootstrap measurements")
	for i := range r.StrategyRates {
		r.StrategyRates[i] = d.f64("strategy rate")
	}
	r.Ratings = d.matrix("ratings")
	e := d.matrix("estimate E")
	mask := d.mask("estimate mask")
	if d.err != nil {
		return r
	}
	n := len(r.Members)
	if r.Ratings.Rows != n || r.Ratings.Cols != n || e.Rows != n || e.Cols != n || mask.N() != n {
		d.fail("metro %d: matrix dimensions disagree with %d members", r.Metro, n)
		return r
	}
	idx := make(map[int]int, n)
	for i, as := range r.Members {
		idx[as] = i
	}
	// The reconstructed estimate carries everything the serving API reads
	// (Value, Mask, Index); it is detached from any store, so a Refresh
	// against a live store would rebuild rather than delta-patch — the
	// daemon never refreshes served estimates.
	r.Estimate = &obs.Estimate{Metro: r.Metro, Members: r.Members, Index: idx, E: e, Mask: mask}
	return r
}

func (d *decoder) matrix(what string) *mat.Matrix {
	rows := d.uint(what + " rows")
	cols := d.uint(what + " cols")
	if d.err != nil {
		return mat.New(0, 0)
	}
	if rows > maxPayload/8 || cols > maxPayload/8 || (cols != 0 && rows > len(d.data)/(8*cols)) {
		d.fail("%s dimensions %dx%d exceed remaining input", what, rows, cols)
		return mat.New(0, 0)
	}
	m := mat.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = d.f64(what + " entry")
	}
	return m
}

func (d *decoder) mask(what string) *mat.Mask {
	n := d.count(what + " dimension")
	if d.err != nil {
		return mat.NewMask(0)
	}
	m := mat.NewMask(n)
	for i := 0; i < n && d.err == nil; i++ {
		rn := d.count(what + " row")
		prev := -1
		for k := 0; k < rn && d.err == nil; k++ {
			j := d.uint(what + " column")
			if d.err != nil {
				break
			}
			if j <= prev || j >= n {
				d.fail("%s row %d not strictly sorted in [0,%d)", what, i, n)
				break
			}
			prev = j
			m.Set(i, j)
		}
	}
	return m
}
