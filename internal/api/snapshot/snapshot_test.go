package snapshot

// Artifact codec tests: a captured pipeline+results round-trips through
// Encode/Decode/Restore with byte-identical re-encoding and
// functionally identical serving state; damaged files are rejected with
// the right typed error (ErrNotSnapshot / ErrVersion / ErrCorrupt); and
// a fuzz harness pins "no panic, and acceptance implies decode→encode
// stability" on arbitrary payload bytes.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"metascritic"
)

// testArtifact runs two small metros and captures the pipeline.
func testArtifact(t testing.TB) *Artifact {
	t.Helper()
	cfg := metascritic.WorldConfig{
		Seed: 11,
		Metros: []metascritic.MetroSpec{
			{Name: "A", Country: "NL", Continent: "EU", NumASes: 40, VPCoverage: 0.8, Primary: true},
			{Name: "B", Country: "US", Continent: "NA", NumASes: 30, VPCoverage: 0.6, Primary: true},
			{Name: "C", Country: "DE", Continent: "EU", NumASes: 25, VPCoverage: 0.7},
		},
	}
	w := metascritic.GenerateWorld(cfg)
	p := metascritic.NewPipeline(w)
	rng := rand.New(rand.NewSource(2))
	p.SeedPublicMeasurements(6, rng)

	rcfg := metascritic.DefaultConfig()
	rcfg.MaxMeasurements = 400
	rcfg.BatchSize = 80
	rcfg.Rank.MaxRank = 6
	rcfg.Rank.Iterations = 3
	results := map[int]*metascritic.Result{}
	for m := 0; m < 2; m++ {
		res, err := p.Snapshot().Run(context.Background(), m, rcfg)
		if err != nil {
			t.Fatalf("run metro %d: %v", m, err)
		}
		// The artifact does not carry run diagnostics; drop them so
		// DeepEqual comparisons below compare exactly the served fields.
		res.RankHistory, res.Calibrations, res.Timings = nil, nil, metascritic.PhaseTimings{}
		results[m] = res
	}
	return Capture(cfg, p, results)
}

func encode(t testing.TB, a *Artifact) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, a); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

func TestArtifactRoundTrip(t *testing.T) {
	a := testArtifact(t)
	enc := encode(t, a)

	dec, err := Decode(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(encode(t, dec), enc) {
		t.Fatalf("re-encoding the decoded artifact is not byte-identical")
	}
	if !reflect.DeepEqual(dec.World, a.World) {
		t.Fatalf("world config changed in round trip:\n got %+v\nwant %+v", dec.World, a.World)
	}
	if !bytes.Equal(dec.Evidence, a.Evidence) {
		t.Fatalf("evidence payload changed in round trip")
	}

	p, results, err := Restore(dec)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got, want := p.Store.EncodeEvidence(), a.Evidence; !bytes.Equal(got, want) {
		t.Fatalf("restored store evidence differs from the captured store")
	}
	for m, want := range a.Results {
		got := results[m]
		if got == nil {
			t.Fatalf("metro %d missing after restore", m)
		}
		// Estimates compare equal except for the unexported
		// delta-maintenance bookkeeping, which Restore leaves detached.
		if !reflect.DeepEqual(got.Estimate.E, want.Estimate.E) ||
			got.Estimate.Mask.Count() != want.Estimate.Mask.Count() ||
			!reflect.DeepEqual(got.Estimate.Index, want.Estimate.Index) {
			t.Fatalf("metro %d estimate changed in round trip", m)
		}
		got.Estimate, want.Estimate = nil, nil
		// Warm ALS factors are derived state; Restore leaves them detached
		// (a post-restore Rescore cold-starts its completion).
		got.Factors, want.Factors = nil, nil
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("metro %d result changed in round trip:\n got %+v\nwant %+v", m, got, want)
		}
	}
}

func TestSaveLoad(t *testing.T) {
	a := testArtifact(t)
	path := filepath.Join(t.TempDir(), "warm.snap")
	if err := Save(path, a); err != nil {
		t.Fatalf("save: %v", err)
	}
	b, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !bytes.Equal(encode(t, b), encode(t, a)) {
		t.Fatalf("Save/Load round trip is not byte-identical")
	}
	// No temp files left behind.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left in snapshot dir: %v", ents)
	}
}

func TestDecodeRejectsForeignFile(t *testing.T) {
	for _, in := range [][]byte{
		nil,
		[]byte("{}"),
		[]byte("not a snapshot at all, just some prose"),
	} {
		if _, err := Decode(bytes.NewReader(in)); !errors.Is(err, ErrNotSnapshot) {
			t.Fatalf("input %q: got %v, want ErrNotSnapshot", in, err)
		}
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	enc := encode(t, testArtifact(t))
	for _, v := range []uint16{0, Version + 1, 0xffff} {
		mut := append([]byte{}, enc...)
		binary.LittleEndian.PutUint16(mut[8:], v)
		if _, err := Decode(bytes.NewReader(mut)); !errors.Is(err, ErrVersion) {
			t.Fatalf("version %d: got %v, want ErrVersion", v, err)
		}
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	enc := encode(t, testArtifact(t))

	// Truncation anywhere: header truncations read as not-a-snapshot,
	// payload truncations as corruption.
	for _, n := range []int{0, 7, 21, 22, len(enc) / 2, len(enc) - 1} {
		_, err := Decode(bytes.NewReader(enc[:n]))
		if n < 22 {
			if !errors.Is(err, ErrNotSnapshot) {
				t.Fatalf("truncation to %d: got %v, want ErrNotSnapshot", n, err)
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d: got %v, want ErrCorrupt", n, err)
		}
	}

	// Any payload bit flip trips the checksum.
	for _, pos := range []int{22, 22 + (len(enc)-22)/2, len(enc) - 1} {
		mut := append([]byte{}, enc...)
		mut[pos] ^= 0x40
		if _, err := Decode(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: got %v, want ErrCorrupt", pos, err)
		}
	}

	// Trailing bytes are rejected.
	if _, err := Decode(bytes.NewReader(append(append([]byte{}, enc...), 0))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: got %v, want ErrCorrupt", err)
	}

	// An absurd declared length fails before allocating it.
	mut := append([]byte{}, enc...)
	binary.LittleEndian.PutUint64(mut[10:], 1<<40)
	if _, err := Decode(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge length: got %v, want ErrCorrupt", err)
	}
}

// FuzzDecodePayload drives arbitrary bytes through the payload parser
// (framed with a correct header so the CRC gate does not mask it): it
// must never panic, and any accepted payload must re-encode identically.
func FuzzDecodePayload(f *testing.F) {
	f.Add([]byte{})
	var buf bytes.Buffer
	if err := Encode(&buf, testArtifact(f)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes()[22:])
	f.Fuzz(func(t *testing.T, payload []byte) {
		a, err := decodePayload(payload)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		if !bytes.Equal(appendPayload(nil, a), payload) {
			t.Fatalf("accepted payload is not a decode→encode fixed point")
		}
	})
}

func BenchmarkSnapshotLoad(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.snap")
	if err := Save(path, testArtifact(b)); err != nil {
		b.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fi.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(path); err != nil {
			b.Fatal(err)
		}
	}
}
