package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"metascritic"
)

// streamServer builds a private served world for ingest tests: ingest
// mutates the world in place, so these tests must not share the
// package-level read-only fixture.
func streamServer(t testing.TB) (*Server, string) {
	t.Helper()
	worldCfg := metascritic.WorldConfig{Seed: 21, Metros: metascritic.DefaultMetros(0.1)}
	w := metascritic.GenerateWorld(worldCfg)
	p := metascritic.NewPipeline(w)
	p.SeedPublicMeasurements(6, rand.New(rand.NewSource(21)))
	cfg := metascritic.DefaultConfig()
	cfg.MaxMeasurements = 500
	cfg.BatchSize = 60
	cfg.Rank.MaxRank = 6
	cfg.Rank.Iterations = 3
	m := w.G.MetroOfName("Sydney")
	res, err := p.Snapshot().Run(context.Background(), m.Index, cfg)
	if err != nil {
		t.Fatalf("fixture run: %v", err)
	}
	s := NewServer(p, map[int]*metascritic.Result{m.Index: res}, Options{WorldCfg: worldCfg, Base: cfg})
	return s, m.Name
}

func postIngest(t testing.TB, h http.Handler, body string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader([]byte(body)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	b, _ := io.ReadAll(res.Body)
	return res, string(b)
}

func TestIngest(t *testing.T) {
	s, metro := streamServer(t)
	h := s.Handler()

	res, body := postIngest(t, h, `{"seed": 5, "link_downs": 8, "depeerings": 2, "link_ups": 8, "ixp_joins": 3}`)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %s", res.StatusCode, body)
	}
	var ing ingestResponse
	if err := json.Unmarshal([]byte(body), &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Epoch != 1 || ing.SnapshotSeq != 2 {
		t.Fatalf("expected epoch 1 / seq 2: %+v", ing)
	}
	if ing.Events == 0 || ing.Traces == 0 || ing.Invalidated == 0 {
		t.Fatalf("batch absorbed nothing: %+v", ing)
	}
	if len(ing.Rescored) != 1 || ing.Rescored[0] != metro {
		t.Fatalf("expected %s rescored: %+v", metro, ing)
	}
	st := s.State()
	if st.Epoch != 1 || st.Seq != 2 {
		t.Fatalf("state not swapped: epoch %d seq %d", st.Epoch, st.Seq)
	}
	if st.Pipe.World.Epoch != 1 {
		t.Fatalf("world epoch = %d, want 1", st.Pipe.World.Epoch)
	}

	// The re-scored metro still serves every read endpoint.
	g := st.Pipe.World.G
	members := g.MetroOfName(metro).Members
	a, b := g.ASes[members[0]].ASN, g.ASes[members[1]].ASN
	for _, path := range []string{
		fmt.Sprintf("/v1/estimate/%s/%d/%d", metro, a, b),
		fmt.Sprintf("/v1/peers/%s/%d?k=3", metro, a),
		"/v1/consistency/" + metro,
	} {
		if res, body := get(t, h, path); res.StatusCode != 200 {
			t.Fatalf("%s after ingest: %d %s", path, res.StatusCode, body)
		}
	}

	// A second batch with AS arrivals grows the world and forces a full
	// route-cache invalidation (retained 0).
	res, body = postIngest(t, h, `{"seed": 6, "link_ups": 4, "new_ases": 3, "traces_per_probe": 2}`)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("second ingest: %d %s", res.StatusCode, body)
	}
	var ing2 ingestResponse
	json.Unmarshal([]byte(body), &ing2)
	if ing2.Epoch != 2 || ing2.NewASes != 3 || ing2.Retained != 0 {
		t.Fatalf("arrival batch: %+v", ing2)
	}
	if ing2.NewAddresses == 0 {
		t.Fatalf("arrivals allocated no addresses: %+v", ing2)
	}

	// /admin/stats reports the epoch, the ingest counters and the route
	// cache's invalidation counters.
	res, body = get(t, h, "/admin/stats")
	if res.StatusCode != 200 {
		t.Fatalf("stats: %d %s", res.StatusCode, body)
	}
	var stats statsResponse
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != 2 {
		t.Fatalf("stats epoch = %d, want 2", stats.Epoch)
	}
	if stats.Ingest.Batches != 2 || stats.Ingest.Events == 0 || stats.Ingest.NewASes != 3 ||
		stats.Ingest.Traces == 0 || stats.Ingest.Rescores != 2 {
		t.Fatalf("ingest counters: %+v", stats.Ingest)
	}
	if stats.LastIngest == nil || stats.LastIngest.Epoch != 2 {
		t.Fatalf("last ingest missing: %+v", stats.LastIngest)
	}
	var raw map[string]any
	json.Unmarshal([]byte(body), &raw)
	rc, ok := raw["route_cache"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing route_cache: %s", body)
	}
	for _, key := range []string{"Epoch", "Invalidated", "Retained"} {
		if _, ok := rc[key]; !ok {
			t.Fatalf("route_cache missing %s: %s", key, body)
		}
	}
	if rc["Invalidated"].(float64) == 0 {
		t.Fatalf("route cache reports no invalidations after two batches: %s", body)
	}
}

// TestIngestDeterminism pins the streaming determinism contract at the
// API level: two servers over identically generated worlds, fed the
// same ingest request, serve byte-identical estimates.
func TestIngestDeterminism(t *testing.T) {
	s1, metro := streamServer(t)
	s2, _ := streamServer(t)
	h1, h2 := s1.Handler(), s2.Handler()
	const batch = `{"seed": 9, "link_downs": 6, "link_ups": 6, "depeerings": 2}`
	for i, h := range []http.Handler{h1, h2} {
		if res, body := postIngest(t, h, batch); res.StatusCode != 200 {
			t.Fatalf("ingest on server %d: %d %s", i, res.StatusCode, body)
		}
	}
	g := s1.State().Pipe.World.G
	members := g.MetroOfName(metro).Members
	a, b := g.ASes[members[0]].ASN, g.ASes[members[1]].ASN
	for _, path := range []string{
		fmt.Sprintf("/v1/estimate/%s/%d/%d", metro, a, b),
		fmt.Sprintf("/v1/peers/%s/%d?k=10", metro, a),
	} {
		_, body1 := get(t, h1, path)
		_, body2 := get(t, h2, path)
		if body1 != body2 {
			t.Errorf("%s diverged across identically ingested servers:\n %s\n %s", path, body1, body2)
		}
	}
}

func TestIngestValidation(t *testing.T) {
	// Rejections happen before any mutation, so the shared read-only
	// fixture is safe here.
	s := testServer(t, Options{})
	h := s.Handler()
	for body, want := range map[string]int{
		`{"link_downs": 2`:   http.StatusBadRequest, // truncated JSON
		`{"surprise": 1}`:    http.StatusBadRequest, // unknown field
		`{}`:                 http.StatusBadRequest, // empty spec
		`{"link_downs": -1}`: http.StatusBadRequest, // negative count
		`{"link_ups": 1, "traces_per_probe": -2}`: http.StatusBadRequest,
	} {
		res, resp := postIngest(t, h, body)
		if res.StatusCode != want {
			t.Errorf("%s: got %d want %d (%s)", body, res.StatusCode, want, resp)
		}
	}
	if s.State().Epoch != 0 || s.eng.Pipeline().World.Epoch != 0 {
		t.Fatalf("a rejected ingest mutated the world")
	}
}

func TestIngestConflictsWithActiveRuns(t *testing.T) {
	s := testServer(t, Options{})
	h := s.Handler()
	req := httptest.NewRequest(http.MethodPost, "/v1/runs", strings.NewReader(`{"metros": ["Tokyo"], "budget": 400}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	res, body := postIngest(t, h, `{"seed": 1, "link_downs": 2}`)
	if res.StatusCode != http.StatusConflict {
		t.Fatalf("ingest during an active run: got %d want 409 (%s)", res.StatusCode, body)
	}
	if s.eng.Pipeline().World.Epoch != 0 {
		t.Fatal("409'd ingest still mutated the world")
	}
	// Drain the run so the shared fixture's manager holds no goroutines.
	if err := s.Runs().Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServeWhileIngest is the streaming analogue of TestServeWhileCommit:
// readers hammer the world-touching endpoints while two ingest batches
// evolve the world underneath them. Run with -race this pins the
// worldMu discipline.
func TestServeWhileIngest(t *testing.T) {
	s, metro := streamServer(t)
	h := s.Handler()
	g := s.State().Pipe.World.G
	members := g.MetroOfName(metro).Members
	a, b := g.ASes[members[0]].ASN, g.ASes[members[1]].ASN

	paths := []string{
		fmt.Sprintf("/v1/estimate/%s/%d/%d", metro, a, b),
		fmt.Sprintf("/v1/peers/%s/%d?k=3", metro, a),
		"/v1/consistency/" + metro,
		"/v1/hijack/" + metro + "/Tokyo",
		"/admin/stats",
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				res, body := get(t, h, paths[(i+n)%len(paths)])
				if res.StatusCode != 200 {
					t.Errorf("reader got %d for %s: %s", res.StatusCode, paths[(i+n)%len(paths)], body)
					return
				}
			}
		}(i)
	}

	for seed := 1; seed <= 2; seed++ {
		body := fmt.Sprintf(`{"seed": %d, "link_downs": 5, "link_ups": 5, "traces_per_probe": 2}`, seed)
		res, resp := postIngest(t, h, body)
		if res.StatusCode != 200 {
			t.Fatalf("ingest %d: %d %s", seed, res.StatusCode, resp)
		}
		time.Sleep(10 * time.Millisecond) // let readers overlap the swapped state
	}
	close(stop)
	wg.Wait()
	if got := s.State().Epoch; got != 2 {
		t.Fatalf("final epoch = %d, want 2", got)
	}
}
