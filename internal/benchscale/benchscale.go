// Package benchscale sizes micro-benchmarks from the METASCRITIC_BENCH_SCALE
// environment variable so the same benchmark definitions serve both quick CI
// perf-trajectory runs (scale 0.05, see `make bench`) and full-size local
// profiling (scale 1). Sizes scale linearly; every dimension has a floor so a
// tiny scale still exercises the real code paths.
package benchscale

import (
	"os"
	"strconv"
)

// EnvVar is the environment variable read by Scale.
const EnvVar = "METASCRITIC_BENCH_SCALE"

// Scale returns the configured benchmark scale factor (default 1). Values
// that do not parse, or are not strictly positive, fall back to 1.
func Scale() float64 {
	v := os.Getenv(EnvVar)
	if v == "" {
		return 1
	}
	s, err := strconv.ParseFloat(v, 64)
	if err != nil || s <= 0 {
		return 1
	}
	return s
}

// N returns base scaled by Scale(), floored at min.
func N(base, min int) int {
	n := int(float64(base) * Scale())
	if n < min {
		n = min
	}
	return n
}
