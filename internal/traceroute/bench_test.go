package traceroute

import (
	"testing"

	"metascritic/internal/netsim"
)

func BenchmarkRunTarget(b *testing.B) {
	w := netsim.Generate(netsim.Config{Seed: 1, Metros: netsim.DefaultMetros(0.2)})
	e := NewEngine(w)
	probes := w.Probes
	n := w.G.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := probes[i%len(probes)]
		e.RunTarget(p.AS, p.Metro, (p.AS+i)%n, p.Metro)
	}
}
