// Package traceroute simulates RIPE-Atlas-style traceroute measurements
// over the synthetic Internet. A traceroute from a vantage point follows
// the Gao-Rexford best AS path toward the target; at every inter-AS
// crossing the engine chooses the metro where the crossing physically
// happens using hot-potato (nearest-exit) routing, with destination-
// dependent deviations for ASes flagged as having inconsistent routing
// policies (§3.4). Hops are emitted as interface addresses that the ipmap
// registry can resolve back — with its own error model — exactly like the
// real pipeline maps hops with bdrmapit and geolocation.
package traceroute

import (
	"context"
	"sync"
	"sync/atomic"

	"metascritic/internal/asgraph"
	"metascritic/internal/bgp"
	"metascritic/internal/ipmap"
	"metascritic/internal/netsim"
)

// Hop is one traceroute hop: an interface address, or a star when the
// router did not answer.
type Hop struct {
	Addr       ipmap.Addr
	Responsive bool
}

// Trace is the result of one traceroute measurement.
type Trace struct {
	VPAS    int // AS hosting the probe
	VPMetro int // probe location
	DstAS   int
	DstAddr ipmap.Addr
	Hops    []Hop
	// Reached reports whether the destination answered.
	Reached bool
}

// Engine executes traceroutes against a world. It also counts measurements
// so callers can enforce probing budgets (the paper's RIPE Atlas rate
// limits). An Engine is safe for concurrent use: traces are pure functions
// of (vp, target) and the issued counter is atomic, so concurrent metro
// runs can share one engine and observe identical hop sequences.
type Engine struct {
	W   *netsim.World
	Reg *ipmap.Registry
	// Cache propagates routes over the full true topology (the packets
	// travel over the real Internet regardless of what we know about it).
	Cache *bgp.RouteCache
	// HopLossRate is the per-hop probability of a silent router in an
	// otherwise responsive AS (deterministic per (addr, dst)).
	HopLossRate float64
	// issued counts traceroutes run so far (updated atomically).
	issued atomic.Int64
}

// Issued returns the number of traceroutes run so far.
func (e *Engine) Issued() int { return int(e.issued.Load()) }

// traceScratch holds one traceroute's working buffers: the best-path walk,
// the provider-detour walk and its spliced result, and the hop
// accumulator. RunTarget builds hops here and copies them out exact-size,
// since callers (the evidence log) retain Trace.Hops indefinitely; the
// path buffers never escape. Pooled because the Engine is shared by
// concurrent metro runs.
type traceScratch struct {
	path, alt, det []int
	hops           []Hop
}

var tracePool = sync.Pool{New: func() any { return new(traceScratch) }}

// NewEngine builds an engine over w with a fresh registry and route cache.
func NewEngine(w *netsim.World) *Engine {
	return &Engine{
		W:           w,
		Reg:         ipmap.NewRegistry(w),
		Cache:       bgp.NewRouteCache(bgp.FromGraph(w.G)),
		HopLossRate: 0.1,
	}
}

// PrefetchRoutes warms the engine's route cache for the distinct,
// not-yet-cached destinations in dests, computing propagations on up to
// workers concurrent goroutines (the cache's batched fan-out, one pooled
// propagation scratch per worker). It is the batch-level warm-up of the
// speculative measurement pipeline: a fan-out whose destinations are
// already cached never serializes on singleflight propagation. Prefetching
// issues no traceroutes (the Issued counter is untouched) and returns the
// number of destinations actually warmed. A nil ctx is treated as
// non-cancellable.
func (e *Engine) PrefetchRoutes(ctx context.Context, dests []int, workers int) int {
	if workers < 1 {
		workers = 1
	}
	return e.Cache.Warm(ctx, dests, workers)
}

// Run issues one traceroute from a probe in vpAS at vpMetro toward an
// address of dstAS near the probe.
func (e *Engine) Run(vpAS, vpMetro, dstAS int) Trace {
	return e.RunTarget(vpAS, vpMetro, dstAS, vpMetro)
}

// RunTarget issues one traceroute toward a specific target address: the
// one dstAS announces at dstMetro (or its closest presence).
func (e *Engine) RunTarget(vpAS, vpMetro, dstAS, dstMetro int) Trace {
	e.issued.Add(1)
	tr := Trace{VPAS: vpAS, VPMetro: vpMetro, DstAS: dstAS}
	tr.DstAddr = e.Reg.TargetAddr(dstAS, dstMetro)
	// flow distinguishes targets in the same AS at different metros, so
	// per-destination routing decisions can differ across targets.
	flow := dstAS*97 + dstMetro
	if vpAS == dstAS {
		tr.Reached = e.W.Responsive[dstAS]
		tr.Hops = []Hop{e.hop(e.Reg.InterfaceFor(vpAS, vpMetro), flow)}
		return tr
	}
	routes := e.Cache.RoutesTo(dstAS)
	sc := tracePool.Get().(*traceScratch)
	defer tracePool.Put(sc)
	sc.path = routes.AppendPathFrom(sc.path[:0], vpAS)
	path := sc.path
	if len(path) == 0 {
		return tr // no route: empty traceroute
	}
	path = e.maybeDetour(path, routes, flow, sc)
	cur := vpMetro
	hops := sc.hops[:0]
	// First hop: inside the VP's AS at its own metro.
	hops = append(hops, e.hop(e.Reg.InterfaceFor(vpAS, cur), flow))
	for i := 0; i+1 < len(path); i++ {
		x, y := path[i], path[i+1]
		m := e.crossingMetro(x, y, flow, cur)
		// Egress border of x at the crossing metro (if it differs from
		// where we currently are inside x, the packet moved intradomain).
		if m != cur {
			hops = append(hops, e.hop(e.Reg.InterfaceFor(x, m), flow))
		}
		// Ingress of y: an IXP LAN address when the crossing rides a
		// shared IXP fabric at m, else y's interface at m.
		in := e.ingressAddr(x, y, m, flow)
		hops = append(hops, e.hop(in, flow))
		cur = m
	}
	sc.hops = hops
	tr.Hops = make([]Hop, len(hops))
	copy(tr.Hops, hops)
	tr.Reached = e.W.Responsive[dstAS]
	if !tr.Reached && len(tr.Hops) > 0 {
		// The destination network swallows probes: its final hop is lost.
		tr.Hops[len(tr.Hops)-1].Responsive = false
	}
	return tr
}

// SilentIfaceRate is the fraction of router interfaces that never emit
// TTL-exceeded responses (deterministic per address). Destination
// responsiveness is a separate, per-AS property (World.Responsive): an AS
// whose addresses don't answer probes still exposes its transit routers.
const SilentIfaceRate = 0.12

// DetourRate is the probability that an inconsistent-routing AS sends a
// given flow via a transit provider even though its best route uses a
// direct peering link — the traffic-engineering behavior (local-pref
// overrides, selective announcements) that makes naive non-existence
// inference dangerous (§3.4) and that the consistency machinery of
// Appx. D.5 exists to catch.
const DetourRate = 0.25

// maybeDetour rewrites the first hop of a path for inconsistent source
// ASes: with probability DetourRate per flow, a peer-link first hop is
// replaced by a provider detour (when the provider has a loop-free route).
// With a non-nil scratch the detour is built in sc.det (valid until the
// next use of sc); with nil it is freshly allocated for callers that
// return it (EffectivePath).
func (e *Engine) maybeDetour(path []int, routes bgp.Routes, flow int, sc *traceScratch) []int {
	if len(path) < 2 {
		return path
	}
	x, y := path[0], path[1]
	if e.W.G.ASes[x].ConsistentRouting {
		return path
	}
	if rel, ok := e.W.RelOf(x, y); !ok || rel != asgraph.P2P {
		return path
	}
	if ipmap.Hash01From(ipmap.Hash3(x, flow, 0xde70)) >= DetourRate {
		return path
	}
	provs := e.W.G.Providers[x]
	if len(provs) == 0 {
		return path
	}
	p := int(provs[int(ipmap.Hash3(flow, x, 0x11))%len(provs)])
	var alt []int
	if sc != nil {
		sc.alt = routes.AppendPathFrom(sc.alt[:0], p)
		alt = sc.alt
	} else {
		alt = routes.PathFrom(p)
	}
	if len(alt) == 0 {
		return path
	}
	for _, as := range alt {
		if as == x {
			return path // provider routes back through us: no detour
		}
	}
	if sc != nil {
		sc.det = append(append(sc.det[:0], x), alt...)
		return sc.det
	}
	return append([]int{x}, alt...)
}

// hop wraps an address with its responsiveness decision.
func (e *Engine) hop(addr ipmap.Addr, dst int) Hop {
	if addr == 0 {
		return Hop{Responsive: false}
	}
	if _, ok := e.Reg.TrueInfo(addr); !ok {
		return Hop{Addr: addr, Responsive: false}
	}
	// Permanently silent interface.
	if ipmap.Hash01From(ipmap.Hash2(int(addr), 0x51e27)) < SilentIfaceRate {
		return Hop{Addr: addr, Responsive: false}
	}
	// Per-flow loss.
	if ipmap.Hash01From(ipmap.Hash3(int(addr), dst, 0x5151)) < e.HopLossRate {
		return Hop{Addr: addr, Responsive: false}
	}
	return Hop{Addr: addr, Responsive: true}
}

// crossingMetro picks the metro where the x→y crossing happens for packets
// heading to dst, given the packet currently sits at metro cur inside x.
//
// Consistent-routing ASes always use the interconnection closest to cur
// (hot potato), breaking ties on the lowest metro index. Inconsistent ASes
// (CDNs, clouds, big transits) pick per-destination among the candidates,
// biased toward closer ones — so different targets expose different
// crossings, which is exactly what breaks naive non-existence inference.
func (e *Engine) crossingMetro(x, y, dst, cur int) int {
	cands := e.W.InterconnectMetros(x, y)
	if len(cands) == 0 {
		return cur // should not happen for adjacent ASes; stay put
	}
	if len(cands) == 1 {
		return cands[0]
	}
	best := cands[0]
	bestScope := e.W.G.ScopeOfMetros(cur, best)
	for _, m := range cands[1:] {
		s := e.W.G.ScopeOfMetros(cur, m)
		if s < bestScope || (s == bestScope && m < best) {
			best, bestScope = m, s
		}
	}
	if e.W.G.ASes[x].ConsistentRouting {
		return best
	}
	// Inconsistent: 55% hot-potato, else a per-destination deterministic
	// alternative.
	h := ipmap.Hash3(x, y, dst)
	if ipmap.Hash01From(h) < 0.55 {
		return best
	}
	return cands[int(ipmap.Hash3(dst, y, x))%len(cands)]
}

// ingressAddr returns the address the packet enters y through at metro m:
// the IXP LAN address when both sides share an IXP there and the flow
// hashes onto the fabric, else y's interface at m.
func (e *Engine) ingressAddr(x, y, m, dst int) ipmap.Addr {
	for _, ix := range e.W.G.SharedIXPs(x, y) {
		if e.W.G.IXPs[ix].Metro != m {
			continue
		}
		if ipmap.Hash01From(ipmap.Hash3(x^y, ix, 0x1b9)) < 0.6 {
			if a := e.Reg.IXPAddrFor(ix, y); a != 0 {
				return a
			}
		}
	}
	return e.Reg.InterfaceFor(y, m)
}

// ASPath returns the Gao-Rexford best AS-level path from src to dst
// (ground truth; the inference pipeline sees only hops).
func (e *Engine) ASPath(src, dst int) []int {
	return e.Cache.RoutesTo(dst).PathFrom(src)
}

// EffectivePath returns the AS-level path a traceroute toward the given
// target actually follows, including any traffic-engineering detour.
func (e *Engine) EffectivePath(src, dst, dstMetro int) []int {
	routes := e.Cache.RoutesTo(dst)
	path := routes.PathFrom(src)
	if path == nil {
		return nil
	}
	return e.maybeDetour(path, routes, dst*97+dstMetro, nil)
}

// CrossingOf exposes the engine's crossing decision for ground-truth
// bookkeeping in evaluations (never used by inference).
func (e *Engine) CrossingOf(x, y, dst, cur int) int { return e.crossingMetro(x, y, dst, cur) }
