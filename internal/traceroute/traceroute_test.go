package traceroute

import (
	"testing"

	"metascritic/internal/netsim"
)

func testEngine(t *testing.T) (*netsim.World, *Engine) {
	t.Helper()
	w := netsim.Generate(netsim.Config{Seed: 7, Metros: netsim.DefaultMetros(0.1)})
	return w, NewEngine(w)
}

func TestRunBasic(t *testing.T) {
	w, e := testEngine(t)
	if len(w.Probes) == 0 {
		t.Fatalf("no probes in world")
	}
	p := w.Probes[0]
	// Find a responsive destination different from the VP.
	dst := -1
	for i := range w.G.ASes {
		if i != p.AS && w.Responsive[i] {
			dst = i
			break
		}
	}
	tr := e.Run(p.AS, p.Metro, dst)
	if tr.VPAS != p.AS || tr.DstAS != dst {
		t.Fatalf("trace metadata wrong: %+v", tr)
	}
	if len(tr.Hops) == 0 {
		t.Fatalf("empty traceroute in connected world")
	}
	if !tr.Reached {
		t.Fatalf("responsive destination not reached")
	}
	if e.Issued() != 1 {
		t.Fatalf("Issued = %d", e.Issued())
	}
}

func TestRunDeterministic(t *testing.T) {
	w, e := testEngine(t)
	p := w.Probes[0]
	dst := (p.AS + 17) % w.G.N()
	t1 := e.Run(p.AS, p.Metro, dst)
	t2 := e.Run(p.AS, p.Metro, dst)
	if len(t1.Hops) != len(t2.Hops) {
		t.Fatalf("hop counts differ")
	}
	for i := range t1.Hops {
		if t1.Hops[i] != t2.Hops[i] {
			t.Fatalf("hop %d differs: %+v vs %+v", i, t1.Hops[i], t2.Hops[i])
		}
	}
}

func TestHopsFollowASPath(t *testing.T) {
	w, e := testEngine(t)
	e.HopLossRate = 0
	e.Reg.ErrorRate = 0
	checked := 0
	for _, p := range w.Probes {
		if checked >= 30 {
			break
		}
		for dst := 0; dst < w.G.N() && checked < 30; dst += 37 {
			if dst == p.AS || !w.Responsive[dst] {
				continue
			}
			path := e.EffectivePath(p.AS, dst, p.Metro)
			if path == nil {
				continue
			}
			tr := e.Run(p.AS, p.Metro, dst)
			// Responsive hops must resolve to ASes on the path, in order.
			pos := 0
			for _, h := range tr.Hops {
				if !h.Responsive {
					continue
				}
				inf, ok := e.Reg.Resolve(h.Addr)
				if !ok {
					t.Fatalf("hop does not resolve")
				}
				for pos < len(path) && path[pos] != inf.AS {
					pos++
				}
				if pos == len(path) {
					t.Fatalf("hop AS %d not on path %v", inf.AS, path)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatalf("no traceroutes checked")
	}
}

func TestUnresponsiveDestination(t *testing.T) {
	w, e := testEngine(t)
	p := w.Probes[0]
	dst := -1
	for i := range w.G.ASes {
		if i != p.AS && !w.Responsive[i] {
			dst = i
			break
		}
	}
	if dst == -1 {
		t.Skip("all ASes responsive")
	}
	tr := e.Run(p.AS, p.Metro, dst)
	if tr.Reached {
		t.Fatalf("unresponsive destination reported reached")
	}
	if len(tr.Hops) > 0 && tr.Hops[len(tr.Hops)-1].Responsive {
		t.Fatalf("final hop into unresponsive AS should be silent")
	}
}

func TestSelfTraceroute(t *testing.T) {
	w, e := testEngine(t)
	p := w.Probes[0]
	tr := e.Run(p.AS, p.Metro, p.AS)
	if len(tr.Hops) != 1 {
		t.Fatalf("self trace hops = %d", len(tr.Hops))
	}
	if tr.Reached != w.Responsive[p.AS] {
		t.Fatalf("self trace reachability mismatch")
	}
}

func TestConsistentASUsesStableCrossing(t *testing.T) {
	w, e := testEngine(t)
	// Find an adjacent pair with >1 interconnect metros where x is
	// consistent; crossing choice must not depend on dst.
	for pr, metros := range w.LinkMetros {
		if len(metros) < 2 {
			continue
		}
		x, y := pr.A, pr.B
		if !w.G.ASes[x].ConsistentRouting {
			continue
		}
		cur := w.G.ASes[x].Metros[0]
		m0 := e.CrossingOf(x, y, 10, cur)
		for dst := 0; dst < 50; dst++ {
			if got := e.CrossingOf(x, y, dst, cur); got != m0 {
				t.Fatalf("consistent AS %d crossing varies with dst: %d vs %d", x, got, m0)
			}
		}
		return
	}
	t.Skip("no suitable consistent pair in tiny world")
}

func TestInconsistentASVariesCrossing(t *testing.T) {
	w, e := testEngine(t)
	for pr, metros := range w.LinkMetros {
		if len(metros) < 3 {
			continue
		}
		x, y := pr.A, pr.B
		if w.G.ASes[x].ConsistentRouting {
			continue
		}
		cur := w.G.ASes[x].Metros[0]
		seen := map[int]bool{}
		for dst := 0; dst < 400; dst++ {
			seen[e.CrossingOf(x, y, dst, cur)] = true
		}
		if len(seen) < 2 {
			t.Fatalf("inconsistent AS %d never varied crossing over 400 dsts", x)
		}
		return
	}
	t.Skip("no suitable inconsistent pair in tiny world")
}

func TestCrossingMetroAlwaysCandidate(t *testing.T) {
	w, e := testEngine(t)
	count := 0
	for pr, metros := range w.LinkMetros {
		if count > 200 {
			break
		}
		count++
		set := map[int]bool{}
		for _, m := range metros {
			set[m] = true
		}
		for dst := 0; dst < 20; dst++ {
			m := e.CrossingOf(pr.A, pr.B, dst, w.G.ASes[pr.A].Metros[0])
			if !set[m] {
				t.Fatalf("crossing metro %d not an interconnect metro of %v", m, pr)
			}
		}
	}
}

func TestHopResponsivenessModel(t *testing.T) {
	// With zero per-flow loss, the only silent hops are permanently-silent
	// interfaces (plus swallowed final hops), so the silent fraction stays
	// near SilentIfaceRate.
	w, e := testEngine(t)
	e.HopLossRate = 0
	silent, total := 0, 0
	for _, p := range w.Probes[:5] {
		for dst := 0; dst < w.G.N(); dst += 11 {
			if dst == p.AS || !w.Responsive[dst] {
				continue
			}
			tr := e.Run(p.AS, p.Metro, dst)
			for _, h := range tr.Hops {
				if h.Addr == 0 {
					continue
				}
				total++
				if !h.Responsive {
					silent++
				}
			}
		}
	}
	if total == 0 {
		t.Fatalf("no hops observed")
	}
	frac := float64(silent) / float64(total)
	if frac > SilentIfaceRate+0.1 {
		t.Fatalf("silent fraction %.3f too high for iface rate %v", frac, SilentIfaceRate)
	}
	// Silence must be deterministic per interface: re-running yields the
	// same hop states.
	p := w.Probes[0]
	tr1 := e.Run(p.AS, p.Metro, (p.AS+3)%w.G.N())
	tr2 := e.Run(p.AS, p.Metro, (p.AS+3)%w.G.N())
	for i := range tr1.Hops {
		if tr1.Hops[i] != tr2.Hops[i] {
			t.Fatalf("hop responsiveness not deterministic")
		}
	}
}

func TestDetourBehavior(t *testing.T) {
	w, e := testEngine(t)
	// Find an inconsistent AS with a peer and a provider.
	detours, eligible := 0, 0
	for _, a := range w.G.ASes {
		if a.ConsistentRouting || len(w.G.Peers[a.Index]) == 0 || len(w.G.Providers[a.Index]) == 0 {
			continue
		}
		for _, peer32 := range w.G.Peers[a.Index] {
			peer := int(peer32)
			base := e.ASPath(a.Index, peer)
			if len(base) != 2 {
				continue // only direct first-hop peer paths are detour-eligible
			}
			for _, m := range w.G.ASes[peer].Metros {
				eligible++
				eff := e.EffectivePath(a.Index, peer, m)
				if len(eff) > 2 {
					detours++
					// The detour must start at the source and end at the peer.
					if eff[0] != a.Index || eff[len(eff)-1] != peer {
						t.Fatalf("detour endpoints wrong: %v", eff)
					}
					// Second hop must be a provider of the source.
					if !w.G.HasProvider(a.Index, eff[1]) {
						t.Fatalf("detour second hop %d is not a provider of %d", eff[1], a.Index)
					}
				}
			}
		}
	}
	if eligible == 0 {
		t.Skip("no eligible inconsistent peer paths in tiny world")
	}
	frac := float64(detours) / float64(eligible)
	if frac == 0 {
		t.Fatalf("no detours occurred over %d eligible flows", eligible)
	}
	if frac > DetourRate+0.15 {
		t.Fatalf("detour fraction %.2f far above DetourRate %v", frac, DetourRate)
	}
	// Consistent ASes never detour.
	for _, a := range w.G.ASes {
		if !a.ConsistentRouting {
			continue
		}
		for _, peer32 := range w.G.Peers[a.Index] {
			peer := int(peer32)
			base := e.ASPath(a.Index, peer)
			if len(base) != 2 {
				continue
			}
			for _, m := range w.G.ASes[peer].Metros {
				if eff := e.EffectivePath(a.Index, peer, m); len(eff) != 2 {
					t.Fatalf("consistent AS %d detoured: %v", a.Index, eff)
				}
			}
		}
	}
}
