package asgraph

import "math/bits"

// Bitset is a multi-word bitset over small non-negative integers (metro,
// IXP indices). The zero value is an empty set; Set grows the word slice
// on demand. Word layout is little-endian: bit i lives in word i/64.
type Bitset []uint64

// NewBitset returns a bitset able to hold values in [0, n) without
// growing.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// BitsetWords returns the number of words needed for values in [0, n).
func BitsetWords(n int) int { return (n + 63) / 64 }

// Set sets bit i, growing the set if needed.
func (b *Bitset) Set(i int) {
	w := i >> 6
	for len(*b) <= w {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << uint(i&63)
}

// Has reports whether bit i is set.
func (b Bitset) Has(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<uint(i&63)) != 0
}

// Intersects reports whether b and o share any set bit.
func (b Bitset) Intersects(o Bitset) bool {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// FirstCommon returns the smallest value set in both b and o, or -1.
func (b Bitset) FirstCommon(o Bitset) int {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if w := b[i] & o[i]; w != 0 {
			return i<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// AppendCommon appends the sorted values set in both b and o to dst and
// returns it.
func (b Bitset) AppendCommon(o Bitset, dst []int) []int {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		w := b[i] & o[i]
		for w != 0 {
			dst = append(dst, i<<6+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// CommonCount returns the number of values set in both b and o
// (popcount of the intersection).
func (b Bitset) CommonCount(o Bitset) int {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(b[i] & o[i])
	}
	return c
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}
