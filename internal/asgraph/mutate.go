package asgraph

// Mutation support for live topologies. The graph is built once and
// Compact()ed into its CSR form, but a streaming world keeps editing it:
// link churn, depeering, new-AS arrival, IXP joins. Edits work as a
// delta overlay on the packed substrate — removals shrink a row in place
// inside its own backing segment (rows are capacity-clamped, so the
// shift never bleeds into a neighbor), additions reallocate just the
// touched row out of the shared backing — and every edit bumps a
// mutation counter. Once the overlay outgrows a threshold, MaybeCompact
// re-packs the whole graph, restoring the exactly-sized single-backing
// layout PR 8 bought, so long-running mutation never degenerates into
// the pre-Compact allocation pattern.

// DefaultCompactThreshold is the mutation count at which MaybeCompact
// re-packs: high enough that a typical churn batch (tens to hundreds of
// events) never triggers a re-pack, low enough that overlay slack stays
// a small fraction of the packed size at Internet scale.
const DefaultCompactThreshold = 4096

// Mutations returns the number of structural edits (AS/link additions
// and removals) since the last Compact.
func (g *Graph) Mutations() int { return g.mutations }

// MaybeCompact re-packs the graph when at least threshold mutations have
// accumulated since the last Compact; threshold <= 0 means
// DefaultCompactThreshold. It reports whether it compacted.
func (g *Graph) MaybeCompact(threshold int) bool {
	if threshold <= 0 {
		threshold = DefaultCompactThreshold
	}
	if g.mutations < threshold {
		return false
	}
	g.Compact()
	return true
}

// RemovePeer deletes the AS-level peering between a and b, preserving
// the insertion order of the remaining adjacency entries (routing
// tie-breaks observe list order). It reports whether a link was removed.
func (g *Graph) RemovePeer(a, b int) bool {
	la, oka := removeInt32(g.Peers[a], int32(b))
	lb, okb := removeInt32(g.Peers[b], int32(a))
	if !oka || !okb {
		return oka || okb // tolerate (and repair) a half-present link
	}
	g.Peers[a], g.Peers[b] = la, lb
	g.mutations++
	return true
}

// RemoveC2P deletes the transit relationship where customer buys from
// provider, invalidating the customer-cone cache. It reports whether the
// relationship existed.
func (g *Graph) RemoveC2P(customer, provider int) bool {
	lp, okp := removeInt32(g.Providers[customer], int32(provider))
	lc, okc := removeInt32(g.Customers[provider], int32(customer))
	if !okp || !okc {
		return okp || okc
	}
	g.Providers[customer], g.Customers[provider] = lp, lc
	g.mutations++
	g.invalidateCones()
	return true
}

// removeInt32 deletes the first occurrence of v from xs in place,
// preserving the order of the remaining elements, and reports whether v
// was present.
func removeInt32(xs []int32, v int32) ([]int32, bool) {
	for i, x := range xs {
		if x == v {
			copy(xs[i:], xs[i+1:])
			return xs[:len(xs)-1], true
		}
	}
	return xs, false
}
