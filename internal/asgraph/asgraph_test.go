package asgraph

import (
	"testing"
)

// tinyGraph builds a 6-AS graph:
//
//	0 (Tier1) ── provider of 1, 2
//	1 (Transit) ── provider of 3, 4
//	2 (Transit) ── provider of 4, 5
//	3, 4, 5 stubs; 1–2 peer; 3–5 peer
//
// Geography: metros 0 (AMS, NL, EU), 1 (ROT, NL, EU), 2 (NYC, US, NA),
// 3 (SYD, AU, OC).
func tinyGraph() *Graph {
	g := NewGraph()
	g.Continents = []string{"EU", "NA", "OC"}
	g.Countries = []Country{{"NL", 0}, {"US", 1}, {"AU", 2}}
	g.Metros = []*Metro{
		{Index: 0, Name: "Amsterdam", Country: 0},
		{Index: 1, Name: "Rotterdam", Country: 0},
		{Index: 2, Name: "NewYork", Country: 1},
		{Index: 3, Name: "Sydney", Country: 2},
	}
	metros := [][]int{{0, 1, 2, 3}, {0, 2}, {0, 1}, {0}, {2}, {0, 2}}
	classes := []Class{Tier1, Transit, Transit, Stub, Stub, Stub}
	for i := 0; i < 6; i++ {
		g.AddAS(&AS{
			ASN:    100 + i,
			Class:  classes[i],
			Metros: metros[i],
		})
	}
	g.AddC2P(1, 0)
	g.AddC2P(2, 0)
	g.AddC2P(3, 1)
	g.AddC2P(4, 1)
	g.AddC2P(4, 2)
	g.AddC2P(5, 2)
	g.AddPeer(1, 2)
	g.AddPeer(3, 5)
	return g
}

func TestAddASAssignsIndex(t *testing.T) {
	g := tinyGraph()
	if g.N() != 6 {
		t.Fatalf("N = %d", g.N())
	}
	for i, a := range g.ASes {
		if a.Index != i {
			t.Fatalf("AS %d has Index %d", i, a.Index)
		}
	}
}

func TestC2PIdempotent(t *testing.T) {
	g := tinyGraph()
	before := len(g.Providers[1])
	g.AddC2P(1, 0)
	if len(g.Providers[1]) != before {
		t.Fatalf("duplicate c2p link added")
	}
	if !g.HasProvider(1, 0) || g.HasProvider(0, 1) {
		t.Fatalf("HasProvider wrong")
	}
}

func TestPeerSymmetricIdempotent(t *testing.T) {
	g := tinyGraph()
	if !g.HasPeer(1, 2) || !g.HasPeer(2, 1) {
		t.Fatalf("peering should be symmetric")
	}
	n := len(g.Peers[1])
	g.AddPeer(2, 1)
	if len(g.Peers[1]) != n {
		t.Fatalf("duplicate peer added")
	}
}

func TestSelfLinkPanics(t *testing.T) {
	g := tinyGraph()
	for _, fn := range []func(){func() { g.AddC2P(1, 1) }, func() { g.AddPeer(2, 2) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic on self link")
				}
			}()
			fn()
		}()
	}
}

func TestCustomerCone(t *testing.T) {
	g := tinyGraph()
	cone0 := g.CustomerCone(0)
	if len(cone0) != 6 {
		t.Fatalf("Tier1 cone = %v, want all 6", cone0)
	}
	cone1 := g.CustomerCone(1)
	want1 := []int32{1, 3, 4}
	if len(cone1) != len(want1) {
		t.Fatalf("cone(1) = %v, want %v", cone1, want1)
	}
	for i := range want1 {
		if cone1[i] != want1[i] {
			t.Fatalf("cone(1) = %v, want %v", cone1, want1)
		}
	}
	if g.ConeSize(3) != 1 {
		t.Fatalf("stub cone size %d", g.ConeSize(3))
	}
	if !g.InCone(4, 1) || g.InCone(5, 1) {
		t.Fatalf("InCone wrong")
	}
}

func TestConeCacheInvalidation(t *testing.T) {
	g := tinyGraph()
	if g.ConeSize(2) != 3 { // {2,4,5}
		t.Fatalf("cone(2) size %d", g.ConeSize(2))
	}
	g.AddAS(&AS{ASN: 999, Class: Stub})
	g.AddC2P(6, 2)
	if g.ConeSize(2) != 4 {
		t.Fatalf("cone(2) after new customer = %d, want 4", g.ConeSize(2))
	}
}

func TestGeoScopes(t *testing.T) {
	g := tinyGraph()
	cases := []struct {
		a, b int
		want GeoScope
	}{
		{0, 0, SameMetro},
		{0, 1, SameCountry},
		{0, 2, Elsewhere}, // NL/EU vs US/NA: different continents
		{0, 3, Elsewhere},
	}
	for _, c := range cases {
		if got := g.ScopeOfMetros(c.a, c.b); got != c.want {
			t.Fatalf("ScopeOfMetros(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// Same-continent case: add a second US metro sharing continent NA.
	g.Countries = append(g.Countries, Country{"CA", 1})
	g.Metros = append(g.Metros, &Metro{Index: 4, Name: "Toronto", Country: 3})
	if got := g.ScopeOfMetros(2, 4); got != SameContinent {
		t.Fatalf("NYC vs Toronto scope = %v, want SameContinent", got)
	}
}

func TestScopeOfASToMetro(t *testing.T) {
	g := tinyGraph()
	// AS 4 only in NYC (metro 2); to Sydney (3) that's Elsewhere.
	if got := g.ScopeOfASToMetro(4, 3); got != Elsewhere {
		t.Fatalf("scope = %v", got)
	}
	// AS 0 is in every metro.
	if got := g.ScopeOfASToMetro(0, 3); got != SameMetro {
		t.Fatalf("scope = %v", got)
	}
	// AS 2 in metros {0,1} (both NL); to metro 1 it is SameMetro.
	if got := g.ScopeOfASToMetro(2, 1); got != SameMetro {
		t.Fatalf("scope = %v", got)
	}
}

func TestSharedMetrosAndHasMetro(t *testing.T) {
	g := tinyGraph()
	sm := g.SharedMetros(1, 5) // {0,2} ∩ {0,2} = {0,2}
	if len(sm) != 2 || sm[0] != 0 || sm[1] != 2 {
		t.Fatalf("SharedMetros = %v", sm)
	}
	if !g.ASes[1].HasMetro(2) || g.ASes[1].HasMetro(3) {
		t.Fatalf("HasMetro wrong")
	}
}

func TestSharedIXPs(t *testing.T) {
	g := tinyGraph()
	g.IXPs = []*IXP{{Index: 0, Name: "AMS-IX", Metro: 0, HasRouteServer: true}}
	g.ASes[1].IXPs = []int{0}
	g.ASes[2].IXPs = []int{0}
	if got := g.SharedIXPs(1, 2); len(got) != 1 || got[0] != 0 {
		t.Fatalf("SharedIXPs = %v", got)
	}
	if got := g.SharedIXPs(1, 3); len(got) != 0 {
		t.Fatalf("SharedIXPs = %v, want empty", got)
	}
}

func TestMetroOfName(t *testing.T) {
	g := tinyGraph()
	if m := g.MetroOfName("Sydney"); m == nil || m.Index != 3 {
		t.Fatalf("MetroOfName Sydney = %+v", m)
	}
	if m := g.MetroOfName("Nowhere"); m != nil {
		t.Fatalf("MetroOfName Nowhere should be nil")
	}
}

func TestStringers(t *testing.T) {
	if Tier1.String() != "Tier1" || Stub.String() != "Stub" {
		t.Fatalf("Class stringer")
	}
	if Open.String() != "Open" || Restrictive.String() != "Restrictive" {
		t.Fatalf("Policy stringer")
	}
	if HeavyInbound.String() != "HeavyInbound" {
		t.Fatalf("Traffic stringer")
	}
	if SameMetro.String() != "SameMetro" || Elsewhere.String() != "Elsewhere" {
		t.Fatalf("Scope stringer")
	}
	if Class(99).String() != "Class(99)" {
		t.Fatalf("out-of-range Class stringer")
	}
}
