// Package asgraph defines the AS-level entities metAScritic reasons about:
// autonomous systems with the features the paper ingests (Appx. C/D.3),
// their business relationships (customer-to-provider and peer-to-peer),
// customer cones, and the geographic hierarchy of metros, countries and
// continents, including IXPs and their route servers.
package asgraph

import (
	"fmt"
	"sort"
	"sync"
)

// Class is the business classification of an AS (Appx. D.3).
type Class int

// AS business classes, ordered roughly from core to edge.
const (
	Tier1 Class = iota
	Hypergiant
	LargeISP
	Content
	Enterprise
	Transit
	Stub
	NumClasses
)

var classNames = [...]string{"Tier1", "Hypergiant", "LargeISP", "Content", "Enterprise", "Transit", "Stub"}

func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// PeeringPolicy mirrors the PeeringDB policy field.
type PeeringPolicy int

// Peering policies.
const (
	Open PeeringPolicy = iota
	Selective
	Restrictive
	NumPolicies
)

var policyNames = [...]string{"Open", "Selective", "Restrictive"}

func (p PeeringPolicy) String() string {
	if p < 0 || int(p) >= len(policyNames) {
		return fmt.Sprintf("PeeringPolicy(%d)", int(p))
	}
	return policyNames[p]
}

// TrafficProfile mirrors the PeeringDB traffic-ratio field.
type TrafficProfile int

// Traffic profiles from heavy inbound (eyeball) to heavy outbound (content).
const (
	HeavyInbound TrafficProfile = iota
	MostlyInbound
	Balanced
	MostlyOutbound
	HeavyOutbound
	NumProfiles
)

var profileNames = [...]string{"HeavyInbound", "MostlyInbound", "Balanced", "MostlyOutbound", "HeavyOutbound"}

func (t TrafficProfile) String() string {
	if t < 0 || int(t) >= len(profileNames) {
		return fmt.Sprintf("TrafficProfile(%d)", int(t))
	}
	return profileNames[t]
}

// AS is one autonomous system with the publicly-observable features the
// recommender uses (Fig. 1, Appx. C).
type AS struct {
	Index   int // position in Graph.ASes
	ASN     int
	Class   Class
	Policy  PeeringPolicy
	Traffic TrafficProfile
	// Eyeballs is the estimated user population (APNIC-style).
	Eyeballs int
	// AddrSpace is the number of announced addresses (rough size proxy).
	AddrSpace int
	Country   int // index into Graph.Countries
	// Metros lists the metro indices where the AS has physical presence
	// (its iGDB-style footprint).
	Metros []int
	// IXPs lists the IXP indices the AS is a member of.
	IXPs []int
	// RouteServer marks, per IXP index, membership in that IXP's route
	// server (multilateral peering).
	RouteServer map[int]bool
	// ConsistentRouting reports whether the AS uses the same
	// interconnection type toward a given AS everywhere (§3.4). CDNs,
	// cloud providers and large transits are typically inconsistent.
	ConsistentRouting bool
}

// HasMetro reports whether the AS has presence in metro m.
func (a *AS) HasMetro(m int) bool {
	for _, mm := range a.Metros {
		if mm == m {
			return true
		}
	}
	return false
}

// Country is a country with its continent.
type Country struct {
	Code      string
	Continent int
}

// Metro is a metropolitan interconnection area.
type Metro struct {
	Index   int
	Name    string
	Country int // index into Graph.Countries
	IXPs    []int
	// Members caches the indices of ASes present in the metro, sorted.
	Members []int
}

// IXP is an Internet exchange point located in one metro.
type IXP struct {
	Index   int
	Name    string
	Metro   int
	Members []int // AS indices
	// HasRouteServer reports whether the IXP operates a route server.
	HasRouteServer bool
}

// Rel is a business relationship type on an AS-level link.
type Rel int8

// Relationship kinds.
const (
	C2P Rel = iota // first AS is a customer of the second
	P2P            // settlement-free peering
)

// Graph holds the AS-level structure: ASes, geography, the transit (c2p)
// hierarchy and AS-level peering adjacency. Per-metro peering ground truth
// lives in netsim (it is matrix-shaped); the Graph's Peers adjacency is the
// union over metros, which is what BGP propagation operates on.
type Graph struct {
	ASes       []*AS
	Countries  []Country
	Continents []string
	Metros     []*Metro
	IXPs       []*IXP

	// Providers[i] lists the provider AS indices of AS i; Customers is the
	// reverse adjacency. Peers[i] lists AS-level peers of i.
	Providers [][]int
	Customers [][]int
	Peers     [][]int

	conesMu sync.Mutex
	cones   [][]int // lazily computed customer cones, guarded by conesMu
}

// NewGraph returns an empty graph ready for ASes to be added.
func NewGraph() *Graph {
	return &Graph{}
}

// AddAS appends a to the graph, assigning its Index, and grows the
// adjacency slices. It returns the new index.
func (g *Graph) AddAS(a *AS) int {
	a.Index = len(g.ASes)
	g.ASes = append(g.ASes, a)
	g.Providers = append(g.Providers, nil)
	g.Customers = append(g.Customers, nil)
	g.Peers = append(g.Peers, nil)
	g.invalidateCones()
	return a.Index
}

// AddC2P records that customer buys transit from provider.
func (g *Graph) AddC2P(customer, provider int) {
	if customer == provider {
		panic("asgraph: self transit link")
	}
	if hasInt(g.Providers[customer], provider) {
		return
	}
	g.Providers[customer] = append(g.Providers[customer], provider)
	g.Customers[provider] = append(g.Customers[provider], customer)
	g.invalidateCones()
}

func (g *Graph) invalidateCones() {
	g.conesMu.Lock()
	g.cones = nil
	g.conesMu.Unlock()
}

// AddPeer records an AS-level peering between a and b (idempotent).
func (g *Graph) AddPeer(a, b int) {
	if a == b {
		panic("asgraph: self peering")
	}
	if hasInt(g.Peers[a], b) {
		return
	}
	g.Peers[a] = append(g.Peers[a], b)
	g.Peers[b] = append(g.Peers[b], a)
}

// HasPeer reports whether a and b peer at the AS level.
func (g *Graph) HasPeer(a, b int) bool { return hasInt(g.Peers[a], b) }

// HasProvider reports whether p is a provider of c.
func (g *Graph) HasProvider(c, p int) bool { return hasInt(g.Providers[c], p) }

// N returns the number of ASes.
func (g *Graph) N() int { return len(g.ASes) }

// CustomerCone returns the customer cone of AS i: the set of AS indices
// reachable by repeatedly following provider→customer links, including i
// itself. The result is sorted and cached; the cache is guarded so
// concurrent metro runs can share one graph (callers must not mutate the
// returned slice).
func (g *Graph) CustomerCone(i int) []int {
	g.conesMu.Lock()
	defer g.conesMu.Unlock()
	if g.cones == nil {
		g.cones = make([][]int, g.N())
	}
	if g.cones[i] != nil {
		return g.cones[i]
	}
	seen := map[int]bool{i: true}
	stack := []int{i}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.Customers[x] {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	cone := make([]int, 0, len(seen))
	for x := range seen {
		cone = append(cone, x)
	}
	sort.Ints(cone)
	g.cones[i] = cone
	return cone
}

// ConeSize returns len(CustomerCone(i)).
func (g *Graph) ConeSize(i int) int { return len(g.CustomerCone(i)) }

// InCone reports whether x is in the customer cone of i.
func (g *Graph) InCone(x, i int) bool {
	cone := g.CustomerCone(i)
	k := sort.SearchInts(cone, x)
	return k < len(cone) && cone[k] == x
}

// GeoScope categorizes how geographically close something is to a metro:
// same metro, same country, same continent, or elsewhere. It is the
// four-way split used both for measurement strategies (§3.3.2) and for the
// transferability weights (§3.4).
type GeoScope int

// Geographic scopes from closest to farthest.
const (
	SameMetro GeoScope = iota
	SameCountry
	SameContinent
	Elsewhere
	NumGeoScopes
)

var scopeNames = [...]string{"SameMetro", "SameCountry", "SameContinent", "Elsewhere"}

func (s GeoScope) String() string {
	if s < 0 || int(s) >= len(scopeNames) {
		return fmt.Sprintf("GeoScope(%d)", int(s))
	}
	return scopeNames[s]
}

// ScopeOfMetros returns the geographic scope of metro b relative to metro a.
func (g *Graph) ScopeOfMetros(a, b int) GeoScope {
	if a == b {
		return SameMetro
	}
	ma, mb := g.Metros[a], g.Metros[b]
	if ma.Country == mb.Country {
		return SameCountry
	}
	if g.Countries[ma.Country].Continent == g.Countries[mb.Country].Continent {
		return SameContinent
	}
	return Elsewhere
}

// ScopeOfASToMetro returns the closest geographic scope between any metro in
// the footprint of AS i and metro m.
func (g *Graph) ScopeOfASToMetro(i, m int) GeoScope {
	best := Elsewhere
	for _, mm := range g.ASes[i].Metros {
		if s := g.ScopeOfMetros(mm, m); s < best {
			best = s
		}
	}
	return best
}

// MetroOfName returns the metro with the given name, or nil.
func (g *Graph) MetroOfName(name string) *Metro {
	for _, m := range g.Metros {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// SharedMetros returns the sorted metro indices where both ASes have
// presence.
func (g *Graph) SharedMetros(a, b int) []int {
	set := map[int]bool{}
	for _, m := range g.ASes[a].Metros {
		set[m] = true
	}
	var out []int
	for _, m := range g.ASes[b].Metros {
		if set[m] {
			out = append(out, m)
		}
	}
	sort.Ints(out)
	return out
}

// SharedIXPs returns the sorted IXP indices both ASes are members of.
func (g *Graph) SharedIXPs(a, b int) []int {
	set := map[int]bool{}
	for _, x := range g.ASes[a].IXPs {
		set[x] = true
	}
	var out []int
	for _, x := range g.ASes[b].IXPs {
		if set[x] {
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

// Pair is a canonical (A < B) AS-index pair, used as a map key for links.
type Pair struct{ A, B int }

// MakePair canonicalizes an AS pair.
func MakePair(a, b int) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{a, b}
}

func hasInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
