// Package asgraph defines the AS-level entities metAScritic reasons about:
// autonomous systems with the features the paper ingests (Appx. C/D.3),
// their business relationships (customer-to-provider and peer-to-peer),
// customer cones, and the geographic hierarchy of metros, countries and
// continents, including IXPs and their route servers.
//
// The graph is built for Internet scale (~100k ASes, ~500k links): ASes
// are stored by value in one flat slice, adjacency lists use int32
// indices and can be repacked into exactly-sized single backing arrays
// (Compact), and footprint / IXP / route-server membership are multi-word
// bitsets so colocation tests are O(metros/64) instead of linear scans.
package asgraph

import (
	"fmt"
	"slices"
	"sort"
	"sync"
)

// Class is the business classification of an AS (Appx. D.3).
type Class int

// AS business classes, ordered roughly from core to edge.
const (
	Tier1 Class = iota
	Hypergiant
	LargeISP
	Content
	Enterprise
	Transit
	Stub
	NumClasses
)

var classNames = [...]string{"Tier1", "Hypergiant", "LargeISP", "Content", "Enterprise", "Transit", "Stub"}

func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// PeeringPolicy mirrors the PeeringDB policy field.
type PeeringPolicy int

// Peering policies.
const (
	Open PeeringPolicy = iota
	Selective
	Restrictive
	NumPolicies
)

var policyNames = [...]string{"Open", "Selective", "Restrictive"}

func (p PeeringPolicy) String() string {
	if p < 0 || int(p) >= len(policyNames) {
		return fmt.Sprintf("PeeringPolicy(%d)", int(p))
	}
	return policyNames[p]
}

// TrafficProfile mirrors the PeeringDB traffic-ratio field.
type TrafficProfile int

// Traffic profiles from heavy inbound (eyeball) to heavy outbound (content).
const (
	HeavyInbound TrafficProfile = iota
	MostlyInbound
	Balanced
	MostlyOutbound
	HeavyOutbound
	NumProfiles
)

var profileNames = [...]string{"HeavyInbound", "MostlyInbound", "Balanced", "MostlyOutbound", "HeavyOutbound"}

func (t TrafficProfile) String() string {
	if t < 0 || int(t) >= len(profileNames) {
		return fmt.Sprintf("TrafficProfile(%d)", int(t))
	}
	return profileNames[t]
}

// AS is one autonomous system with the publicly-observable features the
// recommender uses (Fig. 1, Appx. C). ASes are stored by value inside
// Graph.ASes; read them by index (or take &g.ASes[i] to mutate during
// construction).
type AS struct {
	Index   int // position in Graph.ASes
	ASN     int
	Class   Class
	Policy  PeeringPolicy
	Traffic TrafficProfile
	// Eyeballs is the estimated user population (APNIC-style).
	Eyeballs int
	// AddrSpace is the number of announced addresses (rough size proxy).
	AddrSpace int
	Country   int // index into Graph.Countries
	// Metros lists the metro indices where the AS has physical presence
	// (its iGDB-style footprint), sorted ascending.
	Metros []int
	// IXPs lists the IXP indices the AS is a member of.
	IXPs []int
	// ConsistentRouting reports whether the AS uses the same
	// interconnection type toward a given AS everywhere (§3.4). CDNs,
	// cloud providers and large transits are typically inconsistent.
	ConsistentRouting bool

	// foot mirrors Metros as a bitset; built by Graph.AddAS (and rebuilt
	// by Compact) so HasMetro and colocation tests are O(1)-ish.
	foot Bitset
	// ixf mirrors IXPs as a bitset (maintained by SetIXPs/Compact).
	ixf Bitset
	// rs marks, per IXP index, membership in that IXP's route server
	// (multilateral peering). Maintained via SetRouteServer.
	rs Bitset
}

// HasMetro reports whether the AS has presence in metro m. When the
// footprint bitset is available (every AS added through Graph.AddAS) this
// is a single word test; otherwise it falls back to scanning Metros.
func (a *AS) HasMetro(m int) bool {
	if a.foot != nil {
		return a.foot.Has(m)
	}
	for _, mm := range a.Metros {
		if mm == m {
			return true
		}
	}
	return false
}

// Footprint exposes the AS's metro bitset (nil until the AS is added to a
// graph). Callers must not mutate it.
func (a *AS) Footprint() Bitset { return a.foot }

// SetRouteServer records (or clears) the AS's membership in IXP ix's
// route server.
func (a *AS) SetRouteServer(ix int, on bool) {
	if on {
		a.rs.Set(ix)
	} else if a.rs.Has(ix) {
		a.rs[ix>>6] &^= 1 << uint(ix&63)
	}
}

// OnRouteServer reports whether the AS participates in IXP ix's route
// server.
func (a *AS) OnRouteServer(ix int) bool { return a.rs.Has(ix) }

// RouteServerSet exposes the route-server membership bitset (may be nil).
// Callers must not mutate it.
func (a *AS) RouteServerSet() Bitset { return a.rs }

// AddIXP appends IXP ix to the AS's membership list and bitset.
func (a *AS) AddIXP(ix int) {
	a.IXPs = append(a.IXPs, ix)
	a.ixf.Set(ix)
}

// Country is a country with its continent.
type Country struct {
	Code      string
	Continent int
}

// Metro is a metropolitan interconnection area.
type Metro struct {
	Index   int
	Name    string
	Country int // index into Graph.Countries
	IXPs    []int
	// Members caches the indices of ASes present in the metro, sorted.
	Members []int
}

// IXP is an Internet exchange point located in one metro.
type IXP struct {
	Index   int
	Name    string
	Metro   int
	Members []int // AS indices
	// HasRouteServer reports whether the IXP operates a route server.
	HasRouteServer bool
}

// Rel is a business relationship type on an AS-level link.
type Rel int8

// Relationship kinds.
const (
	C2P Rel = iota // first AS is a customer of the second
	P2P            // settlement-free peering
)

// Graph holds the AS-level structure: ASes, geography, the transit (c2p)
// hierarchy and AS-level peering adjacency. Per-metro peering ground truth
// lives in netsim (it is matrix-shaped); the Graph's Peers adjacency is the
// union over metros, which is what BGP propagation operates on.
//
// Adjacency lists preserve insertion order (routing tie-breaks observe
// it). After construction, Compact repacks every adjacency list, Metros
// and IXPs slice into exactly-sized single backing arrays, dropping the
// append slack of incremental construction.
type Graph struct {
	ASes       []AS
	Countries  []Country
	Continents []string
	Metros     []*Metro
	IXPs       []*IXP

	// Providers[i] lists the provider AS indices of AS i; Customers is the
	// reverse adjacency. Peers[i] lists AS-level peers of i.
	Providers [][]int32
	Customers [][]int32
	Peers     [][]int32

	// mutations counts structural edits since the last Compact; see
	// mutate.go (MaybeCompact re-packs once it crosses a threshold).
	mutations int

	conesMu   sync.Mutex
	cones     [][]int32 // lazily computed customer cones, guarded by conesMu
	coneSeen  []int32   // epoch-stamped visited marks for cone BFS
	coneEpoch int32
	coneStack []int32
	coneVisit []int32
}

// NewGraph returns an empty graph ready for ASes to be added.
func NewGraph() *Graph {
	return &Graph{}
}

// AddAS copies a into the graph, assigning its Index (also written back
// through a so callers can read it), builds its footprint bitset from
// Metros, and grows the adjacency slices. It returns the new index.
func (g *Graph) AddAS(a *AS) int {
	a.Index = len(g.ASes)
	if a.foot == nil {
		a.foot = Bitset{}
		for _, m := range a.Metros {
			a.foot.Set(m)
		}
	}
	if a.ixf == nil && len(a.IXPs) > 0 {
		for _, x := range a.IXPs {
			a.ixf.Set(x)
		}
	}
	g.ASes = append(g.ASes, *a)
	g.Providers = append(g.Providers, nil)
	g.Customers = append(g.Customers, nil)
	g.Peers = append(g.Peers, nil)
	g.mutations++
	g.invalidateCones()
	return a.Index
}

// AddC2P records that customer buys transit from provider.
func (g *Graph) AddC2P(customer, provider int) {
	if customer == provider {
		panic("asgraph: self transit link")
	}
	if hasInt32(g.Providers[customer], int32(provider)) {
		return
	}
	g.Providers[customer] = append(g.Providers[customer], int32(provider))
	g.Customers[provider] = append(g.Customers[provider], int32(customer))
	g.mutations++
	g.invalidateCones()
}

func (g *Graph) invalidateCones() {
	g.conesMu.Lock()
	g.cones = nil
	g.conesMu.Unlock()
}

// AddPeer records an AS-level peering between a and b (idempotent).
func (g *Graph) AddPeer(a, b int) {
	if g.HasPeer(a, b) {
		return
	}
	g.AddPeerUnique(a, b)
}

// AddPeerUnique records a peering the caller guarantees is not already
// present, skipping AddPeer's linear duplicate scan. Bulk construction
// (netsim's peering build) uses this: with hypergiant peer degrees in the
// tens of thousands, the dedup scan alone would be quadratic.
func (g *Graph) AddPeerUnique(a, b int) {
	if a == b {
		panic("asgraph: self peering")
	}
	g.Peers[a] = append(g.Peers[a], int32(b))
	g.Peers[b] = append(g.Peers[b], int32(a))
	g.mutations++
}

// HasPeer reports whether a and b peer at the AS level.
func (g *Graph) HasPeer(a, b int) bool { return hasInt32(g.Peers[a], int32(b)) }

// HasProvider reports whether p is a provider of c.
func (g *Graph) HasProvider(c, p int) bool { return hasInt32(g.Providers[c], int32(p)) }

// N returns the number of ASes.
func (g *Graph) N() int { return len(g.ASes) }

// Compact repacks the graph into its read-optimized form: every adjacency
// list, each AS's Metros and IXPs slice, and the three membership bitsets
// are re-laid-out over exactly-sized shared backing arrays (CSR-style:
// one allocation per relation instead of one per AS, no append slack).
// Call it once construction is done; later Add* calls still work (they
// reallocate the touched AS's list out of the shared backing).
func (g *Graph) Compact() {
	g.mutations = 0
	g.Providers = repackAdj(g.Providers)
	g.Customers = repackAdj(g.Customers)
	g.Peers = repackAdj(g.Peers)

	// Metros and IXPs: one []int backing each.
	totM, totX := 0, 0
	for i := range g.ASes {
		totM += len(g.ASes[i].Metros)
		totX += len(g.ASes[i].IXPs)
	}
	backM := make([]int, 0, totM)
	backX := make([]int, 0, totX)
	for i := range g.ASes {
		a := &g.ASes[i]
		off := len(backM)
		backM = append(backM, a.Metros...)
		a.Metros = backM[off:len(backM):len(backM)]
		off = len(backX)
		backX = append(backX, a.IXPs...)
		a.IXPs = backX[off:len(backX):len(backX)]
	}

	// Bitsets: uniform stride over one backing per kind.
	mw := BitsetWords(len(g.Metros))
	xw := BitsetWords(len(g.IXPs))
	footBack := make([]uint64, len(g.ASes)*mw)
	ixfBack := make([]uint64, len(g.ASes)*xw)
	rsBack := make([]uint64, len(g.ASes)*xw)
	for i := range g.ASes {
		a := &g.ASes[i]
		foot := Bitset(footBack[i*mw : (i+1)*mw : (i+1)*mw])
		for _, m := range a.Metros {
			foot.Set(m)
		}
		a.foot = foot
		ixf := Bitset(ixfBack[i*xw : (i+1)*xw : (i+1)*xw])
		rs := Bitset(rsBack[i*xw : (i+1)*xw : (i+1)*xw])
		for _, x := range a.IXPs {
			ixf.Set(x)
		}
		// Copy existing route-server bits (rs may be shorter than xw).
		copy(rs, a.rs)
		a.ixf = ixf
		a.rs = rs
	}
}

// repackAdj copies per-AS adjacency lists into one exactly-sized backing
// array, preserving order. Slices are capacity-clamped so a later append
// reallocates instead of bleeding into a neighbor's list.
func repackAdj(adj [][]int32) [][]int32 {
	tot := 0
	for _, l := range adj {
		tot += len(l)
	}
	back := make([]int32, 0, tot)
	out := make([][]int32, len(adj))
	for i, l := range adj {
		off := len(back)
		back = append(back, l...)
		out[i] = back[off:len(back):len(back)]
	}
	return out
}

// CustomerCone returns the customer cone of AS i: the set of AS indices
// reachable by repeatedly following provider→customer links, including i
// itself. The result is sorted, exactly sized and cached; the cache is
// guarded so concurrent metro runs can share one graph (callers must not
// mutate the returned slice).
func (g *Graph) CustomerCone(i int) []int32 {
	g.conesMu.Lock()
	defer g.conesMu.Unlock()
	if g.cones == nil {
		g.cones = make([][]int32, g.N())
	}
	if g.cones[i] != nil {
		return g.cones[i]
	}
	if len(g.coneSeen) < g.N() {
		g.coneSeen = make([]int32, g.N())
		g.coneEpoch = 0
	}
	g.coneEpoch++
	epoch := g.coneEpoch
	seen := g.coneSeen
	stack := g.coneStack[:0]
	stack = append(stack, int32(i))
	seen[i] = epoch
	visited := g.coneVisit[:0]
	visited = append(visited, int32(i))
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.Customers[x] {
			if seen[c] != epoch {
				seen[c] = epoch
				visited = append(visited, c)
				stack = append(stack, c)
			}
		}
	}
	g.coneStack = stack[:0]
	cone := make([]int32, len(visited))
	copy(cone, visited)
	g.coneVisit = visited[:0]
	slices.Sort(cone)
	g.cones[i] = cone
	return cone
}

// ConeSize returns len(CustomerCone(i)).
func (g *Graph) ConeSize(i int) int { return len(g.CustomerCone(i)) }

// InCone reports whether x is in the customer cone of i.
func (g *Graph) InCone(x, i int) bool {
	cone := g.CustomerCone(i)
	k := sort.Search(len(cone), func(j int) bool { return cone[j] >= int32(x) })
	return k < len(cone) && cone[k] == int32(x)
}

// GeoScope categorizes how geographically close something is to a metro:
// same metro, same country, same continent, or elsewhere. It is the
// four-way split used both for measurement strategies (§3.3.2) and for the
// transferability weights (§3.4).
type GeoScope int

// Geographic scopes from closest to farthest.
const (
	SameMetro GeoScope = iota
	SameCountry
	SameContinent
	Elsewhere
	NumGeoScopes
)

var scopeNames = [...]string{"SameMetro", "SameCountry", "SameContinent", "Elsewhere"}

func (s GeoScope) String() string {
	if s < 0 || int(s) >= len(scopeNames) {
		return fmt.Sprintf("GeoScope(%d)", int(s))
	}
	return scopeNames[s]
}

// ScopeOfMetros returns the geographic scope of metro b relative to metro a.
func (g *Graph) ScopeOfMetros(a, b int) GeoScope {
	if a == b {
		return SameMetro
	}
	ma, mb := g.Metros[a], g.Metros[b]
	if ma.Country == mb.Country {
		return SameCountry
	}
	if g.Countries[ma.Country].Continent == g.Countries[mb.Country].Continent {
		return SameContinent
	}
	return Elsewhere
}

// ScopeOfASToMetro returns the closest geographic scope between any metro in
// the footprint of AS i and metro m.
func (g *Graph) ScopeOfASToMetro(i, m int) GeoScope {
	best := Elsewhere
	for _, mm := range g.ASes[i].Metros {
		if s := g.ScopeOfMetros(mm, m); s < best {
			best = s
		}
	}
	return best
}

// MetroOfName returns the metro with the given name, or nil.
func (g *Graph) MetroOfName(name string) *Metro {
	for _, m := range g.Metros {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// SharedMetros returns the sorted metro indices where both ASes have
// presence. With footprint bitsets (ASes added via AddAS) this is a word
// AND; otherwise it falls back to a merge over the Metros slices.
func (g *Graph) SharedMetros(a, b int) []int {
	fa, fb := g.ASes[a].foot, g.ASes[b].foot
	if fa != nil && fb != nil {
		return fa.AppendCommon(fb, nil)
	}
	return sharedSorted(g.ASes[a].Metros, g.ASes[b].Metros)
}

// Colocated reports whether the two ASes share at least one metro.
func (g *Graph) Colocated(a, b int) bool {
	fa, fb := g.ASes[a].foot, g.ASes[b].foot
	if fa != nil && fb != nil {
		return fa.Intersects(fb)
	}
	return len(sharedSorted(g.ASes[a].Metros, g.ASes[b].Metros)) > 0
}

// SharedIXPs returns the sorted IXP indices both ASes are members of.
func (g *Graph) SharedIXPs(a, b int) []int {
	xa, xb := g.ASes[a].ixf, g.ASes[b].ixf
	if xa != nil && xb != nil {
		return xa.AppendCommon(xb, nil)
	}
	return sharedSorted(g.ASes[a].IXPs, g.ASes[b].IXPs)
}

// sharedSorted returns the sorted intersection of two small index slices
// (not assumed sorted — hand-built test graphs may append out of order).
func sharedSorted(xs, ys []int) []int {
	set := map[int]bool{}
	for _, x := range xs {
		set[x] = true
	}
	var out []int
	for _, y := range ys {
		if set[y] {
			out = append(out, y)
		}
	}
	sort.Ints(out)
	return out
}

// Pair is a canonical (A < B) AS-index pair, used as a map key for links.
type Pair struct{ A, B int }

// MakePair canonicalizes an AS pair.
func MakePair(a, b int) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{a, b}
}

func hasInt32(xs []int32, v int32) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
