package asgraph

import (
	"reflect"
	"testing"
)

// buildTestGraph returns a small compacted graph: a provider chain
// 0→1→2 (0 sells to 1, 1 sells to 2) and peers 0-3, 0-4, 3-4.
func buildTestGraph() *Graph {
	g := NewGraph()
	for i := 0; i < 5; i++ {
		g.AddAS(&AS{ASN: 100 + i, Metros: []int{0}})
	}
	g.AddC2P(1, 0)
	g.AddC2P(2, 1)
	g.AddPeerUnique(0, 3)
	g.AddPeerUnique(0, 4)
	g.AddPeerUnique(3, 4)
	g.Compact()
	return g
}

func TestRemovePeerPreservesOrder(t *testing.T) {
	g := buildTestGraph()
	if !g.RemovePeer(0, 3) {
		t.Fatal("RemovePeer(0,3) found no link")
	}
	if g.HasPeer(0, 3) || g.HasPeer(3, 0) {
		t.Fatal("link 0-3 still present after removal")
	}
	if !g.HasPeer(0, 4) || !g.HasPeer(3, 4) {
		t.Fatal("unrelated links were damaged")
	}
	// Remaining adjacency keeps insertion order.
	if want := []int32{4}; !reflect.DeepEqual(g.Peers[0], want) {
		t.Fatalf("Peers[0] = %v, want %v", g.Peers[0], want)
	}
	if g.RemovePeer(0, 3) {
		t.Fatal("second RemovePeer(0,3) reported a removal")
	}
}

// TestRemovePeerInPlaceDoesNotBleed pins the delta-overlay safety
// property: shrinking one AS's row inside the shared CSR backing must
// not corrupt its neighbors' rows.
func TestRemovePeerInPlaceDoesNotBleed(t *testing.T) {
	g := buildTestGraph()
	before3 := append([]int32(nil), g.Peers[3]...)
	before4 := append([]int32(nil), g.Peers[4]...)
	g.RemovePeer(0, 4) // shrinks rows 0 and 4
	if !reflect.DeepEqual(g.Peers[3], before3) {
		t.Fatalf("Peers[3] changed: %v -> %v", before3, g.Peers[3])
	}
	want4 := removeVal(before4, 0)
	if !reflect.DeepEqual(g.Peers[4], want4) {
		t.Fatalf("Peers[4] = %v, want %v", g.Peers[4], want4)
	}
}

func removeVal(xs []int32, v int32) []int32 {
	out := make([]int32, 0, len(xs))
	for _, x := range xs {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func TestRemoveC2PInvalidatesCones(t *testing.T) {
	g := buildTestGraph()
	if got := g.ConeSize(0); got != 3 {
		t.Fatalf("cone(0) = %d, want 3 (0,1,2)", got)
	}
	if !g.RemoveC2P(2, 1) {
		t.Fatal("RemoveC2P(2,1) found no relationship")
	}
	if g.HasProvider(2, 1) {
		t.Fatal("provider link survived removal")
	}
	if got := g.ConeSize(0); got != 2 {
		t.Fatalf("cone(0) after depeering = %d, want 2 (stale cone cache?)", got)
	}
	if g.RemoveC2P(2, 1) {
		t.Fatal("second RemoveC2P(2,1) reported a removal")
	}
}

func TestMaybeCompactThreshold(t *testing.T) {
	g := buildTestGraph() // Compact reset the counter
	if g.Mutations() != 0 {
		t.Fatalf("mutations after Compact = %d, want 0", g.Mutations())
	}
	g.AddPeer(1, 2)
	g.RemovePeer(1, 2)
	if g.Mutations() != 2 {
		t.Fatalf("mutations = %d, want 2", g.Mutations())
	}
	if g.MaybeCompact(3) {
		t.Fatal("MaybeCompact compacted below threshold")
	}
	g.AddPeer(1, 2)
	if !g.MaybeCompact(3) {
		t.Fatal("MaybeCompact did not compact at threshold")
	}
	if g.Mutations() != 0 {
		t.Fatalf("mutations after MaybeCompact = %d, want 0", g.Mutations())
	}
	// The re-packed graph is intact and still mutable.
	if !g.HasPeer(1, 2) || !g.HasPeer(0, 3) {
		t.Fatal("links lost across MaybeCompact")
	}
	if !g.RemovePeer(0, 3) {
		t.Fatal("post-compact removal failed")
	}
}
