package asgraph

import (
	"fmt"
	"testing"
)

// BenchmarkHasMetro pins the bitset fast path of AS.HasMetro against the
// linear-scan fallback it replaced: the same membership test, over
// footprints of increasing size, in a 240-metro world (multi-word
// bitsets). The bitset path is O(1) regardless of footprint size.
func BenchmarkHasMetro(b *testing.B) {
	const nMetros = 240
	for _, footSize := range []int{2, 8, 32, 120} {
		metros := make([]int, footSize)
		for i := range metros {
			metros[i] = (i * nMetros) / footSize // spread across the space
		}
		a := &AS{Metros: metros}
		g := NewGraph()
		g.AddAS(a)

		// Probe a mix of members and non-members so branch prediction
		// cannot trivialize either variant.
		probes := [...]int{metros[footSize-1], 1, metros[0], nMetros - 1}

		b.Run(fmt.Sprintf("bitset/foot=%d", footSize), func(b *testing.B) {
			as := &g.ASes[0]
			hit := 0
			for i := 0; i < b.N; i++ {
				if as.HasMetro(probes[i&3]) {
					hit++
				}
			}
			_ = hit
		})
		b.Run(fmt.Sprintf("linear/foot=%d", footSize), func(b *testing.B) {
			// The pre-bitset implementation: scan the Metros slice.
			as := &g.ASes[0]
			hit := 0
			for i := 0; i < b.N; i++ {
				m := probes[i&3]
				for _, mm := range as.Metros {
					if mm == m {
						hit++
						break
					}
				}
			}
			_ = hit
		})
	}
}

// BenchmarkSharedMetros compares the bitset AppendCommon path of
// SharedMetros with the historical map-based intersection fallback.
func BenchmarkSharedMetros(b *testing.B) {
	g := NewGraph()
	m1 := []int{0, 3, 17, 64, 101, 130, 188, 201}
	m2 := []int{3, 9, 64, 99, 130, 150, 201, 230}
	g.AddAS(&AS{Metros: m1})
	g.AddAS(&AS{Metros: m2})
	b.Run("bitset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(g.SharedMetros(0, 1)) != 4 {
				b.Fatal("bad intersection")
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(sharedSorted(m1, m2)) != 4 {
				b.Fatal("bad intersection")
			}
		}
	})
}
