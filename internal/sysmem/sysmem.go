// Package sysmem reads process-level memory counters from the kernel's
// /proc/self/status. Go's runtime.MemStats only sees the Go heap; the
// numbers the 100k-scale work budgets against — and the ones an operator
// watches — are resident-set sizes, which also cover goroutine stacks,
// runtime overhead and any non-heap mappings. On platforms without procfs
// every reader returns 0, so callers can surface the counters
// unconditionally and let zero mean "unavailable".
package sysmem

import (
	"bytes"
	"os"
	"strconv"
)

// PeakRSSBytes returns the process's peak resident set size (VmHWM): the
// high-water mark since process start, monotonic and therefore the right
// single number for "what did this run cost in memory" benchmarking.
func PeakRSSBytes() int64 { return Read().PeakRSSBytes }

// CurrentRSSBytes returns the process's current resident set size (VmRSS).
func CurrentRSSBytes() int64 { return Read().CurrentRSSBytes }

// Stats is one consistent snapshot of the process memory counters.
type Stats struct {
	// PeakRSSBytes is VmHWM: the resident high-water mark since start.
	PeakRSSBytes int64
	// CurrentRSSBytes is VmRSS at snapshot time. The kernel updates the
	// high-water mark lazily, so Current can momentarily exceed Peak.
	CurrentRSSBytes int64
}

// Read snapshots both counters from a single /proc/self/status read.
func Read() Stats {
	buf, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return Stats{}
	}
	var st Stats
	for len(buf) > 0 {
		line := buf
		if i := bytes.IndexByte(buf, '\n'); i >= 0 {
			line, buf = buf[:i], buf[i+1:]
		} else {
			buf = nil
		}
		switch {
		case bytes.HasPrefix(line, []byte("VmHWM:")):
			st.PeakRSSBytes = parseKB(line[len("VmHWM:"):])
		case bytes.HasPrefix(line, []byte("VmRSS:")):
			st.CurrentRSSBytes = parseKB(line[len("VmRSS:"):])
		}
	}
	return st
}

// parseKB converts the value of a "  <n> kB" suffix to bytes (0 if
// malformed).
func parseKB(rest []byte) int64 {
	fields := bytes.Fields(rest)
	if len(fields) == 0 {
		return 0
	}
	kb, err := strconv.ParseInt(string(fields[0]), 10, 64)
	if err != nil {
		return 0
	}
	return kb << 10
}
