package sysmem

import (
	"runtime"
	"testing"
)

func TestRSSCounters(t *testing.T) {
	st := Read()
	if runtime.GOOS != "linux" {
		t.Skipf("procfs counters unavailable on %s (%+v)", runtime.GOOS, st)
	}
	if st.CurrentRSSBytes <= 0 {
		t.Fatalf("VmRSS = %d, want > 0 on linux", st.CurrentRSSBytes)
	}
	if st.PeakRSSBytes <= 0 {
		t.Fatalf("VmHWM = %d, want > 0 on linux", st.PeakRSSBytes)
	}
	// The high-water mark is monotonic and tracks new allocation peaks.
	sink := make([]byte, 64<<20)
	for i := range sink {
		sink[i] = byte(i)
	}
	after := Read()
	if after.PeakRSSBytes < st.PeakRSSBytes {
		t.Fatalf("peak RSS decreased %d -> %d", st.PeakRSSBytes, after.PeakRSSBytes)
	}
	if after.PeakRSSBytes < st.CurrentRSSBytes {
		t.Fatalf("peak RSS %d below earlier current RSS %d after touching 64 MiB",
			after.PeakRSSBytes, st.CurrentRSSBytes)
	}
	runtime.KeepAlive(sink)
}
