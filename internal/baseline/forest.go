package baseline

import (
	"math"
	"math/rand"
	"sort"
)

// ForestConfig tunes the random forest of Appx. E.2.
type ForestConfig struct {
	Trees    int
	MaxDepth int
	MinLeaf  int
	// FeatureFrac is the fraction of features considered per split
	// (default: sqrt heuristic).
	FeatureFrac float64
	Seed        int64
}

// DefaultForestConfig returns reasonable defaults.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{Trees: 40, MaxDepth: 10, MinLeaf: 4, Seed: 1}
}

// Forest is a bagged ensemble of CART trees predicting P(link).
type Forest struct {
	trees []*node
}

type node struct {
	feature     int
	threshold   float64
	left, right *node
	prob        float64 // leaf value
}

func (n *node) leaf() bool { return n.left == nil }

// TrainForest fits a random forest on feature vectors X and labels y.
func TrainForest(X [][]float64, y []bool, cfg ForestConfig) *Forest {
	if cfg.Trees < 1 {
		cfg.Trees = 1
	}
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 1
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{}
	if len(X) == 0 {
		f.trees = []*node{{prob: 0.5}}
		return f
	}
	d := len(X[0])
	mtry := int(cfg.FeatureFrac * float64(d))
	if cfg.FeatureFrac == 0 {
		mtry = int(math.Ceil(math.Sqrt(float64(d))))
	}
	if mtry < 1 {
		mtry = 1
	}
	for t := 0; t < cfg.Trees; t++ {
		// Bootstrap sample.
		idx := make([]int, len(X))
		for i := range idx {
			idx[i] = rng.Intn(len(X))
		}
		f.trees = append(f.trees, growTree(X, y, idx, cfg.MaxDepth, cfg.MinLeaf, mtry, rng))
	}
	return f
}

func growTree(X [][]float64, y []bool, idx []int, depth, minLeaf, mtry int, rng *rand.Rand) *node {
	pos := 0
	for _, i := range idx {
		if y[i] {
			pos++
		}
	}
	prob := float64(pos) / float64(len(idx))
	if depth == 0 || len(idx) < 2*minLeaf || pos == 0 || pos == len(idx) {
		return &node{prob: prob}
	}
	d := len(X[0])
	feats := rng.Perm(d)[:mtry]
	bestGain := 0.0
	bestFeat := -1
	bestThr := 0.0
	base := gini(pos, len(idx))
	vals := make([]float64, 0, len(idx))
	for _, feat := range feats {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, X[i][feat])
		}
		sort.Float64s(vals)
		// Candidate thresholds at a handful of quantiles.
		for _, q := range []float64{0.25, 0.5, 0.75} {
			thr := vals[int(q*float64(len(vals)-1))]
			lp, ln, rp, rn := 0, 0, 0, 0
			for _, i := range idx {
				if X[i][feat] <= thr {
					ln++
					if y[i] {
						lp++
					}
				} else {
					rn++
					if y[i] {
						rp++
					}
				}
			}
			if ln < minLeaf || rn < minLeaf {
				continue
			}
			g := base - (float64(ln)*gini(lp, ln)+float64(rn)*gini(rp, rn))/float64(len(idx))
			if g > bestGain {
				bestGain, bestFeat, bestThr = g, feat, thr
			}
		}
	}
	if bestFeat < 0 {
		return &node{prob: prob}
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	return &node{
		feature:   bestFeat,
		threshold: bestThr,
		left:      growTree(X, y, li, depth-1, minLeaf, mtry, rng),
		right:     growTree(X, y, ri, depth-1, minLeaf, mtry, rng),
	}
}

func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// PredictProba returns the forest's estimated probability that x is a link.
func (f *Forest) PredictProba(x []float64) float64 {
	var sum float64
	for _, t := range f.trees {
		n := t
		for !n.leaf() {
			if x[n.feature] <= n.threshold {
				n = n.left
			} else {
				n = n.right
			}
		}
		sum += n.prob
	}
	return sum / float64(len(f.trees))
}
