package baseline

import (
	"math"
	"math/rand"

	"metascritic/internal/mat"
)

// NCFConfig tunes the neural collaborative filtering model of Appx. E.2: a
// multi-layer perceptron over per-AS embeddings (and optional side
// features) trained with SGD on the observed ratings.
type NCFConfig struct {
	EmbedDim  int
	HiddenDim int
	Epochs    int
	LearnRate float64
	L2        float64
	Seed      int64
}

// DefaultNCFConfig returns the architecture used in the comparison.
func DefaultNCFConfig() NCFConfig {
	return NCFConfig{EmbedDim: 8, HiddenDim: 24, Epochs: 60, LearnRate: 0.03, L2: 1e-4, Seed: 1}
}

// NCF is the trained model.
type NCF struct {
	cfg   NCFConfig
	n     int
	fdim  int
	embed *mat.Matrix // n × EmbedDim
	w1    *mat.Matrix // HiddenDim × inputDim
	b1    []float64
	w2    []float64
	b2    float64
	// w3 weights the GMF path: the element-wise product of the two
	// embeddings (NeuMF combines GMF and MLP).
	w3     []float64
	feat   *mat.Matrix
	inBuf  []float64
	hidBuf []float64
}

func (m *NCF) inputDim() int { return 2*m.cfg.EmbedDim + 2*m.fdim }

// TrainNCF fits the model on the observed entries of E (features may be
// nil). It returns a predictor for arbitrary member pairs.
func TrainNCF(E *mat.Matrix, mask *mat.Mask, features *mat.Matrix, cfg NCFConfig) *NCF {
	if cfg.EmbedDim < 1 {
		cfg.EmbedDim = 4
	}
	if cfg.HiddenDim < 1 {
		cfg.HiddenDim = 8
	}
	if cfg.LearnRate <= 0 {
		cfg.LearnRate = 0.01
	}
	n := E.Rows
	fdim := 0
	if features != nil {
		fdim = features.Cols
	}
	m := &NCF{cfg: cfg, n: n, fdim: fdim, feat: features}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m.embed = mat.New(n, cfg.EmbedDim)
	for i := range m.embed.Data {
		m.embed.Data[i] = 0.1 * rng.NormFloat64()
	}
	in := m.inputDim()
	m.w1 = mat.New(cfg.HiddenDim, in)
	scale := 1 / math.Sqrt(float64(in))
	for i := range m.w1.Data {
		m.w1.Data[i] = scale * rng.NormFloat64()
	}
	m.b1 = make([]float64, cfg.HiddenDim)
	m.w2 = make([]float64, cfg.HiddenDim)
	for i := range m.w2 {
		m.w2[i] = scale * rng.NormFloat64()
	}
	m.w3 = make([]float64, cfg.EmbedDim)
	for i := range m.w3 {
		m.w3[i] = 0.5 * rng.NormFloat64()
	}
	m.inBuf = make([]float64, in)
	m.hidBuf = make([]float64, cfg.HiddenDim)

	// Collect training samples.
	type sample struct{ i, j int }
	var samples []sample
	mask.Entries(func(i, j int) {
		if i != j {
			samples = append(samples, sample{i, j})
		}
	})
	if len(samples) == 0 {
		return m
	}

	lr := cfg.LearnRate
	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(len(samples), func(a, b int) { samples[a], samples[b] = samples[b], samples[a] })
		for _, s := range samples {
			m.sgdStep(s.i, s.j, E.At(s.i, s.j), lr)
			m.sgdStep(s.j, s.i, E.At(s.i, s.j), lr) // symmetry
		}
		lr *= 0.98
	}
	return m
}

// forward fills inBuf/hidBuf and returns the prediction for (i, j).
func (m *NCF) forward(i, j int) float64 {
	k := m.cfg.EmbedDim
	copy(m.inBuf[:k], m.embed.Row(i))
	copy(m.inBuf[k:2*k], m.embed.Row(j))
	if m.fdim > 0 {
		copy(m.inBuf[2*k:2*k+m.fdim], m.feat.Row(i))
		copy(m.inBuf[2*k+m.fdim:], m.feat.Row(j))
	}
	out := m.b2
	for d := 0; d < k; d++ {
		out += m.w3[d] * m.embed.At(i, d) * m.embed.At(j, d)
	}
	for h := 0; h < m.cfg.HiddenDim; h++ {
		z := m.b1[h]
		row := m.w1.Row(h)
		for d, v := range m.inBuf {
			z += row[d] * v
		}
		a := math.Tanh(z)
		m.hidBuf[h] = a
		out += m.w2[h] * a
	}
	return out
}

// sgdStep performs one gradient update on sample ((i, j), target).
func (m *NCF) sgdStep(i, j int, target, lr float64) {
	pred := m.forward(i, j)
	errGrad := 2 * (pred - target) // d(loss)/d(pred)
	k := m.cfg.EmbedDim
	l2 := m.cfg.L2

	// GMF path.
	ei, ej := m.embed.Row(i), m.embed.Row(j)
	for d := 0; d < k; d++ {
		gi := errGrad*m.w3[d]*ej[d] + l2*ei[d]
		gj := errGrad*m.w3[d]*ei[d] + l2*ej[d]
		gw3 := errGrad*ei[d]*ej[d] + l2*m.w3[d]
		ei[d] -= lr * gi
		ej[d] -= lr * gj
		m.w3[d] -= lr * gw3
	}

	// Output layer.
	for h := 0; h < m.cfg.HiddenDim; h++ {
		gw2 := errGrad*m.hidBuf[h] + l2*m.w2[h]
		// Hidden layer backprop: dL/dz_h = errGrad * w2[h] * (1 - a²).
		dz := errGrad * m.w2[h] * (1 - m.hidBuf[h]*m.hidBuf[h])
		m.w2[h] -= lr * gw2
		row := m.w1.Row(h)
		for d, v := range m.inBuf {
			// Input gradients for the embedding part.
			if d < 2*k {
				var emb []float64
				var dd int
				if d < k {
					emb = m.embed.Row(i)
					dd = d
				} else {
					emb = m.embed.Row(j)
					dd = d - k
				}
				emb[dd] -= lr * (dz*row[d] + l2*emb[dd])
			}
			row[d] -= lr * (dz*v + l2*row[d])
		}
		m.b1[h] -= lr * dz
	}
	m.b2 -= lr * errGrad
}

// Predict returns the model's rating for member rows (i, j), clipped to
// [-1, 1] and symmetrized.
func (m *NCF) Predict(i, j int) float64 {
	v := (m.forward(i, j) + m.forward(j, i)) / 2
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}
