package baseline

import (
	"math"
	"math/rand"
	"testing"

	"metascritic/internal/asgraph"
	"metascritic/internal/mat"
	"metascritic/internal/probe"
	"metascritic/internal/stats"
)

// selGraph builds a small graph with IXP membership for picker tests.
func selGraph() (*asgraph.Graph, *probe.Selector) {
	g := asgraph.NewGraph()
	g.Continents = []string{"EU"}
	g.Countries = []asgraph.Country{{Code: "NL", Continent: 0}}
	g.Metros = []*asgraph.Metro{{Index: 0, Name: "Amsterdam", Country: 0}}
	g.IXPs = []*asgraph.IXP{{Index: 0, Name: "IX", Metro: 0}}
	for i := 0; i < 6; i++ {
		g.AddAS(&asgraph.AS{ASN: 100 + i, Metros: []int{0}})
	}
	for i := 1; i < 6; i++ {
		g.AddC2P(i, 0)
	}
	// ASes 1 and 2 are on the IXP.
	g.ASes[1].IXPs = []int{0}
	g.ASes[2].IXPs = []int{0}
	g.IXPs[0].Members = []int{1, 2}
	members := []int{1, 2, 3, 4, 5}
	vps := []probe.VP{{AS: 1, Metro: 0}, {AS: 3, Metro: 0}, {AS: 0, Metro: 0}}
	sel := probe.NewSelector(g, 0, members, vps, []int{1, 2, 3, 4, 5})
	return g, sel
}

func freshState(n int) State {
	return State{N: n, Fill: make([]int, n), Has: func(i, j int) bool { return false }}
}

func TestPickersProduceValidMeasurements(t *testing.T) {
	_, sel := selGraph()
	rng := rand.New(rand.NewSource(1))
	pickers := []Picker{Random{}, OnlyExploration{}, OnlyExploitation{}, Greedy{}, IXPMapped{}}
	for _, p := range pickers {
		batch := p.NextBatch(sel, freshState(5), 4, rng)
		if len(batch) == 0 {
			t.Fatalf("%s produced no measurements", p.Name())
		}
		for _, m := range batch {
			if m.LinkI == m.LinkJ {
				t.Fatalf("%s proposed a self measurement", p.Name())
			}
			if _, ok := sel.Index[m.LinkI]; !ok {
				t.Fatalf("%s proposed non-member link %d", p.Name(), m.LinkI)
			}
		}
		if p.Name() == "" {
			t.Fatalf("empty picker name")
		}
	}
}

func TestPickersSkipObservedEntries(t *testing.T) {
	_, sel := selGraph()
	rng := rand.New(rand.NewSource(2))
	st := freshState(5)
	st.Has = func(i, j int) bool { return i == 0 || j == 0 } // row 0 fully observed
	for _, p := range []Picker{Random{}, OnlyExploration{}, Greedy{}, IXPMapped{}} {
		for _, m := range p.NextBatch(sel, st, 6, rng) {
			i, j := sel.Index[m.LinkI], sel.Index[m.LinkJ]
			if i == 0 || j == 0 {
				t.Fatalf("%s proposed an observed entry", p.Name())
			}
		}
	}
}

func TestOnlyExplorationPrefersEmptyRows(t *testing.T) {
	_, sel := selGraph()
	rng := rand.New(rand.NewSource(3))
	st := freshState(5)
	st.Fill = []int{9, 9, 9, 0, 0} // rows 3,4 empty
	batch := OnlyExploration{}.NextBatch(sel, st, 1, rng)
	if len(batch) != 1 {
		t.Fatalf("batch len %d", len(batch))
	}
	m := batch[0]
	i, j := sel.Index[m.LinkI], sel.Index[m.LinkJ]
	if i+j != 7 { // rows 3 and 4
		t.Fatalf("exploration picked rows %d,%d", i, j)
	}
}

func TestIXPMappedPrioritizesIXPPairs(t *testing.T) {
	_, sel := selGraph()
	rng := rand.New(rand.NewSource(4))
	batch := IXPMapped{}.NextBatch(sel, freshState(5), 1, rng)
	if len(batch) != 1 {
		t.Fatalf("batch len %d", len(batch))
	}
	m := batch[0]
	// The only co-IXP pair among members is (1, 2).
	if !(m.LinkI == 1 && m.LinkJ == 2 || m.LinkI == 2 && m.LinkJ == 1) {
		t.Fatalf("IXP-mapped first pick %d-%d, want 1-2", m.LinkI, m.LinkJ)
	}
}

func TestGreedyOrdersByProbability(t *testing.T) {
	_, sel := selGraph()
	rng := rand.New(rand.NewSource(5))
	batch := Greedy{}.NextBatch(sel, freshState(5), 10, rng)
	for k := 1; k < len(batch); k++ {
		if batch[k].P > batch[k-1].P+1e-9 {
			t.Fatalf("greedy batch not sorted by P")
		}
	}
}

// --- Random forest ---

func syntheticClassification(n int, rng *rand.Rand) ([][]float64, []bool) {
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		// Label depends on x0 and x1 interaction; x2 is noise.
		y[i] = X[i][0]+0.5*X[i][1] > 0
	}
	return X, y
}

func TestForestLearnsSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X, y := syntheticClassification(600, rng)
	f := TrainForest(X, y, DefaultForestConfig())
	Xt, yt := syntheticClassification(300, rng)
	scores := make([]float64, len(Xt))
	for i := range Xt {
		scores[i] = f.PredictProba(Xt[i])
	}
	if auc := stats.AUC(scores, yt); auc < 0.9 {
		t.Fatalf("forest AUC = %.3f, want >= 0.9", auc)
	}
}

func TestForestProbBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, y := syntheticClassification(200, rng)
	f := TrainForest(X, y, ForestConfig{Trees: 5, MaxDepth: 3, MinLeaf: 2, Seed: 2})
	for i := range X {
		p := f.PredictProba(X[i])
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
	}
}

func TestForestEmptyTraining(t *testing.T) {
	f := TrainForest(nil, nil, DefaultForestConfig())
	if p := f.PredictProba([]float64{1, 2, 3}); p != 0.5 {
		t.Fatalf("empty forest prob = %v, want 0.5", p)
	}
}

func TestForestPureLabels(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []bool{true, true, true}
	f := TrainForest(X, y, ForestConfig{Trees: 3, MaxDepth: 4, MinLeaf: 1, Seed: 1})
	if p := f.PredictProba([]float64{2}); p != 1 {
		t.Fatalf("pure-positive forest prob = %v", p)
	}
}

// --- NCF ---

func TestNCFLearnsBlockStructure(t *testing.T) {
	// Two AS communities: intra-community rating +1, inter -1.
	n := 24
	E := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if (i%2 == 0) == (j%2 == 0) {
				E.Set(i, j, 1)
			} else {
				E.Set(i, j, -1)
			}
		}
	}
	mask := mat.NewMask(n)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.6 {
				mask.Set(i, j)
			}
		}
	}
	m := TrainNCF(E, mask, nil, DefaultNCFConfig())
	// Score unobserved entries.
	var scores []float64
	var labels []bool
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if mask.Has(i, j) {
				continue
			}
			scores = append(scores, m.Predict(i, j))
			labels = append(labels, E.At(i, j) > 0)
		}
	}
	if auc := stats.AUC(scores, labels); auc < 0.85 {
		t.Fatalf("NCF AUC = %.3f, want >= 0.85", auc)
	}
}

func TestNCFPredictBoundsAndSymmetry(t *testing.T) {
	n := 10
	E := mat.New(n, n)
	mask := mat.NewMask(n)
	mask.Set(0, 1)
	E.Set(0, 1, 1)
	E.Set(1, 0, 1)
	m := TrainNCF(E, mask, nil, NCFConfig{EmbedDim: 4, HiddenDim: 8, Epochs: 5, LearnRate: 0.05, Seed: 3})
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := m.Predict(i, j)
			if v < -1 || v > 1 {
				t.Fatalf("prediction out of range: %v", v)
			}
			if diff := math.Abs(v - m.Predict(j, i)); diff > 1e-12 {
				t.Fatalf("prediction not symmetric: %v", diff)
			}
		}
	}
}

func TestNCFWithFeatures(t *testing.T) {
	// Ratings determined solely by a feature: NCF must exploit it for
	// rows with no observations.
	n := 30
	E := mat.New(n, n)
	feat := mat.New(n, 1)
	for i := 0; i < n; i++ {
		feat.Set(i, 0, float64(i%2)*2-1)
		for j := 0; j < n; j++ {
			if i != j && i%2 == 1 && j%2 == 1 {
				E.Set(i, j, 1)
			} else if i != j {
				E.Set(i, j, -1)
			}
		}
	}
	mask := mat.NewMask(n)
	rng := rand.New(rand.NewSource(9))
	for i := 2; i < n; i++ { // rows 0,1 cold
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.7 {
				mask.Set(i, j)
			}
		}
	}
	cfg := DefaultNCFConfig()
	cfg.Epochs = 80
	m := TrainNCF(E, mask, feat, cfg)
	// Cold row 1 (odd) should score higher with odd js than row 0 (even).
	sOdd := m.Predict(1, 5)
	sEven := m.Predict(0, 5)
	if sOdd <= sEven {
		t.Fatalf("feature signal unused: odd=%v even=%v", sOdd, sEven)
	}
}

func TestNCFEmptyMask(t *testing.T) {
	E := mat.New(5, 5)
	m := TrainNCF(E, mat.NewMask(5), nil, DefaultNCFConfig())
	if v := m.Predict(0, 1); v < -1 || v > 1 {
		t.Fatalf("untrained prediction out of range")
	}
}
