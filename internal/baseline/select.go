// Package baseline implements everything metAScritic is compared against:
// the alternative traceroute-selection strategies of Table 2 / Fig. 11
// (Random, Only-Exploration, Only-Exploitation, Greedy, and the IXP-mapped
// technique of Augustin et al.), plus the alternative classifiers of
// Appx. E.2 (a Random Forest over pair features and a Neural Collaborative
// Filtering model). Once a baseline picks an entry to measure, it reuses
// metAScritic's source and target ranking, exactly as the paper's
// comparison does.
package baseline

import (
	"math/rand"
	"sort"

	"metascritic/internal/probe"
)

// State is the measurement-selection view of the estimate: per-row fill
// counts and an observed-entry test over member-row indices.
type State struct {
	N    int
	Fill []int
	Has  func(i, j int) bool
}

// Picker selects the entries a strategy wants measured next.
type Picker interface {
	Name() string
	// NextBatch proposes up to size measurements.
	NextBatch(sel *probe.Selector, st State, size int, rng *rand.Rand) []probe.Measurement
}

// measurementFor asks the selector machinery for the best concrete
// traceroute for entry (i, j), trying both orientations.
func measurementFor(sel *probe.Selector, i, j int, rng *rand.Rand) *probe.Measurement {
	if _, m := sel.EntryProb(i, j, rng); m != nil {
		return m
	}
	_, m := sel.EntryProb(j, i, rng)
	return m
}

// Random picks unfilled entries uniformly at random.
type Random struct{}

// Name implements Picker.
func (Random) Name() string { return "Random" }

// NextBatch implements Picker.
func (Random) NextBatch(sel *probe.Selector, st State, size int, rng *rand.Rand) []probe.Measurement {
	var cands [][2]int
	for i := 0; i < st.N; i++ {
		for j := i + 1; j < st.N; j++ {
			if !st.Has(i, j) {
				cands = append(cands, [2]int{i, j})
			}
		}
	}
	rng.Shuffle(len(cands), func(a, b int) { cands[a], cands[b] = cands[b], cands[a] })
	var out []probe.Measurement
	for _, c := range cands {
		if len(out) >= size {
			break
		}
		if m := measurementFor(sel, c[0], c[1], rng); m != nil {
			out = append(out, *m)
		}
	}
	return out
}

// OnlyExploration always targets the pair with the fewest combined filled
// entries, ignoring the success probabilities in P_m.
type OnlyExploration struct{}

// Name implements Picker.
func (OnlyExploration) Name() string { return "Only Exploration" }

// NextBatch implements Picker.
func (OnlyExploration) NextBatch(sel *probe.Selector, st State, size int, rng *rand.Rand) []probe.Measurement {
	type cand struct{ i, j, sum int }
	var cands []cand
	for i := 0; i < st.N; i++ {
		for j := i + 1; j < st.N; j++ {
			if !st.Has(i, j) {
				cands = append(cands, cand{i, j, st.Fill[i] + st.Fill[j]})
			}
		}
	}
	rng.Shuffle(len(cands), func(a, b int) { cands[a], cands[b] = cands[b], cands[a] })
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].sum < cands[b].sum })
	fill := append([]int(nil), st.Fill...)
	var out []probe.Measurement
	for _, c := range cands {
		if len(out) >= size {
			break
		}
		if m := measurementFor(sel, c.i, c.j, rng); m != nil {
			out = append(out, *m)
			fill[c.i]++
			fill[c.j]++
		}
	}
	return out
}

// OnlyExploitation is metAScritic's batch selection with ε = 0.
type OnlyExploitation struct{}

// Name implements Picker.
func (OnlyExploitation) Name() string { return "Only Exploitation" }

// NextBatch implements Picker.
func (OnlyExploitation) NextBatch(sel *probe.Selector, st State, size int, rng *rand.Rand) []probe.Measurement {
	need := make([]int, st.N)
	for i := range need {
		need[i] = st.N // unconstrained: always wants more
	}
	return sel.SelectBatch(size, 0, st.Fill, need, st.Has, rng)
}

// Greedy measures the globally most promising entries first (highest P),
// regardless of row balance.
type Greedy struct{}

// Name implements Picker.
func (Greedy) Name() string { return "Greedy" }

// NextBatch implements Picker.
func (Greedy) NextBatch(sel *probe.Selector, st State, size int, rng *rand.Rand) []probe.Measurement {
	type cand struct {
		p float64
		m probe.Measurement
	}
	var cands []cand
	for i := 0; i < st.N; i++ {
		for j := i + 1; j < st.N; j++ {
			if st.Has(i, j) {
				continue
			}
			if p, m := sel.EntryProb(i, j, rng); m != nil {
				cands = append(cands, cand{p, *m})
			}
		}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].p > cands[b].p })
	if len(cands) > size {
		cands = cands[:size]
	}
	out := make([]probe.Measurement, len(cands))
	for k, c := range cands {
		out[k] = c.m
	}
	return out
}

// IXPMapped reimplements the entry ordering of Augustin et al.'s IXP
// mapping: prioritize pairs that are co-members of an IXP at the metro
// (the links an IXP crawl would target), then everything else.
type IXPMapped struct{}

// Name implements Picker.
func (IXPMapped) Name() string { return "IXP-mapped" }

// NextBatch implements Picker.
func (IXPMapped) NextBatch(sel *probe.Selector, st State, size int, rng *rand.Rand) []probe.Measurement {
	g := sel.G
	onIXP := func(asIdx int) bool {
		for _, ix := range g.ASes[asIdx].IXPs {
			if g.IXPs[ix].Metro == sel.Metro {
				return true
			}
		}
		return false
	}
	member := make([]bool, st.N)
	for i := 0; i < st.N; i++ {
		member[i] = onIXP(sel.Members[i])
	}
	var first, second [][2]int
	for i := 0; i < st.N; i++ {
		for j := i + 1; j < st.N; j++ {
			if st.Has(i, j) {
				continue
			}
			if member[i] && member[j] {
				first = append(first, [2]int{i, j})
			} else {
				second = append(second, [2]int{i, j})
			}
		}
	}
	rng.Shuffle(len(first), func(a, b int) { first[a], first[b] = first[b], first[a] })
	rng.Shuffle(len(second), func(a, b int) { second[a], second[b] = second[b], second[a] })
	var out []probe.Measurement
	for _, c := range append(first, second...) {
		if len(out) >= size {
			break
		}
		if m := measurementFor(sel, c[0], c[1], rng); m != nil {
			out = append(out, *m)
		}
	}
	return out
}
