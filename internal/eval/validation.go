package eval

import (
	"context"
	"math/rand"
	"runtime"
	"sort"

	"metascritic"
	"metascritic/internal/asgraph"
	"metascritic/internal/bgp"
	"metascritic/internal/ipmap"
	"metascritic/internal/netsim"
)

// ValidationSet is one external validation dataset for a metro: a set of
// member pairs with link labels. Recall-only datasets contain positives
// only (§4.1: "the other validation datasets only evaluate the recall").
type ValidationSet struct {
	Name       string
	Pairs      [][2]int // member-row index pairs
	Labels     []bool
	RecallOnly bool
}

// Score evaluates a result against the dataset at threshold thr.
func (v *ValidationSet) Score(res *metascritic.Result, thr float64) (precision, recall float64) {
	tp, fp, fn := 0, 0, 0
	for k, pr := range v.Pairs {
		pred := res.Ratings.At(pr[0], pr[1]) >= thr
		switch {
		case pred && v.Labels[k]:
			tp++
		case pred && !v.Labels[k]:
			fp++
		case !pred && v.Labels[k]:
			fn++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall
}

// publicView returns (lazily computes) the collector-visible links: the
// public BGP view of §1. Monitors sit in Tier1s, large ISPs and a biased
// sample of other ASes.
func (h *Harness) publicView() map[asgraph.Pair]bool {
	if h.pubView != nil {
		return h.pubView
	}
	g := h.W.G
	rng := rand.New(rand.NewSource(h.Seed + 77))
	var monitors []int
	for _, a := range g.ASes {
		switch a.Class {
		case asgraph.Tier1, asgraph.LargeISP:
			monitors = append(monitors, a.Index)
		default:
			if rng.Float64() < 0.04 {
				monitors = append(monitors, a.Index)
			}
		}
	}
	dests := make([]int, g.N())
	for i := range dests {
		dests[i] = i
	}
	cache := bgp.NewRouteCache(bgp.FromGraph(g))
	// Warm the whole destination sweep over the worker pool before the
	// serial link walk — the propagations dominate, the walk is cheap.
	cache.Warm(context.Background(), dests, runtime.GOMAXPROCS(0))
	h.pubView = bgp.VisibleLinks(cache, monitors, dests)
	h.pubCache = cache
	return h.pubView
}

// ValidationSets synthesizes the six external datasets of §4.1 for a
// metro's result. Each mirrors the sampling bias of its real counterpart:
//
//	cloud      — the full rows of two hypergiant members (closest to
//	             ground truth: positives and negatives; Vultr/Google)
//	communities— true links visible on collector paths (BGP communities)
//	lg         — links adjacent to a few transit ASes (Looking Glasses)
//	igdb       — linked pairs colocated only at this metro (iGDB)
//	bilateral  — IXP-member links not on the route server
//	multilateral — route-server mesh links
//	alias      — a thin random sample of true links (alias resolution)
func (h *Harness) ValidationSets(res *metascritic.Result, seed int64) []*ValidationSet {
	g := h.W.G
	truth := h.W.Truths[res.Metro]
	rng := rand.New(rand.NewSource(seed))
	n := len(res.Members)
	memberRow := res.Estimate.Index

	var sets []*ValidationSet

	// Cloud ground truth: two hypergiants present at the metro.
	cloud := &ValidationSet{Name: "Ground Truth (clouds)"}
	var hyper []int
	for _, ai := range res.Members {
		if g.ASes[ai].Class == asgraph.Hypergiant {
			hyper = append(hyper, ai)
		}
	}
	sort.Ints(hyper)
	if len(hyper) > 2 {
		hyper = hyper[:2]
	}
	for _, hy := range hyper {
		hi := memberRow[hy]
		for j := 0; j < n; j++ {
			if j == hi {
				continue
			}
			cloud.Pairs = append(cloud.Pairs, [2]int{hi, j})
			cloud.Labels = append(cloud.Labels, truth.M.At(hi, j) > 0.5)
		}
	}
	sets = append(sets, cloud)

	// BGP communities: links whose crossing an AS stamped with a location
	// community on a collector-visible path (Appx. H). Stamping ASes are
	// a deterministic minority; intermediate ASes strip communities with
	// some probability, so coverage is sparse — exactly the real
	// dataset's bias.
	commPairs := h.communityTaggedLinks(res.Metro)
	comm := &ValidationSet{Name: "BGP Community", RecallOnly: true}
	for pr := range commPairs {
		i, ok1 := memberRow[pr.A]
		j, ok2 := memberRow[pr.B]
		if !ok1 || !ok2 || truth.M.At(i, j) < 0.5 {
			continue
		}
		comm.Pairs = append(comm.Pairs, [2]int{i, j})
		comm.Labels = append(comm.Labels, true)
	}

	// The iGDB hint uses the *public, incomplete* footprint database, not
	// ground truth: pairs whose reported footprints overlap only at this
	// metro must interconnect here if they interconnect at all.
	geo := h.geoDB()
	igdbSet := &ValidationSet{Name: "iGDB Geographic Hint", RecallOnly: true}
	alias := &ValidationSet{Name: "IP Aliasing", RecallOnly: true}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if truth.M.At(i, j) < 0.5 {
				continue
			}
			a, b := res.Members[i], res.Members[j]
			if geo.OnlyColocatedAt(a, b, res.Metro) {
				igdbSet.Pairs = append(igdbSet.Pairs, [2]int{i, j})
				igdbSet.Labels = append(igdbSet.Labels, true)
			}
			if rng.Float64() < 0.12 {
				alias.Pairs = append(alias.Pairs, [2]int{i, j})
				alias.Labels = append(alias.Labels, true)
			}
		}
	}
	sets = append(sets, comm, igdbSet, alias)

	// Looking glasses: best-route views of a few transit members.
	lg := &ValidationSet{Name: "Looking Glass", RecallOnly: true}
	var transits []int
	for _, ai := range res.Members {
		if g.ASes[ai].Class == asgraph.Transit || g.ASes[ai].Class == asgraph.LargeISP {
			transits = append(transits, ai)
		}
	}
	rng.Shuffle(len(transits), func(a, b int) { transits[a], transits[b] = transits[b], transits[a] })
	if len(transits) > 12 {
		transits = transits[:12]
	}
	for _, tr := range transits {
		ti := memberRow[tr]
		for j := 0; j < n; j++ {
			if j != ti && truth.M.At(ti, j) > 0.5 {
				lg.Pairs = append(lg.Pairs, [2]int{ti, j})
				lg.Labels = append(lg.Labels, true)
			}
		}
	}
	sets = append(sets, lg)

	// IXP peering matrices: bilateral vs multilateral.
	bilateral := &ValidationSet{Name: "Bilateral IXP", RecallOnly: true}
	multilateral := &ValidationSet{Name: "Multilateral IXP", RecallOnly: true}
	for _, ix := range g.IXPs {
		if ix.Metro != res.Metro {
			continue
		}
		for a := 0; a < len(ix.Members); a++ {
			for b := a + 1; b < len(ix.Members); b++ {
				ai, bi := ix.Members[a], ix.Members[b]
				i, ok1 := memberRow[ai]
				j, ok2 := memberRow[bi]
				if !ok1 || !ok2 || truth.M.At(i, j) < 0.5 {
					continue
				}
				onRS := g.ASes[ai].OnRouteServer(ix.Index) && g.ASes[bi].OnRouteServer(ix.Index)
				if onRS {
					multilateral.Pairs = append(multilateral.Pairs, [2]int{i, j})
					multilateral.Labels = append(multilateral.Labels, true)
				} else {
					bilateral.Pairs = append(bilateral.Pairs, [2]int{i, j})
					bilateral.Labels = append(bilateral.Labels, true)
				}
			}
		}
	}
	sets = append(sets, bilateral, multilateral)
	return sets
}

// communityTaggedLinks reproduces the BGP location-community pipeline of
// Appx. H: walk every collector-visible best path; at each crossing x→y,
// if y stamps location communities (a deterministic ~30% of ASes) and no
// AS between y and the collector strips them (~25% each), the collector
// learns "x—y interconnects at metro m". Only crossings geolocated to the
// target metro are returned.
func (h *Harness) communityTaggedLinks(metro int) map[asgraph.Pair]bool {
	if h.commLinks == nil {
		h.commLinks = map[int]map[asgraph.Pair]bool{}
	}
	if l, ok := h.commLinks[metro]; ok {
		return l
	}
	g := h.W.G
	h.publicView() // ensures pubCache exists
	stamps := func(as int) bool { return ipmap.Hash01From(ipmap.Hash2(as, 0xc0117)) < 0.30 }
	strips := func(as, dst int) bool { return ipmap.Hash01From(ipmap.Hash3(as, dst, 0x57717)) < 0.25 }

	rng := rand.New(rand.NewSource(h.Seed + 77))
	var monitors []int
	for _, a := range g.ASes {
		switch a.Class {
		case asgraph.Tier1, asgraph.LargeISP:
			monitors = append(monitors, a.Index)
		default:
			if rng.Float64() < 0.04 {
				monitors = append(monitors, a.Index)
			}
		}
	}
	out := map[asgraph.Pair]bool{}
	var pathBuf []int
	for d := 0; d < g.N(); d++ {
		routes := h.pubCache.RoutesTo(d)
		for _, m := range monitors {
			p := routes.AppendPathFrom(pathBuf[:0], m)
			pathBuf = p
			// Walk from the collector toward the origin; communities are
			// stamped at the receiver side of each crossing and must
			// survive every AS between the stamper and the collector.
			for i := 0; i+1 < len(p); i++ {
				x, y := p[i+1], p[i] // y received the route from x
				if !stamps(y) {
					continue
				}
				survived := true
				for k := 0; k < i; k++ {
					if strips(p[k], d) {
						survived = false
						break
					}
				}
				if !survived {
					continue
				}
				cm := h.P.Engine.CrossingOf(x, y, d*97+g.ASes[d].Metros[0], g.ASes[x].Metros[0])
				if cm == metro {
					out[asgraph.MakePair(x, y)] = true
				}
			}
		}
	}
	h.commLinks[metro] = out
	return out
}

// MeasuredLinks returns the AS pairs whose direct crossings the store
// observed at the metro (the "+M" link set of §6), via the result's
// measured estimate.
func MeasuredLinks(res *metascritic.Result) []asgraph.Pair {
	var out []asgraph.Pair
	n := len(res.Members)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if v, ok := res.Estimate.Value(res.Members[i], res.Members[j]); ok && v > 0 {
				out = append(out, asgraph.MakePair(res.Members[i], res.Members[j]))
			}
		}
	}
	return out
}

// InferredLinks returns pairs whose completed rating clears thr and that
// were not directly measured.
func InferredLinks(res *metascritic.Result, thr float64) []asgraph.Pair {
	var out []asgraph.Pair
	n := len(res.Members)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if res.Ratings.At(i, j) < thr {
				continue
			}
			if v, ok := res.Estimate.Value(res.Members[i], res.Members[j]); ok && v > 0 {
				continue // measured, not inferred
			}
			out = append(out, asgraph.MakePair(res.Members[i], res.Members[j]))
		}
	}
	return out
}

// worldTruthHas reports whether a pair interconnects anywhere.
func worldTruthHas(w *netsim.World, pr asgraph.Pair) bool {
	_, ok := w.RelOf(pr.A, pr.B)
	return ok
}
