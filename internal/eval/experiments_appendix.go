package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"metascritic"
	"metascritic/internal/als"
	"metascritic/internal/asgraph"
	"metascritic/internal/baseline"
	"metascritic/internal/explain"
	"metascritic/internal/mat"
	"metascritic/internal/obs"
	"metascritic/internal/stats"
)

// --- Fig. 9: geographic transferability ---

// Fig9Result summarizes how often links repeat across colocated metros.
type Fig9Result struct {
	Pairs        int
	FracAll      float64 // links present at every shared metro
	FracHalf     float64 // links present at >= half the shared metros
	MeanCoverage float64
}

// Fig9 measures, for consistently-routing AS pairs with a link in the
// largest primary metro, the fraction of their shared metros where the
// link also exists (Appx. E.4; the paper reports 42-65% all-locations and
// 70-90% at half or more).
func Fig9(h *Harness) (Fig9Result, *Table) {
	// Use ground truth link placement: this experiment validates the
	// transferability *assumption*, not the inference.
	var out Fig9Result
	var cov []float64
	for pr, metros := range h.W.LinkMetros {
		rel, _ := h.W.RelOf(pr.A, pr.B)
		if rel != asgraph.P2P {
			continue
		}
		if !h.W.G.ASes[pr.A].ConsistentRouting || !h.W.G.ASes[pr.B].ConsistentRouting {
			continue
		}
		shared := h.W.G.SharedMetros(pr.A, pr.B)
		if len(shared) < 2 {
			continue
		}
		out.Pairs++
		frac := float64(len(metros)) / float64(len(shared))
		cov = append(cov, frac)
		if frac >= 1 {
			out.FracAll++
		}
		if frac >= 0.5 {
			out.FracHalf++
		}
	}
	if out.Pairs > 0 {
		out.FracAll /= float64(out.Pairs)
		out.FracHalf /= float64(out.Pairs)
		out.MeanCoverage = stats.Mean(cov)
	}
	tbl := &Table{Title: "Fig. 9 — link transferability across colocated metros",
		Header: []string{"Pairs", "AllLocations", ">=HalfLocations", "MeanCoverage"}}
	tbl.AddRow(D(out.Pairs), F(out.FracAll), F(out.FracHalf), F(out.MeanCoverage))
	return out, tbl
}

// Fig9MeasuredResult is the measurement-based transferability study: the
// paper's actual E.4 methodology, which probes the other colocated metros
// of pairs with a measured link and classifies each outcome.
type Fig9MeasuredResult struct {
	PairsProbed   int
	Confirmed     int // outcome (1): link observed at the probed metro
	OtherMetro    int // outcomes (2-3): interconnection seen elsewhere
	Uninformative int // outcome (4): no usable data
	TransitSeen   int // outcome (5): path went via a transit
	FracAll       float64
	FracHalf      float64
}

// Fig9Measured replays Appx. E.4 with real measurements: for every
// consistently-routing pair with a measured link at the largest primary
// metro, issue traceroutes toward their other shared metros from the best
// local probes and classify the outcomes.
func Fig9Measured(h *Harness) (Fig9MeasuredResult, *Table) {
	g := h.W.G
	// Largest primary metro (the paper uses Amsterdam).
	primaries := h.W.PrimaryMetros()
	sort.Slice(primaries, func(a, b int) bool {
		return len(g.Metros[primaries[a]].Members) > len(g.Metros[primaries[b]].Members)
	})
	home := primaries[0]
	res := h.Run(home)

	// Probes indexed by metro for "best local probe" selection.
	probesAt := map[int][]int{} // metro -> AS
	for _, p := range h.W.Probes {
		probesAt[p.Metro] = append(probesAt[p.Metro], p.AS)
	}

	var out Fig9MeasuredResult
	type cover struct{ confirmed, measurable int }
	coverage := map[asgraph.Pair]*cover{}

	cons := h.P.Store.ConsistentASes(asgraph.SameMetro)
	n := len(res.Members)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := res.Members[i], res.Members[j]
			v, ok := res.Estimate.Value(a, b)
			if !ok || v < 1 { // measured at the home metro itself
				continue
			}
			if !cons[a] || !cons[b] {
				continue
			}
			shared := g.SharedMetros(a, b)
			if len(shared) < 2 {
				continue
			}
			cv := &cover{confirmed: 1, measurable: 1} // the home observation
			coverage[asgraph.MakePair(a, b)] = cv
			for _, m := range shared {
				if m == home {
					continue
				}
				// Best local probe: one at the metro, preferring the pair's
				// own ASes.
				cands := probesAt[m]
				if len(cands) == 0 {
					continue // unmeasurable location
				}
				vp := cands[0]
				for _, c := range cands {
					if c == a || c == b {
						vp = c
						break
					}
				}
				out.PairsProbed++
				cv.measurable++
				tr := h.P.Engine.RunTarget(vp, m, b, m)
				findings := h.P.Store.AddTrace(tr)
				classified := false
				for _, f := range findings {
					if f.Pair != asgraph.MakePair(a, b) {
						continue
					}
					classified = true
					switch {
					case f.Direct && f.Metro == m:
						out.Confirmed++
						cv.confirmed++
					case f.Direct:
						out.OtherMetro++
					default:
						out.TransitSeen++
					}
					break
				}
				if !classified {
					out.Uninformative++
				}
			}
		}
	}
	// Coverage fractions over measurable locations (the "balanced" score
	// of Fig. 9).
	all, half, total := 0, 0, 0
	for _, cv := range coverage {
		if cv.measurable < 2 {
			continue
		}
		total++
		frac := float64(cv.confirmed) / float64(cv.measurable)
		if frac >= 1 {
			all++
		}
		if frac >= 0.5 {
			half++
		}
	}
	if total > 0 {
		out.FracAll = float64(all) / float64(total)
		out.FracHalf = float64(half) / float64(total)
	}
	tbl := &Table{Title: "Fig. 9 (measured) — probing colocated metros of linked pairs",
		Header: []string{"Probes", "Confirmed", "OtherMetro", "Transit", "Uninformative", "AllLocFrac", "HalfLocFrac"}}
	tbl.AddRow(D(out.PairsProbed), D(out.Confirmed), D(out.OtherMetro), D(out.TransitSeen), D(out.Uninformative), F(out.FracAll), F(out.FracHalf))
	return out, tbl
}

// --- Fig. 10: controlled rank recovery ---

// Fig10Series is one strategy's RMSE trajectory over measurement rounds.
type Fig10Series struct {
	Name     string
	RMSE     []float64
	BestRank int
}

// Fig10Result bundles the controlled experiment.
type Fig10Result struct {
	TrueRank int
	Series   []Fig10Series
}

// Fig10 reruns the controlled rank-recovery experiment of Appx. E.5: a
// generated matrix with known effective rank, a visibility mask, and an
// oracle that reveals entries with per-entry probabilities. metAScritic's
// iterative estimator should drive its RMSE to a minimum at the true rank,
// while fixed-rank baselines stay flat.
func Fig10(h *Harness, n, trueRank int) (Fig10Result, *Table) {
	rng := rand.New(rand.NewSource(h.Seed + 10))
	truth := synthLowRank(n, trueRank, 0.02, rng)
	prob := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := 0.25 + 0.7*rng.Float64()
			prob.Set(i, j, p)
			prob.Set(j, i, p)
		}
	}
	makeWorld := func(seed int64) (*mat.Matrix, *mat.Mask, *rand.Rand) {
		r := rand.New(rand.NewSource(seed))
		E := mat.New(n, n)
		mask := mat.NewMask(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.25 {
					E.Set(i, j, truth.At(i, j))
					E.Set(j, i, truth.At(i, j))
					mask.Set(i, j)
				}
			}
		}
		return E, mask, r
	}

	out := Fig10Result{TrueRank: trueRank}
	rounds := trueRank * 3
	// Every strategy gets the SAME per-round oracle-query budget and is
	// scored by the SAME holdout evaluator, mirroring the equal-batch
	// comparison of Appx. E.5.
	budgetPerRound := 2 * n

	// metAScritic: targeted top-up of deficient rows at the candidate
	// rank r = round, scored at rank r; the recovered rank is the RMSE
	// minimizer (the mechanics of rank.Estimate, replayed here with the
	// unified budget and evaluator).
	{
		E, mask, r := makeWorld(h.Seed + 11)
		s := Fig10Series{Name: "metAScritic"}
		bestRMSE := math.Inf(1)
		bad, locked := 0, false
		for round := 1; round <= rounds; round++ {
			queries := 0
			for i := 0; i < n && queries < budgetPerRound; i++ {
				for mask.RowCount(i) < round+3 && queries < budgetPerRound {
					j := r.Intn(n)
					if j == i || mask.Has(i, j) {
						continue
					}
					queries++
					if r.Float64() < prob.At(i, j) {
						E.Set(i, j, truth.At(i, j))
						E.Set(j, i, truth.At(i, j))
						mask.Set(i, j)
					}
				}
			}
			rmse := holdoutRMSE(E, mask, round, r)
			s.RMSE = append(s.RMSE, rmse)
			// Same stopping semantics as the on-line estimator (§3.2):
			// the recovered rank is locked once several consecutive
			// rounds stop improving materially; the RMSE series continues
			// for the figure.
			if locked {
				continue
			}
			if rmse < bestRMSE*(1-0.05) {
				bestRMSE = rmse
				s.BestRank = round
				bad = 0
			} else {
				bad++
				if bad >= 3 {
					locked = true
				}
			}
		}
		out.Series = append(out.Series, s)
	}

	// Baselines: reveal entries at random (or by highest oracle
	// probability) under the same budget, completing at a fixed post-hoc
	// rank — they have no mechanism to estimate the rank on-line.
	for _, mode := range []string{"Random", "Greedy"} {
		E, mask, r := makeWorld(h.Seed + 12)
		fixed := 2 * trueRank
		s := Fig10Series{Name: mode, BestRank: fixed}
		for round := 1; round <= rounds; round++ {
			queries := 0
			for queries < budgetPerRound && mask.Count() < n*(n-1) {
				var i, j int
				if mode == "Random" {
					i, j = r.Intn(n), r.Intn(n)
				} else {
					// Greedy: bias toward high-probability entries.
					i, j = r.Intn(n), r.Intn(n)
					for t := 0; t < 3; t++ {
						i2, j2 := r.Intn(n), r.Intn(n)
						if prob.At(i2, j2) > prob.At(i, j) {
							i, j = i2, j2
						}
					}
				}
				if i == j || mask.Has(i, j) {
					continue
				}
				queries++
				if r.Float64() < prob.At(i, j) {
					E.Set(i, j, truth.At(i, j))
					E.Set(j, i, truth.At(i, j))
					mask.Set(i, j)
				}
			}
			s.RMSE = append(s.RMSE, holdoutRMSE(E, mask, fixed, r))
		}
		out.Series = append(out.Series, s)
	}

	tbl := &Table{Title: fmt.Sprintf("Fig. 10 — controlled rank recovery (true rank %d)", trueRank),
		Header: []string{"Strategy", "FinalRMSE", "MinRMSE", "RankAtMin/Best"}}
	for _, s := range out.Series {
		minR := math.Inf(1)
		argmin := 0
		for k, v := range s.RMSE {
			if v < minR {
				minR = v
				argmin = k + 1
			}
		}
		final := 0.0
		if len(s.RMSE) > 0 {
			final = s.RMSE[len(s.RMSE)-1]
		}
		_ = argmin
		tbl.AddRow(s.Name, F(final), F(minR), D(s.BestRank))
	}
	return out, tbl
}

func synthLowRank(n, r int, noise float64, rng *rand.Rand) *mat.Matrix {
	f := mat.New(n, r)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64() / math.Sqrt(float64(r))
	}
	m := mat.Mul(f, f.T())
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := math.Tanh(m.At(i, j)) + noise*rng.NormFloat64()
			if v > 1 {
				v = 1
			}
			if v < -1 {
				v = -1
			}
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func holdoutRMSE(E *mat.Matrix, mask *mat.Mask, r int, rng *rand.Rand) float64 {
	var entries [][2]int
	mask.Entries(func(i, j int) {
		if i != j {
			entries = append(entries, [2]int{i, j})
		}
	})
	if len(entries) < 10 {
		return 1
	}
	rng.Shuffle(len(entries), func(a, b int) { entries[a], entries[b] = entries[b], entries[a] })
	hold := entries[:len(entries)/10]
	return math.Sqrt(als.HoldoutMSE(E, mask, nil, hold, als.Options{Rank: r, Lambda: 0.05, Iterations: 10, Seed: 1}))
}

// --- Fig. 11: per-batch discovery ---

// Fig11 drives each selection strategy on the Sydney-like metro and
// reports per-batch edge discovery and rows above the rank threshold.
func Fig11(h *Harness) (map[string][]BatchStat, *Table) {
	metro := h.W.G.MetroOfName("Sydney").Index
	msRes := h.Run(metro)
	budget := msRes.Measurements
	if budget < 200 {
		budget = 200
	}
	batch := budget / 6
	pickers := []baseline.Picker{
		MetascriticPicker{Eps: 0.1},
		baseline.Greedy{},
		baseline.IXPMapped{},
		baseline.Random{},
		baseline.OnlyExploration{},
		baseline.OnlyExploitation{},
	}
	out := map[string][]BatchStat{}
	tbl := &Table{Title: "Fig. 11 — discovery per batch (Sydney)",
		Header: []string{"Strategy", "FinalEntries", "FinalLinks", fmt.Sprintf("RowsAboveRank(%d)", msRes.Rank)}}
	for _, p := range pickers {
		run := h.RunStrategy(metro, p, budget, batch, msRes.Rank, msRes.Rank, h.Seed+111)
		out[p.Name()] = run.Batches
		last := BatchStat{}
		if len(run.Batches) > 0 {
			last = run.Batches[len(run.Batches)-1]
		}
		tbl.AddRow(p.Name(), D(last.Entries), D(last.LinksFound), D(last.RowsAboveK))
	}
	return out, tbl
}

// --- Fig. 12: visible entries vs accuracy ---

// Fig12Bucket groups rows by observed-entry count relative to the rank.
type Fig12Bucket struct {
	Label    string
	Rows     int
	Accuracy float64 // fraction of held-out entries correctly signed
}

// Fig12 relates the number of measured entries in a row to prediction
// accuracy (rows below the estimated rank misclassify far more).
func Fig12(h *Harness) ([]Fig12Bucket, *Table) {
	type acc struct{ good, total int }
	buckets := map[int]*acc{} // bucket by entries/rank ratio quartile
	rowsIn := map[int]map[int]bool{}
	label := func(b int) string {
		switch b {
		case 0:
			return "< rank/2"
		case 1:
			return "rank/2..rank"
		case 2:
			return "rank..2*rank"
		default:
			return ">= 2*rank"
		}
	}
	for _, res := range h.RunPrimaries() {
		ev := h.EvaluateSplit(res, Stratified, 0.2, h.Seed+int64(res.Metro)+12)
		// Rebuild holdout with the same seed to know the rows.
		rng := rand.New(rand.NewSource(h.Seed + int64(res.Metro) + 12))
		holdout := buildHoldout(res.Estimate.Mask, Stratified, 0.2, rng)
		r := res.Rank
		for k, hh := range holdout {
			cnt := res.Estimate.Mask.RowCount(hh[0])
			var b int
			switch {
			case cnt < r/2:
				b = 0
			case cnt < r:
				b = 1
			case cnt < 2*r:
				b = 2
			default:
				b = 3
			}
			if buckets[b] == nil {
				buckets[b] = &acc{}
				rowsIn[b] = map[int]bool{}
			}
			rowsIn[b][res.Metro*100000+hh[0]] = true
			buckets[b].total++
			if (ev.Scores[k] > 0) == ev.Labels[k] {
				buckets[b].good++
			}
		}
	}
	var out []Fig12Bucket
	tbl := &Table{Title: "Fig. 12 — measured entries vs accuracy",
		Header: []string{"Bucket", "Rows", "HeldEntries", "Accuracy"}}
	for b := 0; b < 4; b++ {
		a := buckets[b]
		if a == nil {
			continue
		}
		fb := Fig12Bucket{Label: label(b), Rows: len(rowsIn[b]), Accuracy: float64(a.good) / float64(a.total)}
		out = append(out, fb)
		tbl.AddRow(fb.Label, D(fb.Rows), D(a.total), F(fb.Accuracy))
	}
	return out, tbl
}

// --- Fig. 13 / Fig. 14: Shapley explanations ---

// Fig13 fits the ridge surrogate over pair features and summarizes global
// feature importance; Fig14 explains one high-confidence inferred link.
func Fig13And14(h *Harness) ([]explain.Summary, string, *Table) {
	metro := h.W.G.MetroOfName("Sydney").Index
	res := h.Run(metro)
	pf := explain.NewPairFeaturizer(h.W.G, res.Estimate, func(a, b int) bool {
		return h.W.SameFacility(a, b, metro)
	})
	n := len(res.Members)
	rng := rand.New(rand.NewSource(h.Seed + 13))
	var X [][]float64
	var y []float64
	var pairs [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() > 0.4 && n > 60 {
				continue // sample pairs for tractability
			}
			X = append(X, pf.Features(i, j))
			y = append(y, res.Ratings.At(i, j))
			pairs = append(pairs, [2]int{i, j})
		}
	}
	sur := explain.FitSurrogate(X, y, 1.0)
	var phis [][]float64
	for _, x := range X {
		phis = append(phis, sur.Shapley(x))
	}
	summary := explain.Summarize(explain.FeatureNames, phis)

	// Fig. 14: pick the highest-rated unmeasured pair and explain it.
	bestK := -1
	bestV := -2.0
	for k, pr := range pairs {
		if res.Estimate.Mask.Has(pr[0], pr[1]) {
			continue
		}
		if v := res.Ratings.At(pr[0], pr[1]); v > bestV {
			bestV = v
			bestK = k
		}
	}
	force := ""
	if bestK >= 0 {
		attrs := explain.Force(explain.FeatureNames, X[bestK], phis[bestK])
		force = explain.FormatForce(sur.Baseline, sur.Predict(X[bestK]), attrs, 6)
	}

	tbl := &Table{Title: "Fig. 13 — Shapley feature importance (Sydney)",
		Header: []string{"Feature", "Mean|phi|"}}
	for k, s := range summary {
		if k >= 12 {
			break
		}
		tbl.AddRow(s.Feature, fmt.Sprintf("%.4f", s.MeanAbsPhi))
	}
	return summary, force, tbl
}

// --- Appx. E.3: measurement efficiency ---

// E3Row compares measurement budgets.
type E3Row struct {
	Metro            string
	Issued           int
	Exhaustive       int
	TheoreticalBound int // O(n r log n)
	Ratio            float64
}

// E3 compares metAScritic's issued measurements to the exhaustive
// campaign (5 traceroutes per entry) and the theoretical O(n·r·log n)
// bound.
func E3(h *Harness) ([]E3Row, *Table) {
	var rows []E3Row
	tbl := &Table{Title: "Appx. E.3 — measurement efficiency",
		Header: []string{"Metro", "Issued", "Exhaustive", "n·r·log(n)", "Issued/Exhaustive"}}
	for _, res := range h.RunPrimaries() {
		n := len(res.Members)
		ex := 5 * n * (n - 1) / 2
		bound := int(float64(n*res.Rank) * math.Log(float64(n)))
		r := E3Row{
			Metro: h.MetroName(res.Metro), Issued: res.Measurements,
			Exhaustive: ex, TheoreticalBound: bound,
			Ratio: float64(res.Measurements) / float64(ex),
		}
		rows = append(rows, r)
		tbl.AddRow(r.Metro, D(r.Issued), D(r.Exhaustive), D(r.TheoreticalBound), F(r.Ratio))
	}
	return rows, tbl
}

// --- Appx. E.7: non-existence inference ablation ---

// E7Row is one negative-inference policy's outcome.
type E7Row struct {
	Policy        string
	Entries       int     // observed entries in E_m
	WrongNegative float64 // fraction of negative entries that are real links
	Precision     float64 // cloud-dataset precision after completion
	Recall        float64
}

// E7 compares the four non-existence policies of Appx. E.7 on the largest
// primary metro, scoring against the cloud ground-truth rows.
func E7(h *Harness) ([]E7Row, *Table) {
	// Pick the largest primary metro.
	primaries := h.W.PrimaryMetros()
	sort.Slice(primaries, func(a, b int) bool {
		return len(h.W.G.Metros[primaries[a]].Members) > len(h.W.G.Metros[primaries[b]].Members)
	})
	metro := primaries[0]
	res := h.Run(metro) // ensures targeted traces are in the shared store
	members := res.Members
	features := metascritic.BuildFeatures(h.W.G, members)
	truth := h.W.Truths[metro]

	policies := []struct {
		name string
		pol  obs.NegativePolicy
	}{
		{"0-negative", obs.NegNone},
		{"Full negative", obs.NegFull},
		{"Inconsistency-oblivious", obs.NegWellPositioned},
		{"metAScritic", obs.NegMetascritic},
	}
	var rows []E7Row
	tbl := &Table{Title: "Appx. E.7 — non-existence inference policies",
		Header: []string{"Policy", "Entries", "WrongNegFrac", "CloudPrecision", "CloudRecall"}}
	for _, p := range policies {
		est := h.P.Store.Estimate(metro, members, p.pol)
		wrong, negs := 0, 0
		n := len(members)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if !est.Mask.Has(i, j) || est.E.At(i, j) >= 0 {
					continue
				}
				negs++
				if truth.M.At(i, j) > 0.5 {
					wrong++
				}
			}
		}
		completed := metascritic.CompleteWith(est.E, est.Mask, features, res.Rank, res.Lambda, res.FeatureWeight)
		// Cloud rows: hypergiant members.
		var scores []float64
		var labels []bool
		for _, ai := range members {
			if h.W.G.ASes[ai].Class != asgraph.Hypergiant {
				continue
			}
			hi := est.Index[ai]
			for j := 0; j < n; j++ {
				if j == hi {
					continue
				}
				scores = append(scores, completed.At(hi, j))
				labels = append(labels, truth.M.At(hi, j) > 0.5)
			}
		}
		row := E7Row{Policy: p.name, Entries: est.Mask.Count() / 2}
		if negs > 0 {
			row.WrongNegative = float64(wrong) / float64(negs)
		}
		if len(scores) > 0 {
			thr, _ := stats.BestF1Threshold(scores, labels)
			c := stats.Confuse(scores, labels, thr)
			row.Precision, row.Recall = c.Precision(), c.Recall()
		}
		rows = append(rows, row)
		tbl.AddRow(row.Policy, D(row.Entries), F(row.WrongNegative), F(row.Precision), F(row.Recall))
	}
	return rows, tbl
}
