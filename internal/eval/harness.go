// Package eval contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation (§4, §6 and the appendices), plus
// the train/test splits and external-validation datasets they rely on. See
// DESIGN.md for the experiment index.
package eval

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"metascritic"
	"metascritic/internal/asgraph"
	"metascritic/internal/bgp"
	"metascritic/internal/engine"
	"metascritic/internal/igdb"
	"metascritic/internal/mat"
	"metascritic/internal/netsim"
	"metascritic/internal/stats"
)

// Harness owns a generated world and caches per-metro metAScritic runs so
// that several experiments can share them.
type Harness struct {
	W    *netsim.World
	P    *metascritic.Pipeline
	Cfg  metascritic.Config
	Seed int64

	results map[int]*metascritic.Result
	order   []int // metros in run order (hierarchical priors flow along it)

	publicPlan [][3]int // (vpAS, vpMetro, dst) public seed traceroutes

	pubView   map[asgraph.Pair]bool
	pubCache  *bgp.RouteCache
	pubOnly   map[int]*metascritic.Result
	commLinks map[int]map[asgraph.Pair]bool
	geo       *igdb.Database
}

// geoDB lazily builds the public (incomplete) footprint database.
func (h *Harness) geoDB() *igdb.Database {
	if h.geo == nil {
		h.geo = igdb.Build(h.W, 0.15)
	}
	return h.geo
}

// Options configures a harness.
type Options struct {
	// Scale shrinks the default metro sizes (1.0 = paper-like hundreds of
	// ASes per metro; tests use ~0.1).
	Scale float64
	Seed  int64
	// PublicPerProbe is the number of seed public traceroutes per probe.
	PublicPerProbe int
	// Budget caps targeted traceroutes per metro.
	Budget int
	// MaxRank caps the effective-rank search.
	MaxRank int
}

// DefaultOptions returns laptop-scale experiment settings.
func DefaultOptions() Options {
	return Options{Scale: 0.2, Seed: 1, PublicPerProbe: 20, Budget: 8000, MaxRank: 24}
}

// NewHarness generates the world and seeds public measurements.
func NewHarness(opt Options) *Harness {
	if opt.Scale == 0 {
		opt.Scale = 0.2
	}
	if opt.PublicPerProbe == 0 {
		opt.PublicPerProbe = 20
	}
	if opt.Budget == 0 {
		opt.Budget = 8000
	}
	if opt.MaxRank == 0 {
		opt.MaxRank = 24
	}
	w := netsim.Generate(netsim.Config{Seed: opt.Seed, Metros: netsim.DefaultMetros(opt.Scale)})
	p := metascritic.NewPipeline(w)
	// Build an explicit public-measurement plan (instead of calling
	// SeedPublicMeasurements) so strategy comparisons can replay the
	// exact same public seed into fresh observation stores.
	rng := rand.New(rand.NewSource(opt.Seed + 1000))
	var plan [][3]int
	for _, pr := range w.Probes {
		for k := 0; k < opt.PublicPerProbe; k++ {
			dst := rng.Intn(w.G.N())
			if dst == pr.AS {
				continue
			}
			plan = append(plan, [3]int{pr.AS, pr.Metro, dst})
		}
	}
	for _, t := range plan {
		p.Store.AddTrace(p.Engine.Run(t[0], t[1], t[2]))
	}

	cfg := metascritic.DefaultConfig()
	cfg.MaxMeasurements = opt.Budget
	cfg.BatchSize = 200
	cfg.Rank.MaxRank = opt.MaxRank
	cfg.Rank.Iterations = 8
	cfg.Seed = opt.Seed

	return &Harness{W: w, P: p, Cfg: cfg, Seed: opt.Seed, publicPlan: plan, results: map[int]*metascritic.Result{}}
}

// Run executes (or returns the cached) metAScritic result for a metro.
// Strategy priors learned at previously-run metros are pooled into the new
// metro's initialization (Appx. D.6).
func (h *Harness) Run(metro int) *metascritic.Result {
	if r, ok := h.results[metro]; ok {
		return r
	}
	cfg := h.Cfg
	cfg.Seed = h.Seed + int64(metro)
	if len(h.order) > 0 {
		var rates [][144]float64
		for _, m := range h.order {
			rates = append(rates, h.results[m].StrategyRates)
		}
		pooled := poolRates(rates)
		cfg.Priors = &pooled
	}
	r, err := h.P.Run(context.Background(), metro, cfg)
	if err != nil {
		// The harness API predates error returns and its configs come from
		// DefaultOptions, so a failure here is a programming error.
		panic(fmt.Sprintf("eval: run metro %d: %v", metro, err))
	}
	h.results[metro] = r
	h.order = append(h.order, metro)
	return r
}

// RunPrimariesParallel runs all (not yet cached) study metros through the
// concurrent engine with cross-metro prior sharing, adopts the results
// into the harness cache, and returns the batch statistics. Experiments
// that later ask for these metros reuse the cached results, so warming
// the cache this way parallelizes the dominant cost of a full experiment
// sweep. Unlike sequential Run, each metro measures against an isolated
// snapshot of the public evidence (the engine's determinism contract),
// so absolute numbers can differ slightly from a sequentially warmed
// cache.
func (h *Harness) RunPrimariesParallel(ctx context.Context, workers int) (engine.RunStats, error) {
	metros := h.W.PrimaryMetros()
	sort.Ints(metros)
	var todo []int
	for _, m := range metros {
		if _, ok := h.results[m]; !ok {
			todo = append(todo, m)
		}
	}
	if len(todo) == 0 {
		return engine.RunStats{}, nil
	}
	eng := engine.New(h.P)
	if len(h.order) > 0 {
		var rates [][144]float64
		for _, m := range h.order {
			rates = append(rates, h.results[m].StrategyRates)
		}
		eng.Priors().Add(poolRates(rates))
	}
	mr, err := eng.RunAll(ctx, engine.Config{
		Base:        h.Cfg,
		Metros:      todo,
		Workers:     workers,
		SharePriors: true,
	})
	if err != nil {
		return engine.RunStats{}, fmt.Errorf("eval: parallel primaries: %w", err)
	}
	for _, m := range mr.Metros {
		h.results[m] = mr.Results[m]
		h.order = append(h.order, m)
	}
	return mr.Stats, nil
}

func poolRates(rates [][144]float64) [144]float64 {
	var out [144]float64
	for _, r := range rates {
		for i := range out {
			out[i] += r[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(rates))
	}
	return out
}

// RunPrimaries runs all six study metros in deterministic order.
func (h *Harness) RunPrimaries() []*metascritic.Result {
	metros := h.W.PrimaryMetros()
	sort.Ints(metros)
	out := make([]*metascritic.Result, 0, len(metros))
	for _, m := range metros {
		out = append(out, h.Run(m))
	}
	return out
}

// MetroName returns the metro's display name.
func (h *Harness) MetroName(m int) string { return h.W.G.Metros[m].Name }

// TruthLabels extracts ground-truth labels and completed scores for all
// member pairs of a result.
func (h *Harness) TruthLabels(res *metascritic.Result) (scores []float64, labels []bool) {
	truth := h.W.Truths[res.Metro]
	n := len(res.Members)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			scores = append(scores, res.Ratings.At(i, j))
			labels = append(labels, truth.M.At(i, j) > 0.5)
		}
	}
	return scores, labels
}

// --- splits (§4.1) ---

// SplitKind selects a holdout scheme.
type SplitKind int

// Split kinds.
const (
	// Stratified removes 20% of the observed entries of every row.
	Stratified SplitKind = iota
	// RandomSplit removes 20% of the observed entries uniformly.
	RandomSplit
	// CompletelyOut removes whole random rows until 20% of observed
	// entries are gone (simulating ASes without usable vantage points).
	CompletelyOut
)

func (k SplitKind) String() string {
	switch k {
	case Stratified:
		return "Stratified"
	case RandomSplit:
		return "Random"
	default:
		return "Completely Out"
	}
}

// SplitEval is the outcome of evaluating a completion under a split.
type SplitEval struct {
	Kind      SplitKind
	Scores    []float64 // completed rating per held-out entry
	Labels    []bool    // measured sign of the held-out entry
	AUPRC     float64
	Precision float64 // at the F-maximizing threshold
	Recall    float64
}

// EvaluateSplit removes entries from the result's measured estimate
// according to the split, re-completes, and scores the held-out entries
// (labels = measured sign, the paper's cross-validation).
func (h *Harness) EvaluateSplit(res *metascritic.Result, kind SplitKind, frac float64, seed int64) SplitEval {
	est := res.Estimate
	rng := rand.New(rand.NewSource(seed))
	holdout := buildHoldout(est.Mask, kind, frac, rng)
	features := metascritic.BuildFeatures(h.W.G, res.Members)
	completed := completeLike(res, est.E, est.Mask, holdout, features)

	ev := SplitEval{Kind: kind}
	for _, hh := range holdout {
		ev.Scores = append(ev.Scores, completed.At(hh[0], hh[1]))
		ev.Labels = append(ev.Labels, est.E.At(hh[0], hh[1]) > 0)
	}
	if len(ev.Scores) == 0 {
		return ev
	}
	ev.AUPRC = stats.AUPRC(ev.Scores, ev.Labels)
	thr, _ := stats.BestF1Threshold(ev.Scores, ev.Labels)
	c := stats.Confuse(ev.Scores, ev.Labels, thr)
	ev.Precision = c.Precision()
	ev.Recall = c.Recall()
	return ev
}

// SplitSpec names one cross-validation evaluation: a holdout scheme, the
// fraction of entries to remove, and the seed of the draw.
type SplitSpec struct {
	Kind SplitKind
	Frac float64
	Seed int64
}

// EvaluateSplits scores every spec against the same result on a bounded
// worker pool and returns the evaluations in spec order. Each evaluation is
// an independent holdout draw plus a completion (completeLike), so they
// parallelize the same way the measurement fan-out does: pure work fans
// out, results land in a spec-indexed slice, and the output is byte-
// identical to calling EvaluateSplit sequentially for each spec.
func (h *Harness) EvaluateSplits(res *metascritic.Result, specs []SplitSpec) []SplitEval {
	out := make([]SplitEval, len(specs))
	if len(specs) == 0 {
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(specs) {
		workers = len(specs)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			for i := start; i < len(specs); i += workers {
				s := specs[i]
				out[i] = h.EvaluateSplit(res, s.Kind, s.Frac, s.Seed)
			}
		}(w)
	}
	wg.Wait()
	return out
}

// completeLike re-runs the final completion with the result's
// hyperparameters, with the holdout entries overlaid out of the mask.
func completeLike(res *metascritic.Result, E *mat.Matrix, mask *mat.Mask, holdout [][2]int, features *mat.Matrix) *mat.Matrix {
	return metascritic.CompleteWithout(E, mask, features, holdout, res.Rank, res.Lambda, res.FeatureWeight)
}

func buildHoldout(mask *mat.Mask, kind SplitKind, frac float64, rng *rand.Rand) [][2]int {
	n := mask.N()
	var all [][2]int
	mask.Entries(func(i, j int) {
		if i != j {
			all = append(all, [2]int{i, j})
		}
	})
	switch kind {
	case Stratified:
		var out [][2]int
		taken := map[[2]int]bool{}
		for i := 0; i < n; i++ {
			entries := mask.RowEntries(i)
			rng.Shuffle(len(entries), func(a, b int) { entries[a], entries[b] = entries[b], entries[a] })
			k := int(frac * float64(len(entries)))
			picked := 0
			for _, j := range entries {
				if picked >= k {
					break
				}
				if i == j {
					continue
				}
				key := [2]int{min(i, j), max(i, j)}
				if taken[key] {
					continue
				}
				taken[key] = true
				out = append(out, key)
				picked++
			}
		}
		return out
	case RandomSplit:
		rng.Shuffle(len(all), func(a, b int) { all[a], all[b] = all[b], all[a] })
		k := int(frac * float64(len(all)))
		return all[:k]
	default: // CompletelyOut
		rows := rng.Perm(n)
		target := int(frac * float64(len(all)))
		removedRows := map[int]bool{}
		var out [][2]int
		for _, r := range rows {
			if len(out) >= target {
				break
			}
			removedRows[r] = true
			for _, j := range mask.RowEntries(r) {
				if r == j {
					continue
				}
				key := [2]int{min(r, j), max(r, j)}
				// Avoid double-adding when both rows are removed.
				dup := false
				for _, e := range out {
					if e == key {
						dup = true
						break
					}
				}
				if !dup {
					out = append(out, key)
				}
			}
		}
		return out
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- text table rendering ---

// Table is a simple text table for experiment outputs.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// TitleText implements report.Table.
func (t *Table) TitleText() string { return t.Title }

// HeaderRow implements report.Table.
func (t *Table) HeaderRow() []string { return t.Header }

// DataRows implements report.Table.
func (t *Table) DataRows() [][]string { return t.Rows }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, hcell := range t.Header {
		widths[i] = len(hcell)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float at 3 decimals for tables.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// D formats an int for tables.
func D(v int) string { return fmt.Sprintf("%d", v) }
