package eval

import (
	"context"
	"fmt"
	"math/rand"

	"metascritic"
	"metascritic/internal/asgraph"
	"metascritic/internal/obs"
	"metascritic/internal/probe"
	"metascritic/internal/stats"
)

// The ablations below probe the design choices DESIGN.md calls out: the
// exploration fraction ε, the feature weight of the hybrid recommender,
// geographic transferability, and the hierarchical cross-metro prior.

// EpsilonAblationRow is one ε setting's outcome.
type EpsilonAblationRow struct {
	Epsilon float64
	FScore  float64
	Entries int
}

// AblationEpsilon sweeps the exploration fraction of the batch selector on
// the Sydney-like metro (§4.2 justifies ε = 0.1 empirically).
func AblationEpsilon(h *Harness) ([]EpsilonAblationRow, *Table) {
	metro := h.W.G.MetroOfName("Sydney").Index
	msRes := h.Run(metro)
	budget := msRes.Measurements
	if budget < 200 {
		budget = 200
	}
	batch := budget / 8
	if batch < 20 {
		batch = 20
	}
	tbl := &Table{Title: "Ablation — exploration fraction ε",
		Header: []string{"ε", "F-score", "Entries"}}
	var rows []EpsilonAblationRow
	for _, eps := range []float64{0, 0.1, 0.3, 1.0} {
		run := h.RunStrategy(metro, MetascriticPicker{Eps: eps}, budget, batch, 0, msRes.Rank, h.Seed+201)
		entries := 0
		if len(run.Batches) > 0 {
			entries = run.Batches[len(run.Batches)-1].Entries
		}
		rows = append(rows, EpsilonAblationRow{Epsilon: eps, FScore: run.FScore, Entries: entries})
		tbl.AddRow(fmt.Sprintf("%.1f", eps), F(run.FScore), D(entries))
	}
	return rows, tbl
}

// FeatureWeightRow is one feature-weight setting's outcome.
type FeatureWeightRow struct {
	Weight        float64
	StratAUPRC    float64
	ComplOutAUPRC float64
}

// AblationFeatureWeight sweeps the features-vs-links balance of the hybrid
// recommender (§3.1): features should matter little when entries abound
// (stratified split) and a lot for rows with no entries (completely-out).
func AblationFeatureWeight(h *Harness) ([]FeatureWeightRow, *Table) {
	res := h.Run(h.W.PrimaryMetros()[0])
	est := res.Estimate
	features := metascritic.BuildFeatures(h.W.G, res.Members)
	tbl := &Table{Title: "Ablation — hybrid feature weight",
		Header: []string{"Weight", "Stratified AUPRC", "CompletelyOut AUPRC"}}
	var rows []FeatureWeightRow
	for _, wgt := range []float64{0, 0.2, 0.35, 0.6, 1.0} {
		row := FeatureWeightRow{Weight: wgt}
		for _, kind := range []SplitKind{Stratified, CompletelyOut} {
			rng := rand.New(rand.NewSource(h.Seed + 301))
			holdout := buildHoldout(est.Mask, kind, 0.2, rng)
			completed := metascritic.CompleteWithout(est.E, est.Mask, features, holdout, res.Rank, res.Lambda, wgt)
			var scores []float64
			var labels []bool
			for _, hh := range holdout {
				scores = append(scores, completed.At(hh[0], hh[1]))
				labels = append(labels, est.E.At(hh[0], hh[1]) > 0)
			}
			auprc := stats.AUPRC(scores, labels)
			if kind == Stratified {
				row.StratAUPRC = auprc
			} else {
				row.ComplOutAUPRC = auprc
			}
		}
		rows = append(rows, row)
		tbl.AddRow(fmt.Sprintf("%.2f", wgt), F(row.StratAUPRC), F(row.ComplOutAUPRC))
	}
	return rows, tbl
}

// TransferAblationRow compares estimates with and without geographic
// transferability.
type TransferAblationRow struct {
	Metro           string
	EntriesLocal    int
	EntriesTransfer int
	FLocal          float64
	FTransfer       float64
}

// AblationTransferability disables the cross-metro evidence transfer of
// §3.4 and measures how many observed entries (and how much completion
// quality) it contributes.
func AblationTransferability(h *Harness) ([]TransferAblationRow, *Table) {
	tbl := &Table{Title: "Ablation — geographic transferability",
		Header: []string{"Metro", "Entries(local)", "Entries(transfer)", "F(local)", "F(transfer)"}}
	var rows []TransferAblationRow
	for _, res := range h.RunPrimaries() {
		members := res.Members
		features := metascritic.BuildFeatures(h.W.G, members)
		truth := h.W.Truths[res.Metro]
		scoreEst := func(est *obs.Estimate) float64 {
			completed := metascritic.CompleteWith(est.E, est.Mask, features, res.Rank, res.Lambda, res.FeatureWeight)
			var scores []float64
			var labels []bool
			n := len(members)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					scores = append(scores, completed.At(i, j))
					labels = append(labels, truth.M.At(i, j) > 0.5)
				}
			}
			_, f := stats.BestF1Threshold(scores, labels)
			return f
		}
		local := h.P.Store.EstimateScoped(res.Metro, members, obs.NegMetascritic, asgraph.SameMetro)
		transfer := h.P.Store.Estimate(res.Metro, members, obs.NegMetascritic)
		row := TransferAblationRow{
			Metro:           h.MetroName(res.Metro),
			EntriesLocal:    local.Mask.Count() / 2,
			EntriesTransfer: transfer.Mask.Count() / 2,
			FLocal:          scoreEst(local),
			FTransfer:       scoreEst(transfer),
		}
		rows = append(rows, row)
		tbl.AddRow(row.Metro, D(row.EntriesLocal), D(row.EntriesTransfer), F(row.FLocal), F(row.FTransfer))
	}
	return rows, tbl
}

// PriorAblationRow compares bootstrap cost with and without cross-metro
// priors.
type PriorAblationRow struct {
	Variant    string
	Bootstrap  int     // bootstrap measurements issued
	InformRate float64 // informative fraction of targeted measurements
	Entries    int
}

// AblationHierarchicalPrior runs a fresh metro with and without priors
// pooled from the other metros (Appx. D.6): priors should cut bootstrap
// cost (the paper reports ~6× fewer initialization measurements) without
// hurting the informative rate.
func AblationHierarchicalPrior(h *Harness) ([]PriorAblationRow, *Table) {
	// Use a secondary metro not among the primaries so its store history
	// is limited to public + other metros' targeted traces.
	target := -1
	for mi, ms := range h.W.Cfg.Metros {
		if !ms.Primary && len(h.W.G.Metros[mi].Members) >= 20 {
			target = mi
			break
		}
	}
	if target == -1 {
		target = h.W.PrimaryMetros()[0]
	}
	// Pool priors from all primary runs.
	var rates [][probe.NumStrategies]float64
	for _, res := range h.RunPrimaries() {
		rates = append(rates, res.StrategyRates)
	}
	pooled := probe.PoolPriors(rates...)

	runVariant := func(name string, priors *[probe.NumStrategies]float64) PriorAblationRow {
		pipe := metascritic.NewPipeline(h.W)
		for _, t := range h.publicPlan {
			pipe.Store.AddTrace(pipe.Engine.Run(t[0], t[1], t[2]))
		}
		cfg := h.Cfg
		cfg.Seed = h.Seed + 401
		cfg.MaxMeasurements = 2500
		cfg.Priors = priors
		res, err := pipe.Run(context.Background(), target, cfg)
		if err != nil {
			// Ablation configs derive from the harness defaults; a failure
			// here is a programming error, matching Harness.Run.
			panic(fmt.Sprintf("eval: prior ablation %s: %v", name, err))
		}
		row := PriorAblationRow{Variant: name}
		inform := 0
		for _, c := range res.Calibrations {
			if c.Exploration {
				row.Bootstrap++ // bootstrap probes are tagged exploration
				continue
			}
			if c.Informative {
				inform++
			}
		}
		targeted := len(res.Calibrations) - row.Bootstrap
		if targeted > 0 {
			row.InformRate = float64(inform) / float64(targeted)
		}
		row.Entries = res.Estimate.Mask.Count() / 2
		return row
	}

	rows := []PriorAblationRow{
		runVariant("No pooling", nil),
		runVariant("Hierarchical prior", &pooled),
	}
	tbl := &Table{Title: "Ablation — hierarchical cross-metro prior (Appx. D.6)",
		Header: []string{"Variant", "BootstrapProbes", "InformativeRate", "Entries"}}
	for _, r := range rows {
		tbl.AddRow(r.Variant, D(r.Bootstrap), F(r.InformRate), D(r.Entries))
	}
	return rows, tbl
}
