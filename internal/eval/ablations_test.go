package eval

import (
	"testing"
)

func TestAblationEpsilon(t *testing.T) {
	h := testHarness(t)
	rows, tbl := AblationEpsilon(h)
	if len(rows) != 4 {
		t.Fatalf("want 4 ε settings")
	}
	for _, r := range rows {
		if r.FScore < 0 || r.FScore > 1 {
			t.Fatalf("F out of range: %+v", r)
		}
		if r.Entries <= 0 {
			t.Fatalf("no entries collected at ε=%.1f", r.Epsilon)
		}
	}
	if tbl.String() == "" {
		t.Fatalf("empty table")
	}
}

func TestAblationFeatureWeight(t *testing.T) {
	h := testHarness(t)
	rows, _ := AblationFeatureWeight(h)
	if len(rows) != 5 {
		t.Fatalf("want 5 weights")
	}
	// Features must help the completely-out split: the best weighted
	// variant should beat the no-features variant.
	base := rows[0]
	best := base.ComplOutAUPRC
	for _, r := range rows[1:] {
		if r.ComplOutAUPRC > best {
			best = r.ComplOutAUPRC
		}
	}
	if best < base.ComplOutAUPRC {
		t.Fatalf("feature weights should help completely-out rows")
	}
	for _, r := range rows {
		if r.StratAUPRC < 0 || r.StratAUPRC > 1 || r.ComplOutAUPRC < 0 || r.ComplOutAUPRC > 1 {
			t.Fatalf("AUPRC out of range: %+v", r)
		}
	}
}

func TestAblationTransferability(t *testing.T) {
	h := testHarness(t)
	rows, _ := AblationTransferability(h)
	if len(rows) != 6 {
		t.Fatalf("want 6 metros")
	}
	for _, r := range rows {
		// Transferability can only add entries.
		if r.EntriesTransfer < r.EntriesLocal {
			t.Fatalf("%s: transfer lost entries (%d < %d)", r.Metro, r.EntriesTransfer, r.EntriesLocal)
		}
		if r.FTransfer < 0 || r.FTransfer > 1 {
			t.Fatalf("F out of range")
		}
	}
	// Overall, transferred evidence should not hurt completion quality.
	var fl, ft float64
	for _, r := range rows {
		fl += r.FLocal
		ft += r.FTransfer
	}
	if ft < fl-0.3 {
		t.Fatalf("transferability materially hurt quality: %v vs %v", ft/6, fl/6)
	}
}

func TestAblationHierarchicalPrior(t *testing.T) {
	h := testHarness(t)
	rows, _ := AblationHierarchicalPrior(h)
	if len(rows) != 2 {
		t.Fatalf("want 2 variants")
	}
	noPool, prior := rows[0], rows[1]
	// The prior variant runs a fifth of the bootstrap probes.
	if prior.Bootstrap >= noPool.Bootstrap {
		t.Fatalf("hierarchical prior should cut bootstrap cost: %d vs %d", prior.Bootstrap, noPool.Bootstrap)
	}
	if noPool.Bootstrap == 0 {
		t.Fatalf("no-pooling variant issued no bootstrap probes")
	}
	// Informative rate must not collapse without the bootstrap.
	if prior.InformRate < noPool.InformRate*0.3 {
		t.Fatalf("prior variant informative rate collapsed: %v vs %v", prior.InformRate, noPool.InformRate)
	}
}

func TestFig9Measured(t *testing.T) {
	h := testHarness(t)
	res, tbl := Fig9Measured(h)
	if res.PairsProbed == 0 {
		t.Skip("no multi-metro linked pairs to probe at this scale")
	}
	total := res.Confirmed + res.OtherMetro + res.TransitSeen + res.Uninformative
	// Confirmed counts include the home observation; probe-outcome sum
	// must cover every probe issued.
	if total < res.PairsProbed {
		t.Fatalf("outcomes %d < probes %d", total, res.PairsProbed)
	}
	if res.FracHalf < res.FracAll {
		t.Fatalf("fraction ordering violated: %+v", res)
	}
	if res.FracAll < 0 || res.FracHalf > 1 {
		t.Fatalf("fractions out of range: %+v", res)
	}
	if tbl.String() == "" {
		t.Fatalf("empty table")
	}
}
