package eval

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"metascritic"
	"metascritic/internal/asgraph"
	"metascritic/internal/bgp"
	"metascritic/internal/stats"
)

// TrueTopology returns the BGP substrate over the full ground-truth graph.
func (h *Harness) TrueTopology() *bgp.Topology {
	return bgp.FromGraph(h.W.G)
}

// buildPredictionTopology builds a routing topology from the always-known
// c2p relationships (the CAIDA AS-relationship analog) plus the given
// peering links.
func (h *Harness) buildPredictionTopology(p2p map[asgraph.Pair]bool) *bgp.Topology {
	t := bgp.NewTopology(h.W.G.N())
	for pr, rel := range h.W.Rel {
		if rel != asgraph.C2P {
			continue
		}
		cust, prov := pr.A, pr.B
		if !h.W.CustomerIsA[pr] {
			cust, prov = prov, cust
		}
		t.AddC2P(cust, prov)
	}
	for pr := range p2p {
		if rel, ok := h.W.RelOf(pr.A, pr.B); ok && rel == asgraph.C2P {
			continue // already wired as transit
		}
		t.AddP2P(pr.A, pr.B)
	}
	return t
}

// PublicPeering returns the peering links visible in the public BGP view.
func (h *Harness) PublicPeering() map[asgraph.Pair]bool {
	out := map[asgraph.Pair]bool{}
	for pr := range h.publicView() {
		if rel, ok := h.W.RelOf(pr.A, pr.B); ok && rel == asgraph.P2P {
			out[pr] = true
		}
	}
	return out
}

// linkSets assembles the three cumulative link sets of §6: public BGP,
// +measured, +measured+inferred (at thr) across all primary metros.
func (h *Harness) linkSets(thr float64) (pub, meas, inf map[asgraph.Pair]bool) {
	pub = h.PublicPeering()
	meas = map[asgraph.Pair]bool{}
	inf = map[asgraph.Pair]bool{}
	for pr := range pub {
		meas[pr] = true
		inf[pr] = true
	}
	for _, res := range h.RunPrimaries() {
		for _, pr := range MeasuredLinks(res) {
			meas[pr] = true
			inf[pr] = true
		}
		for _, pr := range InferredLinks(res, thr) {
			inf[pr] = true
		}
	}
	return pub, meas, inf
}

// --- Fig. 7: hijack prediction ---

// Fig7Result summarizes the hijack-prediction experiment.
type Fig7Result struct {
	Configs        int
	AccBGP         []float64 // per-config accuracy, public BGP topology
	AccMeasured    []float64
	AccInferredLo  []float64 // worst over thresholds 0.3..1.0
	AccInferredHi  []float64 // best over thresholds
	MeanBGP        float64
	MeanMeasured   float64
	MeanInferredHi float64
}

// Fig7 predicts the catchment of competing prefix announcements under
// three topologies and compares against ground truth, across announcement
// configurations at pairs of primary metros.
func Fig7(h *Harness) (Fig7Result, *Table) {
	rng := rand.New(rand.NewSource(h.Seed + 7))
	truth := h.TrueTopology()
	pub, meas, _ := h.linkSets(0.3)
	topoBGP := h.buildPredictionTopology(pub)
	topoMeas := h.buildPredictionTopology(meas)
	thresholds := []float64{0.3, 0.5, 0.7, 0.9}
	var topoInf []*bgp.Topology
	for _, thr := range thresholds {
		_, _, inf := h.linkSets(thr)
		topoInf = append(topoInf, h.buildPredictionTopology(inf))
	}

	// Announcement seeds: transit members of each metro.
	seedsAt := func(metro int) []int {
		var out []int
		for _, ai := range h.W.G.Metros[metro].Members {
			c := h.W.G.ASes[ai].Class
			if c == asgraph.Transit || c == asgraph.LargeISP {
				out = append(out, ai)
			}
		}
		return out
	}
	primaries := h.W.PrimaryMetros()
	sort.Ints(primaries)

	var res Fig7Result
	accuracy := func(t *bgp.Topology, vict, att []int, actual []uint8) float64 {
		pred := t.SimulateHijack(vict, att)
		good, total := 0, 0
		for as := range actual {
			actHij := actual[as]&bgp.FlagAttacker != 0
			predHij := pred[as]&bgp.FlagAttacker != 0
			predLegit := pred[as]&bgp.FlagVictim != 0
			total++
			if predHij == actHij || (predHij && predLegit) {
				good++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(good) / float64(total)
	}

	// Announcement configurations are drawn sequentially (the RNG sequence
	// is part of the experiment's determinism contract), then the pure
	// simulation work — one ground-truth run plus one run per prediction
	// topology per config — fans out over a bounded pool, landing results
	// in a config-indexed slice. Output is byte-identical to the serial
	// sweep.
	type hijackCfg struct {
		vict, att []int
	}
	var cfgs []hijackCfg
	for a := 0; a < len(primaries); a++ {
		for b := a + 1; b < len(primaries); b++ {
			sa, sb := seedsAt(primaries[a]), seedsAt(primaries[b])
			if len(sa) == 0 || len(sb) == 0 {
				continue
			}
			for cfgIdx := 0; cfgIdx < 6; cfgIdx++ {
				nv := 1 + rng.Intn(3)
				na := 1 + rng.Intn(3)
				vict := sampleInts(sa, nv, rng)
				att := sampleInts(sb, na, rng)
				cfgs = append(cfgs, hijackCfg{vict: vict, att: att})
			}
		}
	}

	type hijackAcc struct {
		bgp, meas, lo, hi float64
	}
	accs := make([]hijackAcc, len(cfgs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			for i := start; i < len(cfgs); i += workers {
				c := cfgs[i]
				actual := truth.SimulateHijack(c.vict, c.att)
				a := hijackAcc{
					bgp:  accuracy(topoBGP, c.vict, c.att, actual),
					meas: accuracy(topoMeas, c.vict, c.att, actual),
					lo:   1.0,
					hi:   0.0,
				}
				for _, ti := range topoInf {
					acc := accuracy(ti, c.vict, c.att, actual)
					if acc < a.lo {
						a.lo = acc
					}
					if acc > a.hi {
						a.hi = acc
					}
				}
				accs[i] = a
			}
		}(w)
	}
	wg.Wait()
	for _, a := range accs {
		res.Configs++
		res.AccBGP = append(res.AccBGP, a.bgp)
		res.AccMeasured = append(res.AccMeasured, a.meas)
		res.AccInferredLo = append(res.AccInferredLo, a.lo)
		res.AccInferredHi = append(res.AccInferredHi, a.hi)
	}
	res.MeanBGP = stats.Mean(res.AccBGP)
	res.MeanMeasured = stats.Mean(res.AccMeasured)
	res.MeanInferredHi = stats.Mean(res.AccInferredHi)
	tbl := &Table{Title: "Fig. 7 — hijack prediction accuracy (mean over configs)",
		Header: []string{"Topology", "MeanAccuracy", "Median", "P10"}}
	for _, row := range []struct {
		name string
		xs   []float64
	}{
		{"Public BGP", res.AccBGP},
		{"BGP + Measurements", res.AccMeasured},
		{"BGP + Meas. + Inferences (lo)", res.AccInferredLo},
		{"BGP + Meas. + Inferences (hi)", res.AccInferredHi},
	} {
		tbl.AddRow(row.name, F(stats.Mean(row.xs)), F(stats.Quantile(row.xs, 0.5)), F(stats.Quantile(row.xs, 0.1)))
	}
	return res, tbl
}

func sampleInts(xs []int, k int, rng *rand.Rand) []int {
	if k > len(xs) {
		k = len(xs)
	}
	perm := rng.Perm(len(xs))
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = xs[perm[i]]
	}
	return out
}

// --- Table 3: flattening ---

// Table3Row is one metro's flattening metrics.
type Table3Row struct {
	Metro string
	// Fraction of (src,dst) pairs with a strictly shorter AS path than
	// under the public BGP topology.
	ShorterM, ShorterInf float64
	// Country-restricted variants.
	ShorterMCountry, ShorterInfCountry float64
	// Fraction of best paths through a provider.
	ProvBGP, ProvM, ProvInf                      float64
	ProvBGPCountry, ProvMCountry, ProvInfCountry float64
}

// Table3 computes the flattening metrics for every primary metro plus a
// global row (links from all metros combined).
func Table3(h *Harness) ([]Table3Row, *Table) {
	rng := rand.New(rand.NewSource(h.Seed + 3))
	pub := h.PublicPeering()
	topoBGP := h.buildPredictionTopology(pub)

	// Destination sample shared by every comparison.
	n := h.W.G.N()
	nd := 120
	if nd > n {
		nd = n
	}
	dests := sampleInts(seqInts(n), nd, rng)

	primaries := h.W.PrimaryMetros()
	sort.Ints(primaries)
	var rows []Table3Row

	measAll := map[asgraph.Pair]bool{}
	infAll := map[asgraph.Pair]bool{}
	var affectedAll []int

	for _, metro := range primaries {
		res := h.Run(metro)
		meas := map[asgraph.Pair]bool{}
		inf := map[asgraph.Pair]bool{}
		for pr := range pub {
			meas[pr] = true
			inf[pr] = true
		}
		affected := map[int]bool{}
		for _, pr := range MeasuredLinks(res) {
			meas[pr] = true
			inf[pr] = true
			measAll[pr] = true
			infAll[pr] = true
			if !pub[pr] {
				affected[pr.A] = true
				affected[pr.B] = true
			}
		}
		for _, pr := range InferredLinks(res, res.Threshold) {
			inf[pr] = true
			infAll[pr] = true
			affected[pr.A] = true
			affected[pr.B] = true
		}
		var sources []int
		for ai := range affected {
			sources = append(sources, ai)
			affectedAll = append(affectedAll, ai)
		}
		sort.Ints(sources)
		if len(sources) > 80 {
			sources = sampleInts(sources, 80, rng)
		}
		country := h.W.G.Metros[metro].Country
		var ctrySources []int
		for _, s := range sources {
			if h.W.G.ASes[s].Country == country {
				ctrySources = append(ctrySources, s)
			}
		}

		topoM := h.buildPredictionTopology(meas)
		topoInf := h.buildPredictionTopology(inf)
		row := Table3Row{Metro: h.MetroName(metro)}
		row.ShorterM, row.ProvBGP, row.ProvM = comparePaths(topoBGP, topoM, sources, dests)
		row.ShorterInf, _, row.ProvInf = comparePaths(topoBGP, topoInf, sources, dests)
		if len(ctrySources) > 0 {
			row.ShorterMCountry, row.ProvBGPCountry, row.ProvMCountry = comparePaths(topoBGP, topoM, ctrySources, dests)
			row.ShorterInfCountry, _, row.ProvInfCountry = comparePaths(topoBGP, topoInf, ctrySources, dests)
		}
		rows = append(rows, row)
	}

	// Global row.
	global := Table3Row{Metro: "Global"}
	sort.Ints(affectedAll)
	affectedAll = dedupeInts(affectedAll)
	if len(affectedAll) > 120 {
		affectedAll = sampleInts(affectedAll, 120, rng)
	}
	measT := map[asgraph.Pair]bool{}
	infT := map[asgraph.Pair]bool{}
	for pr := range pub {
		measT[pr] = true
		infT[pr] = true
	}
	for pr := range measAll {
		measT[pr] = true
	}
	for pr := range infAll {
		infT[pr] = true
	}
	topoM := h.buildPredictionTopology(measT)
	topoInf := h.buildPredictionTopology(infT)
	global.ShorterM, global.ProvBGP, global.ProvM = comparePaths(topoBGP, topoM, affectedAll, dests)
	global.ShorterInf, _, global.ProvInf = comparePaths(topoBGP, topoInf, affectedAll, dests)
	rows = append(rows, global)

	tbl := &Table{Title: "Table 3 — flattening: shorter paths and provider-path fractions",
		Header: []string{"Metro", "+M shorter", "+Inf shorter", "+M shorter(ctry)", "+Inf shorter(ctry)", "BGP prov", "+M prov", "+Inf prov", "BGP prov(ctry)", "+M prov(ctry)", "+Inf prov(ctry)"}}
	for _, r := range rows {
		tbl.AddRow(r.Metro, F(r.ShorterM), F(r.ShorterInf), F(r.ShorterMCountry), F(r.ShorterInfCountry),
			F(r.ProvBGP), F(r.ProvM), F(r.ProvInf), F(r.ProvBGPCountry), F(r.ProvMCountry), F(r.ProvInfCountry))
	}
	return rows, tbl
}

// comparePaths returns the fraction of (src,dst) pairs whose path is
// strictly shorter under the extended topology, plus the provider-path
// fractions of the base and extended topologies. Both destination sweeps
// go through the batch route API, so the per-destination propagations fan
// out over the worker pool instead of running one at a time.
func comparePaths(base, ext *bgp.Topology, sources, dests []int) (shorter, provBase, provExt float64) {
	workers := runtime.GOMAXPROCS(0)
	rbs, _ := bgp.NewRouteCache(base).RoutesToAll(context.Background(), dests, workers)
	res, _ := bgp.NewRouteCache(ext).RoutesToAll(context.Background(), dests, workers)
	total, short, pb, pe := 0, 0, 0, 0
	for i, d := range dests {
		rb, re := rbs[i], res[i]
		for _, s := range sources {
			if s == d || !rb.Reachable(s) || !re.Reachable(s) {
				continue
			}
			total++
			if re.PathLen(s) < rb.PathLen(s) {
				short++
			}
			if rb.Class(s) == bgp.ClassProvider {
				pb++
			}
			if re.Class(s) == bgp.ClassProvider {
				pe++
			}
		}
	}
	if total == 0 {
		return 0, 0, 0
	}
	return float64(short) / float64(total), float64(pb) / float64(total), float64(pe) / float64(total)
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func dedupeInts(sorted []int) []int {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// --- Fig. 15: threshold sweep ---

// Fig15Point is one (threshold, precision, recall) operating point
// aggregated across metros, with bootstrap confidence intervals.
type Fig15Point struct {
	Threshold           float64
	Precision, PLo, PHi float64
	Recall, RLo, RHi    float64
}

// Fig15 sweeps the link threshold λ and reports precision/recall against
// ground truth across the primary metros.
func Fig15(h *Harness) ([]Fig15Point, *Table) {
	rng := rand.New(rand.NewSource(h.Seed + 15))
	results := h.RunPrimaries()
	var pts []Fig15Point
	tbl := &Table{Title: "Fig. 15 — precision/recall vs threshold λ",
		Header: []string{"λ", "Precision", "P-CI", "Recall", "R-CI"}}
	for thr := 0.1; thr <= 1.0001; thr += 0.1 {
		var precs, recs []float64
		for _, res := range results {
			scores, labels := h.TruthLabels(res)
			c := stats.Confuse(scores, labels, thr)
			precs = append(precs, c.Precision())
			recs = append(recs, c.Recall())
		}
		p, plo, phi := stats.BootstrapCI(precs, 300, 0.05, rng)
		r, rlo, rhi := stats.BootstrapCI(recs, 300, 0.05, rng)
		pt := Fig15Point{Threshold: thr, Precision: p, PLo: plo, PHi: phi, Recall: r, RLo: rlo, RHi: rhi}
		pts = append(pts, pt)
		tbl.AddRow(fmt.Sprintf("%.1f", thr), F(p), fmt.Sprintf("[%s,%s]", F(plo), F(phi)), F(r), fmt.Sprintf("[%s,%s]", F(rlo), F(rhi)))
	}
	return pts, tbl
}

// --- Table 5: links by AS-class pair ---

// Table5 counts public-view links and metAScritic-added links (measured +
// inferred) per AS-class pair, aggregated over the primary metros.
func Table5(h *Harness) (map[[2]asgraph.Class][2]int, *Table) {
	pub, _, inf := h.linkSets(0.3)
	counts := map[[2]asgraph.Class][2]int{}
	classOf := func(i int) asgraph.Class { return h.W.G.ASes[i].Class }
	key := func(a, b asgraph.Class) [2]asgraph.Class {
		if a > b {
			a, b = b, a
		}
		return [2]asgraph.Class{a, b}
	}
	for pr := range pub {
		k := key(classOf(pr.A), classOf(pr.B))
		c := counts[k]
		c[0]++
		counts[k] = c
	}
	for pr := range inf {
		if pub[pr] {
			continue
		}
		k := key(classOf(pr.A), classOf(pr.B))
		c := counts[k]
		c[1]++
		counts[k] = c
	}
	tbl := &Table{Title: "Table 5 — links by AS-class pair (public view + added by metAScritic)",
		Header: []string{"ClassPair", "PublicView", "Added", "Increase%"}}
	var keys [][2]asgraph.Class
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, k := range keys {
		c := counts[k]
		inc := 0.0
		if c[0] > 0 {
			inc = 100 * float64(c[1]) / float64(c[0])
		}
		tbl.AddRow(fmt.Sprintf("%v-%v", k[0], k[1]), D(c[0]), D(c[1]), fmt.Sprintf("%.0f", inc))
	}
	return counts, tbl
}

// --- Fig. 16: per-metro measured/inferred link novelty ---

// Fig16Row is one metro's link-novelty breakdown.
type Fig16Row struct {
	Metro           string
	Measured        int
	Inferred        int
	ExistingLinks   int // already measured/inferred at an earlier metro
	NewLinks        int
	NewInProbedASes int // new links between ASes already probed earlier
}

// Fig16 orders metros by size and classifies each metro's links as
// existing (seen at an earlier metro), new, or new between
// previously-probed ASes.
func Fig16(h *Harness) ([]Fig16Row, *Table) {
	metros := h.W.PrimaryMetros()
	sort.Slice(metros, func(a, b int) bool {
		return len(h.W.G.Metros[metros[a]].Members) > len(h.W.G.Metros[metros[b]].Members)
	})
	seen := map[asgraph.Pair]bool{}
	probed := map[int]bool{}
	var rows []Fig16Row
	tbl := &Table{Title: "Fig. 16 — measured and inferred links per metro",
		Header: []string{"Metro", "Measured", "Inferred", "Existing", "New", "NewInProbedASes"}}
	for _, metro := range metros {
		res := h.Run(metro)
		row := Fig16Row{Metro: h.MetroName(metro)}
		mls := MeasuredLinks(res)
		ils := InferredLinks(res, res.Threshold)
		row.Measured = len(mls)
		row.Inferred = len(ils)
		for _, pr := range append(append([]asgraph.Pair{}, mls...), ils...) {
			if seen[pr] {
				row.ExistingLinks++
			} else {
				row.NewLinks++
				if probed[pr.A] && probed[pr.B] {
					row.NewInProbedASes++
				}
			}
		}
		for _, pr := range mls {
			seen[pr] = true
		}
		for _, pr := range ils {
			seen[pr] = true
		}
		for _, ai := range res.Members {
			probed[ai] = true
		}
		rows = append(rows, row)
		tbl.AddRow(row.Metro, D(row.Measured), D(row.Inferred), D(row.ExistingLinks), D(row.NewLinks), D(row.NewInProbedASes))
	}
	return rows, tbl
}

// --- Table 4: the full per-metro evaluation ---

// Table4Row aggregates one metro's results.
type Table4Row struct {
	Metro            string
	NumASes          int
	Rank             int
	Splits           map[SplitKind][2]float64 // recall, precision
	ExternalRecall   map[string]float64
	CloudPrecision   float64
	CloudRecall      float64
	Measurements     int
	ExhaustiveBudget int
	TruthPrecision   float64 // vs extensive ground truth
	TruthRecall      float64
	PublicOnlyPrec   float64 // no targeted measurements
	PublicOnlyRec    float64
}

// Table4 reproduces the detailed evaluation table (Appx. E.1).
func Table4(h *Harness) ([]Table4Row, *Table) {
	var rows []Table4Row
	tbl := &Table{Title: "Table 4 — detailed per-metro performance",
		Header: []string{"Metro", "ASes", "Rank", "Strat P/R", "Rand P/R", "ComplOut P/R", "Cloud P/R", "TruthEval P/R", "PublicOnly P/R", "Meas", "Exhaustive"}}
	for _, res := range h.RunPrimaries() {
		row := Table4Row{
			Metro:          h.MetroName(res.Metro),
			NumASes:        len(res.Members),
			Rank:           res.Rank,
			Splits:         map[SplitKind][2]float64{},
			ExternalRecall: map[string]float64{},
		}
		kinds := []SplitKind{Stratified, RandomSplit, CompletelyOut}
		var specs []SplitSpec
		for _, kind := range kinds {
			specs = append(specs, SplitSpec{Kind: kind, Frac: 0.2, Seed: h.Seed + int64(res.Metro) + int64(kind)})
		}
		for i, ev := range h.EvaluateSplits(res, specs) {
			row.Splits[kinds[i]] = [2]float64{ev.Recall, ev.Precision}
		}
		for _, vs := range h.ValidationSets(res, h.Seed+int64(res.Metro)) {
			p, r := vs.Score(res, res.Threshold)
			if vs.Name == "Ground Truth (clouds)" {
				row.CloudPrecision, row.CloudRecall = p, r
			} else {
				row.ExternalRecall[vs.Name] = r
			}
		}
		// Evaluation against "extensive measurements" = ground truth, at
		// the F-maximizing threshold (same procedure as the public-only
		// row below, so the two are comparable).
		scores, labels := h.TruthLabels(res)
		tthr, _ := stats.BestF1Threshold(scores, labels)
		c := stats.Confuse(scores, labels, tthr)
		row.TruthPrecision, row.TruthRecall = c.Precision(), c.Recall()
		// No-targeted-measurements variant: public seed only.
		pubRes := h.publicOnlyResult(res.Metro)
		ps, pl := h.TruthLabels(pubRes)
		thr, _ := stats.BestF1Threshold(ps, pl)
		pc := stats.Confuse(ps, pl, thr)
		row.PublicOnlyPrec, row.PublicOnlyRec = pc.Precision(), pc.Recall()

		row.Measurements = res.Measurements
		n := len(res.Members)
		row.ExhaustiveBudget = 5 * n * (n - 1) / 2
		rows = append(rows, row)

		pr := func(k SplitKind) string {
			v := row.Splits[k]
			return F(v[1]) + "/" + F(v[0])
		}
		tbl.AddRow(row.Metro, D(row.NumASes), D(row.Rank), pr(Stratified), pr(RandomSplit), pr(CompletelyOut),
			F(row.CloudPrecision)+"/"+F(row.CloudRecall),
			F(row.TruthPrecision)+"/"+F(row.TruthRecall),
			F(row.PublicOnlyPrec)+"/"+F(row.PublicOnlyRec),
			D(row.Measurements), D(row.ExhaustiveBudget))
	}
	return rows, tbl
}

// publicOnlyResult completes a metro using only the public seed (the
// bottom rows of Table 4 / Appx. E.3 "no targeted measurements").
func (h *Harness) publicOnlyResult(metro int) *metascritic.Result {
	if r, ok := h.pubOnly[metro]; ok {
		return r
	}
	if h.pubOnly == nil {
		h.pubOnly = map[int]*metascritic.Result{}
	}
	pipe := metascritic.NewPipeline(h.W)
	// Fresh pipeline shares the world but uses its own store: replay the
	// public plan only, then complete without any budget.
	for _, t := range h.publicPlan {
		pipe.Store.AddTrace(pipe.Engine.Run(t[0], t[1], t[2]))
	}
	cfg := h.Cfg
	cfg.MaxMeasurements = 0
	cfg.Seed = h.Seed + int64(metro) + 500
	r, err := pipe.Run(context.Background(), metro, cfg)
	if err != nil {
		// Public-only replays reuse the harness config; a failure here is a
		// programming error, matching Harness.Run.
		panic(fmt.Sprintf("eval: public-only metro %d: %v", metro, err))
	}
	h.pubOnly[metro] = r
	return r
}
