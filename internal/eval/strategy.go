package eval

import (
	"math/rand"

	"metascritic"
	"metascritic/internal/asgraph"
	"metascritic/internal/baseline"
	"metascritic/internal/obs"
	"metascritic/internal/probe"
	"metascritic/internal/stats"
)

// MetascriticPicker adapts metAScritic's own ε-greedy batch selection to
// the baseline.Picker interface, so Table 2 / Fig. 11 compare all
// strategies under identical budgets and execution.
type MetascriticPicker struct {
	Eps float64
}

// Name implements baseline.Picker.
func (m MetascriticPicker) Name() string { return "metAScritic" }

// NextBatch implements baseline.Picker.
func (m MetascriticPicker) NextBatch(sel *probe.Selector, st baseline.State, size int, rng *rand.Rand) []probe.Measurement {
	need := make([]int, st.N)
	for i := range need {
		need[i] = st.N
	}
	return sel.SelectBatch(size, m.Eps, st.Fill, need, st.Has, rng)
}

// BatchStat records discovery progress after one batch of measurements.
type BatchStat struct {
	Measurements int // cumulative traceroutes issued
	Entries      int // cumulative observed entries (distinct pairs)
	LinksFound   int // cumulative positive entries
	RowsAboveK   int // rows with at least K observed entries
}

// StrategyRun is the outcome of driving one selection strategy with a
// fixed measurement budget on one metro.
type StrategyRun struct {
	Name      string
	Rank      int // estimated (metAScritic) or post-hoc tuned rank
	Precision float64
	Recall    float64
	FScore    float64
	Batches   []BatchStat
	Est       *obs.Estimate
}

// RunStrategy replays the public seed into a fresh store, then spends the
// measurement budget according to the picker, finally completing the
// matrix and scoring it against ground truth. If fixedRank > 0 it is used
// directly (metAScritic's estimated rank); otherwise the rank is tuned
// post-hoc for best F-score, as the paper does for the baselines.
func (h *Harness) RunStrategy(metro int, picker baseline.Picker, budget, batchSize int, fixedRank int, rowsAboveK int, seed int64) *StrategyRun {
	g := h.W.G
	members := g.Metros[metro].Members
	store := obs.NewStore(g, h.P.Engine.Reg.Resolve)
	for _, t := range h.publicPlan {
		store.AddTrace(h.P.Engine.Run(t[0], t[1], t[2]))
	}
	sel := probe.NewSelector(g, metro, members, h.P.VPs(), h.P.Hitlist)
	rng := rand.New(rand.NewSource(seed))
	est := store.Estimate(metro, members, obs.NegMetascritic)

	run := &StrategyRun{Name: picker.Name()}
	spent := 0
	for spent < budget {
		size := batchSize
		if size > budget-spent {
			size = budget - spent
		}
		st := baseline.State{N: len(members), Fill: est.RowFill(), Has: est.Mask.Has}
		batch := picker.NextBatch(sel, st, size, rng)
		if len(batch) == 0 {
			break
		}
		for _, m := range batch {
			spent++
			tr := h.P.Engine.RunTarget(m.VP.AS, m.VP.Metro, m.Target.AS, m.Target.Metro)
			findings := store.AddTrace(tr)
			informative := false
			want := asgraph.MakePair(m.LinkI, m.LinkJ)
			for _, f := range findings {
				if f.Pair == want {
					informative = true
					break
				}
			}
			sel.Report(m, informative)
		}
		store.Refresh(est)
		run.Batches = append(run.Batches, h.batchStat(est, spent, rowsAboveK))
	}
	run.Est = est

	// Completion and scoring against ground truth.
	features := metascritic.BuildFeatures(g, members)
	truth := h.W.Truths[metro]
	score := func(r int) (p, rec, f float64) {
		completed := metascritic.CompleteWith(est.E, est.Mask, features, r, 0.08, 0.35)
		var scores []float64
		var labels []bool
		n := len(members)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				scores = append(scores, completed.At(i, j))
				labels = append(labels, truth.M.At(i, j) > 0.5)
			}
		}
		thr, fbest := stats.BestF1Threshold(scores, labels)
		c := stats.Confuse(scores, labels, thr)
		return c.Precision(), c.Recall(), fbest
	}
	if fixedRank > 0 {
		run.Rank = fixedRank
		run.Precision, run.Recall, run.FScore = score(fixedRank)
		return run
	}
	// Post-hoc rank search over a small grid.
	bestF := -1.0
	for _, r := range []int{2, 4, 6, 8, 12, 16, 24, 32} {
		p, rec, f := score(r)
		if f > bestF {
			bestF = f
			run.Rank = r
			run.Precision, run.Recall, run.FScore = p, rec, f
		}
	}
	return run
}

func (h *Harness) batchStat(est *obs.Estimate, spent, k int) BatchStat {
	bs := BatchStat{Measurements: spent}
	n := len(est.Members)
	for i := 0; i < n; i++ {
		cnt := est.Mask.RowCount(i)
		if cnt >= k {
			bs.RowsAboveK++
		}
		for _, j := range est.Mask.RowEntries(i) {
			if j > i {
				bs.Entries++
				if est.E.At(i, j) > 0 {
					bs.LinksFound++
				}
			}
		}
	}
	return bs
}
