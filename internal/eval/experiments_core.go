package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"metascritic"
	"metascritic/internal/asgraph"
	"metascritic/internal/baseline"
	"metascritic/internal/stats"
)

// --- Fig. 1: feature / co-peering correlations ---

// Fig1Row is one cloud provider's correlation row.
type Fig1Row struct {
	Cloud         string
	PeeringPolicy float64   // correlation ratio
	TrafficProf   float64   // correlation ratio
	Eyeballs      float64   // |Pearson|
	CustomerCone  float64   // |Pearson|
	Country       float64   // correlation ratio
	WithClouds    []float64 // Pearson with peering other clouds
	WithTier1     float64   // Pearson with peering a Tier1
}

// Fig1 computes the correlation matrices between peering with each
// hypergiant and (a) public features, (b) peering with other hypergiants
// and a Tier-1 (the Cogent column).
func Fig1(h *Harness) ([]Fig1Row, *Table) {
	g := h.W.G
	var clouds, tier1s []int
	for _, a := range g.ASes {
		switch a.Class {
		case asgraph.Hypergiant:
			clouds = append(clouds, a.Index)
		case asgraph.Tier1:
			tier1s = append(tier1s, a.Index)
		}
	}
	sort.Ints(clouds)
	sort.Ints(tier1s)
	if len(clouds) > 4 {
		clouds = clouds[:4]
	}
	t1 := tier1s[0]

	// Population: every AS that could peer with a hypergiant (hypergiants
	// are global, so all non-cloud, non-Tier1 ASes).
	var pop []int
	for _, a := range g.ASes {
		if a.Class != asgraph.Hypergiant && a.Class != asgraph.Tier1 {
			pop = append(pop, a.Index)
		}
	}
	peersWith := func(target int) []float64 {
		out := make([]float64, len(pop))
		for k, ai := range pop {
			if g.HasPeer(ai, target) {
				out[k] = 1
			}
		}
		return out
	}
	policy := make([]int, len(pop))
	traffic := make([]int, len(pop))
	country := make([]int, len(pop))
	eyeballs := make([]float64, len(pop))
	cone := make([]float64, len(pop))
	for k, ai := range pop {
		a := g.ASes[ai]
		policy[k] = int(a.Policy)
		traffic[k] = int(a.Traffic)
		country[k] = a.Country
		eyeballs[k] = math.Log1p(float64(a.Eyeballs))
		cone[k] = math.Log1p(float64(g.ConeSize(ai)))
	}
	t1Vec := peersWith(t1)

	var rows []Fig1Row
	tbl := &Table{Title: "Fig. 1 — correlations between cloud peering, features and co-peering",
		Header: []string{"Cloud", "Policy(η)", "Traffic(η)", "Eyeballs(r)", "Cone(r)", "Country(η)", "OtherClouds(r)", "Tier1(r)"}}
	for _, c := range clouds {
		y := peersWith(c)
		row := Fig1Row{
			Cloud:         fmt.Sprintf("Cloud-AS%d", g.ASes[c].ASN),
			PeeringPolicy: stats.CorrelationRatio(policy, y),
			TrafficProf:   stats.CorrelationRatio(traffic, y),
			Eyeballs:      math.Abs(stats.Pearson(eyeballs, y)),
			CustomerCone:  math.Abs(stats.Pearson(cone, y)),
			Country:       stats.CorrelationRatio(country, y),
			WithTier1:     math.Abs(stats.Pearson(t1Vec, y)),
		}
		var avgCloud float64
		cnt := 0
		for _, c2 := range clouds {
			if c2 == c {
				continue
			}
			r := math.Abs(stats.Pearson(peersWith(c2), y))
			row.WithClouds = append(row.WithClouds, r)
			avgCloud += r
			cnt++
		}
		rows = append(rows, row)
		tbl.AddRow(row.Cloud, F(row.PeeringPolicy), F(row.TrafficProf), F(row.Eyeballs),
			F(row.CustomerCone), F(row.Country), F(avgCloud/float64(cnt)), F(row.WithTier1))
	}
	return rows, tbl
}

// --- Fig. 3 / Fig. 8: PR and ROC curves, classifier comparison ---

// Fig3Result bundles one metro's split evaluations.
type Fig3Result struct {
	Metro         string
	Stratified    SplitEval
	CompletelyOut SplitEval
	StratAUC      float64 // ROC AUC of the stratified split (Fig. 8)
}

// Fig3 evaluates the completion under the stratified and completely-out
// splits for every primary metro.
func Fig3(h *Harness) ([]Fig3Result, *Table) {
	tbl := &Table{Title: "Fig. 3 — precision-recall across metros and splits",
		Header: []string{"Metro", "Split", "AUPRC", "Precision", "Recall", "AUC"}}
	var out []Fig3Result
	for _, res := range h.RunPrimaries() {
		fr := Fig3Result{Metro: h.MetroName(res.Metro)}
		evs := h.EvaluateSplits(res, []SplitSpec{
			{Kind: Stratified, Frac: 0.2, Seed: h.Seed + int64(res.Metro)},
			{Kind: CompletelyOut, Frac: 0.2, Seed: h.Seed + int64(res.Metro)},
		})
		fr.Stratified, fr.CompletelyOut = evs[0], evs[1]
		fr.StratAUC = stats.AUC(fr.Stratified.Scores, fr.Stratified.Labels)
		out = append(out, fr)
		tbl.AddRow(fr.Metro, "Stratified", F(fr.Stratified.AUPRC), F(fr.Stratified.Precision), F(fr.Stratified.Recall), F(fr.StratAUC))
		tbl.AddRow(fr.Metro, "CompletelyOut", F(fr.CompletelyOut.AUPRC), F(fr.CompletelyOut.Precision), F(fr.CompletelyOut.Recall), "")
	}
	return out, tbl
}

// Fig8Result compares classifiers on a stratified split of one metro.
type Fig8Result struct {
	Metro                         string
	MetascriticAUC, RFAUC, NCFAUC float64
}

// Fig8 compares metAScritic's completion with the Random Forest and NCF
// baselines (Appx. E.2) on a stratified split of each primary metro.
func Fig8(h *Harness) ([]Fig8Result, *Table) {
	tbl := &Table{Title: "Fig. 8 — ROC AUC: metAScritic vs Random Forest vs NCF",
		Header: []string{"Metro", "metAScritic", "RandomForest", "NCF"}}
	var out []Fig8Result
	for _, res := range h.RunPrimaries() {
		rng := rand.New(rand.NewSource(h.Seed + 31*int64(res.Metro)))
		est := res.Estimate
		holdout := buildHoldout(est.Mask, Stratified, 0.2, rng)
		work := est.Mask.Clone()
		for _, hh := range holdout {
			work.Unset(hh[0], hh[1])
		}
		features := metascritic.BuildFeatures(h.W.G, res.Members)

		// metAScritic.
		completed := metascritic.CompleteWith(est.E, work, features, res.Rank, res.Lambda, res.FeatureWeight)

		// Random forest on *public* pair features only (the paper's RF
		// baseline "only builds on available public features", Appx.
		// E.2 — no link-derived inputs).
		pf := publicPairFeatures(h, res)
		var X [][]float64
		var y []bool
		work.Entries(func(i, j int) {
			if i != j {
				X = append(X, pf(i, j))
				y = append(y, est.E.At(i, j) > 0)
			}
		})
		forest := baseline.TrainForest(X, y, baseline.DefaultForestConfig())

		// NCF.
		ncfCfg := baseline.DefaultNCFConfig()
		ncfCfg.Epochs = 30
		ncf := baseline.TrainNCF(est.E, work, features, ncfCfg)

		var msScores, rfScores, ncfScores []float64
		var labels []bool
		for _, hh := range holdout {
			i, j := hh[0], hh[1]
			msScores = append(msScores, completed.At(i, j))
			rfScores = append(rfScores, forest.PredictProba(pf(i, j)))
			ncfScores = append(ncfScores, ncf.Predict(i, j))
			labels = append(labels, est.E.At(i, j) > 0)
		}
		fr := Fig8Result{
			Metro:          h.MetroName(res.Metro),
			MetascriticAUC: stats.AUC(msScores, labels),
			RFAUC:          stats.AUC(rfScores, labels),
			NCFAUC:         stats.AUC(ncfScores, labels),
		}
		out = append(out, fr)
		tbl.AddRow(fr.Metro, F(fr.MetascriticAUC), F(fr.RFAUC), F(fr.NCFAUC))
	}
	return out, tbl
}

// publicPairFeatures returns a pair-feature extractor over member rows
// using only publicly-available AS attributes (no measurement-derived
// signals): the input space of the paper's Random Forest baseline.
func publicPairFeatures(h *Harness, res *metascritic.Result) func(i, j int) []float64 {
	g := h.W.G
	return func(i, j int) []float64 {
		a, b := g.ASes[res.Members[i]], g.ASes[res.Members[j]]
		return []float64{
			math.Log1p(float64(a.Eyeballs)), math.Log1p(float64(b.Eyeballs)),
			math.Log1p(float64(g.ConeSize(a.Index))), math.Log1p(float64(g.ConeSize(b.Index))),
			float64(len(a.Metros)), float64(len(b.Metros)),
			float64(a.Class), float64(b.Class),
			float64(a.Policy), float64(b.Policy),
			float64(a.Traffic), float64(b.Traffic),
			float64(len(g.SharedIXPs(a.Index, b.Index))),
			float64(len(g.SharedMetros(a.Index, b.Index))),
		}
	}
}

// --- Table 2: selection-strategy comparison ---

// Table2 compares the six selection strategies on a Sydney-like metro
// under metAScritic's measurement budget.
func Table2(h *Harness) ([]*StrategyRun, *Table) {
	metro := h.W.G.MetroOfName("Sydney").Index
	msRes := h.Run(metro)
	budget := msRes.Measurements
	if budget < 200 {
		budget = 200
	}
	batch := budget / 8
	if batch < 20 {
		batch = 20
	}
	pickers := []baseline.Picker{
		baseline.Greedy{},
		baseline.IXPMapped{},
		baseline.Random{},
		baseline.OnlyExploration{},
		baseline.OnlyExploitation{},
		MetascriticPicker{Eps: 0.1},
	}
	tbl := &Table{Title: "Table 2 — targeted measurement strategies (Sydney)",
		Header: []string{"Strategy", "Precision", "Recall", "Estimated Rank"}}
	var runs []*StrategyRun
	for _, p := range pickers {
		// Every strategy gets the post-hoc rank tuning the paper grants
		// the baselines, so P/R compares selection quality alone.
		r := h.RunStrategy(metro, p, budget, batch, 0, msRes.Rank, h.Seed+99)
		if _, isMS := p.(MetascriticPicker); isMS {
			// metAScritic's rank column reports its own on-line estimate.
			r.Rank = msRes.Rank
		}
		runs = append(runs, r)
		tbl.AddRow(r.Name, F(r.Precision), F(r.Recall), D(r.Rank))
	}
	return runs, tbl
}

// --- Fig. 4: probability calibration ---

// Fig4Result summarizes the calibration of P_m.
type Fig4Result struct {
	// KS distances between the realized outcome CDFs and the prediction-
	// implied CDF ("perfect prediction line").
	KSInformative float64
	NumTargeted   int
	InformRate    float64
}

// Fig4 evaluates whether the estimated probabilities in P_m predict which
// traceroutes turn out informative, across all primary-metro runs.
func Fig4(h *Harness) (Fig4Result, *Table) {
	var ps []float64
	var inform []bool
	for _, res := range h.RunPrimaries() {
		for _, c := range res.Calibrations {
			if c.Exploration {
				continue // exploration ignores P by design
			}
			ps = append(ps, c.P)
			inform = append(inform, c.Informative)
		}
	}
	out := Fig4Result{NumTargeted: len(ps)}
	if len(ps) == 0 {
		return out, &Table{Title: "Fig. 4 — no targeted measurements"}
	}
	// Perfect prediction: a measurement with predicted p is informative
	// with probability p, so among informative measurements the CDF over
	// p equals the p-weighted CDF of all predictions.
	var wcdfX []float64
	var wcdfW []float64
	informP := []float64{}
	good := 0
	for k, p := range ps {
		wcdfX = append(wcdfX, p)
		wcdfW = append(wcdfW, p)
		if inform[k] {
			informP = append(informP, p)
			good++
		}
	}
	out.InformRate = float64(good) / float64(len(ps))
	out.KSInformative = weightedKS(informP, wcdfX, wcdfW)
	tbl := &Table{Title: "Fig. 4 — calibration of P_m", Header: []string{"Targeted", "InformativeRate", "KS(informative vs perfect)"}}
	tbl.AddRow(D(out.NumTargeted), F(out.InformRate), F(out.KSInformative))
	return out, tbl
}

// weightedKS computes the KS distance between the empirical CDF of sample
// and the weighted CDF defined by (points, weights).
func weightedKS(sample, points []float64, weights []float64) float64 {
	if len(sample) == 0 || len(points) == 0 {
		return 1
	}
	type pw struct{ x, w float64 }
	ws := make([]pw, len(points))
	var total float64
	for i := range points {
		ws[i] = pw{points[i], weights[i]}
		total += weights[i]
	}
	sort.Slice(ws, func(a, b int) bool { return ws[a].x < ws[b].x })
	emp := stats.NewECDF(sample)
	var d, acc float64
	for _, p := range ws {
		acc += p.w
		if diff := math.Abs(emp.At(p.x) - acc/total); diff > d {
			d = diff
		}
	}
	return d
}

// --- Fig. 5: ratings vs probe coverage ---

// Fig5Row summarizes inferred-rating magnitude for one coverage category.
type Fig5Row struct {
	Category string
	Count    int
	MeanAbs  float64
	P90Abs   float64
	HighConf float64 // fraction with |rating| >= 0.8
}

// Fig5 relates probe coverage of an AS pair to the magnitude of its
// inferred rating (unmeasured pairs only).
func Fig5(h *Harness) ([]Fig5Row, *Table) {
	agg := map[string][]float64{}
	order := []string{"VP in AS", "VP in cone", "No VP"}
	for _, res := range h.RunPrimaries() {
		n := len(res.Members)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if res.Estimate.Mask.Has(i, j) {
					continue // measured, not inferred
				}
				a, b := res.Members[i], res.Members[j]
				var cat string
				switch {
				case h.W.HasProbe(a) || h.W.HasProbe(b):
					cat = order[0]
				case h.W.ProbeInCone(a) || h.W.ProbeInCone(b):
					cat = order[1]
				default:
					cat = order[2]
				}
				agg[cat] = append(agg[cat], math.Abs(res.Ratings.At(i, j)))
			}
		}
	}
	tbl := &Table{Title: "Fig. 5 — inferred-rating magnitude vs probe coverage",
		Header: []string{"Category", "Pairs", "Mean|rating|", "P90|rating|", "Frac>=0.8"}}
	var rows []Fig5Row
	for _, cat := range order {
		vals := agg[cat]
		r := Fig5Row{Category: cat, Count: len(vals)}
		if len(vals) > 0 {
			r.MeanAbs = stats.Mean(vals)
			r.P90Abs = stats.Quantile(vals, 0.9)
			hi := 0
			for _, v := range vals {
				if v >= 0.8 {
					hi++
				}
			}
			r.HighConf = float64(hi) / float64(len(vals))
		}
		rows = append(rows, r)
		tbl.AddRow(r.Category, D(r.Count), F(r.MeanAbs), F(r.P90Abs), F(r.HighConf))
	}
	return rows, tbl
}

// --- Fig. 6: vantage-point coverage per metro ---

// Fig6Row is one metro's VP coverage breakdown.
type Fig6Row struct {
	Metro     string
	InASMetro float64 // probe in the AS at the metro
	InAS      float64 // probe in the AS elsewhere
	InCone    float64 // probe only in the customer cone
	None      float64
}

// Fig6 computes the distribution of best available vantage points per
// metro, ordered by total coverage.
func Fig6(h *Harness) ([]Fig6Row, *Table) {
	probeAt := map[[2]int]bool{}
	for _, p := range h.W.Probes {
		probeAt[[2]int{p.AS, p.Metro}] = true
	}
	var rows []Fig6Row
	for mi, m := range h.W.G.Metros {
		if len(m.Members) == 0 {
			continue
		}
		var r Fig6Row
		r.Metro = m.Name
		for _, ai := range m.Members {
			switch {
			case probeAt[[2]int{ai, mi}]:
				r.InASMetro++
			case h.W.HasProbe(ai):
				r.InAS++
			case h.W.ProbeInCone(ai):
				r.InCone++
			default:
				r.None++
			}
		}
		total := float64(len(m.Members))
		r.InASMetro /= total
		r.InAS /= total
		r.InCone /= total
		r.None /= total
		rows = append(rows, r)
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].None < rows[b].None })
	tbl := &Table{Title: "Fig. 6 — best available vantage point per metro",
		Header: []string{"Metro", "VP in AS@metro", "VP in AS", "VP in cone", "No VP"}}
	for _, r := range rows {
		tbl.AddRow(r.Metro, F(r.InASMetro), F(r.InAS), F(r.InCone), F(r.None))
	}
	return rows, tbl
}
