package eval

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"metascritic/internal/stats"
)

var (
	hOnce sync.Once
	hInst *Harness
)

// testHarness returns a shared small harness (building it runs the full
// pipeline on six metros, so tests share one).
func testHarness(t *testing.T) *Harness {
	t.Helper()
	hOnce.Do(func() {
		opt := Options{Scale: 0.1, Seed: 3, PublicPerProbe: 6, Budget: 1200, MaxRank: 10}
		hInst = NewHarness(opt)
		hInst.Cfg.BatchSize = 100
		hInst.Cfg.Rank.Iterations = 5
	})
	return hInst
}

func TestHarnessRunCachesAndOrders(t *testing.T) {
	h := testHarness(t)
	m := h.W.PrimaryMetros()[0]
	r1 := h.Run(m)
	r2 := h.Run(m)
	if r1 != r2 {
		t.Fatalf("Run should cache results")
	}
	if len(h.RunPrimaries()) != 6 {
		t.Fatalf("expected 6 primary results")
	}
}

func TestSplitsBehave(t *testing.T) {
	h := testHarness(t)
	res := h.RunPrimaries()[0]
	for _, kind := range []SplitKind{Stratified, RandomSplit, CompletelyOut} {
		ev := h.EvaluateSplit(res, kind, 0.2, 42)
		if len(ev.Scores) == 0 {
			t.Fatalf("%v split produced no holdout", kind)
		}
		if ev.AUPRC < 0 || ev.AUPRC > 1 {
			t.Fatalf("%v AUPRC out of range: %v", kind, ev.AUPRC)
		}
		if kind.String() == "" {
			t.Fatalf("empty split name")
		}
	}
	// Stratified should not underperform completely-out on AUPRC (the
	// paper's consistent finding).
	st := h.EvaluateSplit(res, Stratified, 0.2, 7)
	co := h.EvaluateSplit(res, CompletelyOut, 0.2, 7)
	if st.AUPRC+0.15 < co.AUPRC {
		t.Fatalf("stratified AUPRC %.3f unexpectedly far below completely-out %.3f", st.AUPRC, co.AUPRC)
	}
}

// TestEvaluateSplitsMatchesSequential pins the parallel split scorer's
// contract: spec-order output, byte-identical to sequential EvaluateSplit.
func TestEvaluateSplitsMatchesSequential(t *testing.T) {
	h := testHarness(t)
	res := h.RunPrimaries()[0]
	specs := []SplitSpec{
		{Kind: Stratified, Frac: 0.2, Seed: 11},
		{Kind: RandomSplit, Frac: 0.2, Seed: 12},
		{Kind: CompletelyOut, Frac: 0.2, Seed: 13},
		{Kind: Stratified, Frac: 0.3, Seed: 11},
	}
	got := h.EvaluateSplits(res, specs)
	if len(got) != len(specs) {
		t.Fatalf("got %d evals for %d specs", len(got), len(specs))
	}
	for i, s := range specs {
		want := h.EvaluateSplit(res, s.Kind, s.Frac, s.Seed)
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("spec %d (%v): parallel eval differs from sequential", i, s)
		}
	}
	if len(h.EvaluateSplits(res, nil)) != 0 {
		t.Fatalf("empty spec list should give empty output")
	}
}

func TestFig1CorrelationShape(t *testing.T) {
	h := testHarness(t)
	rows, tbl := Fig1(h)
	if len(rows) == 0 || len(tbl.Rows) != len(rows) {
		t.Fatalf("Fig1 empty")
	}
	for _, r := range rows {
		for _, v := range []float64{r.PeeringPolicy, r.TrafficProf, r.Eyeballs, r.CustomerCone, r.Country, r.WithTier1} {
			if v < 0 || v > 1 {
				t.Fatalf("correlation out of range: %+v", r)
			}
		}
		// Co-peering with other clouds should carry more signal than
		// peering with a Tier1 (the paper's headline contrast).
		avgCloud := stats.Mean(r.WithClouds)
		if avgCloud < r.WithTier1-0.1 {
			t.Fatalf("cloud co-peering correlation %.3f should exceed Tier1 %.3f", avgCloud, r.WithTier1)
		}
	}
}

func TestFig3HighAUPRC(t *testing.T) {
	h := testHarness(t)
	rows, tbl := Fig3(h)
	if len(rows) != 6 {
		t.Fatalf("want 6 metros, got %d", len(rows))
	}
	var sum float64
	for _, r := range rows {
		sum += r.Stratified.AUPRC
	}
	if avg := sum / 6; avg < 0.7 {
		t.Fatalf("mean stratified AUPRC %.3f too low", avg)
	}
	if !strings.Contains(tbl.String(), "Stratified") {
		t.Fatalf("table missing rows")
	}
}

func TestFig4Calibration(t *testing.T) {
	h := testHarness(t)
	res, _ := Fig4(h)
	if res.NumTargeted == 0 {
		t.Fatalf("no targeted measurements recorded")
	}
	if res.KSInformative < 0 || res.KSInformative > 1 {
		t.Fatalf("KS out of range: %v", res.KSInformative)
	}
	// Calibration should be far better than the worst case.
	if res.KSInformative > 0.5 {
		t.Fatalf("KS %.3f suggests uninformative probabilities", res.KSInformative)
	}
}

func TestFig5CoverageOrdering(t *testing.T) {
	h := testHarness(t)
	rows, _ := Fig5(h)
	if len(rows) != 3 {
		t.Fatalf("want 3 categories")
	}
	// Pairs with VPs should have higher-confidence ratings than pairs
	// without any VP (paper Fig. 5). At laptop scale a selection effect
	// works against this: most easy VP-covered pairs get *measured* and
	// leave the inferred population, so only a gross inversion fails.
	if rows[0].Count > 0 && rows[2].Count > 0 && rows[0].MeanAbs < rows[2].MeanAbs-0.15 {
		t.Fatalf("VP-covered pairs should score higher: %+v", rows)
	}
}

func TestFig6CoverageDisparity(t *testing.T) {
	h := testHarness(t)
	rows, _ := Fig6(h)
	if len(rows) < 6 {
		t.Fatalf("too few metros")
	}
	byName := map[string]Fig6Row{}
	for _, r := range rows {
		byName[r.Metro] = r
	}
	if byName["SaoPaulo"].None <= byName["Amsterdam"].None {
		t.Fatalf("SaoPaulo should have worse VP coverage than Amsterdam")
	}
	for _, r := range rows {
		total := r.InASMetro + r.InAS + r.InCone + r.None
		if total < 0.999 || total > 1.001 {
			t.Fatalf("fractions of %s sum to %v", r.Metro, total)
		}
	}
}

func TestTable2StrategyOrdering(t *testing.T) {
	h := testHarness(t)
	runs, tbl := Table2(h)
	if len(runs) != 6 {
		t.Fatalf("want 6 strategies")
	}
	byName := map[string]*StrategyRun{}
	for _, r := range runs {
		byName[r.Name] = r
	}
	ms := byName["metAScritic"]
	rnd := byName["Random"]
	if ms == nil || rnd == nil {
		t.Fatalf("missing strategies: %v", tbl)
	}
	// At laptop scale the budget saturates the tiny matrix, so strategies
	// converge; metAScritic must not be materially worse than Random (at
	// paper scale the gap is decisively in its favor, Table 2).
	if ms.FScore < rnd.FScore-0.08 {
		t.Fatalf("metAScritic F %.3f should not trail Random %.3f", ms.FScore, rnd.FScore)
	}
	for _, r := range runs {
		if r.Precision < 0 || r.Precision > 1 || r.Recall < 0 || r.Recall > 1 {
			t.Fatalf("bad P/R for %s", r.Name)
		}
		if r.Rank <= 0 {
			t.Fatalf("bad rank for %s", r.Name)
		}
	}
}

func TestFig7InferenceHelps(t *testing.T) {
	h := testHarness(t)
	res, tbl := Fig7(h)
	if res.Configs < 30 {
		t.Fatalf("too few hijack configs: %d", res.Configs)
	}
	if res.MeanInferredHi < res.MeanBGP {
		t.Fatalf("inference topology should not hurt hijack prediction: inf %.3f vs bgp %.3f", res.MeanInferredHi, res.MeanBGP)
	}
	if res.MeanBGP <= 0 || res.MeanInferredHi > 1 {
		t.Fatalf("accuracy out of range")
	}
	if tbl.String() == "" {
		t.Fatalf("empty table")
	}
}

func TestTable3FlatteningDirection(t *testing.T) {
	h := testHarness(t)
	rows, _ := Table3(h)
	if len(rows) != 7 { // 6 metros + global
		t.Fatalf("want 7 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.ProvM > r.ProvBGP+1e-9 {
			t.Fatalf("%s: measured links should not increase provider fraction (%.3f > %.3f)", r.Metro, r.ProvM, r.ProvBGP)
		}
		if r.ProvInf > r.ProvM+1e-9 {
			t.Fatalf("%s: inferred links should not increase provider fraction", r.Metro)
		}
		if r.ShorterInf+1e-9 < r.ShorterM {
			t.Fatalf("%s: adding inferences should not shrink the shorter-path fraction", r.Metro)
		}
	}
}

func TestTable4Complete(t *testing.T) {
	h := testHarness(t)
	rows, tbl := Table4(h)
	if len(rows) != 6 {
		t.Fatalf("want 6 rows")
	}
	fOf := func(p, rec float64) float64 {
		if p+rec == 0 {
			return 0
		}
		return 2 * p * rec / (p + rec)
	}
	var truthF, pubF float64
	for _, r := range rows {
		if r.NumASes == 0 || r.Rank == 0 {
			t.Fatalf("row incomplete: %+v", r)
		}
		if r.Measurements >= r.ExhaustiveBudget {
			t.Fatalf("%s: issued %d should be far below exhaustive %d", r.Metro, r.Measurements, r.ExhaustiveBudget)
		}
		if len(r.ExternalRecall) < 5 {
			t.Fatalf("%s: missing external datasets: %v", r.Metro, r.ExternalRecall)
		}
		truthF += fOf(r.TruthPrecision, r.TruthRecall)
		pubF += fOf(r.PublicOnlyPrec, r.PublicOnlyRec)
	}
	// Targeted measurements must beat public-only completion on mean
	// F-score (per-metro comparisons are seed-noisy at laptop scale).
	if truthF < pubF-0.1 {
		t.Fatalf("mean truth F %.3f below public-only %.3f", truthF/6, pubF/6)
	}
	if !strings.Contains(tbl.String(), "Amsterdam") {
		t.Fatalf("table missing metro names")
	}
}

func TestTable5AndFig16(t *testing.T) {
	h := testHarness(t)
	counts, _ := Table5(h)
	totalAdded := 0
	for _, c := range counts {
		totalAdded += c[1]
	}
	if totalAdded == 0 {
		t.Fatalf("metAScritic added no links")
	}
	rows, _ := Fig16(h)
	if len(rows) != 6 {
		t.Fatalf("want 6 metros")
	}
	// The first metro (largest, processed first) has no existing links.
	if rows[0].ExistingLinks != 0 {
		t.Fatalf("first metro cannot have previously-seen links")
	}
	for _, r := range rows {
		if r.Measured+r.Inferred != r.ExistingLinks+r.NewLinks {
			t.Fatalf("%s: link accounting mismatch: %+v", r.Metro, r)
		}
	}
}

func TestFig15ThresholdMonotonicity(t *testing.T) {
	h := testHarness(t)
	pts, _ := Fig15(h)
	if len(pts) < 9 {
		t.Fatalf("too few threshold points")
	}
	// Recall must be non-increasing with threshold.
	for k := 1; k < len(pts); k++ {
		if pts[k].Recall > pts[k-1].Recall+1e-9 {
			t.Fatalf("recall not monotone at λ=%.1f", pts[k].Threshold)
		}
	}
	// High thresholds should be high precision (the 0.9 ⇒ 97-99% claim,
	// allowing slack at laptop scale).
	last := pts[len(pts)-2] // λ=0.9
	if last.Precision < 0.6 {
		t.Fatalf("precision at λ=0.9 only %.3f", last.Precision)
	}
}

func TestFig9Transferability(t *testing.T) {
	h := testHarness(t)
	res, _ := Fig9(h)
	if res.Pairs == 0 {
		t.Skip("no multi-metro consistent pairs at this scale")
	}
	if res.FracHalf < res.FracAll {
		t.Fatalf("fraction at half must be >= fraction at all")
	}
	if res.FracHalf < 0.5 {
		t.Fatalf("transferability too weak: %+v", res)
	}
}

func TestFig10RankRecovery(t *testing.T) {
	h := testHarness(t)
	res, _ := Fig10(h, 50, 4)
	if len(res.Series) != 3 {
		t.Fatalf("want 3 series")
	}
	ms := res.Series[0]
	if ms.Name != "metAScritic" {
		t.Fatalf("first series should be metAScritic")
	}
	if ms.BestRank < res.TrueRank-2 || ms.BestRank > res.TrueRank+4 {
		t.Fatalf("recovered rank %d, want near %d", ms.BestRank, res.TrueRank)
	}
}

func TestFig11Discovery(t *testing.T) {
	h := testHarness(t)
	series, _ := Fig11(h)
	if len(series) != 6 {
		t.Fatalf("want 6 strategies")
	}
	for name, batches := range series {
		for k := 1; k < len(batches); k++ {
			if batches[k].Measurements <= batches[k-1].Measurements {
				t.Fatalf("%s: measurement counts not increasing", name)
			}
			// Entries can dip slightly when a new direct observation
			// flips an AS to inconsistent and suppresses its gated
			// negatives; they must still grow overall.
			if float64(batches[k].Entries) < 0.85*float64(batches[k-1].Entries) {
				t.Fatalf("%s: entries collapsed between batches", name)
			}
		}
		if n := len(batches); n > 1 && batches[n-1].Entries < batches[0].Entries {
			t.Fatalf("%s: entries shrank overall", name)
		}
	}
}

func TestFig12LowFillLessAccurate(t *testing.T) {
	h := testHarness(t)
	buckets, _ := Fig12(h)
	if len(buckets) < 2 {
		t.Skip("not enough fill diversity at this scale")
	}
	for _, b := range buckets {
		if b.Accuracy < 0 || b.Accuracy > 1 {
			t.Fatalf("accuracy out of range: %+v", b)
		}
	}
	// Compare only well-populated buckets: tiny buckets are pure noise at
	// this scale. The paper's claim is that rows below the rank threshold
	// misclassify substantially more.
	first, last := buckets[0], buckets[len(buckets)-1]
	if first.Rows >= 30 && last.Rows >= 30 && last.Accuracy+0.05 < first.Accuracy {
		t.Fatalf("rows with more entries should be at least as accurate: %+v vs %+v", first, last)
	}
}

func TestFig13And14Explanations(t *testing.T) {
	h := testHarness(t)
	summary, force, tbl := Fig13And14(h)
	if len(summary) == 0 {
		t.Fatalf("no summary")
	}
	// The paper's Fig. 13 findings, checked qualitatively: link counts,
	// shared footprint and customer-cone features carry the signal, while
	// PeeringDB policy/traffic attributes contribute minimally.
	topK := 8
	if len(summary) < topK {
		topK = len(summary)
	}
	foundStructural := false
	for _, s := range summary[:topK] {
		if strings.Contains(s.Feature, "Links") || strings.Contains(s.Feature, "Overlapping") ||
			strings.Contains(s.Feature, "Cone") || strings.Contains(s.Feature, "Footprint") {
			foundStructural = true
		}
	}
	if !foundStructural {
		t.Fatalf("structural features absent from top-%d: %+v", topK, summary[:topK])
	}
	for _, s := range summary[:3] {
		if strings.Contains(s.Feature, "Peering Policy") || strings.Contains(s.Feature, "Outbound") {
			t.Fatalf("PeeringDB feature %q should not dominate", s.Feature)
		}
	}
	if force == "" {
		t.Fatalf("no force explanation")
	}
	if tbl.String() == "" {
		t.Fatalf("empty table")
	}
}

func TestE3Efficiency(t *testing.T) {
	h := testHarness(t)
	rows, _ := E3(h)
	for _, r := range rows {
		if r.Ratio >= 0.5 {
			t.Fatalf("%s: measurement ratio %.3f not frugal", r.Metro, r.Ratio)
		}
	}
}

func TestE7PolicyOrdering(t *testing.T) {
	h := testHarness(t)
	rows, _ := E7(h)
	if len(rows) != 4 {
		t.Fatalf("want 4 policies")
	}
	byName := map[string]E7Row{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	// 0-negative has the fewest entries; full negative the most.
	if byName["0-negative"].Entries > byName["metAScritic"].Entries {
		t.Fatalf("0-negative should have fewer entries")
	}
	if byName["Full negative"].Entries < byName["metAScritic"].Entries {
		t.Fatalf("full negative should have at least metAScritic's entries")
	}
	// metAScritic's gates should not be more wrong than full-negative.
	if byName["metAScritic"].WrongNegative > byName["Full negative"].WrongNegative+0.05 {
		t.Fatalf("metAScritic wrong-negative rate should not exceed full negative: %+v", rows)
	}
}

func TestValidationSetsSane(t *testing.T) {
	h := testHarness(t)
	res := h.RunPrimaries()[0]
	sets := h.ValidationSets(res, 5)
	if len(sets) != 7 {
		t.Fatalf("want 7 validation sets, got %d", len(sets))
	}
	for _, vs := range sets {
		if vs.RecallOnly {
			for _, l := range vs.Labels {
				if !l {
					t.Fatalf("%s: recall-only set contains negatives", vs.Name)
				}
			}
		}
		p, r := vs.Score(res, res.Threshold)
		if p < 0 || p > 1 || r < 0 || r > 1 {
			t.Fatalf("%s: score out of range", vs.Name)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "bb"}}
	tbl.AddRow("xxx", "1")
	s := tbl.String()
	if !strings.Contains(s, "== T ==") || !strings.Contains(s, "xxx") {
		t.Fatalf("bad table rendering: %q", s)
	}
	if F(0.1234) != "0.123" || D(7) != "7" {
		t.Fatalf("formatters wrong")
	}
}
