package eval

import (
	"fmt"
	"os"
	"testing"
)

// TestScaleTable2 is a manual scale validation: run with
//
//	METASCRITIC_SCALE_TEST=1 go test ./internal/eval -run TestScaleTable2 -timeout 40m -v
//
// It is skipped by default (it takes several minutes).
func TestScaleTable2(t *testing.T) {
	if os.Getenv("METASCRITIC_SCALE_TEST") == "" {
		t.Skip("scale validation; set METASCRITIC_SCALE_TEST=1 to run")
	}
	h := NewHarness(Options{Scale: 0.45, Seed: 1, Budget: 6000, MaxRank: 30})
	runs, tbl := Table2(h)
	fmt.Println(tbl.String())
	for _, r := range runs {
		fmt.Printf("%-18s F=%.3f rank=%d\n", r.Name, r.FScore, r.Rank)
	}
}
