// Package explain provides the interpretability layer of §5.2: per-feature
// Shapley attributions for metAScritic's inferred ratings. Like the paper —
// which approximates Shapley values with the SHAP library — we do not
// enumerate all 2^d coalitions: a ridge-regression surrogate of the
// recommender admits exact linear Shapley values, and a permutation-
// sampling estimator covers arbitrary predictors.
package explain

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"metascritic/internal/asgraph"
	"metascritic/internal/mat"
	"metascritic/internal/obs"
)

// FeatureNames lists the pair features, mirroring Fig. 13.
var FeatureNames = []string{
	"# of Existing Links 1",
	"# of Non-Existing Links 1",
	"# of Existing Links 2",
	"# of Non-Existing Links 2",
	"Eyeballs 1",
	"Eyeballs 2",
	"# in Customer Cone 1",
	"# in Customer Cone 2",
	"Footprint Size 1",
	"Footprint Size 2",
	"# of IP Addresses 1",
	"# of IP Addresses 2",
	"AS Type 1",
	"AS Type 2",
	"Peering Policy 1",
	"Peering Policy 2",
	"Outbound 1",
	"Outbound 2",
	"ASN 1",
	"ASN 2",
	"Overlapping City",
	"Overlapping Country",
	"Overlapping Facility",
	"Overlapping IXP",
}

// NumFeatures is the pair-feature dimension.
var NumFeatures = len(FeatureNames)

// PairFeaturizer extracts the Fig. 13 feature vector for member AS pairs of
// one metro estimate.
type PairFeaturizer struct {
	G   *asgraph.Graph
	Est *obs.Estimate
	// SameFacility reports facility colocation at the metro (optional).
	SameFacility func(a, b int) bool

	posCount, negCount []int
}

// NewPairFeaturizer precomputes the per-AS link counts.
func NewPairFeaturizer(g *asgraph.Graph, est *obs.Estimate, sameFacility func(a, b int) bool) *PairFeaturizer {
	pf := &PairFeaturizer{G: g, Est: est, SameFacility: sameFacility}
	pf.posCount, pf.negCount = est.PairCounts()
	return pf
}

// Features returns the feature vector for member rows i and j.
func (pf *PairFeaturizer) Features(i, j int) []float64 {
	g := pf.G
	a := &g.ASes[pf.Est.Members[i]]
	b := &g.ASes[pf.Est.Members[j]]
	metro := pf.Est.Metro

	// Footprint intersection via bitsets (ScopeOfMetros returns SameMetro
	// exactly when the two indices are equal); the cross-country overlap
	// still needs the pair scan, but skips the diagonal.
	overlapCity := float64(a.Footprint().CommonCount(b.Footprint()))
	overlapCountry := 0.0
	for _, ma := range a.Metros {
		for _, mb := range b.Metros {
			if ma != mb && g.ScopeOfMetros(ma, mb) == asgraph.SameCountry {
				overlapCountry++
			}
		}
	}
	overlapIXP := float64(len(g.SharedIXPs(a.Index, b.Index)))
	overlapFac := 0.0
	if pf.SameFacility != nil && pf.SameFacility(a.Index, b.Index) {
		overlapFac = 1
	}
	_ = metro

	logf := func(v int) float64 { return math.Log1p(float64(v)) }
	return []float64{
		float64(pf.posCount[i]),
		float64(pf.negCount[i]),
		float64(pf.posCount[j]),
		float64(pf.negCount[j]),
		logf(a.Eyeballs),
		logf(b.Eyeballs),
		logf(g.ConeSize(a.Index)),
		logf(g.ConeSize(b.Index)),
		float64(len(a.Metros)),
		float64(len(b.Metros)),
		logf(a.AddrSpace),
		logf(b.AddrSpace),
		float64(a.Class),
		float64(b.Class),
		float64(a.Policy),
		float64(b.Policy),
		float64(a.Traffic),
		float64(b.Traffic),
		float64(a.ASN),
		float64(b.ASN),
		overlapCity,
		overlapCountry,
		overlapFac,
		overlapIXP,
	}
}

// Surrogate is a ridge-regression approximation of the recommender over
// pair features, admitting exact Shapley values.
type Surrogate struct {
	Weights  []float64 // per feature
	Bias     float64
	Means    []float64 // background (mean) feature values
	Baseline float64   // prediction at the background point
}

// FitSurrogate trains the ridge surrogate on (features, rating) samples.
func FitSurrogate(X [][]float64, y []float64, ridge float64) *Surrogate {
	if len(X) == 0 {
		return &Surrogate{Weights: make([]float64, 0)}
	}
	d := len(X[0])
	means := make([]float64, d)
	for _, row := range X {
		for k, v := range row {
			means[k] += v
		}
	}
	for k := range means {
		means[k] /= float64(len(X))
	}
	ymean := 0.0
	for _, v := range y {
		ymean += v
	}
	ymean /= float64(len(y))

	// Normal equations on centered data: (XᵀX + ridge·I) w = Xᵀy.
	xtx := mat.New(d, d)
	xty := make([]float64, d)
	for r, row := range X {
		for aIdx := 0; aIdx < d; aIdx++ {
			va := row[aIdx] - means[aIdx]
			xty[aIdx] += va * (y[r] - ymean)
			xrow := xtx.Row(aIdx)
			for bIdx := aIdx; bIdx < d; bIdx++ {
				xrow[bIdx] += va * (row[bIdx] - means[bIdx])
			}
		}
	}
	for aIdx := 0; aIdx < d; aIdx++ {
		for bIdx := aIdx + 1; bIdx < d; bIdx++ {
			xtx.Set(bIdx, aIdx, xtx.At(aIdx, bIdx))
		}
		xtx.Add(aIdx, aIdx, ridge+1e-9)
	}
	w, err := mat.CholeskySolve(xtx, xty)
	if err != nil {
		w = make([]float64, d)
	}
	s := &Surrogate{Weights: w, Means: means, Baseline: ymean}
	s.Bias = ymean
	for k := range w {
		s.Bias -= w[k] * means[k]
	}
	return s
}

// Predict evaluates the surrogate at x.
func (s *Surrogate) Predict(x []float64) float64 {
	v := s.Bias
	for k, w := range s.Weights {
		v += w * x[k]
	}
	return v
}

// Shapley returns the exact Shapley values of the linear surrogate at x:
// φ_k = w_k (x_k − E[x_k]). They sum to Predict(x) − Baseline.
func (s *Surrogate) Shapley(x []float64) []float64 {
	out := make([]float64, len(s.Weights))
	for k, w := range s.Weights {
		out[k] = w * (x[k] - s.Means[k])
	}
	return out
}

// SamplingShapley estimates Shapley values for an arbitrary predictor f by
// permutation sampling with a background point: for each sampled
// permutation, features are switched from background to x one at a time
// and the marginal change in f is credited to the switched feature.
func SamplingShapley(f func([]float64) float64, x, background []float64, samples int, rng *rand.Rand) []float64 {
	d := len(x)
	phi := make([]float64, d)
	if samples < 1 {
		samples = 1
	}
	cur := make([]float64, d)
	perm := make([]int, d)
	for i := range perm {
		perm[i] = i
	}
	for s := 0; s < samples; s++ {
		rng.Shuffle(d, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		copy(cur, background)
		prev := f(cur)
		for _, k := range perm {
			cur[k] = x[k]
			next := f(cur)
			phi[k] += next - prev
			prev = next
		}
	}
	for k := range phi {
		phi[k] /= float64(samples)
	}
	return phi
}

// Attribution pairs a feature with its Shapley value.
type Attribution struct {
	Feature string
	Value   float64 // feature value at the explained point
	Phi     float64 // Shapley contribution
}

// Force builds a force-plot style explanation (Fig. 14): attributions
// sorted by decreasing |φ|.
func Force(names []string, x, phi []float64) []Attribution {
	out := make([]Attribution, len(phi))
	for k := range phi {
		out[k] = Attribution{Feature: names[k], Value: x[k], Phi: phi[k]}
	}
	sort.Slice(out, func(a, b int) bool { return math.Abs(out[a].Phi) > math.Abs(out[b].Phi) })
	return out
}

// Summary is the beeswarm-style global importance (Fig. 13): mean |φ| per
// feature over many explained pairs, sorted descending.
type Summary struct {
	Feature    string
	MeanAbsPhi float64
}

// Summarize aggregates per-pair Shapley values into global importances.
func Summarize(names []string, phis [][]float64) []Summary {
	if len(phis) == 0 {
		return nil
	}
	d := len(phis[0])
	agg := make([]float64, d)
	for _, phi := range phis {
		for k, v := range phi {
			agg[k] += math.Abs(v)
		}
	}
	out := make([]Summary, d)
	for k := range agg {
		out[k] = Summary{Feature: names[k], MeanAbsPhi: agg[k] / float64(len(phis))}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].MeanAbsPhi > out[b].MeanAbsPhi })
	return out
}

// FormatForce renders a force explanation as text.
func FormatForce(base, prediction float64, attrs []Attribution, topK int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E[f(X)] = %.3f  →  f(x) = %.3f\n", base, prediction)
	for k, a := range attrs {
		if k >= topK {
			fmt.Fprintf(&b, "  … %d more features\n", len(attrs)-topK)
			break
		}
		fmt.Fprintf(&b, "  %+.3f  %s = %.3g\n", a.Phi, a.Feature, a.Value)
	}
	return b.String()
}
