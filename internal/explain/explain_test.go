package explain

import (
	"math"
	"math/rand"
	"testing"

	"metascritic/internal/asgraph"
	"metascritic/internal/ipmap"
	"metascritic/internal/obs"
	"metascritic/internal/traceroute"
)

func feq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFitSurrogateRecoversLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, n := 4, 400
	trueW := []float64{2, -1, 0.5, 0}
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = make([]float64, d)
		for k := range X[i] {
			X[i][k] = rng.NormFloat64()
		}
		y[i] = 3.0
		for k := range trueW {
			y[i] += trueW[k] * X[i][k]
		}
	}
	s := FitSurrogate(X, y, 1e-6)
	for k := range trueW {
		if !feq(s.Weights[k], trueW[k], 1e-6) {
			t.Fatalf("weights %v, want %v", s.Weights, trueW)
		}
	}
	if !feq(s.Predict(X[0]), y[0], 1e-6) {
		t.Fatalf("predict %v, want %v", s.Predict(X[0]), y[0])
	}
}

func TestLinearShapleyEfficiency(t *testing.T) {
	// Shapley values must sum to f(x) - baseline (efficiency axiom).
	rng := rand.New(rand.NewSource(2))
	d, n := 5, 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = make([]float64, d)
		for k := range X[i] {
			X[i][k] = rng.NormFloat64()
		}
		y[i] = X[i][0]*4 - X[i][3] + rng.NormFloat64()*0.01
	}
	s := FitSurrogate(X, y, 1e-4)
	for i := 0; i < 10; i++ {
		phi := s.Shapley(X[i])
		sum := 0.0
		for _, p := range phi {
			sum += p
		}
		if !feq(sum, s.Predict(X[i])-s.Baseline, 1e-9) {
			t.Fatalf("efficiency violated: sum %v vs %v", sum, s.Predict(X[i])-s.Baseline)
		}
	}
}

func TestSamplingShapleyMatchesLinear(t *testing.T) {
	// For a linear model, sampling Shapley converges to the exact values.
	rng := rand.New(rand.NewSource(3))
	w := []float64{1, -2, 3}
	f := func(x []float64) float64 {
		v := 0.0
		for k := range w {
			v += w[k] * x[k]
		}
		return v
	}
	x := []float64{1, 1, 1}
	bg := []float64{0, 0, 0}
	phi := SamplingShapley(f, x, bg, 50, rng)
	for k := range w {
		if !feq(phi[k], w[k], 1e-9) { // exact for additive models, any sample count
			t.Fatalf("phi = %v, want %v", phi, w)
		}
	}
}

func TestSamplingShapleyInteraction(t *testing.T) {
	// f = x0*x1: symmetric interaction must split evenly.
	rng := rand.New(rand.NewSource(4))
	f := func(x []float64) float64 { return x[0] * x[1] }
	phi := SamplingShapley(f, []float64{1, 1}, []float64{0, 0}, 500, rng)
	if !feq(phi[0], 0.5, 0.1) || !feq(phi[1], 0.5, 0.1) {
		t.Fatalf("interaction split %v, want ~[0.5 0.5]", phi)
	}
	sum := phi[0] + phi[1]
	if !feq(sum, 1, 1e-9) {
		t.Fatalf("efficiency: sum %v", sum)
	}
}

func TestForceAndSummary(t *testing.T) {
	names := []string{"a", "b", "c"}
	x := []float64{1, 2, 3}
	phi := []float64{0.1, -0.9, 0.5}
	attrs := Force(names, x, phi)
	if attrs[0].Feature != "b" || attrs[1].Feature != "c" || attrs[2].Feature != "a" {
		t.Fatalf("force order wrong: %+v", attrs)
	}
	sum := Summarize(names, [][]float64{phi, {0.2, 0.1, -0.1}})
	if sum[0].Feature != "b" {
		t.Fatalf("summary order wrong: %+v", sum)
	}
	if got := Summarize(names, nil); got != nil {
		t.Fatalf("empty summary should be nil")
	}
	txt := FormatForce(0.1, 0.6, attrs, 2)
	if txt == "" {
		t.Fatalf("empty force text")
	}
}

func TestPairFeaturizer(t *testing.T) {
	g := asgraph.NewGraph()
	g.Continents = []string{"EU"}
	g.Countries = []asgraph.Country{{Code: "NL", Continent: 0}}
	g.Metros = []*asgraph.Metro{{Index: 0, Name: "Amsterdam", Country: 0}}
	g.IXPs = []*asgraph.IXP{{Index: 0, Name: "IX", Metro: 0}}
	for i := 0; i < 3; i++ {
		g.AddAS(&asgraph.AS{ASN: 100 + i, Metros: []int{0}, Eyeballs: 1000 * (i + 1), AddrSpace: 256,
			Class: asgraph.Stub, Policy: asgraph.Open, Traffic: asgraph.Balanced})
	}
	g.ASes[0].IXPs = []int{0}
	g.ASes[1].IXPs = []int{0}

	// Address encoding: (AS+1)*10 + metro, so zero stays invalid.
	resolve := func(a ipmap.Addr) (ipmap.Info, bool) {
		if a == 0 {
			return ipmap.Info{}, false
		}
		return ipmap.Info{AS: int(a)/10 - 1, Metro: int(a) % 10, IXP: -1}, true
	}
	store := obs.NewStore(g, resolve)
	store.AddTrace(traceroute.Trace{
		VPAS: 0, VPMetro: 0, DstAS: 1,
		Hops: []traceroute.Hop{{Addr: 10, Responsive: true}, {Addr: 20, Responsive: true}},
	})
	est := store.Estimate(0, []int{0, 1, 2}, obs.NegMetascritic)
	pf := NewPairFeaturizer(g, est, func(a, b int) bool { return true })
	x := pf.Features(0, 1)
	if len(x) != NumFeatures {
		t.Fatalf("feature dim %d, want %d", len(x), NumFeatures)
	}
	byName := map[string]float64{}
	for k, n := range FeatureNames {
		byName[n] = x[k]
	}
	if byName["Overlapping IXP"] != 1 {
		t.Fatalf("overlapping IXP = %v", byName["Overlapping IXP"])
	}
	if byName["Overlapping Facility"] != 1 {
		t.Fatalf("overlapping facility = %v", byName["Overlapping Facility"])
	}
	if byName["ASN 1"] != 100 || byName["ASN 2"] != 101 {
		t.Fatalf("ASN features wrong")
	}
	if byName["# of Existing Links 1"] != 1 {
		t.Fatalf("existing-link count = %v", byName["# of Existing Links 1"])
	}
	// Pair (0,2): no facility overlap function effect; AS 2 has no IXP.
	x2 := pf.Features(0, 2)
	byName2 := map[string]float64{}
	for k, n := range FeatureNames {
		byName2[n] = x2[k]
	}
	if byName2["Overlapping IXP"] != 0 {
		t.Fatalf("pair (0,2) shares no IXP")
	}
}

func TestFitSurrogateEmpty(t *testing.T) {
	s := FitSurrogate(nil, nil, 1)
	if len(s.Weights) != 0 {
		t.Fatalf("empty fit should have no weights")
	}
}
