package mat

// Overlay presents a base Mask with a small set of entries removed, without
// copying the base. It is the holdout primitive of the rank-estimation and
// tuning loops: a draw removes a few entries per row, scores a completion,
// and moves on — with an Overlay that is a handful of short per-row delta
// slices instead of a full mask clone per draw.
//
// An Overlay never mutates its base. Reset clears the deltas so one Overlay
// can be reused across draws. The base mask must not be mutated while an
// Overlay over it is in use.
type Overlay struct {
	base    *Mask
	removed [][]int32 // removed[i] = sorted removed columns of row i (nil for most rows)
	touched []int32   // rows with a non-empty delta, unordered
}

// NewOverlay returns an overlay over base with no entries removed.
func NewOverlay(base *Mask) *Overlay {
	return &Overlay{base: base, removed: make([][]int32, base.n)}
}

// Base returns the underlying mask.
func (o *Overlay) Base() *Mask { return o.base }

// N returns the matrix dimension the overlay covers.
func (o *Overlay) N() int { return o.base.n }

// removeOne records the removal of column j from row i.
func (o *Overlay) removeOne(i, j int32) {
	row := o.removed[i]
	pos, ok := searchRow(row, j)
	if ok {
		return
	}
	if len(row) == 0 {
		o.touched = append(o.touched, i)
	}
	row = append(row, 0)
	copy(row[pos+1:], row[pos:])
	row[pos] = j
	o.removed[i] = row
}

// Remove marks entry (i, j) (and its mirror) as removed. Removing an entry
// the base does not observe is a no-op for Has/RowCount, which only ever
// subtract entries present in the base.
func (o *Overlay) Remove(i, j int) {
	o.removeOne(int32(i), int32(j))
	if i != j {
		o.removeOne(int32(j), int32(i))
	}
}

// Reset clears all removals, making the overlay transparent again. The
// per-row delta slices are retained for reuse.
func (o *Overlay) Reset() {
	for _, i := range o.touched {
		o.removed[i] = o.removed[i][:0]
	}
	o.touched = o.touched[:0]
}

// Has reports whether entry (i, j) is observed in the overlaid mask.
func (o *Overlay) Has(i, j int) bool {
	if _, rm := searchRow(o.removed[i], int32(j)); rm {
		return false
	}
	return o.base.Has(i, j)
}

// RowCount returns the number of observed entries in row i after removals.
func (o *Overlay) RowCount(i int) int {
	n := len(o.base.rows[i])
	// Deltas only ever hold base-observed columns in practice (holdouts are
	// drawn from the mask), but count defensively against stray removals.
	for _, j := range o.removed[i] {
		if _, ok := searchRow(o.base.rows[i], j); ok {
			n--
		}
	}
	return n
}

// Removed returns the sorted removed columns of row i as a read-only view
// (nil when the row has no delta).
func (o *Overlay) Removed(i int) []int32 { return o.removed[i] }

// AppendRow appends the surviving (observed, not removed) columns of row i
// to dst and returns it — the overlay analogue of Mask.RowView with
// caller-owned storage.
func (o *Overlay) AppendRow(dst []int32, i int) []int32 {
	row := o.base.rows[i]
	rm := o.removed[i]
	if len(rm) == 0 {
		return append(dst, row...)
	}
	k := 0
	for _, j := range row {
		for k < len(rm) && rm[k] < j {
			k++
		}
		if k < len(rm) && rm[k] == j {
			continue
		}
		dst = append(dst, j)
	}
	return dst
}

// Entries calls fn for every surviving entry with i <= j exactly once, in
// deterministic (row-major, sorted-column) order.
func (o *Overlay) Entries(fn func(i, j int)) {
	var scratch []int32
	for i := 0; i < o.base.n; i++ {
		scratch = o.AppendRow(scratch[:0], i)
		start, _ := searchRow(scratch, int32(i))
		for _, j := range scratch[start:] {
			fn(i, int(j))
		}
	}
}

// Materialize returns a standalone Mask equal to the overlaid view.
func (o *Overlay) Materialize() *Mask {
	m := NewMask(o.base.n)
	for i := 0; i < o.base.n; i++ {
		m.rows[i] = o.AppendRow(nil, i)
	}
	return m
}
