// Package mat provides the dense linear-algebra primitives metAScritic
// needs: matrices, Cholesky solves for the ALS normal equations, a Jacobi
// eigendecomposition for symmetric matrices, singular values, and the
// effective-rank measures used by the rank-estimation loop.
//
// The package is deliberately small and allocation-conscious rather than a
// general BLAS replacement: every routine here is on the hot path of the
// completion pipeline.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zeroed r×c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices. All rows must share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic("mat: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Mul returns a*b.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns a*x for a vector x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("mat: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Scale multiplies every element by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddMat returns a+b.
func AddMat(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: AddMat dimension mismatch")
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns a-b.
func Sub(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: Sub dimension mismatch")
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Symmetrize replaces m with (m + mᵀ)/2. Panics if m is not square.
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("mat: Symmetrize on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// ErrNotPositiveDefinite is returned by CholeskySolve when the system matrix
// is not (numerically) positive definite.
var ErrNotPositiveDefinite = errors.New("mat: matrix not positive definite")

// CholeskySolve solves A x = b for symmetric positive-definite A. It is the
// workhorse of the ALS normal equations (AᵀA + λI) x = Aᵀb where λ > 0
// guarantees positive definiteness.
func CholeskySolve(a *Matrix, b []float64) ([]float64, error) {
	x := make([]float64, a.Rows)
	if err := CholeskySolveScratch(a, b, make([]float64, len(a.Data)), x); err != nil {
		return nil, err
	}
	return x, nil
}

// CholeskySolveScratch is the allocation-free form of CholeskySolve for hot
// loops that solve many identically-sized systems (the per-row ALS solves):
// lfac (len n²) receives the factorization and out (len n) the solution.
// The arithmetic is identical to CholeskySolve, so results are bit-equal.
func CholeskySolveScratch(a *Matrix, b, lfac, out []float64) error {
	n := a.Rows
	if a.Cols != n || len(b) != n || len(lfac) < n*n || len(out) != n {
		panic("mat: CholeskySolveScratch dimension mismatch")
	}
	// Factor A = L Lᵀ.
	l := Matrix{Rows: n, Cols: n, Data: lfac[:n*n]}
	copy(l.Data, a.Data)
	for j := 0; j < n; j++ {
		d := l.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= v * v
		}
		if d <= 0 {
			return ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := l.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	// Forward substitution L y = b, writing y into out.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * out[k]
		}
		out[i] = s / l.At(i, i)
	}
	// Back substitution Lᵀ x = y, in place: x[i] reads y[i] before
	// overwriting it and only x[k] for k > i, which are already final.
	for i := n - 1; i >= 0; i-- {
		s := out[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * out[k]
		}
		out[i] = s / l.At(i, i)
	}
	return nil
}

// SymEigen computes the eigenvalues and eigenvectors of a symmetric matrix
// using the cyclic Jacobi method. Eigenvalues are returned sorted in
// decreasing order; column k of the returned matrix is the eigenvector for
// eigenvalue k. The input is not modified.
func SymEigen(a *Matrix) (vals []float64, vecs *Matrix) {
	n := a.Rows
	if a.Cols != n {
		panic("mat: SymEigen on non-square matrix")
	}
	w := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-18 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply rotation to rows/cols p and q of w.
				for k := 0; k < n; k++ {
					akp := w.At(k, p)
					akq := w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := w.At(p, k)
					aqk := w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by decreasing eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n; i++ { // simple selection sort: n is small here
		best := i
		for j := i + 1; j < n; j++ {
			if vals[idx[j]] > vals[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	sortedVals := make([]float64, n)
	sortedVecs := New(n, n)
	for k, id := range idx {
		sortedVals[k] = vals[id]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, k, v.At(r, id))
		}
	}
	return sortedVals, sortedVecs
}

// SingularValues returns the singular values of m in decreasing order,
// computed as the square roots of the eigenvalues of mᵀm (or m mᵀ,
// whichever is smaller).
func SingularValues(m *Matrix) []float64 {
	var g *Matrix
	if m.Rows <= m.Cols {
		g = Mul(m, m.T())
	} else {
		g = Mul(m.T(), m)
	}
	vals, _ := SymEigen(g)
	out := make([]float64, len(vals))
	for i, v := range vals {
		if v < 0 {
			v = 0
		}
		out[i] = math.Sqrt(v)
	}
	return out
}

// EffectiveRank returns the number of singular values of m that exceed
// tol * s_max. This is the "smallest number of dimensions required to
// reconstruct the matrix within a small error margin" sense used by the
// paper (Chua et al. network kriging).
func EffectiveRank(m *Matrix, tol float64) int {
	sv := SingularValues(m)
	if len(sv) == 0 || sv[0] == 0 {
		return 0
	}
	cut := tol * sv[0]
	r := 0
	for _, s := range sv {
		if s > cut {
			r++
		}
	}
	return r
}

// EffectiveRankAbsolute returns the number of singular values above an
// absolute threshold delta. A rank-r matrix plus i.i.d. noise of standard
// deviation δ has at most r singular values materially above the noise
// floor (Eisenstat–Ipsen perturbation bounds), which is how the controlled
// experiment of Appx. E.5 defines effective rank.
func EffectiveRankAbsolute(m *Matrix, delta float64) int {
	sv := SingularValues(m)
	r := 0
	for _, s := range sv {
		if s > delta {
			r++
		}
	}
	return r
}

// StableRank returns the stable (numerical) rank ‖m‖_F² / s_max², a smooth
// lower bound on rank that is robust to noise. Used as a diagnostic.
func StableRank(m *Matrix) float64 {
	sv := SingularValues(m)
	if len(sv) == 0 || sv[0] == 0 {
		return 0
	}
	var f2 float64
	for _, s := range sv {
		f2 += s * s
	}
	return f2 / (sv[0] * sv[0])
}

// LowRankApprox returns the best rank-k approximation of a symmetric matrix
// via its truncated eigendecomposition.
func LowRankApprox(a *Matrix, k int) *Matrix {
	n := a.Rows
	if k > n {
		k = n
	}
	vals, vecs := SymEigen(a)
	out := New(n, n)
	// Keep the k eigenvalues of largest magnitude.
	type ev struct {
		idx int
		abs float64
	}
	order := make([]ev, n)
	for i := 0; i < n; i++ {
		order[i] = ev{i, math.Abs(vals[i])}
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if order[j].abs > order[best].abs {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	for t := 0; t < k; t++ {
		id := order[t].idx
		lam := vals[id]
		for i := 0; i < n; i++ {
			vi := vecs.At(i, id)
			if vi == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Add(i, j, lam*vi*vecs.At(j, id))
			}
		}
	}
	return out
}
