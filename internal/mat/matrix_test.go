package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("New(2,3) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At(1,2) = %v, want 5", m.At(1, 2))
	}
	m.Add(1, 2, 2.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("Add: got %v, want 7.5", m.At(1, 2))
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows mismatch: %+v", m.Data)
	}
	empty := FromRows(nil)
	if empty.Rows != 0 || empty.Cols != 0 {
		t.Fatalf("FromRows(nil) should be 0x0")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentityAndMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	i := Identity(2)
	ai := Mul(a, i)
	for k := range a.Data {
		if a.Data[k] != ai.Data[k] {
			t.Fatalf("A*I != A at %d", k)
		}
	}
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	ab := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for k := range want.Data {
		if !almostEq(ab.Data[k], want.Data[k], 1e-12) {
			t.Fatalf("Mul: got %v want %v", ab.Data, want.Data)
		}
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on dimension mismatch")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T dims %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("T values wrong: %+v", at.Data)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestAddSubScaleNorm(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	s := AddMat(a, b)
	for _, v := range s.Data {
		if v != 5 {
			t.Fatalf("AddMat: %v", s.Data)
		}
	}
	d := Sub(s, b)
	for k := range a.Data {
		if d.Data[k] != a.Data[k] {
			t.Fatalf("Sub roundtrip failed")
		}
	}
	a2 := a.Clone()
	a2.Scale(2)
	if a2.At(1, 1) != 8 || a.At(1, 1) != 4 {
		t.Fatalf("Scale/Clone aliasing bug")
	}
	if !almostEq(a.FrobeniusNorm(), math.Sqrt(30), 1e-12) {
		t.Fatalf("FrobeniusNorm = %v", a.FrobeniusNorm())
	}
}

func TestSymmetry(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2.0000001, 1}})
	if !a.IsSymmetric(1e-3) {
		t.Fatalf("should be symmetric within 1e-3")
	}
	if a.IsSymmetric(1e-9) {
		t.Fatalf("should not be symmetric within 1e-9")
	}
	a.Symmetrize()
	if !a.IsSymmetric(0) {
		t.Fatalf("Symmetrize failed")
	}
	rect := New(2, 3)
	if rect.IsSymmetric(1) {
		t.Fatalf("non-square cannot be symmetric")
	}
}

func TestCholeskySolve(t *testing.T) {
	// SPD matrix A = Bᵀ B + I.
	b := FromRows([][]float64{{1, 2, 0}, {0, 1, 1}, {2, 0, 1}})
	a := AddMat(Mul(b.T(), b), Identity(3))
	want := []float64{1, -2, 3}
	rhs := a.MulVec(want)
	got, err := CholeskySolve(a, rhs)
	if err != nil {
		t.Fatalf("CholeskySolve: %v", err)
	}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-9) {
			t.Fatalf("solution %v, want %v", got, want)
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := CholeskySolve(a, []float64{1, 1}); err != ErrNotPositiveDefinite {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
}

func TestSymEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs := SymEigen(a)
	if !almostEq(vals[0], 3, 1e-9) || !almostEq(vals[1], 1, 1e-9) {
		t.Fatalf("eigenvalues %v", vals)
	}
	// Check A v = λ v for both eigenpairs.
	for k := 0; k < 2; k++ {
		v := []float64{vecs.At(0, k), vecs.At(1, k)}
		av := a.MulVec(v)
		for i := range v {
			if !almostEq(av[i], vals[k]*v[i], 1e-8) {
				t.Fatalf("eigenpair %d violated: Av=%v λv=%v", k, av, []float64{vals[k] * v[0], vals[k] * v[1]})
			}
		}
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 12
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	vals, vecs := SymEigen(a)
	// Reconstruct A = V Λ Vᵀ.
	recon := New(n, n)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				recon.Add(i, j, vals[k]*vecs.At(i, k)*vecs.At(j, k))
			}
		}
	}
	if d := Sub(a, recon).FrobeniusNorm(); d > 1e-8 {
		t.Fatalf("reconstruction error %v", d)
	}
	// Eigenvalues sorted decreasing.
	for k := 1; k < n; k++ {
		if vals[k] > vals[k-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", vals)
		}
	}
}

func TestSingularValues(t *testing.T) {
	// Rank-1 matrix u vᵀ has one nonzero singular value = |u||v|.
	u := []float64{1, 2, 2}
	v := []float64{3, 4}
	m := New(3, 2)
	for i := range u {
		for j := range v {
			m.Set(i, j, u[i]*v[j])
		}
	}
	sv := SingularValues(m)
	if !almostEq(sv[0], 15, 1e-8) { // |u|=3, |v|=5
		t.Fatalf("sv[0] = %v, want 15", sv[0])
	}
	if sv[1] > 1e-8 {
		t.Fatalf("sv[1] = %v, want ~0", sv[1])
	}
}

func TestEffectiveRank(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, r := 30, 4
	// Build symmetric rank-r matrix + small noise.
	f := New(n, r)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	a := Mul(f, f.T())
	noise := 1e-6
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			e := noise * rng.NormFloat64()
			a.Add(i, j, e)
			if j != i {
				a.Add(j, i, e)
			}
		}
	}
	if got := EffectiveRank(a, 1e-3); got != r {
		t.Fatalf("EffectiveRank = %d, want %d", got, r)
	}
	if got := EffectiveRankAbsolute(a, 1e-3); got != r {
		t.Fatalf("EffectiveRankAbsolute = %d, want %d", got, r)
	}
	sr := StableRank(a)
	if sr <= 0 || sr > float64(r)+0.5 {
		t.Fatalf("StableRank = %v, want in (0,%d]", sr, r)
	}
}

func TestEffectiveRankZeroMatrix(t *testing.T) {
	if got := EffectiveRank(New(5, 5), 0.01); got != 0 {
		t.Fatalf("EffectiveRank(zero) = %d", got)
	}
	if got := StableRank(New(3, 3)); got != 0 {
		t.Fatalf("StableRank(zero) = %v", got)
	}
}

func TestLowRankApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, r := 20, 3
	f := New(n, r)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	a := Mul(f, f.T())
	approx := LowRankApprox(a, r)
	if d := Sub(a, approx).FrobeniusNorm(); d > 1e-7 {
		t.Fatalf("rank-%d approx of rank-%d matrix should be exact, err %v", r, r, d)
	}
	// Rank-1 approx should be worse but nonzero.
	a1 := LowRankApprox(a, 1)
	if d := Sub(a, a1).FrobeniusNorm(); d <= 1e-7 {
		t.Fatalf("rank-1 approx suspiciously exact")
	}
}

// Property: Cholesky solve inverts mat-vec for random SPD systems.
func TestCholeskyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		b := New(n, n)
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		a := AddMat(Mul(b.T(), b), Identity(n))
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		rhs := a.MulVec(x)
		got, err := CholeskySolve(a, rhs)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(got[i], x[i], 1e-6) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: singular values are non-negative and sorted decreasing.
func TestSingularValuesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(10), 1+r.Intn(10)
		m := New(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		sv := SingularValues(m)
		for i, s := range sv {
			if s < -1e-12 {
				return false
			}
			if i > 0 && s > sv[i-1]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMask(t *testing.T) {
	m := NewMask(4)
	if m.N() != 4 || m.Count() != 0 {
		t.Fatalf("fresh mask wrong")
	}
	m.Set(0, 2)
	if !m.Has(0, 2) || !m.Has(2, 0) {
		t.Fatalf("mask should be symmetric")
	}
	if m.RowCount(0) != 1 || m.RowCount(2) != 1 || m.RowCount(1) != 0 {
		t.Fatalf("RowCount wrong")
	}
	if m.Count() != 2 {
		t.Fatalf("Count = %d, want 2", m.Count())
	}
	m.Set(1, 1)
	if m.Count() != 3 {
		t.Fatalf("diagonal Count = %d, want 3", m.Count())
	}
	entries := 0
	m.Entries(func(i, j int) {
		entries++
		if i > j {
			t.Fatalf("Entries emitted i>j: (%d,%d)", i, j)
		}
	})
	if entries != 2 {
		t.Fatalf("Entries visited %d, want 2", entries)
	}
	c := m.Clone()
	m.Unset(0, 2)
	if m.Has(0, 2) || m.Has(2, 0) {
		t.Fatalf("Unset failed")
	}
	if !c.Has(0, 2) {
		t.Fatalf("Clone aliases original")
	}
	js := c.RowEntries(0)
	if len(js) != 1 || js[0] != 2 {
		t.Fatalf("RowEntries = %v", js)
	}
}
