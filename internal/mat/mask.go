package mat

// Mask records which entries of a matrix are observed. It is the support
// set Ω of the matrix-completion problem: completion only trusts entries in
// the mask, and the rank-estimation loop removes and restores mask entries
// to build holdout sets.
//
// Internally the mask is CSR-style: one sorted []int32 column slice per
// row. Compared to the earlier map-of-bools representation this makes
// RowEntries/Entries allocation- and sort-free on the hot path (the order
// is maintained by Set), makes Clone a flat copy, and admits the zero-copy
// RowView used by the completion kernel. Overlay (overlay.go) layers
// holdout removals on top without copying.
type Mask struct {
	n    int
	rows [][]int32 // rows[i] = sorted observed column indices of row i
}

// NewMask returns an empty mask over an n×n matrix.
func NewMask(n int) *Mask {
	return &Mask{n: n, rows: make([][]int32, n)}
}

// N returns the matrix dimension the mask covers.
func (m *Mask) N() int { return m.n }

// searchRow returns the position of j in row (or the insertion point) and
// whether j is present.
func searchRow(row []int32, j int32) (int, bool) {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(row) && row[lo] == j
}

// setOne inserts j into row i, keeping the row sorted.
func (m *Mask) setOne(i, j int32) {
	row := m.rows[i]
	pos, ok := searchRow(row, j)
	if ok {
		return
	}
	row = append(row, 0)
	copy(row[pos+1:], row[pos:])
	row[pos] = j
	m.rows[i] = row
}

// unsetOne removes j from row i.
func (m *Mask) unsetOne(i, j int32) {
	row := m.rows[i]
	pos, ok := searchRow(row, j)
	if !ok {
		return
	}
	m.rows[i] = append(row[:pos], row[pos+1:]...)
}

// Set marks entry (i, j) observed (and (j, i), keeping the mask symmetric).
func (m *Mask) Set(i, j int) {
	m.setOne(int32(i), int32(j))
	if i != j {
		m.setOne(int32(j), int32(i))
	}
}

// Unset removes entry (i, j) (and its mirror).
func (m *Mask) Unset(i, j int) {
	m.unsetOne(int32(i), int32(j))
	if i != j {
		m.unsetOne(int32(j), int32(i))
	}
}

// Has reports whether entry (i, j) is observed.
func (m *Mask) Has(i, j int) bool {
	_, ok := searchRow(m.rows[i], int32(j))
	return ok
}

// RowCount returns the number of observed entries in row i.
func (m *Mask) RowCount(i int) int { return len(m.rows[i]) }

// RowEntries returns the observed column indices of row i, sorted. Sorted
// output keeps every consumer deterministic (several shuffle the result
// with a seeded RNG). The returned slice is freshly allocated — callers
// may reorder or mutate it freely without corrupting the mask's sorted-row
// CSR invariant (pinned by TestRowEntriesReturnsCopy). Use RowView when a
// read-only view suffices.
func (m *Mask) RowEntries(i int) []int {
	row := m.rows[i]
	out := make([]int, len(row))
	for k, j := range row {
		out[k] = int(j)
	}
	return out
}

// RowView returns the sorted observed column indices of row i as a
// zero-copy view into the mask's internal storage. The view must be
// treated as read-only and is invalidated by the next Set/Unset/CopyFrom
// on the mask.
func (m *Mask) RowView(i int) []int32 { return m.rows[i] }

// AppendRowEntries is RowEntries with caller-provided storage: it appends
// row i's sorted column indices onto buf and returns the extended slice,
// letting hot loops (the holdout sampler redraws every row each round)
// reuse one backing array instead of allocating per row.
func (m *Mask) AppendRowEntries(buf []int, i int) []int {
	for _, j := range m.rows[i] {
		buf = append(buf, int(j))
	}
	return buf
}

// Count returns the total number of observed entries, counting (i,j) and
// (j,i) separately (diagonal entries once).
func (m *Mask) Count() int {
	total := 0
	for _, r := range m.rows {
		total += len(r)
	}
	return total
}

// Reset empties the mask in place, keeping row capacity for reuse.
func (m *Mask) Reset() {
	for i := range m.rows {
		m.rows[i] = m.rows[i][:0]
	}
}

// Clone returns a deep copy of the mask.
func (m *Mask) Clone() *Mask {
	c := NewMask(m.n)
	for i, r := range m.rows {
		if len(r) > 0 {
			c.rows[i] = append(make([]int32, 0, len(r)), r...)
		}
	}
	return c
}

// CopyFrom replaces this mask's contents with other's (same dimension).
func (m *Mask) CopyFrom(other *Mask) {
	if m.n != other.n {
		panic("mat: CopyFrom dimension mismatch")
	}
	for i, r := range other.rows {
		m.rows[i] = append(m.rows[i][:0], r...)
	}
}

// Entries calls fn for every observed entry with i <= j exactly once, in
// deterministic (row-major, sorted-column) order.
func (m *Mask) Entries(fn func(i, j int)) {
	for i, row := range m.rows {
		// Rows are sorted, so binary-search the first j >= i.
		start, _ := searchRow(row, int32(i))
		for _, j := range row[start:] {
			fn(i, int(j))
		}
	}
}
