package mat

import "sort"

// Mask records which entries of a matrix are observed. It is the support
// set Ω of the matrix-completion problem: completion only trusts entries in
// the mask, and the rank-estimation loop removes and restores mask entries
// to build holdout sets.
type Mask struct {
	n    int
	rows []map[int]bool
}

// NewMask returns an empty mask over an n×n matrix.
func NewMask(n int) *Mask {
	rows := make([]map[int]bool, n)
	for i := range rows {
		rows[i] = make(map[int]bool)
	}
	return &Mask{n: n, rows: rows}
}

// N returns the matrix dimension the mask covers.
func (m *Mask) N() int { return m.n }

// Set marks entry (i, j) observed (and (j, i), keeping the mask symmetric).
func (m *Mask) Set(i, j int) {
	m.rows[i][j] = true
	m.rows[j][i] = true
}

// Unset removes entry (i, j) (and its mirror).
func (m *Mask) Unset(i, j int) {
	delete(m.rows[i], j)
	delete(m.rows[j], i)
}

// Has reports whether entry (i, j) is observed.
func (m *Mask) Has(i, j int) bool { return m.rows[i][j] }

// RowCount returns the number of observed entries in row i.
func (m *Mask) RowCount(i int) int { return len(m.rows[i]) }

// RowEntries returns the observed column indices of row i, sorted. Sorted
// output keeps every consumer deterministic (several shuffle the result
// with a seeded RNG, which would otherwise inherit map-iteration
// randomness). The returned slice is freshly allocated.
func (m *Mask) RowEntries(i int) []int {
	out := make([]int, 0, len(m.rows[i]))
	for j := range m.rows[i] {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// Count returns the total number of observed entries, counting (i,j) and
// (j,i) separately (diagonal entries once).
func (m *Mask) Count() int {
	total := 0
	for _, r := range m.rows {
		total += len(r)
	}
	return total
}

// Clone returns a deep copy of the mask.
func (m *Mask) Clone() *Mask {
	c := NewMask(m.n)
	for i, r := range m.rows {
		for j := range r {
			c.rows[i][j] = true
		}
	}
	return c
}

// CopyFrom replaces this mask's contents with other's (same dimension).
func (m *Mask) CopyFrom(other *Mask) {
	if m.n != other.n {
		panic("mat: CopyFrom dimension mismatch")
	}
	for i := range m.rows {
		m.rows[i] = make(map[int]bool, len(other.rows[i]))
		for j := range other.rows[i] {
			m.rows[i][j] = true
		}
	}
}

// Entries calls fn for every observed entry with i <= j exactly once, in
// deterministic (row-major, sorted-column) order.
func (m *Mask) Entries(fn func(i, j int)) {
	for i := range m.rows {
		for _, j := range m.RowEntries(i) {
			if j >= i {
				fn(i, j)
			}
		}
	}
}
