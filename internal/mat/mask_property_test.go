package mat

import (
	"math/rand"
	"sort"
	"testing"
)

// refMask is the seed map-of-bools mask, kept as the property-test oracle
// for the CSR implementation.
type refMask struct {
	n    int
	rows []map[int]bool
}

func newRefMask(n int) *refMask {
	rows := make([]map[int]bool, n)
	for i := range rows {
		rows[i] = map[int]bool{}
	}
	return &refMask{n: n, rows: rows}
}

func (m *refMask) set(i, j int)      { m.rows[i][j] = true; m.rows[j][i] = true }
func (m *refMask) unset(i, j int)    { delete(m.rows[i], j); delete(m.rows[j], i) }
func (m *refMask) has(i, j int) bool { return m.rows[i][j] }
func (m *refMask) rowEntries(i int) []int {
	out := make([]int, 0, len(m.rows[i]))
	for j := range m.rows[i] {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}
func (m *refMask) count() int {
	t := 0
	for _, r := range m.rows {
		t += len(r)
	}
	return t
}
func (m *refMask) clone() *refMask {
	c := newRefMask(m.n)
	for i, r := range m.rows {
		for j := range r {
			c.rows[i][j] = true
		}
	}
	return c
}

func sameAsRef(t *testing.T, op string, m *Mask, ref *refMask) {
	t.Helper()
	if m.Count() != ref.count() {
		t.Fatalf("after %s: Count = %d, want %d", op, m.Count(), ref.count())
	}
	for i := 0; i < ref.n; i++ {
		if m.RowCount(i) != len(ref.rows[i]) {
			t.Fatalf("after %s: RowCount(%d) = %d, want %d", op, i, m.RowCount(i), len(ref.rows[i]))
		}
		want := ref.rowEntries(i)
		got := m.RowEntries(i)
		if len(got) != len(want) {
			t.Fatalf("after %s: RowEntries(%d) = %v, want %v", op, i, got, want)
		}
		view := m.RowView(i)
		for k := range want {
			if got[k] != want[k] || int(view[k]) != want[k] {
				t.Fatalf("after %s: RowEntries/RowView(%d) = %v/%v, want %v", op, i, got, view, want)
			}
		}
		for j := 0; j < ref.n; j++ {
			if m.Has(i, j) != ref.has(i, j) {
				t.Fatalf("after %s: Has(%d,%d) = %v, want %v", op, i, j, m.Has(i, j), ref.has(i, j))
			}
		}
	}
	// Entries must emit each i<=j pair once, row-major, columns ascending.
	var seen [][2]int
	m.Entries(func(i, j int) { seen = append(seen, [2]int{i, j}) })
	var want [][2]int
	for i := 0; i < ref.n; i++ {
		for _, j := range ref.rowEntries(i) {
			if j >= i {
				want = append(want, [2]int{i, j})
			}
		}
	}
	if len(seen) != len(want) {
		t.Fatalf("after %s: Entries emitted %d pairs, want %d", op, len(seen), len(want))
	}
	for k := range want {
		if seen[k] != want[k] {
			t.Fatalf("after %s: Entries[%d] = %v, want %v", op, k, seen[k], want[k])
		}
	}
}

// TestMaskPropertyVsReference drives the CSR mask and the seed map
// implementation through the same random operation stream — Set, Unset,
// Clone, CopyFrom, and overlay draws — and checks full observable
// equivalence after every mutation.
func TestMaskPropertyVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(14)
		m := NewMask(n)
		ref := newRefMask(n)
		for step := 0; step < 120; step++ {
			i, j := rng.Intn(n), rng.Intn(n)
			switch op := rng.Intn(10); {
			case op < 5: // Set, diagonal included
				m.Set(i, j)
				ref.set(i, j)
				sameAsRef(t, "Set", m, ref)
			case op < 8: // Unset, including entries not present
				m.Unset(i, j)
				ref.unset(i, j)
				sameAsRef(t, "Unset", m, ref)
			case op < 9: // Clone must deep-copy; mutate the clone only
				c := m.Clone()
				refc := ref.clone()
				c.Set(i, j)
				refc.set(i, j)
				sameAsRef(t, "Clone+Set(clone)", c, refc)
				sameAsRef(t, "Clone(original)", m, ref)
			default: // CopyFrom round-trips through a scratch mask
				scratch := NewMask(n)
				scratch.Set(i, j)
				scratch.CopyFrom(m)
				sameAsRef(t, "CopyFrom", scratch, ref)
			}
		}

		// Overlay: remove a random subset of observed entries and compare
		// against a reference mask with the same entries unset.
		ov := NewOverlay(m)
		refWork := ref.clone()
		m.Entries(func(i, j int) {
			if rng.Float64() < 0.3 {
				ov.Remove(i, j)
				refWork.unset(i, j)
			}
		})
		for i := 0; i < n; i++ {
			if ov.RowCount(i) != len(refWork.rows[i]) {
				t.Fatalf("overlay RowCount(%d) = %d, want %d", i, ov.RowCount(i), len(refWork.rows[i]))
			}
			surv := ov.AppendRow(nil, i)
			want := refWork.rowEntries(i)
			if len(surv) != len(want) {
				t.Fatalf("overlay AppendRow(%d) = %v, want %v", i, surv, want)
			}
			for k := range want {
				if int(surv[k]) != want[k] {
					t.Fatalf("overlay AppendRow(%d) = %v, want %v", i, surv, want)
				}
			}
			for j := 0; j < n; j++ {
				if ov.Has(i, j) != refWork.has(i, j) {
					t.Fatalf("overlay Has(%d,%d) = %v, want %v", i, j, ov.Has(i, j), refWork.has(i, j))
				}
			}
		}
		mzd := ov.Materialize()
		var got, want [][2]int
		mzd.Entries(func(i, j int) { got = append(got, [2]int{i, j}) })
		ov.Entries(func(i, j int) { want = append(want, [2]int{i, j}) })
		if len(got) != len(want) {
			t.Fatalf("Materialize/Entries disagree: %v vs %v", got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("Materialize/Entries disagree at %d: %v vs %v", k, got[k], want[k])
			}
		}
		// Reset makes the overlay transparent again.
		ov.Reset()
		sameAsRef(t, "overlay-base-untouched", m, ref)
		for i := 0; i < n; i++ {
			if ov.RowCount(i) != m.RowCount(i) {
				t.Fatalf("after Reset: overlay RowCount(%d) = %d, want %d", i, ov.RowCount(i), m.RowCount(i))
			}
		}
	}
}

// TestRowEntriesReturnsCopy pins the documented contract that RowEntries
// returns a freshly-allocated slice: callers (e.g. the pipeline's
// threshold picker and the eval holdout builders) shuffle the result with
// seeded RNGs, and that must never disturb the mask's sorted-row CSR
// invariant.
func TestRowEntriesReturnsCopy(t *testing.T) {
	n := 24
	m := NewMask(n)
	rng := rand.New(rand.NewSource(5))
	for k := 0; k < 120; k++ {
		m.Set(rng.Intn(n), rng.Intn(n))
	}
	for i := 0; i < n; i++ {
		before := append([]int32(nil), m.RowView(i)...)
		got := m.RowEntries(i)
		// Mutate the returned slice as hard as possible.
		rng.Shuffle(len(got), func(a, b int) { got[a], got[b] = got[b], got[a] })
		for k := range got {
			got[k] = -1
		}
		view := m.RowView(i)
		if len(view) != len(before) {
			t.Fatalf("row %d: length changed after mutating RowEntries result", i)
		}
		for k := range view {
			if view[k] != before[k] {
				t.Fatalf("row %d: mask storage changed after mutating RowEntries result: %v -> %v", i, before, view)
			}
			if k > 0 && view[k-1] >= view[k] {
				t.Fatalf("row %d: sorted-row invariant broken: %v", i, view)
			}
		}
	}
}
