package mat

import (
	"math/rand"
	"testing"
)

func randomSPD(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	b := New(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	return AddMat(Mul(b.T(), b), Identity(n))
}

func BenchmarkCholeskySolve(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(sizeName(n), func(b *testing.B) {
			a := randomSPD(n, 1)
			rhs := make([]float64, n)
			for i := range rhs {
				rhs[i] = float64(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := CholeskySolve(a, rhs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSymEigen(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(sizeName(n), func(b *testing.B) {
			a := randomSPD(n, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				SymEigen(a)
			}
		})
	}
}

func BenchmarkMul(b *testing.B) {
	a := randomSPD(96, 3)
	c := randomSPD(96, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(a, c)
	}
}

func BenchmarkEffectiveRank(b *testing.B) {
	a := randomSPD(64, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EffectiveRank(a, 0.05)
	}
}

func sizeName(n int) string {
	switch n {
	case 16:
		return "n16"
	case 64:
		return "n64"
	default:
		return "n"
	}
}
