package netsim

import (
	"fmt"
	"testing"

	"metascritic/internal/benchscale"
)

// manyMetroConfig builds a world spec with more metros than fit in one
// bitset word — the size class the historical generator rejected with
// "more than 64 metros not supported".
func manyMetroConfig(nMetros, asesPerMetro int) Config {
	countries := []struct{ c, cont string }{
		{"US", "NA"}, {"BR", "SA"}, {"DE", "EU"}, {"JP", "AS"}, {"AU", "OC"}, {"ZA", "AF"},
	}
	specs := make([]MetroSpec, nMetros)
	for i := range specs {
		r := countries[i%len(countries)]
		specs[i] = MetroSpec{
			Name:       fmt.Sprintf("M%03d", i),
			Country:    r.c,
			Continent:  r.cont,
			NumASes:    asesPerMetro,
			VPCoverage: 0.5,
			Primary:    i < 3,
		}
	}
	return Config{Seed: 11, Metros: specs}
}

// TestGenerateManyMetros pins the removal of the 64-metro hard limit: a
// 70-metro world must generate, and links must materialize at metros
// beyond bit 63 (i.e. the multi-word footprint bitset actually works).
func TestGenerateManyMetros(t *testing.T) {
	w := Generate(manyMetroConfig(70, 25))
	if len(w.G.Metros) != 70 {
		t.Fatalf("got %d metros, want 70", len(w.G.Metros))
	}
	high := 0
	for _, metros := range w.LinkMetros {
		for _, m := range metros {
			if m > 63 {
				high++
			}
		}
	}
	if high == 0 {
		t.Fatal("no links materialized at metros beyond index 63")
	}
	for mi, tr := range w.Truths {
		if mi > 63 && tr.NumLinks() > 0 {
			return
		}
	}
	t.Fatal("no truth matrix beyond metro 63 has links")
}

// TestGenerateWorkerInvariance pins the determinism contract of the
// parallel peering build: the same seed must yield a byte-identical
// world (full fingerprint, including adjacency insertion order) at any
// worker count.
func TestGenerateWorkerInvariance(t *testing.T) {
	cfg := manyMetroConfig(70, 20)
	var want uint64
	for i, workers := range []int{1, 2, 7, 16} {
		c := cfg
		c.Workers = workers
		got := fingerprint(Generate(c))
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d: fingerprint %#x, want %#x", workers, got, want)
		}
	}
}

// TestInternetMetrosShape sanity-checks the synthesized Internet-scale
// metro set: the paper's six study metros stay primary, total capacity
// lands near the requested AS count, and there are enough metros to
// exercise the multi-word bitsets.
func TestInternetMetrosShape(t *testing.T) {
	specs := InternetMetros(100_000)
	if len(specs) <= 64 {
		t.Fatalf("got %d metros, want > 64", len(specs))
	}
	if !specs[0].Primary || specs[0].Name != "Amsterdam" {
		t.Fatalf("study metros missing from head: %+v", specs[0])
	}
	total := 0
	maxM := 0
	for _, s := range specs {
		total += s.NumASes
		if s.NumASes > maxM {
			maxM = s.NumASes
		}
	}
	if total < 80_000 || total > 130_000 {
		t.Fatalf("total metro capacity %d, want ~100k", total)
	}
	// The head must stay heavy-tailed but bounded: the largest metro's
	// truth matrix is O(members²) and must not dominate memory.
	if maxM > 12_000 {
		t.Fatalf("largest metro has %d ASes; truth matrix would blow up", maxM)
	}
}

// BenchmarkGenerate measures end-to-end world generation at Internet
// scales (wall clock + bytes allocated). Sizes honor
// METASCRITIC_BENCH_SCALE so `make bench` can run a shrunken version.
func BenchmarkGenerate(b *testing.B) {
	for _, ases := range []int{
		benchscale.N(10_000, 1_000),
		benchscale.N(100_000, 5_000),
	} {
		b.Run(fmt.Sprintf("ases=%d", ases), func(b *testing.B) {
			cfg := Config{Seed: 5, Metros: InternetMetros(ases)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := Generate(cfg)
				b.ReportMetric(float64(len(w.LinkMetros)), "links")
				b.ReportMetric(float64(w.G.N()), "ases")
			}
		})
	}
}
