package netsim

import (
	"testing"
	"testing/quick"

	"metascritic/internal/asgraph"
)

// Property: across random seeds, structural invariants of generated worlds
// hold — symmetric truth matrices with zero diagonals, link metros within
// shared footprints (or the customer's home metro for long-haul transit),
// relationships consistent with the graph, and IXP members present at the
// IXP's metro.
func TestWorldInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		w := Generate(Config{Seed: seed, Metros: DefaultMetros(0.06)})
		// Truth matrices.
		for _, tr := range w.Truths {
			if !tr.M.IsSymmetric(0) {
				return false
			}
			for i := 0; i < tr.M.Rows; i++ {
				if tr.M.At(i, i) != 0 {
					return false
				}
			}
		}
		// Link metros.
		for pr, metros := range w.LinkMetros {
			if len(metros) == 0 {
				return false
			}
			rel := w.Rel[pr]
			shared := map[int]bool{}
			for _, m := range w.G.SharedMetros(pr.A, pr.B) {
				shared[m] = true
			}
			for _, m := range metros {
				if shared[m] {
					continue
				}
				if rel != asgraph.C2P {
					return false // peering requires colocation
				}
				// Long-haul transit: must be the customer's home metro.
				cust := pr.A
				if !w.CustomerIsA[pr] {
					cust = pr.B
				}
				if m != w.G.ASes[cust].Metros[0] {
					return false
				}
			}
		}
		// Relationship consistency.
		for pr, rel := range w.Rel {
			switch rel {
			case asgraph.P2P:
				if !w.G.HasPeer(pr.A, pr.B) {
					return false
				}
			case asgraph.C2P:
				cust, prov := pr.A, pr.B
				if !w.CustomerIsA[pr] {
					cust, prov = prov, cust
				}
				if !w.G.HasProvider(cust, prov) {
					return false
				}
			}
		}
		// IXP membership implies metro presence.
		for _, ix := range w.G.IXPs {
			for _, m := range ix.Members {
				if !w.G.ASes[m].HasMetro(ix.Metro) {
					return false
				}
			}
		}
		// Probes live in ASes present at their metro.
		for _, p := range w.Probes {
			if !w.G.ASes[p.AS].HasMetro(p.Metro) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// Property: the hidden latent vectors have the configured dimension and
// footprints are sorted and unique.
func TestFootprintProperty(t *testing.T) {
	f := func(seed int64) bool {
		w := Generate(Config{Seed: seed, Metros: DefaultMetros(0.06), LatentDim: 6})
		if w.Latent.Cols != 6 || w.Latent.Rows != w.G.N() {
			return false
		}
		for _, a := range w.G.ASes {
			for i := 1; i < len(a.Metros); i++ {
				if a.Metros[i] <= a.Metros[i-1] {
					return false
				}
			}
			if len(a.Metros) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}
