package netsim

import (
	"testing"

	"metascritic/internal/asgraph"
	"metascritic/internal/mat"
)

// testWorld generates a small world shared by the tests in this file.
func testWorld(t *testing.T) *World {
	t.Helper()
	return Generate(Config{Seed: 1, Metros: DefaultMetros(0.15)})
}

func TestGenerateDeterministic(t *testing.T) {
	w1 := Generate(Config{Seed: 42, Metros: DefaultMetros(0.1)})
	w2 := Generate(Config{Seed: 42, Metros: DefaultMetros(0.1)})
	if w1.G.N() != w2.G.N() {
		t.Fatalf("AS counts differ: %d vs %d", w1.G.N(), w2.G.N())
	}
	if len(w1.LinkMetros) != len(w2.LinkMetros) {
		t.Fatalf("link counts differ: %d vs %d", len(w1.LinkMetros), len(w2.LinkMetros))
	}
	for pr, ms := range w1.LinkMetros {
		ms2 := w2.LinkMetros[pr]
		if len(ms) != len(ms2) {
			t.Fatalf("pair %v metros differ", pr)
		}
	}
	w3 := Generate(Config{Seed: 43, Metros: DefaultMetros(0.1)})
	if len(w3.LinkMetros) == len(w1.LinkMetros) && w3.G.N() == w1.G.N() {
		// Different seeds should almost surely differ in some link.
		same := true
		for pr := range w1.LinkMetros {
			if _, ok := w3.LinkMetros[pr]; !ok {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("different seeds produced identical topologies")
		}
	}
}

func TestGeographyBuilt(t *testing.T) {
	w := testWorld(t)
	if len(w.G.Metros) != len(DefaultMetros(0.15)) {
		t.Fatalf("metro count %d", len(w.G.Metros))
	}
	// NL appears once despite two NL metros.
	nl := 0
	for _, c := range w.G.Countries {
		if c.Code == "NL" {
			nl++
		}
	}
	if nl != 1 {
		t.Fatalf("NL countries = %d", nl)
	}
	ams := w.G.MetroOfName("Amsterdam")
	rot := w.G.MetroOfName("Rotterdam")
	if ams == nil || rot == nil || ams.Country != rot.Country {
		t.Fatalf("Amsterdam and Rotterdam should share a country")
	}
}

func TestEveryASHasProviderPathToTier1(t *testing.T) {
	w := testWorld(t)
	for _, a := range w.G.ASes {
		if a.Class == asgraph.Tier1 {
			continue
		}
		// Walk providers upward; must reach a Tier1 within N hops.
		seen := map[int]bool{}
		frontier := []int{a.Index}
		found := false
		for len(frontier) > 0 && !found {
			var next []int
			for _, x := range frontier {
				for _, p32 := range w.G.Providers[x] {
					p := int(p32)
					if seen[p] {
						continue
					}
					seen[p] = true
					if w.G.ASes[p].Class == asgraph.Tier1 {
						found = true
					}
					next = append(next, p)
				}
			}
			frontier = next
		}
		if !found {
			t.Fatalf("AS %d (%v) has no provider path to a Tier1", a.Index, a.Class)
		}
	}
}

func TestTier1FullMesh(t *testing.T) {
	w := testWorld(t)
	var t1 []int
	for _, a := range w.G.ASes {
		if a.Class == asgraph.Tier1 {
			t1 = append(t1, a.Index)
		}
	}
	if len(t1) < 2 {
		t.Fatalf("too few Tier1s: %d", len(t1))
	}
	for i := 0; i < len(t1); i++ {
		for j := i + 1; j < len(t1); j++ {
			if !w.G.HasPeer(t1[i], t1[j]) {
				t.Fatalf("Tier1 %d and %d not peered", t1[i], t1[j])
			}
		}
	}
}

func TestTruthMatricesSymmetricAndConsistent(t *testing.T) {
	w := testWorld(t)
	for mi, tr := range w.Truths {
		if !tr.M.IsSymmetric(0) {
			t.Fatalf("truth matrix of metro %d not symmetric", mi)
		}
		if tr.M.Rows != len(tr.Members) {
			t.Fatalf("metro %d matrix dim %d != members %d", mi, tr.M.Rows, len(tr.Members))
		}
		for ai, row := range tr.Index {
			if tr.Members[row] != ai {
				t.Fatalf("metro %d index map inconsistent", mi)
			}
		}
		// Diagonal is zero: no self links.
		for i := 0; i < tr.M.Rows; i++ {
			if tr.M.At(i, i) != 0 {
				t.Fatalf("metro %d has self link at %d", mi, i)
			}
		}
	}
}

func TestLinkMetrosMatchTruth(t *testing.T) {
	w := testWorld(t)
	for pr, metros := range w.LinkMetros {
		for _, m := range metros {
			tr := w.Truths[m]
			_, okA := tr.Index[pr.A]
			_, okB := tr.Index[pr.B]
			if okA && okB && !tr.Has(pr.A, pr.B) {
				t.Fatalf("pair %v listed at metro %d but truth matrix disagrees", pr, m)
			}
		}
		if len(metros) == 0 {
			t.Fatalf("pair %v has empty metro list", pr)
		}
	}
}

func TestRouteServerPairsLinked(t *testing.T) {
	w := testWorld(t)
	// Count how many co-route-server pairs at an IXP are interconnected at
	// that IXP's metro; should be the vast majority.
	total, linked := 0, 0
	for _, ix := range w.G.IXPs {
		for i := 0; i < len(ix.Members); i++ {
			a := ix.Members[i]
			if !w.G.ASes[a].OnRouteServer(ix.Index) {
				continue
			}
			for j := i + 1; j < len(ix.Members); j++ {
				b := ix.Members[j]
				if !w.G.ASes[b].OnRouteServer(ix.Index) {
					continue
				}
				total++
				if w.Truths[ix.Metro].Has(a, b) {
					linked++
				}
			}
		}
	}
	if total == 0 {
		t.Skip("no route-server pairs in tiny world")
	}
	if frac := float64(linked) / float64(total); frac < 0.85 {
		t.Fatalf("route-server mesh fraction %.2f, want >= 0.85", frac)
	}
}

func TestOpenPolicyPeersMore(t *testing.T) {
	w := testWorld(t)
	degree := func(filter asgraph.PeeringPolicy) float64 {
		tot, n := 0, 0
		for _, a := range w.G.ASes {
			if a.Policy != filter || a.Class == asgraph.Tier1 {
				continue
			}
			tot += len(w.G.Peers[a.Index])
			n++
		}
		if n == 0 {
			return 0
		}
		return float64(tot) / float64(n)
	}
	open, restrictive := degree(asgraph.Open), degree(asgraph.Restrictive)
	if open <= restrictive {
		t.Fatalf("open ASes should peer more: open=%.1f restrictive=%.1f", open, restrictive)
	}
}

func TestMetroMatrixEffectivelyLowRank(t *testing.T) {
	// The central premise: T_m has effective rank well below its
	// dimension (the paper reports 3.7%-26%, avg 12.6% for IXP matrices
	// and ranks 26-59 for metros of 367-1574 ASes).
	w := Generate(Config{Seed: 3, Metros: DefaultMetros(0.3)})
	mi := w.G.MetroOfName("Amsterdam").Index
	tr := w.Truths[mi]
	n := tr.M.Rows
	if n < 60 {
		t.Skip("metro too small for a meaningful rank test")
	}
	r := mat.EffectiveRank(tr.M, 0.05)
	if r == 0 {
		t.Fatalf("zero effective rank implies no links at all")
	}
	if float64(r) > 0.45*float64(n) {
		t.Fatalf("effective rank %d of %d not low-rank", r, n)
	}
}

func TestProbePlacementRespectsCoverage(t *testing.T) {
	w := testWorld(t)
	for mi, ms := range w.Cfg.Metros {
		members := w.G.Metros[mi].Members
		if len(members) == 0 {
			continue
		}
		n := 0
		for _, ai := range members {
			if w.HasProbe(ai) {
				n++
			}
		}
		frac := float64(n) / float64(len(members))
		// Coverage should be within a loose band of the target (overlap
		// with multi-metro ASes can push it above).
		if frac < ms.VPCoverage*0.4-0.05 {
			t.Fatalf("metro %s coverage %.2f far below target %.2f", ms.Name, frac, ms.VPCoverage)
		}
	}
	// Sao Paulo should have much poorer coverage than Amsterdam.
	cov := func(name string) float64 {
		m := w.G.MetroOfName(name)
		n := 0
		for _, ai := range m.Members {
			if w.HasProbe(ai) {
				n++
			}
		}
		return float64(n) / float64(len(m.Members))
	}
	if cov("SaoPaulo") >= cov("Amsterdam") {
		t.Fatalf("SaoPaulo coverage %.2f should be below Amsterdam %.2f", cov("SaoPaulo"), cov("Amsterdam"))
	}
}

func TestProbeInCone(t *testing.T) {
	w := testWorld(t)
	// Every probe AS trivially has a probe in its cone.
	for _, ai := range w.ProbeASes {
		if !w.ProbeInCone(ai) {
			t.Fatalf("probe AS %d not detected in own cone", ai)
		}
	}
}

func TestRelAndInterconnectAccessors(t *testing.T) {
	w := testWorld(t)
	for pr, rel := range w.Rel {
		r, ok := w.RelOf(pr.A, pr.B)
		if !ok || r != rel {
			t.Fatalf("RelOf(%v) = %v,%v", pr, r, ok)
		}
		if rel == asgraph.C2P {
			cust, prov := pr.A, pr.B
			if !w.CustomerIsA[pr] {
				cust, prov = prov, cust
			}
			if !w.IsCustomerOf(cust, prov) {
				t.Fatalf("C2P pair %v inconsistent with graph", pr)
			}
		}
		if ms := w.InterconnectMetros(pr.A, pr.B); len(ms) == 0 {
			t.Fatalf("pair %v has no interconnect metros", pr)
		}
	}
	if _, ok := w.RelOf(0, 0); ok {
		t.Fatalf("self pair should not be related")
	}
}

func TestTransferabilityBand(t *testing.T) {
	// Appx. E.4: 42-65% of interconnections exist at all colocated
	// metros; 70-90% at half or more. Verify the generator lands near
	// that band for multi-metro pairs.
	w := Generate(Config{Seed: 5, Metros: DefaultMetros(0.3)})
	all, half, total := 0, 0, 0
	for pr, metros := range w.LinkMetros {
		if rel := w.Rel[pr]; rel != asgraph.P2P {
			continue
		}
		shared := w.G.SharedMetros(pr.A, pr.B)
		if len(shared) < 2 {
			continue
		}
		total++
		frac := float64(len(metros)) / float64(len(shared))
		if frac >= 1 {
			all++
		}
		if frac >= 0.5 {
			half++
		}
	}
	if total < 50 {
		t.Skip("not enough multi-metro pairs")
	}
	fa := float64(all) / float64(total)
	fh := float64(half) / float64(total)
	if fa < 0.3 || fa > 0.8 {
		t.Fatalf("all-locations fraction %.2f outside plausible band", fa)
	}
	if fh < 0.6 {
		t.Fatalf("half-locations fraction %.2f too low", fh)
	}
}

func TestFacilitiesPartitionMembers(t *testing.T) {
	w := testWorld(t)
	for mi, facs := range w.Facilities {
		seen := map[int]int{}
		for _, f := range facs {
			for _, ai := range f {
				seen[ai]++
			}
		}
		for _, ai := range w.G.Metros[mi].Members {
			if seen[ai] != 1 {
				t.Fatalf("metro %d AS %d in %d facilities", mi, ai, seen[ai])
			}
		}
	}
}

func TestPrimaryMetros(t *testing.T) {
	w := testWorld(t)
	p := w.PrimaryMetros()
	if len(p) != 6 {
		t.Fatalf("primary metros = %v", p)
	}
	names := map[string]bool{}
	for _, mi := range p {
		names[w.G.Metros[mi].Name] = true
	}
	for _, want := range []string{"Amsterdam", "NewYork", "SaoPaulo", "Singapore", "Sydney", "Tokyo"} {
		if !names[want] {
			t.Fatalf("missing primary metro %s", want)
		}
	}
}

func TestMakePairCanonical(t *testing.T) {
	if MakePair(5, 2) != (Pair{A: 2, B: 5}) || MakePair(2, 5) != (Pair{A: 2, B: 5}) {
		t.Fatalf("MakePair not canonical")
	}
}

func TestNumLinksAndSameFacility(t *testing.T) {
	w := testWorld(t)
	total := 0
	for mi, tr := range w.Truths {
		n := tr.NumLinks()
		total += n
		// NumLinks must equal the symmetric matrix's positive upper
		// triangle.
		cnt := 0
		for i := 0; i < tr.M.Rows; i++ {
			for j := i + 1; j < tr.M.Cols; j++ {
				if tr.M.At(i, j) > 0.5 {
					cnt++
				}
			}
		}
		if cnt != n {
			t.Fatalf("metro %d NumLinks %d != counted %d", mi, n, cnt)
		}
	}
	if total == 0 {
		t.Fatalf("world has no links at all")
	}
	// SameFacility: members of the same facility report true; a member
	// and a non-member report false.
	for mi, facs := range w.Facilities {
		for _, f := range facs {
			if len(f) >= 2 {
				if !w.SameFacility(f[0], f[1], mi) {
					t.Fatalf("facility mates not colocated")
				}
			}
		}
		if len(facs) >= 2 && len(facs[0]) > 0 && len(facs[1]) > 0 {
			if w.SameFacility(facs[0][0], facs[1][0], mi) {
				t.Fatalf("different facilities reported colocated")
			}
		}
		break
	}
}
