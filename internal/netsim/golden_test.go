package netsim

import (
	"hash/fnv"
	"math"
	"sort"
	"testing"
)

// fingerprint folds every generated artifact that downstream code can
// observe — graph structure, adjacency order, link metros, relationships,
// latent vectors, probes, facilities — into one FNV-1a hash. Map-shaped
// state is serialized in sorted order so the hash is iteration-order
// independent.
func fingerprint(w *World) uint64 {
	h := fnv.New64a()
	wInt := func(v int) {
		var b [8]byte
		u := uint64(v)
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	wF := func(f float64) { wInt(int(math.Float64bits(f))) }
	wBool := func(v bool) {
		if v {
			wInt(1)
		} else {
			wInt(0)
		}
	}

	g := w.G
	wInt(g.N())
	wInt(len(g.Metros))
	wInt(len(g.IXPs))
	for i := 0; i < g.N(); i++ {
		a := g.ASes[i]
		wInt(a.ASN)
		wInt(int(a.Class))
		wInt(int(a.Policy))
		wInt(int(a.Traffic))
		wInt(a.Eyeballs)
		wInt(a.AddrSpace)
		wInt(a.Country)
		wBool(a.ConsistentRouting)
		wInt(len(a.Metros))
		for _, m := range a.Metros {
			wInt(m)
		}
		wInt(len(a.IXPs))
		for _, x := range a.IXPs {
			wInt(x)
			wBool(a.OnRouteServer(x))
		}
	}
	// Adjacency, including list order (routing tie-breaks can observe it).
	for i := 0; i < g.N(); i++ {
		provs := g.Providers[i]
		wInt(len(provs))
		for _, p := range provs {
			wInt(int(p))
		}
		peers := g.Peers[i]
		wInt(len(peers))
		for _, p := range peers {
			wInt(int(p))
		}
	}
	for _, ix := range g.IXPs {
		wInt(ix.Metro)
		wInt(len(ix.Members))
		for _, m := range ix.Members {
			wInt(m)
		}
	}
	// Relationship + link-metro maps, sorted.
	pairs := make([]Pair, 0, len(w.LinkMetros))
	for pr := range w.LinkMetros {
		pairs = append(pairs, pr)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	wInt(len(pairs))
	for _, pr := range pairs {
		wInt(pr.A)
		wInt(pr.B)
		wInt(int(w.Rel[pr]))
		wBool(w.CustomerIsA[pr])
		ms := w.LinkMetros[pr]
		wInt(len(ms))
		for _, m := range ms {
			wInt(m)
		}
	}
	// Latent strategy vectors (exact bits).
	for i := 0; i < w.Latent.Rows; i++ {
		for _, v := range w.Latent.Row(i) {
			wF(v)
		}
	}
	// Probes (order is part of the contract), responsiveness, facilities.
	wInt(len(w.Probes))
	for _, p := range w.Probes {
		wInt(p.AS)
		wInt(p.Metro)
	}
	for _, ai := range w.ProbeASes {
		wInt(ai)
	}
	for _, r := range w.Responsive {
		wBool(r)
	}
	for mi := 0; mi < len(g.Metros); mi++ {
		facs := w.Facilities[mi]
		wInt(len(facs))
		for _, f := range facs {
			wInt(len(f))
			for _, ai := range f {
				wInt(ai)
			}
		}
	}
	return h.Sum64()
}

// Golden fingerprints recorded from the pre-PR8 all-pairs generator. The
// metro-bucketed parallel generator must reproduce these worlds bit for
// bit (same rng draw sequence, same insertion order) at legacy scales.
var goldenWorlds = []struct {
	name string
	cfg  Config
	want uint64
}{
	{"seed1_scale015", Config{Seed: 1, Metros: nil}, 0xdd5bacb08c6404ec},
	{"seed42_scale01", Config{Seed: 42, Metros: nil}, 0x6ade9b6756716b8b},
	{"seed3_scale03", Config{Seed: 3, Metros: nil}, 0xbf10065b747dc46d},
	{"seed7_dim6", Config{Seed: 7, Metros: nil, LatentDim: 6}, 0xdf164ed5cc7b5b1},
}

func goldenConfig(i int) Config {
	cfg := goldenWorlds[i].cfg
	switch i {
	case 0:
		cfg.Metros = DefaultMetros(0.15)
	case 1:
		cfg.Metros = DefaultMetros(0.1)
	case 2:
		cfg.Metros = DefaultMetros(0.3)
	case 3:
		cfg.Metros = DefaultMetros(0.06)
	}
	return cfg
}

func TestGenerateGoldenFingerprint(t *testing.T) {
	for i, gw := range goldenWorlds {
		w := Generate(goldenConfig(i))
		got := fingerprint(w)
		if got != gw.want {
			t.Errorf("%s: fingerprint %#x, want %#x (N=%d links=%d)",
				gw.name, got, gw.want, w.G.N(), len(w.LinkMetros))
		}
	}
}
