package netsim

import (
	"fmt"
	"math/rand"
	"testing"

	"metascritic/internal/benchscale"
)

// churnSpec is the standard test batch: enough of every event kind to
// exercise all apply paths.
func churnSpec(workers int) EvolveSpec {
	return EvolveSpec{
		LinkDowns:  40,
		Depeerings: 15,
		LinkUps:    40,
		NewASes:    5,
		IXPJoins:   10,
		Workers:    workers,
	}
}

// TestEvolveWorkerInvariance mirrors TestGenerateWorkerInvariance for
// the mutation API: the same (world, seed) must yield a byte-identical
// batch and post-batch world at any worker count.
func TestEvolveWorkerInvariance(t *testing.T) {
	cfg := manyMetroConfig(70, 20)
	var want uint64
	var wantEvents int
	for i, workers := range []int{1, 2, 7, 16} {
		c := cfg
		c.Workers = workers
		w := Generate(c)
		batch, err := w.Evolve(rand.New(rand.NewSource(7)), churnSpec(workers))
		if err != nil {
			t.Fatalf("workers=%d: Evolve: %v", workers, err)
		}
		got := fingerprint(w)
		if i == 0 {
			want, wantEvents = got, len(batch.Events)
			continue
		}
		if len(batch.Events) != wantEvents {
			t.Fatalf("workers=%d: %d events, want %d", workers, len(batch.Events), wantEvents)
		}
		if got != want {
			t.Fatalf("workers=%d: fingerprint %#x, want %#x", workers, got, want)
		}
	}
}

// TestEvolveApplyReplica pins the replay contract: applying the batch to
// an identical replica world (no rng) reproduces the evolved world
// byte-identically, including across several epochs.
func TestEvolveApplyReplica(t *testing.T) {
	cfg := manyMetroConfig(30, 25)
	live, replica := Generate(cfg), Generate(cfg)
	rng := rand.New(rand.NewSource(3))
	for epoch := uint32(1); epoch <= 3; epoch++ {
		batch, err := live.Evolve(rng, churnSpec(4))
		if err != nil {
			t.Fatalf("epoch %d: Evolve: %v", epoch, err)
		}
		if batch.Epoch != epoch || live.Epoch != epoch {
			t.Fatalf("epoch %d: batch=%d world=%d", epoch, batch.Epoch, live.Epoch)
		}
		if err := replica.Apply(batch); err != nil {
			t.Fatalf("epoch %d: Apply: %v", epoch, err)
		}
		if lf, rf := fingerprint(live), fingerprint(replica); lf != rf {
			t.Fatalf("epoch %d: live %#x != replica %#x", epoch, lf, rf)
		}
	}
}

// TestEvolveEventEffects sanity-checks that each event kind actually
// moved the world: links died and were born, an AS arrived with transit,
// IXPs gained members, and the ground-truth matrices track LinkMetros.
func TestEvolveEventEffects(t *testing.T) {
	w := Generate(manyMetroConfig(30, 25))
	nBefore := w.G.N()
	linksBefore := len(w.LinkMetros)
	rng := rand.New(rand.NewSource(9))
	batch, err := w.Evolve(rng, churnSpec(4))
	if err != nil {
		t.Fatalf("Evolve: %v", err)
	}
	counts := map[EventKind]int{}
	for _, ev := range batch.Events {
		counts[ev.Kind]++
	}
	for _, k := range []EventKind{LinkDown, Depeer, LinkUp, NewASArrival, IXPJoin} {
		if counts[k] == 0 {
			t.Fatalf("batch has no %s events (got %v)", k, counts)
		}
	}
	if w.G.N() != nBefore+counts[NewASArrival] {
		t.Fatalf("N = %d, want %d", w.G.N(), nBefore+counts[NewASArrival])
	}
	if len(w.Responsive) != w.G.N() || w.Latent.Rows != w.G.N() {
		t.Fatalf("per-AS state not grown: responsive=%d latent=%d n=%d",
			len(w.Responsive), w.Latent.Rows, w.G.N())
	}
	if len(w.LinkMetros) == linksBefore {
		t.Fatal("link count unchanged by churn batch")
	}
	// Every new AS must have bought transit and joined its metro.
	for _, ev := range batch.Events {
		if ev.Kind != NewASArrival {
			continue
		}
		idx := -1
		for i := range w.G.ASes {
			if w.G.ASes[i].ASN == ev.New.ASN {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Fatalf("new AS %d not in graph", ev.New.ASN)
		}
		if len(w.G.Providers[idx]) == 0 {
			t.Fatalf("new AS %d has no providers", ev.New.ASN)
		}
		if !containsInt(w.G.Metros[ev.New.Metros[0]].Members, idx) {
			t.Fatalf("new AS %d missing from home metro members", ev.New.ASN)
		}
	}
	// Ground truth must agree with LinkMetros cell-by-cell.
	for pr, metros := range w.LinkMetros {
		for _, m := range metros {
			tr := w.Truths[m]
			i, ok1 := tr.Index[pr.A]
			j, ok2 := tr.Index[pr.B]
			if !ok1 || !ok2 {
				continue
			}
			if tr.M.At(i, j) != 1 || tr.M.At(j, i) != 1 {
				t.Fatalf("truth at metro %d missing link %v", m, pr)
			}
		}
	}
	// And no truth cell may claim a link LinkMetros doesn't have.
	for m, tr := range w.Truths {
		for i, a := range tr.Members {
			for j := i + 1; j < len(tr.Members); j++ {
				if tr.M.At(i, j) == 1 && !containsInt(w.LinkMetros[MakePair(a, tr.Members[j])], m) {
					t.Fatalf("truth at metro %d has phantom link %d-%d", m, a, tr.Members[j])
				}
			}
		}
	}
	// TouchedASes covers every link-event endpoint.
	touched := map[int]bool{}
	for _, a := range batch.TouchedASes() {
		touched[a] = true
	}
	for _, ev := range batch.Events {
		switch ev.Kind {
		case LinkDown, Depeer, LinkUp:
			if !touched[ev.A] || !touched[ev.B] {
				t.Fatalf("TouchedASes missing endpoint of %v", ev)
			}
		}
	}
	if !batch.HasNewAS() {
		t.Fatal("HasNewAS = false on a batch with arrivals")
	}
}

// TestEvolveDownsRemoveRelationships pins the down/depeer semantics:
// a Depeer erases the pair everywhere; a LinkDown only erases its metro.
func TestEvolveDownsRemoveRelationships(t *testing.T) {
	w := Generate(manyMetroConfig(30, 25))
	rng := rand.New(rand.NewSource(21))
	batch, err := w.Evolve(rng, EvolveSpec{LinkDowns: 30, Depeerings: 30, Workers: 2})
	if err != nil {
		t.Fatalf("Evolve: %v", err)
	}
	for _, ev := range batch.Events {
		pr := MakePair(ev.A, ev.B)
		switch ev.Kind {
		case Depeer:
			if _, ok := w.Rel[pr]; ok {
				t.Fatalf("depeered pair %v still has a relationship", pr)
			}
			if w.G.HasPeer(pr.A, pr.B) {
				t.Fatalf("depeered pair %v still in adjacency", pr)
			}
		case LinkDown:
			if containsInt(w.LinkMetros[pr], ev.Metros[0]) {
				t.Fatalf("downed link %v still present at metro %d", pr, ev.Metros[0])
			}
			if _, ok := w.Rel[pr]; ok != w.G.HasPeer(pr.A, pr.B) {
				t.Fatalf("pair %v: Rel and adjacency disagree after LinkDown", pr)
			}
		}
	}
}

func TestApplyRejectsEpochSkew(t *testing.T) {
	w := Generate(manyMetroConfig(5, 10))
	if err := w.Apply(&EventBatch{Epoch: 2}); err == nil {
		t.Fatal("Apply accepted a batch from the future")
	}
	if err := w.Apply(&EventBatch{Epoch: 0}); err == nil {
		t.Fatal("Apply accepted a stale batch")
	}
	if w.Epoch != 0 {
		t.Fatalf("epoch moved to %d on rejected batches", w.Epoch)
	}
}

// BenchmarkEvolve measures one churn batch end-to-end (candidate scan +
// commit + apply) on an Internet-scale world. Sizes honor
// METASCRITIC_BENCH_SCALE so `make bench` can run a shrunken version.
func BenchmarkEvolve(b *testing.B) {
	for _, ases := range []int{
		benchscale.N(10_000, 1_000),
		benchscale.N(100_000, 5_000),
	} {
		b.Run(fmt.Sprintf("ases=%d", ases), func(b *testing.B) {
			w := Generate(Config{Seed: 5, Metros: InternetMetros(ases)})
			rng := rand.New(rand.NewSource(17))
			spec := EvolveSpec{LinkDowns: 100, Depeerings: 25, LinkUps: 100, NewASes: 10, IXPJoins: 20}
			b.ReportAllocs()
			b.ResetTimer()
			events := 0
			for i := 0; i < b.N; i++ {
				batch, err := w.Evolve(rng, spec)
				if err != nil {
					b.Fatal(err)
				}
				events += len(batch.Events)
			}
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
		})
	}
}

// TestEvolveSustainedChurn drives many consecutive batches on an
// Internet-style world. Regression: a route-server join used to emit a
// multilateral LinkUp against a co-member the joiner already had a
// transit relationship with, which Apply rejects (surfaced by
// BenchmarkEvolve after a few epochs of accumulated churn).
func TestEvolveSustainedChurn(t *testing.T) {
	w := Generate(Config{Seed: 5, Metros: InternetMetros(1000)})
	rng := rand.New(rand.NewSource(17))
	spec := EvolveSpec{LinkDowns: 100, Depeerings: 25, LinkUps: 100, NewASes: 10, IXPJoins: 20}
	for i := 0; i < 12; i++ {
		if _, err := w.Evolve(rng, spec); err != nil {
			t.Fatalf("epoch %d: %v", i+1, err)
		}
	}
	if w.Epoch != 12 {
		t.Fatalf("epoch = %d after 12 batches", w.Epoch)
	}
}
