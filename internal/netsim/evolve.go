package netsim

// Topology evolution: the streaming counterpart of Generate. A generated
// world is frozen at Epoch 0; Evolve derives a batch of churn events —
// link withdrawals, full depeerings, new link materializations, new-AS
// arrivals and IXP joins — from the current world plus an rng, applies
// it, and returns the batch so replicas can replay it with Apply (no rng
// needed: every random outcome is resolved into the event payload).
//
// Evolve follows Generate's determinism contract: candidate enumeration
// runs in parallel over a worker pool but is a pure function of the
// world, and the single sequential commit pass is the only rng consumer,
// iterating candidates in canonical order — so a given (world, seed)
// yields a byte-identical batch and post-batch world at any worker
// count.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"metascritic/internal/asgraph"
	"metascritic/internal/mat"
)

// EventKind classifies one evolution event.
type EventKind uint8

// Evolution event kinds.
const (
	// LinkDown withdraws a peering link at one metro (Metros[0]); when it
	// was the pair's last interconnection the AS-level link disappears.
	LinkDown EventKind = iota
	// Depeer removes a peering pair entirely, at every metro.
	Depeer
	// LinkUp materializes a peering between A and B at Metros (creating
	// the AS-level link if absent, else adding metros to it).
	LinkUp
	// NewASArrival adds the AS described by New to the world.
	NewASArrival
	// IXPJoin adds AS A to IXP (optionally to its route server). Links a
	// route-server join induces are separate LinkUp events in the batch.
	IXPJoin
)

var eventKindNames = [...]string{"LinkDown", "Depeer", "LinkUp", "NewASArrival", "IXPJoin"}

func (k EventKind) String() string {
	if int(k) >= len(eventKindNames) {
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
	return eventKindNames[k]
}

// NewAS is the payload of a NewASArrival event: everything needed to
// replay the arrival without an rng.
type NewAS struct {
	ASN               int
	Class             asgraph.Class
	Policy            asgraph.PeeringPolicy
	Traffic           asgraph.TrafficProfile
	Eyeballs          int
	AddrSpace         int
	Country           int
	ConsistentRouting bool
	// Metros is the footprint (sorted); Metros[0] is the home metro.
	Metros []int
	// Providers lists the AS indices the newcomer buys transit from.
	Providers []int
	// Latent is the newcomer's hidden strategy vector.
	Latent []float64
	// Responsive reports whether the AS answers probes.
	Responsive bool
}

// Event is one replayable topology mutation.
type Event struct {
	Kind EventKind
	// A, B are the endpoint AS indices for link events; A is the joining
	// AS for IXPJoin.
	A, B int
	// IXP is the exchange index for IXPJoin.
	IXP int
	// RS reports whether an IXPJoin includes the route server.
	RS bool
	// Metros carries the touched metros: the withdrawn metro for
	// LinkDown, the materialization metros for LinkUp.
	Metros []int
	// New is the NewASArrival payload.
	New *NewAS
}

// EventBatch is one epoch's worth of evolution, replayable with Apply.
type EventBatch struct {
	// Epoch is the epoch the batch advances the world to (its pre-batch
	// epoch + 1).
	Epoch  uint32
	Events []Event
}

// TouchedASes returns the sorted AS indices whose routing can change
// from this batch's link events (both endpoints of every LinkDown /
// Depeer / LinkUp). New-AS arrivals are not included: they grow the AS
// index space, which callers must treat as a full invalidation (see
// HasNewAS).
func (b *EventBatch) TouchedASes() []int {
	seen := map[int]bool{}
	for _, ev := range b.Events {
		switch ev.Kind {
		case LinkDown, Depeer, LinkUp:
			seen[ev.A] = true
			seen[ev.B] = true
		}
	}
	out := make([]int, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// TouchedLinks returns the distinct peering links (endpoints in low-high
// order, sorted) churned by this batch's link events — the input of
// link-scoped route-cache invalidation.
func (b *EventBatch) TouchedLinks() [][2]int {
	seen := map[[2]int]bool{}
	for _, ev := range b.Events {
		switch ev.Kind {
		case LinkDown, Depeer, LinkUp:
			a, bb := ev.A, ev.B
			if a > bb {
				a, bb = bb, a
			}
			seen[[2]int{a, bb}] = true
		}
	}
	out := make([][2]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i][0] < out[j][0] || (out[i][0] == out[j][0] && out[i][1] < out[j][1])
	})
	return out
}

// HasNewAS reports whether the batch grows the AS index space.
func (b *EventBatch) HasNewAS() bool {
	for _, ev := range b.Events {
		if ev.Kind == NewASArrival {
			return true
		}
	}
	return false
}

// EvolveSpec sizes one evolution batch. Counts are targets, clamped to
// the available candidate pools.
type EvolveSpec struct {
	// LinkDowns withdraws that many peering links at one metro each.
	LinkDowns int
	// Depeerings removes that many peering pairs entirely.
	Depeerings int
	// LinkUps materializes that many new peerings among colocated
	// near-miss pairs (score just under the would-peer bar).
	LinkUps int
	// NewASes adds that many ordinary ASes.
	NewASes int
	// IXPJoins has that many (AS, IXP) memberships appear; route-server
	// joins induce multilateral LinkUp events.
	IXPJoins int
	// Workers bounds the parallel candidate enumeration; 0 means
	// GOMAXPROCS. The batch is byte-identical at any worker count.
	Workers int
}

// wouldPeerBar mirrors the admission threshold in scanMetroPairs;
// upScoreWindow is how far under the bar a non-linked pair may score and
// still be a LinkUp candidate (the "near miss" pool churn draws from).
const (
	wouldPeerBar  = 3.8
	upScoreWindow = 1.0
)

// Evolve derives one churn batch from the current world and applies it,
// advancing w.Epoch. The returned batch replays the identical mutation
// on a replica world via Apply.
func (w *World) Evolve(rng *rand.Rand, spec EvolveSpec) (*EventBatch, error) {
	if spec.LinkDowns < 0 || spec.Depeerings < 0 || spec.LinkUps < 0 || spec.NewASes < 0 || spec.IXPJoins < 0 {
		return nil, fmt.Errorf("netsim: evolve: negative event count in %+v", spec)
	}
	if spec.Workers <= 0 {
		spec.Workers = runtime.GOMAXPROCS(0)
	}
	batch := &EventBatch{Epoch: w.Epoch + 1}

	// Candidate enumeration (parallel, rng-free, pre-batch state only).
	downCands := w.downCandidates()
	upCands := w.upCandidates(spec.Workers)

	// Sequential commit: the only rng consumer, in fixed order.
	nDown := spec.LinkDowns + spec.Depeerings
	picked := pickPairs(rng, downCands, nDown)
	for i, pr := range picked {
		if i < spec.LinkDowns {
			ms := w.LinkMetros[pr]
			m := ms[rng.Intn(len(ms))]
			batch.Events = append(batch.Events, Event{Kind: LinkDown, A: pr.A, B: pr.B, Metros: []int{m}})
		} else {
			batch.Events = append(batch.Events, Event{Kind: Depeer, A: pr.A, B: pr.B})
		}
	}
	for _, pr := range pickPairs(rng, upCands, spec.LinkUps) {
		shared := w.G.SharedMetros(pr.A, pr.B)
		var metros []int
		for _, m := range shared {
			if rng.Float64() < w.Cfg.LinkMaterializeProb {
				metros = append(metros, m)
			}
		}
		if len(metros) == 0 {
			metros = append(metros, shared[rng.Intn(len(shared))])
		}
		batch.Events = append(batch.Events, Event{Kind: LinkUp, A: pr.A, B: pr.B, Metros: metros})
	}
	w.commitNewASes(rng, spec.NewASes, batch)
	w.commitIXPJoins(rng, spec.IXPJoins, batch)

	if err := w.Apply(batch); err != nil {
		return nil, err
	}
	return batch, nil
}

// downCandidates returns every withdrawable peering pair in canonical
// order: all P2P links except the Tier1 backbone mesh.
func (w *World) downCandidates() []Pair {
	var out []Pair
	for pr, rel := range w.Rel {
		if rel != asgraph.P2P {
			continue
		}
		if w.G.ASes[pr.A].Class == asgraph.Tier1 && w.G.ASes[pr.B].Class == asgraph.Tier1 {
			continue
		}
		out = append(out, pr)
	}
	sortPairs(out)
	return out
}

// upCandidates enumerates non-linked colocated pairs whose peering score
// lands in the near-miss window under the would-peer bar — the pairs a
// bit of extra traffic would tip into peering. The scan mirrors
// buildPeering: per-metro fan-out over a worker pool, each pair claimed
// at its lowest shared metro, merged and sorted canonically.
func (w *World) upCandidates(workers int) []Pair {
	g := w.G
	k := w.Cfg.LatentDim
	nMetros := len(g.Metros)
	perMetro := make([][]Pair, nMetros)
	if workers > nMetros {
		workers = nMetros
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := range work {
				perMetro[m] = w.scanUpPairs(m, k)
			}
		}()
	}
	for m := 0; m < nMetros; m++ {
		work <- m
	}
	close(work)
	wg.Wait()

	total := 0
	for _, pc := range perMetro {
		total += len(pc)
	}
	out := make([]Pair, 0, total)
	for _, pc := range perMetro {
		out = append(out, pc...)
	}
	sortPairs(out)
	return out
}

// scanUpPairs scores one metro's non-linked member pairs, claiming each
// pair at its lowest shared metro (footprint first-common-bit test).
func (w *World) scanUpPairs(m, k int) []Pair {
	g := w.G
	members := g.Metros[m].Members
	penalty := densityPenalty(len(members)) + globalPenalty(g.N())
	var out []Pair
	for ii := 0; ii < len(members); ii++ {
		a := members[ii]
		asA := &g.ASes[a]
		if asA.Class == asgraph.Tier1 {
			continue
		}
		fa := asA.Footprint()
		ra := w.Latent.Row(a)
		biasA := openBias(asA.Policy)
		for jj := ii + 1; jj < len(members); jj++ {
			b := members[jj]
			asB := &g.ASes[b]
			if asB.Class == asgraph.Tier1 {
				continue
			}
			if fa.FirstCommon(asB.Footprint()) != m {
				continue
			}
			// Any existing relationship (peering or transit) disqualifies.
			if _, linked := w.Rel[Pair{A: a, B: b}]; linked {
				continue
			}
			var dot float64
			rb := w.Latent.Row(b)
			for d := 0; d < k; d++ {
				dot += ra[d] * rb[d]
			}
			score := 0.55*dot + 0.55*(biasA+openBias(asB.Policy)) +
				0.6*complementarity(asA.Traffic, asB.Traffic) - penalty
			if asA.Country == asB.Country {
				score += 0.3
			}
			if score <= wouldPeerBar-upScoreWindow || score > wouldPeerBar {
				continue
			}
			out = append(out, Pair{A: a, B: b})
		}
	}
	return out
}

// commitNewASes draws spec'd new-AS arrivals into the batch: each
// newcomer gets a home metro, a class-decorated profile, transit from
// local upstreams (Tier1 fallback) and a latent vector adopted from a
// same-class donor — all resolved here so Apply needs no rng.
func (w *World) commitNewASes(rng *rand.Rand, n int, batch *EventBatch) {
	if n == 0 {
		return
	}
	g := w.G
	nextASN := 0
	byClass := make([][]int, asgraph.NumClasses)
	var tier1s []int
	for i := range g.ASes {
		if g.ASes[i].ASN >= nextASN {
			nextASN = g.ASes[i].ASN + 1
		}
		c := g.ASes[i].Class
		byClass[c] = append(byClass[c], i)
		if c == asgraph.Tier1 {
			tier1s = append(tier1s, i)
		}
	}
	for k := 0; k < n; k++ {
		home := rng.Intn(len(g.Metros))
		var class asgraph.Class
		r := rng.Float64()
		acc := 0.0
		for _, cm := range classMix {
			acc += cm.frac
			if r < acc {
				class = cm.class
				break
			}
			class = cm.class
		}
		a := &asgraph.AS{
			ASN:     nextASN,
			Class:   class,
			Country: g.Metros[home].Country,
			Metros:  []int{home},
		}
		nextASN++
		w.decorateOrdinary(a, rng)

		// Transit from colocated upstreams, ordered by index; a Tier1
		// backstops newcomers in upstream-free metros.
		var ups []int
		for _, u := range g.Metros[home].Members {
			if c := g.ASes[u].Class; c == asgraph.Transit || c == asgraph.LargeISP {
				ups = append(ups, u)
			}
		}
		var providers []int
		if len(ups) == 0 {
			providers = []int{tier1s[rng.Intn(len(tier1s))]}
		} else {
			np := 1 + rng.Intn(3)
			perm := rng.Perm(len(ups))
			for i := 0; i < np && i < len(perm); i++ {
				providers = append(providers, ups[perm[i]])
			}
			sort.Ints(providers)
		}

		// The newcomer adopts an existing playbook: a same-class donor's
		// latent vector plus fresh feature noise.
		donors := byClass[class]
		latent := make([]float64, w.Cfg.LatentDim)
		donor := w.Latent.Row(donors[rng.Intn(len(donors))])
		for d := range latent {
			latent[d] = donor[d] + w.Cfg.FeatureNoise*rng.NormFloat64()
		}

		batch.Events = append(batch.Events, Event{Kind: NewASArrival, New: &NewAS{
			ASN: a.ASN, Class: a.Class, Policy: a.Policy, Traffic: a.Traffic,
			Eyeballs: a.Eyeballs, AddrSpace: a.AddrSpace, Country: a.Country,
			ConsistentRouting: a.ConsistentRouting,
			Metros:            a.Metros, Providers: providers, Latent: latent,
			Responsive: rng.Float64() < 0.85,
		}})
	}
}

// commitIXPJoins draws spec'd IXP memberships, plus the multilateral
// LinkUp events a route-server join induces (each co-member linked at
// the IXP's metro with the same 0.95 draw generation uses).
func (w *World) commitIXPJoins(rng *rand.Rand, n int, batch *EventBatch) {
	g := w.G
	if n == 0 || len(g.IXPs) == 0 {
		return
	}
	var cands []int
	joined := map[[2]int]bool{} // joins already drawn this batch
	for k := 0; k < n; k++ {
		ix := g.IXPs[rng.Intn(len(g.IXPs))]
		cands = cands[:0]
		for _, ai := range g.Metros[ix.Metro].Members {
			a := &g.ASes[ai]
			if a.Class == asgraph.Tier1 || containsInt(a.IXPs, ix.Index) || joined[[2]int{ai, ix.Index}] {
				continue
			}
			cands = append(cands, ai)
		}
		if len(cands) == 0 {
			continue
		}
		ai := cands[rng.Intn(len(cands))]
		a := &g.ASes[ai]
		rsP := 0.7
		if a.Policy == asgraph.Selective {
			rsP = 0.35
		}
		if a.Policy == asgraph.Restrictive {
			rsP = 0.08
		}
		rs := ix.HasRouteServer && rng.Float64() < rsP
		joined[[2]int{ai, ix.Index}] = true
		batch.Events = append(batch.Events, Event{Kind: IXPJoin, A: ai, IXP: ix.Index, RS: rs})
		if !rs {
			continue
		}
		for _, b := range ix.Members {
			if b == ai || !g.ASes[b].OnRouteServer(ix.Index) {
				continue
			}
			// A co-member that is already the joiner's provider or
			// customer keeps the transit relationship; the route server
			// cannot turn it into a peering.
			if rel, ok := w.Rel[MakePair(ai, b)]; ok && rel != asgraph.P2P {
				continue
			}
			if containsInt(w.LinkMetros[MakePair(ai, b)], ix.Metro) {
				continue
			}
			if rng.Float64() < 0.95 {
				batch.Events = append(batch.Events, Event{Kind: LinkUp, A: ai, B: b, Metros: []int{ix.Metro}})
			}
		}
	}
}

// Apply replays an evolution batch on this world — typically a replica
// that did not run Evolve itself. It is rng-free and deterministic: the
// post-batch world is byte-identical to the one Evolve produced the
// batch on. The batch must advance the world's epoch by exactly one.
func (w *World) Apply(batch *EventBatch) error {
	if batch.Epoch != w.Epoch+1 {
		return fmt.Errorf("netsim: apply: batch epoch %d does not follow world epoch %d", batch.Epoch, w.Epoch)
	}
	rebuild := map[int]bool{} // metros whose Truth needs a membership rebuild
	for i := range batch.Events {
		if err := w.applyEvent(&batch.Events[i], rebuild); err != nil {
			return fmt.Errorf("netsim: apply event %d (%s): %w", i, batch.Events[i].Kind, err)
		}
	}
	if len(rebuild) > 0 {
		w.rebuildTruths(rebuild)
	}
	w.Epoch = batch.Epoch
	// Periodic re-pack: heavy churn must not forfeit the compact CSR
	// substrate (delta rows accumulate append slack until re-Compact).
	w.G.MaybeCompact(0)
	return nil
}

func (w *World) applyEvent(ev *Event, rebuild map[int]bool) error {
	g := w.G
	switch ev.Kind {
	case LinkDown:
		pr := MakePair(ev.A, ev.B)
		if w.Rel[pr] != asgraph.P2P || len(ev.Metros) != 1 {
			return fmt.Errorf("link %d-%d is not a peering", ev.A, ev.B)
		}
		m := ev.Metros[0]
		ms := w.LinkMetros[pr]
		i := sort.SearchInts(ms, m)
		if i >= len(ms) || ms[i] != m {
			return fmt.Errorf("link %d-%d has no interconnection at metro %d", ev.A, ev.B, m)
		}
		ms = append(ms[:i], ms[i+1:]...)
		w.setTruth(pr, m, 0)
		if len(ms) == 0 {
			delete(w.LinkMetros, pr)
			delete(w.Rel, pr)
			g.RemovePeer(pr.A, pr.B)
		} else {
			w.LinkMetros[pr] = ms
		}
	case Depeer:
		pr := MakePair(ev.A, ev.B)
		if w.Rel[pr] != asgraph.P2P {
			return fmt.Errorf("pair %d-%d is not a peering", ev.A, ev.B)
		}
		for _, m := range w.LinkMetros[pr] {
			w.setTruth(pr, m, 0)
		}
		delete(w.LinkMetros, pr)
		delete(w.Rel, pr)
		g.RemovePeer(pr.A, pr.B)
	case LinkUp:
		pr := MakePair(ev.A, ev.B)
		if rel, ok := w.Rel[pr]; ok && rel != asgraph.P2P {
			return fmt.Errorf("pair %d-%d has a transit relationship", ev.A, ev.B)
		} else if !ok {
			g.AddPeerUnique(pr.A, pr.B)
			w.Rel[pr] = asgraph.P2P
		}
		ms := w.LinkMetros[pr]
		for _, m := range ev.Metros {
			i := sort.SearchInts(ms, m)
			if i < len(ms) && ms[i] == m {
				continue
			}
			ms = append(ms, 0)
			copy(ms[i+1:], ms[i:])
			ms[i] = m
			w.setTruth(pr, m, 1)
		}
		w.LinkMetros[pr] = ms
	case NewASArrival:
		na := ev.New
		a := &asgraph.AS{
			ASN: na.ASN, Class: na.Class, Policy: na.Policy, Traffic: na.Traffic,
			Eyeballs: na.Eyeballs, AddrSpace: na.AddrSpace, Country: na.Country,
			ConsistentRouting: na.ConsistentRouting,
			Metros:            append([]int(nil), na.Metros...),
		}
		idx := g.AddAS(a)
		for _, m := range na.Metros {
			mm := g.Metros[m]
			i := sort.SearchInts(mm.Members, idx)
			mm.Members = append(mm.Members, 0)
			copy(mm.Members[i+1:], mm.Members[i:])
			mm.Members[i] = idx
			rebuild[m] = true
			// The newcomer lands in an existing facility, round-robin by
			// index (deterministic; facility data is a coarse feature).
			if facs := w.Facilities[m]; len(facs) > 0 {
				f := idx % len(facs)
				facs[f] = append(facs[f], idx)
			}
		}
		for _, p := range na.Providers {
			pr := MakePair(idx, p)
			g.AddC2P(idx, p)
			w.Rel[pr] = asgraph.C2P
			w.CustomerIsA[pr] = pr.A == idx
			// Deterministic interconnect placement: every shared metro, or
			// the newcomer's home metro for a long-haul Tier1 fallback.
			shared := g.SharedMetros(idx, p)
			if len(shared) == 0 {
				shared = []int{na.Metros[0]}
			}
			w.LinkMetros[pr] = shared
		}
		grown := mat.New(w.Latent.Rows+1, w.Latent.Cols)
		copy(grown.Data, w.Latent.Data)
		copy(grown.Data[w.Latent.Rows*w.Latent.Cols:], na.Latent)
		w.Latent = grown
		w.Responsive = append(w.Responsive, na.Responsive)
	case IXPJoin:
		if ev.IXP < 0 || ev.IXP >= len(g.IXPs) {
			return fmt.Errorf("IXP %d out of range", ev.IXP)
		}
		ix := g.IXPs[ev.IXP]
		a := &g.ASes[ev.A]
		if containsInt(a.IXPs, ev.IXP) {
			return fmt.Errorf("AS %d is already a member of IXP %d", ev.A, ev.IXP)
		}
		ix.Members = append(ix.Members, ev.A)
		a.AddIXP(ev.IXP)
		if ev.RS {
			a.SetRouteServer(ev.IXP, true)
		}
	default:
		return fmt.Errorf("unknown event kind %d", ev.Kind)
	}
	return nil
}

// setTruth writes one ground-truth cell (symmetric) when both endpoints
// are members of the metro.
func (w *World) setTruth(pr Pair, m int, v float64) {
	t := w.Truths[m]
	i, ok1 := t.Index[pr.A]
	j, ok2 := t.Index[pr.B]
	if ok1 && ok2 {
		t.M.Set(i, j, v)
		t.M.Set(j, i, v)
	}
}

// rebuildTruths re-derives the ground-truth matrices of metros whose
// membership changed, from the metro members and the link-metro map.
func (w *World) rebuildTruths(metros map[int]bool) {
	for m := range metros {
		members := w.G.Metros[m].Members
		t := &Truth{
			Metro:   m,
			Members: members,
			Index:   make(map[int]int, len(members)),
			M:       mat.New(len(members), len(members)),
		}
		for r, ai := range members {
			t.Index[ai] = r
		}
		w.Truths[m] = t
	}
	for pr, ms := range w.LinkMetros {
		for _, m := range ms {
			if metros[m] {
				w.setTruth(pr, m, 1)
			}
		}
	}
}

// pickPairs selects n distinct elements from the canonically-sorted
// candidate pool via partial Fisher-Yates, clamped to the pool size.
func pickPairs(rng *rand.Rand, cands []Pair, n int) []Pair {
	if n > len(cands) {
		n = len(cands)
	}
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(cands)-i)
		cands[i], cands[j] = cands[j], cands[i]
	}
	return cands[:n]
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
