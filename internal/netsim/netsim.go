// Package netsim generates a synthetic Internet with known ground truth.
//
// The real metAScritic runs against the live Internet; this reproduction
// replaces it with a generative model that preserves the structural
// properties the paper's argument rests on:
//
//   - ASes have latent "peering strategies" drawn from a low-dimensional
//     space shaped by business type, traffic profile, peering policy and
//     geography, so each metro's connectivity matrix is effectively
//     low-rank (§2, Appx. B.1).
//   - IXP route servers create dense multilateral meshes (near-rank-1
//     blocks).
//   - Public features correlate with — but do not determine — peering
//     decisions (Fig. 1).
//   - A transit (c2p) hierarchy provides the routing substrate, and
//     per-pair interconnection metros enable hot-potato exit selection.
//
// Because the generator knows the true connectivity matrix T_m of every
// metro, evaluation can measure exact precision/recall and the controlled
// rank-recovery experiment (Appx. E.5) can verify rank estimation.
//
// # Scale
//
// Generation is built to reach real-Internet scale (~100k ASes, ~500k
// links; Config.Workers bounds the worker pool). The peering build never
// scans all AS pairs: candidate pairs are enumerated per metro (only
// colocated ASes are ever scored), deduplicated by assigning each pair to
// its lowest shared metro, scored in parallel, and then materialized by a
// single sequential pass in canonical pair order — so a given seed yields
// a byte-identical world at any worker count, and (at legacy scales) a
// world bit-identical to the historical all-pairs generator.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"metascritic/internal/asgraph"
	"metascritic/internal/mat"
)

// MetroSpec describes one metro to generate.
type MetroSpec struct {
	Name      string
	Country   string
	Continent string
	// NumASes is the number of ASes whose footprint includes this metro.
	NumASes int
	// VPCoverage is the fraction of local ASes hosting a vantage point
	// (directly or via a customer), reproducing the geographic probe
	// disparities of Fig. 6.
	VPCoverage float64
	// Primary marks the metros metAScritic is run on (the paper's six).
	Primary bool
}

// Config controls world generation. Zero values are replaced by defaults.
type Config struct {
	Seed   int64
	Metros []MetroSpec
	// LatentDim is the dimension of the hidden strategy vectors.
	LatentDim int
	// FeatureNoise is the std-dev of the noise added to latent vectors so
	// features are informative but not sufficient.
	FeatureNoise float64
	// LinkMaterializeProb is the probability that a would-peer pair
	// actually interconnects at any given shared metro (drives the
	// geographic-transferability statistics of Appx. E.4).
	LinkMaterializeProb float64
	// NumTier1 is the number of Tier-1 ASes (full mesh, global footprint).
	NumTier1 int
	// NumHypergiants is the number of hypergiant (cloud/CDN) ASes.
	NumHypergiants int
	// NumArchetypes is the number of hidden peering-strategy archetypes:
	// the low-dimensional structure that makes connectivity matrices
	// effectively low-rank without being visible in public features.
	NumArchetypes int
	// Workers bounds the parallel phases of generation (candidate scoring
	// fan-out). 0 means GOMAXPROCS. The generated world is byte-identical
	// at any worker count.
	Workers int
}

// DefaultMetros returns the paper's six study metros plus a set of
// secondary metros used for transferability and Fig. 6.
func DefaultMetros(scale float64) []MetroSpec {
	s := func(n int) int {
		v := int(float64(n) * scale)
		if v < 20 {
			v = 20
		}
		return v
	}
	return []MetroSpec{
		{Name: "Amsterdam", Country: "NL", Continent: "EU", NumASes: s(360), VPCoverage: 0.80, Primary: true},
		{Name: "NewYork", Country: "US", Continent: "NA", NumASes: s(200), VPCoverage: 0.70, Primary: true},
		{Name: "SaoPaulo", Country: "BR", Continent: "SA", NumASes: s(380), VPCoverage: 0.14, Primary: true},
		{Name: "Singapore", Country: "SG", Continent: "AS", NumASes: s(170), VPCoverage: 0.55, Primary: true},
		{Name: "Sydney", Country: "AU", Continent: "OC", NumASes: s(170), VPCoverage: 0.60, Primary: true},
		{Name: "Tokyo", Country: "JP", Continent: "AS", NumASes: s(110), VPCoverage: 0.65, Primary: true},
		// Secondary metros: same-country, same-continent and remote
		// locations for transferability and strategy categorization.
		{Name: "Rotterdam", Country: "NL", Continent: "EU", NumASes: s(70), VPCoverage: 0.75},
		{Name: "Frankfurt", Country: "DE", Continent: "EU", NumASes: s(120), VPCoverage: 0.80},
		{Name: "London", Country: "GB", Continent: "EU", NumASes: s(130), VPCoverage: 0.80},
		{Name: "Chicago", Country: "US", Continent: "NA", NumASes: s(90), VPCoverage: 0.65},
		{Name: "RioDeJaneiro", Country: "BR", Continent: "SA", NumASes: s(80), VPCoverage: 0.12},
		{Name: "Osaka", Country: "JP", Continent: "AS", NumASes: s(60), VPCoverage: 0.60},
		{Name: "Melbourne", Country: "AU", Continent: "OC", NumASes: s(60), VPCoverage: 0.55},
		{Name: "Johannesburg", Country: "ZA", Continent: "AF", NumASes: s(70), VPCoverage: 0.20},
	}
}

// internetRegions is the country/continent pool InternetMetros draws
// from: a coarse slice of the real interconnection geography, weighted
// toward the regions that host the large IX ecosystems.
var internetRegions = []struct {
	country, continent string
	vp                 float64 // typical VP coverage in the region (Fig. 6)
	weight             int     // relative number of metros
}{
	{"US", "NA", 0.65, 9}, {"CA", "NA", 0.60, 2}, {"MX", "NA", 0.25, 1},
	{"BR", "SA", 0.14, 4}, {"AR", "SA", 0.15, 1}, {"CL", "SA", 0.18, 1},
	{"DE", "EU", 0.80, 4}, {"NL", "EU", 0.80, 2}, {"GB", "EU", 0.78, 3},
	{"FR", "EU", 0.72, 2}, {"ES", "EU", 0.60, 1}, {"IT", "EU", 0.55, 1},
	{"PL", "EU", 0.58, 1}, {"SE", "EU", 0.70, 1}, {"RU", "EU", 0.40, 2},
	{"JP", "AS", 0.62, 3}, {"SG", "AS", 0.55, 1}, {"HK", "AS", 0.50, 1},
	{"IN", "AS", 0.30, 4}, {"ID", "AS", 0.25, 2}, {"KR", "AS", 0.55, 1},
	{"AU", "OC", 0.58, 3}, {"NZ", "OC", 0.55, 1},
	{"ZA", "AF", 0.20, 2}, {"KE", "AF", 0.15, 1}, {"NG", "AF", 0.12, 1},
	{"EG", "AF", 0.15, 1},
}

// InternetMetros synthesizes a metro set sized for ~nASes total
// single-home assignments: many metros with a heavy-tailed (Zipf-like)
// size distribution over a realistic country/continent mix, the shape
// worldgen -ases uses to build 100k-AS worlds. The paper's six study
// metros stay present (and Primary) at the head of the list.
func InternetMetros(nASes int) []MetroSpec {
	if nASes < 2000 {
		nASes = 2000
	}
	// Metro count grows sublinearly so mean metro size grows slowly:
	// ~96 metros at 10k ASes, ~240 at 100k (mean size ~420).
	nMetros := int(24 * float64(nASes) / 1000 / 10)
	if nMetros < 48 {
		nMetros = 48
	}
	if nMetros > 1200 {
		nMetros = 1200
	}
	specs := make([]MetroSpec, 0, nMetros)
	head := []MetroSpec{
		{Name: "Amsterdam", Country: "NL", Continent: "EU", VPCoverage: 0.80, Primary: true},
		{Name: "NewYork", Country: "US", Continent: "NA", VPCoverage: 0.70, Primary: true},
		{Name: "SaoPaulo", Country: "BR", Continent: "SA", VPCoverage: 0.14, Primary: true},
		{Name: "Singapore", Country: "SG", Continent: "AS", VPCoverage: 0.55, Primary: true},
		{Name: "Sydney", Country: "AU", Continent: "OC", VPCoverage: 0.60, Primary: true},
		{Name: "Tokyo", Country: "JP", Continent: "AS", VPCoverage: 0.65, Primary: true},
	}
	specs = append(specs, head...)
	ri, taken := 0, 0
	for len(specs) < nMetros {
		r := internetRegions[ri%len(internetRegions)]
		ri++
		taken++
		specs = append(specs, MetroSpec{
			Name:       fmt.Sprintf("%s-M%d", r.country, taken),
			Country:    r.country,
			Continent:  r.continent,
			VPCoverage: r.vp,
		})
		// Regions with more weight contribute metros more often.
		for k := 1; k < r.weight && len(specs) < nMetros; k++ {
			if (taken+k)%3 == 0 {
				break
			}
			taken++
			specs = append(specs, MetroSpec{
				Name:       fmt.Sprintf("%s-M%d", r.country, taken),
				Country:    r.country,
				Continent:  r.continent,
				VPCoverage: r.vp,
			})
		}
	}
	// Zipf-ish sizes: metro k gets weight 1/(k+3)^0.72, normalized to
	// nASes. The exponent keeps the head heavy (Amsterdam-like) without
	// letting a single metro dominate the pair-enumeration cost.
	weights := make([]float64, len(specs))
	totW := 0.0
	for k := range specs {
		weights[k] = zipfWeight(k)
		totW += weights[k]
	}
	for k := range specs {
		n := int(float64(nASes) * weights[k] / totW)
		if n < 25 {
			n = 25
		}
		specs[k].NumASes = n
	}
	return specs
}

func zipfWeight(k int) float64 {
	return 1 / math.Pow(float64(k+3), 0.5)
}

// denseCutoff is the metro population above which dense-market
// attenuation kicks in: in big interconnection markets, the fraction of
// local networks joining any one IXP falls, and bilateral peering gets
// more selective (you interconnect with the partners that matter, not
// with everyone present). Below the cutoff the generator behaves exactly
// like the historical one, which keeps the legacy-scale golden worlds
// bit-identical; the largest golden-world metro has 148 members.
const denseCutoff = 200

// ixpJoinScale attenuates IXP join probability in metros larger than
// denseCutoff (1/x-law: the absolute number of IXP members keeps growing
// with the market, but the join *fraction* falls, so route-server meshes
// stop growing quadratically in metro population).
func ixpJoinScale(members int) float64 {
	if members <= denseCutoff {
		return 1
	}
	return denseCutoff / float64(members)
}

// worldCutoff is the total AS count above which global selectivity kicks
// in (the largest legacy golden world has 639 ASes). Real peering
// decisions get more selective as the candidate pool grows: average
// degree stays near-constant while N grows by orders of magnitude, so
// the per-pair admission rate must fall roughly like 1/N. The log-score
// penalty implements that decay.
const worldCutoff = 650

func globalPenalty(n int) float64 {
	if n <= worldCutoff {
		return 0
	}
	return 1.5 * math.Log(float64(n)/worldCutoff)
}

// densityPenalty is subtracted from the bilateral peering score for
// pairs claimed at a metro with more than denseCutoff members: log-law
// selectivity so link counts grow near-linearly (not quadratically) with
// metro population.
func densityPenalty(members int) float64 {
	if members <= denseCutoff {
		return 0
	}
	return 0.55 * math.Log(float64(members)/denseCutoff)
}

func (c *Config) applyDefaults() {
	if c.Metros == nil {
		c.Metros = DefaultMetros(1.0)
	}
	if c.LatentDim == 0 {
		c.LatentDim = 8
	}
	if c.FeatureNoise == 0 {
		c.FeatureNoise = 0.3
	}
	if c.LinkMaterializeProb == 0 {
		c.LinkMaterializeProb = 0.78
	}
	if c.NumTier1 == 0 {
		c.NumTier1 = 8
	}
	if c.NumHypergiants == 0 {
		c.NumHypergiants = 6
	}
	if c.NumArchetypes == 0 {
		c.NumArchetypes = 10
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// Pair is a canonical (A < B) AS-index pair (alias of asgraph.Pair).
type Pair = asgraph.Pair

// MakePair canonicalizes an AS pair.
func MakePair(a, b int) Pair { return asgraph.MakePair(a, b) }

// Probe is a vantage point: a measurement probe hosted by an AS at a metro.
type Probe struct {
	AS    int
	Metro int
}

// Truth is the ground-truth connectivity of one metro: T_m in the paper.
type Truth struct {
	Metro   int
	Members []int       // AS indices present at the metro, sorted
	Index   map[int]int // AS index -> row in M
	// M is the binary symmetric ground-truth connectivity matrix: M[i][j]
	// = 1 iff the member ASes interconnect (peering or transit) at this
	// metro.
	M *mat.Matrix
}

// Has reports whether ASes a and b (graph indices) interconnect at the
// metro. Returns false if either is not a member.
func (t *Truth) Has(a, b int) bool {
	i, ok1 := t.Index[a]
	j, ok2 := t.Index[b]
	if !ok1 || !ok2 {
		return false
	}
	return t.M.At(i, j) > 0.5
}

// NumLinks returns the number of distinct links in the metro.
func (t *Truth) NumLinks() int {
	n := 0
	for i := 0; i < t.M.Rows; i++ {
		for j := i + 1; j < t.M.Cols; j++ {
			if t.M.At(i, j) > 0.5 {
				n++
			}
		}
	}
	return n
}

// World is a fully generated synthetic Internet.
type World struct {
	Cfg Config
	G   *asgraph.Graph
	// Truths maps metro index to its ground-truth connectivity.
	Truths map[int]*Truth
	// LinkMetros lists, for every interconnected AS pair, the metros where
	// they actually interconnect.
	LinkMetros map[Pair][]int
	// Rel records the business relationship of each interconnected pair:
	// for C2P the customer is always Pair.A's role iff CustomerIsA.
	Rel map[Pair]asgraph.Rel
	// CustomerIsA records, for C2P pairs, whether Pair.A is the customer.
	CustomerIsA map[Pair]bool
	// ProbeASes is the sorted set of AS indices hosting vantage points.
	ProbeASes []int
	// Probes lists every vantage point with its physical location (an AS
	// can host probes in several metros).
	Probes   []Probe
	probeSet map[int]bool
	// Responsive[i] reports whether AS i answers probes toward its
	// addresses (targets in unresponsive ASes never yield traceroutes).
	Responsive []bool
	// Latent holds the hidden strategy vectors (one row per AS). Exposed
	// only for the controlled experiments; the inference pipeline must
	// never read it.
	Latent *mat.Matrix
	// Facilities maps metro -> facility -> member AS indices (coarse
	// colocation data used as a pair feature).
	Facilities map[int][][]int
	// Epoch counts applied evolution batches (see Evolve); a freshly
	// generated world is at epoch 0.
	Epoch uint32
}

// Generate builds a world from cfg.
func Generate(cfg Config) *World {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{
		Cfg:         cfg,
		G:           asgraph.NewGraph(),
		Truths:      map[int]*Truth{},
		LinkMetros:  map[Pair][]int{},
		Rel:         map[Pair]asgraph.Rel{},
		CustomerIsA: map[Pair]bool{},
		Facilities:  map[int][][]int{},
	}
	w.buildGeography()
	w.buildASes(rng)
	w.buildTransit(rng)
	w.buildIXPs(rng)
	w.buildLatent(rng)
	w.buildPeering(rng)
	w.assignTransitMetros(rng)
	w.G.Compact()
	w.buildTruthMatrices()
	w.buildFacilities(rng)
	w.placeProbes(rng)
	return w
}

func (w *World) buildGeography() {
	contIdx := map[string]int{}
	ctryIdx := map[string]int{}
	for _, ms := range w.Cfg.Metros {
		ci, ok := contIdx[ms.Continent]
		if !ok {
			ci = len(w.G.Continents)
			contIdx[ms.Continent] = ci
			w.G.Continents = append(w.G.Continents, ms.Continent)
		}
		ki, ok := ctryIdx[ms.Country]
		if !ok {
			ki = len(w.G.Countries)
			ctryIdx[ms.Country] = ki
			w.G.Countries = append(w.G.Countries, asgraph.Country{Code: ms.Country, Continent: ci})
		}
		w.G.Metros = append(w.G.Metros, &asgraph.Metro{
			Index:   len(w.G.Metros),
			Name:    ms.Name,
			Country: ki,
		})
	}
}

// classMix returns the fraction of each class among the ordinary (non-Tier1,
// non-hypergiant) ASes generated for a metro.
var classMix = []struct {
	class asgraph.Class
	frac  float64
}{
	{asgraph.LargeISP, 0.05},
	{asgraph.Content, 0.16},
	{asgraph.Enterprise, 0.12},
	{asgraph.Transit, 0.15},
	{asgraph.Stub, 0.52},
}

func (w *World) buildASes(rng *rand.Rand) {
	nextASN := 100
	allMetros := make([]int, len(w.G.Metros))
	for i := range allMetros {
		allMetros[i] = i
	}
	// Tier-1s: global footprint, inconsistent routing, restrictive policy.
	for i := 0; i < w.Cfg.NumTier1; i++ {
		a := &asgraph.AS{
			ASN:               nextASN,
			Class:             asgraph.Tier1,
			Policy:            asgraph.Restrictive,
			Traffic:           asgraph.Balanced,
			Eyeballs:          50_000 + rng.Intn(400_000),
			AddrSpace:         1 << (20 + rng.Intn(4)),
			Country:           rng.Intn(len(w.G.Countries)),
			Metros:            append([]int(nil), allMetros...),
			ConsistentRouting: false,
		}
		nextASN++
		w.G.AddAS(a)
	}
	// Hypergiants: global footprint, open policy, heavy outbound.
	for i := 0; i < w.Cfg.NumHypergiants; i++ {
		a := &asgraph.AS{
			ASN:               nextASN,
			Class:             asgraph.Hypergiant,
			Policy:            asgraph.Open,
			Traffic:           asgraph.HeavyOutbound,
			Eyeballs:          rng.Intn(5_000),
			AddrSpace:         1 << (18 + rng.Intn(5)),
			Country:           rng.Intn(len(w.G.Countries)),
			Metros:            append([]int(nil), allMetros...),
			ConsistentRouting: false,
		}
		nextASN++
		w.G.AddAS(a)
	}
	// Ordinary ASes per metro. Some get multi-metro footprints: extra
	// metros biased toward the same country/continent. The scope-ranked
	// candidate list depends only on the home metro, so it is computed
	// once per metro instead of once per AS (the all-metros sort per AS
	// dominated generation time at Internet scale).
	ranked := w.rankExtraMetros()
	for mi, ms := range w.Cfg.Metros {
		for k := 0; k < ms.NumASes; k++ {
			var class asgraph.Class
			r := rng.Float64()
			acc := 0.0
			for _, cm := range classMix {
				acc += cm.frac
				if r < acc {
					class = cm.class
					break
				}
				class = cm.class
			}
			a := &asgraph.AS{
				ASN:     nextASN,
				Class:   class,
				Country: w.G.Metros[mi].Country,
				Metros:  []int{mi},
			}
			nextASN++
			w.decorateOrdinary(a, rng)
			w.extendFootprint(a, mi, ranked[mi], rng)
			w.G.AddAS(a)
		}
	}
	// Cache metro membership.
	for i := range w.G.ASes {
		for _, m := range w.G.ASes[i].Metros {
			w.G.Metros[m].Members = append(w.G.Metros[m].Members, i)
		}
	}
	for _, m := range w.G.Metros {
		sort.Ints(m.Members)
	}
}

func (w *World) decorateOrdinary(a *asgraph.AS, rng *rand.Rand) {
	switch a.Class {
	case asgraph.LargeISP:
		a.Traffic = pick(rng, asgraph.HeavyInbound, asgraph.HeavyInbound, asgraph.MostlyInbound)
		a.Policy = pick(rng, asgraph.Selective, asgraph.Selective, asgraph.Open)
		a.Eyeballs = 500_000 + rng.Intn(5_000_000)
		a.AddrSpace = 1 << (18 + rng.Intn(4))
		a.ConsistentRouting = rng.Float64() < 0.6
	case asgraph.Content:
		a.Traffic = pick(rng, asgraph.HeavyOutbound, asgraph.MostlyOutbound, asgraph.MostlyOutbound)
		a.Policy = pick(rng, asgraph.Open, asgraph.Open, asgraph.Selective)
		a.Eyeballs = rng.Intn(2_000)
		a.AddrSpace = 1 << (12 + rng.Intn(5))
		a.ConsistentRouting = rng.Float64() < 0.55
	case asgraph.Enterprise:
		a.Traffic = pick(rng, asgraph.Balanced, asgraph.MostlyInbound, asgraph.Balanced)
		a.Policy = pick(rng, asgraph.Restrictive, asgraph.Selective, asgraph.Restrictive)
		a.Eyeballs = rng.Intn(20_000)
		a.AddrSpace = 1 << (10 + rng.Intn(5))
		a.ConsistentRouting = rng.Float64() < 0.95
	case asgraph.Transit:
		a.Traffic = asgraph.Balanced
		a.Policy = pick(rng, asgraph.Selective, asgraph.Open, asgraph.Selective)
		a.Eyeballs = 10_000 + rng.Intn(400_000)
		a.AddrSpace = 1 << (15 + rng.Intn(5))
		a.ConsistentRouting = rng.Float64() < 0.5
	default: // Stub
		a.Traffic = pick(rng, asgraph.MostlyInbound, asgraph.Balanced, asgraph.HeavyInbound)
		a.Policy = pick(rng, asgraph.Open, asgraph.Selective, asgraph.Restrictive)
		a.Eyeballs = rng.Intn(200_000)
		a.AddrSpace = 1 << (8 + rng.Intn(5))
		a.ConsistentRouting = rng.Float64() < 0.95
	}
}

func pick[T any](rng *rand.Rand, choices ...T) T { return choices[rng.Intn(len(choices))] }

// rankedMetro is one candidate extra-footprint metro with its admission
// probability (by geographic scope from the home metro).
type rankedMetro struct {
	m int
	p float64
}

// rankExtraMetros precomputes, per home metro, every other metro sorted
// by (scope, index) with its scope-derived admission probability — the
// exact candidate order the historical per-AS sort produced.
func (w *World) rankExtraMetros() [][]rankedMetro {
	probs := [...]float64{0.8, 0.55, 0.3, 0.12}
	out := make([][]rankedMetro, len(w.G.Metros))
	for home := range w.G.Metros {
		type cand struct {
			m     int
			scope asgraph.GeoScope
		}
		cands := make([]cand, 0, len(w.G.Metros)-1)
		for m := range w.G.Metros {
			if m == home {
				continue
			}
			cands = append(cands, cand{m, w.G.ScopeOfMetros(home, m)})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].scope != cands[j].scope {
				return cands[i].scope < cands[j].scope
			}
			return cands[i].m < cands[j].m
		})
		rm := make([]rankedMetro, len(cands))
		for i, c := range cands {
			rm[i] = rankedMetro{m: c.m, p: probs[c.scope]}
		}
		out[home] = rm
	}
	return out
}

// extendFootprint may add more metros to an AS, preferring geographically
// close ones, so that transferability (Appx. E.4) is exercised.
func (w *World) extendFootprint(a *asgraph.AS, home int, ranked []rankedMetro, rng *rand.Rand) {
	var extra int
	switch a.Class {
	case asgraph.LargeISP, asgraph.Transit:
		extra = rng.Intn(4) // 0..3 extra metros
	case asgraph.Content:
		extra = rng.Intn(3)
	case asgraph.Enterprise:
		extra = rng.Intn(2)
	default:
		if rng.Float64() < 0.12 {
			extra = 1
		}
	}
	if extra == 0 {
		return
	}
	for _, c := range ranked {
		if extra == 0 {
			break
		}
		// Closer metros are much more likely to be added.
		if rng.Float64() < c.p {
			a.Metros = append(a.Metros, c.m)
			extra--
		}
	}
	sort.Ints(a.Metros)
}

// buildTransit wires the c2p hierarchy: stubs and edge networks buy from
// transit providers and large ISPs that share a metro; regional transits
// and large ISPs buy from Tier-1s; hypergiants keep one transit for
// reachability. The result is a connected valley-free substrate.
func (w *World) buildTransit(rng *rand.Rand) {
	byClass := map[asgraph.Class][]int{}
	for i := range w.G.ASes {
		c := w.G.ASes[i].Class
		byClass[c] = append(byClass[c], i)
	}
	tier1s := byClass[asgraph.Tier1]
	// Tier1 full mesh peering.
	for i := 0; i < len(tier1s); i++ {
		for j := i + 1; j < len(tier1s); j++ {
			w.G.AddPeer(tier1s[i], tier1s[j])
			p := MakePair(tier1s[i], tier1s[j])
			w.Rel[p] = asgraph.P2P
		}
	}
	// Transit and LargeISP buy from 2-3 Tier1s.
	for _, cls := range []asgraph.Class{asgraph.Transit, asgraph.LargeISP} {
		for _, i := range byClass[cls] {
			n := 2 + rng.Intn(2)
			perm := rng.Perm(len(tier1s))
			for k := 0; k < n && k < len(perm); k++ {
				w.addTransitLink(i, tier1s[perm[k]])
			}
		}
	}
	// Hypergiants keep 1-2 Tier1 transits for universal reachability.
	for _, i := range byClass[asgraph.Hypergiant] {
		n := 1 + rng.Intn(2)
		perm := rng.Perm(len(tier1s))
		for k := 0; k < n && k < len(perm); k++ {
			w.addTransitLink(i, tier1s[perm[k]])
		}
	}
	// Edge networks buy from 1-3 providers sharing a metro, preferring
	// Transit then LargeISP. Candidates are collected from per-metro
	// upstream buckets (not an all-upstreams scan) and ordered by global
	// upstream rank, which reproduces the order of the historical
	// filtered scan.
	upstream := append(append([]int(nil), byClass[asgraph.Transit]...), byClass[asgraph.LargeISP]...)
	upstreamRank := make(map[int]int, len(upstream))
	for r, u := range upstream {
		upstreamRank[u] = r
	}
	upstreamAt := make([][]int, len(w.G.Metros))
	for _, u := range upstream {
		for _, m := range w.G.ASes[u].Metros {
			upstreamAt[m] = append(upstreamAt[m], u)
		}
	}
	seen := make([]int, w.G.N())
	for i := range seen {
		seen[i] = -1
	}
	var cands []int
	for _, cls := range []asgraph.Class{asgraph.Content, asgraph.Enterprise, asgraph.Stub} {
		for _, i := range byClass[cls] {
			cands = cands[:0]
			for _, m := range w.G.ASes[i].Metros {
				for _, u := range upstreamAt[m] {
					if u != i && seen[u] != i {
						seen[u] = i
						cands = append(cands, u)
					}
				}
			}
			sort.Slice(cands, func(x, y int) bool { return upstreamRank[cands[x]] < upstreamRank[cands[y]] })
			if len(cands) == 0 {
				// Fall back to a Tier1 (global footprint guarantees
				// colocation).
				w.addTransitLink(i, tier1s[rng.Intn(len(tier1s))])
				continue
			}
			n := 1 + rng.Intn(3)
			perm := rng.Perm(len(cands))
			for k := 0; k < n && k < len(perm); k++ {
				w.addTransitLink(i, cands[perm[k]])
			}
		}
	}
}

func (w *World) addTransitLink(customer, provider int) {
	if customer == provider {
		return
	}
	p := MakePair(customer, provider)
	if _, exists := w.Rel[p]; exists {
		return
	}
	w.G.AddC2P(customer, provider)
	w.Rel[p] = asgraph.C2P
	w.CustomerIsA[p] = p.A == customer
}

func (w *World) buildIXPs(rng *rand.Rand) {
	for mi := range w.G.Metros {
		m := w.G.Metros[mi]
		nIXP := 1
		if len(m.Members) > 150 {
			nIXP = 2
		}
		for k := 0; k < nIXP; k++ {
			ix := &asgraph.IXP{
				Index:          len(w.G.IXPs),
				Name:           fmt.Sprintf("%s-IX%d", m.Name, k+1),
				Metro:          mi,
				HasRouteServer: true,
			}
			w.G.IXPs = append(w.G.IXPs, ix)
			m.IXPs = append(m.IXPs, ix.Index)
			joinScale := ixpJoinScale(len(m.Members))
			for _, ai := range m.Members {
				a := &w.G.ASes[ai]
				joinP := map[asgraph.PeeringPolicy]float64{
					asgraph.Open:        0.75,
					asgraph.Selective:   0.45,
					asgraph.Restrictive: 0.12,
				}[a.Policy]
				if a.Class == asgraph.Tier1 {
					joinP = 0.15
				}
				joinP *= joinScale
				if rng.Float64() < joinP {
					ix.Members = append(ix.Members, ai)
					a.AddIXP(ix.Index)
					// Route-server participation (multilateral peering).
					rsP := 0.7
					if a.Policy == asgraph.Selective {
						rsP = 0.35
					}
					if a.Policy == asgraph.Restrictive {
						rsP = 0.08
					}
					a.SetRouteServer(ix.Index, rng.Float64() < rsP)
				}
			}
		}
	}
}

// Latent embedding blocks. Each feature contributes a fixed direction in
// latent space plus per-AS noise, so public features are predictive of the
// hidden strategy without determining it.
func (w *World) buildLatent(rng *rand.Rand) {
	// Latent strategy vectors combine a small feature-derived part —
	// public attributes hint at the strategy, giving Fig. 1's moderate
	// correlations — with a dominant HIDDEN archetype: each AS follows
	// one of a handful of peering playbooks assigned independently of
	// its public profile. The archetype block structure is what makes
	// the connectivity matrix effectively low-rank, and it is only
	// recoverable from observed links, never from features.
	k := w.Cfg.LatentDim
	classDir := randDirs(rng, int(asgraph.NumClasses), k, 0.6)
	trafficDir := randDirs(rng, int(asgraph.NumProfiles), k, 0.5)
	countryDir := randDirs(rng, len(w.G.Countries), k, 0.25)
	archDir := randDirs(rng, w.Cfg.NumArchetypes, k, 0.9)
	w.Latent = mat.New(w.G.N(), k)
	for i := range w.G.ASes {
		a := &w.G.ASes[i]
		arch := archDir[rng.Intn(len(archDir))]
		row := w.Latent.Row(i)
		for d := 0; d < k; d++ {
			row[d] = classDir[a.Class][d] + trafficDir[a.Traffic][d] +
				countryDir[a.Country][d] + arch[d] +
				w.Cfg.FeatureNoise*rng.NormFloat64()
		}
	}
}

func randDirs(rng *rand.Rand, n, k int, scale float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, k)
		for d := range out[i] {
			out[i][d] = scale * rng.NormFloat64()
		}
	}
	return out
}

// openBias converts a peering policy to an additive appetite term.
func openBias(p asgraph.PeeringPolicy) float64 {
	switch p {
	case asgraph.Open:
		return 0.9
	case asgraph.Selective:
		return 0.0
	default:
		return -1.3
	}
}

// complementarity rewards pairs at opposite ends of the traffic value chain
// (eyeball ↔ content), the dominant driver in Fig. 1.
func complementarity(a, b asgraph.TrafficProfile) float64 {
	in := func(t asgraph.TrafficProfile) float64 {
		switch t {
		case asgraph.HeavyInbound:
			return 1
		case asgraph.MostlyInbound:
			return 0.5
		case asgraph.MostlyOutbound:
			return -0.5
		case asgraph.HeavyOutbound:
			return -1
		default:
			return 0
		}
	}
	return -0.8 * in(a) * in(b) // opposite signs ⇒ positive reward
}

// peerCand is one colocated AS pair that may materialize links: either
// the latent score clears the would-peer bar, or the two ASes share a
// route server (multilateral peering can force a link regardless of
// score). Everything rng-dependent is deferred to the sequential commit
// pass; the candidate itself is a pure function of the graph.
type peerCand struct {
	a, b      int32
	wouldPeer bool
	hasRS     bool
}

// buildPeering decides, per pair of colocated ASes, whether they would
// peer, then materializes the link at each shared metro with probability
// LinkMaterializeProb (route-server co-members always link at that IXP's
// metro). Tier-1s do not peer downward; their interconnections with
// non-Tier1 ASes are the transit links.
//
// The build is two-phase. Phase 1 enumerates candidates per metro over a
// worker pool: each metro scans only its own member pairs, and a pair
// colocated at several metros is claimed exactly once — by its lowest
// shared metro (footprint-bitset first-common-bit test). Phase 2 sorts
// the merged candidates into canonical (a,b) order and replays the rng
// stream sequentially, reproducing the historical all-pairs generator
// draw for draw — so a seed fully determines the world at any worker
// count, and legacy-scale worlds are bit-identical to the old generator.
func (w *World) buildPeering(rng *rand.Rand) {
	n := w.G.N()
	k := w.Cfg.LatentDim
	g := w.G

	// Local flat bitsets: footprint, and route-server membership (rs bit
	// implies IXP membership, so rsA∧rsB ≠ 0 ⇔ shared route server).
	mw := asgraph.BitsetWords(len(g.Metros))
	xw := asgraph.BitsetWords(len(g.IXPs))
	foot := make([]uint64, n*mw)
	rs := make([]uint64, n*xw)
	for i := 0; i < n; i++ {
		a := &g.ASes[i]
		fb := asgraph.Bitset(foot[i*mw : (i+1)*mw])
		for _, m := range a.Metros {
			fb.Set(m)
		}
		rb := asgraph.Bitset(rs[i*xw : (i+1)*xw])
		for _, x := range a.IXPs {
			if a.OnRouteServer(x) {
				rb.Set(x)
			}
		}
	}
	footOf := func(i int32) asgraph.Bitset { return asgraph.Bitset(foot[int(i)*mw : (int(i)+1)*mw]) }
	rsOf := func(i int32) asgraph.Bitset { return asgraph.Bitset(rs[int(i)*xw : (int(i)+1)*xw]) }

	// Phase 1: per-metro candidate enumeration over a bounded worker
	// pool. Each metro produces an independent candidate slice; claiming
	// a pair at its lowest shared metro deduplicates without any shared
	// state.
	cands := w.enumeratePeerCandidates(footOf, rsOf, k)

	// Phase 2: sequential, ordered materialization — the only part that
	// consumes rng. Candidates are already in canonical (a,b) order.
	var sharedScratch, rsScratch []int
	rsMetros := map[int]bool{}
	for _, c := range cands {
		a, b := int(c.a), int(c.b)
		pr := Pair{A: a, B: b}
		// Shared route server forces multilateral peering.
		clear(rsMetros)
		if c.hasRS {
			rsScratch = rsOf(c.a).AppendCommon(rsOf(c.b), rsScratch[:0])
			for _, ix := range rsScratch {
				if rng.Float64() < 0.95 {
					rsMetros[g.IXPs[ix].Metro] = true
				}
			}
		}
		if !c.wouldPeer && len(rsMetros) == 0 {
			continue
		}
		sharedScratch = footOf(c.a).AppendCommon(footOf(c.b), sharedScratch[:0])
		var metros []int
		for _, m := range sharedScratch {
			if rsMetros[m] {
				metros = append(metros, m)
				continue
			}
			if c.wouldPeer && rng.Float64() < w.Cfg.LinkMaterializeProb {
				metros = append(metros, m)
			}
		}
		if len(metros) == 0 && c.wouldPeer {
			metros = append(metros, sharedScratch[rng.Intn(len(sharedScratch))])
		}
		if len(metros) == 0 {
			continue
		}
		g.AddPeerUnique(a, b)
		w.Rel[pr] = asgraph.P2P
		w.LinkMetros[pr] = metros
	}
	// Tier1 mesh links interconnect everywhere.
	for pr, rel := range w.Rel {
		if rel == asgraph.P2P && w.LinkMetros[pr] == nil {
			w.LinkMetros[pr] = g.SharedMetros(pr.A, pr.B)
		}
	}
}

// enumeratePeerCandidates fans metros out over Cfg.Workers goroutines.
// For metro m each member pair (a<b) is tested: skip Tier1s, skip pairs
// whose lowest shared metro is not m (they are claimed elsewhere), skip
// transit-linked pairs, then score. Pairs that would peer or share a
// route server become candidates. The merged result is sorted into
// canonical (a,b) order, which makes the outcome independent of both the
// worker count and the metro partition.
func (w *World) enumeratePeerCandidates(footOf func(int32) asgraph.Bitset, rsOf func(int32) asgraph.Bitset, k int) []peerCand {
	g := w.G
	nMetros := len(g.Metros)
	perMetro := make([][]peerCand, nMetros)
	var wg sync.WaitGroup
	work := make(chan int)
	workers := w.Cfg.Workers
	if workers > nMetros {
		workers = nMetros
	}
	if workers < 1 {
		workers = 1
	}
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := range work {
				perMetro[m] = w.scanMetroPairs(m, footOf, rsOf, k)
			}
		}()
	}
	for m := 0; m < nMetros; m++ {
		work <- m
	}
	close(work)
	wg.Wait()

	total := 0
	for _, pc := range perMetro {
		total += len(pc)
	}
	out := make([]peerCand, 0, total)
	for _, pc := range perMetro {
		out = append(out, pc...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].a != out[j].a {
			return out[i].a < out[j].a
		}
		return out[i].b < out[j].b
	})
	return out
}

// scanMetroPairs scores the member pairs of one metro, claiming only the
// pairs whose lowest shared metro is this one.
func (w *World) scanMetroPairs(m int, footOf func(int32) asgraph.Bitset, rsOf func(int32) asgraph.Bitset, k int) []peerCand {
	g := w.G
	members := g.Metros[m].Members
	penalty := densityPenalty(len(members)) + globalPenalty(g.N())
	var out []peerCand
	for ii := 0; ii < len(members); ii++ {
		a := members[ii]
		asA := &g.ASes[a]
		if asA.Class == asgraph.Tier1 {
			continue // Tier1s only peer with each other (buildTransit)
		}
		fa := footOf(int32(a))
		ra := w.Latent.Row(a)
		rsA := rsOf(int32(a))
		biasA := openBias(asA.Policy)
		for jj := ii + 1; jj < len(members); jj++ {
			b := members[jj]
			asB := &g.ASes[b]
			if asB.Class == asgraph.Tier1 {
				continue
			}
			// Claim each colocated pair exactly once: at the lowest
			// metro both are present in.
			fb := footOf(int32(b))
			if fa.FirstCommon(fb) != m {
				continue
			}
			// Transit-linked pairs were decided in buildTransit. The
			// provider lists are tiny (≤3 for edges), so two scans
			// replace the historical Rel-map lookup.
			if g.HasProvider(a, b) || g.HasProvider(b, a) {
				continue
			}
			var dot float64
			rb := w.Latent.Row(b)
			for d := 0; d < k; d++ {
				dot += ra[d] * rb[d]
			}
			// The latent strategy term dominates: public features inform
			// but do not determine peering (Fig. 1's moderate
			// correlations), so link history carries signal that features
			// alone cannot provide.
			score := 0.55*dot + 0.55*(biasA+openBias(asB.Policy)) +
				0.6*complementarity(asA.Traffic, asB.Traffic) - penalty
			if asA.Country == asB.Country {
				score += 0.3
			}
			wouldPeer := score > 3.8
			hasRS := rsA.Intersects(rsOf(int32(b)))
			if !wouldPeer && !hasRS {
				continue
			}
			out = append(out, peerCand{a: int32(a), b: int32(b), wouldPeer: wouldPeer, hasRS: hasRS})
		}
	}
	return out
}

// assignTransitMetros chooses, for every c2p pair, the metros where the
// interconnection physically exists: each shared metro with probability
// 0.8, at least one guaranteed.
func (w *World) assignTransitMetros(rng *rand.Rand) {
	// Iterate pairs in deterministic order: map iteration would consume
	// rng draws in random order and break reproducibility.
	var pairs []Pair
	for pr, rel := range w.Rel {
		if rel == asgraph.C2P {
			pairs = append(pairs, pr)
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	var shared []int
	for _, pr := range pairs {
		fa, fb := w.G.ASes[pr.A].Footprint(), w.G.ASes[pr.B].Footprint()
		shared = fa.AppendCommon(fb, shared[:0])
		if len(shared) == 0 {
			// Customer picked a Tier1 fallback without colocation; place
			// the interconnect at the customer's home metro (a remote
			// peering / PNI long-haul).
			var cust int
			if w.CustomerIsA[pr] {
				cust = pr.A
			} else {
				cust = pr.B
			}
			shared = append(shared, w.G.ASes[cust].Metros[0])
		}
		var metros []int
		for _, m := range shared {
			if rng.Float64() < 0.8 {
				metros = append(metros, m)
			}
		}
		if len(metros) == 0 {
			metros = append(metros, shared[rng.Intn(len(shared))])
		}
		w.LinkMetros[pr] = metros
	}
}

func (w *World) buildTruthMatrices() {
	for mi := range w.G.Metros {
		members := w.G.Metros[mi].Members
		t := &Truth{
			Metro:   mi,
			Members: members,
			Index:   make(map[int]int, len(members)),
			M:       mat.New(len(members), len(members)),
		}
		for r, ai := range members {
			t.Index[ai] = r
		}
		w.Truths[mi] = t
	}
	for pr, metros := range w.LinkMetros {
		for _, m := range metros {
			t := w.Truths[m]
			i, ok1 := t.Index[pr.A]
			j, ok2 := t.Index[pr.B]
			if !ok1 || !ok2 {
				continue // long-haul interconnect where one side lacks footprint
			}
			t.M.Set(i, j, 1)
			t.M.Set(j, i, 1)
		}
	}
}

func (w *World) buildFacilities(rng *rand.Rand) {
	for mi, m := range w.G.Metros {
		nFac := 1 + len(m.Members)/80
		facs := make([][]int, nFac)
		for _, ai := range m.Members {
			f := rng.Intn(nFac)
			facs[f] = append(facs[f], ai)
		}
		w.Facilities[mi] = facs
	}
}

// placeProbes selects vantage-point ASes per metro according to the
// configured coverage, preferring edge networks (where real Atlas probes
// live) but including some transits.
func (w *World) placeProbes(rng *rand.Rand) {
	chosen := map[int]bool{}
	probeAt := map[Pair]bool{} // (AS, metro) pairs with a probe
	for mi, ms := range w.Cfg.Metros {
		members := w.G.Metros[mi].Members
		want := int(ms.VPCoverage * float64(len(members)))
		perm := rng.Perm(len(members))
		got := 0
		for _, pi := range perm {
			if got >= want {
				break
			}
			ai := members[pi]
			got++
			chosen[ai] = true
			key := Pair{A: ai, B: mi}
			if !probeAt[key] {
				probeAt[key] = true
				w.Probes = append(w.Probes, Probe{AS: ai, Metro: mi})
			}
		}
	}
	w.probeSet = chosen
	for ai := range chosen {
		w.ProbeASes = append(w.ProbeASes, ai)
	}
	sort.Ints(w.ProbeASes)
	// Target responsiveness: most ASes answer probes; a fraction do not.
	w.Responsive = make([]bool, w.G.N())
	for i := range w.Responsive {
		w.Responsive[i] = rng.Float64() < 0.85
	}
}

// HasProbe reports whether AS i hosts a vantage point.
func (w *World) HasProbe(i int) bool { return w.probeSet[i] }

// ProbeInCone reports whether any AS in the customer cone of i hosts a
// vantage point (the "VP in customer cone" categories of §3.3.2).
func (w *World) ProbeInCone(i int) bool {
	for _, c := range w.G.CustomerCone(i) {
		if w.probeSet[int(c)] {
			return true
		}
	}
	return false
}

// InterconnectMetros returns the metros where a and b interconnect (nil if
// they do not).
func (w *World) InterconnectMetros(a, b int) []int {
	return w.LinkMetros[MakePair(a, b)]
}

// RelOf returns the relationship between a and b and whether they are
// interconnected at all.
func (w *World) RelOf(a, b int) (asgraph.Rel, bool) {
	r, ok := w.Rel[MakePair(a, b)]
	return r, ok
}

// IsCustomerOf reports whether a is a (direct) customer of b.
func (w *World) IsCustomerOf(a, b int) bool {
	return w.G.HasProvider(a, b)
}

// SameFacility reports whether a and b share a facility at metro m.
func (w *World) SameFacility(a, b, m int) bool {
	for _, fac := range w.Facilities[m] {
		ina, inb := false, false
		for _, x := range fac {
			if x == a {
				ina = true
			}
			if x == b {
				inb = true
			}
		}
		if ina && inb {
			return true
		}
	}
	return false
}

// PrimaryMetros returns the indices of metros marked Primary in the config.
func (w *World) PrimaryMetros() []int {
	var out []int
	for i, ms := range w.Cfg.Metros {
		if ms.Primary {
			out = append(out, i)
		}
	}
	return out
}
