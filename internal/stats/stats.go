// Package stats collects the statistical machinery metAScritic's evaluation
// needs: binary-classifier metrics (precision/recall/F-score, PR and ROC
// curves with their areas), distribution comparisons (Kolmogorov–Smirnov),
// association measures (Pearson correlation, the correlation ratio η used
// for categorical features in Fig. 1), and bootstrap confidence intervals.
package stats

import (
	"math"
	"sort"
)

// Confusion is a binary-classification confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (c Confusion) Precision() float64 {
	d := c.TP + c.FP
	if d == 0 {
		return 0
	}
	return float64(c.TP) / float64(d)
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (c Confusion) Recall() float64 {
	d := c.TP + c.FN
	if d == 0 {
		return 0
	}
	return float64(c.TP) / float64(d)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns (TP+TN)/total, or 0 when there are no samples.
func (c Confusion) Accuracy() float64 {
	t := c.TP + c.FP + c.TN + c.FN
	if t == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(t)
}

// Confuse builds a confusion matrix from scores, labels and a decision
// threshold: score >= thr predicts positive.
func Confuse(scores []float64, labels []bool, thr float64) Confusion {
	var c Confusion
	for i, s := range scores {
		pred := s >= thr
		switch {
		case pred && labels[i]:
			c.TP++
		case pred && !labels[i]:
			c.FP++
		case !pred && labels[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// CurvePoint is one operating point on a PR or ROC curve.
type CurvePoint struct {
	Threshold float64
	X, Y      float64 // PR: (recall, precision); ROC: (FPR, TPR)
}

// PRCurve computes the precision-recall curve by sweeping the threshold over
// the distinct score values (descending). Points are ordered by increasing
// recall.
func PRCurve(scores []float64, labels []bool) []CurvePoint {
	idx := sortByScoreDesc(scores)
	pos := 0
	for _, l := range labels {
		if l {
			pos++
		}
	}
	var pts []CurvePoint
	tp, fp := 0, 0
	for k := 0; k < len(idx); {
		thr := scores[idx[k]]
		// Consume all samples tied at this score.
		for k < len(idx) && scores[idx[k]] == thr {
			if labels[idx[k]] {
				tp++
			} else {
				fp++
			}
			k++
		}
		prec := 1.0
		if tp+fp > 0 {
			prec = float64(tp) / float64(tp+fp)
		}
		rec := 0.0
		if pos > 0 {
			rec = float64(tp) / float64(pos)
		}
		pts = append(pts, CurvePoint{Threshold: thr, X: rec, Y: prec})
	}
	return pts
}

// AUPRC returns the area under the precision-recall curve (average
// precision, computed by the step-wise interpolation used by scikit-learn's
// average_precision_score).
func AUPRC(scores []float64, labels []bool) float64 {
	pts := PRCurve(scores, labels)
	area := 0.0
	prevRecall := 0.0
	for _, p := range pts {
		area += (p.X - prevRecall) * p.Y
		prevRecall = p.X
	}
	return area
}

// ROCCurve computes the ROC curve points (FPR, TPR) ordered by increasing
// FPR, including the (0,0) and (1,1) endpoints.
func ROCCurve(scores []float64, labels []bool) []CurvePoint {
	idx := sortByScoreDesc(scores)
	pos, neg := 0, 0
	for _, l := range labels {
		if l {
			pos++
		} else {
			neg++
		}
	}
	pts := []CurvePoint{{Threshold: math.Inf(1), X: 0, Y: 0}}
	tp, fp := 0, 0
	for k := 0; k < len(idx); {
		thr := scores[idx[k]]
		for k < len(idx) && scores[idx[k]] == thr {
			if labels[idx[k]] {
				tp++
			} else {
				fp++
			}
			k++
		}
		var fpr, tpr float64
		if neg > 0 {
			fpr = float64(fp) / float64(neg)
		}
		if pos > 0 {
			tpr = float64(tp) / float64(pos)
		}
		pts = append(pts, CurvePoint{Threshold: thr, X: fpr, Y: tpr})
	}
	return pts
}

// AUC returns the area under the ROC curve via trapezoidal integration.
func AUC(scores []float64, labels []bool) float64 {
	pts := ROCCurve(scores, labels)
	area := 0.0
	for i := 1; i < len(pts); i++ {
		area += (pts[i].X - pts[i-1].X) * (pts[i].Y + pts[i-1].Y) / 2
	}
	return area
}

// BestF1Threshold sweeps candidate thresholds and returns the one that
// maximizes F1 along with the achieved score. This is the λ-search of §3.1.
func BestF1Threshold(scores []float64, labels []bool) (thr, f1 float64) {
	if len(scores) == 0 {
		return 0, 0
	}
	uniq := append([]float64(nil), scores...)
	sort.Float64s(uniq)
	uniq = dedupe(uniq)
	bestThr, bestF1 := uniq[0], -1.0
	for _, t := range uniq {
		if f := Confuse(scores, labels, t).F1(); f > bestF1 {
			bestF1, bestThr = f, t
		}
	}
	return bestThr, bestF1
}

// MSE returns the mean squared error between predictions and truth.
func MSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("stats: MSE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// RMSE returns the root mean squared error.
func RMSE(pred, truth []float64) float64 { return math.Sqrt(MSE(pred, truth)) }

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than 2 values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Pearson returns the Pearson correlation coefficient of x and y, or 0 when
// either series is constant.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson length mismatch")
	}
	if len(x) == 0 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// CorrelationRatio computes η, the correlation ratio between a categorical
// variable (category index per sample) and a continuous outcome: the square
// root of the between-group variance over the total variance. Used for
// categorical features in the Fig. 1 correlation matrix.
func CorrelationRatio(categories []int, values []float64) float64 {
	if len(categories) != len(values) {
		panic("stats: CorrelationRatio length mismatch")
	}
	if len(values) == 0 {
		return 0
	}
	sum := map[int]float64{}
	cnt := map[int]int{}
	for i, c := range categories {
		sum[c] += values[i]
		cnt[c]++
	}
	total := Mean(values)
	var between, totalVar float64
	for c, s := range sum {
		m := s / float64(cnt[c])
		between += float64(cnt[c]) * (m - total) * (m - total)
	}
	for _, v := range values {
		totalVar += (v - total) * (v - total)
	}
	if totalVar == 0 {
		return 0
	}
	return math.Sqrt(between / totalVar)
}

// ECDF returns the empirical CDF value of the sorted sample at x.
type ECDF []float64

// NewECDF builds an ECDF from an (unsorted) sample.
func NewECDF(sample []float64) ECDF {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return ECDF(s)
}

// At returns P(X <= x) under the empirical distribution.
func (e ECDF) At(x float64) float64 {
	if len(e) == 0 {
		return 0
	}
	// Number of sample points <= x.
	n := sort.SearchFloat64s([]float64(e), math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(e))
}

// KSDistance returns the Kolmogorov–Smirnov statistic between two samples:
// the maximum absolute difference between their empirical CDFs.
func KSDistance(a, b []float64) float64 {
	ea, eb := NewECDF(a), NewECDF(b)
	points := append(append([]float64(nil), a...), b...)
	sort.Float64s(points)
	var d float64
	for _, x := range points {
		if diff := math.Abs(ea.At(x) - eb.At(x)); diff > d {
			d = diff
		}
	}
	return d
}

// KSUniform returns the KS statistic between a sample and the Uniform(0,1)
// distribution — the calibration measure of Fig. 4, where a perfectly
// calibrated probability predictor yields the diagonal CDF.
func KSUniform(sample []float64) float64 {
	e := NewECDF(sample)
	var d float64
	for i, x := range e {
		// Compare the empirical CDF just before and at each sample point
		// against the uniform CDF clamp(x, 0, 1).
		u := math.Min(1, math.Max(0, x))
		hi := float64(i+1) / float64(len(e))
		lo := float64(i) / float64(len(e))
		if diff := math.Abs(hi - u); diff > d {
			d = diff
		}
		if diff := math.Abs(lo - u); diff > d {
			d = diff
		}
	}
	return d
}

// BootstrapCI returns the mean and a (1-alpha) percentile bootstrap
// confidence interval for the mean of xs, using nResamples resamples drawn
// from rng. rng must not be nil when nResamples > 0.
func BootstrapCI(xs []float64, nResamples int, alpha float64, rng Rand) (mean, lo, hi float64) {
	mean = Mean(xs)
	if len(xs) == 0 || nResamples <= 0 {
		return mean, mean, mean
	}
	means := make([]float64, nResamples)
	buf := make([]float64, len(xs))
	for r := 0; r < nResamples; r++ {
		for i := range buf {
			buf[i] = xs[rng.Intn(len(xs))]
		}
		means[r] = Mean(buf)
	}
	sort.Float64s(means)
	lo = quantileSorted(means, alpha/2)
	hi = quantileSorted(means, 1-alpha/2)
	return mean, lo, hi
}

// Rand is the subset of *math/rand.Rand that stats needs. Accepting an
// interface keeps the package free of global randomness.
type Rand interface {
	Intn(n int) int
	Float64() float64
}

// Quantile returns the q-quantile (0<=q<=1) of the sample via linear
// interpolation.
func Quantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

func sortByScoreDesc(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx
}

func dedupe(sorted []float64) []float64 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}
