package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func feq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestConfusionBasics(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, TN: 5, FN: 2}
	if !feq(c.Precision(), 0.8, 1e-12) {
		t.Fatalf("precision %v", c.Precision())
	}
	if !feq(c.Recall(), 0.8, 1e-12) {
		t.Fatalf("recall %v", c.Recall())
	}
	if !feq(c.F1(), 0.8, 1e-12) {
		t.Fatalf("f1 %v", c.F1())
	}
	if !feq(c.Accuracy(), 13.0/17.0, 1e-12) {
		t.Fatalf("accuracy %v", c.Accuracy())
	}
	var zero Confusion
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 || zero.Accuracy() != 0 {
		t.Fatalf("zero confusion should be all zeros")
	}
}

func TestConfuse(t *testing.T) {
	scores := []float64{0.9, 0.6, 0.4, 0.1}
	labels := []bool{true, false, true, false}
	c := Confuse(scores, labels, 0.5)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion %+v", c)
	}
}

func TestPerfectClassifierCurves(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if a := AUPRC(scores, labels); !feq(a, 1.0, 1e-12) {
		t.Fatalf("AUPRC perfect = %v", a)
	}
	if a := AUC(scores, labels); !feq(a, 1.0, 1e-12) {
		t.Fatalf("AUC perfect = %v", a)
	}
}

func TestRandomClassifierAUC(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 4000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Float64() < 0.5
	}
	if a := AUC(scores, labels); !feq(a, 0.5, 0.03) {
		t.Fatalf("random AUC = %v, want ~0.5", a)
	}
}

func TestAUPRCRandomBaseline(t *testing.T) {
	// For random scores, AUPRC approaches the positive rate.
	rng := rand.New(rand.NewSource(2))
	n := 4000
	scores := make([]float64, n)
	labels := make([]bool, n)
	posRate := 0.3
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Float64() < posRate
	}
	if a := AUPRC(scores, labels); !feq(a, posRate, 0.05) {
		t.Fatalf("random AUPRC = %v, want ~%v", a, posRate)
	}
}

func TestPRCurveMonotoneRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	scores := make([]float64, 200)
	labels := make([]bool, 200)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Float64() < 0.4
	}
	pts := PRCurve(scores, labels)
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X-1e-12 {
			t.Fatalf("recall not monotone at %d", i)
		}
	}
	if last := pts[len(pts)-1]; !feq(last.X, 1.0, 1e-12) {
		t.Fatalf("final recall %v, want 1", last.X)
	}
}

func TestBestF1Threshold(t *testing.T) {
	scores := []float64{0.95, 0.9, 0.8, 0.3, 0.2, 0.1}
	labels := []bool{true, true, true, false, false, false}
	thr, f1 := BestF1Threshold(scores, labels)
	if !feq(f1, 1.0, 1e-12) {
		t.Fatalf("best F1 = %v, want 1", f1)
	}
	if thr <= 0.3 || thr > 0.8 {
		t.Fatalf("threshold %v should separate classes", thr)
	}
	if thr2, f := BestF1Threshold(nil, nil); thr2 != 0 || f != 0 {
		t.Fatalf("empty input should return zeros")
	}
}

func TestMSERMSE(t *testing.T) {
	if m := MSE([]float64{1, 2}, []float64{1, 4}); !feq(m, 2, 1e-12) {
		t.Fatalf("MSE %v", m)
	}
	if r := RMSE([]float64{0, 0}, []float64{3, 4}); !feq(r, math.Sqrt(12.5), 1e-12) {
		t.Fatalf("RMSE %v", r)
	}
	if m := MSE(nil, nil); m != 0 {
		t.Fatalf("MSE empty %v", m)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !feq(m, 5, 1e-12) {
		t.Fatalf("mean %v", m)
	}
	if s := StdDev(xs); !feq(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("std %v", s)
	}
	if StdDev([]float64{1}) != 0 || Mean(nil) != 0 {
		t.Fatalf("degenerate cases")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if p := Pearson(x, y); !feq(p, 1, 1e-12) {
		t.Fatalf("perfect corr %v", p)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	if p := Pearson(x, yneg); !feq(p, -1, 1e-12) {
		t.Fatalf("perfect anticorr %v", p)
	}
	if p := Pearson(x, []float64{3, 3, 3, 3, 3}); p != 0 {
		t.Fatalf("constant series corr %v", p)
	}
}

func TestCorrelationRatio(t *testing.T) {
	// Categories perfectly determine values -> η = 1.
	cats := []int{0, 0, 1, 1, 2, 2}
	vals := []float64{1, 1, 5, 5, 9, 9}
	if e := CorrelationRatio(cats, vals); !feq(e, 1, 1e-12) {
		t.Fatalf("η = %v, want 1", e)
	}
	// Category means identical -> η = 0.
	vals2 := []float64{1, 9, 1, 9, 1, 9}
	if e := CorrelationRatio(cats, vals2); !feq(e, 0, 1e-12) {
		t.Fatalf("η = %v, want 0", e)
	}
	if e := CorrelationRatio(nil, nil); e != 0 {
		t.Fatalf("empty η = %v", e)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2})
	if v := e.At(0.5); v != 0 {
		t.Fatalf("ECDF below min %v", v)
	}
	if v := e.At(1); !feq(v, 1.0/3, 1e-12) {
		t.Fatalf("ECDF at 1 = %v", v)
	}
	if v := e.At(2.5); !feq(v, 2.0/3, 1e-12) {
		t.Fatalf("ECDF at 2.5 = %v", v)
	}
	if v := e.At(10); v != 1 {
		t.Fatalf("ECDF above max %v", v)
	}
	var empty ECDF
	if empty.At(1) != 0 {
		t.Fatalf("empty ECDF")
	}
}

func TestKSDistance(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := KSDistance(a, a); d != 0 {
		t.Fatalf("KS(self) = %v", d)
	}
	b := []float64{101, 102, 103}
	if d := KSDistance(a, b); !feq(d, 1, 1e-12) {
		t.Fatalf("disjoint KS = %v", d)
	}
}

func TestKSUniform(t *testing.T) {
	// A dense uniform grid should have tiny KS distance to U(0,1).
	n := 1000
	grid := make([]float64, n)
	for i := range grid {
		grid[i] = (float64(i) + 0.5) / float64(n)
	}
	if d := KSUniform(grid); d > 0.01 {
		t.Fatalf("uniform grid KS = %v", d)
	}
	// A point mass at 0.5 has KS distance 0.5.
	mass := []float64{0.5, 0.5, 0.5, 0.5}
	if d := KSUniform(mass); !feq(d, 0.5, 1e-9) {
		t.Fatalf("point-mass KS = %v", d)
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64() + 10
	}
	mean, lo, hi := BootstrapCI(xs, 500, 0.05, rng)
	if lo > mean || mean > hi {
		t.Fatalf("CI [%v,%v] should bracket mean %v", lo, hi, mean)
	}
	if !feq(mean, 10, 0.2) {
		t.Fatalf("mean %v, want ~10", mean)
	}
	if hi-lo > 0.5 {
		t.Fatalf("CI width %v too wide", hi-lo)
	}
	m, l, h := BootstrapCI(nil, 100, 0.05, rng)
	if m != 0 || l != 0 || h != 0 {
		t.Fatalf("empty bootstrap")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("q1 %v", q)
	}
	if q := Quantile(xs, 0.5); !feq(q, 2.5, 1e-12) {
		t.Fatalf("median %v", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile %v", q)
	}
}

// Property: AUC is invariant under strictly monotone score transforms.
func TestAUCMonotoneInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(50)
		scores := make([]float64, n)
		labels := make([]bool, n)
		hasPos, hasNeg := false, false
		for i := range scores {
			scores[i] = rng.NormFloat64()
			labels[i] = rng.Float64() < 0.5
			if labels[i] {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		a1 := AUC(scores, labels)
		transformed := make([]float64, n)
		for i, s := range scores {
			transformed[i] = math.Exp(s) // strictly increasing
		}
		a2 := AUC(transformed, labels)
		return feq(a1, a2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: precision and recall are always within [0,1], and AUPRC too.
func TestMetricsBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
			labels[i] = rng.Float64() < 0.5
		}
		thr := rng.NormFloat64()
		c := Confuse(scores, labels, thr)
		inUnit := func(v float64) bool { return v >= 0 && v <= 1+1e-12 }
		return inUnit(c.Precision()) && inUnit(c.Recall()) && inUnit(c.F1()) &&
			inUnit(AUPRC(scores, labels)) && inUnit(AUC(scores, labels))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
