// Package engine schedules concurrent metAScritic metro runs over one
// shared world: a bounded worker pool executes metros in parallel, a
// thread-safe prior store streams learned strategy success rates from
// finished metros into later ones (Appx. D.6's hierarchical
// initialization, ~5x fewer bootstrap measurements), per-metro progress
// events flow on a caller-supplied channel, and context cancellation
// aborts the whole batch promptly. It is the scheduling seam the
// production-scale roadmap items (sharding, batching, serving) build on.
//
// Determinism contract: every metro runs over an isolated snapshot of the
// pipeline's observation store (an O(1) copy-on-write handle since PR 4 —
// workers snapshot concurrently without copying the accumulated evidence,
// and each run lazily copies only what it mutates) with a seed derived as
// MetroSeed(base,
// metro), so with SharePriors off a batch's per-metro results are
// byte-identical to sequential runs — RunAll(ctx, cfg).Results[m] equals
// p.Snapshot().Run(ctx, m, cfgWithSeed) — regardless of
// worker count or scheduling order. With SharePriors on, which priors a
// metro sees depends on completion order, so results may vary between
// runs (at Workers=1 the scheduling order is fixed and runs are again
// deterministic).
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"metascritic"
	"metascritic/internal/sysmem"
)

// MetroSeed derives the RNG seed metro runs use from a base seed: widely
// separated streams per metro, so concurrent metros never duplicate RNG
// sequences the way sharing DefaultConfig().Seed across metros would.
func MetroSeed(base int64, metro int) int64 {
	return base + int64(metro)*1_000_000_000
}

// Config configures one RunAll batch.
type Config struct {
	// Base is the per-metro pipeline configuration. Base.Seed is the
	// batch's base seed; each metro runs with MetroSeed(Base.Seed, metro).
	// Base.Priors must be nil when SharePriors is set (the engine manages
	// priors itself).
	Base metascritic.Config
	// Metros lists the metro indices to run. Nil means the world's
	// primary (study) metros, in ascending index order.
	Metros []int
	// Workers bounds the pool; 0 means runtime.GOMAXPROCS(0). The pool
	// never exceeds the number of metros.
	Workers int
	// SharePriors streams learned StrategyRates from finished metros into
	// later ones via the engine's prior store. This trades the batch-level
	// determinism guarantee (see the package comment) for ~5x cheaper
	// bootstrap on every metro that starts after the first finishes.
	SharePriors bool
	// Events, when non-nil, receives per-metro progress notifications.
	// The engine never closes the channel; sends are abandoned when the
	// batch is cancelled, so consumers should drain until RunAll returns.
	Events chan<- Event
}

// MultiResult is the outcome of a RunAll batch.
type MultiResult struct {
	// Metros is the batch's metro set in scheduling order.
	Metros []int
	// Results maps metro index to its result.
	Results map[int]*metascritic.Result
	// Stats aggregates measurement counts, per-phase wall-clock and
	// worker utilization over the batch.
	Stats RunStats
}

// Result returns the result for a metro (nil if it was not in the batch).
func (m *MultiResult) Result(metro int) *metascritic.Result { return m.Results[metro] }

// Engine runs metro batches over one pipeline. The zero value is not
// usable; construct with New. An Engine is safe for concurrent use, and
// its prior store persists across batches: a second RunAll (or
// Run) starts with everything earlier runs learned.
type Engine struct {
	pipe   *metascritic.Pipeline
	priors *PriorStore
}

// New builds an engine over a pipeline (world + seeded public
// measurements). The pipeline's store is treated as the batch baseline:
// RunAll snapshots it per metro and never mutates it.
func New(p *metascritic.Pipeline) *Engine {
	return &Engine{pipe: p, priors: NewPriorStore()}
}

// Priors exposes the engine's cross-metro prior store (for inspection
// and for pre-seeding from an earlier campaign).
func (e *Engine) Priors() *PriorStore { return e.priors }

// Pipeline returns the underlying pipeline.
func (e *Engine) Pipeline() *metascritic.Pipeline { return e.pipe }

// Run runs a single metro over an isolated snapshot of the pipeline's
// store, with the engine's seed derivation and prior store applied:
// pooled priors (if any) seed the run, and the learned rates are
// published back. cfg.Seed is treated as the base seed, exactly as in
// RunAll.
func (e *Engine) Run(ctx context.Context, metro int, cfg metascritic.Config) (*metascritic.Result, error) {
	if cfg.Priors == nil {
		if pooled, _ := e.priors.Pooled(); pooled != nil {
			cfg.Priors = pooled
		}
	}
	cfg.Seed = MetroSeed(cfg.Seed, metro)
	res, err := e.pipe.Snapshot().Run(ctx, metro, cfg)
	if err != nil {
		// A cancelled run's partial result (with its phase telemetry) is
		// passed through alongside the error; priors are only learned
		// from completed runs.
		return res, fmt.Errorf("engine: %w", err)
	}
	e.priors.Add(res.StrategyRates)
	return res, nil
}

// RunAll executes the configured metros on a worker pool and returns
// their results plus aggregated statistics. The first per-metro error
// cancels the rest of the batch and is returned (wrapped); when ctx is
// cancelled mid-batch, RunAll returns an error wrapping ctx.Err()
// promptly, without waiting for unstarted metros. Alongside a non-nil
// error the MultiResult is still returned: it carries the completed
// metros' results plus the partial phase telemetry of aborted runs
// (MetroStats.Aborted), so a cancelled batch's cost is attributable
// instead of lost.
func (e *Engine) RunAll(ctx context.Context, cfg Config) (*MultiResult, error) {
	if err := cfg.Base.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if cfg.SharePriors && cfg.Base.Priors != nil {
		return nil, fmt.Errorf("engine: %w: Base.Priors must be nil when SharePriors is set", metascritic.ErrInvalidConfig)
	}
	g := e.pipe.World.G
	metros := cfg.Metros
	if metros == nil {
		metros = append([]int(nil), e.pipe.World.PrimaryMetros()...)
		sort.Ints(metros)
	}
	if len(metros) == 0 {
		return nil, fmt.Errorf("engine: %w: no metros to run", metascritic.ErrInvalidConfig)
	}
	seen := make(map[int]bool, len(metros))
	for _, m := range metros {
		if m < 0 || m >= len(g.Metros) {
			return nil, fmt.Errorf("engine: %w: metro index %d out of range [0,%d)", metascritic.ErrInvalidConfig, m, len(g.Metros))
		}
		if seen[m] {
			return nil, fmt.Errorf("engine: %w: metro %d listed twice", metascritic.ErrInvalidConfig, m)
		}
		seen[m] = true
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(metros) {
		workers = len(metros)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*metascritic.Result, len(metros))
	stats := make([]MetroStats, len(metros))
	ran := make([]bool, len(metros)) // stats[i] is meaningful
	var (
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}

	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for i := range metros {
			select {
			case jobs <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for idx := range jobs {
				metro := metros[idx]
				name := g.Metros[metro].Name
				mcfg := cfg.Base
				mcfg.Seed = MetroSeed(cfg.Base.Seed, metro)
				if mcfg.MeasureWorkers == 0 && workers > 1 {
					// Metros already run concurrently here, so split the
					// machine between pool workers instead of letting every
					// metro's measurement fan-out claim all of GOMAXPROCS.
					// Results are invariant to the measurement worker count
					// (the pipeline's determinism contract), so this only
					// changes scheduling, never output.
					if mw := runtime.GOMAXPROCS(0) / workers; mw > 1 {
						mcfg.MeasureWorkers = mw
					} else {
						mcfg.MeasureWorkers = 1
					}
				}
				usedPriors, priorMetros := false, 0
				if cfg.SharePriors {
					if pooled, n := e.priors.Pooled(); pooled != nil {
						mcfg.Priors = pooled
						usedPriors, priorMetros = true, n
					}
				}
				e.emit(runCtx, cfg.Events, Event{
					Kind: MetroStarted, Metro: metro, Name: name,
					Worker: worker, Time: time.Now(), UsedPriors: usedPriors,
				})
				t0 := time.Now()
				res, err := e.pipe.Snapshot().Run(runCtx, metro, mcfg)
				if err != nil {
					if res != nil {
						// A cancelled run returns its partial result: keep
						// the telemetry of the phases that did run, so the
						// batch's phase attribution covers aborted work.
						stats[idx] = MetroStats{
							Metro: metro, Name: name, Seed: mcfg.Seed, Worker: worker,
							Wall:                  time.Since(t0),
							Aborted:               true,
							Measurements:          res.Measurements,
							BootstrapMeasurements: res.BootstrapMeasurements,
							UsedPriors:            usedPriors,
							PriorMetros:           priorMetros,
							Phases:                res.Timings,
						}
						ran[idx] = true
					}
					fail(fmt.Errorf("engine: metro %s (%d): %w", name, metro, err))
					e.emit(runCtx, cfg.Events, Event{
						Kind: MetroFailed, Metro: metro, Name: name,
						Worker: worker, Time: time.Now(), Err: err,
					})
					continue // drain remaining jobs; they abort on runCtx
				}
				ms := MetroStats{
					Metro: metro, Name: name, Seed: mcfg.Seed, Worker: worker,
					Wall:                  time.Since(t0),
					Measurements:          res.Measurements,
					BootstrapMeasurements: res.BootstrapMeasurements,
					UsedPriors:            usedPriors,
					PriorMetros:           priorMetros,
					Phases:                res.Timings,
				}
				results[idx] = res
				stats[idx] = ms
				ran[idx] = true
				if cfg.SharePriors {
					e.priors.Add(res.StrategyRates)
				}
				e.emit(runCtx, cfg.Events, Event{
					Kind: MetroFinished, Metro: metro, Name: name,
					Worker: worker, Time: time.Now(), UsedPriors: usedPriors,
					Stats: &ms,
				})
			}
		}(w)
	}
	wg.Wait()

	errMu.Lock()
	err := firstErr
	errMu.Unlock()

	out := &MultiResult{
		Metros:  append([]int(nil), metros...),
		Results: make(map[int]*metascritic.Result, len(metros)),
		Stats: RunStats{
			Workers:  workers,
			Wall:     time.Since(start),
			PerMetro: stats,
		},
	}
	for i, m := range metros {
		if !ran[i] {
			continue // never started (batch aborted first)
		}
		if results[i] != nil {
			out.Results[m] = results[i]
		}
		out.Stats.Busy += stats[i].Wall
		out.Stats.Measurements += stats[i].Measurements
		out.Stats.BootstrapMeasurements += stats[i].BootstrapMeasurements
		out.Stats.Phases.Add(stats[i].Phases)
	}
	// Snapshots share the baseline pipeline's traceroute engine and its
	// route cache, so this snapshot covers the whole batch.
	out.Stats.RouteCache = e.pipe.Engine.Cache.Stats()
	out.Stats.PeakRSSBytes = sysmem.PeakRSSBytes()
	if err != nil {
		return out, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return out, fmt.Errorf("engine: %w", cerr)
	}
	return out, nil
}

// emit delivers a progress event, giving up when the batch is cancelled
// so an unread events channel can never wedge an abort.
func (e *Engine) emit(ctx context.Context, ch chan<- Event, ev Event) {
	if ch == nil {
		return
	}
	select {
	case ch <- ev:
	case <-ctx.Done():
	}
}
