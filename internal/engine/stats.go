package engine

import (
	"time"

	"metascritic"
	"metascritic/internal/bgp"
)

// MetroStats summarizes one metro run inside a batch.
type MetroStats struct {
	Metro int
	Name  string
	// Seed is the derived per-metro seed actually used (see MetroSeed).
	Seed int64
	// Worker is the index of the pool worker that ran the metro.
	Worker int
	// Wall is the metro's end-to-end wall-clock inside the batch.
	Wall time.Duration
	// Measurements is the number of targeted traceroutes issued;
	// BootstrapMeasurements is the calibration portion of it.
	Measurements          int
	BootstrapMeasurements int
	// UsedPriors reports whether pooled cross-metro priors seeded this
	// run; PriorMetros is how many finished metros were pooled into them.
	UsedPriors  bool
	PriorMetros int
	// Aborted marks a run that was cancelled mid-flight: Phases then
	// carries the partial telemetry of the phases that did run (the
	// pipeline returns its partial Result alongside the cancel error),
	// and the other counters cover only the completed portion.
	Aborted bool
	// Phases breaks the run down by pipeline phase.
	Phases metascritic.PhaseTimings
}

// RunStats aggregates a whole RunAll batch.
type RunStats struct {
	// Workers is the pool size actually used.
	Workers int
	// Wall is the batch's end-to-end wall-clock.
	Wall time.Duration
	// Busy is the summed per-metro wall-clock (the work the pool absorbed).
	Busy time.Duration
	// Measurements and BootstrapMeasurements sum over all metros.
	Measurements          int
	BootstrapMeasurements int
	// Phases sums the per-phase wall-clock and allocation counters over
	// all metros, including the partial phases of aborted runs.
	Phases metascritic.PhaseTimings
	// RouteCache snapshots the shared route cache at the end of the batch:
	// all metros propagate over one true topology, so the shard/byte/hit
	// counters are batch-global.
	RouteCache bgp.CacheStats
	// PeakRSSBytes is the process resident-set high-water mark (VmHWM)
	// sampled at the end of the batch, 0 where procfs is unavailable.
	// It is process-global and monotonic — earlier batches and other
	// goroutines contribute — but it is the number memory budgeting at
	// 100k scale is gated on, so it rides along with every batch.
	PeakRSSBytes int64
	// PerMetro holds one entry per metro, in scheduling order.
	PerMetro []MetroStats
}

// Utilization returns the fraction of worker capacity the batch kept
// busy: Busy / (Workers × Wall), in [0, 1] up to timer noise.
func (s RunStats) Utilization() float64 {
	if s.Workers <= 0 || s.Wall <= 0 {
		return 0
	}
	return float64(s.Busy) / (float64(s.Wall) * float64(s.Workers))
}

// EventKind tags a progress event.
type EventKind int

// Progress event kinds.
const (
	// MetroStarted fires when a worker picks the metro up.
	MetroStarted EventKind = iota
	// MetroFinished fires when a metro completes; Stats is set.
	MetroFinished
	// MetroFailed fires when a metro returns an error; Err is set.
	MetroFailed
)

func (k EventKind) String() string {
	switch k {
	case MetroStarted:
		return "started"
	case MetroFinished:
		return "finished"
	case MetroFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Event is one per-metro progress notification. Events are delivered in
// completion order on the channel the caller passed in Config.Events; a
// batch abort stops delivery (pending sends are dropped) so a slow or
// absent consumer cannot wedge cancellation.
type Event struct {
	Kind   EventKind
	Metro  int
	Name   string
	Worker int
	Time   time.Time
	// UsedPriors is set on MetroStarted when pooled priors seeded the run.
	UsedPriors bool
	// Stats is set on MetroFinished.
	Stats *MetroStats
	// Err is set on MetroFailed.
	Err error
}
