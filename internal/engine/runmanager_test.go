package engine

// RunManager tests: the async lifecycle (pending → running → done with
// the completion callback fired before "done" is observable), cancel
// during a run without leaking goroutines, drain-with-deadline shutdown
// semantics, and submission rejection after shutdown begins.

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"metascritic"
)

// waitState polls until the run reaches a terminal state.
func waitState(t *testing.T, m *RunManager, id string) RunStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := m.Status(id)
		if !ok {
			t.Fatalf("run %s disappeared", id)
		}
		switch st.State {
		case RunDone, RunFailed, RunCanceled:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s did not finish", id)
	return RunStatus{}
}

func TestRunManagerLifecycle(t *testing.T) {
	p := testPipeline(t, 3, 0.1)
	metros := twoMetros(t, p)

	committed := make(chan *MultiResult, 1)
	m := NewRunManager(New(p), func(id string, mr *MultiResult) { committed <- mr })
	id, err := m.Submit(Config{Base: testConfig(3), Metros: metros, Workers: 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if id != "run-0001" {
		t.Fatalf("first run ID %q, want run-0001", id)
	}
	st := waitState(t, m, id)
	if st.State != RunDone {
		t.Fatalf("run finished as %s (%s), want done", st.State, st.Error)
	}
	if st.Stats == nil || st.Stats.Measurements == 0 {
		t.Fatalf("done status carries no stats: %+v", st)
	}
	if st.Started.Before(st.Submitted) || st.Finished.Before(st.Started) {
		t.Fatalf("timestamps out of order: %+v", st)
	}
	// onDone ran before the state flipped to done.
	select {
	case mr := <-committed:
		if len(mr.Results) != len(metros) {
			t.Fatalf("committed %d results, want %d", len(mr.Results), len(metros))
		}
	default:
		t.Fatalf("state is done but the completion callback has not fired")
	}

	// A second submission gets the next counter ID and List sees both.
	id2, err := m.Submit(Config{Base: testConfig(3), Metros: metros[:1]})
	if err != nil {
		t.Fatalf("second submit: %v", err)
	}
	if id2 != "run-0002" {
		t.Fatalf("second run ID %q, want run-0002", id2)
	}
	waitState(t, m, id2)
	if l := m.List(); len(l) != 2 || l[0].ID != id || l[1].ID != id2 {
		t.Fatalf("List = %+v, want [%s %s] in order", l, id, id2)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestRunManagerRejectsInvalidAndDraining(t *testing.T) {
	p := testPipeline(t, 4, 0.1)
	m := NewRunManager(New(p), nil)

	bad := testConfig(4)
	bad.BatchSize = 0
	if _, err := m.Submit(Config{Base: bad}); !errors.Is(err, metascritic.ErrInvalidConfig) {
		t.Fatalf("invalid config: got %v, want ErrInvalidConfig", err)
	}
	if len(m.List()) != 0 {
		t.Fatalf("rejected submission left a run record")
	}

	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := m.Submit(Config{Base: testConfig(4)}); err == nil || !strings.Contains(err.Error(), "shutting down") {
		t.Fatalf("submit after shutdown: got %v, want shutting-down error", err)
	}
}

// TestRunManagerCancelDuringRun pins the ISSUE's leak contract: cancelling
// an in-flight run mid-measurement ends it as canceled, and after
// Shutdown returns the process is back to its pre-run goroutine count.
func TestRunManagerCancelDuringRun(t *testing.T) {
	p := testPipeline(t, 5, 0.1)
	metros := twoMetros(t, p)
	before := runtime.NumGoroutine()

	m := NewRunManager(New(p), func(string, *MultiResult) {
		t.Errorf("completion callback fired for a canceled run")
	})
	cfg := testConfig(5)
	cfg.MaxMeasurements = 100000 // long enough to still be running when we cancel
	id, err := m.Submit(Config{Base: cfg, Metros: metros, Workers: 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Wait until it is actually running, then cancel mid-flight.
	for {
		st, _ := m.Status(id)
		if st.State == RunRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	if !m.Cancel(id) {
		t.Fatalf("Cancel(%s) reports unknown ID", id)
	}
	st := waitState(t, m, id)
	if st.State != RunCanceled {
		t.Fatalf("state after cancel = %s (%s), want canceled", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "cancel") {
		t.Fatalf("canceled run's error %q does not mention cancellation", st.Error)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Every run goroutine (and the engine workers under it) must be gone.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after shutdown", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestRunManagerShutdownDeadlineCancelsStragglers(t *testing.T) {
	p := testPipeline(t, 6, 0.1)
	metros := twoMetros(t, p)

	m := NewRunManager(New(p), nil)
	cfg := testConfig(6)
	cfg.MaxMeasurements = 100000
	id, err := m.Submit(Config{Base: cfg, Metros: metros, Workers: 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	for {
		st, _ := m.Status(id)
		if st.State == RunRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err = m.Shutdown(ctx)
	if err == nil || !strings.Contains(err.Error(), id) {
		t.Fatalf("shutdown error %v does not report the canceled run %s", err, id)
	}
	st, _ := m.Status(id)
	if st.State != RunCanceled {
		t.Fatalf("straggler state = %s, want canceled", st.State)
	}
}
