package engine

// RunManager gives the serving daemon an asynchronous face over RunAll:
// POST /v1/runs submits a batch and gets a counter-based ID back
// immediately, status polls read a point-in-time copy of the run record,
// and a completion callback hands finished batches to the owner (the
// daemon commits them into its serving state there). Shutdown drains
// in-flight runs up to a deadline, then hard-cancels the stragglers —
// either way it returns only when every run goroutine has exited, which
// is what makes the daemon's "no goroutine leaks on SIGTERM" test
// possible.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// RunState is the lifecycle state of a managed run.
type RunState string

// Managed run lifecycle states.
const (
	RunPending  RunState = "pending"
	RunRunning  RunState = "running"
	RunDone     RunState = "done"
	RunFailed   RunState = "failed"
	RunCanceled RunState = "canceled"
)

// RunStatus is a point-in-time copy of one managed run's record (safe to
// retain and serialize; it shares nothing with the live run).
type RunStatus struct {
	ID        string    `json:"id"`
	State     RunState  `json:"state"`
	Metros    []int     `json:"metros,omitempty"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
	// Error is the failure message for RunFailed/RunCanceled.
	Error string `json:"error,omitempty"`
	// Stats is populated once the run is done.
	Stats *RunStats `json:"stats,omitempty"`
}

type managedRun struct {
	status RunStatus
	cancel context.CancelFunc
}

// RunManager schedules engine batches asynchronously. Construct with
// NewRunManager; all methods are safe for concurrent use.
type RunManager struct {
	eng *Engine
	// onDone, when non-nil, receives every successfully finished batch
	// (called off the run goroutine, before the status flips to done, so
	// a poller that sees "done" can already read the committed state).
	onDone func(id string, mr *MultiResult)

	mu       sync.Mutex
	runs     map[string]*managedRun
	order    []string // insertion order, for List
	nextID   int
	draining bool
	wg       sync.WaitGroup
}

// NewRunManager builds a manager over an engine. onDone (optional)
// receives each successful batch before its run is marked done.
func NewRunManager(eng *Engine, onDone func(id string, mr *MultiResult)) *RunManager {
	return &RunManager{eng: eng, onDone: onDone, runs: map[string]*managedRun{}}
}

// Submit starts a batch asynchronously and returns its run ID. It
// validates the config synchronously — a rejected config never creates a
// run record — and fails once Shutdown has begun.
func (m *RunManager) Submit(cfg Config) (string, error) {
	if err := cfg.Base.Validate(); err != nil {
		return "", fmt.Errorf("engine: submit: %w", err)
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return "", fmt.Errorf("engine: submit: manager is shutting down")
	}
	m.nextID++
	id := fmt.Sprintf("run-%04d", m.nextID)
	ctx, cancel := context.WithCancel(context.Background())
	r := &managedRun{
		status: RunStatus{
			ID:        id,
			State:     RunPending,
			Metros:    append([]int(nil), cfg.Metros...),
			Submitted: time.Now(),
		},
		cancel: cancel,
	}
	m.runs[id] = r
	m.order = append(m.order, id)
	m.wg.Add(1)
	m.mu.Unlock()

	go func() {
		defer m.wg.Done()
		defer cancel()
		m.setState(id, func(s *RunStatus) {
			s.State = RunRunning
			s.Started = time.Now()
		})
		mr, err := m.eng.RunAll(ctx, cfg)
		if err != nil {
			state := RunFailed
			if ctx.Err() != nil {
				state = RunCanceled
			}
			m.setState(id, func(s *RunStatus) {
				s.State = state
				s.Finished = time.Now()
				s.Error = err.Error()
			})
			return
		}
		if m.onDone != nil {
			m.onDone(id, mr)
		}
		m.setState(id, func(s *RunStatus) {
			s.State = RunDone
			s.Finished = time.Now()
			s.Metros = append([]int(nil), mr.Metros...)
			stats := mr.Stats
			s.Stats = &stats
		})
	}()
	return id, nil
}

func (m *RunManager) setState(id string, f func(*RunStatus)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r := m.runs[id]; r != nil {
		f(&r.status)
	}
}

// Status returns a copy of a run's record.
func (m *RunManager) Status(id string) (RunStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	if !ok {
		return RunStatus{}, false
	}
	return copyStatus(r.status), true
}

// List returns every run's record in submission order.
func (m *RunManager) List() []RunStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RunStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, copyStatus(m.runs[id].status))
	}
	return out
}

// Active returns the number of runs not yet in a terminal state.
func (m *RunManager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, r := range m.runs {
		if r.status.State == RunPending || r.status.State == RunRunning {
			n++
		}
	}
	return n
}

// Cancel aborts a run. It reports whether the ID exists; cancelling a
// finished run is a no-op.
func (m *RunManager) Cancel(id string) bool {
	m.mu.Lock()
	r, ok := m.runs[id]
	m.mu.Unlock()
	if ok {
		r.cancel()
	}
	return ok
}

// Shutdown stops accepting submissions, waits for in-flight runs to
// drain until ctx is done, then hard-cancels whatever is left and waits
// for every run goroutine to exit. The error reports whether the drain
// deadline was overrun (the daemon logs it; the state is consistent
// either way).
func (m *RunManager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		m.mu.Lock()
		var killed []string
		for id, r := range m.runs {
			if r.status.State == RunPending || r.status.State == RunRunning {
				killed = append(killed, id)
				r.cancel()
			}
		}
		m.mu.Unlock()
		sort.Strings(killed)
		if len(killed) > 0 {
			err = fmt.Errorf("engine: shutdown deadline overran; canceled %v", killed)
		}
		<-done
	}
	return err
}

func copyStatus(s RunStatus) RunStatus {
	out := s
	out.Metros = append([]int(nil), s.Metros...)
	if s.Stats != nil {
		st := *s.Stats
		out.Stats = &st
	}
	return out
}
