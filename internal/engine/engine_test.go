package engine

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"metascritic"
	"metascritic/internal/netsim"
)

// testPipeline builds a small world with seeded public measurements.
func testPipeline(t testing.TB, seed int64, scale float64) *metascritic.Pipeline {
	t.Helper()
	w := netsim.Generate(netsim.Config{Seed: seed, Metros: netsim.DefaultMetros(scale)})
	p := metascritic.NewPipeline(w)
	rng := rand.New(rand.NewSource(seed))
	p.SeedPublicMeasurements(6, rng)
	return p
}

// testConfig returns a laptop-scale base config.
func testConfig(seed int64) metascritic.Config {
	cfg := metascritic.DefaultConfig()
	cfg.BatchSize = 60
	cfg.MaxMeasurements = 900
	cfg.Rank.MaxRank = 6
	cfg.Rank.Iterations = 4
	cfg.Seed = seed
	return cfg
}

// twoMetros returns the first two primary metros in ascending order.
func twoMetros(t *testing.T, p *metascritic.Pipeline) []int {
	t.Helper()
	metros := p.World.PrimaryMetros()
	sort.Ints(metros)
	if len(metros) < 2 {
		t.Fatalf("world has %d primary metros, need 2", len(metros))
	}
	return metros[:2]
}

func TestRunAllMatchesSequential(t *testing.T) {
	p := testPipeline(t, 7, 0.1)
	cfg := testConfig(7)
	metros := twoMetros(t, p)

	mr, err := New(p).RunAll(context.Background(), Config{
		Base:    cfg,
		Metros:  metros,
		Workers: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}

	// The documented contract: each metro equals a sequential run over a
	// snapshot of the same baseline with the derived per-metro seed.
	for _, m := range metros {
		scfg := cfg
		scfg.Seed = MetroSeed(cfg.Seed, m)
		want, err := p.Snapshot().Run(context.Background(), m, scfg)
		if err != nil {
			t.Fatalf("sequential metro %d: %v", m, err)
		}
		got := mr.Result(m)
		if got == nil {
			t.Fatalf("metro %d missing from MultiResult", m)
		}
		if got.Rank != want.Rank {
			t.Errorf("metro %d rank: concurrent %d, sequential %d", m, got.Rank, want.Rank)
		}
		if got.Measurements != want.Measurements {
			t.Errorf("metro %d measurements: concurrent %d, sequential %d", m, got.Measurements, want.Measurements)
		}
		if got.Threshold != want.Threshold {
			t.Errorf("metro %d threshold: concurrent %v, sequential %v", m, got.Threshold, want.Threshold)
		}
		if len(got.Ratings.Data) != len(want.Ratings.Data) {
			t.Fatalf("metro %d ratings size mismatch", m)
		}
		for i := range got.Ratings.Data {
			if got.Ratings.Data[i] != want.Ratings.Data[i] {
				t.Fatalf("metro %d ratings diverge at %d: %v vs %v",
					m, i, got.Ratings.Data[i], want.Ratings.Data[i])
			}
		}
	}

	// RunAll must not leak targeted traceroutes into the base store: a
	// fresh snapshot still matches the pre-batch baseline.
	if mr.Stats.Measurements == 0 {
		t.Fatalf("no measurements recorded in stats")
	}
	if mr.Stats.Workers < 1 {
		t.Fatalf("workers = %d", mr.Stats.Workers)
	}
	// The aggregated measurement-pipeline stats must tie out: per-metro
	// committed counts sum to the batch's measurement total, and the
	// batch-level Merge reproduces that sum.
	committed := 0
	for _, ms := range mr.Stats.PerMetro {
		if ms.Phases.Measure.Committed != ms.Measurements {
			t.Errorf("metro %d: Measure.Committed %d != Measurements %d",
				ms.Metro, ms.Phases.Measure.Committed, ms.Measurements)
		}
		committed += ms.Phases.Measure.Committed
	}
	if committed != mr.Stats.Measurements {
		t.Errorf("summed Measure.Committed %d != Stats.Measurements %d", committed, mr.Stats.Measurements)
	}
	if mr.Stats.Phases.Measure.Committed != committed {
		t.Errorf("aggregated Measure.Committed %d != summed %d", mr.Stats.Phases.Measure.Committed, committed)
	}
	// The Estimate phase (time building/refreshing E_m) must be measured
	// per metro and aggregate across the batch like the other phases.
	var estSum time.Duration
	for _, ms := range mr.Stats.PerMetro {
		if ms.Phases.Estimate <= 0 {
			t.Errorf("metro %d: Phases.Estimate not recorded", ms.Metro)
		}
		estSum += ms.Phases.Estimate
	}
	if mr.Stats.Phases.Estimate != estSum {
		t.Errorf("aggregated Phases.Estimate %v != summed %v", mr.Stats.Phases.Estimate, estSum)
	}
}

func TestRunAllSeedsDifferPerMetro(t *testing.T) {
	base := int64(3)
	seen := map[int64]bool{}
	for _, m := range []int{0, 1, 2, 5, 11} {
		s := MetroSeed(base, m)
		if seen[s] {
			t.Fatalf("duplicate derived seed %d for metro %d", s, m)
		}
		seen[s] = true
	}
}

func TestRunAllCancellation(t *testing.T) {
	p := testPipeline(t, 9, 0.12)
	cfg := testConfig(9)
	cfg.MaxMeasurements = 40000 // big enough that a full run takes a while
	cfg.Rank.MaxRank = 24
	cfg.Rank.Iterations = 10

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	mr, err := New(p).RunAll(ctx, Config{Base: cfg, Workers: 2})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("RunAll returned nil error under a 60ms deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not wrap ctx.Err(): %v", err)
	}
	// Cancellation is polled per measurement and per estimation round, so
	// the abort must land promptly, not after the remaining budget.
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", elapsed)
	}
	// The batch statistics survive the abort: the MultiResult comes back
	// alongside the error, and any run the deadline interrupted mid-phase
	// is marked Aborted with the telemetry of the phases that did run.
	if mr == nil {
		t.Fatal("cancelled RunAll returned a nil MultiResult")
	}
	for _, ms := range mr.Stats.PerMetro {
		if ms.Aborted && ms.Phases.Total() <= 0 {
			t.Fatalf("aborted metro %s carries no partial phase timings", ms.Name)
		}
		if ms.Aborted && mr.Results[ms.Metro] != nil {
			t.Fatalf("aborted metro %s leaked a result into Results", ms.Name)
		}
	}
}

func TestRunAllCancelledBeforeStart(t *testing.T) {
	p := testPipeline(t, 5, 0.1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(p).RunAll(ctx, Config{Base: testConfig(5), Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: got %v, want context.Canceled", err)
	}
}

func TestPriorSharingReducesBootstrap(t *testing.T) {
	metrosOf := func(p *metascritic.Pipeline) []int { return p.World.PrimaryMetros() }

	run := func(share bool) *MultiResult {
		p := testPipeline(t, 11, 0.1)
		metros := metrosOf(p)
		sort.Ints(metros)
		mr, err := New(p).RunAll(context.Background(), Config{
			Base:        testConfig(11),
			Metros:      metros[:2],
			Workers:     1, // fixed scheduling order: second metro sees the first's rates
			SharePriors: share,
		})
		if err != nil {
			t.Fatalf("RunAll(share=%v): %v", share, err)
		}
		return mr
	}

	isolated := run(false)
	shared := run(true)

	second := shared.Metros[1]
	if !shared.Stats.PerMetro[1].UsedPriors {
		t.Fatalf("second metro did not use pooled priors")
	}
	if shared.Stats.PerMetro[0].UsedPriors {
		t.Fatalf("first metro used priors before any were published")
	}
	isoBoot := isolated.Result(second).BootstrapMeasurements
	sharedBoot := shared.Result(second).BootstrapMeasurements
	if sharedBoot >= isoBoot {
		t.Fatalf("prior sharing did not reduce bootstrap: %d (shared) vs %d (isolated)", sharedBoot, isoBoot)
	}
}

func TestRunAllValidation(t *testing.T) {
	p := testPipeline(t, 2, 0.1)
	eng := New(p)
	ctx := context.Background()

	bad := testConfig(2)
	bad.BatchSize = 0
	if _, err := eng.RunAll(ctx, Config{Base: bad}); !errors.Is(err, metascritic.ErrInvalidConfig) {
		t.Fatalf("zero BatchSize: got %v, want ErrInvalidConfig", err)
	}

	if _, err := eng.RunAll(ctx, Config{Base: testConfig(2), Metros: []int{0, 0}}); !errors.Is(err, metascritic.ErrInvalidConfig) {
		t.Fatalf("duplicate metro: got %v, want ErrInvalidConfig", err)
	}

	if _, err := eng.RunAll(ctx, Config{Base: testConfig(2), Metros: []int{-1}}); !errors.Is(err, metascritic.ErrInvalidConfig) {
		t.Fatalf("negative metro: got %v, want ErrInvalidConfig", err)
	}

	withPriors := testConfig(2)
	var zeros [144]float64
	withPriors.Priors = &zeros
	if _, err := eng.RunAll(ctx, Config{Base: withPriors, SharePriors: true}); !errors.Is(err, metascritic.ErrInvalidConfig) {
		t.Fatalf("SharePriors with explicit priors: got %v, want ErrInvalidConfig", err)
	}
}

func TestRunAllEvents(t *testing.T) {
	p := testPipeline(t, 13, 0.1)
	metros := twoMetros(t, p)

	events := make(chan Event, 64)
	mr, err := New(p).RunAll(context.Background(), Config{
		Base:    testConfig(13),
		Metros:  metros,
		Workers: 2,
		Events:  events,
	})
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	close(events)

	started, finished := map[int]int{}, map[int]int{}
	for ev := range events {
		switch ev.Kind {
		case MetroStarted:
			started[ev.Metro]++
		case MetroFinished:
			finished[ev.Metro]++
			if ev.Stats == nil {
				t.Fatalf("MetroFinished without stats for metro %d", ev.Metro)
			}
			if ev.Stats.Wall <= 0 {
				t.Fatalf("metro %d finished with non-positive wall %v", ev.Metro, ev.Stats.Wall)
			}
		case MetroFailed:
			t.Fatalf("unexpected failure event for metro %d: %v", ev.Metro, ev.Err)
		}
	}
	for _, m := range metros {
		if started[m] != 1 || finished[m] != 1 {
			t.Fatalf("metro %d: %d started / %d finished events", m, started[m], finished[m])
		}
	}
	if got := len(mr.Stats.PerMetro); got != len(metros) {
		t.Fatalf("PerMetro stats has %d entries, want %d", got, len(metros))
	}
	u := mr.Stats.Utilization()
	if u <= 0 || u > 1.5 { // allow timer noise above 1.0
		t.Fatalf("utilization %v out of range", u)
	}
}

func TestEngineRunFeedsPriors(t *testing.T) {
	p := testPipeline(t, 17, 0.1)
	metros := twoMetros(t, p)
	eng := New(p)
	ctx := context.Background()

	first, err := eng.Run(ctx, metros[0], testConfig(17))
	if err != nil {
		t.Fatalf("first metro: %v", err)
	}
	if eng.Priors().Count() != 1 {
		t.Fatalf("prior store count = %d after first run", eng.Priors().Count())
	}
	second, err := eng.Run(ctx, metros[1], testConfig(17))
	if err != nil {
		t.Fatalf("second metro: %v", err)
	}
	// The second run was seeded from the first's rates, so its bootstrap
	// is the reduced one-fifth schedule.
	if second.BootstrapMeasurements >= first.BootstrapMeasurements &&
		first.BootstrapMeasurements > 0 {
		t.Fatalf("second metro bootstrap %d not reduced vs first %d",
			second.BootstrapMeasurements, first.BootstrapMeasurements)
	}
}

func TestPriorStore(t *testing.T) {
	s := NewPriorStore()
	if p, n := s.Pooled(); p != nil || n != 0 {
		t.Fatalf("empty store pooled = (%v, %d)", p, n)
	}
	var a, b [144]float64
	for i := range a {
		a[i] = 0.2
		b[i] = 0.6
	}
	s.Add(a)
	s.Add(b)
	p, n := s.Pooled()
	if n != 2 {
		t.Fatalf("count %d", n)
	}
	for i := range p {
		if d := p[i] - 0.4; d > 1e-12 || d < -1e-12 {
			t.Fatalf("pooled[%d] = %v, want 0.4", i, p[i])
		}
	}
	// The returned array is a copy: mutating it must not corrupt the store.
	p[0] = 99
	if q, _ := s.Pooled(); q[0] != 0.4 {
		t.Fatalf("Pooled returned shared state")
	}
}
