package engine

import (
	"sync"

	"metascritic/internal/probe"
)

// PriorStore pools learned per-strategy success rates across finished
// metro runs (the hierarchical initialization of Appx. D.6). It is safe
// for concurrent use: workers publish rates as their metros finish, and
// metros starting later pull the pooled average to seed their selectors —
// which lets them run a fifth of the bootstrap calibration measurements.
type PriorStore struct {
	mu  sync.Mutex
	sum [probe.NumStrategies]float64
	n   int
}

// NewPriorStore returns an empty store.
func NewPriorStore() *PriorStore { return &PriorStore{} }

// Add publishes one finished metro's learned strategy success rates.
func (s *PriorStore) Add(rates [probe.NumStrategies]float64) {
	s.mu.Lock()
	for i, v := range rates {
		s.sum[i] += v
	}
	s.n++
	s.mu.Unlock()
}

// Pooled returns the average success rates over all published metros and
// how many metros contributed, or (nil, 0) when nothing has been
// published yet. The returned array is a fresh copy the caller owns.
func (s *PriorStore) Pooled() (*[probe.NumStrategies]float64, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return nil, 0
	}
	var out [probe.NumStrategies]float64
	for i := range out {
		out[i] = s.sum[i] / float64(s.n)
	}
	return &out, s.n
}

// Count returns the number of metros pooled so far.
func (s *PriorStore) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
