package engine

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"metascritic"
	"metascritic/internal/benchscale"
	"metascritic/internal/netsim"
)

// benchWorldSpecs returns a metro list with at least nMetros entries:
// the default world (14 metros) extended with additional secondary
// metros when a larger batch is requested. Sizing follows
// netsim.DefaultMetros' scale convention.
func benchWorldSpecs(scale float64, nMetros int) []netsim.MetroSpec {
	specs := netsim.DefaultMetros(scale)
	s := func(n int) int {
		v := int(float64(n) * scale)
		if v < 20 {
			v = 20
		}
		return v
	}
	extras := []netsim.MetroSpec{
		{Name: "Paris", Country: "FR", Continent: "EU", NumASes: s(90), VPCoverage: 0.75},
		{Name: "Toronto", Country: "CA", Continent: "NA", NumASes: s(70), VPCoverage: 0.60},
		{Name: "Mumbai", Country: "IN", Continent: "AS", NumASes: s(90), VPCoverage: 0.25},
		{Name: "Santiago", Country: "CL", Continent: "SA", NumASes: s(60), VPCoverage: 0.15},
	}
	for i := 0; len(specs) < nMetros && i < len(extras); i++ {
		specs = append(specs, extras[i])
	}
	return specs
}

// benchRunAllMetros measures a whole RunAll batch end to end: world
// setup is outside the timed region, but every iteration pays the full
// per-metro pipeline (snapshot, bootstrap, rank loop with targeted
// measurement, completion, threshold) across the batch. The metros=4
// case is the laptop-scale batch; metros=16 stresses the scheduler and
// the shared route cache at a batch size beyond the study-metro set.
//
//	METASCRITIC_BENCH_SCALE=0.3 go test -bench RunAll -benchtime 2x ./internal/engine/
func benchRunAllMetros(b *testing.B, nMetros, workers int) {
	// End-to-end batches run at a larger world scale than the 0.05
	// micro-benchmark trajectory: the configured scale is floored at
	// 0.15 (the BenchmarkRunMetro default) so the batch exercises
	// non-trivial metros even in `make bench` runs. Unlike the
	// micro-benchmarks an unset scale defaults to 0.15, not 1 — a
	// 16-metro paper-scale batch is a profiling session, not a
	// benchmark, so full size stays opt-in via the env var.
	scale := 0.15
	if s := os.Getenv(benchscale.EnvVar); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0.15 {
			scale = v
		}
	}
	specs := benchWorldSpecs(scale, nMetros)
	w := netsim.Generate(netsim.Config{Seed: 1, Metros: specs})
	p := metascritic.NewPipeline(w)
	p.SeedPublicMeasurements(4, rand.New(rand.NewSource(1)))

	cfg := metascritic.DefaultConfig()
	cfg.MaxMeasurements = int(10000 * scale)
	cfg.BatchSize = 150
	cfg.Rank.MaxRank = 10
	cfg.Rank.Iterations = 5

	metros := make([]int, nMetros)
	for i := range metros {
		metros[i] = i
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mr, err := New(p).RunAll(context.Background(), Config{
			Base:    cfg,
			Metros:  metros,
			Workers: workers,
		})
		if err != nil {
			b.Fatalf("RunAll: %v", err)
		}
		if len(mr.Results) != nMetros {
			b.Fatalf("got %d results", len(mr.Results))
		}
		if i == 0 {
			b.ReportMetric(float64(mr.Stats.Measurements), "measurements")
			b.ReportMetric(100*mr.Stats.Utilization(), "utilization-%")
		}
	}
}

// BenchmarkRunAll is the end-to-end batch benchmark of the perf
// trajectory (recorded in BENCH_PR*.json by `make bench`): it answers
// "how fast is a whole campaign", complementing BenchmarkRunMetro's
// single-run view. The workers dimension on the 4-metro batch isolates
// the scheduler's win over sequential execution; metros=16 sizes the
// batch past the study set.
func BenchmarkRunAll(b *testing.B) {
	for _, bc := range []struct{ metros, workers int }{
		{4, 1},
		{4, 4},
		{16, 4},
	} {
		b.Run(fmt.Sprintf("metros=%d/workers=%d", bc.metros, bc.workers), func(b *testing.B) {
			benchRunAllMetros(b, bc.metros, bc.workers)
		})
	}
}
