package engine

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"metascritic"
	"metascritic/internal/netsim"
)

// benchRunAll measures a whole study-metro batch at the given pool size.
// Comparing workers=1 with workers=4 shows the scheduler's wall-clock
// win on the laptop-scale world:
//
//	go test -bench RunAll -benchtime 2x ./internal/engine/
//
// Metro runs are CPU-bound and independent, so on >=4 cores the 4-worker
// variant finishes the six-metro batch roughly min(4, cores)/1 times
// faster. On a single-core machine the two variants tie; the delta
// between them is then a direct read of the scheduler's overhead
// (snapshotting, channels, stats), which should stay within noise.
func benchRunAll(b *testing.B, workers int) {
	w := netsim.Generate(netsim.Config{Seed: 1, Metros: netsim.DefaultMetros(0.12)})
	p := metascritic.NewPipeline(w)
	rng := rand.New(rand.NewSource(1))
	p.SeedPublicMeasurements(6, rng)
	cfg := metascritic.DefaultConfig()
	cfg.BatchSize = 100
	cfg.MaxMeasurements = 2500
	cfg.Rank.MaxRank = 10
	cfg.Rank.Iterations = 6
	metros := w.PrimaryMetros()
	sort.Ints(metros)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mr, err := New(p).RunAll(context.Background(), Config{
			Base:    cfg,
			Metros:  metros,
			Workers: workers,
		})
		if err != nil {
			b.Fatalf("RunAll: %v", err)
		}
		if len(mr.Results) != len(metros) {
			b.Fatalf("got %d results", len(mr.Results))
		}
	}
}

func BenchmarkRunAll1Worker(b *testing.B)  { benchRunAll(b, 1) }
func BenchmarkRunAll4Workers(b *testing.B) { benchRunAll(b, 4) }
