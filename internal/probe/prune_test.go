package probe

import (
	"fmt"
	"reflect"
	"testing"

	"metascritic/internal/asgraph"
)

// pruneGraph builds a star of transit tiers: AS 0 at the top, ASes 1..3
// mid-tier (each buying from 0), and stubs 4..n-1 buying from a mid-tier
// provider round-robin. Cone sizes strictly decrease down the tiers.
func pruneGraph(n int) *asgraph.Graph {
	g := asgraph.NewGraph()
	g.Continents = []string{"EU"}
	g.Countries = []asgraph.Country{{Code: "NL", Continent: 0}}
	g.Metros = []*asgraph.Metro{{Index: 0, Name: "Amsterdam", Country: 0}}
	for i := 0; i < n; i++ {
		g.AddAS(&asgraph.AS{ASN: 100 + i, Metros: []int{0}})
	}
	for i := 1; i <= 3 && i < n; i++ {
		g.AddC2P(i, 0)
	}
	for i := 4; i < n; i++ {
		g.AddC2P(i, 1+(i%3))
	}
	return g
}

func TestTopMembersPassthroughBelowCap(t *testing.T) {
	g := pruneGraph(10)
	members := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	for _, k := range []int{0, 10, 11, 100} {
		got := TopMembers(g, members, k)
		if &got[0] != &members[0] || len(got) != len(members) {
			t.Fatalf("k=%d: below-cap members must pass through as the identical slice", k)
		}
	}
}

func TestTopMembersKeepsHighConeInOrder(t *testing.T) {
	g := pruneGraph(12)
	members := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	got := TopMembers(g, members, 4)
	// Cone sizes: AS 0 covers everyone, 1..3 cover their stub thirds,
	// stubs cover only themselves — the top 4 is exactly the transit tier,
	// in original member order.
	want := []int{0, 1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopMembers = %v, want %v", got, want)
	}
	// The input slice is never mutated.
	if !reflect.DeepEqual(members, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}) {
		t.Fatalf("input members mutated: %v", members)
	}
}

func TestTopMembersDeterministicTies(t *testing.T) {
	// All stubs tie on (cone=1, deg=1): the cap must keep the
	// lowest-indexed ones, and repeated calls must agree exactly.
	g := pruneGraph(20)
	stubs := []int{4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
	first := TopMembers(g, stubs, 5)
	if !reflect.DeepEqual(first, []int{4, 5, 6, 7, 8}) {
		t.Fatalf("tie-break not by index: %v", first)
	}
	for i := 0; i < 3; i++ {
		if got := TopMembers(g, stubs, 5); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: nondeterministic pruning %v vs %v", i, got, first)
		}
	}
}

func TestTopMembersDegreeTieBreak(t *testing.T) {
	// Two stubs with equal cones but different degree: extra peerings
	// promote the denser one.
	g := pruneGraph(8)
	g.AddPeer(5, 6)
	g.AddPeer(5, 7)
	got := TopMembers(g, []int{4, 5}, 1)
	if fmt.Sprint(got) != "[5]" {
		t.Fatalf("degree tie-break picked %v, want [5]", got)
	}
}
