package probe

import (
	"sort"

	"metascritic/internal/asgraph"
)

// TopMembers caps a metro's candidate member set at k ASes, keeping the
// ones most worth completing: Internet-scale worlds put thousands of
// colocated ASes in head metros, and every per-pair structure downstream —
// the selector's penalty/exploration planes, the estimate E_m, the ALS
// ratings — is O(members²), so an uncapped dense metro dominates a whole
// run's footprint.
//
// Ranking is by customer-cone size with total degree as the tie-break
// (larger cones first): high-cone transit ASes anchor the most links and
// the most strategy categories, while the pruned tail is stub ASes whose
// rows would be nearly empty anyway. Ties beyond (cone, degree) break by
// AS index, so the selection is deterministic. The kept subset preserves
// the original member order — callers' row indexing, golden results and
// byte-identity tests see exactly the input slice when len(members) <= k.
func TopMembers(g *asgraph.Graph, members []int, k int) []int {
	if k <= 0 || len(members) <= k {
		return members
	}
	type scored struct {
		pos  int // position in the original member slice
		cone int
		deg  int
	}
	sc := make([]scored, len(members))
	for p, m := range members {
		sc[p] = scored{
			pos:  p,
			cone: g.ConeSize(m),
			deg:  len(g.Providers[m]) + len(g.Customers[m]) + len(g.Peers[m]),
		}
	}
	sort.Slice(sc, func(i, j int) bool {
		a, b := sc[i], sc[j]
		if a.cone != b.cone {
			return a.cone > b.cone
		}
		if a.deg != b.deg {
			return a.deg > b.deg
		}
		return members[a.pos] < members[b.pos]
	})
	keep := sc[:k]
	sort.Slice(keep, func(i, j int) bool { return keep[i].pos < keep[j].pos })
	out := make([]int, k)
	for i, s := range keep {
		out[i] = members[s.pos]
	}
	return out
}
