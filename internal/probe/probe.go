// Package probe implements metAScritic's targeted-measurement machinery
// (§3.3): the categorization of vantage points and targets into 144
// measurement strategies, the per-link success-probability matrix P_m, the
// ε-greedy exploitation/exploration batch selection, per-vantage-point
// scoring, and the hierarchical cross-metro prior of Appx. D.6.
package probe

import (
	"math"
	"math/rand"
	"sort"

	"metascritic/internal/asgraph"
)

// VP is a vantage point: a probe hosted by an AS at a metro.
type VP struct {
	AS    int
	Metro int
}

// VPTopo is the topological relation of a vantage point to the near-side
// AS i of a link.
type VPTopo int

// Vantage-point topological categories.
const (
	VPInAS VPTopo = iota
	VPInCone
	VPOutside
	numVPTopo
)

// TgtTopo is the topological relation of a target to the far-side AS j.
type TgtTopo int

// Target topological categories. TgtAdjIXP replaces "outside the cone"
// for targets: addresses adjacent to an IXP in the metro (§3.3.2).
const (
	TgtInAS TgtTopo = iota
	TgtInCone
	TgtAdjIXP
	numTgtTopo
)

// Strategy is one of the 144 (vantage-point category, target category)
// combinations.
type Strategy struct {
	VPGeo  asgraph.GeoScope
	VPTop  VPTopo
	TgtGeo asgraph.GeoScope
	TgtTop TgtTopo
}

// NumStrategies is the total number of measurement strategies.
const NumStrategies = int(asgraph.NumGeoScopes) * int(numVPTopo) * int(asgraph.NumGeoScopes) * int(numTgtTopo)

// ID returns the strategy's dense index in [0, NumStrategies).
func (s Strategy) ID() int {
	return ((int(s.VPGeo)*int(numVPTopo)+int(s.VPTop))*int(asgraph.NumGeoScopes)+int(s.TgtGeo))*int(numTgtTopo) + int(s.TgtTop)
}

// StrategyFromID inverts ID.
func StrategyFromID(id int) Strategy {
	tt := id % int(numTgtTopo)
	id /= int(numTgtTopo)
	tg := id % int(asgraph.NumGeoScopes)
	id /= int(asgraph.NumGeoScopes)
	vt := id % int(numVPTopo)
	id /= int(numVPTopo)
	return Strategy{VPGeo: asgraph.GeoScope(id), VPTop: VPTopo(vt), TgtGeo: asgraph.GeoScope(tg), TgtTop: TgtTopo(tt)}
}

// Target is a candidate traceroute destination: an address in AS at metro.
type Target struct {
	AS    int
	Metro int
}

// Measurement is one proposed traceroute.
type Measurement struct {
	VP          VP
	Target      Target
	LinkI       int // near-side member AS (graph index)
	LinkJ       int // far-side member AS
	Strat       Strategy
	P           float64 // estimated probability of being informative
	Exploration bool
}

// Selector chooses measurements for one metro. It sees only public data:
// the AS graph (relationships, footprints, IXP membership), probe
// locations, and a hitlist of probe-able targets.
type Selector struct {
	G     *asgraph.Graph
	Metro int
	// Members are the ASes of the connectivity matrix, row order.
	Members []int
	Index   map[int]int

	vps []VP
	// hitlist lists believed-responsive target ASes (ISI hitlist analog).
	hitlist map[int]bool

	// Strategy-level statistics (Beta-style pseudo-counts).
	stratSucc  [NumStrategies]float64
	stratTrial [NumStrategies]float64

	// Per-entry penalties: repeated uninformative attempts at the same
	// entry with the same strategy halve its probability (§3.3.2), and a
	// milder entry-wide factor discourages cycling through strategies on
	// an elusive link. Keyed by entry first so the hot path pays one map
	// lookup per entry, not one per strategy.
	penalty      map[[2]int]map[int]float64
	entryPenalty map[[2]int]float64
	// attempts per entry (for the one-exploration-per-entry cap).
	explored map[[2]int]bool

	// VP scoring: per (vp, AS) informative/total counts.
	vpScore map[vpAS]*counter

	// Cached per-member VP and target categorizations, with their sorted
	// key lists (map iteration order is random; the hot path must be
	// deterministic and cannot afford re-sorting).
	vpCats  map[int]map[int][]VP // member -> catKey(vpGeo, vpTopo) -> vps
	vpKeys  map[int][]int
	tgtCats map[int]map[int][]Target // member -> catKey(tgtGeo, tgtTopo) -> targets
	tgtKeys map[int][]int
}

type vpAS struct {
	vp VP
	as int
}

type counter struct{ good, total float64 }

// NewSelector builds a selector for a metro over the given members, probes
// and hitlist of target ASes.
func NewSelector(g *asgraph.Graph, metro int, members []int, vps []VP, hitlist []int) *Selector {
	s := &Selector{
		G:            g,
		Metro:        metro,
		Members:      members,
		Index:        make(map[int]int, len(members)),
		vps:          vps,
		hitlist:      map[int]bool{},
		penalty:      map[[2]int]map[int]float64{},
		entryPenalty: map[[2]int]float64{},
		explored:     map[[2]int]bool{},
		vpScore:      map[vpAS]*counter{},
		vpCats:       map[int]map[int][]VP{},
		vpKeys:       map[int][]int{},
		tgtCats:      map[int]map[int][]Target{},
		tgtKeys:      map[int][]int{},
	}
	for i, as := range members {
		s.Index[as] = i
	}
	for _, t := range hitlist {
		s.hitlist[t] = true
	}
	// Informed default prior encoding what the paper's bootstrap phase
	// (§3.3.2) discovers: traceroutes from vantage points inside (or in
	// the customer cone of) the near-side AS, geographically close to the
	// metro, are far more likely to traverse the target interconnection;
	// probes elsewhere almost never do. The prior is soft (6 pseudo
	// trials) so per-metro evidence quickly dominates.
	for id := range s.stratSucc {
		st := StrategyFromID(id)
		p := 0.75 *
			[...]float64{1.0, 0.65, 0.4, 0.25}[st.VPGeo] *
			[...]float64{1.0, 0.6, 0.06}[st.VPTop] *
			[...]float64{1.0, 0.75, 0.55, 0.4}[st.TgtGeo] *
			[...]float64{1.0, 0.55, 0.9}[st.TgtTop]
		s.stratSucc[id] = p * 4
		s.stratTrial[id] = 4
	}
	return s
}

// InitPriors seeds the strategy statistics from success rates learned at
// other metros (the hierarchical partial-pooling prior of Appx. D.6).
// weight is the pseudo-trial count given to the prior.
func (s *Selector) InitPriors(prior [NumStrategies]float64, weight float64) {
	for i := range s.stratSucc {
		s.stratSucc[i] = prior[i]*weight + 1
		s.stratTrial[i] = weight + 6
	}
}

// StrategyRates exports the current per-strategy success estimates, to be
// pooled into priors for new metros.
func (s *Selector) StrategyRates() [NumStrategies]float64 {
	var out [NumStrategies]float64
	for i := range out {
		out[i] = s.stratSucc[i] / s.stratTrial[i]
	}
	return out
}

// BootstrapPlan samples up to perStrategy concrete measurements for every
// strategy that has available (vantage point, target) pairs, drawn from
// random member entries. Running the plan and reporting outcomes
// calibrates the initial per-strategy success probabilities (§3.3.2
// "Initial Estimation of P_m").
func (s *Selector) BootstrapPlan(perStrategy, maxEntriesScanned int, rng *rand.Rand) []Measurement {
	n := len(s.Members)
	if n < 2 {
		return nil
	}
	counts := make([]int, NumStrategies)
	var plan []Measurement
	for scanned := 0; scanned < maxEntriesScanned; scanned++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		asI, asJ := s.Members[i], s.Members[j]
		vcats := s.vpCategories(asI)
		tcats := s.targetsFor(asJ)
		for _, vkey := range sortedKeys(vcats) {
			vps := vcats[vkey]
			for _, tkey := range sortedKeys(tcats) {
				tgts := tcats[tkey]
				strat := Strategy{
					VPGeo:  asgraph.GeoScope(vkey / int(numVPTopo)),
					VPTop:  VPTopo(vkey % int(numVPTopo)),
					TgtGeo: asgraph.GeoScope(tkey / int(numTgtTopo)),
					TgtTop: TgtTopo(tkey % int(numTgtTopo)),
				}
				id := strat.ID()
				if counts[id] >= perStrategy {
					continue
				}
				counts[id]++
				plan = append(plan, Measurement{
					VP:     vps[rng.Intn(len(vps))],
					Target: tgts[rng.Intn(len(tgts))],
					LinkI:  asI, LinkJ: asJ,
					Strat: strat,
					P:     s.baseRate(id),
				})
			}
		}
	}
	return plan
}

// sortedKeys returns the map's keys in increasing order.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// vpTopoOf categorizes a vantage point relative to AS i.
func (s *Selector) vpTopoOf(vp VP, i int) VPTopo {
	if vp.AS == i {
		return VPInAS
	}
	if s.G.InCone(vp.AS, i) {
		return VPInCone
	}
	return VPOutside
}

// vpCategories returns the vantage points grouped by (geo, topo) category
// for member AS i, cached.
func (s *Selector) vpCategories(i int) map[int][]VP {
	if c, ok := s.vpCats[i]; ok {
		return c
	}
	c := map[int][]VP{}
	for _, vp := range s.vps {
		geo := s.G.ScopeOfMetros(vp.Metro, s.Metro)
		topo := s.vpTopoOf(vp, i)
		key := int(geo)*int(numVPTopo) + int(topo)
		c[key] = append(c[key], vp)
	}
	s.vpCats[i] = c
	s.vpKeys[i] = sortedKeys(c)
	return c
}

// targetsFor enumerates candidate targets for far-side AS j, grouped by
// (geo, topo) category. Targets outside j's customer cone are not
// considered (§3.3.2); the AdjIXP category holds targets in j at the metro
// when j is a member of an IXP there.
func (s *Selector) targetsFor(j int) map[int][]Target {
	if c, ok := s.tgtCats[j]; ok {
		return c
	}
	out := map[int][]Target{}
	add := func(t Target, topo TgtTopo) {
		geo := s.G.ScopeOfMetros(t.Metro, s.Metro)
		key := int(geo)*int(numTgtTopo) + int(topo)
		out[key] = append(out[key], t)
	}
	if s.hitlist[j] {
		for _, m := range s.G.ASes[j].Metros {
			add(Target{AS: j, Metro: m}, TgtInAS)
			if m == s.Metro {
				for _, ix := range s.G.ASes[j].IXPs {
					if s.G.IXPs[ix].Metro == s.Metro {
						add(Target{AS: j, Metro: m}, TgtAdjIXP)
						break
					}
				}
			}
		}
	}
	// Direct customers stand in for the full cone (keeps enumeration
	// bounded; deeper cone members add little signal).
	for _, c := range s.G.Customers[j] {
		if !s.hitlist[c] {
			continue
		}
		for _, m := range s.G.ASes[c].Metros {
			add(Target{AS: c, Metro: m}, TgtInCone)
		}
	}
	s.tgtCats[j] = out
	s.tgtKeys[j] = sortedKeys(out)
	return out
}

// baseRate returns the prior-informed success rate of a strategy.
func (s *Selector) baseRate(id int) float64 {
	return s.stratSucc[id] / s.stratTrial[id]
}

// EntryProb returns P_ijm: the best estimated probability, over all
// strategies with available (vp, target) pairs, that a traceroute fills
// entry (i, j) — member-row indices. The second result is the best
// concrete measurement achieving it.
func (s *Selector) EntryProb(i, j int, rng *rand.Rand) (float64, *Measurement) {
	asI, asJ := s.Members[i], s.Members[j]
	bestP := 0.0
	bestVKey, bestTKey := -1, -1
	var bestStrat Strategy
	vcats := s.vpCategories(asI)
	tcats := s.targetsFor(asJ)
	vkeys, tkeys := s.vpKeys[asI], s.tgtKeys[asJ]
	entryPen := s.entryPenaltyFor(i, j)
	pens := s.penalty[[2]int{i, j}]
	for _, vkey := range vkeys {
		vps := vcats[vkey]
		for _, tkey := range tkeys {
			tgts := tcats[tkey]
			strat := Strategy{
				VPGeo:  asgraph.GeoScope(vkey / int(numVPTopo)),
				VPTop:  VPTopo(vkey % int(numVPTopo)),
				TgtGeo: asgraph.GeoScope(tkey / int(numTgtTopo)),
				TgtTop: TgtTopo(tkey % int(numTgtTopo)),
			}
			id := strat.ID()
			pen := entryPen
			if pens != nil {
				if p, ok := pens[id]; ok {
					pen *= p
				}
			}
			avail := float64(len(vps) * len(tgts))
			boost := avail / (avail + 3)
			// The pool-size boost is a mild tie-breaker (§3.3.2), not a
			// driver: the learned per-strategy rate dominates.
			p := s.baseRate(id) * pen * (0.85 + 0.15*boost)
			if p > bestP {
				bestP = p
				bestVKey, bestTKey = vkey, tkey
				bestStrat = strat
			}
		}
	}
	if bestVKey < 0 {
		return 0, nil
	}
	// Materialize the concrete measurement only for the winning category.
	vps := vcats[bestVKey]
	tgts := tcats[bestTKey]
	best := &Measurement{
		VP:     s.pickVP(vps, asI, rng),
		Target: tgts[rng.Intn(len(tgts))],
		LinkI:  asI, LinkJ: asJ,
		Strat: bestStrat, P: bestP,
	}
	return bestP, best
}

func (s *Selector) penaltyFor(i, j, strat int) float64 {
	if m := s.penalty[[2]int{i, j}]; m != nil {
		if p, ok := m[strat]; ok {
			return p
		}
	}
	return 1
}

func (s *Selector) entryPenaltyFor(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	if p, ok := s.entryPenalty[[2]int{i, j}]; ok {
		return p
	}
	return 1
}

// pickVP selects a vantage point with probability proportional to its
// informativeness score for AS i (biased random, §3.3.2).
func (s *Selector) pickVP(vps []VP, asI int, rng *rand.Rand) VP {
	if len(vps) == 1 {
		return vps[0]
	}
	// Large categories (hundreds of "elsewhere" probes) are sampled: a
	// biased pick among 24 random candidates behaves like the full scan
	// at a fraction of the cost.
	if len(vps) > 24 {
		sample := make([]VP, 24)
		for k := range sample {
			sample[k] = vps[rng.Intn(len(vps))]
		}
		vps = sample
	}
	weights := make([]float64, len(vps))
	total := 0.0
	for k, vp := range vps {
		w := 0.2
		if c, ok := s.vpScore[vpAS{vp, asI}]; ok && c.total > 0 {
			w += c.good / c.total
		}
		weights[k] = w
		total += w
	}
	r := rng.Float64() * total
	for k, w := range weights {
		r -= w
		if r <= 0 {
			return vps[k]
		}
	}
	return vps[len(vps)-1]
}

// SelectBatch chooses up to size measurements using ε-greedy
// exploitation/exploration over rows that still need entries: need[i] is
// the number of additional entries row i requires (rows with need <= 0 are
// skipped). Fill state is updated optimistically within the batch.
//
// Ordered-commit contract: the returned batch order is significant. The
// measurement pipeline may execute the batch's traceroutes concurrently,
// but it calls Report (and consumes the selector's RNG) strictly in batch
// order, so the selector's statistics — and every batch SelectBatch
// chooses afterwards — are identical to a serial run.
func (s *Selector) SelectBatch(size int, eps float64, rowFill []int, need []int, has func(i, j int) bool, rng *rand.Rand) []Measurement {
	fill := append([]int(nil), rowFill...)
	pending := map[[2]int]bool{}
	explorePerRow := map[int]int{}
	var out []Measurement
	for len(out) < size {
		explore := rng.Float64() < eps
		var m *Measurement
		if explore {
			m = s.selectExplore(fill, need, has, pending, explorePerRow, rng)
		}
		if m == nil {
			m = s.selectExploit(fill, need, has, pending, rng)
		}
		if m == nil {
			break // nothing measurable remains
		}
		i, j := s.Index[m.LinkI], s.Index[m.LinkJ]
		pending[[2]int{i, j}] = true
		pending[[2]int{j, i}] = true
		fill[i]++
		fill[j]++
		out = append(out, *m)
	}
	return out
}

// selectExploit picks the row with the fewest filled entries that has some
// entry with P > 0.1, then the entry with the highest probability (§3.3.1).
func (s *Selector) selectExploit(fill, need []int, has func(i, j int) bool, pending map[[2]int]bool, rng *rand.Rand) *Measurement {
	n := len(s.Members)
	order := rowsByFill(fill, need, rng)
	for _, i := range order {
		bestP := 0.1
		var best *Measurement
		for j := 0; j < n; j++ {
			if j == i || has(i, j) || pending[[2]int{i, j}] {
				continue
			}
			// A link can be measured from either side: probe near i
			// toward j, or near j toward i. Take the better orientation.
			p, m := s.EntryProb(i, j, rng)
			if p2, m2 := s.EntryProb(j, i, rng); p2 > p {
				p, m = p2, m2
			}
			if p > bestP && m != nil {
				bestP = p
				best = m
				best.P = p
			}
		}
		if best != nil {
			return best
		}
	}
	return nil
}

// selectExplore picks the (i, j) minimizing fill[i]+fill[j] that has any
// possible measurement, capped at one exploration per row per batch and
// one per entry ever (§3.3.1).
func (s *Selector) selectExplore(fill, need []int, has func(i, j int) bool, pending map[[2]int]bool, perRow map[int]int, rng *rand.Rand) *Measurement {
	n := len(s.Members)
	type cand struct{ i, j, sum int }
	var cands []cand
	for i := 0; i < n; i++ {
		if need[i] <= 0 || perRow[i] >= 1 {
			continue
		}
		for j := i + 1; j < n; j++ {
			if has(i, j) || pending[[2]int{i, j}] || s.explored[[2]int{i, j}] {
				continue
			}
			cands = append(cands, cand{i, j, fill[i] + fill[j]})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].sum != cands[b].sum {
			return cands[a].sum < cands[b].sum
		}
		if cands[a].i != cands[b].i {
			return cands[a].i < cands[b].i
		}
		return cands[a].j < cands[b].j
	})
	// Walk candidates in order until one has a feasible measurement,
	// trying both orientations and keeping the better one.
	for _, c := range cands {
		p1, m := s.EntryProb(c.i, c.j, rng)
		if p2, m2 := s.EntryProb(c.j, c.i, rng); m == nil || (m2 != nil && p2 > p1) {
			m = m2
		}
		if m != nil {
			m.Exploration = true
			s.explored[[2]int{c.i, c.j}] = true
			perRow[c.i]++
			perRow[c.j]++
			return m
		}
	}
	return nil
}

// rowsByFill orders member rows that still need entries by increasing fill
// count, breaking ties randomly (§3.3.1).
func rowsByFill(fill, need []int, rng *rand.Rand) []int {
	var rows []int
	for i := range fill {
		if need[i] > 0 {
			rows = append(rows, i)
		}
	}
	rng.Shuffle(len(rows), func(a, b int) { rows[a], rows[b] = rows[b], rows[a] })
	sort.SliceStable(rows, func(a, b int) bool { return fill[rows[a]] < fill[rows[b]] })
	return rows
}

// Report feeds back whether a measurement was informative for its target
// entry, updating strategy statistics, per-entry penalties and VP scores.
// Report is not safe for concurrent use and its call order shapes future
// SelectBatch decisions; the measurement pipeline therefore serializes
// Report calls on the committing goroutine, in batch order, even when the
// traceroutes themselves ran concurrently (see the ordered-commit contract
// on SelectBatch).
func (s *Selector) Report(m Measurement, informative bool) {
	id := m.Strat.ID()
	s.stratTrial[id]++
	if informative {
		s.stratSucc[id]++
	}
	i, okI := s.Index[m.LinkI]
	j, okJ := s.Index[m.LinkJ]
	if okI && okJ {
		key := [2]int{i, j}
		a, b := i, j
		if a > b {
			a, b = b, a
		}
		if informative {
			if m := s.penalty[key]; m != nil {
				delete(m, id)
			}
			delete(s.entryPenalty, [2]int{a, b})
		} else {
			m := s.penalty[key]
			if m == nil {
				m = map[int]float64{}
				s.penalty[key] = m
			}
			m[id] = s.penaltyFor(i, j, id) * 0.5
			s.entryPenalty[[2]int{a, b}] = s.entryPenaltyFor(i, j) * 0.7
		}
	}
	c := s.vpScore[vpAS{m.VP, m.LinkI}]
	if c == nil {
		c = &counter{}
		s.vpScore[vpAS{m.VP, m.LinkI}] = c
	}
	c.total++
	if informative {
		c.good++
	}
}

// PoolPriors averages strategy rates from several metros into a single
// prior (the complete-pooling step at the top of the hierarchical model;
// metro-level deviations are learned once measurements arrive).
func PoolPriors(rates ...[NumStrategies]float64) [NumStrategies]float64 {
	var out [NumStrategies]float64
	if len(rates) == 0 {
		return out
	}
	for _, r := range rates {
		for i := range out {
			out[i] += r[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(rates))
		out[i] = math.Min(1, math.Max(0, out[i]))
	}
	return out
}
