// Package probe implements metAScritic's targeted-measurement machinery
// (§3.3): the categorization of vantage points and targets into 144
// measurement strategies, the per-link success-probability matrix P_m, the
// ε-greedy exploitation/exploration batch selection, per-vantage-point
// scoring, and the hierarchical cross-metro prior of Appx. D.6.
//
// The selector is the inner loop of a whole run: SelectBatch evaluates
// EntryProb for every open (row, column) pair of the neediest rows, once
// per selected measurement. PR 7 profiling showed that loop dominating
// end-to-end wall-clock through map hashing (16-byte [2]int and struct
// keys) and per-candidate allocations, so every per-pair structure here is
// a dense slice indexed by member row (penalties, exploration marks, VP
// scores, category caches) and all batch-scoped scratch lives on the
// Selector. The selection semantics — iteration order, tie-breaking, and
// the exact RNG consumption sequence — are bit-identical to the original
// map-based implementation; a Selector is not safe for concurrent use
// (and never was: Report's call order shapes future batches).
package probe

import (
	"math"
	"math/rand"
	"sort"

	"metascritic/internal/asgraph"
)

// VP is a vantage point: a probe hosted by an AS at a metro.
type VP struct {
	AS    int
	Metro int
}

// VPTopo is the topological relation of a vantage point to the near-side
// AS i of a link.
type VPTopo int

// Vantage-point topological categories.
const (
	VPInAS VPTopo = iota
	VPInCone
	VPOutside
	numVPTopo
)

// TgtTopo is the topological relation of a target to the far-side AS j.
type TgtTopo int

// Target topological categories. TgtAdjIXP replaces "outside the cone"
// for targets: addresses adjacent to an IXP in the metro (§3.3.2).
const (
	TgtInAS TgtTopo = iota
	TgtInCone
	TgtAdjIXP
	numTgtTopo
)

// Strategy is one of the 144 (vantage-point category, target category)
// combinations.
type Strategy struct {
	VPGeo  asgraph.GeoScope
	VPTop  VPTopo
	TgtGeo asgraph.GeoScope
	TgtTop TgtTopo
}

// NumStrategies is the total number of measurement strategies.
const NumStrategies = int(asgraph.NumGeoScopes) * int(numVPTopo) * int(asgraph.NumGeoScopes) * int(numTgtTopo)

// numTgtKeys is the number of distinct target category keys; a strategy ID
// factors as vpKey*numTgtKeys + tgtKey (see ID), which the hot path uses
// to combine cached category keys without rebuilding Strategy values.
const numTgtKeys = int(asgraph.NumGeoScopes) * int(numTgtTopo)

// ID returns the strategy's dense index in [0, NumStrategies).
func (s Strategy) ID() int {
	return ((int(s.VPGeo)*int(numVPTopo)+int(s.VPTop))*int(asgraph.NumGeoScopes)+int(s.TgtGeo))*int(numTgtTopo) + int(s.TgtTop)
}

// StrategyFromID inverts ID.
func StrategyFromID(id int) Strategy {
	tt := id % int(numTgtTopo)
	id /= int(numTgtTopo)
	tg := id % int(asgraph.NumGeoScopes)
	id /= int(asgraph.NumGeoScopes)
	vt := id % int(numVPTopo)
	id /= int(numVPTopo)
	return Strategy{VPGeo: asgraph.GeoScope(id), VPTop: VPTopo(vt), TgtGeo: asgraph.GeoScope(tg), TgtTop: TgtTopo(tt)}
}

// strategyFromKeys rebuilds the Strategy of a (vpKey, tgtKey) category
// pair; equivalent to StrategyFromID(vkey*numTgtKeys+tkey).
func strategyFromKeys(vkey, tkey int) Strategy {
	return Strategy{
		VPGeo:  asgraph.GeoScope(vkey / int(numVPTopo)),
		VPTop:  VPTopo(vkey % int(numVPTopo)),
		TgtGeo: asgraph.GeoScope(tkey / int(numTgtTopo)),
		TgtTop: TgtTopo(tkey % int(numTgtTopo)),
	}
}

// Target is a candidate traceroute destination: an address in AS at metro.
type Target struct {
	AS    int
	Metro int
}

// Measurement is one proposed traceroute.
type Measurement struct {
	VP          VP
	Target      Target
	LinkI       int // near-side member AS (graph index)
	LinkJ       int // far-side member AS
	Strat       Strategy
	P           float64 // estimated probability of being informative
	Exploration bool
}

// vpCat is one non-empty vantage-point category of a member row: the VPs
// plus their indices into Selector.vps (for the dense score table).
type vpCat struct {
	key  int
	vps  []VP
	idxs []int32
}

// tgtCat is one non-empty target category of a member row.
type tgtCat struct {
	key  int
	tgts []Target
}

// counter tracks informative/total outcomes of a (VP, member) pairing.
type counter struct{ good, total float64 }

// Selector chooses measurements for one metro. It sees only public data:
// the AS graph (relationships, footprints, IXP membership), probe
// locations, and a hitlist of probe-able targets. A Selector is not safe
// for concurrent use.
type Selector struct {
	G     *asgraph.Graph
	Metro int
	// Members are the ASes of the connectivity matrix, row order.
	Members []int
	Index   map[int]int

	vps []VP
	// hitlist lists believed-responsive target ASes (ISI hitlist analog).
	hitlist map[int]bool

	// Strategy-level statistics (Beta-style pseudo-counts).
	stratSucc  [NumStrategies]float64
	stratTrial [NumStrategies]float64

	// Per-entry penalties, dense by member-row pair (i*n+j): repeated
	// uninformative attempts at the same entry with the same strategy
	// halve its probability (§3.3.2), and a milder entry-wide factor
	// discourages cycling through strategies on an elusive link.
	// penalty is keyed by the ORDERED pair and holds a lazily allocated
	// per-strategy factor slice (0 = no penalty); entryPenalty is keyed
	// by the unordered pair (i<j) with 0 meaning no penalty (factor 1).
	penalty      map[int][]float64
	entryPenalty []float64
	// explored marks entries that spent their one exploration attempt
	// (unordered, i<j).
	explored []bool

	// VP scoring: per (member row, vp index) informative/total counts.
	// Rows are allocated lazily on first Report for the member, so the
	// table stays proportional to the measured rows. vpIndex resolves a
	// VP value back to its index in vps (built on first Report).
	vpScore [][]counter
	vpIndex map[VP]int32

	// Cached per-member-row VP and target categorizations as dense lists
	// sorted by category key (map iteration order is random; the hot
	// path must be deterministic and cannot afford re-sorting).
	vpCats  [][]vpCat
	tgtCats [][]tgtCat

	// Batch-scoped scratch, reused across SelectBatch calls and across
	// the EntryProb sweep (one Selector serves one goroutine).
	fillScratch   []int
	pendingMark   []bool // n×n: entry already chosen in this batch
	perRowScratch []int  // explorations per row in this batch
	rowSorter     rowFillSorter
	candSorter    candSorter
	sampleScratch []VP
	idxScratch    []int32
	weightScratch []float64
	// Result slots for the allocation-free entryProb: A and B hold the
	// two orientations of the pair under evaluation, best holds the
	// winner across pairs (so later evaluations cannot clobber it).
	measureA, measureB, measureBest Measurement
}

type exploreCand struct{ i, j, sum int }

// rowFillSorter and candSorter are reusable sort.Interface
// implementations: the selection loops sort once per chosen measurement,
// and sort.Slice's reflect-based swapper allocates per call while
// sort.Sort/sort.Stable on a pointer receiver does not.
type rowFillSorter struct {
	rows []int
	fill []int
}

func (s *rowFillSorter) Len() int           { return len(s.rows) }
func (s *rowFillSorter) Less(a, b int) bool { return s.fill[s.rows[a]] < s.fill[s.rows[b]] }
func (s *rowFillSorter) Swap(a, b int)      { s.rows[a], s.rows[b] = s.rows[b], s.rows[a] }

type candSorter struct{ cands []exploreCand }

func (s *candSorter) Len() int { return len(s.cands) }
func (s *candSorter) Less(a, b int) bool {
	ca, cb := &s.cands[a], &s.cands[b]
	if ca.sum != cb.sum {
		return ca.sum < cb.sum
	}
	if ca.i != cb.i {
		return ca.i < cb.i
	}
	return ca.j < cb.j
}
func (s *candSorter) Swap(a, b int) { s.cands[a], s.cands[b] = s.cands[b], s.cands[a] }

// NewSelector builds a selector for a metro over the given members, probes
// and hitlist of target ASes.
func NewSelector(g *asgraph.Graph, metro int, members []int, vps []VP, hitlist []int) *Selector {
	n := len(members)
	s := &Selector{
		G:            g,
		Metro:        metro,
		Members:      members,
		Index:        make(map[int]int, n),
		vps:          vps,
		hitlist:      map[int]bool{},
		penalty:      map[int][]float64{},
		entryPenalty: make([]float64, n*n),
		explored:     make([]bool, n*n),
		vpScore:      make([][]counter, n),
		vpCats:       make([][]vpCat, n),
		tgtCats:      make([][]tgtCat, n),
	}
	for i, as := range members {
		s.Index[as] = i
	}
	for _, t := range hitlist {
		s.hitlist[t] = true
	}
	// Informed default prior encoding what the paper's bootstrap phase
	// (§3.3.2) discovers: traceroutes from vantage points inside (or in
	// the customer cone of) the near-side AS, geographically close to the
	// metro, are far more likely to traverse the target interconnection;
	// probes elsewhere almost never do. The prior is soft (6 pseudo
	// trials) so per-metro evidence quickly dominates.
	for id := range s.stratSucc {
		st := StrategyFromID(id)
		p := 0.75 *
			[...]float64{1.0, 0.65, 0.4, 0.25}[st.VPGeo] *
			[...]float64{1.0, 0.6, 0.06}[st.VPTop] *
			[...]float64{1.0, 0.75, 0.55, 0.4}[st.TgtGeo] *
			[...]float64{1.0, 0.55, 0.9}[st.TgtTop]
		s.stratSucc[id] = p * 4
		s.stratTrial[id] = 4
	}
	return s
}

// InitPriors seeds the strategy statistics from success rates learned at
// other metros (the hierarchical partial-pooling prior of Appx. D.6).
// weight is the pseudo-trial count given to the prior.
func (s *Selector) InitPriors(prior [NumStrategies]float64, weight float64) {
	for i := range s.stratSucc {
		s.stratSucc[i] = prior[i]*weight + 1
		s.stratTrial[i] = weight + 6
	}
}

// StrategyRates exports the current per-strategy success estimates, to be
// pooled into priors for new metros.
func (s *Selector) StrategyRates() [NumStrategies]float64 {
	var out [NumStrategies]float64
	for i := range out {
		out[i] = s.stratSucc[i] / s.stratTrial[i]
	}
	return out
}

// BootstrapPlan samples up to perStrategy concrete measurements for every
// strategy that has available (vantage point, target) pairs, drawn from
// random member entries. Running the plan and reporting outcomes
// calibrates the initial per-strategy success probabilities (§3.3.2
// "Initial Estimation of P_m").
func (s *Selector) BootstrapPlan(perStrategy, maxEntriesScanned int, rng *rand.Rand) []Measurement {
	n := len(s.Members)
	if n < 2 {
		return nil
	}
	counts := make([]int, NumStrategies)
	var plan []Measurement
	for scanned := 0; scanned < maxEntriesScanned; scanned++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		asI, asJ := s.Members[i], s.Members[j]
		vcats := s.vpCategories(i)
		tcats := s.targetsFor(j)
		for _, vc := range vcats {
			for _, tc := range tcats {
				id := vc.key*numTgtKeys + tc.key
				if counts[id] >= perStrategy {
					continue
				}
				counts[id]++
				plan = append(plan, Measurement{
					VP:     vc.vps[rng.Intn(len(vc.vps))],
					Target: tc.tgts[rng.Intn(len(tc.tgts))],
					LinkI:  asI, LinkJ: asJ,
					Strat: strategyFromKeys(vc.key, tc.key),
					P:     s.baseRate(id),
				})
			}
		}
	}
	return plan
}

// vpTopoOf categorizes a vantage point relative to AS i.
func (s *Selector) vpTopoOf(vp VP, i int) VPTopo {
	if vp.AS == i {
		return VPInAS
	}
	if s.G.InCone(vp.AS, i) {
		return VPInCone
	}
	return VPOutside
}

// vpCategories returns the vantage points of member row i grouped by
// (geo, topo) category, as a dense list sorted by category key, cached.
func (s *Selector) vpCategories(i int) []vpCat {
	if c := s.vpCats[i]; c != nil {
		return c
	}
	asI := s.Members[i]
	byKey := map[int]int{} // key -> index into cats
	cats := []vpCat{}
	for _, vp := range s.vps {
		geo := s.G.ScopeOfMetros(vp.Metro, s.Metro)
		topo := s.vpTopoOf(vp, asI)
		key := int(geo)*int(numVPTopo) + int(topo)
		ci, ok := byKey[key]
		if !ok {
			ci = len(cats)
			byKey[key] = ci
			cats = append(cats, vpCat{key: key})
		}
		// Canonicalize duplicate VP values (two probes in the same AS at
		// the same metro) onto one score-table index, matching the
		// value-keyed scoring they'd share in a map.
		vi, _ := s.vpIndexOf(vp)
		cats[ci].vps = append(cats[ci].vps, vp)
		cats[ci].idxs = append(cats[ci].idxs, vi)
	}
	sort.Slice(cats, func(a, b int) bool { return cats[a].key < cats[b].key })
	s.vpCats[i] = cats
	return cats
}

// targetsFor enumerates candidate targets for the member at row j, grouped
// by (geo, topo) category as a dense list sorted by category key, cached.
// Targets outside the member's customer cone are not considered (§3.3.2);
// the AdjIXP category holds targets in the AS at the metro when it is a
// member of an IXP there.
func (s *Selector) targetsFor(j int) []tgtCat {
	if c := s.tgtCats[j]; c != nil {
		return c
	}
	asJ := s.Members[j]
	byKey := map[int]int{}
	cats := []tgtCat{}
	add := func(t Target, topo TgtTopo) {
		geo := s.G.ScopeOfMetros(t.Metro, s.Metro)
		key := int(geo)*int(numTgtTopo) + int(topo)
		ci, ok := byKey[key]
		if !ok {
			ci = len(cats)
			byKey[key] = ci
			cats = append(cats, tgtCat{key: key})
		}
		cats[ci].tgts = append(cats[ci].tgts, t)
	}
	if s.hitlist[asJ] {
		for _, m := range s.G.ASes[asJ].Metros {
			add(Target{AS: asJ, Metro: m}, TgtInAS)
			if m == s.Metro {
				for _, ix := range s.G.ASes[asJ].IXPs {
					if s.G.IXPs[ix].Metro == s.Metro {
						add(Target{AS: asJ, Metro: m}, TgtAdjIXP)
						break
					}
				}
			}
		}
	}
	// Direct customers stand in for the full cone (keeps enumeration
	// bounded; deeper cone members add little signal).
	for _, c32 := range s.G.Customers[asJ] {
		c := int(c32)
		if !s.hitlist[c] {
			continue
		}
		for _, m := range s.G.ASes[c].Metros {
			add(Target{AS: c, Metro: m}, TgtInCone)
		}
	}
	sort.Slice(cats, func(a, b int) bool { return cats[a].key < cats[b].key })
	s.tgtCats[j] = cats
	return cats
}

// baseRate returns the prior-informed success rate of a strategy.
func (s *Selector) baseRate(id int) float64 {
	return s.stratSucc[id] / s.stratTrial[id]
}

// EntryProb returns P_ijm: the best estimated probability, over all
// strategies with available (vp, target) pairs, that a traceroute fills
// entry (i, j) — member-row indices. The second result is the best
// concrete measurement achieving it (freshly allocated; the batch
// selection loops use entryProb with a caller-owned slot instead).
func (s *Selector) EntryProb(i, j int, rng *rand.Rand) (float64, *Measurement) {
	var m Measurement
	p := s.entryProb(i, j, rng, &m)
	if p == 0 {
		return 0, nil
	}
	return p, &m
}

// entryProb is the allocation-free core of EntryProb: it fills out with
// the best concrete measurement and returns its probability (0 when no
// measurement is possible, leaving out untouched).
func (s *Selector) entryProb(i, j int, rng *rand.Rand, out *Measurement) float64 {
	asI, asJ := s.Members[i], s.Members[j]
	bestP := 0.0
	bestV, bestT := -1, -1
	vcats := s.vpCategories(i)
	tcats := s.targetsFor(j)
	entryPen := s.entryPenaltyFor(i, j)
	pens := s.penalty[i*len(s.Members)+j]
	for vi := range vcats {
		vc := &vcats[vi]
		vbase := vc.key * numTgtKeys
		nv := float64(len(vc.vps))
		for ti := range tcats {
			tc := &tcats[ti]
			id := vbase + tc.key
			pen := entryPen
			if pens != nil {
				if p := pens[id]; p != 0 {
					pen *= p
				}
			}
			avail := nv * float64(len(tc.tgts))
			boost := avail / (avail + 3)
			// The pool-size boost is a mild tie-breaker (§3.3.2), not a
			// driver: the learned per-strategy rate dominates.
			p := s.baseRate(id) * pen * (0.85 + 0.15*boost)
			if p > bestP {
				bestP = p
				bestV, bestT = vi, ti
			}
		}
	}
	if bestV < 0 {
		return 0
	}
	// Materialize the concrete measurement only for the winning category.
	vc := &vcats[bestV]
	tc := &tcats[bestT]
	*out = Measurement{
		VP:     s.pickVP(vc.vps, vc.idxs, i, rng),
		Target: tc.tgts[rng.Intn(len(tc.tgts))],
		LinkI:  asI, LinkJ: asJ,
		Strat: strategyFromKeys(vc.key, tc.key), P: bestP,
	}
	return bestP
}

func (s *Selector) penaltyFor(i, j, strat int) float64 {
	if m := s.penalty[i*len(s.Members)+j]; m != nil {
		if p := m[strat]; p != 0 {
			return p
		}
	}
	return 1
}

func (s *Selector) entryPenaltyFor(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	if p := s.entryPenalty[i*len(s.Members)+j]; p != 0 {
		return p
	}
	return 1
}

// pickVP selects a vantage point with probability proportional to its
// informativeness score for member row i (biased random, §3.3.2). idxs
// holds the VPs' indices into s.vps (parallel to vps) for the score table.
func (s *Selector) pickVP(vps []VP, idxs []int32, i int, rng *rand.Rand) VP {
	if len(vps) == 1 {
		return vps[0]
	}
	// Large categories (hundreds of "elsewhere" probes) are sampled: a
	// biased pick among 24 random candidates behaves like the full scan
	// at a fraction of the cost.
	if len(vps) > 24 {
		if cap(s.sampleScratch) < 24 {
			s.sampleScratch = make([]VP, 24)
			s.idxScratch = make([]int32, 24)
		}
		sample, sidx := s.sampleScratch[:24], s.idxScratch[:24]
		for k := range sample {
			pick := rng.Intn(len(vps))
			sample[k] = vps[pick]
			sidx[k] = idxs[pick]
		}
		vps, idxs = sample, sidx
	}
	if cap(s.weightScratch) < len(vps) {
		s.weightScratch = make([]float64, len(vps))
	}
	weights := s.weightScratch[:len(vps)]
	total := 0.0
	scores := s.vpScore[i]
	for k := range vps {
		w := 0.2
		if scores != nil {
			if c := &scores[idxs[k]]; c.total > 0 {
				w += c.good / c.total
			}
		}
		weights[k] = w
		total += w
	}
	r := rng.Float64() * total
	for k, w := range weights {
		r -= w
		if r <= 0 {
			return vps[k]
		}
	}
	return vps[len(vps)-1]
}

// SelectBatch chooses up to size measurements using ε-greedy
// exploitation/exploration over rows that still need entries: need[i] is
// the number of additional entries row i requires (rows with need <= 0 are
// skipped). Fill state is updated optimistically within the batch.
//
// Ordered-commit contract: the returned batch order is significant. The
// measurement pipeline may execute the batch's traceroutes concurrently,
// but it calls Report (and consumes the selector's RNG) strictly in batch
// order, so the selector's statistics — and every batch SelectBatch
// chooses afterwards — are identical to a serial run.
func (s *Selector) SelectBatch(size int, eps float64, rowFill []int, need []int, has func(i, j int) bool, rng *rand.Rand) []Measurement {
	n := len(s.Members)
	fill := append(s.fillScratch[:0], rowFill...)
	s.fillScratch = fill
	if s.pendingMark == nil {
		s.pendingMark = make([]bool, n*n)
		s.perRowScratch = make([]int, n)
	}
	pending := s.pendingMark
	perRow := s.perRowScratch
	for k := range perRow {
		perRow[k] = 0
	}
	var out []Measurement
	for len(out) < size {
		explore := rng.Float64() < eps
		var m *Measurement
		if explore {
			m = s.selectExplore(fill, need, has, pending, perRow, rng)
		}
		if m == nil {
			m = s.selectExploit(fill, need, has, pending, rng)
		}
		if m == nil {
			break // nothing measurable remains
		}
		i, j := s.Index[m.LinkI], s.Index[m.LinkJ]
		pending[i*n+j] = true
		pending[j*n+i] = true
		fill[i]++
		fill[j]++
		out = append(out, *m)
	}
	// Clear the pending marks this batch set (bounded by the batch size,
	// so clearing costs O(|out|), not O(n²)).
	for _, m := range out {
		i, j := s.Index[m.LinkI], s.Index[m.LinkJ]
		pending[i*n+j] = false
		pending[j*n+i] = false
	}
	return out
}

// selectExploit picks the row with the fewest filled entries that has some
// entry with P > 0.1, then the entry with the highest probability (§3.3.1).
func (s *Selector) selectExploit(fill, need []int, has func(i, j int) bool, pending []bool, rng *rand.Rand) *Measurement {
	n := len(s.Members)
	order := s.rowsByFill(fill, need, rng)
	for _, i := range order {
		bestP := 0.1
		var best *Measurement
		for j := 0; j < n; j++ {
			if j == i || has(i, j) || pending[i*n+j] {
				continue
			}
			// A link can be measured from either side: probe near i
			// toward j, or near j toward i. Take the better orientation.
			p := s.entryProb(i, j, rng, &s.measureA)
			m := &s.measureA
			if p == 0 {
				m = nil
			}
			if p2 := s.entryProb(j, i, rng, &s.measureB); p2 > p {
				p, m = p2, &s.measureB
			}
			if p > bestP && m != nil {
				bestP = p
				s.measureBest = *m
				s.measureBest.P = p
				best = &s.measureBest
			}
		}
		if best != nil {
			return best
		}
	}
	return nil
}

// selectExplore picks the (i, j) minimizing fill[i]+fill[j] that has any
// possible measurement, capped at one exploration per row per batch and
// one per entry ever (§3.3.1).
func (s *Selector) selectExplore(fill, need []int, has func(i, j int) bool, pending []bool, perRow []int, rng *rand.Rand) *Measurement {
	n := len(s.Members)
	cands := s.candSorter.cands[:0]
	for i := 0; i < n; i++ {
		if need[i] <= 0 || perRow[i] >= 1 {
			continue
		}
		for j := i + 1; j < n; j++ {
			if has(i, j) || pending[i*n+j] || s.explored[i*n+j] {
				continue
			}
			cands = append(cands, exploreCand{i, j, fill[i] + fill[j]})
		}
	}
	s.candSorter.cands = cands
	if len(cands) == 0 {
		return nil
	}
	// The (sum, i, j) comparator is a total order (pairs are unique), so
	// an unstable sort yields the same permutation sort.Slice did.
	sort.Sort(&s.candSorter)
	// Walk candidates in order until one has a feasible measurement,
	// trying both orientations and keeping the better one.
	for _, c := range cands {
		p1 := s.entryProb(c.i, c.j, rng, &s.measureA)
		m := &s.measureA
		if p1 == 0 {
			m = nil
		}
		if p2 := s.entryProb(c.j, c.i, rng, &s.measureB); m == nil || (p2 != 0 && p2 > p1) {
			if p2 == 0 {
				m = nil
			} else {
				m = &s.measureB
			}
		}
		if m != nil {
			m.Exploration = true
			s.explored[c.i*n+c.j] = true
			perRow[c.i]++
			perRow[c.j]++
			return m
		}
	}
	return nil
}

// rowsByFill orders member rows that still need entries by increasing fill
// count, breaking ties randomly (§3.3.1). The returned slice is selector
// scratch, valid until the next call.
func (s *Selector) rowsByFill(fill, need []int, rng *rand.Rand) []int {
	rows := s.rowSorter.rows[:0]
	for i := range fill {
		if need[i] > 0 {
			rows = append(rows, i)
		}
	}
	rng.Shuffle(len(rows), func(a, b int) { rows[a], rows[b] = rows[b], rows[a] })
	s.rowSorter.rows, s.rowSorter.fill = rows, fill
	sort.Stable(&s.rowSorter)
	return rows
}

// Report feeds back whether a measurement was informative for its target
// entry, updating strategy statistics, per-entry penalties and VP scores.
// Report is not safe for concurrent use and its call order shapes future
// SelectBatch decisions; the measurement pipeline therefore serializes
// Report calls on the committing goroutine, in batch order, even when the
// traceroutes themselves ran concurrently (see the ordered-commit contract
// on SelectBatch).
func (s *Selector) Report(m Measurement, informative bool) {
	id := m.Strat.ID()
	s.stratTrial[id]++
	if informative {
		s.stratSucc[id]++
	}
	n := len(s.Members)
	i, okI := s.Index[m.LinkI]
	j, okJ := s.Index[m.LinkJ]
	if okI && okJ {
		a, b := i, j
		if a > b {
			a, b = b, a
		}
		if informative {
			if pens := s.penalty[i*n+j]; pens != nil {
				pens[id] = 0
			}
			s.entryPenalty[a*n+b] = 0
		} else {
			pens := s.penalty[i*n+j]
			if pens == nil {
				pens = make([]float64, NumStrategies)
				s.penalty[i*n+j] = pens
			}
			pens[id] = s.penaltyFor(i, j, id) * 0.5
			s.entryPenalty[a*n+b] = s.entryPenaltyFor(i, j) * 0.7
		}
	}
	if okI {
		scores := s.vpScore[i]
		if scores == nil {
			scores = make([]counter, len(s.vps))
			s.vpScore[i] = scores
		}
		if vi, ok := s.vpIndexOf(m.VP); ok {
			scores[vi].total++
			if informative {
				scores[vi].good++
			}
		}
	}
}

// vpIndexOf resolves a VP value back to its index in s.vps.
func (s *Selector) vpIndexOf(vp VP) (int32, bool) {
	if s.vpIndex == nil {
		s.vpIndex = make(map[VP]int32, len(s.vps))
		for i, v := range s.vps {
			s.vpIndex[v] = int32(i)
		}
	}
	vi, ok := s.vpIndex[vp]
	return vi, ok
}

// PoolPriors averages strategy rates from several metros into a single
// prior (the complete-pooling step at the top of the hierarchical model;
// metro-level deviations are learned once measurements arrive).
func PoolPriors(rates ...[NumStrategies]float64) [NumStrategies]float64 {
	var out [NumStrategies]float64
	if len(rates) == 0 {
		return out
	}
	for _, r := range rates {
		for i := range out {
			out[i] += r[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(rates))
		out[i] = math.Min(1, math.Max(0, out[i]))
	}
	return out
}
