package probe

import (
	"math/rand"
	"testing"

	"metascritic/internal/asgraph"
)

// probeGraph: metros 0 (AMS/NL), 1 (ROT/NL), 2 (NYC/US).
// ASes: 0 transit (provider of 1,2,3), 1..4 members at metro 0.
func probeGraph() *asgraph.Graph {
	g := asgraph.NewGraph()
	g.Continents = []string{"EU", "NA"}
	g.Countries = []asgraph.Country{{Code: "NL", Continent: 0}, {Code: "US", Continent: 1}}
	g.Metros = []*asgraph.Metro{
		{Index: 0, Name: "Amsterdam", Country: 0},
		{Index: 1, Name: "Rotterdam", Country: 0},
		{Index: 2, Name: "NewYork", Country: 1},
	}
	g.IXPs = []*asgraph.IXP{{Index: 0, Name: "AMS-IX", Metro: 0, HasRouteServer: true}}
	for i := 0; i < 5; i++ {
		g.AddAS(&asgraph.AS{ASN: 100 + i, Metros: []int{0, 1, 2}})
	}
	for i := 1; i < 5; i++ {
		g.AddC2P(i, 0)
	}
	g.ASes[2].IXPs = []int{0}
	g.IXPs[0].Members = []int{2}
	return g
}

func newTestSelector() *Selector {
	g := probeGraph()
	members := []int{1, 2, 3, 4}
	vps := []VP{
		{AS: 1, Metro: 0}, // in AS 1, same metro
		{AS: 0, Metro: 2}, // provider's probe far away
		{AS: 3, Metro: 1}, // in AS 3, same country
	}
	return NewSelector(g, 0, members, vps, []int{1, 2, 3, 4})
}

func TestStrategyIDRoundTrip(t *testing.T) {
	if NumStrategies != 144 {
		t.Fatalf("NumStrategies = %d, want 144", NumStrategies)
	}
	seen := map[int]bool{}
	for vg := asgraph.SameMetro; vg < asgraph.NumGeoScopes; vg++ {
		for vt := VPInAS; vt < numVPTopo; vt++ {
			for tg := asgraph.SameMetro; tg < asgraph.NumGeoScopes; tg++ {
				for tt := TgtInAS; tt < numTgtTopo; tt++ {
					s := Strategy{vg, vt, tg, tt}
					id := s.ID()
					if id < 0 || id >= NumStrategies {
						t.Fatalf("ID out of range: %d", id)
					}
					if seen[id] {
						t.Fatalf("duplicate ID %d", id)
					}
					seen[id] = true
					if StrategyFromID(id) != s {
						t.Fatalf("round trip failed for %+v", s)
					}
				}
			}
		}
	}
}

// catVPs and catTgts look up one category's pool in the dense sorted
// category lists (test convenience; missing key = empty pool).
func catVPs(cats []vpCat, key int) []VP {
	for i := range cats {
		if cats[i].key == key {
			return cats[i].vps
		}
	}
	return nil
}

func catTgts(cats []tgtCat, key int) []Target {
	for i := range cats {
		if cats[i].key == key {
			return cats[i].tgts
		}
	}
	return nil
}

func TestVPCategorization(t *testing.T) {
	s := newTestSelector()
	// AS 1 (row 0) hosts a VP in the metro: category (SameMetro, VPInAS).
	cats := s.vpCategories(s.Index[1])
	key := int(asgraph.SameMetro)*int(numVPTopo) + int(VPInAS)
	if got := catVPs(cats, key); len(got) != 1 || got[0].AS != 1 {
		t.Fatalf("cats[%d] = %+v", key, got)
	}
	// VP in AS 0 (provider, not in cone of 1) at NYC: different continents
	// NL vs US ⇒ Elsewhere, VPOutside.
	key2 := int(asgraph.Elsewhere)*int(numVPTopo) + int(VPOutside)
	if got := catVPs(cats, key2); len(got) != 1 || got[0].AS != 0 {
		t.Fatalf("cats[%d] = %+v", key2, got)
	}
	// Category keys come back sorted (the selection loops rely on it).
	for i := 1; i < len(cats); i++ {
		if cats[i-1].key >= cats[i].key {
			t.Fatalf("category keys not sorted: %+v", cats)
		}
	}
	// Parallel index slices point back into s.vps.
	for _, c := range cats {
		if len(c.idxs) != len(c.vps) {
			t.Fatalf("idxs/vps length mismatch: %+v", c)
		}
		for k := range c.vps {
			if s.vps[c.idxs[k]] != c.vps[k] {
				t.Fatalf("idx %d does not resolve to %+v", c.idxs[k], c.vps[k])
			}
		}
	}
}

func TestVPInConeCategory(t *testing.T) {
	s := newTestSelector()
	// For AS 0's row... AS 0 is not a member; use member 3 and check VP
	// in AS 3: in-AS; probe of AS 1 relative to AS 3: outside.
	cats := s.vpCategories(s.Index[3])
	key := int(asgraph.SameCountry)*int(numVPTopo) + int(VPInAS)
	if got := catVPs(cats, key); len(got) != 1 || got[0].AS != 3 {
		t.Fatalf("in-AS same-country VP miscategorized: %+v", cats)
	}
}

func TestTargetsForIncludesIXPAdjacent(t *testing.T) {
	s := newTestSelector()
	tc := s.targetsFor(s.Index[2]) // AS 2 is on AMS-IX
	keyAdj := int(asgraph.SameMetro)*int(numTgtTopo) + int(TgtAdjIXP)
	if len(catTgts(tc, keyAdj)) == 0 {
		t.Fatalf("AdjIXP targets missing: %+v", tc)
	}
	keyIn := int(asgraph.SameMetro)*int(numTgtTopo) + int(TgtInAS)
	if len(catTgts(tc, keyIn)) == 0 {
		t.Fatalf("in-AS targets missing")
	}
	// AS 4 is not on an IXP: no AdjIXP targets.
	tc4 := s.targetsFor(s.Index[4])
	if len(catTgts(tc4, keyAdj)) != 0 {
		t.Fatalf("AS 4 should have no AdjIXP targets")
	}
}

func TestTargetsRespectHitlist(t *testing.T) {
	g := probeGraph()
	s := NewSelector(g, 0, []int{1, 2}, []VP{{AS: 1, Metro: 0}}, []int{1}) // only AS 1 probe-able
	tc := s.targetsFor(s.Index[2])
	for _, cat := range tc {
		for _, tg := range cat.tgts {
			if tg.AS == 2 {
				t.Fatalf("target in AS 2 despite missing from hitlist")
			}
		}
	}
}

func TestEntryProbAndMeasurement(t *testing.T) {
	s := newTestSelector()
	rng := rand.New(rand.NewSource(1))
	p, m := s.EntryProb(0, 1, rng) // members[0]=1, members[1]=2
	if p <= 0 || m == nil {
		t.Fatalf("EntryProb = %v, %v", p, m)
	}
	if m.LinkI != 1 || m.LinkJ != 2 {
		t.Fatalf("measurement links %d-%d", m.LinkI, m.LinkJ)
	}
	if p > 1 {
		t.Fatalf("probability > 1: %v", p)
	}
}

func TestReportUpdatesStatsAndPenalty(t *testing.T) {
	s := newTestSelector()
	rng := rand.New(rand.NewSource(2))
	_, m := s.EntryProb(0, 1, rng)
	id := m.Strat.ID()
	before := s.baseRate(id)
	s.Report(*m, true)
	if s.baseRate(id) <= before {
		t.Fatalf("success should raise strategy rate")
	}
	// Failures halve the per-entry penalty each time.
	s.Report(*m, false)
	i, j := s.Index[m.LinkI], s.Index[m.LinkJ]
	if pen := s.penaltyFor(i, j, id); pen != 0.5 {
		t.Fatalf("penalty = %v, want 0.5", pen)
	}
	s.Report(*m, false)
	if pen := s.penaltyFor(i, j, id); pen != 0.25 {
		t.Fatalf("penalty = %v, want 0.25", pen)
	}
	// Informative report clears the penalty.
	s.Report(*m, true)
	if pen := s.penaltyFor(i, j, id); pen != 1 {
		t.Fatalf("penalty after success = %v, want 1", pen)
	}
}

func TestPenaltyLowersEntryProb(t *testing.T) {
	s := newTestSelector()
	rng := rand.New(rand.NewSource(3))
	p0, m := s.EntryProb(0, 1, rng)
	// Penalize every strategy for the entry to force the drop.
	pens := make([]float64, NumStrategies)
	for id := range pens {
		pens[id] = 0.25
	}
	s.penalty[0*len(s.Members)+1] = pens
	p1, _ := s.EntryProb(0, 1, rng)
	if p1 >= p0 {
		t.Fatalf("penalty should lower P: %v -> %v", p0, p1)
	}
	_ = m
}

func TestSelectBatchFillsNeediestRows(t *testing.T) {
	s := newTestSelector()
	rng := rand.New(rand.NewSource(4))
	rowFill := []int{0, 3, 3, 3}
	need := []int{2, 0, 0, 0}
	batch := s.SelectBatch(2, 0, rowFill, need, func(i, j int) bool { return false }, rng)
	if len(batch) != 2 {
		t.Fatalf("batch size %d", len(batch))
	}
	for _, m := range batch {
		if m.LinkI != s.Members[0] && m.LinkJ != s.Members[0] {
			t.Fatalf("measurement should involve the needy row, got %d-%d", m.LinkI, m.LinkJ)
		}
		if m.Exploration {
			t.Fatalf("eps=0 must not explore")
		}
	}
	// No duplicate entries within a batch.
	seen := map[[2]int]bool{}
	for _, m := range batch {
		k := [2]int{m.LinkI, m.LinkJ}
		if seen[k] {
			t.Fatalf("duplicate entry in batch")
		}
		seen[k] = true
	}
}

func TestSelectBatchExploration(t *testing.T) {
	s := newTestSelector()
	rng := rand.New(rand.NewSource(5))
	rowFill := []int{0, 0, 0, 0}
	need := []int{3, 3, 3, 3}
	batch := s.SelectBatch(6, 1.0, rowFill, need, func(i, j int) bool { return false }, rng)
	if len(batch) == 0 {
		t.Fatalf("empty batch")
	}
	explored := 0
	for _, m := range batch {
		if m.Exploration {
			explored++
		}
	}
	if explored == 0 {
		t.Fatalf("eps=1 should produce exploration measurements")
	}
	// One exploration per entry ever: a second full-exploration batch must
	// not retry the same entries.
	batch2 := s.SelectBatch(6, 1.0, rowFill, need, func(i, j int) bool { return false }, rng)
	seen := map[[2]int]bool{}
	for _, m := range batch {
		if m.Exploration {
			seen[[2]int{m.LinkI, m.LinkJ}] = true
		}
	}
	for _, m := range batch2 {
		if m.Exploration && seen[[2]int{m.LinkI, m.LinkJ}] {
			t.Fatalf("entry explored twice")
		}
	}
}

func TestSelectBatchStopsWhenNothingNeeded(t *testing.T) {
	s := newTestSelector()
	rng := rand.New(rand.NewSource(6))
	batch := s.SelectBatch(5, 0.1, []int{5, 5, 5, 5}, []int{0, 0, 0, 0}, func(i, j int) bool { return false }, rng)
	if len(batch) != 0 {
		t.Fatalf("batch should be empty when no row needs entries, got %d", len(batch))
	}
}

func TestInitPriorsAndPooling(t *testing.T) {
	s := newTestSelector()
	var prior [NumStrategies]float64
	for i := range prior {
		prior[i] = 0.9
	}
	s.InitPriors(prior, 50)
	for i := range prior {
		if r := s.baseRate(i); r < 0.7 {
			t.Fatalf("prior not applied: rate[%d] = %v", i, r)
		}
	}
	r1 := s.StrategyRates()
	var low [NumStrategies]float64 // all zeros
	pooled := PoolPriors(r1, low)
	for i := range pooled {
		if pooled[i] < 0 || pooled[i] > 1 {
			t.Fatalf("pooled rate out of range")
		}
		want := r1[i] / 2
		if diff := pooled[i] - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("pooled[%d] = %v, want %v", i, pooled[i], want)
		}
	}
	var empty [NumStrategies]float64
	if PoolPriors() != empty {
		t.Fatalf("PoolPriors() should be zero")
	}
}

func TestPickVPBiasedByScore(t *testing.T) {
	s := newTestSelector()
	rng := rand.New(rand.NewSource(7))
	vps := []VP{{AS: 1, Metro: 0}, {AS: 3, Metro: 1}}
	idxs := make([]int32, len(vps))
	for k, vp := range vps {
		vi, ok := s.vpIndexOf(vp)
		if !ok {
			t.Fatalf("test VP %+v not in selector vps", vp)
		}
		idxs[k] = vi
	}
	// Give VP (1,0) a perfect score for member AS 1 (row 0) and VP (3,1) a
	// terrible one.
	row := s.Index[1]
	scores := make([]counter, len(s.vps))
	scores[idxs[0]] = counter{good: 10, total: 10}
	scores[idxs[1]] = counter{good: 0, total: 10}
	s.vpScore[row] = scores
	wins := 0
	for k := 0; k < 1000; k++ {
		if s.pickVP(vps, idxs, row, rng) == vps[0] {
			wins++
		}
	}
	if wins < 700 {
		t.Fatalf("high-score VP picked only %d/1000", wins)
	}
}

func TestBootstrapPlan(t *testing.T) {
	s := newTestSelector()
	rng := rand.New(rand.NewSource(8))
	plan := s.BootstrapPlan(2, 200, rng)
	if len(plan) == 0 {
		t.Fatalf("empty bootstrap plan")
	}
	perStrategy := map[int]int{}
	for _, m := range plan {
		perStrategy[m.Strat.ID()]++
		if m.LinkI == m.LinkJ {
			t.Fatalf("self-link in plan")
		}
		if _, ok := s.Index[m.LinkI]; !ok {
			t.Fatalf("plan references non-member %d", m.LinkI)
		}
		if m.P <= 0 || m.P > 1 {
			t.Fatalf("plan probability out of range: %v", m.P)
		}
	}
	for id, n := range perStrategy {
		if n > 2 {
			t.Fatalf("strategy %d sampled %d times, cap 2", id, n)
		}
	}
	// Degenerate selectors produce empty plans.
	g := probeGraph()
	tiny := NewSelector(g, 0, []int{1}, nil, nil)
	if p := tiny.BootstrapPlan(2, 50, rng); p != nil {
		t.Fatalf("single-member selector should have no plan")
	}
}
