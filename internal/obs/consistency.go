package obs

// Routing-consistency tracking (Appx. D.5). A pair is contradictory at
// scope sc when it has both direct (link) and transit (non-link) evidence
// within sc of each other; ASes touching many contradictions are
// iteratively eliminated from the consistent set. AddTrace maintains
// minConflict (the tightest contradiction scope per pair) incrementally,
// and the per-scope consistent sets are cached on the store, invalidated
// by the append-only conflicts log rather than rebuilt per Estimate call.

import (
	"metascritic/internal/asgraph"
)

// consistEntry is one cached ConsistentASes result, stamped with the
// length of the conflicts log it has consumed: the entry stays valid while
// every newer conflict event is strictly wider than its scope.
type consistEntry struct {
	set  map[int]bool
	upTo int
}

// inconsistentPairsAt returns the pairs with contradictory routing at the
// given scope or tighter.
func (s *Store) inconsistentPairsAt(scope asgraph.GeoScope) []asgraph.Pair {
	var out []asgraph.Pair
	for pr, sc := range s.minConflict {
		if sc <= scope {
			out = append(out, pr)
		}
	}
	return out
}

// ConsistentASes returns the set of ASes whose routing is consistent at the
// given scope, per the iterative elimination of Appx. D.5: repeatedly drop
// the AS involved in the most remaining contradictions (ties broken by
// lowest AS number) until none remain. The result is cached until a new
// contradiction at this scope or tighter is logged.
func (s *Store) ConsistentASes(scope asgraph.GeoScope) map[int]bool {
	if e := s.consistent[scope]; e != nil {
		fresh := true
		for _, sc := range s.conflicts[e.upTo:] {
			if sc <= scope {
				fresh = false
				break
			}
		}
		if fresh {
			e.upTo = len(s.conflicts)
			return e.set
		}
	}

	// Collect contradictory pairs at this scope.
	bad := s.inconsistentPairsAt(scope)

	inconsistent := map[int]bool{}
	for len(bad) > 0 {
		counts := map[int]int{}
		for _, pr := range bad {
			counts[pr.A]++
			counts[pr.B]++
		}
		worst, worstN := -1, -1
		for as, n := range counts {
			if n > worstN || (n == worstN && as < worst) {
				worst, worstN = as, n
			}
		}
		inconsistent[worst] = true
		var rest []asgraph.Pair
		for _, pr := range bad {
			if pr.A != worst && pr.B != worst {
				rest = append(rest, pr)
			}
		}
		bad = rest
	}

	set := map[int]bool{}
	for as := 0; as < s.g.N(); as++ {
		if !inconsistent[as] {
			set[as] = true
		}
	}
	if s.consistent == nil {
		s.consistent = map[asgraph.GeoScope]*consistEntry{}
	}
	s.consistent[scope] = &consistEntry{set: set, upTo: len(s.conflicts)}
	return set
}

// noteConflict records a (possibly tightened) contradiction for the pair,
// updating the minConflict index and appending the event to the conflicts
// log that invalidates consistency caches and NegMetascritic estimates.
func (s *Store) noteConflict(pr asgraph.Pair, sc asgraph.GeoScope) {
	if sc >= asgraph.NumGeoScopes {
		return
	}
	cur, ok := s.minConflict[pr]
	if ok && cur <= sc {
		return
	}
	s.ownIndex()
	s.minConflict[pr] = sc
	s.conflicts = append(s.conflicts, sc)
}
