// Package obs turns raw traceroutes into the estimated connectivity matrix
// E_m of §3.4: it detects direct inter-AS crossings (link evidence),
// recognizes intermediate-transit patterns (non-link evidence), tracks
// routing consistency (Appx. D.5) and well-positioned vantage points, and
// applies the geographic-transferability weights (±1, ±0.7, ±0.4, ±0.1)
// when folding observations from other metros into a target metro's
// estimate.
package obs

import (
	"sort"

	"metascritic/internal/asgraph"
	"metascritic/internal/ipmap"
	"metascritic/internal/mat"
	"metascritic/internal/traceroute"
)

// TransferWeight maps a geographic scope to the paper's evidence weight.
func TransferWeight(s asgraph.GeoScope) float64 {
	switch s {
	case asgraph.SameMetro:
		return 1.0
	case asgraph.SameCountry:
		return 0.7
	case asgraph.SameContinent:
		return 0.4
	default:
		return 0.1
	}
}

// probeKey identifies a vantage point.
type probeKey struct{ as, metro int }

// transitObs is one observed "i → transit → j" pattern.
type transitObs struct {
	metro int // metro of the crossing into the transit
	near  int // the AS on the probe side of the transit (i in the paper)
	probe probeKey
}

// Finding summarizes what one traceroute taught us: a direct crossing (or
// transit pattern) between a pair at a metro.
type Finding struct {
	Pair   asgraph.Pair
	Metro  int
	Direct bool // true: link evidence; false: transit (non-link) evidence
}

// Store accumulates traceroute-derived knowledge across all metros.
type Store struct {
	g       *asgraph.Graph
	resolve func(ipmap.Addr) (ipmap.Info, bool)

	// direct[pair] = set of metros with an observed direct crossing.
	direct map[asgraph.Pair]map[int]bool
	// transit[pair] = observed intermediate-transit patterns.
	transit map[asgraph.Pair][]transitObs
	// probeSeen[probe] = set of (AS, metro) interfaces the probe's
	// traceroutes have traversed (for the well-positioned test).
	probeSeen map[probeKey]map[[2]int]bool
	// probeTraces counts traces issued per probe.
	probeTraces map[probeKey]int
	// consistency cache, invalidated on AddTrace.
	consistent map[asgraph.GeoScope]map[int]bool
}

// NewStore builds an empty store. resolve is the hop-resolution function
// (normally Registry.Resolve).
func NewStore(g *asgraph.Graph, resolve func(ipmap.Addr) (ipmap.Info, bool)) *Store {
	return &Store{
		g:           g,
		resolve:     resolve,
		direct:      map[asgraph.Pair]map[int]bool{},
		transit:     map[asgraph.Pair][]transitObs{},
		probeSeen:   map[probeKey]map[[2]int]bool{},
		probeTraces: map[probeKey]int{},
	}
}

// Clone returns a deep copy of the store's accumulated knowledge. The
// clone shares the (read-only) graph and resolver but owns its own
// observation maps, so a cloned store can ingest traces independently —
// the isolation mechanism behind concurrent per-metro runs (each metro
// measures against its own snapshot of the shared evidence base).
func (s *Store) Clone() *Store {
	c := &Store{
		g:           s.g,
		resolve:     s.resolve,
		direct:      make(map[asgraph.Pair]map[int]bool, len(s.direct)),
		transit:     make(map[asgraph.Pair][]transitObs, len(s.transit)),
		probeSeen:   make(map[probeKey]map[[2]int]bool, len(s.probeSeen)),
		probeTraces: make(map[probeKey]int, len(s.probeTraces)),
	}
	for pr, metros := range s.direct {
		m := make(map[int]bool, len(metros))
		for k, v := range metros {
			m[k] = v
		}
		c.direct[pr] = m
	}
	for pr, tobs := range s.transit {
		c.transit[pr] = append([]transitObs(nil), tobs...)
	}
	for pk, seen := range s.probeSeen {
		m := make(map[[2]int]bool, len(seen))
		for k, v := range seen {
			m[k] = v
		}
		c.probeSeen[pk] = m
	}
	for pk, n := range s.probeTraces {
		c.probeTraces[pk] = n
	}
	return c
}

// hopInfo is a resolved responsive hop.
type hopInfo struct {
	as    int
	metro int
	ixp   int
}

// AddTrace ingests one traceroute and returns what it learned. Unresponsive
// hops break adjacency: a crossing is only derived from two consecutive
// responsive hops (the paper's definition of link observation).
func (s *Store) AddTrace(tr traceroute.Trace) []Finding {
	s.consistent = nil
	pk := probeKey{tr.VPAS, tr.VPMetro}
	s.probeTraces[pk]++
	seen := s.probeSeen[pk]
	if seen == nil {
		seen = map[[2]int]bool{}
		s.probeSeen[pk] = seen
	}

	// Resolve responsive hops.
	var hops []hopInfo
	var gaps []bool // gaps[i]: an unresponsive hop preceded hops[i]
	gap := false
	for _, h := range tr.Hops {
		if !h.Responsive {
			gap = true
			continue
		}
		inf, ok := s.resolve(h.Addr)
		if !ok {
			gap = true
			continue
		}
		hops = append(hops, hopInfo{inf.AS, inf.Metro, inf.IXP})
		gaps = append(gaps, gap)
		gap = false
		seen[[2]int{inf.AS, inf.Metro}] = true
	}

	var findings []Finding

	// Collapse to AS-level segments while noting crossings between
	// consecutive responsive hops.
	type seg struct {
		as       int
		metro    int  // metro where we first saw the AS on this trace
		adjacent bool // crossing from the previous segment had no gap
	}
	var segs []seg
	for i, h := range hops {
		if len(segs) > 0 && segs[len(segs)-1].as == h.as {
			continue
		}
		segs = append(segs, seg{as: h.as, metro: h.metro, adjacent: !gaps[i]})
	}

	// Direct crossings: adjacent segments with no gap between them.
	for i := 1; i < len(segs); i++ {
		if !segs[i].adjacent {
			continue
		}
		x, y := segs[i-1].as, segs[i].as
		pr := asgraph.MakePair(x, y)
		// Geolocate the crossing: the ingress hop's metro (IXP prefixes
		// have already pinned IXP crossings to the IXP metro during
		// resolution).
		m := segs[i].metro
		if s.direct[pr] == nil {
			s.direct[pr] = map[int]bool{}
		}
		if !s.direct[pr][m] {
			s.direct[pr][m] = true
		}
		findings = append(findings, Finding{Pair: pr, Metro: m, Direct: true})
	}

	// Transit patterns: x → t → y where t is a provider of x or of y
	// according to the public relationship data, with no gaps.
	for i := 2; i < len(segs); i++ {
		if !segs[i].adjacent || !segs[i-1].adjacent {
			continue
		}
		x, t, y := segs[i-2].as, segs[i-1].as, segs[i].as
		if x == y {
			continue
		}
		if !s.g.HasProvider(x, t) && !s.g.HasProvider(y, t) {
			continue
		}
		pr := asgraph.MakePair(x, y)
		m := segs[i-1].metro // where the flow entered the transit
		s.transit[pr] = append(s.transit[pr], transitObs{metro: m, near: x, probe: pk})
		findings = append(findings, Finding{Pair: pr, Metro: m, Direct: false})
	}
	return findings
}

// DirectMetros returns the metros where a direct crossing between the pair
// has been observed (nil if none).
func (s *Store) DirectMetros(a, b int) []int {
	set := s.direct[asgraph.MakePair(a, b)]
	if set == nil {
		return nil
	}
	out := make([]int, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// WellPositioned reports whether the probe can judge links of AS i at
// metro m: it has traversed an interface of i at m, or has issued no
// traceroute at all (§3.4).
func (s *Store) WellPositioned(vpAS, vpMetro, i, m int) bool {
	pk := probeKey{vpAS, vpMetro}
	if s.probeTraces[pk] == 0 {
		return true
	}
	return s.probeSeen[pk][[2]int{i, m}]
}

// inconsistentPairsAt returns the pairs with contradictory observations at
// scope sc: a direct crossing and a transit pattern within the same
// geographic region.
func (s *Store) inconsistentPairsAt(sc asgraph.GeoScope) []asgraph.Pair {
	var out []asgraph.Pair
	for pr, tobs := range s.transit {
		dm := s.direct[pr]
		if len(dm) == 0 {
			continue
		}
		found := false
		for _, to := range tobs {
			for m := range dm {
				if s.g.ScopeOfMetros(m, to.metro) <= sc {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if found {
			out = append(out, pr)
		}
	}
	return out
}

// ConsistentASes returns the set of ASes with consistent routing at scope
// sc, derived by iteratively eliminating the AS involved in the most
// contradictory pairs until none remain (Appx. D.5).
func (s *Store) ConsistentASes(sc asgraph.GeoScope) map[int]bool {
	if s.consistent == nil {
		s.consistent = map[asgraph.GeoScope]map[int]bool{}
	}
	if c, ok := s.consistent[sc]; ok {
		return c
	}
	bad := s.inconsistentPairsAt(sc)
	removed := map[int]bool{}
	for len(bad) > 0 {
		counts := map[int]int{}
		for _, pr := range bad {
			counts[pr.A]++
			counts[pr.B]++
		}
		worst, worstN := -1, -1
		for as, n := range counts {
			if n > worstN || (n == worstN && as < worst) {
				worst, worstN = as, n
			}
		}
		removed[worst] = true
		var next []asgraph.Pair
		for _, pr := range bad {
			if pr.A != worst && pr.B != worst {
				next = append(next, pr)
			}
		}
		bad = next
	}
	out := map[int]bool{}
	for i := 0; i < s.g.N(); i++ {
		if !removed[i] {
			out[i] = true
		}
	}
	s.consistent[sc] = out
	return out
}

// NegativePolicy selects which conditions gate non-link evidence; the E.7
// ablation compares these.
type NegativePolicy int

// Non-link inference policies.
const (
	// NegFull uses every transit observation (no conditions).
	NegFull NegativePolicy = iota
	// NegWellPositioned requires a well-positioned probe but ignores
	// routing consistency.
	NegWellPositioned
	// NegMetascritic requires both a well-positioned probe and routing
	// consistency at the evidence scope (the paper's method).
	NegMetascritic
	// NegNone never infers non-existence from measurements.
	NegNone
)

// Estimate is the estimated connectivity matrix E_m for one metro.
type Estimate struct {
	Metro   int
	Members []int
	Index   map[int]int
	// E holds evidence values in [-1, 1]; only entries in Mask are
	// meaningful.
	E    *mat.Matrix
	Mask *mat.Mask
}

// Value returns the evidence value for graph-level ASes a and b, and
// whether it is observed.
func (e *Estimate) Value(a, b int) (float64, bool) {
	i, ok1 := e.Index[a]
	j, ok2 := e.Index[b]
	if !ok1 || !ok2 || !e.Mask.Has(i, j) {
		return 0, false
	}
	return e.E.At(i, j), true
}

// Set records an evidence value (keeping E symmetric).
func (e *Estimate) Set(i, j int, v float64) {
	e.E.Set(i, j, v)
	e.E.Set(j, i, v)
	e.Mask.Set(i, j)
}

// RowFill returns the number of observed entries for each member row.
func (e *Estimate) RowFill() []int {
	out := make([]int, len(e.Members))
	for i := range out {
		out[i] = e.Mask.RowCount(i)
	}
	return out
}

// Estimate assembles E_m for the target metro over the given member ASes,
// applying transferability weights and the configured non-link policy.
func (s *Store) Estimate(metro int, members []int, policy NegativePolicy) *Estimate {
	return s.EstimateScoped(metro, members, policy, asgraph.Elsewhere)
}

// EstimateScoped is Estimate restricted to observations within maxScope of
// the target metro: SameMetro disables geographic transferability entirely
// (the Appx. E.4 ablation), Elsewhere enables the full ±1/±0.7/±0.4/±0.1
// weighting.
func (s *Store) EstimateScoped(metro int, members []int, policy NegativePolicy, maxScope asgraph.GeoScope) *Estimate {
	est := &Estimate{
		Metro:   metro,
		Members: members,
		Index:   make(map[int]int, len(members)),
		E:       mat.New(len(members), len(members)),
		Mask:    mat.NewMask(len(members)),
	}
	for i, as := range members {
		est.Index[as] = i
	}
	memberSet := map[int]bool{}
	for _, as := range members {
		memberSet[as] = true
	}

	consistentCache := map[asgraph.GeoScope]map[int]bool{}
	consistentAt := func(sc asgraph.GeoScope) map[int]bool {
		if c, ok := consistentCache[sc]; ok {
			return c
		}
		c := s.ConsistentASes(sc)
		consistentCache[sc] = c
		return c
	}

	// Positive evidence.
	pos := map[asgraph.Pair]float64{}
	for pr, metros := range s.direct {
		if !memberSet[pr.A] || !memberSet[pr.B] {
			continue
		}
		best := 0.0
		for m := range metros {
			sc := s.g.ScopeOfMetros(m, metro)
			if sc > maxScope {
				continue
			}
			if w := TransferWeight(sc); w > best {
				best = w
			}
		}
		if best > 0 {
			pos[pr] = best
		}
	}

	// Negative evidence.
	neg := map[asgraph.Pair]float64{}
	if policy != NegNone {
		for pr, tobs := range s.transit {
			if !memberSet[pr.A] || !memberSet[pr.B] {
				continue
			}
			best := 0.0 // strongest magnitude
			for _, to := range tobs {
				sc := s.g.ScopeOfMetros(to.metro, metro)
				if sc > maxScope {
					continue
				}
				w := TransferWeight(sc)
				if w <= best {
					continue
				}
				// The probe must be well-positioned for the near-side AS
				// at the metro where the transit crossing was observed
				// (§3.4): that is what licenses reading the detour as
				// evidence of a missing direct link there. NegFull skips
				// the gate (E.7 ablation).
				if policy == NegWellPositioned || policy == NegMetascritic {
					if !s.WellPositioned(to.probe.as, to.probe.metro, to.near, to.metro) {
						continue
					}
				}
				if policy == NegMetascritic {
					c := consistentAt(sc)
					if !c[pr.A] || !c[pr.B] {
						continue
					}
				}
				best = w
			}
			if best > 0 {
				neg[pr] = -best
			}
		}
	}

	// Merge: keep the larger magnitude; positive wins ties.
	for pr, v := range pos {
		i, j := est.Index[pr.A], est.Index[pr.B]
		est.Set(i, j, v)
	}
	for pr, v := range neg {
		i, j := est.Index[pr.A], est.Index[pr.B]
		if cur, ok := est.Value(pr.A, pr.B); ok && cur >= -v {
			continue
		}
		est.Set(i, j, v)
	}
	return est
}

// PairCounts returns, per member AS, the number of positive and negative
// observed entries in an estimate — the dominant Shapley features (# of
// existing / non-existing links, Fig. 13).
func (e *Estimate) PairCounts() (posCount, negCount []int) {
	n := len(e.Members)
	posCount = make([]int, n)
	negCount = make([]int, n)
	for i := 0; i < n; i++ {
		for _, j := range e.Mask.RowView(i) {
			if e.E.At(i, int(j)) > 0 {
				posCount[i]++
			} else {
				negCount[i]++
			}
		}
	}
	return posCount, negCount
}
