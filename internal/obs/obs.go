// Package obs turns raw traceroutes into the estimated connectivity matrix
// E_m of §3.4: it detects direct inter-AS crossings (link evidence),
// recognizes intermediate-transit patterns (non-link evidence), tracks
// routing consistency (Appx. D.5) and well-positioned vantage points, and
// applies the geographic-transferability weights (±1, ±0.7, ±0.4, ±0.1)
// when folding observations from other metros into a target metro's
// estimate.
//
// Since PR 4 the package is an incremental evidence layer rather than a
// pile of mutable maps:
//
//   - Evidence accrues append-only. AddTrace only ever adds records
//     (direct crossing metros, transit observations, probe coverage) and
//     appends every pair whose evidence inputs changed to a dirty log,
//     with derived indices (well-positioned gates, routing-consistency
//     conflicts) maintained as it goes.
//   - Clone is an O(1) copy-on-write handle: base and snapshot share every
//     structure until one of them mutates, at which point the mutating
//     store lazily copies just the structures it touches. Divergent
//     snapshots (the engine's per-metro isolation unit) therefore cost
//     nothing until — and proportionally to — what they actually ingest.
//   - Estimates are delta-maintained. An Estimate remembers the dirty-log
//     watermark it has consumed; Store.Refresh re-derives only the pairs
//     touched since, falling back to an in-place full rebuild when the
//     routing-consistency inputs changed. The refreshed estimate is
//     byte-identical to a from-scratch rebuild (pinned by equivalence
//     property/fuzz tests).
//
// A Store is not safe for concurrent use, but distinct stores related by
// Clone are fully independent: interleaved or concurrent mutation of a
// base and its snapshots is race-free and never leaks evidence in either
// direction (lazily copied structures are only ever read once shared).
// Clone itself may run concurrently with other Clones and with reads of
// the same store, but not with its mutations.
package obs

import (
	"sync"

	"metascritic/internal/asgraph"
	"metascritic/internal/ipmap"
	"metascritic/internal/traceroute"
)

// TransferWeight maps a geographic scope to the paper's evidence weight.
func TransferWeight(s asgraph.GeoScope) float64 {
	switch s {
	case asgraph.SameMetro:
		return 1.0
	case asgraph.SameCountry:
		return 0.7
	case asgraph.SameContinent:
		return 0.4
	default:
		return 0.1
	}
}

// probeKey identifies a vantage point. AS and metro indices are int32 in
// the hot record types: the store holds millions of these records at
// Internet scale (100k ASes), and int32 halves the key/record widths
// while covering any index space the graph substrate (itself int32
// adjacency) can represent.
type probeKey struct{ as, metro int32 }

// seenKey identifies one probe-coverage fact: the probe at (vpAS, vpMetro)
// has traversed an interface of AS `as` at metro `metro`. It doubles as
// the key of the well-positioned gate index (§3.4): a transit observation
// whose probe lacks exactly this coverage is parked under it until the
// coverage arrives.
type seenKey struct{ vpAS, vpMetro, as, metro int32 }

// transitObs is one observed "i → transit → j" pattern (20 bytes packed;
// these dominate the transit map's footprint at scale).
type transitObs struct {
	metro int32 // metro of the crossing into the transit
	near  int32 // the AS on the probe side of the transit (i in the paper)
	probe probeKey
	epoch uint32 // store epoch the pattern was observed in (see epoch.go)
}

// Finding summarizes what one traceroute taught us: a direct crossing (or
// transit pattern) between a pair at a metro.
type Finding struct {
	Pair   asgraph.Pair
	Metro  int
	Direct bool // true: link evidence; false: transit (non-link) evidence
}

// Store accumulates traceroute-derived knowledge across all metros.
//
// Every structure below is append-only at the record level (metros are
// added to direct sets, observations to transit lists, coverage facts to
// probeSeen — nothing is ever removed), which is what makes both the
// copy-on-write Clone and the delta-maintained estimates sound: evidence
// for a pair can strengthen but never vanish, so a pair absent from the
// dirty log since an estimate's watermark is guaranteed unchanged.
type Store struct {
	g       *asgraph.Graph
	resolve func(ipmap.Addr) (ipmap.Info, bool)

	// ident is this store's identity token: Estimates record it so
	// Refresh can tell whether they were derived from this store or from
	// a relative across a Clone split. It is a pointer to a non-zero-size
	// struct (unique address per store) whose contents are always equal,
	// so reflect.DeepEqual of two equivalent Estimates from different
	// stores still holds.
	ident *storeIdent

	// cowMu guards shared (and the slice-header clamping in Clone) so
	// concurrent Clones of one store are safe.
	cowMu  sync.Mutex
	shared cowGroup

	// direct[pair] = sorted metros with an observed direct crossing.
	direct map[asgraph.Pair][]int32
	// directEpoch[pair][i] = store epoch direct[pair][i] was last
	// observed in (parallel rows; cowDirect group, see epoch.go).
	directEpoch map[asgraph.Pair][]uint32
	// transit[pair] = observed intermediate-transit patterns, in arrival
	// order.
	transit map[asgraph.Pair][]transitObs
	// probeSeen records probe coverage facts (flat — one entry per
	// (probe, AS, metro) interface traversal) for the well-positioned
	// test.
	probeSeen map[seenKey]bool
	// probeTraces counts traces issued per probe.
	probeTraces map[probeKey]int

	// gate[k] = pairs with transit observations waiting on probe coverage
	// k to pass the well-positioned test; when the coverage arrives the
	// pairs are marked dirty and the gate is removed (gates only open).
	gate map[seenKey][]asgraph.Pair
	// minConflict[pair] = smallest geographic scope at which the pair has
	// both direct and transit evidence (contradictory routing, Appx. D.5).
	minConflict map[asgraph.Pair]asgraph.GeoScope

	// dirty is the append-only evidence log: one entry per pair whose
	// estimate inputs (direct metros, transit observations, gate status)
	// changed. Estimates consume it from their recorded watermark.
	dirty []asgraph.Pair
	// conflicts is the append-only log of routing-consistency input
	// changes: the scope of each new (or tightened) contradiction. The
	// per-scope consistency caches and the NegMetascritic estimates
	// invalidate against it.
	conflicts []asgraph.GeoScope

	// epoch is the store's topology epoch; epochLog records which pairs
	// gained evidence stamps in which epoch (append-only, nondecreasing)
	// so AdvanceEpoch can dirty the pairs crossing the stale boundary.
	epoch    uint32
	epochLog []epochMark

	// consistent caches ConsistentASes per scope, each entry stamped with
	// the conflicts-log length it has consumed. Never shared across
	// Clone (it is cheap to rebuild from minConflict and mutates on
	// read).
	consistent map[asgraph.GeoScope]*consistEntry

	// trScratch holds AddTrace's per-call working buffers (hop
	// resolution, segment collapse), reused across traces. Clone builds
	// the snapshot from a fresh literal, so base and snapshot never
	// alias these buffers; the findings a caller keeps are always
	// freshly allocated.
	trScratch struct {
		hops []hopInfo
		gaps []bool
		segs []traceSeg
	}
}

// NewStore builds an empty store. resolve is the hop-resolution function
// (normally Registry.Resolve).
func NewStore(g *asgraph.Graph, resolve func(ipmap.Addr) (ipmap.Info, bool)) *Store {
	return &Store{
		g:           g,
		resolve:     resolve,
		ident:       &storeIdent{},
		direct:      map[asgraph.Pair][]int32{},
		directEpoch: map[asgraph.Pair][]uint32{},
		transit:     map[asgraph.Pair][]transitObs{},
		probeSeen:   map[seenKey]bool{},
		probeTraces: map[probeKey]int{},
		gate:        map[seenKey][]asgraph.Pair{},
		minConflict: map[asgraph.Pair]asgraph.GeoScope{},
	}
}

// hopInfo is a resolved responsive hop.
type hopInfo struct {
	as    int
	metro int
	ixp   int
}

// traceSeg is one AS-level segment of a collapsed trace.
type traceSeg struct {
	as       int
	metro    int  // metro where we first saw the AS on this trace
	adjacent bool // crossing from the previous segment had no gap
}

// AddTrace ingests one traceroute and returns what it learned. Unresponsive
// hops break adjacency: a crossing is only derived from two consecutive
// responsive hops (the paper's definition of link observation).
//
// Every evidence record the trace contributes is appended to the store's
// logs; the pairs whose estimate inputs changed (including pairs whose
// older transit observations just became licensed by this trace's probe
// coverage) accumulate in the dirty log that Refresh drains.
func (s *Store) AddTrace(tr traceroute.Trace) []Finding {
	pk := probeKey{int32(tr.VPAS), int32(tr.VPMetro)}
	s.ownProbes()
	s.probeTraces[pk]++

	// Resolve responsive hops (into store-owned scratch; see trScratch).
	hops := s.trScratch.hops[:0]
	gaps := s.trScratch.gaps[:0] // gaps[i]: an unresponsive hop preceded hops[i]
	gap := false
	for _, h := range tr.Hops {
		if !h.Responsive {
			gap = true
			continue
		}
		inf, ok := s.resolve(h.Addr)
		if !ok {
			gap = true
			continue
		}
		hops = append(hops, hopInfo{inf.AS, inf.Metro, inf.IXP})
		gaps = append(gaps, gap)
		gap = false
		s.coverProbe(pk, inf.AS, inf.Metro)
	}
	s.trScratch.hops, s.trScratch.gaps = hops, gaps

	var findings []Finding

	// Collapse to AS-level segments while noting crossings between
	// consecutive responsive hops.
	segs := s.trScratch.segs[:0]
	for i, h := range hops {
		if len(segs) > 0 && segs[len(segs)-1].as == h.as {
			continue
		}
		segs = append(segs, traceSeg{as: h.as, metro: h.metro, adjacent: !gaps[i]})
	}
	s.trScratch.segs = segs

	// Direct crossings: adjacent segments with no gap between them.
	for i := 1; i < len(segs); i++ {
		if !segs[i].adjacent {
			continue
		}
		x, y := segs[i-1].as, segs[i].as
		pr := asgraph.MakePair(x, y)
		// Geolocate the crossing: the ingress hop's metro (IXP prefixes
		// have already pinned IXP crossings to the IXP metro during
		// resolution).
		m := segs[i].metro
		s.addDirect(pr, m)
		findings = append(findings, Finding{Pair: pr, Metro: m, Direct: true})
	}

	// Transit patterns: x → t → y where t is a provider of x or of y
	// according to the public relationship data, with no gaps.
	for i := 2; i < len(segs); i++ {
		if !segs[i].adjacent || !segs[i-1].adjacent {
			continue
		}
		x, t, y := segs[i-2].as, segs[i-1].as, segs[i].as
		if x == y {
			continue
		}
		if !s.g.HasProvider(x, t) && !s.g.HasProvider(y, t) {
			continue
		}
		pr := asgraph.MakePair(x, y)
		m := segs[i-1].metro // where the flow entered the transit
		s.addTransit(pr, transitObs{metro: int32(m), near: int32(x), probe: pk})
		findings = append(findings, Finding{Pair: pr, Metro: m, Direct: false})
	}
	return findings
}

// coverProbe records one probe-coverage fact and opens any well-positioned
// gates waiting on it: the pairs whose transit observations just became
// licensed are appended to the dirty log so delta-refreshed estimates
// re-derive them.
func (s *Store) coverProbe(pk probeKey, as, metro int) {
	k := seenKey{pk.as, pk.metro, int32(as), int32(metro)}
	if s.probeSeen[k] {
		return
	}
	s.probeSeen[k] = true // probes group already owned by AddTrace
	if len(s.gate[k]) > 0 {
		s.ownIndex()
		s.dirty = appendClamped(s.dirty, s.gate[k]...)
		delete(s.gate, k)
	}
}

// addDirect records a direct crossing for pair pr at metro m, maintaining
// the conflict index and the dirty log.
func (s *Store) addDirect(pr asgraph.Pair, m int) {
	row := s.direct[pr]
	pos, ok := searchMetros(row, int32(m))
	if ok {
		if s.directEpoch[pr][pos] == s.epoch {
			return // already known this epoch: evidence unchanged
		}
		// Re-observation in a later epoch re-stamps the record (restoring
		// full weight if it had gone stale) — an evidence input change,
		// so it is logged like any other.
		s.ownDirect()
		s.directEpoch[pr][pos] = s.epoch
		s.markEpoch(pr)
		s.dirty = appendClamped(s.dirty, pr)
		return
	}
	s.ownDirect()
	row = s.direct[pr]
	row = append(row, 0)
	copy(row[pos+1:], row[pos:])
	row[pos] = int32(m)
	s.direct[pr] = row
	erow := s.directEpoch[pr]
	erow = append(erow, 0)
	copy(erow[pos+1:], erow[pos:])
	erow[pos] = s.epoch
	s.directEpoch[pr] = erow
	s.markEpoch(pr)
	// A new direct metro can create (or tighten) a contradiction with any
	// existing transit observation of the pair.
	if tl := s.transit[pr]; len(tl) > 0 {
		best := asgraph.NumGeoScopes
		for _, to := range tl {
			if sc := s.g.ScopeOfMetros(m, int(to.metro)); sc < best {
				best = sc
			}
		}
		s.noteConflict(pr, best)
	}
	s.dirty = appendClamped(s.dirty, pr)
}

// addTransit records one transit observation, maintaining the conflict
// index, the well-positioned gate index and the dirty log.
func (s *Store) addTransit(pr asgraph.Pair, to transitObs) {
	s.ownTransit()
	to.epoch = s.epoch
	s.transit[pr] = append(s.transit[pr], to)
	s.markEpoch(pr)
	if dm := s.direct[pr]; len(dm) > 0 {
		best := asgraph.NumGeoScopes
		for _, m := range dm {
			if sc := s.g.ScopeOfMetros(int(m), int(to.metro)); sc < best {
				best = sc
			}
		}
		s.noteConflict(pr, best)
	}
	// If the observing probe lacks the coverage that licenses reading this
	// detour as non-link evidence, park the pair under the gate so the
	// coverage's arrival dirties it. Gates only ever open: probeTraces is
	// already positive for this probe (its own trace got us here), so the
	// well-positioned test can only flip false → true.
	k := seenKey{to.probe.as, to.probe.metro, to.near, to.metro}
	if !s.probeSeen[k] {
		s.ownIndex()
		if !containsPair(s.gate[k], pr) {
			s.gate[k] = append(s.gate[k], pr)
		}
	}
	s.dirty = appendClamped(s.dirty, pr)
}

// searchMetros returns the position of m in the sorted metro list (or its
// insertion point) and whether it is present.
func searchMetros(row []int32, m int32) (int, bool) {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < m {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(row) && row[lo] == m
}

func containsPair(list []asgraph.Pair, pr asgraph.Pair) bool {
	for _, p := range list {
		if p == pr {
			return true
		}
	}
	return false
}

// DirectMetros returns the metros where a direct crossing between the pair
// has been observed (nil if none).
func (s *Store) DirectMetros(a, b int) []int {
	row := s.direct[asgraph.MakePair(a, b)]
	if row == nil {
		return nil
	}
	out := make([]int, len(row))
	for i, m := range row {
		out[i] = int(m) // rows are kept sorted by addDirect
	}
	return out
}

// WellPositioned reports whether the probe can judge links of AS i at
// metro m: it has traversed an interface of i at m, or has issued no
// traceroute at all (§3.4).
func (s *Store) WellPositioned(vpAS, vpMetro, i, m int) bool {
	return s.wellPositioned(probeKey{int32(vpAS), int32(vpMetro)}, int32(i), int32(m))
}

// wellPositioned is WellPositioned on the packed record types — the
// estimate hot loop reads transit records directly, so it skips the
// int round-trip.
func (s *Store) wellPositioned(pk probeKey, i, m int32) bool {
	if s.probeTraces[pk] == 0 {
		return true
	}
	return s.probeSeen[seenKey{pk.as, pk.metro, i, m}]
}
