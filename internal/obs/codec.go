package obs

// Binary evidence codec. EncodeEvidence serializes everything a Store has
// learned (the append-only evidence records, derived indices and logs) into
// a self-delimiting byte string; DecodeEvidence rebuilds an equivalent
// store over the same graph. The encoding is deterministic — map sections
// are emitted in sorted key order — so two equivalent stores encode to
// identical bytes and re-encoding a decoded store is byte-stable. The
// serving daemon's snapshot artifact (internal/api/snapshot) embeds this
// payload; framing, versioning and checksums live there, not here.
//
// The per-scope consistency cache is deliberately not encoded: it mutates
// on read and is rebuilt from minConflict on demand.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"metascritic/internal/asgraph"
	"metascritic/internal/ipmap"
)

// ErrBadEvidence is wrapped by every DecodeEvidence failure: truncated
// input, counts that exceed the remaining bytes, unsorted keys, or values
// outside their domain.
var ErrBadEvidence = errors.New("obs: malformed evidence")

// EncodeEvidence serializes the store's full evidence state.
func (s *Store) EncodeEvidence() []byte {
	var b []byte
	u := func(v int) { b = binary.AppendUvarint(b, uint64(v)) }
	pair := func(p asgraph.Pair) { u(p.A); u(p.B) }

	// direct: sorted pairs, each with its (already sorted) metro list and
	// the parallel epoch stamps.
	dk := sortedPairs(s.direct)
	u(len(dk))
	for _, p := range dk {
		pair(p)
		row := s.direct[p]
		u(len(row))
		for _, m := range row {
			u(int(m))
		}
		for _, e := range s.directEpoch[p] {
			u(int(e))
		}
	}

	// transit: sorted pairs, observations in arrival order.
	tk := sortedPairs(s.transit)
	u(len(tk))
	for _, p := range tk {
		pair(p)
		row := s.transit[p]
		u(len(row))
		for _, to := range row {
			u(int(to.metro))
			u(int(to.near))
			u(int(to.probe.as))
			u(int(to.probe.metro))
			u(int(to.epoch))
		}
	}

	// probeSeen: sorted coverage facts (the value is always true).
	sk := make([]seenKey, 0, len(s.probeSeen))
	for k := range s.probeSeen {
		sk = append(sk, k)
	}
	sortSeenKeys(sk)
	u(len(sk))
	for _, k := range sk {
		u(int(k.vpAS))
		u(int(k.vpMetro))
		u(int(k.as))
		u(int(k.metro))
	}

	// probeTraces: sorted probes with their trace counts.
	pk := make([]probeKey, 0, len(s.probeTraces))
	for k := range s.probeTraces {
		pk = append(pk, k)
	}
	sort.Slice(pk, func(i, j int) bool {
		if pk[i].as != pk[j].as {
			return pk[i].as < pk[j].as
		}
		return pk[i].metro < pk[j].metro
	})
	u(len(pk))
	for _, k := range pk {
		u(int(k.as))
		u(int(k.metro))
		u(s.probeTraces[k])
	}

	// gate: sorted keys, parked pairs in arrival order (order feeds the
	// dirty log when a gate opens, so it is state, not presentation).
	gk := make([]seenKey, 0, len(s.gate))
	for k := range s.gate {
		gk = append(gk, k)
	}
	sortSeenKeys(gk)
	u(len(gk))
	for _, k := range gk {
		u(int(k.vpAS))
		u(int(k.vpMetro))
		u(int(k.as))
		u(int(k.metro))
		row := s.gate[k]
		u(len(row))
		for _, p := range row {
			pair(p)
		}
	}

	// minConflict: sorted pairs with their tightest contradiction scope.
	ck := sortedPairs(s.minConflict)
	u(len(ck))
	for _, p := range ck {
		pair(p)
		u(int(s.minConflict[p]))
	}

	// Evidence logs, in order (estimate watermarks index into them).
	u(len(s.dirty))
	for _, p := range s.dirty {
		pair(p)
	}
	u(len(s.conflicts))
	for _, sc := range s.conflicts {
		u(int(sc))
	}

	// Topology epoch and the epoch log (AdvanceEpoch binary-searches it,
	// so order is state).
	u(int(s.epoch))
	u(len(s.epochLog))
	for _, mk := range s.epochLog {
		pair(mk.pair)
		u(int(mk.epoch))
	}
	return b
}

// DecodeEvidence rebuilds a store from EncodeEvidence output over the
// given graph and hop resolver. Errors wrap ErrBadEvidence.
func DecodeEvidence(g *asgraph.Graph, resolve func(ipmap.Addr) (ipmap.Info, bool), data []byte) (*Store, error) {
	s := NewStore(g, resolve)
	if err := s.LoadEvidence(data); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadEvidence fills this (empty) store from EncodeEvidence output. It is
// the restore path for callers that already hold a correctly-wired store —
// e.g. a fresh pipeline's, whose hop resolver is not reachable from
// outside the package. Errors wrap ErrBadEvidence.
func (s *Store) LoadEvidence(data []byte) error {
	if len(s.direct) != 0 || len(s.transit) != 0 || len(s.probeTraces) != 0 || len(s.dirty) != 0 {
		return fmt.Errorf("%w: LoadEvidence target store is not empty", ErrBadEvidence)
	}
	d := &evidenceDecoder{data: data}

	n := d.count("direct pairs")
	var prev asgraph.Pair
	for i := 0; i < n && d.err == nil; i++ {
		p := d.pair("direct", i, &prev)
		m := d.count("direct metros")
		row := make([]int32, m)
		for j := 0; j < m && d.err == nil; j++ {
			row[j] = int32(d.uint("direct metro"))
			if d.err == nil && j > 0 && row[j] <= row[j-1] {
				d.fail("direct metros for pair %v not strictly sorted", p)
			}
		}
		erow := make([]uint32, m)
		for j := 0; j < m && d.err == nil; j++ {
			erow[j] = uint32(d.uint("direct epoch stamp"))
		}
		s.direct[p] = row
		s.directEpoch[p] = erow
	}

	n = d.count("transit pairs")
	prev = asgraph.Pair{}
	for i := 0; i < n && d.err == nil; i++ {
		p := d.pair("transit", i, &prev)
		m := d.count("transit observations")
		row := make([]transitObs, m)
		for j := 0; j < m && d.err == nil; j++ {
			row[j] = transitObs{
				metro: d.id("transit metro"),
				near:  d.id("transit near"),
				probe: probeKey{d.id("transit probe AS"), d.id("transit probe metro")},
				epoch: uint32(d.uint("transit epoch stamp")),
			}
		}
		s.transit[p] = row
	}

	n = d.count("probe coverage facts")
	var prevSeen seenKey
	for i := 0; i < n && d.err == nil; i++ {
		k := d.seenKey("coverage", i, &prevSeen)
		s.probeSeen[k] = true
	}

	n = d.count("probes")
	prevProbe := probeKey{-1, -1}
	for i := 0; i < n && d.err == nil; i++ {
		k := probeKey{d.id("probe AS"), d.id("probe metro")}
		if d.err == nil && i > 0 && !probeLess(prevProbe, k) {
			d.fail("probes not strictly sorted at %d", i)
		}
		prevProbe = k
		c := d.uint("probe trace count")
		if d.err == nil && c == 0 {
			d.fail("probe %v has zero trace count", k)
		}
		s.probeTraces[k] = c
	}

	n = d.count("gates")
	prevSeen = seenKey{}
	for i := 0; i < n && d.err == nil; i++ {
		k := d.seenKey("gate", i, &prevSeen)
		m := d.count("gated pairs")
		if d.err == nil && m == 0 {
			d.fail("gate %v parks no pairs", k)
		}
		row := make([]asgraph.Pair, m)
		for j := 0; j < m && d.err == nil; j++ {
			row[j] = d.rawPair("gated pair")
		}
		s.gate[k] = row
	}

	n = d.count("conflict pairs")
	prev = asgraph.Pair{}
	for i := 0; i < n && d.err == nil; i++ {
		p := d.pair("conflict", i, &prev)
		sc := d.uint("conflict scope")
		if d.err == nil && sc >= int(asgraph.NumGeoScopes) {
			d.fail("conflict scope %d out of range", sc)
		}
		s.minConflict[p] = asgraph.GeoScope(sc)
	}

	n = d.count("dirty log entries")
	s.dirty = make([]asgraph.Pair, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		s.dirty = append(s.dirty, d.rawPair("dirty pair"))
	}
	n = d.count("conflict log entries")
	s.conflicts = make([]asgraph.GeoScope, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		sc := d.uint("conflict log scope")
		if d.err == nil && sc >= int(asgraph.NumGeoScopes) {
			d.fail("conflict log scope %d out of range", sc)
		}
		s.conflicts = append(s.conflicts, asgraph.GeoScope(sc))
	}

	s.epoch = uint32(d.uint("store epoch"))
	n = d.count("epoch log entries")
	s.epochLog = make([]epochMark, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		mk := epochMark{pair: d.rawPair("epoch mark"), epoch: uint32(d.uint("epoch mark epoch"))}
		if d.err == nil && mk.epoch > s.epoch {
			d.fail("epoch mark %d from the future (store epoch %d)", mk.epoch, s.epoch)
		}
		if d.err == nil && i > 0 && mk.epoch < s.epochLog[i-1].epoch {
			d.fail("epoch log not nondecreasing at %d", i)
		}
		s.epochLog = append(s.epochLog, mk)
	}
	if d.err == nil {
		for p, erow := range s.directEpoch {
			for _, e := range erow {
				if e > s.epoch {
					d.fail("direct stamp for pair %v from the future", p)
				}
			}
		}
		for p, row := range s.transit {
			for _, to := range row {
				if to.epoch > s.epoch {
					d.fail("transit stamp for pair %v from the future", p)
				}
			}
		}
	}

	if d.err == nil && len(d.data) > 0 {
		d.fail("%d trailing bytes", len(d.data))
	}
	return d.err
}

// evidenceDecoder consumes uvarints with sticky error handling.
type evidenceDecoder struct {
	data []byte
	err  error
}

func (d *evidenceDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrBadEvidence, fmt.Sprintf(format, args...))
	}
}

func (d *evidenceDecoder) uint(what string) int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.fail("truncated %s", what)
		return 0
	}
	if n > 1 && d.data[n-1] == 0 {
		// Reject padded encodings so canonical form is the only accepted
		// form (decode→encode is then a fixed point on accepted input).
		d.fail("non-minimal varint for %s", what)
		return 0
	}
	if v > uint64(int(^uint(0)>>1)) {
		d.fail("%s overflows int", what)
		return 0
	}
	d.data = d.data[n:]
	return int(v)
}

// id reads an AS/metro index into the hot records' int32 domain,
// rejecting values a packed record could not hold.
func (d *evidenceDecoder) id(what string) int32 {
	v := d.uint(what)
	if d.err == nil && v > 1<<31-1 {
		d.fail("%s %d overflows the packed int32 record", what, v)
		return 0
	}
	return int32(v)
}

// count reads a collection length, rejecting counts that could not fit in
// the remaining input (every element costs at least one byte) before any
// allocation happens.
func (d *evidenceDecoder) count(what string) int {
	n := d.uint(what + " count")
	if d.err == nil && n > len(d.data) {
		d.fail("%s count %d exceeds remaining input", what, n)
		return 0
	}
	return n
}

// pair reads a canonical sorted-section pair: A ≤ B, strictly increasing
// across the section.
func (d *evidenceDecoder) pair(section string, i int, prev *asgraph.Pair) asgraph.Pair {
	p := d.rawPair(section + " pair")
	if d.err != nil {
		return p
	}
	if p.A > p.B {
		d.fail("%s pair %v not canonical", section, p)
		return p
	}
	if i > 0 && !pairLess(*prev, p) {
		d.fail("%s pairs not strictly sorted at %d", section, i)
		return p
	}
	*prev = p
	return p
}

// rawPair reads a pair with no ordering constraint (log sections).
func (d *evidenceDecoder) rawPair(what string) asgraph.Pair {
	return asgraph.Pair{A: d.uint(what + " A"), B: d.uint(what + " B")}
}

func (d *evidenceDecoder) seenKey(section string, i int, prev *seenKey) seenKey {
	k := seenKey{
		vpAS:    d.id(section + " vpAS"),
		vpMetro: d.id(section + " vpMetro"),
		as:      d.id(section + " as"),
		metro:   d.id(section + " metro"),
	}
	if d.err == nil && i > 0 && !seenLess(*prev, k) {
		d.fail("%s keys not strictly sorted at %d", section, i)
		return k
	}
	*prev = k
	return k
}

func sortedPairs[V any](m map[asgraph.Pair]V) []asgraph.Pair {
	ps := make([]asgraph.Pair, 0, len(m))
	for p := range m {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return pairLess(ps[i], ps[j]) })
	return ps
}

func pairLess(a, b asgraph.Pair) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

func probeLess(a, b probeKey) bool {
	if a.as != b.as {
		return a.as < b.as
	}
	return a.metro < b.metro
}

func sortSeenKeys(ks []seenKey) {
	sort.Slice(ks, func(i, j int) bool { return seenLess(ks[i], ks[j]) })
}

func seenLess(a, b seenKey) bool {
	if a.vpAS != b.vpAS {
		return a.vpAS < b.vpAS
	}
	if a.vpMetro != b.vpMetro {
		return a.vpMetro < b.vpMetro
	}
	if a.as != b.as {
		return a.as < b.as
	}
	return a.metro < b.metro
}
