package obs

// appendClamped appends items to a long-lived append-only log. Once the
// backing array is large, growth is clamped to +25% instead of append's
// doubling: the dirty and epoch logs live for the whole pipeline run and
// at Internet scale reach millions of entries, where a 2x overshoot is
// pure resident waste held until the store dies. Below the threshold the
// behavior is exactly append's.
func appendClamped[T any](log []T, items ...T) []T {
	const clampLen = 1 << 15
	if len(log)+len(items) > cap(log) && cap(log) >= clampLen {
		newCap := cap(log) + cap(log)/4
		for newCap < len(log)+len(items) {
			newCap += newCap / 4
		}
		grown := make([]T, len(log), newCap)
		copy(grown, log)
		log = grown
	}
	return append(log, items...)
}
