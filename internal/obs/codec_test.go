package obs

// Evidence codec tests: round-trip fidelity (a decoded store behaves
// identically, including gate state and estimate watermark logs),
// deterministic byte-stable encoding, typed rejection of truncated or
// corrupted input, and a fuzz harness for the decode→encode fixed point.

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"metascritic/internal/asgraph"
)

// populatedStore drives n random traces through a fresh store.
func populatedStore(seed int64, n int) *Store {
	s := NewStore(testGraph(), fakeResolve)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		s.AddTrace(randTrace(rng))
	}
	return s
}

func TestEvidenceCodecRoundTrip(t *testing.T) {
	members := []int{0, 1, 2, 3, 4, 5}
	for seed := int64(1); seed <= 6; seed++ {
		s := populatedStore(seed, 60)
		enc := s.EncodeEvidence()
		dec, err := DecodeEvidence(testGraph(), fakeResolve, enc)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !bytes.Equal(dec.EncodeEvidence(), enc) {
			t.Fatalf("seed %d: re-encoding the decoded store is not byte-identical", seed)
		}
		for _, pol := range allPolicies {
			for m := 0; m < 4; m++ {
				requireSameEstimate(t, "decoded estimate",
					dec.Estimate(m, members, pol), s.Estimate(m, members, pol))
			}
		}
		// The gate index must survive: feeding both stores the same
		// follow-up traces (which can open parked gates) must keep them
		// equivalent.
		rng := rand.New(rand.NewSource(seed + 1000))
		for i := 0; i < 40; i++ {
			tr := randTrace(rng)
			s.AddTrace(tr)
			dec.AddTrace(tr)
		}
		if !bytes.Equal(dec.EncodeEvidence(), s.EncodeEvidence()) {
			t.Fatalf("seed %d: stores diverged after post-decode traces", seed)
		}
		for _, sc := range []asgraph.GeoScope{asgraph.SameMetro, asgraph.Elsewhere} {
			a, b := s.ConsistentASes(sc), dec.ConsistentASes(sc)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d: ConsistentASes(%v) diverged at AS %d", seed, sc, i)
				}
			}
		}
	}
}

func TestEvidenceCodecDeterministic(t *testing.T) {
	s := populatedStore(42, 80)
	a, b := s.EncodeEvidence(), s.EncodeEvidence()
	if !bytes.Equal(a, b) {
		t.Fatalf("two encodings of one store differ")
	}
	// A copy-on-write clone shares (then re-hashes) the same maps; its
	// encoding must still be identical.
	if !bytes.Equal(s.Clone().EncodeEvidence(), a) {
		t.Fatalf("clone encodes differently from its base")
	}
	// 8 zero section counts + the zero store epoch + the zero epoch-log
	// count.
	if empty := NewStore(testGraph(), fakeResolve).EncodeEvidence(); len(empty) != 10 {
		t.Fatalf("empty store should encode to 10 zero bytes, got %d bytes", len(empty))
	}
}

func TestDecodeEvidenceRejectsTruncation(t *testing.T) {
	enc := populatedStore(7, 50).EncodeEvidence()
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeEvidence(testGraph(), fakeResolve, enc[:n]); !errors.Is(err, ErrBadEvidence) {
			t.Fatalf("truncation to %d/%d bytes: got %v, want ErrBadEvidence", n, len(enc), err)
		}
	}
	// Trailing garbage is rejected too.
	if _, err := DecodeEvidence(testGraph(), fakeResolve, append(append([]byte{}, enc...), 0x00)); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("trailing byte: got %v, want ErrBadEvidence", err)
	}
}

func TestDecodeEvidenceRejectsCorruption(t *testing.T) {
	enc := populatedStore(9, 50).EncodeEvidence()
	rejected := 0
	for i := range enc {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte{}, enc...)
			mut[i] ^= flip
			dec, err := DecodeEvidence(testGraph(), fakeResolve, mut)
			if err != nil {
				if !errors.Is(err, ErrBadEvidence) {
					t.Fatalf("flip %#x at %d: error %v does not wrap ErrBadEvidence", flip, i, err)
				}
				rejected++
				continue
			}
			// A flip the validators cannot catch must at least decode to a
			// store whose encoding is self-consistent.
			if !bytes.Equal(dec.EncodeEvidence(), mut) {
				t.Fatalf("flip %#x at %d: accepted input is not a fixed point", flip, i)
			}
		}
	}
	if rejected == 0 {
		t.Fatalf("no corruption was rejected at all")
	}
}

// FuzzDecodeEvidence pins two properties on arbitrary input: decode never
// panics, and any accepted input is a fixed point of decode→encode (the
// validators enforce canonical form, so acceptance implies stability).
func FuzzDecodeEvidence(f *testing.F) {
	f.Add([]byte{})
	f.Add(populatedStore(3, 30).EncodeEvidence())
	f.Add([]byte{0x01, 0x00, 0x00, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeEvidence(testGraph(), fakeResolve, data)
		if err != nil {
			if !errors.Is(err, ErrBadEvidence) {
				t.Fatalf("error %v does not wrap ErrBadEvidence", err)
			}
			return
		}
		if !bytes.Equal(dec.EncodeEvidence(), data) {
			t.Fatalf("accepted input is not a decode→encode fixed point")
		}
	})
}
