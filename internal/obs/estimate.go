package obs

// Estimate assembly and delta maintenance. EstimateScoped builds E_m from
// scratch; Store.Refresh brings a previously built Estimate up to date by
// re-deriving only the pairs appended to the dirty log since the
// estimate's watermark. Both paths go through the same per-pair evidence
// derivation (applyPair), and per-pair re-derivation is idempotent and
// order-independent, so a refreshed estimate is byte-identical to a
// from-scratch rebuild — pinned by the equivalence property/fuzz tests.

import (
	"metascritic/internal/asgraph"
	"metascritic/internal/mat"
)

// NegativePolicy selects which conditions gate non-link evidence; the E.7
// ablation compares these.
type NegativePolicy int

// Non-link inference policies.
const (
	// NegFull uses every transit observation (no conditions).
	NegFull NegativePolicy = iota
	// NegWellPositioned requires a well-positioned probe but ignores
	// routing consistency.
	NegWellPositioned
	// NegMetascritic requires both a well-positioned probe and routing
	// consistency at the evidence scope (the paper's method).
	NegMetascritic
	// NegNone never infers non-existence from measurements.
	NegNone
)

// Estimate is the estimated connectivity matrix E_m for one metro.
//
// An Estimate built by Estimate/EstimateScoped stays attached to its
// source Store: Store.Refresh updates it in place from the evidence
// ingested since it was built (or last refreshed). The E and Mask
// pointers are stable across Refresh, so consumers holding them (the
// rank loop) see updates without rewiring.
type Estimate struct {
	Metro   int
	Members []int
	Index   map[int]int
	// E holds evidence values in [-1, 1]; only entries in Mask are
	// meaningful.
	E    *mat.Matrix
	Mask *mat.Mask

	// Delta-maintenance bookkeeping: the store and parameters this
	// estimate was derived from, and the log watermarks it has consumed.
	src       *storeIdent
	policy    NegativePolicy
	maxScope  asgraph.GeoScope
	memberSet map[int]bool
	dirtyPos  int // s.dirty[:dirtyPos] is folded in
	confPos   int // s.conflicts[:confPos] is folded in
}

// Value returns the evidence value for graph-level ASes a and b, and
// whether it is observed.
func (e *Estimate) Value(a, b int) (float64, bool) {
	i, ok1 := e.Index[a]
	j, ok2 := e.Index[b]
	if !ok1 || !ok2 || !e.Mask.Has(i, j) {
		return 0, false
	}
	return e.E.At(i, j), true
}

// Set records an evidence value (keeping E symmetric).
func (e *Estimate) Set(i, j int, v float64) {
	e.E.Set(i, j, v)
	e.E.Set(j, i, v)
	e.Mask.Set(i, j)
}

// clear removes a pair's entry (keeping E symmetric).
func (e *Estimate) clear(i, j int) {
	e.E.Set(i, j, 0)
	e.E.Set(j, i, 0)
	e.Mask.Unset(i, j)
}

// RowFill returns the number of observed entries for each member row.
func (e *Estimate) RowFill() []int {
	return e.AppendRowFill(nil)
}

// AppendRowFill is RowFill with caller-provided storage: it overwrites
// buf (growing it as needed) with the per-row counts and returns it, so
// per-batch callers reuse one buffer.
func (e *Estimate) AppendRowFill(buf []int) []int {
	buf = buf[:0]
	for i := range e.Members {
		buf = append(buf, e.Mask.RowCount(i))
	}
	return buf
}

// PairCounts returns, per member AS, the number of positive and negative
// observed entries in an estimate — the dominant Shapley features (# of
// existing / non-existing links, Fig. 13).
func (e *Estimate) PairCounts() (posCount, negCount []int) {
	n := len(e.Members)
	posCount = make([]int, n)
	negCount = make([]int, n)
	for i := 0; i < n; i++ {
		for _, j := range e.Mask.RowView(i) {
			if e.E.At(i, int(j)) > 0 {
				posCount[i]++
			} else {
				negCount[i]++
			}
		}
	}
	return posCount, negCount
}

// Estimate assembles E_m for the target metro over the given member ASes,
// applying transferability weights and the configured non-link policy.
func (s *Store) Estimate(metro int, members []int, policy NegativePolicy) *Estimate {
	return s.EstimateScoped(metro, members, policy, asgraph.Elsewhere)
}

// EstimateScoped is Estimate restricted to observations within maxScope of
// the target metro: SameMetro disables geographic transferability entirely
// (the Appx. E.4 ablation), Elsewhere enables the full ±1/±0.7/±0.4/±0.1
// weighting.
func (s *Store) EstimateScoped(metro int, members []int, policy NegativePolicy, maxScope asgraph.GeoScope) *Estimate {
	est := &Estimate{
		Metro:    metro,
		Members:  members,
		Index:    make(map[int]int, len(members)),
		E:        mat.New(len(members), len(members)),
		Mask:     mat.NewMask(len(members)),
		src:      s.ident,
		policy:   policy,
		maxScope: maxScope,
	}
	for i, as := range members {
		est.Index[as] = i
	}
	est.memberSet = make(map[int]bool, len(members))
	for _, as := range members {
		est.memberSet[as] = true
	}
	s.rebuildInto(est)
	return est
}

// rebuildInto re-derives every pair of the estimate from the store's full
// evidence, in place (E and Mask objects are reused), and stamps the
// current log watermarks.
func (s *Store) rebuildInto(est *Estimate) {
	for i := range est.E.Data {
		est.E.Data[i] = 0
	}
	est.Mask.Reset()
	for pr := range s.direct {
		s.applyPair(est, pr)
	}
	for pr := range s.transit {
		if len(s.direct[pr]) > 0 {
			continue // already derived above
		}
		s.applyPair(est, pr)
	}
	est.dirtyPos = len(s.dirty)
	est.confPos = len(s.conflicts)
}

// Refresh brings an estimate up to date with the store's current evidence,
// in place, and returns it. Only the pairs logged dirty since the
// estimate's watermark are re-derived; a NegMetascritic estimate falls
// back to a full in-place rebuild when a routing contradiction within its
// scope was logged (consistency-set changes can flip evidence of pairs no
// trace touched). An estimate built from a different store (for example
// before a Clone on the other side of the split) is rebuilt from scratch.
//
// Refresh(nil) returns nil, so `est = store.Refresh(est)` is a safe
// first-round idiom.
func (s *Store) Refresh(est *Estimate) *Estimate {
	if est == nil {
		return nil
	}
	if est.src != s.ident {
		return s.EstimateScoped(est.Metro, est.Members, est.policy, est.maxScope)
	}
	if est.policy == NegMetascritic {
		for _, sc := range s.conflicts[est.confPos:] {
			if sc <= est.maxScope {
				s.rebuildInto(est)
				return est
			}
		}
	}
	est.confPos = len(s.conflicts)
	if est.dirtyPos == len(s.dirty) {
		return est
	}
	var seen map[asgraph.Pair]bool
	for _, pr := range s.dirty[est.dirtyPos:] {
		if !est.memberSet[pr.A] || !est.memberSet[pr.B] {
			continue
		}
		if seen[pr] {
			continue
		}
		if seen == nil {
			seen = map[asgraph.Pair]bool{}
		}
		seen[pr] = true
		s.applyPair(est, pr)
	}
	est.dirtyPos = len(s.dirty)
	return est
}

// applyPair re-derives one pair's merged evidence value from the store's
// current records and writes it into the estimate, clearing the entry if
// no evidence survives the scope/policy gates. Idempotent: the result
// depends only on the store state, not on prior estimate content.
func (s *Store) applyPair(est *Estimate, pr asgraph.Pair) {
	if !est.memberSet[pr.A] || !est.memberSet[pr.B] {
		return
	}
	pos := s.posEvidence(pr, est.Metro, est.maxScope)
	neg := s.negEvidence(pr, est.Metro, est.policy, est.maxScope)
	// Merge: keep the larger magnitude; positive wins ties.
	v := pos
	if neg < 0 && (pos == 0 || -neg > pos) {
		v = neg
	}
	i, j := est.Index[pr.A], est.Index[pr.B]
	if v == 0 {
		est.clear(i, j)
		return
	}
	est.Set(i, j, v)
}

// posEvidence is the strongest transferability weight among the pair's
// direct crossings within maxScope of the target metro (0 if none).
// Crossings last observed more than staleWindow epochs ago may be from
// links that no longer exist, so their weight is demoted (epoch.go).
func (s *Store) posEvidence(pr asgraph.Pair, metro int, maxScope asgraph.GeoScope) float64 {
	best := 0.0
	stamps := s.directEpoch[pr]
	for i, m := range s.direct[pr] {
		sc := s.g.ScopeOfMetros(int(m), metro)
		if sc > maxScope {
			continue
		}
		w := TransferWeight(sc)
		if s.stale(stamps[i]) {
			w *= staleDemotion
		}
		if w > best {
			best = w
		}
	}
	return best
}

// negEvidence is the strongest (most negative) non-link evidence among the
// pair's transit observations that pass the policy's gates (0 if none).
func (s *Store) negEvidence(pr asgraph.Pair, metro int, policy NegativePolicy, maxScope asgraph.GeoScope) float64 {
	if policy == NegNone {
		return 0
	}
	best := 0.0 // strongest magnitude
	for _, to := range s.transit[pr] {
		sc := s.g.ScopeOfMetros(int(to.metro), metro)
		if sc > maxScope {
			continue
		}
		w := TransferWeight(sc)
		if s.stale(to.epoch) {
			w *= staleDemotion // pre-churn detour: demoted like stale links
		}
		if w <= best {
			continue
		}
		// The probe must be well-positioned for the near-side AS at the
		// metro where the transit crossing was observed (§3.4): that is
		// what licenses reading the detour as evidence of a missing
		// direct link there. NegFull skips the gate (E.7 ablation).
		if policy == NegWellPositioned || policy == NegMetascritic {
			if !s.wellPositioned(to.probe, to.near, to.metro) {
				continue
			}
		}
		if policy == NegMetascritic {
			c := s.ConsistentASes(sc)
			if !c[pr.A] || !c[pr.B] {
				continue
			}
		}
		best = w
	}
	return -best
}
