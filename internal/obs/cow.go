package obs

import "metascritic/internal/asgraph"

// Copy-on-write snapshotting. Clone hands out an O(1) handle sharing every
// evidence structure with its parent; the first mutation of a structure
// group on either store lazily copies just that group. Structure groups:
//
//	cowDirect  — direct + directEpoch (maps of parallel metro/stamp rows)
//	cowTransit — transit (map of observation slices)
//	cowProbes  — probeSeen + probeTraces
//	cowIndex   — gate + minConflict (derived indices)
//
// The dirty/conflicts/epochLog logs need no group: Clone clamps their
// slice headers to [:len:len] on both stores, so any post-clone append
// reallocates and the stores diverge naturally (the shared prefix is
// immutable).
//
// Sharing is symmetric: Clone marks every group shared on BOTH stores, so
// whichever store mutates first copies and the other keeps the (now
// effectively frozen-for-it) original. If both mutate, both copy — at
// worst the cost of the old deep-copy Clone, paid only for groups
// actually touched. The per-scope consistency cache is never shared: it
// mutates on read and is cheap to rebuild from minConflict.

// storeIdent is a store identity token (see Store.ident). The padding
// byte keeps the struct non-zero-size so every allocation gets a distinct
// address — &struct{}{} values can share the runtime's zero base and
// would defeat identity comparison.
type storeIdent struct{ _ byte }

type cowGroup uint8

const (
	cowDirect cowGroup = 1 << iota
	cowTransit
	cowProbes
	cowIndex

	cowAll = cowDirect | cowTransit | cowProbes | cowIndex
)

// Clone returns an O(1) copy-on-write snapshot: base and snapshot share
// all evidence until either mutates. Clone may be called concurrently
// with other Clones of (and reads from) the same store, but not with its
// mutations. The snapshot starts with empty consistency caches and a
// fresh (unshared) view of the evidence logs.
func (s *Store) Clone() *Store {
	s.cowMu.Lock()
	defer s.cowMu.Unlock()
	// Freeze the log prefixes: clamping capacity to length forces any
	// later append — on either store — to reallocate rather than scribble
	// into the shared backing array.
	s.dirty = s.dirty[:len(s.dirty):len(s.dirty)]
	s.conflicts = s.conflicts[:len(s.conflicts):len(s.conflicts)]
	s.epochLog = s.epochLog[:len(s.epochLog):len(s.epochLog)]
	s.shared = cowAll
	return &Store{
		g:           s.g,
		resolve:     s.resolve,
		ident:       &storeIdent{},
		shared:      cowAll,
		direct:      s.direct,
		directEpoch: s.directEpoch,
		transit:     s.transit,
		probeSeen:   s.probeSeen,
		probeTraces: s.probeTraces,
		gate:        s.gate,
		minConflict: s.minConflict,
		dirty:       s.dirty,
		conflicts:   s.conflicts,
		epoch:       s.epoch,
		epochLog:    s.epochLog,
	}
}

// sharedGroup reports whether the group is still shared, clearing the flag
// (the caller is about to take ownership by copying).
func (s *Store) sharedGroup(g cowGroup) bool {
	if s.shared&g == 0 {
		return false
	}
	s.cowMu.Lock()
	shared := s.shared&g != 0
	s.shared &^= g
	s.cowMu.Unlock()
	return shared
}

// ownDirect ensures s.direct is exclusively owned, copying it if shared.
// Slice values are clamped so a later in-place append on one store cannot
// alias the other's rows.
func (s *Store) ownDirect() {
	if !s.sharedGroup(cowDirect) {
		return
	}
	m := make(map[asgraph.Pair][]int32, len(s.direct))
	for k, v := range s.direct {
		m[k] = v[:len(v):len(v)]
	}
	s.direct = m
	// Epoch stamps travel with the direct rows — and a re-stamp mutates a
	// row in place (no append to force reallocation), so the rows must be
	// deep-copied, not just clamped.
	em := make(map[asgraph.Pair][]uint32, len(s.directEpoch))
	for k, v := range s.directEpoch {
		em[k] = append([]uint32(nil), v...)
	}
	s.directEpoch = em
}

func (s *Store) ownTransit() {
	if !s.sharedGroup(cowTransit) {
		return
	}
	m := make(map[asgraph.Pair][]transitObs, len(s.transit))
	for k, v := range s.transit {
		m[k] = v[:len(v):len(v)]
	}
	s.transit = m
}

func (s *Store) ownProbes() {
	if !s.sharedGroup(cowProbes) {
		return
	}
	seen := make(map[seenKey]bool, len(s.probeSeen))
	for k, v := range s.probeSeen {
		seen[k] = v
	}
	s.probeSeen = seen
	traces := make(map[probeKey]int, len(s.probeTraces))
	for k, v := range s.probeTraces {
		traces[k] = v
	}
	s.probeTraces = traces
}

func (s *Store) ownIndex() {
	if !s.sharedGroup(cowIndex) {
		return
	}
	gate := make(map[seenKey][]asgraph.Pair, len(s.gate))
	for k, v := range s.gate {
		gate[k] = v[:len(v):len(v)]
	}
	s.gate = gate
	mc := make(map[asgraph.Pair]asgraph.GeoScope, len(s.minConflict))
	for k, v := range s.minConflict {
		mc[k] = v
	}
	s.minConflict = mc
}
