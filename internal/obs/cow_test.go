package obs

// Copy-on-write snapshot tests: Clone must be O(1) allocations, and
// interleaved (or fully concurrent — exercised under -race via `make
// race-obs`) mutation of a base store and its snapshots must never leak
// evidence in either direction. Isolation is checked against reference
// stores built from scratch over each side's exact trace sequence.

import (
	"math/rand"
	"sync"
	"testing"

	"metascritic/internal/traceroute"
)

// replayStore builds a fresh store and ingests the traces in order.
func replayStore(traces []traceroute.Trace) *Store {
	s := NewStore(testGraph(), fakeResolve)
	for _, tr := range traces {
		s.AddTrace(tr)
	}
	return s
}

// requireStoresAgree fails unless the two stores produce identical
// estimates for every policy at every metro (the full observable surface
// of accumulated evidence).
func requireStoresAgree(t *testing.T, tag string, got, want *Store) {
	t.Helper()
	members := []int{0, 1, 2, 3, 4, 5}
	for _, pol := range allPolicies {
		for metro := 0; metro < 4; metro++ {
			g := got.Estimate(metro, members, pol)
			w := want.Estimate(metro, members, pol)
			requireSameEstimate(t, tag+" policy "+itoa(int(pol))+" metro "+itoa(metro), g, w)
		}
	}
}

// TestCloneAllocs pins the O(1) copy-on-write contract: Clone of a large
// store performs a constant, tiny number of allocations (the handle and
// its identity token), no matter how much evidence has accumulated.
func TestCloneAllocs(t *testing.T) {
	s := replayStore(nil)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		s.AddTrace(randTrace(rng))
	}
	var sink *Store
	if n := testing.AllocsPerRun(100, func() { sink = s.Clone() }); n > 2 {
		t.Fatalf("Clone allocated %v times per run, want <= 2 (O(1) COW handle)", n)
	}
	_ = sink
}

// TestSnapshotIsolationInterleaved interleaves mutations on a base store
// and a COW snapshot, trace by trace, and verifies both ends match
// reference stores that never shared anything.
func TestSnapshotIsolationInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	shared := make([]traceroute.Trace, 30)
	for i := range shared {
		shared[i] = randTrace(rng)
	}
	base := replayStore(shared)
	est := base.Estimate(0, []int{0, 1, 2, 3, 4, 5}, NegMetascritic)
	snap := base.Clone()

	var baseSide, snapSide []traceroute.Trace
	for i := 0; i < 40; i++ {
		tr := randTrace(rng)
		if i%2 == 0 {
			baseSide = append(baseSide, tr)
			base.AddTrace(tr)
		} else {
			snapSide = append(snapSide, tr)
			snap.AddTrace(tr)
		}
	}

	requireStoresAgree(t, "base", base, replayStore(append(shared[:len(shared):len(shared)], baseSide...)))
	requireStoresAgree(t, "snap", snap, replayStore(append(shared[:len(shared):len(shared)], snapSide...)))
	// Delta-refresh across the divergence still matches a rebuild on the
	// estimate's own store.
	base.Refresh(est)
	requireSameEstimate(t, "refreshed", est, base.Estimate(0, []int{0, 1, 2, 3, 4, 5}, NegMetascritic))
}

// TestSnapshotIsolationConcurrent mutates a base store and two snapshots
// from separate goroutines. Divergent post-clone mutation is the engine's
// usage pattern; under `make race-obs` the race detector checks that lazy
// copy-on-write never writes a structure another store still reads.
func TestSnapshotIsolationConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	shared := make([]traceroute.Trace, 25)
	for i := range shared {
		shared[i] = randTrace(rng)
	}
	base := replayStore(shared)

	// Pre-generate each side's traces so goroutines never share the RNG.
	sides := make([][]traceroute.Trace, 3)
	for i := range sides {
		sides[i] = make([]traceroute.Trace, 30)
		for k := range sides[i] {
			sides[i][k] = randTrace(rng)
		}
	}

	// Snapshots are taken concurrently with each other and with reads of
	// the base, as engine workers do.
	stores := make([]*Store, 3)
	stores[0] = base
	var cwg sync.WaitGroup
	for i := 1; i < 3; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			stores[i] = base.Clone()
		}(i)
	}
	cwg.Wait()

	var wg sync.WaitGroup
	for i, s := range stores {
		wg.Add(1)
		go func(s *Store, traces []traceroute.Trace) {
			defer wg.Done()
			for _, tr := range traces {
				s.AddTrace(tr)
			}
			// Estimates exercise the read paths (including the lazily
			// populated consistency cache) while siblings mutate.
			s.Estimate(1, []int{0, 1, 2, 3, 4, 5}, NegMetascritic)
		}(s, sides[i])
	}
	wg.Wait()

	for i, s := range stores {
		ref := replayStore(append(shared[:len(shared):len(shared)], sides[i]...))
		requireStoresAgree(t, "store "+itoa(i), s, ref)
	}
}

// TestSnapshotSharesUntilMutation sanity-checks that a clone really does
// share the evidence structures until one side mutates (the mechanism
// behind the Clone alloc budget), and that mutation splits them.
func TestSnapshotSharesUntilMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	base := replayStore(nil)
	for i := 0; i < 20; i++ {
		base.AddTrace(randTrace(rng))
	}
	snap := base.Clone()
	if base.shared != cowAll || snap.shared != cowAll {
		t.Fatalf("clone must mark every group shared on both stores: base %b snap %b", base.shared, snap.shared)
	}
	snap.AddTrace(mkTrace(3, 0, 4, [2]int{3, 0}, [2]int{4, 0}))
	if snap.shared&cowProbes != 0 {
		t.Fatalf("mutation must take ownership of the probes group")
	}
	if base.shared != cowAll {
		t.Fatalf("mutating the snapshot must leave the base's sharing intact: %b", base.shared)
	}
	if dm := base.DirectMetros(3, 4); len(dm) != 0 {
		t.Fatalf("snapshot mutation leaked into base: %v", dm)
	}
	if dm := snap.DirectMetros(3, 4); len(dm) != 1 || dm[0] != 0 {
		t.Fatalf("snapshot lost its own mutation: %v", dm)
	}
}
