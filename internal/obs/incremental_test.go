package obs

// Tests for the delta-maintained estimate path: Store.Refresh must be
// byte-identical to a from-scratch EstimateScoped for every policy and
// scope (the PR 4 equivalence contract), the unified consistency cache
// must refresh when new traces contradict it, and the no-delta Refresh
// fast path must not allocate.

import (
	"math/rand"
	"strconv"
	"testing"

	"metascritic/internal/asgraph"
	"metascritic/internal/traceroute"
)

// randTrace builds a random (but valid) trace over testGraph's 6 ASes and
// 4 metros: 2-6 hops, occasional unresponsive hops, hop metros drifting so
// crossings land at every geographic scope.
func randTrace(rng *rand.Rand) traceroute.Trace {
	vp := rng.Intn(6)
	vpMetro := rng.Intn(4)
	tr := traceroute.Trace{VPAS: vp, VPMetro: vpMetro, DstAS: rng.Intn(6), Reached: true}
	n := 2 + rng.Intn(5)
	as, metro := vp, vpMetro
	for h := 0; h < n; h++ {
		if rng.Intn(8) == 0 {
			tr.Hops = append(tr.Hops, traceroute.Hop{Responsive: false})
			continue
		}
		tr.Hops = append(tr.Hops, traceroute.Hop{Addr: fakeAddr(as, metro), Responsive: true})
		if rng.Intn(3) > 0 {
			as = rng.Intn(6)
		}
		if rng.Intn(4) == 0 {
			metro = rng.Intn(4)
		}
	}
	return tr
}

// requireSameEstimate fails unless a and b have identical E contents and
// mask rows.
func requireSameEstimate(t *testing.T, tag string, got, want *Estimate) {
	t.Helper()
	if len(got.E.Data) != len(want.E.Data) {
		t.Fatalf("%s: E size %d != %d", tag, len(got.E.Data), len(want.E.Data))
	}
	for i := range want.E.Data {
		if got.E.Data[i] != want.E.Data[i] {
			t.Fatalf("%s: E.Data[%d] = %v, want %v", tag, i, got.E.Data[i], want.E.Data[i])
		}
	}
	if gn, wn := got.Mask.Count(), want.Mask.Count(); gn != wn {
		t.Fatalf("%s: mask count %d != %d", tag, gn, wn)
	}
	for i := 0; i < got.Mask.N(); i++ {
		gr, wr := got.Mask.RowView(i), want.Mask.RowView(i)
		if len(gr) != len(wr) {
			t.Fatalf("%s: mask row %d len %d != %d", tag, i, len(gr), len(wr))
		}
		for k := range wr {
			if gr[k] != wr[k] {
				t.Fatalf("%s: mask row %d entry %d = %d, want %d", tag, i, k, gr[k], wr[k])
			}
		}
	}
}

var allPolicies = []NegativePolicy{NegFull, NegWellPositioned, NegMetascritic, NegNone}

// TestRefreshEquivalence drives random trace streams through a store while
// delta-refreshing estimates for every (policy, maxScope, metro)
// combination, comparing each against a from-scratch rebuild after every
// round.
func TestRefreshEquivalence(t *testing.T) {
	members := []int{0, 1, 2, 3, 4, 5}
	for seed := int64(1); seed <= 8; seed++ {
		g := testGraph()
		s := NewStore(g, fakeResolve)
		rng := rand.New(rand.NewSource(seed))
		metro := rng.Intn(4)

		type tracked struct {
			policy NegativePolicy
			scope  asgraph.GeoScope
			est    *Estimate
		}
		var track []*tracked
		for _, pol := range allPolicies {
			for sc := asgraph.SameMetro; sc <= asgraph.Elsewhere; sc++ {
				track = append(track, &tracked{policy: pol, scope: sc,
					est: s.EstimateScoped(metro, members, pol, sc)})
			}
		}

		for round := 0; round < 12; round++ {
			for k := 0; k < 1+rng.Intn(6); k++ {
				s.AddTrace(randTrace(rng))
			}
			for _, tr := range track {
				s.Refresh(tr.est)
				fresh := s.EstimateScoped(metro, members, tr.policy, tr.scope)
				tag := "seed " + itoa(int(seed)) + " round " + itoa(round) +
					" policy " + itoa(int(tr.policy)) + " scope " + itoa(int(tr.scope))
				requireSameEstimate(t, tag, tr.est, fresh)
			}
		}
	}
}

func itoa(v int) string { return strconv.Itoa(v) }

// TestRefreshAcrossCloneRebuilds pins the store-identity check: an
// estimate carried across a Clone split must be rebuilt against the store
// actually refreshing it, not delta-patched with the wrong log.
func TestRefreshAcrossCloneRebuilds(t *testing.T) {
	g := testGraph()
	s := NewStore(g, fakeResolve)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20; i++ {
		s.AddTrace(randTrace(rng))
	}
	members := []int{0, 1, 2, 3, 4, 5}
	est := s.Estimate(1, members, NegMetascritic)

	snap := s.Clone()
	for i := 0; i < 10; i++ {
		snap.AddTrace(randTrace(rng))
	}
	got := snap.Refresh(est)
	if got == est {
		t.Fatalf("Refresh across a clone split must return a fresh estimate")
	}
	requireSameEstimate(t, "across-clone", got, snap.Estimate(1, members, NegMetascritic))
	// The original estimate still refreshes against its own store.
	s.Refresh(est)
	requireSameEstimate(t, "original", est, s.Estimate(1, members, NegMetascritic))
}

// FuzzRefreshEquivalence lets the fuzzer drive the trace stream and the
// refresh cadence; any divergence between the delta-refreshed estimate and
// a from-scratch rebuild is a bug.
func FuzzRefreshEquivalence(f *testing.F) {
	f.Add(int64(3), []byte{0x01, 0x80, 0x33, 0xff, 0x12})
	f.Add(int64(7), []byte{0xaa, 0x00, 0x04})
	f.Fuzz(func(t *testing.T, seed int64, program []byte) {
		g := testGraph()
		s := NewStore(g, fakeResolve)
		rng := rand.New(rand.NewSource(seed))
		members := []int{0, 1, 2, 3, 4, 5}
		metro := int(uint(seed) % 4)
		policy := allPolicies[int(uint(seed)>>2)%len(allPolicies)]
		scope := asgraph.GeoScope(int(uint(seed)>>4) % int(asgraph.NumGeoScopes))
		est := s.EstimateScoped(metro, members, policy, scope)
		for _, op := range program {
			for k := 0; k < int(op&0x07); k++ {
				s.AddTrace(randTrace(rng))
			}
			if op&0x08 != 0 {
				s.Refresh(est)
				requireSameEstimate(t, "fuzz", est, s.EstimateScoped(metro, members, policy, scope))
			}
		}
		s.Refresh(est)
		requireSameEstimate(t, "fuzz-final", est, s.EstimateScoped(metro, members, policy, scope))
	})
}

// TestConsistencyCacheRefreshesAfterTrace pins the unified epoch-based
// consistency cache: a cached ConsistentASes result must be invalidated
// when a later trace introduces a contradiction at that scope.
func TestConsistencyCacheRefreshesAfterTrace(t *testing.T) {
	g := testGraph()
	s := NewStore(g, fakeResolve)

	// Transit pattern 0 -> 2 -> 1 at metro 0 (AS 2 is a provider of both):
	// non-link evidence for (0,1), no contradiction yet.
	s.AddTrace(mkTrace(0, 0, 1, [2]int{0, 0}, [2]int{2, 0}, [2]int{1, 0}))
	if c := s.ConsistentASes(asgraph.SameMetro); !c[0] || !c[1] {
		t.Fatalf("no contradiction yet, 0 and 1 should be consistent: %v", c)
	}
	// Same result again must come from the cache (same map).
	if s.consistent[asgraph.SameMetro] == nil {
		t.Fatalf("first ConsistentASes call did not populate the cache")
	}

	// Now a direct crossing 0-1 at metro 0: contradictory at SameMetro.
	s.AddTrace(mkTrace(4, 0, 1, [2]int{0, 0}, [2]int{1, 0}))
	c := s.ConsistentASes(asgraph.SameMetro)
	if c[0] && c[1] {
		t.Fatalf("contradiction at SameMetro must eliminate an AS of the pair: %v", c)
	}
	// A scope the new conflict also reaches is invalidated too (the event
	// scope is SameMetro, which is <= every wider scope).
	wide := s.ConsistentASes(asgraph.Elsewhere)
	if wide[0] && wide[1] {
		t.Fatalf("contradiction must surface at wider scopes too: %v", wide)
	}
}

// TestRefreshNoDeltaAllocs pins the incremental fast path: refreshing an
// estimate when nothing changed must not allocate at all, and a refresh
// after a single trace must stay within a small constant budget.
func TestRefreshNoDeltaAllocs(t *testing.T) {
	g := testGraph()
	s := NewStore(g, fakeResolve)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		s.AddTrace(randTrace(rng))
	}
	members := []int{0, 1, 2, 3, 4, 5}
	est := s.Estimate(2, members, NegWellPositioned)

	if n := testing.AllocsPerRun(100, func() { s.Refresh(est) }); n != 0 {
		t.Fatalf("no-delta Refresh allocated %v times per run, want 0", n)
	}

	// Delta refresh budget: one trace dirties a handful of pairs; the only
	// allowed allocations are the dedup set and mask-row growth.
	traces := make([]traceroute.Trace, 200)
	for i := range traces {
		traces[i] = randTrace(rng)
	}
	i := 0
	if n := testing.AllocsPerRun(100, func() {
		s.AddTrace(traces[i%len(traces)])
		i++
		s.Refresh(est)
	}); n > 40 {
		t.Fatalf("delta Refresh allocated %v times per run, budget 40", n)
	}
}
