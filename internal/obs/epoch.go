package obs

import "metascritic/internal/asgraph"

// Epoch-stamped evidence. In a streaming world the topology an
// observation was made under may no longer exist: a trace that crossed a
// link three epochs ago is weaker evidence than one from the current
// epoch, but it is not worthless — links mostly persist, and deleting
// old evidence would re-open every slot the pipeline had already filled.
// So every evidence record carries the store epoch it was (last)
// observed in, and records older than staleWindow epochs are demoted by
// staleDemotion when evidence is merged, not removed. Re-observing a
// direct crossing re-stamps it to the current epoch, restoring full
// weight.
//
// The scheme preserves the package's core invariant — Refresh is
// byte-identical to a full rebuild — because staleness transitions are
// logged like any other evidence change: AdvanceEpoch appends every pair
// whose records just crossed the stale boundary to the dirty log (the
// epoch log below records which pairs gained stamps in which epoch, so
// the crossing set is a binary search away). A store that never advances
// past epoch 0 behaves exactly like the pre-epoch package.

const (
	// staleWindow is the number of epochs an observation stays at full
	// weight; at age staleWindow it is demoted.
	staleWindow = 4
	// staleDemotion scales the transfer weight of stale evidence.
	staleDemotion = 0.25
)

// epochMark records that pair gained (or re-stamped) an evidence record
// in epoch. The log is append-only with nondecreasing epochs.
type epochMark struct {
	pair  asgraph.Pair
	epoch uint32
}

// Epoch returns the store's current topology epoch.
func (s *Store) Epoch() uint32 { return s.epoch }

// stale reports whether a record stamped at epoch e is demoted at the
// store's current epoch.
func (s *Store) stale(e uint32) bool { return s.epoch >= e+staleWindow }

// markEpoch logs that pr gained an evidence stamp in the current epoch,
// so the future AdvanceEpoch that makes the stamp stale can dirty pr.
func (s *Store) markEpoch(pr asgraph.Pair) {
	s.epochLog = appendClamped(s.epochLog, epochMark{pair: pr, epoch: s.epoch})
}

// AdvanceEpoch moves the store to the next topology epoch (the caller
// has just applied a churn batch to the world) and returns it. Every
// pair with a record that just crossed the stale boundary is appended to
// the dirty log, so delta-maintained estimates pick up the demotions on
// their next Refresh exactly as a full rebuild would.
func (s *Store) AdvanceEpoch() uint32 {
	s.epoch++
	if s.epoch < staleWindow {
		return s.epoch
	}
	cutoff := s.epoch - staleWindow
	// epochLog is nondecreasing in epoch: binary search the [lo, hi)
	// range of marks stamped exactly at the cutoff epoch.
	lo := searchMarks(s.epochLog, cutoff)
	hi := searchMarks(s.epochLog, cutoff+1)
	if lo == hi {
		return s.epoch
	}
	// Over-dirtying is harmless (applyPair is idempotent); a pair whose
	// record was re-stamped since cutoff is re-derived to the same value.
	for _, mk := range s.epochLog[lo:hi] {
		s.dirty = appendClamped(s.dirty, mk.pair)
	}
	return s.epoch
}

// searchMarks returns the index of the first mark with epoch >= e.
func searchMarks(log []epochMark, e uint32) int {
	lo, hi := 0, len(log)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if log[mid].epoch < e {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
