package obs

// Tests for epoch-stamped evidence: demotion of stale records, re-stamp
// on re-observation, and — the load-bearing property — Store.Refresh
// staying byte-identical to a from-scratch rebuild while epochs advance
// between trace rounds (the streaming post-churn workload).

import (
	"math/rand"
	"testing"

	"metascritic/internal/asgraph"
)

// TestEpochDemotionAndRestamp walks one direct crossing through its
// lifecycle: full weight while fresh, demoted once staleWindow epochs
// pass without re-observation, restored on re-observation.
func TestEpochDemotionAndRestamp(t *testing.T) {
	g := testGraph()
	s := NewStore(g, fakeResolve)
	members := []int{0, 1, 2, 3, 4, 5}

	// Direct crossing 0-1 at metro 0.
	s.AddTrace(mkTrace(4, 0, 1, [2]int{0, 0}, [2]int{1, 0}))
	est := s.Estimate(0, members, NegNone)
	if v, ok := est.Value(0, 1); !ok || v != 1.0 {
		t.Fatalf("fresh evidence = %v,%v, want 1.0", v, ok)
	}

	for e := 0; e < staleWindow; e++ {
		s.AdvanceEpoch()
	}
	s.Refresh(est)
	if v, ok := est.Value(0, 1); !ok || v != 1.0*staleDemotion {
		t.Fatalf("stale evidence = %v,%v, want %v", v, ok, staleDemotion)
	}

	// Re-observing the crossing re-stamps it to the current epoch.
	s.AddTrace(mkTrace(4, 0, 1, [2]int{0, 0}, [2]int{1, 0}))
	s.Refresh(est)
	if v, ok := est.Value(0, 1); !ok || v != 1.0 {
		t.Fatalf("re-stamped evidence = %v,%v, want 1.0", v, ok)
	}
}

// TestEpochZeroIsLegacy pins backward compatibility: a store that never
// advances past epoch 0 can never demote anything, whatever the trace
// stream.
func TestEpochZeroIsLegacy(t *testing.T) {
	s := NewStore(testGraph(), fakeResolve)
	if s.Epoch() != 0 {
		t.Fatalf("fresh store epoch = %d", s.Epoch())
	}
	if s.stale(0) {
		t.Fatal("epoch-0 records stale in an epoch-0 store")
	}
}

// TestEpochedRefreshEquivalence is the streaming variant of
// TestRefreshEquivalence: epochs advance between trace rounds (the
// post-churn world), demoting and re-stamping evidence, and every
// delta-refreshed estimate must stay byte-identical to a from-scratch
// rebuild for every (policy, scope).
func TestEpochedRefreshEquivalence(t *testing.T) {
	members := []int{0, 1, 2, 3, 4, 5}
	for seed := int64(1); seed <= 8; seed++ {
		g := testGraph()
		s := NewStore(g, fakeResolve)
		rng := rand.New(rand.NewSource(seed))
		metro := rng.Intn(4)

		type tracked struct {
			policy NegativePolicy
			scope  asgraph.GeoScope
			est    *Estimate
		}
		var track []*tracked
		for _, pol := range allPolicies {
			for sc := asgraph.SameMetro; sc <= asgraph.Elsewhere; sc++ {
				track = append(track, &tracked{policy: pol, scope: sc,
					est: s.EstimateScoped(metro, members, pol, sc)})
			}
		}

		for round := 0; round < 16; round++ {
			for k := 0; k < 1+rng.Intn(6); k++ {
				s.AddTrace(randTrace(rng))
			}
			// Churn lands between trace rounds; skip some rounds so stamps
			// spread over several epochs relative to the stale window.
			if rng.Intn(3) > 0 {
				s.AdvanceEpoch()
			}
			for _, tr := range track {
				s.Refresh(tr.est)
				fresh := s.EstimateScoped(metro, members, tr.policy, tr.scope)
				tag := "seed " + itoa(int(seed)) + " round " + itoa(round) +
					" epoch " + itoa(int(s.Epoch())) +
					" policy " + itoa(int(tr.policy)) + " scope " + itoa(int(tr.scope))
				requireSameEstimate(t, tag, tr.est, fresh)
			}
		}
	}
}

// FuzzEpochedRefreshEquivalence lets the fuzzer interleave traces, epoch
// advances and refreshes; divergence from a from-scratch rebuild is a
// bug.
func FuzzEpochedRefreshEquivalence(f *testing.F) {
	f.Add(int64(3), []byte{0x01, 0x90, 0x33, 0xff, 0x12})
	f.Add(int64(11), []byte{0xaa, 0x10, 0x04, 0x57})
	f.Fuzz(func(t *testing.T, seed int64, program []byte) {
		g := testGraph()
		s := NewStore(g, fakeResolve)
		rng := rand.New(rand.NewSource(seed))
		members := []int{0, 1, 2, 3, 4, 5}
		metro := int(uint(seed) % 4)
		policy := allPolicies[int(uint(seed)>>2)%len(allPolicies)]
		scope := asgraph.GeoScope(int(uint(seed)>>4) % int(asgraph.NumGeoScopes))
		est := s.EstimateScoped(metro, members, policy, scope)
		for _, op := range program {
			for k := 0; k < int(op&0x07); k++ {
				s.AddTrace(randTrace(rng))
			}
			if op&0x10 != 0 {
				s.AdvanceEpoch()
			}
			if op&0x08 != 0 {
				s.Refresh(est)
				requireSameEstimate(t, "fuzz", est, s.EstimateScoped(metro, members, policy, scope))
			}
		}
		s.Refresh(est)
		requireSameEstimate(t, "fuzz-final", est, s.EstimateScoped(metro, members, policy, scope))
	})
}

// TestEpochCloneIsolation pins the copy-on-write contract for the stamp
// rows: a re-stamp on the base (an in-place write, not an append) must
// not leak into a snapshot taken before it, and vice versa.
func TestEpochCloneIsolation(t *testing.T) {
	g := testGraph()
	s := NewStore(g, fakeResolve)
	members := []int{0, 1, 2, 3, 4, 5}
	s.AddTrace(mkTrace(4, 0, 1, [2]int{0, 0}, [2]int{1, 0}))
	for e := 0; e < staleWindow; e++ {
		s.AdvanceEpoch()
	}

	snap := s.Clone()
	// Base re-observes (re-stamps in place); the snapshot must keep
	// seeing the stale, demoted record.
	s.AddTrace(mkTrace(4, 0, 1, [2]int{0, 0}, [2]int{1, 0}))
	if v, _ := s.Estimate(0, members, NegNone).Value(0, 1); v != 1.0 {
		t.Fatalf("base after re-stamp = %v, want 1.0", v)
	}
	if v, _ := snap.Estimate(0, members, NegNone).Value(0, 1); v != 1.0*staleDemotion {
		t.Fatalf("snapshot saw the base's re-stamp: %v, want %v", v, staleDemotion)
	}
}

// TestEpochCodecRoundTrip pins that stamps, the store epoch and the
// epoch log survive encode/decode: a decoded store must keep demoting
// (and re-dirtying on AdvanceEpoch) exactly like the original.
func TestEpochCodecRoundTrip(t *testing.T) {
	g := testGraph()
	s := NewStore(g, fakeResolve)
	rng := rand.New(rand.NewSource(13))
	members := []int{0, 1, 2, 3, 4, 5}
	for round := 0; round < 6; round++ {
		for k := 0; k < 4; k++ {
			s.AddTrace(randTrace(rng))
		}
		s.AdvanceEpoch()
	}

	dec, err := DecodeEvidence(g, fakeResolve, s.EncodeEvidence())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Epoch() != s.Epoch() {
		t.Fatalf("decoded epoch %d, want %d", dec.Epoch(), s.Epoch())
	}
	for _, pol := range allPolicies {
		requireSameEstimate(t, "decoded", dec.Estimate(1, members, pol), s.Estimate(1, members, pol))
	}
	// Advancing both stores demotes the same records: estimates stay
	// equal after the boundary crossing.
	s.AdvanceEpoch()
	dec.AdvanceEpoch()
	requireSameEstimate(t, "decoded+advance",
		dec.Estimate(1, members, NegMetascritic), s.Estimate(1, members, NegMetascritic))
}
