package obs_test

// Evidence-layer benchmarks (see DESIGN.md §Performance): Clone cost (the
// per-snapshot isolation price the engine pays for every metro) and the
// per-round Estimate refresh cost (paid after every measurement batch of
// the rank loop). Sized via METASCRITIC_BENCH_SCALE like the other
// trajectory benchmarks; recorded in BENCH_PR4.json by `make bench`.

import (
	"sync"
	"testing"

	"metascritic/internal/benchscale"
	"metascritic/internal/netsim"
	"metascritic/internal/obs"
	"metascritic/internal/traceroute"
)

var (
	obsBenchOnce sync.Once
	obsBenchW    *netsim.World
	obsBenchEng  *traceroute.Engine
	obsBenchSeed []traceroute.Trace
	obsBenchNew  []traceroute.Trace
)

// obsBenchSetup generates a world and pre-simulates two trace sets: a seed
// history (the accumulated evidence a store carries mid-campaign) and a
// stream of fresh targeted traces (the per-round increment).
func obsBenchSetup(b *testing.B) {
	b.Helper()
	obsBenchOnce.Do(func() {
		scale := 0.15 * benchscale.Scale() / 0.05 // track RunMetro's sizing at scale 0.05
		if scale <= 0 {
			scale = 0.15
		}
		obsBenchW = netsim.Generate(netsim.Config{Seed: 7, Metros: netsim.DefaultMetros(scale)})
		obsBenchEng = traceroute.NewEngine(obsBenchW)
		seedN := benchscale.N(24000, 600)
		newN := benchscale.N(4000, 200)
		probes := obsBenchW.Probes
		n := obsBenchW.G.N()
		for k := 0; k < seedN+newN; k++ {
			pr := probes[k%len(probes)]
			dst := (k*131 + 17) % n
			if dst == pr.AS {
				dst = (dst + 1) % n
			}
			tr := obsBenchEng.Run(pr.AS, pr.Metro, dst)
			if k < seedN {
				obsBenchSeed = append(obsBenchSeed, tr)
			} else {
				obsBenchNew = append(obsBenchNew, tr)
			}
		}
	})
}

func obsBenchStore(b *testing.B) *obs.Store {
	b.Helper()
	obsBenchSetup(b)
	s := obs.NewStore(obsBenchW.G, obsBenchEng.Reg.Resolve)
	for _, tr := range obsBenchSeed {
		s.AddTrace(tr)
	}
	return s
}

// BenchmarkStoreClone measures the snapshot-isolation cost: one Clone per
// engine metro run.
func BenchmarkStoreClone(b *testing.B) {
	s := obsBenchStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := s.Clone()
		if c == nil {
			b.Fatal("nil clone")
		}
	}
}

// BenchmarkStoreEstimate measures one measurement-loop round: ingest a
// fresh trace, then bring E_m up to date — via a from-scratch Estimate
// (full) or by refreshing the tracked estimate (incremental).
func BenchmarkStoreEstimate(b *testing.B) {
	obsBenchSetup(b)
	metro := obsBenchW.PrimaryMetros()[0]
	members := obsBenchW.G.Metros[metro].Members

	b.Run("full", func(b *testing.B) {
		s := obsBenchStore(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.AddTrace(obsBenchNew[i%len(obsBenchNew)])
			est := s.Estimate(metro, members, obs.NegMetascritic)
			if est == nil {
				b.Fatal("nil estimate")
			}
		}
	})

	b.Run("incremental", func(b *testing.B) {
		s := obsBenchStore(b)
		est := s.Estimate(metro, members, obs.NegMetascritic)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.AddTrace(obsBenchNew[i%len(obsBenchNew)])
			if s.Refresh(est) != est {
				b.Fatal("refresh replaced the estimate")
			}
		}
	})
}
