package obs

import (
	"testing"

	"metascritic/internal/asgraph"
	"metascritic/internal/ipmap"
	"metascritic/internal/netsim"
	"metascritic/internal/traceroute"
)

// fakeAddr encodes (AS, metro) for the unit tests.
func fakeAddr(as, metro int) ipmap.Addr { return ipmap.Addr(as*100 + metro + 1) }

func fakeResolve(a ipmap.Addr) (ipmap.Info, bool) {
	if a == 0 {
		return ipmap.Info{}, false
	}
	v := int(a) - 1
	return ipmap.Info{AS: v / 100, Metro: v % 100, IXP: -1}, true
}

// testGraph: metros 0 (AMS/NL), 1 (ROT/NL), 2 (NYC/US), 3 (SYD/AU).
// ASes 0..5; AS 9? keep 6 ASes. AS 2 is a provider of 0 and 1.
func testGraph() *asgraph.Graph {
	g := asgraph.NewGraph()
	g.Continents = []string{"EU", "NA", "OC"}
	g.Countries = []asgraph.Country{{Code: "NL", Continent: 0}, {Code: "US", Continent: 1}, {Code: "AU", Continent: 2}}
	g.Metros = []*asgraph.Metro{
		{Index: 0, Name: "Amsterdam", Country: 0},
		{Index: 1, Name: "Rotterdam", Country: 0},
		{Index: 2, Name: "NewYork", Country: 1},
		{Index: 3, Name: "Sydney", Country: 2},
	}
	for i := 0; i < 6; i++ {
		g.AddAS(&asgraph.AS{ASN: 100 + i, Metros: []int{0, 1, 2, 3}})
	}
	g.AddC2P(0, 2)
	g.AddC2P(1, 2)
	return g
}

func mkTrace(vp, vpMetro, dst int, hops ...[2]int) traceroute.Trace {
	tr := traceroute.Trace{VPAS: vp, VPMetro: vpMetro, DstAS: dst, Reached: true}
	for _, h := range hops {
		tr.Hops = append(tr.Hops, traceroute.Hop{Addr: fakeAddr(h[0], h[1]), Responsive: true})
	}
	return tr
}

func TestDirectCrossingDetected(t *testing.T) {
	g := testGraph()
	s := NewStore(g, fakeResolve)
	// VP in AS 3 at metro 0; path 3 -> 4 crossing at metro 0.
	f := s.AddTrace(mkTrace(3, 0, 4, [2]int{3, 0}, [2]int{4, 0}))
	if len(f) != 1 || !f[0].Direct || f[0].Metro != 0 {
		t.Fatalf("findings = %+v", f)
	}
	if dm := s.DirectMetros(3, 4); len(dm) != 1 || dm[0] != 0 {
		t.Fatalf("DirectMetros = %v", dm)
	}
	est := s.Estimate(0, []int{3, 4, 5}, NegMetascritic)
	v, ok := est.Value(3, 4)
	if !ok || v != 1.0 {
		t.Fatalf("E[3,4] = %v,%v, want 1", v, ok)
	}
	if _, ok := est.Value(3, 5); ok {
		t.Fatalf("unobserved entry should not be set")
	}
}

func TestUnresponsiveHopBreaksAdjacency(t *testing.T) {
	g := testGraph()
	s := NewStore(g, fakeResolve)
	tr := mkTrace(3, 0, 4, [2]int{3, 0}, [2]int{4, 0})
	// Insert a silent hop between the two.
	tr.Hops = []traceroute.Hop{tr.Hops[0], {Responsive: false}, tr.Hops[1]}
	f := s.AddTrace(tr)
	if len(f) != 0 {
		t.Fatalf("gap should suppress crossing, got %+v", f)
	}
}

func TestTransferWeights(t *testing.T) {
	cases := map[asgraph.GeoScope]float64{
		asgraph.SameMetro:     1.0,
		asgraph.SameCountry:   0.7,
		asgraph.SameContinent: 0.4,
		asgraph.Elsewhere:     0.1,
	}
	for sc, want := range cases {
		if got := TransferWeight(sc); got != want {
			t.Fatalf("TransferWeight(%v) = %v", sc, got)
		}
	}
}

func TestGeographicTransferability(t *testing.T) {
	g := testGraph()
	s := NewStore(g, fakeResolve)
	// Crossing observed at Rotterdam (metro 1, same country as AMS).
	s.AddTrace(mkTrace(3, 1, 4, [2]int{3, 1}, [2]int{4, 1}))
	est := s.Estimate(0, []int{3, 4}, NegMetascritic)
	if v, _ := est.Value(3, 4); v != 0.7 {
		t.Fatalf("same-country transfer = %v, want 0.7", v)
	}
	// A crossing in Sydney transfers weakly to Amsterdam.
	s2 := NewStore(g, fakeResolve)
	s2.AddTrace(mkTrace(3, 3, 4, [2]int{3, 3}, [2]int{4, 3}))
	est2 := s2.Estimate(0, []int{3, 4}, NegMetascritic)
	if v, _ := est2.Value(3, 4); v != 0.1 {
		t.Fatalf("elsewhere transfer = %v, want 0.1", v)
	}
	// Observing the same-metro crossing later upgrades the value.
	s2.AddTrace(mkTrace(3, 0, 4, [2]int{3, 0}, [2]int{4, 0}))
	est3 := s2.Estimate(0, []int{3, 4}, NegMetascritic)
	if v, _ := est3.Value(3, 4); v != 1.0 {
		t.Fatalf("upgraded transfer = %v, want 1", v)
	}
}

func TestTransitPatternYieldsNegative(t *testing.T) {
	g := testGraph()
	s := NewStore(g, fakeResolve)
	// Probe (5,0) first traverses AS 0 at metro 0 so it is well-positioned.
	s.AddTrace(mkTrace(5, 0, 0, [2]int{5, 0}, [2]int{0, 0}))
	// Then 0 -> 2 (provider of both 0 and 1) -> 1, all at metro 0.
	f := s.AddTrace(mkTrace(5, 0, 1, [2]int{5, 0}, [2]int{0, 0}, [2]int{2, 0}, [2]int{1, 0}))
	foundTransit := false
	for _, fd := range f {
		if !fd.Direct && fd.Pair == asgraph.MakePair(0, 1) {
			foundTransit = true
		}
	}
	if !foundTransit {
		t.Fatalf("transit pattern not detected: %+v", f)
	}
	est := s.Estimate(0, []int{0, 1}, NegMetascritic)
	if v, ok := est.Value(0, 1); !ok || v != -1.0 {
		t.Fatalf("E[0,1] = %v,%v, want -1", v, ok)
	}
	// Scope weighting: estimate for Sydney gets only weak evidence.
	estSyd := s.Estimate(3, []int{0, 1}, NegMetascritic)
	if v, ok := estSyd.Value(0, 1); !ok || v != -0.1 {
		t.Fatalf("Sydney E[0,1] = %v,%v, want -0.1", v, ok)
	}
}

func TestNegNonePolicy(t *testing.T) {
	g := testGraph()
	s := NewStore(g, fakeResolve)
	s.AddTrace(mkTrace(5, 0, 0, [2]int{5, 0}, [2]int{0, 0}))
	s.AddTrace(mkTrace(5, 0, 1, [2]int{5, 0}, [2]int{0, 0}, [2]int{2, 0}, [2]int{1, 0}))
	est := s.Estimate(0, []int{0, 1}, NegNone)
	if _, ok := est.Value(0, 1); ok {
		t.Fatalf("NegNone must not record negatives")
	}
}

func TestWellPositionedGate(t *testing.T) {
	g := testGraph()
	s := NewStore(g, fakeResolve)
	// The probe sees AS 0 only at metro 2, but the transit crossing is
	// geolocated to metro 0: the probe is NOT well-positioned for AS 0 at
	// metro 0, so the detour cannot be read as a missing link there.
	s.AddTrace(mkTrace(5, 2, 4, [2]int{5, 2}, [2]int{4, 2}))
	s.AddTrace(mkTrace(5, 2, 1, [2]int{5, 2}, [2]int{0, 2}, [2]int{2, 0}, [2]int{1, 0}))
	est0 := s.Estimate(0, []int{0, 1}, NegMetascritic)
	if _, ok := est0.Value(0, 1); ok {
		t.Fatalf("not-well-positioned probe should not produce negatives")
	}
	// NegFull ignores the gate.
	estFull := s.Estimate(0, []int{0, 1}, NegFull)
	if v, ok := estFull.Value(0, 1); !ok || v >= 0 {
		t.Fatalf("NegFull should record negative, got %v,%v", v, ok)
	}
	// Once the probe has traversed AS 0 at metro 0, the gate opens.
	s.AddTrace(mkTrace(5, 2, 0, [2]int{5, 2}, [2]int{0, 0}))
	s.AddTrace(mkTrace(5, 2, 1, [2]int{5, 2}, [2]int{0, 0}, [2]int{2, 0}, [2]int{1, 0}))
	est1 := s.Estimate(0, []int{0, 1}, NegMetascritic)
	if v, ok := est1.Value(0, 1); !ok || v != -1.0 {
		t.Fatalf("after coverage, E[0,1] = %v,%v, want -1", v, ok)
	}
}

func TestConsistencyGate(t *testing.T) {
	g := testGraph()
	s := NewStore(g, fakeResolve)
	// Same pair shows BOTH a direct crossing and a transit pattern at the
	// same metro: inconsistent routing; negatives must be suppressed under
	// NegMetascritic.
	s.AddTrace(mkTrace(5, 0, 0, [2]int{5, 0}, [2]int{0, 0}))
	s.AddTrace(mkTrace(5, 0, 1, [2]int{5, 0}, [2]int{0, 0}, [2]int{1, 0}))               // direct 0-1
	s.AddTrace(mkTrace(5, 0, 1, [2]int{5, 0}, [2]int{0, 0}, [2]int{2, 0}, [2]int{1, 0})) // transit 0-2-1
	cons := s.ConsistentASes(asgraph.SameMetro)
	if cons[0] && cons[1] {
		t.Fatalf("one of the contradictory ASes should be eliminated")
	}
	est := s.Estimate(0, []int{0, 1}, NegMetascritic)
	v, ok := est.Value(0, 1)
	if !ok || v != 1.0 {
		t.Fatalf("direct evidence should win for inconsistent pair: %v,%v", v, ok)
	}
	// NegWellPositioned ignores consistency but keeps the direct value
	// since |1| >= |-1| (positive wins ties).
	estW := s.Estimate(0, []int{0, 1}, NegWellPositioned)
	if v, _ := estW.Value(0, 1); v != 1.0 {
		t.Fatalf("tie should favor positive, got %v", v)
	}
}

func TestConsistencyScopeGranularity(t *testing.T) {
	g := testGraph()
	s := NewStore(g, fakeResolve)
	// Direct at Amsterdam (0), transit at NYC (2): different continents,
	// so the pair is consistent at metro/country/continent scope but
	// inconsistent at Elsewhere scope.
	s.AddTrace(mkTrace(5, 0, 1, [2]int{5, 0}, [2]int{0, 0}, [2]int{1, 0}))
	s.AddTrace(mkTrace(5, 2, 1, [2]int{5, 2}, [2]int{0, 2}, [2]int{2, 2}, [2]int{1, 2}))
	if len(s.inconsistentPairsAt(asgraph.SameMetro)) != 0 {
		t.Fatalf("should be consistent at metro scope")
	}
	if len(s.inconsistentPairsAt(asgraph.Elsewhere)) != 1 {
		t.Fatalf("should be inconsistent at global scope")
	}
}

func TestEstimateHelpers(t *testing.T) {
	g := testGraph()
	s := NewStore(g, fakeResolve)
	s.AddTrace(mkTrace(5, 0, 4, [2]int{5, 0}, [2]int{4, 0}))
	est := s.Estimate(0, []int{4, 5}, NegMetascritic)
	fill := est.RowFill()
	if fill[0] != 1 || fill[1] != 1 {
		t.Fatalf("RowFill = %v", fill)
	}
	pos, neg := est.PairCounts()
	if pos[0] != 1 || neg[0] != 0 {
		t.Fatalf("PairCounts = %v %v", pos, neg)
	}
}

func TestEndToEndWithSimulatedWorld(t *testing.T) {
	// Integration: feed real simulated traceroutes and check that derived
	// direct links are true links (precision of raw measurement ≈ 1 up to
	// ipmap error).
	w := netsim.Generate(netsim.Config{Seed: 11, Metros: netsim.DefaultMetros(0.1)})
	e := traceroute.NewEngine(w)
	e.Reg.ErrorRate = 0
	s := NewStore(w.G, e.Reg.Resolve)
	n := 0
	for _, p := range w.Probes {
		if n > 400 {
			break
		}
		for dst := 0; dst < w.G.N(); dst += 29 {
			if dst == p.AS {
				continue
			}
			s.AddTrace(e.Run(p.AS, p.Metro, dst))
			n++
		}
	}
	checked := 0
	for pr := range s.direct {
		if _, ok := w.RelOf(pr.A, pr.B); !ok {
			t.Fatalf("observed direct crossing %v is not a real link", pr)
		}
		for _, m := range s.DirectMetros(pr.A, pr.B) {
			found := false
			for _, mm := range w.InterconnectMetros(pr.A, pr.B) {
				if mm == m {
					found = true
				}
			}
			if !found {
				t.Fatalf("crossing %v geolocated to metro %d where pair has no interconnect", pr, m)
			}
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("too few links observed: %d", checked)
	}
}
