package als

import (
	"math/rand"
	"testing"

	"metascritic/internal/benchscale"
	"metascritic/internal/mat"
)

func benchProblem(n int, fill float64) (*mat.Matrix, *mat.Mask, *mat.Matrix) {
	truth := lowRankMatrix(n, 8, 1)
	rng := rand.New(rand.NewSource(2))
	mask := maskFraction(n, fill, rng)
	features := mat.New(n, 16)
	for i := range features.Data {
		features.Data[i] = rng.NormFloat64()
	}
	return truth, mask, features
}

// benchSizes scales with METASCRITIC_BENCH_SCALE: 64/128 at the CI
// trajectory scale of 0.05.
func benchSizes() []int {
	big := benchscale.N(2560, 64)
	return []int{big / 2, big}
}

func BenchmarkComplete(b *testing.B) {
	for i, n := range benchSizes() {
		name := "half"
		if i == 1 {
			name = "full"
		}
		b.Run(name, func(b *testing.B) {
			E, mask, feat := benchProblem(n, 0.25)
			opts := DefaultOptions(12)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Complete(E, mask, feat, opts)
			}
		})
	}
}
