package als

import (
	"math/rand"
	"testing"

	"metascritic/internal/mat"
)

func benchProblem(n int, fill float64) (*mat.Matrix, *mat.Mask, *mat.Matrix) {
	truth := lowRankMatrix(n, 8, 1)
	rng := rand.New(rand.NewSource(2))
	mask := maskFraction(n, fill, rng)
	features := mat.New(n, 16)
	for i := range features.Data {
		features.Data[i] = rng.NormFloat64()
	}
	return truth, mask, features
}

func BenchmarkComplete(b *testing.B) {
	for _, n := range []int{64, 128} {
		name := "n64"
		if n == 128 {
			name = "n128"
		}
		b.Run(name, func(b *testing.B) {
			E, mask, feat := benchProblem(n, 0.25)
			opts := DefaultOptions(12)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Complete(E, mask, feat, opts)
			}
		})
	}
}
