package als

import (
	"math/rand"
	"sort"
	"testing"

	"metascritic/internal/mat"
)

// referenceComplete is the seed (pre-Problem) implementation of Complete,
// kept verbatim as the golden oracle: per-call observation rebuild with an
// explicit weight per entry, sequential rating reconstruction. The CSR
// Problem path must reproduce its output bit-for-bit.
func referenceComplete(E *mat.Matrix, mask *mat.Mask, features *mat.Matrix, opts Options) *mat.Matrix {
	n := E.Rows
	f := 0
	var feat *mat.Matrix
	if features != nil && opts.FeatureWeight > 0 {
		feat = normalizeColumns(features)
		f = feat.Cols
	}
	dim := n + f
	k := opts.Rank
	if k < 1 {
		k = 1
	}
	if k > dim {
		k = dim
	}
	if opts.Iterations < 1 {
		opts.Iterations = 1
	}

	type obs struct {
		col    int
		value  float64
		weight float64
	}
	rows := make([][]obs, dim)
	addObs := func(i, j int, v, w float64) {
		rows[i] = append(rows[i], obs{col: j, value: v, weight: w})
		if i != j {
			rows[j] = append(rows[j], obs{col: i, value: v, weight: w})
		}
	}
	mask.Entries(func(i, j int) {
		addObs(i, j, E.At(i, j), 1)
	})
	for i := 0; i < n; i++ {
		for c := 0; c < f; c++ {
			addObs(i, n+c, feat.At(i, c), opts.FeatureWeight)
		}
	}
	for i := range rows {
		sort.Slice(rows[i], func(a, b int) bool { return rows[i][a].col < rows[i][b].col })
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	P := mat.New(dim, k)
	Q := mat.New(dim, k)
	for i := range P.Data {
		P.Data[i] = 0.1 * rng.NormFloat64()
		Q.Data[i] = 0.1 * rng.NormFloat64()
	}

	solveRowRef := func(ro []obs, fixed *mat.Matrix, out []float64, lambda float64, ata *mat.Matrix, atb []float64) {
		if len(ro) == 0 {
			for d := range out {
				out[d] = 0
			}
			return
		}
		for x := range ata.Data {
			ata.Data[x] = 0
		}
		for d := range atb {
			atb[d] = 0
		}
		var wsum float64
		for _, o := range ro {
			q := fixed.Row(o.col)
			w := o.weight
			wsum += w
			for a := 0; a < k; a++ {
				wqa := w * q[a]
				atb[a] += wqa * o.value
				arow := ata.Row(a)
				for b := a; b < k; b++ {
					arow[b] += wqa * q[b]
				}
			}
		}
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				ata.Set(b, a, ata.At(a, b))
			}
			ata.Add(a, a, lambda*wsum+1e-9)
		}
		sol, err := mat.CholeskySolve(ata, atb)
		if err != nil {
			return
		}
		copy(out, sol)
	}
	solveSideRef := func(fixed, free *mat.Matrix) {
		ata := mat.New(k, k)
		atb := make([]float64, k)
		for i := range rows {
			solveRowRef(rows[i], fixed, free.Row(i), opts.Lambda, ata, atb)
		}
	}
	for it := 0; it < opts.Iterations; it++ {
		solveSideRef(Q, P)
		solveSideRef(P, Q)
	}

	out := mat.New(n, n)
	for i := 0; i < n; i++ {
		pi := P.Row(i)
		qi := Q.Row(i)
		for j := i; j < n; j++ {
			pj := P.Row(j)
			qj := Q.Row(j)
			var a, b float64
			for d := 0; d < k; d++ {
				a += pi[d] * qj[d]
				b += pj[d] * qi[d]
			}
			v := clip((a+b)/2, -1, 1)
			out.Set(i, j, v)
			out.Set(j, i, v)
		}
	}
	return out
}

// TestGoldenEquivalence pins the tentpole contract: the CSR mask +
// als.Problem path produces byte-identical output to the seed
// implementation for fixed seeds, across featureless, featured, diagonal-
// bearing, and rank-clamped configurations.
func TestGoldenEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, tc := range []struct {
		name string
		n    int
		fill float64
		feat int
		opts Options
	}{
		{"featureless", 40, 0.4, 0, Options{Rank: 6, Lambda: 0.05, Iterations: 6, Seed: 3}},
		{"featured", 36, 0.3, 5, Options{Rank: 7, Lambda: 0.1, FeatureWeight: 0.4, Iterations: 5, Seed: 9}},
		{"weight-zero-features", 30, 0.5, 4, Options{Rank: 4, Lambda: 0.08, FeatureWeight: 0, Iterations: 4, Seed: 2}},
		{"rank-clamped", 12, 0.6, 2, Options{Rank: 100, Lambda: 0.2, FeatureWeight: 0.3, Iterations: 3, Seed: 7}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			E := lowRankMatrix(tc.n, 4, rng.Int63())
			mask := maskFraction(tc.n, tc.fill, rng)
			mask.Set(3, 3) // exercise a diagonal entry
			var features *mat.Matrix
			if tc.feat > 0 {
				features = mat.New(tc.n, tc.feat)
				for i := range features.Data {
					features.Data[i] = rng.NormFloat64()
				}
			}
			want := referenceComplete(E, mask, features, tc.opts)
			got := Complete(E, mask, features, tc.opts)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("entry %d differs: got %v want %v", i, got.Data[i], want.Data[i])
				}
			}
		})
	}
}

// TestOverlayHoldoutEquivalence pins the holdout delta path: completing a
// Problem with an Overlay must be bit-identical to unsetting the same
// entries from a cloned mask and rebuilding.
func TestOverlayHoldoutEquivalence(t *testing.T) {
	n := 40
	E := lowRankMatrix(n, 4, 17)
	rng := rand.New(rand.NewSource(18))
	mask := maskFraction(n, 0.4, rng)
	features := mat.New(n, 3)
	for i := range features.Data {
		features.Data[i] = rng.NormFloat64()
	}
	var holdout [][2]int
	mask.Entries(func(i, j int) {
		if i != j && rng.Float64() < 0.1 {
			holdout = append(holdout, [2]int{i, j})
		}
	})
	if len(holdout) < 5 {
		t.Fatalf("holdout too small: %d", len(holdout))
	}
	opts := Options{Rank: 6, Lambda: 0.08, FeatureWeight: 0.3, Iterations: 6, Seed: 5}

	work := mask.Clone()
	for _, h := range holdout {
		work.Unset(h[0], h[1])
	}
	want := Complete(E, work, features, opts)

	ov := mat.NewOverlay(mask)
	for _, h := range holdout {
		ov.Remove(h[0], h[1])
	}
	got := NewProblem(E, mask, features).Complete(opts, ov)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("entry %d differs: got %v want %v", i, got.Data[i], want.Data[i])
		}
	}
	// The overlay must not have leaked into the caller's mask.
	for _, h := range holdout {
		if !mask.Has(h[0], h[1]) {
			t.Fatalf("overlay mutated the base mask at %v", h)
		}
	}
}

// TestWarmStartDeterministic pins the warm-start determinism contract: the
// same problem, options, and warm factors produce identical output, and a
// nil warm start reproduces the cold path exactly.
func TestWarmStartDeterministic(t *testing.T) {
	n := 30
	E := lowRankMatrix(n, 3, 23)
	rng := rand.New(rand.NewSource(24))
	mask := maskFraction(n, 0.5, rng)
	p := NewProblem(E, mask, nil)

	optsLo := Options{Rank: 3, Lambda: 0.08, Iterations: 6, Seed: 11}
	_, warm := p.CompleteFactors(optsLo, nil, nil)
	if warm.Rank() != 3 {
		t.Fatalf("warm rank = %d", warm.Rank())
	}

	optsHi := Options{Rank: 5, Lambda: 0.08, Iterations: 6, Seed: 12}
	a, fa := p.CompleteFactors(optsHi, nil, warm)
	b, fb := p.CompleteFactors(optsHi, nil, warm)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("warm-started completion not deterministic at %d", i)
		}
	}
	for i := range fa.P.Data {
		if fa.P.Data[i] != fb.P.Data[i] || fa.Q.Data[i] != fb.Q.Data[i] {
			t.Fatalf("warm-started factors not deterministic at %d", i)
		}
	}

	cold1, _ := p.CompleteFactors(optsHi, nil, nil)
	cold2 := Complete(E, mask, nil, optsHi)
	for i := range cold1.Data {
		if cold1.Data[i] != cold2.Data[i] {
			t.Fatalf("nil warm start must equal the cold path (entry %d)", i)
		}
	}
}
