package als

import (
	"math"
	"math/rand"
	"testing"

	"metascritic/internal/mat"
)

// lowRankMatrix builds a symmetric rank-r matrix with entries in [-1,1].
func lowRankMatrix(n, r int, seed int64) *mat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	f := mat.New(n, r)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64() / math.Sqrt(float64(r))
	}
	m := mat.Mul(f, f.T())
	// Squash into [-1, 1] via tanh to mimic rating scale.
	for i := range m.Data {
		m.Data[i] = math.Tanh(m.Data[i])
	}
	m.Symmetrize()
	return m
}

// maskFraction observes each off-diagonal entry with probability p.
func maskFraction(n int, p float64, rng *rand.Rand) *mat.Mask {
	mk := mat.NewMask(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				mk.Set(i, j)
			}
		}
	}
	return mk
}

func TestCompleteRecoversLowRank(t *testing.T) {
	n, r := 60, 4
	truth := lowRankMatrix(n, r, 1)
	rng := rand.New(rand.NewSource(2))
	mask := maskFraction(n, 0.5, rng)
	got := Complete(truth, mask, nil, Options{Rank: 8, Lambda: 0.02, Iterations: 20, Seed: 3})
	// Error on the UNOBSERVED entries must be small.
	var se float64
	cnt := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if mask.Has(i, j) {
				continue
			}
			d := got.At(i, j) - truth.At(i, j)
			se += d * d
			cnt++
		}
	}
	rmse := math.Sqrt(se / float64(cnt))
	if rmse > 0.15 {
		t.Fatalf("unobserved RMSE = %.3f, want < 0.15", rmse)
	}
}

func TestCompleteOutputSymmetricAndClipped(t *testing.T) {
	n := 40
	truth := lowRankMatrix(n, 3, 4)
	rng := rand.New(rand.NewSource(5))
	mask := maskFraction(n, 0.3, rng)
	got := Complete(truth, mask, nil, DefaultOptions(5))
	if !got.IsSymmetric(1e-9) {
		t.Fatalf("completion not symmetric")
	}
	for _, v := range got.Data {
		if v < -1-1e-12 || v > 1+1e-12 {
			t.Fatalf("rating out of range: %v", v)
		}
	}
}

func TestCompleteDeterministic(t *testing.T) {
	n := 30
	truth := lowRankMatrix(n, 3, 6)
	rng := rand.New(rand.NewSource(7))
	mask := maskFraction(n, 0.4, rng)
	a := Complete(truth, mask, nil, DefaultOptions(4))
	b := Complete(truth, mask, nil, DefaultOptions(4))
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("non-deterministic completion at %d", i)
		}
	}
}

func TestFeaturesHelpColdRows(t *testing.T) {
	// Rows with zero observed entries can only be predicted through
	// features. Build a block world: ASes of type 0 all peer with each
	// other; type 1 do not peer. Feature = the type.
	n := 40
	truth := mat.New(n, n)
	features := mat.New(n, 1)
	typ := func(i int) int { return i % 2 }
	for i := 0; i < n; i++ {
		features.Set(i, 0, float64(typ(i)*2-1))
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if typ(i) == 0 && typ(j) == 0 {
				truth.Set(i, j, 1)
			} else {
				truth.Set(i, j, -1)
			}
		}
	}
	mask := mat.NewMask(n)
	rng := rand.New(rand.NewSource(8))
	// Observe entries only among rows >= 4 (rows 0..3 are completely out).
	for i := 4; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.6 {
				mask.Set(i, j)
			}
		}
	}
	withF := Complete(truth, mask, features, Options{Rank: 6, Lambda: 0.05, FeatureWeight: 0.8, Iterations: 20, Seed: 9})
	noF := Complete(truth, mask, nil, Options{Rank: 6, Lambda: 0.05, Iterations: 20, Seed: 9})
	// Compare accuracy on the cold rows 0..3.
	errOf := func(m *mat.Matrix) float64 {
		var se float64
		cnt := 0
		for i := 0; i < 4; i++ {
			for j := 4; j < n; j++ {
				d := m.At(i, j) - truth.At(i, j)
				se += d * d
				cnt++
			}
		}
		return se / float64(cnt)
	}
	if errOf(withF) >= errOf(noF) {
		t.Fatalf("features should help cold rows: with=%.3f without=%.3f", errOf(withF), errOf(noF))
	}
}

func TestHoldoutMSE(t *testing.T) {
	n := 30
	truth := lowRankMatrix(n, 3, 10)
	rng := rand.New(rand.NewSource(11))
	mask := maskFraction(n, 0.6, rng)
	var holdout [][2]int
	mask.Entries(func(i, j int) {
		if len(holdout) < 20 && i != j {
			holdout = append(holdout, [2]int{i, j})
		}
	})
	mseGood := HoldoutMSE(truth, mask, nil, holdout, Options{Rank: 5, Lambda: 0.02, Iterations: 15, Seed: 1})
	mseBad := HoldoutMSE(truth, mask, nil, holdout, Options{Rank: 1, Lambda: 5.0, Iterations: 2, Seed: 1})
	if mseGood >= mseBad {
		t.Fatalf("well-configured completion should beat a crippled one: %.4f vs %.4f", mseGood, mseBad)
	}
	if got := HoldoutMSE(truth, mask, nil, nil, DefaultOptions(3)); got != 0 {
		t.Fatalf("empty holdout MSE = %v", got)
	}
	// Holdout entries must be restored in the caller's mask (clone check).
	for _, h := range holdout {
		if !mask.Has(h[0], h[1]) {
			t.Fatalf("HoldoutMSE mutated the caller's mask")
		}
	}
}

func TestTunePicksFiniteConfig(t *testing.T) {
	n := 30
	truth := lowRankMatrix(n, 3, 12)
	rng := rand.New(rand.NewSource(13))
	mask := maskFraction(n, 0.5, rng)
	features := mat.New(n, 2)
	for i := range features.Data {
		features.Data[i] = rng.NormFloat64()
	}
	res := Tune(truth, mask, features, 4, rng)
	if math.IsInf(res.MSE, 1) {
		t.Fatalf("tune found nothing")
	}
	if res.Lambda <= 0 {
		t.Fatalf("lambda must be positive, got %v", res.Lambda)
	}
}

func TestCompleteEdgeCases(t *testing.T) {
	// Empty mask: completion collapses to ~0 ratings.
	n := 10
	E := mat.New(n, n)
	got := Complete(E, mat.NewMask(n), nil, DefaultOptions(3))
	for _, v := range got.Data {
		if math.Abs(v) > 0.2 {
			t.Fatalf("no-data completion should be near zero, got %v", v)
		}
	}
	// Rank larger than dimension is clamped, not fatal.
	E2 := lowRankMatrix(6, 2, 14)
	mask := mat.NewMask(6)
	mask.Set(0, 1)
	mask.Set(2, 3)
	_ = Complete(E2, mask, nil, Options{Rank: 100, Lambda: 0.1, Iterations: 3, Seed: 1})
	// Zero iterations is bumped to one.
	_ = Complete(E2, mask, nil, Options{Rank: 2, Lambda: 0.1, Iterations: 0, Seed: 1})
}

func TestNormalizeColumns(t *testing.T) {
	m := mat.FromRows([][]float64{{0, 5}, {10, 5}, {20, 5}})
	out := normalizeColumns(m)
	// First column: centered at 10, maxabs 10 -> -1, 0, 1.
	if out.At(0, 0) != -1 || out.At(1, 0) != 0 || out.At(2, 0) != 1 {
		t.Fatalf("column 0 = %v %v %v", out.At(0, 0), out.At(1, 0), out.At(2, 0))
	}
	// Constant column maps to zeros.
	for r := 0; r < 3; r++ {
		if out.At(r, 1) != 0 {
			t.Fatalf("constant column should normalize to 0")
		}
	}
	// Original untouched.
	if m.At(0, 0) != 0 {
		t.Fatalf("normalizeColumns mutated input")
	}
}
