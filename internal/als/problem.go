package als

import (
	"math/rand"
	"runtime"
	"sync"

	"metascritic/internal/mat"
)

// Problem is the reusable form of one hybrid completion problem: the
// weighted per-row observation structure over the augmented matrix
// [E | features], built once per (E, mask, features) and shared across
// holdout draws, tune grid points, and rank candidates. Rebuilding this
// structure used to dominate short completions — the rank-estimation loop
// alone runs hundreds of them per metro.
//
// Reuse contract: a Problem snapshots the mask (row layout) and feature
// normalization at construction but reads E lazily at solve time through
// stored values — so it is invalidated by ANY mutation of the mask (Set/
// Unset/CopyFrom) or of E's observed entries after construction; rebuild
// with NewProblem after targeted measurements land. Holdout draws must NOT
// mutate the mask: express them as a mat.Overlay and pass it to Complete/
// CompleteFactors, which applies the removals as per-row deltas.
//
// The link-vs-feature balance is NOT baked in: links weigh 1 and feature
// entries weigh Options.FeatureWeight at solve time, so one Problem serves
// every grid point of the tune search that keeps features enabled. (A
// FeatureWeight of 0 on a featured Problem zeroes the feature influence but
// still factors the augmented dimension; build a featureless Problem for
// bit-compatibility with the features-off path.)
type Problem struct {
	n, f int         // AS block size, feature column count
	E    *mat.Matrix // estimated matrix the observations were drawn from
	rows [][]observation
}

// observation is one observed entry of the augmented matrix. Its weight is
// implicit: 1 for link entries, Options.FeatureWeight for feature entries
// (row or column in the feature block).
type observation struct {
	col   int32
	value float64
}

// NewProblem builds the per-row observation structure once. features may be
// nil (or have zero columns) for a links-only problem; pass nil when the
// intended FeatureWeight is 0 to match the features-off completion path
// exactly.
func NewProblem(E *mat.Matrix, mask *mat.Mask, features *mat.Matrix) *Problem {
	n := E.Rows
	f := 0
	var feat *mat.Matrix
	if features != nil && features.Cols > 0 {
		feat = normalizeColumns(features)
		f = feat.Cols
	}
	p := &Problem{n: n, f: f, E: E, rows: make([][]observation, n+f)}
	// AS rows: link observations (mask rows are sorted, so the per-row
	// lists come out sorted by column with no re-sort), then feature
	// columns n..n+f-1 in order.
	for i := 0; i < n; i++ {
		row := mask.RowView(i)
		obs := make([]observation, 0, len(row)+f)
		for _, j := range row {
			obs = append(obs, observation{col: j, value: E.At(i, int(j))})
		}
		for c := 0; c < f; c++ {
			obs = append(obs, observation{col: int32(n + c), value: feat.At(i, c)})
		}
		p.rows[i] = obs
	}
	// Feature rows: the mirrored feature observations, columns 0..n-1 in
	// order.
	for c := 0; c < f; c++ {
		obs := make([]observation, n)
		for i := 0; i < n; i++ {
			obs[i] = observation{col: int32(i), value: feat.At(i, c)}
		}
		p.rows[n+c] = obs
	}
	return p
}

// N returns the AS block dimension.
func (p *Problem) N() int { return p.n }

// Factors holds the ALS factor matrices of a completed run, returned so a
// subsequent solve at the same or a nearby rank can warm-start from them
// (the §3.2 rank sweep feeds rank r's factors into rank r+1).
type Factors struct {
	P, Q *mat.Matrix // (n+f)×k
}

// Rank returns the factorization rank of the stored factors.
func (fa *Factors) Rank() int { return fa.P.Cols }

// warmPadScale is the scale of the seeded noise used to fill factor
// dimensions that a warm start does not cover (vs. 0.1 for cold init):
// large enough to break the symmetry of a zero column, small enough not to
// perturb the converged subspace being carried over.
const warmPadScale = 0.02

// Complete solves the problem at the given options, with holdout (optional,
// may be nil) applied as per-row removals. The result is bit-identical to
// rebuilding the problem with the holdout entries unset from the mask.
func (p *Problem) Complete(opts Options, holdout *mat.Overlay) *mat.Matrix {
	out, _ := p.CompleteFactors(opts, holdout, nil)
	return out
}

// CompleteFactors is Complete plus warm-start control: when warm is non-nil
// and dimensionally compatible, the factor matrices are initialized from it
// — the first min(k, warm.Rank()) columns are copied, and any new columns
// are filled with small noise drawn from a rand.Rand seeded with opts.Seed
// (row-major, P then Q per row — the order is part of the determinism
// contract). A nil warm reproduces the historical cold initialization
// exactly. The returned Factors are freshly allocated each call.
func (p *Problem) CompleteFactors(opts Options, holdout *mat.Overlay, warm *Factors) (*mat.Matrix, *Factors) {
	n, f := p.n, p.f
	dim := n + f
	k := opts.Rank
	if k < 1 {
		k = 1
	}
	if k > dim {
		k = dim
	}
	iters := opts.Iterations
	if iters < 1 {
		iters = 1
	}
	fw := opts.FeatureWeight

	rng := rand.New(rand.NewSource(opts.Seed))
	P := mat.New(dim, k)
	Q := mat.New(dim, k)
	if warm != nil && warm.P != nil && warm.P.Rows == dim {
		kw := warm.P.Cols
		if kw > k {
			kw = k
		}
		for i := 0; i < dim; i++ {
			pi, qi := P.Row(i), Q.Row(i)
			copy(pi[:kw], warm.P.Row(i)[:kw])
			copy(qi[:kw], warm.Q.Row(i)[:kw])
			for d := kw; d < k; d++ {
				pi[d] = warmPadScale * rng.NormFloat64()
				qi[d] = warmPadScale * rng.NormFloat64()
			}
		}
	} else {
		for i := range P.Data {
			P.Data[i] = 0.1 * rng.NormFloat64()
			Q.Data[i] = 0.1 * rng.NormFloat64()
		}
	}

	for it := 0; it < iters; it++ {
		p.solveSide(holdout, Q, P, opts.Lambda, fw) // fix Q, solve P rows
		p.solveSide(holdout, P, Q, opts.Lambda, fw) // fix P, solve Q rows
	}

	return p.reconstruct(P, Q, k), &Factors{P: P, Q: Q}
}

// solverScratch is the per-worker normal-equation workspace, pooled across
// solves: the rank-estimation loop calls Complete hundreds of times and the
// k×k system matrices are identically shaped within a sweep.
type solverScratch struct {
	buf  []float64 // backing for the k×k system matrix
	atb  []float64
	lfac []float64 // Cholesky factor scratch
	sol  []float64
	obs  []observation // filtered row for holdout-affected rows
}

var scratchPool = sync.Pool{New: func() any { return &solverScratch{} }}

func (s *solverScratch) sized(k int) (ata *mat.Matrix, atb []float64) {
	if cap(s.buf) < k*k {
		s.buf = make([]float64, k*k)
		s.lfac = make([]float64, k*k)
	}
	if cap(s.atb) < k {
		s.atb = make([]float64, k)
		s.sol = make([]float64, k)
	}
	s.lfac = s.lfac[:k*k]
	s.sol = s.sol[:k]
	return &mat.Matrix{Rows: k, Cols: k, Data: s.buf[:k*k]}, s.atb[:k]
}

// solveSide solves, for every row i, the regularized least squares
//
//	(Σ_j w_ij fixed_j fixed_jᵀ + λΣw I) free_i = Σ_j w_ij A_ij fixed_j
//
// writing the result into free. Rows are independent, so they are solved
// by a bounded worker pool; each worker owns its scratch buffers and
// writes only its own rows, keeping the result bit-identical to the
// sequential computation.
func (p *Problem) solveSide(holdout *mat.Overlay, fixed, free *mat.Matrix, lambda, fw float64) {
	dim := len(p.rows)
	workers := runtime.GOMAXPROCS(0)
	if workers > dim {
		workers = dim
	}
	if workers < 1 {
		workers = 1
	}
	k := fixed.Cols
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			sc := scratchPool.Get().(*solverScratch)
			ata, atb := sc.sized(k)
			for i := start; i < dim; i += workers {
				obs := p.rows[i]
				if holdout != nil && i < p.n {
					if rm := holdout.Removed(i); len(rm) > 0 {
						sc.obs = filterObs(sc.obs[:0], obs, rm)
						obs = sc.obs
					}
				}
				p.solveRow(i, obs, fixed, free.Row(i), lambda, fw, ata, atb, sc)
			}
			scratchPool.Put(sc)
		}(w)
	}
	wg.Wait()
}

// filterObs appends to dst the observations of row whose column is not in
// the sorted removal list rm. Both inputs are sorted by column, so this is
// a single merge pass.
func filterObs(dst, row []observation, rm []int32) []observation {
	k := 0
	for _, o := range row {
		for k < len(rm) && rm[k] < o.col {
			k++
		}
		if k < len(rm) && rm[k] == o.col {
			continue
		}
		dst = append(dst, o)
	}
	return dst
}

// solveRow solves one row's normal equations into out, reusing the caller's
// scratch matrices. Link observations weigh 1; observations in the feature
// block (feature rows, or columns >= n) weigh fw.
func (p *Problem) solveRow(i int, obs []observation, fixed *mat.Matrix, out []float64, lambda, fw float64, ata *mat.Matrix, atb []float64, sc *solverScratch) {
	k := fixed.Cols
	if len(obs) == 0 {
		// No information: shrink toward zero.
		for d := range out {
			out[d] = 0
		}
		return
	}
	for x := range ata.Data {
		ata.Data[x] = 0
	}
	for d := range atb {
		atb[d] = 0
	}
	featRow := i >= p.n
	nCols := int32(p.n)
	var wsum float64
	for _, o := range obs {
		q := fixed.Row(int(o.col))
		w := 1.0
		if featRow || o.col >= nCols {
			w = fw
		}
		wsum += w
		for a := 0; a < k; a++ {
			wqa := w * q[a]
			atb[a] += wqa * o.value
			arow := ata.Row(a)
			for b := a; b < k; b++ {
				arow[b] += wqa * q[b]
			}
		}
	}
	// Mirror the upper triangle and add the regularizer.
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			ata.Set(b, a, ata.At(a, b))
		}
		ata.Add(a, a, lambda*wsum+1e-9)
	}
	if err := mat.CholeskySolveScratch(ata, atb, sc.lfac, sc.sol); err != nil {
		return // keep previous factors for this row
	}
	copy(out, sc.sol)
}

// reconstruct forms the symmetrized rating product restricted to the AS
// block, clipped to [-1, 1]. The O(n²·k) loop is partitioned by row over a
// bounded worker pool with the same strided, write-disjoint layout as
// solveSide: worker w owns rows w, w+workers, ... and every (i, j) pair is
// computed by exactly one worker, so the output is bit-identical to the
// sequential loop.
func (p *Problem) reconstruct(P, Q *mat.Matrix, k int) *mat.Matrix {
	n := p.n
	out := mat.New(n, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			for i := start; i < n; i += workers {
				pi := P.Row(i)
				qi := Q.Row(i)
				for j := i; j < n; j++ {
					pj := P.Row(j)
					qj := Q.Row(j)
					var a, b float64
					for d := 0; d < k; d++ {
						a += pi[d] * qj[d]
						b += pj[d] * qi[d]
					}
					v := clip((a+b)/2, -1, 1)
					out.Set(i, j, v)
					out.Set(j, i, v)
				}
			}
		}(w)
	}
	wg.Wait()
	return out
}
