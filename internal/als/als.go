// Package als implements the hybrid matrix-completion recommender of §3.1
// and Appx. D.4: Alternating Least Squares factorization of the estimated
// connectivity matrix E_m, augmented with per-AS feature columns so that AS
// attributes (traffic profile, peering policy, eyeballs, cone size, ...)
// inform the completion alongside observed links. The relative weight of
// feature entries versus link entries is a hyperparameter, as is the
// regularizer (tuned against a holdout, Appx. D.4).
package als

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"metascritic/internal/mat"
)

// Options configures a completion run.
type Options struct {
	// Rank is the factorization rank r.
	Rank int
	// Lambda is the L2 regularization strength (must be > 0).
	Lambda float64
	// FeatureWeight is the weight of feature entries relative to observed
	// link entries (the features-vs-links balance of §3.1).
	FeatureWeight float64
	// Iterations is the number of ALS sweeps.
	Iterations int
	// Seed seeds the factor initialization.
	Seed int64
}

// DefaultOptions returns sensible defaults for a given rank.
func DefaultOptions(rank int) Options {
	return Options{Rank: rank, Lambda: 0.08, FeatureWeight: 0.35, Iterations: 12, Seed: 1}
}

// observation is one weighted observed entry of the augmented matrix.
type observation struct {
	col    int
	value  float64
	weight float64
}

// Complete runs hybrid ALS over the estimated matrix E (n×n, symmetric,
// entries meaningful only where mask is set) augmented with the feature
// matrix (n×f, one row per AS; columns are normalized internally). It
// returns the completed n×n rating matrix with entries clipped to [-1, 1].
func Complete(E *mat.Matrix, mask *mat.Mask, features *mat.Matrix, opts Options) *mat.Matrix {
	n := E.Rows
	f := 0
	var feat *mat.Matrix
	if features != nil && opts.FeatureWeight > 0 {
		feat = normalizeColumns(features)
		f = feat.Cols
	}
	dim := n + f
	k := opts.Rank
	if k < 1 {
		k = 1
	}
	if k > dim {
		k = dim
	}
	if opts.Iterations < 1 {
		opts.Iterations = 1
	}

	// Observed entries of the augmented symmetric matrix, stored per row.
	rows := make([][]observation, dim)
	addObs := func(i, j int, v, w float64) {
		rows[i] = append(rows[i], observation{col: j, value: v, weight: w})
		if i != j {
			rows[j] = append(rows[j], observation{col: i, value: v, weight: w})
		}
	}
	mask.Entries(func(i, j int) {
		addObs(i, j, E.At(i, j), 1)
	})
	for i := 0; i < n; i++ {
		for c := 0; c < f; c++ {
			addObs(i, n+c, feat.At(i, c), opts.FeatureWeight)
		}
	}
	// Mask iteration order is map-random; sort each row so the floating-
	// point accumulation order (and thus the result) is deterministic.
	for i := range rows {
		sort.Slice(rows[i], func(a, b int) bool { return rows[i][a].col < rows[i][b].col })
	}

	// Factor initialization: small random values.
	rng := rand.New(rand.NewSource(opts.Seed))
	P := mat.New(dim, k)
	Q := mat.New(dim, k)
	for i := range P.Data {
		P.Data[i] = 0.1 * rng.NormFloat64()
		Q.Data[i] = 0.1 * rng.NormFloat64()
	}

	for it := 0; it < opts.Iterations; it++ {
		solveSide(rows, Q, P, opts.Lambda) // fix Q, solve P rows
		solveSide(rows, P, Q, opts.Lambda) // fix P, solve Q rows
	}

	// Ratings: symmetrized product restricted to the AS block.
	out := mat.New(n, n)
	for i := 0; i < n; i++ {
		pi := P.Row(i)
		qi := Q.Row(i)
		for j := i; j < n; j++ {
			pj := P.Row(j)
			qj := Q.Row(j)
			var a, b float64
			for d := 0; d < k; d++ {
				a += pi[d] * qj[d]
				b += pj[d] * qi[d]
			}
			v := clip((a+b)/2, -1, 1)
			out.Set(i, j, v)
			out.Set(j, i, v)
		}
	}
	return out
}

// solveSide solves, for every row i, the regularized least squares
//
//	(Σ_j w_ij fixed_j fixed_jᵀ + λΣw I) free_i = Σ_j w_ij A_ij fixed_j
//
// writing the result into free. Rows are independent, so they are solved
// by a bounded worker pool; each worker owns its scratch buffers and
// writes only its own rows, keeping the result bit-identical to the
// sequential computation.
func solveSide(rows [][]observation, fixed, free *mat.Matrix, lambda float64) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(rows) {
		workers = len(rows)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			k := fixed.Cols
			ata := mat.New(k, k)
			atb := make([]float64, k)
			for i := start; i < len(rows); i += workers {
				solveRow(rows[i], fixed, free.Row(i), lambda, ata, atb)
			}
		}(w)
	}
	wg.Wait()
}

// solveRow solves one row's normal equations into out, reusing the caller's
// scratch matrices.
func solveRow(obs []observation, fixed *mat.Matrix, out []float64, lambda float64, ata *mat.Matrix, atb []float64) {
	k := fixed.Cols
	if len(obs) == 0 {
		// No information: shrink toward zero.
		for d := range out {
			out[d] = 0
		}
		return
	}
	for x := range ata.Data {
		ata.Data[x] = 0
	}
	for d := range atb {
		atb[d] = 0
	}
	var wsum float64
	for _, o := range obs {
		q := fixed.Row(o.col)
		w := o.weight
		wsum += w
		for a := 0; a < k; a++ {
			wqa := w * q[a]
			atb[a] += wqa * o.value
			arow := ata.Row(a)
			for b := a; b < k; b++ {
				arow[b] += wqa * q[b]
			}
		}
	}
	// Mirror the upper triangle and add the regularizer.
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			ata.Set(b, a, ata.At(a, b))
		}
		ata.Add(a, a, lambda*wsum+1e-9)
	}
	sol, err := mat.CholeskySolve(ata, atb)
	if err != nil {
		return // keep previous factors for this row
	}
	copy(out, sol)
}

// normalizeColumns rescales each feature column to [-1, 1] (max-abs after
// centering), so features are commensurate with the rating scale.
func normalizeColumns(m *mat.Matrix) *mat.Matrix {
	out := m.Clone()
	for c := 0; c < m.Cols; c++ {
		var mean float64
		for r := 0; r < m.Rows; r++ {
			mean += m.At(r, c)
		}
		mean /= float64(m.Rows)
		var maxAbs float64
		for r := 0; r < m.Rows; r++ {
			v := math.Abs(m.At(r, c) - mean)
			if v > maxAbs {
				maxAbs = v
			}
		}
		if maxAbs == 0 {
			maxAbs = 1
		}
		for r := 0; r < m.Rows; r++ {
			out.Set(r, c, (m.At(r, c)-mean)/maxAbs)
		}
	}
	return out
}

func clip(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// HoldoutMSE completes the matrix with the given entries removed and
// returns the mean squared error on the removed entries. It is the scoring
// primitive of the rank-estimation loop (§3.2).
func HoldoutMSE(E *mat.Matrix, mask *mat.Mask, features *mat.Matrix, holdout [][2]int, opts Options) float64 {
	work := mask.Clone()
	for _, h := range holdout {
		work.Unset(h[0], h[1])
	}
	completed := Complete(E, work, features, opts)
	var se float64
	cnt := 0
	for _, h := range holdout {
		d := completed.At(h[0], h[1]) - E.At(h[0], h[1])
		se += d * d
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return se / float64(cnt)
}

// TuneResult is the outcome of a hyperparameter search.
type TuneResult struct {
	Lambda        float64
	FeatureWeight float64
	MSE           float64
}

// Tune grid-searches the regularizer and feature weight against a random
// holdout of observed entries (Appx. D.4 / [56]).
func Tune(E *mat.Matrix, mask *mat.Mask, features *mat.Matrix, rank int, rng *rand.Rand) TuneResult {
	// Build a holdout of ~10% of observed entries.
	var entries [][2]int
	mask.Entries(func(i, j int) {
		if i != j {
			entries = append(entries, [2]int{i, j})
		}
	})
	rng.Shuffle(len(entries), func(a, b int) { entries[a], entries[b] = entries[b], entries[a] })
	h := len(entries) / 10
	if h < 1 {
		h = 1
	}
	holdout := entries[:h]

	best := TuneResult{MSE: math.Inf(1)}
	for _, lambda := range []float64{0.02, 0.08, 0.3} {
		for _, fw := range []float64{0, 0.2, 0.5} {
			opts := Options{Rank: rank, Lambda: lambda, FeatureWeight: fw, Iterations: 8, Seed: 1}
			mse := HoldoutMSE(E, mask, features, holdout, opts)
			if mse < best.MSE {
				best = TuneResult{Lambda: lambda, FeatureWeight: fw, MSE: mse}
			}
		}
	}
	return best
}
