// Package als implements the hybrid matrix-completion recommender of §3.1
// and Appx. D.4: Alternating Least Squares factorization of the estimated
// connectivity matrix E_m, augmented with per-AS feature columns so that AS
// attributes (traffic profile, peering policy, eyeballs, cone size, ...)
// inform the completion alongside observed links. The relative weight of
// feature entries versus link entries is a hyperparameter, as is the
// regularizer (tuned against a holdout, Appx. D.4).
//
// The completion kernel lives in Problem (problem.go): the per-row
// observation structure is built once per (E, mask, features) and reused
// across holdout draws, tune grid points, and rank candidates. Complete,
// HoldoutMSE and Tune are the one-shot conveniences layered on top.
package als

import (
	"math"
	"math/rand"
	"runtime"
	"sync"

	"metascritic/internal/mat"
)

// Options configures a completion run.
type Options struct {
	// Rank is the factorization rank r.
	Rank int
	// Lambda is the L2 regularization strength (must be > 0).
	Lambda float64
	// FeatureWeight is the weight of feature entries relative to observed
	// link entries (the features-vs-links balance of §3.1).
	FeatureWeight float64
	// Iterations is the number of ALS sweeps.
	Iterations int
	// Seed seeds the factor initialization.
	Seed int64
}

// DefaultOptions returns sensible defaults for a given rank.
func DefaultOptions(rank int) Options {
	return Options{Rank: rank, Lambda: 0.08, FeatureWeight: 0.35, Iterations: 12, Seed: 1}
}

// Complete runs hybrid ALS over the estimated matrix E (n×n, symmetric,
// entries meaningful only where mask is set) augmented with the feature
// matrix (n×f, one row per AS; columns are normalized internally). It
// returns the completed n×n rating matrix with entries clipped to [-1, 1].
//
// Callers completing the same (E, mask, features) more than once should
// build a Problem and reuse it instead.
func Complete(E *mat.Matrix, mask *mat.Mask, features *mat.Matrix, opts Options) *mat.Matrix {
	if opts.FeatureWeight <= 0 {
		features = nil
	}
	return NewProblem(E, mask, features).Complete(opts, nil)
}

// normalizeColumns rescales each feature column to [-1, 1] (max-abs after
// centering), so features are commensurate with the rating scale.
func normalizeColumns(m *mat.Matrix) *mat.Matrix {
	out := m.Clone()
	for c := 0; c < m.Cols; c++ {
		var mean float64
		for r := 0; r < m.Rows; r++ {
			mean += m.At(r, c)
		}
		mean /= float64(m.Rows)
		var maxAbs float64
		for r := 0; r < m.Rows; r++ {
			v := math.Abs(m.At(r, c) - mean)
			if v > maxAbs {
				maxAbs = v
			}
		}
		if maxAbs == 0 {
			maxAbs = 1
		}
		for r := 0; r < m.Rows; r++ {
			out.Set(r, c, (m.At(r, c)-mean)/maxAbs)
		}
	}
	return out
}

func clip(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// holdoutMSEProblem scores one holdout on an already-built problem.
func holdoutMSEProblem(p *Problem, E *mat.Matrix, ov *mat.Overlay, holdout [][2]int, opts Options) float64 {
	completed := p.Complete(opts, ov)
	var se float64
	cnt := 0
	for _, h := range holdout {
		d := completed.At(h[0], h[1]) - E.At(h[0], h[1])
		se += d * d
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return se / float64(cnt)
}

// HoldoutMSE completes the matrix with the given entries removed and
// returns the mean squared error on the removed entries. It is the scoring
// primitive of the rank-estimation loop (§3.2). The caller's mask is not
// mutated: the removals are applied as an overlay.
func HoldoutMSE(E *mat.Matrix, mask *mat.Mask, features *mat.Matrix, holdout [][2]int, opts Options) float64 {
	if opts.FeatureWeight <= 0 {
		features = nil
	}
	ov := mat.NewOverlay(mask)
	for _, h := range holdout {
		ov.Remove(h[0], h[1])
	}
	return holdoutMSEProblem(NewProblem(E, mask, features), E, ov, holdout, opts)
}

// TuneResult is the outcome of a hyperparameter search.
type TuneResult struct {
	Lambda        float64
	FeatureWeight float64
	MSE           float64
}

// Tune grid-searches the regularizer and feature weight against a random
// holdout of observed entries (Appx. D.4 / [56]). Two problems back the
// whole grid — a featureless one for the weight-0 points and a featured one
// for the rest — so the observation structure is built twice, not once per
// grid point. The grid points are independent completions, so they are
// scored on a bounded worker pool; the winner is then selected by a serial
// scan in grid order, which keeps the result byte-identical to the
// sequential search (ties keep the earliest grid point either way).
func Tune(E *mat.Matrix, mask *mat.Mask, features *mat.Matrix, rank int, rng *rand.Rand) TuneResult {
	probNoF := NewProblem(E, mask, nil)
	var probF *Problem
	if features != nil && features.Cols > 0 {
		probF = NewProblem(E, mask, features)
	}
	return TuneWith(probNoF, probF, E, mask, rank, rng)
}

// TuneWith is Tune over caller-prebuilt problems: probNoF backs the
// feature-weight-0 grid points and probF (nil when there are no features)
// the rest. Callers that complete the matrix right after tuning build the
// two problems once and share them with the final completion instead of
// paying NewProblem three times per run.
func TuneWith(probNoF, probF *Problem, E *mat.Matrix, mask *mat.Mask, rank int, rng *rand.Rand) TuneResult {
	// Build a holdout of ~10% of observed entries.
	var entries [][2]int
	mask.Entries(func(i, j int) {
		if i != j {
			entries = append(entries, [2]int{i, j})
		}
	})
	rng.Shuffle(len(entries), func(a, b int) { entries[a], entries[b] = entries[b], entries[a] })
	h := len(entries) / 10
	if h < 1 {
		h = 1
	}
	holdout := entries[:h]
	ov := mat.NewOverlay(mask)
	for _, hh := range holdout {
		ov.Remove(hh[0], hh[1])
	}

	type point struct{ lambda, fw float64 }
	var grid []point
	for _, lambda := range []float64{0.02, 0.08, 0.3} {
		for _, fw := range []float64{0, 0.2, 0.5} {
			grid = append(grid, point{lambda, fw})
		}
	}
	mses := make([]float64, len(grid))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(grid) {
		workers = len(grid)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			for gi := start; gi < len(grid); gi += workers {
				pt := grid[gi]
				p := probNoF
				if pt.fw > 0 && probF != nil {
					p = probF
				}
				opts := Options{Rank: rank, Lambda: pt.lambda, FeatureWeight: pt.fw, Iterations: 8, Seed: 1}
				mses[gi] = holdoutMSEProblem(p, E, ov, holdout, opts)
			}
		}(w)
	}
	wg.Wait()

	best := TuneResult{MSE: math.Inf(1)}
	for gi, pt := range grid {
		if mses[gi] < best.MSE {
			best = TuneResult{Lambda: pt.lambda, FeatureWeight: pt.fw, MSE: mses[gi]}
		}
	}
	return best
}
