// Package cliflags holds the flag groups shared by the repo's commands,
// so every binary spells -scale/-seed/-budget the same way and the
// daemon can load the identical knobs from a JSON config file.
//
// Each group is a plain struct whose field values at Register time are
// the flag defaults; set fields before Register to change a command's
// defaults, or fill the struct from JSON first (LoadJSON) and then let
// explicitly-passed flags override it.
package cliflags

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"metascritic"
)

// World configures synthetic-world generation.
type World struct {
	// Scale multiplies the paper-like metro sizes (1.0 ≈ paper scale).
	Scale float64 `json:"scale"`
	// Seed drives world generation and the pipeline RNG.
	Seed int64 `json:"seed"`
	// Ases, when > 0, switches to the Internet-scale metro set sized for
	// roughly this many ASes (overrides Scale).
	Ases int `json:"ases"`
}

// DefaultWorld is the baseline used by the CLIs.
func DefaultWorld() World { return World{Scale: 0.25, Seed: 1} }

// Register adds the group's flags to fs with the current field values as
// defaults.
func (w *World) Register(fs *flag.FlagSet) {
	fs.Float64Var(&w.Scale, "scale", w.Scale, "world scale (1.0 ≈ paper-like metro sizes)")
	fs.Int64Var(&w.Seed, "seed", w.Seed, "world and pipeline seed")
	fs.IntVar(&w.Ases, "ases", w.Ases, "Internet-scale world sized for ~this many ASes (overrides -scale)")
}

// Config returns the generation config for this group.
func (w World) Config() metascritic.WorldConfig {
	if w.Ases > 0 {
		return metascritic.WorldConfig{Seed: w.Seed, Metros: metascritic.InternetMetros(w.Ases)}
	}
	return metascritic.WorldConfig{Seed: w.Seed, Metros: metascritic.DefaultMetros(w.Scale)}
}

// Generate builds the world.
func (w World) Generate() *metascritic.World {
	return metascritic.GenerateWorld(w.Config())
}

// Pipeline configures world + public evidence seeding.
type Pipeline struct {
	World
	// Public is the number of public seed traceroutes per probe.
	Public int `json:"public"`
}

// DefaultPipeline is the baseline used by the CLIs.
func DefaultPipeline() Pipeline { return Pipeline{World: DefaultWorld(), Public: 10} }

// Register adds the group's flags to fs.
func (p *Pipeline) Register(fs *flag.FlagSet) {
	p.World.Register(fs)
	fs.IntVar(&p.Public, "public", p.Public, "public seed traceroutes per probe")
}

// Build generates the world and a pipeline pre-seeded with the public
// measurements, returning both plus the number of seeded traceroutes.
func (p Pipeline) Build() (*metascritic.World, *metascritic.Pipeline, int) {
	w := p.Generate()
	pipe := metascritic.NewPipeline(w)
	n := pipe.SeedPublicMeasurements(p.Public, rand.New(rand.NewSource(p.Seed)))
	return w, pipe, n
}

// Engine configures run execution.
type Engine struct {
	// Budget is the targeted traceroute budget per run.
	Budget int `json:"budget"`
	// Workers bounds the engine's worker pool (0 means GOMAXPROCS).
	Workers int `json:"workers"`
	// SharePriors streams learned strategy priors between a batch's
	// metros.
	SharePriors bool `json:"share_priors"`
	// RouteCacheMB bounds the pipeline's shared route cache in MiB
	// (0 = unbounded). At Internet scale one packed view is ~800 KB, so
	// an unbounded cache grows by that much per distinct destination.
	RouteCacheMB int `json:"route_cache_mb"`
	// MetroMembers caps the colocated candidate set per metro
	// (Config.MaxMetroMembers; 0 disables pruning).
	MetroMembers int `json:"metro_members"`
}

// DefaultEngine is the baseline used by the CLIs.
func DefaultEngine() Engine {
	return Engine{
		Budget:       20000,
		Workers:      runtime.GOMAXPROCS(0),
		SharePriors:  true,
		MetroMembers: metascritic.DefaultConfig().MaxMetroMembers,
	}
}

// Register adds the group's flags to fs.
func (e *Engine) Register(fs *flag.FlagSet) {
	fs.IntVar(&e.Budget, "budget", e.Budget, "targeted traceroute budget")
	fs.IntVar(&e.Workers, "workers", e.Workers, "engine worker pool size")
	fs.BoolVar(&e.SharePriors, "share-priors", e.SharePriors, "stream learned strategy priors from finished metros into later ones")
	fs.IntVar(&e.RouteCacheMB, "route-cache-mb", e.RouteCacheMB, "route cache byte budget in MiB (0 = unbounded)")
	fs.IntVar(&e.MetroMembers, "metro-members", e.MetroMembers, "cap on colocated candidate ASes per metro (0 = no cap)")
}

// Apply copies the group onto a pipeline config (the seed comes from the
// World group so a whole run stays a function of one seed).
func (e Engine) Apply(cfg *metascritic.Config, seed int64) {
	cfg.MaxMeasurements = e.Budget
	cfg.MaxMetroMembers = e.MetroMembers
	cfg.Seed = seed
}

// ApplyPipeline installs the group's pipeline-level knobs (the route
// cache budget) on a built pipeline.
func (e Engine) ApplyPipeline(p *metascritic.Pipeline) {
	p.SetRouteCacheBudget(int64(e.RouteCacheMB) << 20)
}

// LoadJSON fills v (a flag-group struct, or a struct embedding several)
// from a strict JSON config file: unknown keys are an error, so typos
// fail loudly instead of silently keeping defaults.
func LoadJSON(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("config %s: %w", path, err)
	}
	// A second document in the file is almost certainly a mistake.
	if dec.More() {
		return fmt.Errorf("config %s: trailing data after the JSON object", path)
	}
	return nil
}
