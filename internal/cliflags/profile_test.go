package cliflags

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestProfileStartStopWritesFiles(t *testing.T) {
	dir := t.TempDir()
	p := Profile{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		Trace:      filepath.Join(dir, "trace.out"),
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Allocate a little so the profiles have something to record.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, path := range []string{p.CPUProfile, p.MemProfile, p.Trace} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile output missing: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile output %s is empty", path)
		}
	}
	// stop is idempotent: a second call (defer + explicit) is a no-op.
	if err := stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}

func TestProfileDisabledIsNoop(t *testing.T) {
	stop, err := Profile{}.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

func TestProfileStartFailureCleansUp(t *testing.T) {
	dir := t.TempDir()
	p := Profile{
		CPUProfile: filepath.Join(dir, "missing-dir", "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
	}
	if _, err := p.Start(); err == nil {
		t.Fatal("Start with an uncreatable cpuprofile path did not fail")
	}
	// The already-started outputs were unwound: a fresh Start must work.
	p.CPUProfile = filepath.Join(dir, "cpu.pprof")
	stop, err := p.Start()
	if err != nil {
		t.Fatalf("Start after failed Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

func TestProfileRegister(t *testing.T) {
	var p Profile
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p.Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", "a", "-memprofile", "b", "-trace", "c"}); err != nil {
		t.Fatal(err)
	}
	if p.CPUProfile != "a" || p.MemProfile != "b" || p.Trace != "c" {
		t.Fatalf("flags not applied: %+v", p)
	}
}
