package cliflags

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profile configures the standard Go diagnostics outputs every command
// shares: a CPU profile, a heap profile and an execution trace, each
// written to a file when its flag is set. Register the group, call Start
// after flag.Parse, and defer the returned stop function; commands that
// exit through os.Exit must call stop explicitly first, or the profiles
// are truncated.
type Profile struct {
	// CPUProfile is the file the CPU profile is written to ("" = off).
	CPUProfile string `json:"cpuprofile"`
	// MemProfile is the file the heap profile is written to on stop
	// ("" = off). A GC runs first so the profile reflects live objects,
	// not collection timing.
	MemProfile string `json:"memprofile"`
	// Trace is the file the execution trace is written to ("" = off).
	Trace string `json:"trace"`
}

// Register adds the group's flags to fs with the current field values as
// defaults.
func (p *Profile) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUProfile, "cpuprofile", p.CPUProfile, "write a CPU profile to this file")
	fs.StringVar(&p.MemProfile, "memprofile", p.MemProfile, "write a heap profile to this file on exit")
	fs.StringVar(&p.Trace, "trace", p.Trace, "write an execution trace to this file")
}

// Start begins every enabled profile and returns the function that stops
// them and flushes the files. Start with no profiles enabled returns a
// no-op stop, so callers can defer unconditionally. If any output cannot
// be started the ones already running are stopped before the error is
// returned.
func (p Profile) Start() (stop func() error, err error) {
	var stops []func() error
	stopAll := func() error {
		var first error
		// Reverse order: the CPU profile and trace stop before the heap
		// profile is captured.
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil && first == nil {
				first = err
			}
		}
		stops = nil
		return first
	}

	if p.MemProfile != "" {
		f, err := os.Create(p.MemProfile)
		if err != nil {
			return nil, fmt.Errorf("memprofile: %w", err)
		}
		stops = append(stops, func() error {
			defer f.Close()
			runtime.GC() // materialize live-object stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			return nil
		})
	}
	if p.CPUProfile != "" {
		f, err := os.Create(p.CPUProfile)
		if err != nil {
			stopAll()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			stopAll()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if p.Trace != "" {
		f, err := os.Create(p.Trace)
		if err != nil {
			stopAll()
			return nil, fmt.Errorf("trace: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			stopAll()
			return nil, fmt.Errorf("trace: %w", err)
		}
		stops = append(stops, func() error {
			trace.Stop()
			return f.Close()
		})
	}
	return stopAll, nil
}
