package cliflags

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRegisterUsesFieldValuesAsDefaults(t *testing.T) {
	p := DefaultPipeline()
	p.Scale = 0.5
	p.Public = 3
	e := DefaultEngine()
	e.Budget = 123

	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p.Register(fs)
	e.Register(fs)
	if err := fs.Parse([]string{"-seed", "9", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
	if p.Scale != 0.5 || p.Public != 3 || e.Budget != 123 {
		t.Fatalf("defaults clobbered: %+v %+v", p, e)
	}
	if p.Seed != 9 || e.Workers != 2 {
		t.Fatalf("explicit flags not applied: %+v %+v", p, e)
	}
}

func TestLoadJSONThenFlagsOverride(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	cfg := `{"scale": 0.1, "seed": 42, "public": 5, "budget": 777, "workers": 3, "share_priors": false}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}

	var v struct {
		Pipeline
		Engine
	}
	v.Pipeline = DefaultPipeline()
	v.Engine = DefaultEngine()
	if err := LoadJSON(path, &v); err != nil {
		t.Fatal(err)
	}
	if v.Scale != 0.1 || v.Seed != 42 || v.Public != 5 || v.Budget != 777 || v.Workers != 3 || v.SharePriors {
		t.Fatalf("config not applied: %+v", v)
	}

	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	v.Pipeline.Register(fs)
	v.Engine.Register(fs)
	if err := fs.Parse([]string{"-budget", "999"}); err != nil {
		t.Fatal(err)
	}
	if v.Budget != 999 || v.Scale != 0.1 {
		t.Fatalf("flag override wrong: %+v", v)
	}
}

func TestLoadJSONStrict(t *testing.T) {
	dir := t.TempDir()

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"scael": 0.1}`), 0o644)
	var w World
	err := LoadJSON(bad, &w)
	if err == nil || !strings.Contains(err.Error(), "scael") {
		t.Fatalf("typo not rejected: %v", err)
	}

	trailing := filepath.Join(dir, "trailing.json")
	os.WriteFile(trailing, []byte(`{"scale": 0.1} {"seed": 2}`), 0o644)
	if err := LoadJSON(trailing, &w); err == nil {
		t.Fatal("trailing document not rejected")
	}

	if err := LoadJSON(filepath.Join(dir, "missing.json"), &w); err == nil {
		t.Fatal("missing file not reported")
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	p := Pipeline{World: World{Scale: 0.1, Seed: 4}, Public: 4}
	w1, pipe1, n1 := p.Build()
	w2, pipe2, n2 := p.Build()
	if n1 != n2 || n1 == 0 {
		t.Fatalf("seeding not deterministic: %d vs %d", n1, n2)
	}
	if w1.G.N() != w2.G.N() {
		t.Fatalf("worlds differ: %d vs %d ASes", w1.G.N(), w2.G.N())
	}
	e1 := pipe1.Store.EncodeEvidence()
	e2 := pipe2.Store.EncodeEvidence()
	if string(e1) != string(e2) {
		t.Fatal("seeded evidence differs between identical builds")
	}
}
