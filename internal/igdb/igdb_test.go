package igdb

import (
	"testing"

	"metascritic/internal/asgraph"
	"metascritic/internal/netsim"
)

func testDB(t *testing.T, miss float64) (*netsim.World, *Database) {
	t.Helper()
	w := netsim.Generate(netsim.Config{Seed: 4, Metros: netsim.DefaultMetros(0.1)})
	return w, Build(w, miss)
}

func TestBuildSubsetOfTruth(t *testing.T) {
	w, db := testDB(t, 0.2)
	for _, a := range w.G.ASes {
		for _, m := range db.Footprint(a.Index) {
			if !a.HasMetro(m) {
				t.Fatalf("database invented a presence: AS %d metro %d", a.Index, m)
			}
		}
	}
	cov := Coverage(db, w)
	if cov < 0.6 || cov >= 1 {
		t.Fatalf("coverage %.3f implausible for miss rate 0.2", cov)
	}
}

func TestBuildDeterministic(t *testing.T) {
	w, db1 := testDB(t, 0.2)
	db2 := Build(w, 0.2)
	for _, a := range w.G.ASes {
		f1, f2 := db1.Footprint(a.Index), db2.Footprint(a.Index)
		if len(f1) != len(f2) {
			t.Fatalf("non-deterministic footprints for AS %d", a.Index)
		}
		for k := range f1 {
			if f1[k] != f2[k] {
				t.Fatalf("non-deterministic footprints for AS %d", a.Index)
			}
		}
	}
}

func TestZeroMissIsComplete(t *testing.T) {
	w, db := testDB(t, 0)
	if cov := Coverage(db, w); cov != 1 {
		t.Fatalf("zero miss rate coverage %.3f, want 1", cov)
	}
	// Members and footprints agree.
	for m := range w.G.Metros {
		for _, as := range db.Members(m) {
			found := false
			for _, mm := range db.Footprint(as) {
				if mm == m {
					found = true
				}
			}
			if !found {
				t.Fatalf("members/footprints inconsistent")
			}
		}
	}
}

func TestColocated(t *testing.T) {
	w, db := testDB(t, 0)
	// A pair of Tier1s (global footprints) is colocated everywhere.
	var t1 []int
	for _, a := range w.G.ASes {
		if a.Class == asgraph.Tier1 {
			t1 = append(t1, a.Index)
		}
	}
	co := db.Colocated(t1[0], t1[1])
	if len(co) != len(w.G.Metros) {
		t.Fatalf("Tier1 pair colocated at %d of %d metros", len(co), len(w.G.Metros))
	}
	// Colocated matches the graph's SharedMetros under zero miss.
	checked := 0
	for _, a := range w.G.ASes[:40] {
		for _, b := range w.G.ASes[:40] {
			if a.Index >= b.Index {
				continue
			}
			want := w.G.SharedMetros(a.Index, b.Index)
			got := db.Colocated(a.Index, b.Index)
			if len(want) != len(got) {
				t.Fatalf("colocated mismatch for (%d,%d): %v vs %v", a.Index, b.Index, got, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatalf("nothing checked")
	}
}

func TestOnlyColocatedAt(t *testing.T) {
	_, db := testDB(t, 0)
	found := false
	for as, fp := range db.footprints {
		if len(fp) != 1 {
			continue
		}
		// Find another single-metro AS at the same metro.
		for bs, fp2 := range db.footprints {
			if bs == as || len(fp2) != 1 || fp2[0] != fp[0] {
				continue
			}
			if !db.OnlyColocatedAt(as, bs, fp[0]) {
				t.Fatalf("single-shared-metro pair not detected")
			}
			if db.OnlyColocatedAt(as, bs, fp[0]+1) {
				t.Fatalf("wrong metro accepted")
			}
			found = true
			break
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no single-metro pair in tiny world")
	}
}

func TestClassReportingBias(t *testing.T) {
	w, db := testDB(t, 0.3)
	rate := func(cls asgraph.Class) float64 {
		rep, tot := 0, 0
		for _, a := range w.G.ASes {
			if a.Class != cls {
				continue
			}
			tot += len(a.Metros)
			rep += len(db.Footprint(a.Index))
		}
		if tot == 0 {
			return -1
		}
		return float64(rep) / float64(tot)
	}
	hg, stub := rate(asgraph.Hypergiant), rate(asgraph.Stub)
	if hg >= 0 && stub >= 0 && hg <= stub {
		t.Fatalf("hypergiants should report better than stubs: %.2f vs %.2f", hg, stub)
	}
}
