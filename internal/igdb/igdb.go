// Package igdb models the public geographic database the paper builds on
// (iGDB [11], itself compiled from PeeringDB, PCH and Hurricane Electric):
// which ASes have physical presence at which metros. Like the real thing,
// the database is *incomplete* — ASes under-report facilities — and the
// paper's iGDB-derived validation dataset inherits that incompleteness
// ("this technique assumes the database is complete, which is difficult to
// verify", Appx. H).
package igdb

import (
	"sort"

	"metascritic/internal/asgraph"
	"metascritic/internal/ipmap"
	"metascritic/internal/netsim"
)

// Database is a snapshot of publicly-reported AS footprints.
type Database struct {
	// footprints[as] = sorted metros the AS reports presence at.
	footprints map[int][]int
	// members[metro] = sorted ASes reporting presence there.
	members map[int][]int
}

// Build derives the public database from a world: every true presence is
// reported with probability (1 - missRate), deterministically per
// (AS, metro) so repeated builds agree. Hypergiants and large ISPs report
// diligently (PeeringDB hygiene); stubs and enterprises under-report.
func Build(w *netsim.World, missRate float64) *Database {
	db := &Database{
		footprints: map[int][]int{},
		members:    map[int][]int{},
	}
	for _, a := range w.G.ASes {
		miss := missRate
		switch a.Class {
		case asgraph.Hypergiant, asgraph.LargeISP:
			// Cloud providers and big ISPs keep records current.
			miss = missRate / 4
		case asgraph.Enterprise, asgraph.Stub:
			miss = missRate * 1.5 // sloppier reporting at the edge
		}
		if miss > 0.9 {
			miss = 0.9
		}
		for _, m := range a.Metros {
			if ipmap.Hash01From(ipmap.Hash3(a.Index, m, 0x16db)) < miss {
				continue // unreported presence
			}
			db.footprints[a.Index] = append(db.footprints[a.Index], m)
			db.members[m] = append(db.members[m], a.Index)
		}
	}
	for as := range db.footprints {
		sort.Ints(db.footprints[as])
	}
	for m := range db.members {
		sort.Ints(db.members[m])
	}
	return db
}

// Footprint returns the metros the AS publicly reports (sorted; nil when
// the AS reports nothing).
func (db *Database) Footprint(as int) []int {
	return db.footprints[as]
}

// Members returns the ASes reporting presence at a metro (sorted).
func (db *Database) Members(metro int) []int {
	return db.members[metro]
}

// Colocated returns the metros where both ASes report presence.
func (db *Database) Colocated(a, b int) []int {
	fa, fb := db.footprints[a], db.footprints[b]
	var out []int
	i, j := 0, 0
	for i < len(fa) && j < len(fb) {
		switch {
		case fa[i] == fb[j]:
			out = append(out, fa[i])
			i++
			j++
		case fa[i] < fb[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// OnlyColocatedAt reports whether the database says the pair overlaps at
// exactly the given metro — the geographic hint the iGDB validation
// dataset is built from (a link between such a pair must be at that metro).
func (db *Database) OnlyColocatedAt(a, b, metro int) bool {
	co := db.Colocated(a, b)
	return len(co) == 1 && co[0] == metro
}

// Coverage returns the fraction of true presences the database captured
// (a diagnostic, computed against the world's ground truth).
func Coverage(db *Database, w *netsim.World) float64 {
	reported, total := 0, 0
	for _, a := range w.G.ASes {
		total += len(a.Metros)
		reported += len(db.footprints[a.Index])
	}
	if total == 0 {
		return 0
	}
	return float64(reported) / float64(total)
}
