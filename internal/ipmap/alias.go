package ipmap

import (
	"sort"
)

// Router-level view: every (AS, metro) presence is one border router whose
// interfaces are the AS's plain interface there plus its IXP-LAN addresses
// at that metro. Alias resolution (Albakour et al., the paper's second
// validation dataset) groups addresses by router; a router holding an IXP
// LAN address reveals that its AS interconnects over that fabric.

// RouterID identifies a border router: the (AS, metro) presence.
type RouterID struct {
	AS    int
	Metro int
}

// RouterOf returns the router owning an interface address.
func (r *Registry) RouterOf(addr Addr) (RouterID, bool) {
	inf, ok := r.info[addr]
	if !ok {
		return RouterID{}, false
	}
	return RouterID{AS: inf.AS, Metro: inf.Metro}, true
}

// Aliases returns all interface addresses of a router, sorted: the plain
// (AS, metro) interface plus any IXP LAN addresses of the AS at IXPs in
// that metro.
func (r *Registry) Aliases(id RouterID) []Addr {
	var out []Addr
	if a, ok := r.ifaceAddr[[2]int{id.AS, id.Metro}]; ok {
		out = append(out, a)
	}
	for _, ixIdx := range r.w.G.ASes[id.AS].IXPs {
		if r.w.G.IXPs[ixIdx].Metro != id.Metro {
			continue
		}
		if a := r.IXPAddrFor(ixIdx, id.AS); a != 0 {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AliasSets enumerates every router with two or more interfaces — the
// output an alias-resolution campaign would produce. Routers are returned
// in deterministic (AS, metro) order.
func (r *Registry) AliasSets() [][]Addr {
	var ids []RouterID
	for _, a := range r.w.G.ASes {
		for _, m := range a.Metros {
			ids = append(ids, RouterID{AS: a.Index, Metro: m})
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].AS != ids[j].AS {
			return ids[i].AS < ids[j].AS
		}
		return ids[i].Metro < ids[j].Metro
	})
	var out [][]Addr
	for _, id := range ids {
		if set := r.Aliases(id); len(set) >= 2 {
			out = append(out, set)
		}
	}
	return out
}

// SameRouter reports whether two addresses belong to the same router (the
// alias test).
func (r *Registry) SameRouter(a, b Addr) bool {
	ra, ok1 := r.RouterOf(a)
	rb, ok2 := r.RouterOf(b)
	return ok1 && ok2 && ra == rb
}
