// Package ipmap plays the role of bdrmapit and the geolocation pipeline
// (Appx. D.1/D.2): it owns the address plan of the simulated Internet and
// resolves traceroute hop addresses back to (AS, metro, IXP) with a small,
// deterministic error rate that models the 1.2–8.9% mapping error the
// paper cites for the real tooling.
//
// Addresses are opaque 32-bit identifiers. Each (AS, metro) presence gets
// an interface block; each IXP gets a shared peering-LAN prefix whose
// addresses are assigned to member ASes — so a hop on an IXP LAN resolves
// to the member AS but is pinned to the IXP's metro, exactly how IXP-prefix
// databases are used in §3.4.
package ipmap

import (
	"fmt"

	"metascritic/internal/netsim"
)

// Addr is an opaque interface address.
type Addr uint32

// String formats the address like a dotted quad for logs.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Info is the resolution result for one address.
type Info struct {
	AS    int // AS owning the interface
	Metro int // metro the interface is located in
	IXP   int // IXP index if the address is on an IXP LAN, else -1
}

// Registry owns the world's address plan.
type Registry struct {
	w *netsim.World
	// ErrorRate is the probability that Resolve mislocates an interface
	// to another metro of the same AS (deterministic per address).
	ErrorRate float64

	ifaceAddr map[[2]int]Addr // (AS, metro) -> interface address
	ixpAddr   map[[2]int]Addr // (IXP, AS) -> peering LAN address
	info      map[Addr]Info
	next      Addr
}

// NewRegistry allocates addresses for every AS presence and IXP membership
// in the world.
func NewRegistry(w *netsim.World) *Registry {
	r := &Registry{
		w:         w,
		ErrorRate: 0.02,
		ifaceAddr: map[[2]int]Addr{},
		ixpAddr:   map[[2]int]Addr{},
		info:      map[Addr]Info{},
		next:      0x0a000001, // 10.0.0.1
	}
	for _, a := range w.G.ASes {
		for _, m := range a.Metros {
			addr := r.alloc()
			r.ifaceAddr[[2]int{a.Index, m}] = addr
			r.info[addr] = Info{AS: a.Index, Metro: m, IXP: -1}
		}
	}
	for _, ix := range w.G.IXPs {
		for _, member := range ix.Members {
			addr := r.alloc()
			r.ixpAddr[[2]int{ix.Index, member}] = addr
			r.info[addr] = Info{AS: member, Metro: ix.Metro, IXP: ix.Index}
		}
	}
	return r
}

func (r *Registry) alloc() Addr {
	a := r.next
	r.next++
	return a
}

// Extend allocates addresses for AS presences and IXP memberships that
// appeared after the registry was built (topology evolution: new-AS
// arrivals and IXP joins). Existing assignments are untouched, so
// already-issued traces keep resolving identically; new blocks are
// allocated in the same deterministic scan order as NewRegistry, making
// the extended plan a pure function of the world. Returns the number of
// addresses allocated.
func (r *Registry) Extend() int {
	added := 0
	for _, a := range r.w.G.ASes {
		for _, m := range a.Metros {
			k := [2]int{a.Index, m}
			if _, ok := r.ifaceAddr[k]; ok {
				continue
			}
			addr := r.alloc()
			r.ifaceAddr[k] = addr
			r.info[addr] = Info{AS: a.Index, Metro: m, IXP: -1}
			added++
		}
	}
	for _, ix := range r.w.G.IXPs {
		for _, member := range ix.Members {
			k := [2]int{ix.Index, member}
			if _, ok := r.ixpAddr[k]; ok {
				continue
			}
			addr := r.alloc()
			r.ixpAddr[k] = addr
			r.info[addr] = Info{AS: member, Metro: ix.Metro, IXP: ix.Index}
			added++
		}
	}
	return added
}

// InterfaceFor returns the interface address of AS as at metro m. When the
// AS has no presence at m (a long-haul interconnect), its closest presence
// is used instead; the zero Addr is returned only for ASes with no
// footprint at all.
func (r *Registry) InterfaceFor(as, m int) Addr {
	if a, ok := r.ifaceAddr[[2]int{as, m}]; ok {
		return a
	}
	// Closest presence by geographic scope.
	bestAddr := Addr(0)
	bestScope := int(^uint(0) >> 1)
	for _, mm := range r.w.G.ASes[as].Metros {
		if s := int(r.w.G.ScopeOfMetros(mm, m)); s < bestScope {
			bestScope = s
			bestAddr = r.ifaceAddr[[2]int{as, mm}]
		}
	}
	return bestAddr
}

// IXPAddrFor returns member's address on the IXP peering LAN, or 0 if the
// AS is not a member.
func (r *Registry) IXPAddrFor(ixp, member int) Addr {
	return r.ixpAddr[[2]int{ixp, member}]
}

// TargetAddr returns a probe-able destination address inside AS as, located
// at metro m when the AS is present there (otherwise its first footprint
// metro). Targets reuse the interface plan: what matters for the pipeline
// is which AS and metro a hit resolves to.
func (r *Registry) TargetAddr(as, m int) Addr {
	if a, ok := r.ifaceAddr[[2]int{as, m}]; ok {
		return a
	}
	metros := r.w.G.ASes[as].Metros
	if len(metros) == 0 {
		return 0
	}
	return r.ifaceAddr[[2]int{as, metros[0]}]
}

// Resolve maps an address back to (AS, metro, IXP), simulating bdrmapit +
// geolocation. With probability ErrorRate (deterministic per address) the
// metro is mislocated to another footprint metro of the same AS; IXP-LAN
// addresses are never mislocated (IXP prefixes are authoritative).
func (r *Registry) Resolve(addr Addr) (Info, bool) {
	inf, ok := r.info[addr]
	if !ok {
		return Info{}, false
	}
	if inf.IXP >= 0 || r.ErrorRate <= 0 {
		return inf, true
	}
	if hash01(uint32(addr)) < r.ErrorRate {
		metros := r.w.G.ASes[inf.AS].Metros
		if len(metros) > 1 {
			// Pick a deterministic wrong metro.
			k := int(hashU32(uint32(addr)^0x9e3779b9)) % len(metros)
			if metros[k] == inf.Metro {
				k = (k + 1) % len(metros)
			}
			inf.Metro = metros[k]
		}
	}
	return inf, true
}

// TrueInfo bypasses the simulated mapping error (used by ground-truth
// bookkeeping, never by the inference pipeline).
func (r *Registry) TrueInfo(addr Addr) (Info, bool) {
	inf, ok := r.info[addr]
	return inf, ok
}

// hashU32 is a deterministic 32-bit mix (xorshift-multiply).
func hashU32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// hash01 maps a value to [0,1) deterministically.
func hash01(x uint32) float64 {
	return float64(hashU32(x)) / float64(1<<32)
}

// Hash2 mixes two ints into a deterministic uint32 (shared helper for the
// traceroute engine's per-flow decisions).
func Hash2(a, b int) uint32 {
	return hashU32(uint32(a)*2654435761 ^ hashU32(uint32(b)))
}

// Hash3 mixes three ints.
func Hash3(a, b, c int) uint32 {
	return hashU32(Hash2(a, b) ^ uint32(c)*0x85ebca6b)
}

// Hash01From maps a uint32 hash to [0,1).
func Hash01From(h uint32) float64 { return float64(h) / float64(1<<32) }
