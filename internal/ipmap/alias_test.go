package ipmap

import (
	"testing"
)

func TestRouterOfAndSameRouter(t *testing.T) {
	w, r := testRegistry(t)
	for _, a := range w.G.ASes[:20] {
		for _, m := range a.Metros {
			addr := r.InterfaceFor(a.Index, m)
			id, ok := r.RouterOf(addr)
			if !ok || id.AS != a.Index || id.Metro != m {
				t.Fatalf("RouterOf(%v) = %+v, %v", addr, id, ok)
			}
			if !r.SameRouter(addr, addr) {
				t.Fatalf("address must alias itself")
			}
		}
	}
	if _, ok := r.RouterOf(Addr(0xdeadbeef)); ok {
		t.Fatalf("unknown address has no router")
	}
}

func TestAliasesIncludeIXPLAN(t *testing.T) {
	w, r := testRegistry(t)
	found := false
	for _, ix := range w.G.IXPs {
		for _, member := range ix.Members {
			id := RouterID{AS: member, Metro: ix.Metro}
			set := r.Aliases(id)
			if len(set) < 2 {
				t.Fatalf("IXP member router should hold >= 2 interfaces: %v", set)
			}
			// The plain interface and the IXP address must alias.
			plain := r.InterfaceFor(member, ix.Metro)
			lan := r.IXPAddrFor(ix.Index, member)
			if !r.SameRouter(plain, lan) {
				t.Fatalf("plain and LAN addresses should share a router")
			}
			found = true
		}
	}
	if !found {
		t.Skip("no IXP members in tiny world")
	}
}

func TestAliasSets(t *testing.T) {
	w, r := testRegistry(t)
	sets := r.AliasSets()
	if len(sets) == 0 {
		t.Skip("no multi-interface routers")
	}
	for _, set := range sets {
		if len(set) < 2 {
			t.Fatalf("alias set with < 2 addresses")
		}
		// Every pair in a set aliases; sets are sorted.
		for k := 1; k < len(set); k++ {
			if set[k] <= set[k-1] {
				t.Fatalf("alias set not sorted")
			}
			if !r.SameRouter(set[0], set[k]) {
				t.Fatalf("set members on different routers")
			}
		}
		// All resolve to the same AS.
		inf0, _ := r.TrueInfo(set[0])
		for _, a := range set[1:] {
			inf, _ := r.TrueInfo(a)
			if inf.AS != inf0.AS {
				t.Fatalf("alias set spans ASes")
			}
		}
	}
	_ = w
}
