package ipmap

import (
	"math"

	"metascritic/internal/asgraph"
)

// RTT model (Appx. D.2): ping latency between a probe's metro and an
// interface grows with geographic scope. The paper geolocates an
// interconnection to a metro when some local probe measures < 3 ms to the
// border interfaces; this file reproduces that machinery, which the hop
// resolver uses to correct rDNS-style mislocations.

// RTTThreshold is the same-metro decision threshold in milliseconds [114].
const RTTThreshold = 3.0

// rttBase is the typical round-trip time per geographic scope (ms).
var rttBase = [asgraph.NumGeoScopes]float64{
	asgraph.SameMetro:     0.8,
	asgraph.SameCountry:   9,
	asgraph.SameContinent: 35,
	asgraph.Elsewhere:     150,
}

// RTT returns the simulated ping round-trip time in milliseconds from a
// probe at fromMetro to the interface addr, and whether the interface
// answers pings at all. The value is deterministic per (metro, addr):
// base latency for the geographic scope times queueing jitter.
func (r *Registry) RTT(fromMetro int, addr Addr) (float64, bool) {
	inf, ok := r.info[addr]
	if !ok {
		return 0, false
	}
	// Interfaces that never answer traceroute probes don't answer pings
	// either (same silent-interface population as the traceroute engine).
	if Hash01From(Hash2(int(addr), 0x51e27)) < 0.12 {
		return 0, false
	}
	scope := r.w.G.ScopeOfMetros(fromMetro, inf.Metro)
	jitter := 1 + 0.6*Hash01From(Hash3(fromMetro, int(addr), 0x277))
	return rttBase[scope] * jitter, true
}

// GeolocateRTT pins addr to a metro using the < 3 ms rule: if any probe
// metro measures an RTT under the threshold, the interface is in that
// metro (the minimum-RTT one when several qualify). ok is false when no
// probe is close enough to decide.
func (r *Registry) GeolocateRTT(addr Addr, probeMetros []int) (metro int, ok bool) {
	best := math.Inf(1)
	metro = -1
	for _, m := range probeMetros {
		rtt, answered := r.RTT(m, addr)
		if !answered {
			continue
		}
		if rtt < RTTThreshold && rtt < best {
			best = rtt
			metro = m
		}
	}
	return metro, metro >= 0
}

// RefinedResolver returns a hop-resolution function that cross-checks the
// base resolver (bdrmapit + rDNS analog) against RTT geolocation from the
// given probe metros: when a sub-3ms probe pins the interface to a
// different metro than the base resolution, the RTT wins (Appx. D.2's
// precedence: IXP prefix > RTT constraint > rDNS hints).
func (r *Registry) RefinedResolver(probeMetros []int) func(Addr) (Info, bool) {
	metros := append([]int(nil), probeMetros...)
	return func(a Addr) (Info, bool) {
		inf, ok := r.Resolve(a)
		if !ok {
			return inf, false
		}
		if inf.IXP >= 0 {
			return inf, true // IXP prefixes are authoritative
		}
		if m, pinned := r.GeolocateRTT(a, metros); pinned && m != inf.Metro {
			inf.Metro = m
		}
		return inf, true
	}
}
