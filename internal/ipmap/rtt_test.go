package ipmap

import (
	"testing"

	"metascritic/internal/netsim"
)

func TestRTTScopeOrdering(t *testing.T) {
	w, r := testRegistry(t)
	// Pick an AS present at a metro; ping it from same metro, same
	// country, elsewhere: RTTs must be ordered by scope.
	ams := w.G.MetroOfName("Amsterdam").Index
	rot := w.G.MetroOfName("Rotterdam").Index
	syd := w.G.MetroOfName("Sydney").Index
	var addr Addr
	for _, ai := range w.G.Metros[ams].Members {
		a := r.InterfaceFor(ai, ams)
		if _, answered := r.RTT(ams, a); answered {
			addr = a
			break
		}
	}
	if addr == 0 {
		t.Skip("no pingable interface")
	}
	same, _ := r.RTT(ams, addr)
	country, _ := r.RTT(rot, addr)
	far, _ := r.RTT(syd, addr)
	if !(same < country && country < far) {
		t.Fatalf("RTT ordering violated: %.1f %.1f %.1f", same, country, far)
	}
	if same >= RTTThreshold {
		t.Fatalf("same-metro RTT %.2f above threshold", same)
	}
	// Deterministic.
	same2, _ := r.RTT(ams, addr)
	if same != same2 {
		t.Fatalf("RTT not deterministic")
	}
}

func TestRTTUnknownAddr(t *testing.T) {
	_, r := testRegistry(t)
	if _, ok := r.RTT(0, Addr(0xdeadbeef)); ok {
		t.Fatalf("unknown address should not answer pings")
	}
}

func TestGeolocateRTT(t *testing.T) {
	w, r := testRegistry(t)
	ams := w.G.MetroOfName("Amsterdam").Index
	all := make([]int, len(w.G.Metros))
	for i := range all {
		all[i] = i
	}
	pinned, missed := 0, 0
	for _, ai := range w.G.Metros[ams].Members {
		addr := r.InterfaceFor(ai, ams)
		m, ok := r.GeolocateRTT(addr, all)
		if !ok {
			missed++ // silent interface: undecidable
			continue
		}
		pinned++
		if m != ams {
			t.Fatalf("interface at Amsterdam pinned to metro %d", m)
		}
	}
	if pinned == 0 {
		t.Fatalf("nothing pinned")
	}
	// Without a local probe, geolocation must abstain (no metro within
	// 3ms).
	addr := r.InterfaceFor(w.G.Metros[ams].Members[0], ams)
	far := []int{w.G.MetroOfName("Sydney").Index, w.G.MetroOfName("Tokyo").Index}
	if _, ok := r.GeolocateRTT(addr, far); ok {
		t.Fatalf("distant probes should not pin a metro")
	}
}

func TestRefinedResolverCorrectsMislocations(t *testing.T) {
	w := netsim.Generate(netsim.Config{Seed: 2, Metros: netsim.DefaultMetros(0.1)})
	r := NewRegistry(w)
	r.ErrorRate = 0.2 // aggressive base error to give RTT work to do
	all := make([]int, len(w.G.Metros))
	for i := range all {
		all[i] = i
	}
	refined := r.RefinedResolver(all)
	baseWrong, refinedWrong, total := 0, 0, 0
	for _, a := range w.G.ASes {
		for _, m := range a.Metros {
			addr := r.InterfaceFor(a.Index, m)
			truth, _ := r.TrueInfo(addr)
			base, _ := r.Resolve(addr)
			ref, ok := refined(addr)
			if !ok {
				t.Fatalf("refined resolver failed on known address")
			}
			if ref.AS != truth.AS {
				t.Fatalf("refinement must not change the AS")
			}
			total++
			if base.Metro != truth.Metro {
				baseWrong++
			}
			if ref.Metro != truth.Metro {
				refinedWrong++
			}
		}
	}
	if baseWrong == 0 {
		t.Skip("error model produced no mislocations at this size")
	}
	if refinedWrong >= baseWrong {
		t.Fatalf("RTT refinement did not help: %d vs %d wrong of %d", refinedWrong, baseWrong, total)
	}
}
