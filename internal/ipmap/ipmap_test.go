package ipmap

import (
	"math/rand"
	"testing"

	"metascritic/internal/netsim"
)

func testRegistry(t *testing.T) (*netsim.World, *Registry) {
	t.Helper()
	w := netsim.Generate(netsim.Config{Seed: 2, Metros: netsim.DefaultMetros(0.1)})
	return w, NewRegistry(w)
}

func TestInterfaceAllocationAndResolve(t *testing.T) {
	w, r := testRegistry(t)
	r.ErrorRate = 0 // exact resolution for this test
	for _, a := range w.G.ASes {
		for _, m := range a.Metros {
			addr := r.InterfaceFor(a.Index, m)
			if addr == 0 {
				t.Fatalf("AS %d metro %d has no interface", a.Index, m)
			}
			inf, ok := r.Resolve(addr)
			if !ok {
				t.Fatalf("unresolvable address %v", addr)
			}
			if inf.AS != a.Index || inf.Metro != m || inf.IXP != -1 {
				t.Fatalf("Resolve(%v) = %+v, want AS %d metro %d", addr, inf, a.Index, m)
			}
		}
	}
}

func TestAddressesUnique(t *testing.T) {
	_, r := testRegistry(t)
	seen := map[Addr]bool{}
	for _, a := range r.ifaceAddr {
		if seen[a] {
			t.Fatalf("duplicate interface address %v", a)
		}
		seen[a] = true
	}
	for _, a := range r.ixpAddr {
		if seen[a] {
			t.Fatalf("duplicate IXP address %v", a)
		}
		seen[a] = true
	}
}

func TestIXPAddresses(t *testing.T) {
	w, r := testRegistry(t)
	found := false
	for _, ix := range w.G.IXPs {
		for _, member := range ix.Members {
			addr := r.IXPAddrFor(ix.Index, member)
			if addr == 0 {
				t.Fatalf("member %d of IXP %d has no LAN address", member, ix.Index)
			}
			inf, ok := r.Resolve(addr)
			if !ok || inf.IXP != ix.Index || inf.AS != member || inf.Metro != ix.Metro {
				t.Fatalf("IXP resolve %+v for ixp %d member %d", inf, ix.Index, member)
			}
			found = true
		}
	}
	if !found {
		t.Skip("no IXP members in tiny world")
	}
	if r.IXPAddrFor(0, -1) != 0 {
		t.Fatalf("non-member should get zero address")
	}
}

func TestInterfaceForFallsBackToClosestPresence(t *testing.T) {
	w, r := testRegistry(t)
	// Find an AS absent from some metro.
	for _, a := range w.G.ASes {
		if len(a.Metros) == len(w.G.Metros) {
			continue
		}
		var missing int = -1
		present := map[int]bool{}
		for _, m := range a.Metros {
			present[m] = true
		}
		for m := range w.G.Metros {
			if !present[m] {
				missing = m
				break
			}
		}
		addr := r.InterfaceFor(a.Index, missing)
		if addr == 0 {
			t.Fatalf("fallback returned zero address")
		}
		inf, _ := r.TrueInfo(addr)
		if inf.AS != a.Index {
			t.Fatalf("fallback resolved to wrong AS")
		}
		if !present[inf.Metro] {
			t.Fatalf("fallback metro %d not in footprint", inf.Metro)
		}
		return
	}
	t.Skip("every AS is global in this world")
}

func TestTargetAddr(t *testing.T) {
	w, r := testRegistry(t)
	a := w.G.ASes[len(w.G.ASes)-1]
	addr := r.TargetAddr(a.Index, a.Metros[0])
	inf, ok := r.TrueInfo(addr)
	if !ok || inf.AS != a.Index || inf.Metro != a.Metros[0] {
		t.Fatalf("TargetAddr resolve %+v", inf)
	}
}

func TestResolveErrorRateDeterministicAndBounded(t *testing.T) {
	w, r := testRegistry(t)
	r.ErrorRate = 0.05
	wrong, total := 0, 0
	for _, a := range w.G.ASes {
		for _, m := range a.Metros {
			addr := r.InterfaceFor(a.Index, m)
			inf1, _ := r.Resolve(addr)
			inf2, _ := r.Resolve(addr)
			if inf1 != inf2 {
				t.Fatalf("Resolve not deterministic for %v", addr)
			}
			truth, _ := r.TrueInfo(addr)
			if inf1.AS != truth.AS {
				t.Fatalf("error model must not change the AS")
			}
			total++
			if inf1.Metro != truth.Metro {
				wrong++
				// Mislocated metro must still be in the AS footprint.
				if !w.G.ASes[a.Index].HasMetro(inf1.Metro) {
					t.Fatalf("mislocated outside footprint")
				}
			}
		}
	}
	rate := float64(wrong) / float64(total)
	if rate > 0.12 {
		t.Fatalf("error rate %.3f too high for nominal 0.05", rate)
	}
}

func TestResolveUnknown(t *testing.T) {
	_, r := testRegistry(t)
	if _, ok := r.Resolve(Addr(0xdeadbeef)); ok {
		t.Fatalf("unknown address should not resolve")
	}
	if _, ok := r.TrueInfo(Addr(1)); ok {
		t.Fatalf("address 1 should not exist")
	}
}

func TestAddrString(t *testing.T) {
	if s := Addr(0x0a000001).String(); s != "10.0.0.1" {
		t.Fatalf("Addr string %q", s)
	}
}

func TestHashHelpers(t *testing.T) {
	if Hash2(1, 2) == Hash2(2, 1) {
		t.Fatalf("Hash2 should be order-sensitive")
	}
	if Hash2(1, 2) != Hash2(1, 2) || Hash3(1, 2, 3) != Hash3(1, 2, 3) {
		t.Fatalf("hashes must be deterministic")
	}
	if Hash3(1, 2, 3) == Hash3(1, 2, 4) {
		t.Fatalf("Hash3 should depend on the third argument")
	}
	v := Hash01From(Hash2(5, 9))
	if v < 0 || v >= 1 {
		t.Fatalf("Hash01From out of range: %v", v)
	}
	// Rough uniformity sanity check.
	n, below := 10000, 0
	for i := 0; i < n; i++ {
		if Hash01From(Hash2(i, 77)) < 0.5 {
			below++
		}
	}
	if below < 4500 || below > 5500 {
		t.Fatalf("hash distribution skewed: %d/10000 below 0.5", below)
	}
}

// TestExtendAfterEvolve pins the streaming contract: after a churn batch
// adds ASes and IXP memberships, Extend allocates exactly the missing
// blocks, keeps every pre-existing assignment byte-identical, and the
// extension is deterministic (a replica world extends to the same plan).
func TestExtendAfterEvolve(t *testing.T) {
	mkWorld := func() *netsim.World {
		return netsim.Generate(netsim.Config{Seed: 2, Metros: netsim.DefaultMetros(0.1)})
	}
	w := mkWorld()
	r := NewRegistry(w)
	before := map[[2]int]Addr{}
	for k, a := range r.ifaceAddr {
		before[k] = a
	}
	spec := netsim.EvolveSpec{LinkDowns: 5, LinkUps: 5, NewASes: 3, IXPJoins: 4, Workers: 2}
	batch, err := w.Evolve(rand.New(rand.NewSource(6)), spec)
	if err != nil {
		t.Fatalf("Evolve: %v", err)
	}
	added := r.Extend()
	if added == 0 {
		t.Fatal("Extend allocated nothing after arrivals and IXP joins")
	}
	for k, a := range before {
		if r.ifaceAddr[k] != a {
			t.Fatalf("existing assignment %v changed: %v -> %v", k, a, r.ifaceAddr[k])
		}
	}
	for _, a := range w.G.ASes {
		for _, m := range a.Metros {
			if _, ok := r.ifaceAddr[[2]int{a.Index, m}]; !ok {
				t.Fatalf("AS %d metro %d unaddressed after Extend", a.Index, m)
			}
		}
	}
	if r.Extend() != 0 {
		t.Fatal("second Extend allocated more addresses")
	}

	// A replica applying the same batch extends to the identical plan.
	w2 := mkWorld()
	r2 := NewRegistry(w2)
	if err := w2.Apply(batch); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	r2.Extend()
	if len(r2.ifaceAddr) != len(r.ifaceAddr) || len(r2.ixpAddr) != len(r.ixpAddr) {
		t.Fatalf("replica plan sizes differ: %d/%d vs %d/%d",
			len(r2.ifaceAddr), len(r2.ixpAddr), len(r.ifaceAddr), len(r.ixpAddr))
	}
	for k, a := range r.ifaceAddr {
		if r2.ifaceAddr[k] != a {
			t.Fatalf("replica interface %v = %v, want %v", k, r2.ifaceAddr[k], a)
		}
	}
	for k, a := range r.ixpAddr {
		if r2.ixpAddr[k] != a {
			t.Fatalf("replica IXP addr %v = %v, want %v", k, r2.ixpAddr[k], a)
		}
	}
}
