// Package rank implements the iterative effective-rank estimation of §3.2:
// starting from a target rank of 1, each round holds out a few observed
// entries per row, tops rows up with targeted measurements until they hold
// at least the candidate rank's worth of entries, scores the completion by
// MSE on the holdout, and stops once more rank stops helping — returning
// the rank with the lowest MSE, which Appx. E.5 shows recovers the true
// effective rank in controlled settings.
package rank

import (
	"fmt"
	"math"
	"math/rand"

	"metascritic/internal/als"
	"metascritic/internal/mat"
)

// TopUpFunc asks the measurement layer to raise the observed-entry count of
// the rows where need[i] > 0 by up to need[i] entries each (by issuing
// targeted traceroutes, or by querying the oracle in controlled runs). It
// must update the E/mask the estimator was given and return the number of
// entries actually added.
type TopUpFunc func(need []int) int

// Config tunes the estimation loop.
type Config struct {
	// MaxRank caps the candidate rank.
	MaxRank int
	// Patience is the number of consecutive non-improving rounds before
	// stopping.
	Patience int
	// HoldoutPerRow is the number of entries removed per row each round
	// (the paper uses 3).
	HoldoutPerRow int
	// Lambda, FeatureWeight and Iterations configure the inner ALS.
	Lambda        float64
	FeatureWeight float64
	Iterations    int
	// MinImprove is the relative MSE improvement below which a round
	// counts as non-improving.
	MinImprove float64
	// HoldoutDraws averages the MSE over several independent holdout
	// draws per round, denoising the stopping decision on small metros.
	HoldoutDraws int
	// MinEvaluated is the minimum number of scored holdout entries for a
	// round to be trusted as a new best (0 = adaptive: half the first
	// round's evaluated count, at least 20). Rounds below it count as
	// non-improving: once most rows fall below the candidate rank, the
	// surviving holdout population shrinks and skews toward easy rows,
	// making its MSE incomparable with earlier rounds.
	MinEvaluated int
	// ColdStart disables warm-starting: every rank candidate re-initializes
	// its ALS factors from the seeded random draw, exactly as the original
	// (pre-warm-start) loop did. The default (false) carries rank r's
	// factors into rank r+1, padding the new factor dimensions with small
	// seeded noise, so later ranks converge in fewer sweeps. Both paths are
	// deterministic for a fixed Seed; they just converge along different
	// trajectories, so flip this knob to reproduce pre-warm-start results.
	ColdStart bool
	// WarmIterations is the ALS sweep count used for warm-started rank
	// candidates (rank 1, and every candidate when ColdStart is set, always
	// uses the full Iterations). 0 picks max(3, Iterations/2).
	WarmIterations int
	Seed           int64
	// Stop, when non-nil, is polled between rounds; when it returns true
	// the loop aborts and returns the best rank found so far. The pipeline
	// wires context cancellation through it.
	Stop func() bool
}

// Validate rejects configurations that would make the estimation loop
// silently misbehave (non-positive caps, NaN hyperparameters).
func (c Config) Validate() error {
	if c.MaxRank <= 0 {
		return fmt.Errorf("rank: MaxRank must be positive, got %d (use rank.DefaultConfig())", c.MaxRank)
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("rank: Iterations must be positive, got %d", c.Iterations)
	}
	if c.HoldoutPerRow < 0 {
		return fmt.Errorf("rank: HoldoutPerRow must be non-negative, got %d", c.HoldoutPerRow)
	}
	if math.IsNaN(c.Lambda) || c.Lambda < 0 {
		return fmt.Errorf("rank: Lambda must be a non-negative number, got %v", c.Lambda)
	}
	if math.IsNaN(c.FeatureWeight) || c.FeatureWeight < 0 {
		return fmt.Errorf("rank: FeatureWeight must be a non-negative number, got %v", c.FeatureWeight)
	}
	if math.IsNaN(c.MinImprove) {
		return fmt.Errorf("rank: MinImprove must be a number")
	}
	return nil
}

// DefaultConfig returns the settings used in the paper-scale runs.
func DefaultConfig() Config {
	return Config{
		MaxRank:       80,
		Patience:      5,
		HoldoutPerRow: 3,
		Lambda:        0.08,
		FeatureWeight: 0.35,
		Iterations:    10,
		MinImprove:    0.002,
		HoldoutDraws:  3,
		Seed:          1,
	}
}

// Step records one round of the loop.
type Step struct {
	Rank       int
	MSE        float64
	NewEntries int // entries added by targeted measurements this round
	Evaluated  int // holdout entries scored
}

// Result is the outcome of the estimation.
type Result struct {
	Rank    int
	BestMSE float64
	History []Step
}

// Estimate runs the iterative loop over the estimated matrix E/mask (which
// topUp mutates as measurements land). features may be nil.
func Estimate(E *mat.Matrix, mask *mat.Mask, features *mat.Matrix, topUp TopUpFunc, cfg Config) Result {
	if cfg.MaxRank < 1 {
		cfg.MaxRank = 1
	}
	if cfg.Patience < 1 {
		cfg.Patience = 1
	}
	if cfg.HoldoutPerRow < 1 {
		cfg.HoldoutPerRow = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := mask.N()
	minEval := cfg.MinEvaluated

	// The completion problem (per-row observation structure) is built once
	// and reused across every holdout draw and rank candidate; it is only
	// rebuilt after topUp runs, since landed measurements mutate E/mask.
	// Holdout draws are applied as overlay deltas, never as mask clones.
	featArg := features
	if cfg.FeatureWeight <= 0 {
		featArg = nil
	}
	var prob *als.Problem
	var ov *mat.Overlay
	var warm *als.Factors // factors carried from the previous rank
	var hsc holdoutScratch
	need := make([]int, n)

	res := Result{Rank: 1, BestMSE: math.Inf(1)}
	bad := 0
	for r := 1; r <= cfg.MaxRank; r++ {
		if cfg.Stop != nil && cfg.Stop() {
			break
		}
		// Targeted measurements: bring every deficient row up to r
		// observed entries.
		for i := range need {
			need[i] = 0
		}
		total := 0
		for i := 0; i < n; i++ {
			if d := r - mask.RowCount(i); d > 0 {
				need[i] = d
				total += d
			}
		}
		added := 0
		topUpRan := false
		if total > 0 && topUp != nil {
			added = topUp(need)
			topUpRan = true
		}
		if prob == nil || topUpRan {
			prob = als.NewProblem(E, mask, featArg)
			ov = mat.NewOverlay(mask)
		}

		opts := als.Options{
			Rank:          r,
			Lambda:        cfg.Lambda,
			FeatureWeight: cfg.FeatureWeight,
			Iterations:    cfg.Iterations,
			Seed:          cfg.Seed + int64(r),
		}
		init := warm
		if cfg.ColdStart {
			init = nil
		}
		if init != nil {
			// Warm-started candidates start near the previous rank's
			// solution, so they need fewer sweeps to converge.
			opts.Iterations = cfg.WarmIterations
			if opts.Iterations <= 0 {
				opts.Iterations = cfg.Iterations / 2
				if opts.Iterations < 3 {
					opts.Iterations = 3
				}
			}
		}
		// Score the completion on holdout entries whose rows retain at
		// least the candidate rank's worth of entries — an entry is set
		// aside when EITHER endpoint row is deficient (§3.2), since a
		// deficient row on one side already under-determines the entry.
		// Averaging over several draws denoises the stopping rule.
		draws := cfg.HoldoutDraws
		if draws < 1 {
			draws = 1
		}
		var se float64
		cnt := 0
		for d := 0; d < draws; d++ {
			holdout := sampleHoldout(mask, cfg.HoldoutPerRow, rng, &hsc)
			ov.Reset()
			for _, h := range holdout {
				ov.Remove(h[0], h[1])
			}
			completed, factors := prob.CompleteFactors(opts, ov, init)
			warm = factors // the last draw's factors seed rank r+1
			for _, h := range holdout {
				if ov.RowCount(h[0]) < r || ov.RowCount(h[1]) < r {
					continue
				}
				diff := completed.At(h[0], h[1]) - E.At(h[0], h[1])
				se += diff * diff
				cnt++
			}
		}
		mse := math.Inf(1)
		if cnt > 0 {
			mse = se / float64(cnt)
		}
		res.History = append(res.History, Step{Rank: r, MSE: mse, NewEntries: added, Evaluated: cnt})

		if r == 1 && cfg.MinEvaluated == 0 {
			minEval = cnt / 2
			if minEval < 20 {
				minEval = 20
			}
		}
		if cnt >= minEval && mse < res.BestMSE*(1-cfg.MinImprove) {
			res.BestMSE = mse
			res.Rank = r
			bad = 0
		} else {
			bad++
			if bad >= cfg.Patience {
				break
			}
		}
	}
	return res
}

// holdoutScratch carries sampleHoldout's working storage across draws: the
// result buffer, a dense taken-marks table (cleared incrementally from the
// previous draw's picks), and the shuffled row-entries buffer.
type holdoutScratch struct {
	out     [][2]int
	taken   []bool // n*n, marks unordered pairs at a*n+b with a <= b
	entries []int
}

// sampleHoldout picks up to k observed off-diagonal entries per row without
// emptying any row. The returned slice is scratch owned by sc, valid until
// the next call.
func sampleHoldout(mask *mat.Mask, k int, rng *rand.Rand, sc *holdoutScratch) [][2]int {
	n := mask.N()
	if sc.taken == nil {
		sc.taken = make([]bool, n*n)
	}
	// Clear only the marks the previous draw set.
	for _, h := range sc.out {
		sc.taken[h[0]*n+h[1]] = false
	}
	out := sc.out[:0]
	for i := 0; i < n; i++ {
		entries := mask.AppendRowEntries(sc.entries[:0], i)
		sc.entries = entries
		if len(entries) <= k {
			continue // keep sparse rows intact
		}
		rng.Shuffle(len(entries), func(a, b int) { entries[a], entries[b] = entries[b], entries[a] })
		picked := 0
		for _, j := range entries {
			if picked >= k {
				break
			}
			if i == j {
				continue
			}
			a, b := i, j
			if a > b {
				a, b = b, a
			}
			if sc.taken[a*n+b] {
				continue
			}
			sc.taken[a*n+b] = true
			out = append(out, [2]int{a, b})
			picked++
		}
	}
	sc.out = out
	return out
}
