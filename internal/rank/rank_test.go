package rank

import (
	"math"
	"math/rand"
	"testing"

	"metascritic/internal/mat"
)

// oracleWorld is the controlled environment of Appx. E.5: a generated
// symmetric low-rank matrix, a visibility mask, and an oracle that reveals
// entries with a per-entry probability when asked.
type oracleWorld struct {
	truth *mat.Matrix
	E     *mat.Matrix
	mask  *mat.Mask
	prob  *mat.Matrix
	rng   *rand.Rand
	asked int
}

func newOracleWorld(n, r int, noise float64, visible float64, seed int64) *oracleWorld {
	rng := rand.New(rand.NewSource(seed))
	f := mat.New(n, r)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64() / math.Sqrt(float64(r))
	}
	truth := mat.Mul(f, f.T())
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := math.Tanh(truth.At(i, j)) + noise*rng.NormFloat64()
			if v > 1 {
				v = 1
			}
			if v < -1 {
				v = -1
			}
			truth.Set(i, j, v)
			truth.Set(j, i, v)
		}
	}
	w := &oracleWorld{
		truth: truth,
		E:     mat.New(n, n),
		mask:  mat.NewMask(n),
		prob:  mat.New(n, n),
		rng:   rng,
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w.prob.Set(i, j, 0.3+0.7*rng.Float64())
			w.prob.Set(j, i, w.prob.At(i, j))
			if rng.Float64() < visible {
				w.reveal(i, j)
			}
		}
	}
	return w
}

func (w *oracleWorld) reveal(i, j int) {
	w.E.Set(i, j, w.truth.At(i, j))
	w.E.Set(j, i, w.truth.At(j, i))
	w.mask.Set(i, j)
}

// topUp reveals entries for needy rows with the oracle's probabilities.
// Needy rows are overshot by the holdout size: real traceroute batches
// reveal many untargeted entries too, so rows topped to r still hold more
// than r after the holdout removal.
func (w *oracleWorld) topUp(need []int) int {
	n := w.mask.N()
	added := 0
	for i := range need {
		if need[i] > 0 {
			need[i] += 3
		}
		tries := 0
		for need[i] > 0 && tries < 4*need[i]+8 {
			j := w.rng.Intn(n)
			tries++
			if j == i || w.mask.Has(i, j) {
				continue
			}
			w.asked++
			if w.rng.Float64() < w.prob.At(i, j) {
				w.reveal(i, j)
				need[i]--
				added++
			}
		}
	}
	return added
}

func TestEstimateFindsTrueRankControlled(t *testing.T) {
	trueRank := 5
	// Start with sparse visibility so the loop must actually issue
	// targeted oracle queries to top rows up.
	w := newOracleWorld(70, trueRank, 0.02, 0.18, 1)
	cfg := DefaultConfig()
	cfg.MaxRank = 20
	cfg.Iterations = 15
	cfg.FeatureWeight = 0
	res := Estimate(w.E, w.mask, nil, w.topUp, cfg)
	if res.Rank < trueRank-2 || res.Rank > trueRank+4 {
		t.Fatalf("estimated rank %d, want near %d (history %+v)", res.Rank, trueRank, res.History)
	}
	if w.asked == 0 {
		t.Fatalf("no oracle queries issued")
	}
	if len(res.History) < trueRank {
		t.Fatalf("history too short: %d", len(res.History))
	}
}

func TestEstimateStopsEarlyOnPlateau(t *testing.T) {
	w := newOracleWorld(50, 3, 0.02, 0.3, 2)
	cfg := DefaultConfig()
	cfg.MaxRank = 40
	cfg.Patience = 2
	cfg.FeatureWeight = 0
	res := Estimate(w.E, w.mask, nil, w.topUp, cfg)
	if len(res.History) >= 40 {
		t.Fatalf("loop should stop well before MaxRank, ran %d rounds", len(res.History))
	}
}

func TestEstimateMonotoneRankHistory(t *testing.T) {
	w := newOracleWorld(40, 4, 0.05, 0.3, 3)
	res := Estimate(w.E, w.mask, nil, w.topUp, DefaultConfig())
	for k, st := range res.History {
		if st.Rank != k+1 {
			t.Fatalf("history ranks not sequential: %+v", res.History)
		}
		if st.Evaluated < 0 {
			t.Fatalf("negative evaluated count")
		}
	}
}

func TestEstimateNilTopUp(t *testing.T) {
	// Without a measurement layer the loop still works on what is
	// observed.
	w := newOracleWorld(40, 3, 0.02, 0.5, 4)
	cfg := DefaultConfig()
	cfg.MaxRank = 10
	cfg.FeatureWeight = 0
	res := Estimate(w.E, w.mask, nil, nil, cfg)
	if res.Rank < 1 || res.Rank > 10 {
		t.Fatalf("rank %d out of range", res.Rank)
	}
}

func TestEstimateDegenerateConfig(t *testing.T) {
	w := newOracleWorld(20, 2, 0.02, 0.5, 5)
	res := Estimate(w.E, w.mask, nil, nil, Config{})
	if res.Rank != 1 || len(res.History) == 0 {
		t.Fatalf("degenerate config: %+v", res)
	}
}

func TestSampleHoldoutProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 20
	mask := mat.NewMask(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.5 {
				mask.Set(i, j)
			}
		}
	}
	before := mask.Count()
	hold := sampleHoldout(mask, 3, rng, &holdoutScratch{})
	if mask.Count() != before {
		t.Fatalf("sampleHoldout must not mutate the mask")
	}
	seen := map[[2]int]bool{}
	for _, h := range hold {
		if h[0] >= h[1] {
			t.Fatalf("holdout entry not canonical: %v", h)
		}
		if !mask.Has(h[0], h[1]) {
			t.Fatalf("holdout entry not observed")
		}
		if seen[h] {
			t.Fatalf("duplicate holdout entry %v", h)
		}
		seen[h] = true
	}
	// Sparse rows (<= k entries) are never drained: remove-and-check.
	sparse := mat.NewMask(5)
	sparse.Set(0, 1)
	if got := sampleHoldout(sparse, 3, rng, &holdoutScratch{}); len(got) != 0 {
		t.Fatalf("sparse rows should be spared, got %v", got)
	}
}
