package rank

import (
	"math/rand"
	"testing"

	"metascritic/internal/mat"
)

// TestHoldoutSetAsideEitherEndpoint pins the §3.2 set-aside rule: a holdout
// entry is excluded from scoring when EITHER endpoint row retains fewer
// than the candidate rank's worth of entries (the seed implementation
// required BOTH to be deficient, which let half-determined entries skew the
// MSE). The pin replays Estimate's holdout draws with an identical RNG and
// recomputes the expected Evaluated counts under the either-endpoint rule;
// it also checks the world actually exercises asymmetric deficiency, so a
// regression to the both-endpoints rule cannot pass vacuously.
func TestHoldoutSetAsideEitherEndpoint(t *testing.T) {
	w := newOracleWorld(60, 4, 0.02, 0.12, 9)
	cfg := DefaultConfig()
	cfg.MaxRank = 8
	cfg.Patience = 8
	cfg.FeatureWeight = 0
	cfg.HoldoutDraws = 2
	res := Estimate(w.E, w.mask, nil, nil, cfg)

	// Replay: without topUp the estimation loop consumes its RNG only in
	// sampleHoldout, so the same seed reproduces the draws exactly.
	rng := rand.New(rand.NewSource(cfg.Seed))
	ov := mat.NewOverlay(w.mask)
	asymmetric := 0
	for round, step := range res.History {
		r := round + 1
		wantEither, wantBoth := 0, 0
		for d := 0; d < cfg.HoldoutDraws; d++ {
			holdout := sampleHoldout(w.mask, cfg.HoldoutPerRow, rng, &holdoutScratch{})
			ov.Reset()
			for _, h := range holdout {
				ov.Remove(h[0], h[1])
			}
			for _, h := range holdout {
				aDef := ov.RowCount(h[0]) < r
				bDef := ov.RowCount(h[1]) < r
				if !(aDef || bDef) {
					wantEither++
				}
				if !(aDef && bDef) {
					wantBoth++
				}
				if aDef != bDef {
					asymmetric++
				}
			}
		}
		if step.Evaluated != wantEither {
			t.Fatalf("round %d: Evaluated = %d, want %d (either-endpoint rule); both-endpoints rule would give %d",
				r, step.Evaluated, wantEither, wantBoth)
		}
	}
	if asymmetric == 0 {
		t.Fatalf("test world never produced asymmetric deficiency; the pin is vacuous")
	}
}

// TestEstimateWarmStartKnob locks the determinism contract of the sweep:
// the default warm-started path and the ColdStart path are each
// individually deterministic, ColdStart actually changes the trajectory
// (proving the old initialization path is still wired), and both recover
// the planted rank.
func TestEstimateWarmStartKnob(t *testing.T) {
	trueRank := 4
	run := func(cold bool) Result {
		w := newOracleWorld(60, trueRank, 0.02, 0.25, 7)
		cfg := DefaultConfig()
		cfg.MaxRank = 15
		cfg.FeatureWeight = 0
		cfg.ColdStart = cold
		return Estimate(w.E, w.mask, nil, w.topUp, cfg)
	}
	warm1, warm2 := run(false), run(false)
	if warm1.Rank != warm2.Rank || warm1.BestMSE != warm2.BestMSE || len(warm1.History) != len(warm2.History) {
		t.Fatalf("warm-started estimation not deterministic: %+v vs %+v", warm1, warm2)
	}
	for i := range warm1.History {
		if warm1.History[i] != warm2.History[i] {
			t.Fatalf("warm histories diverge at round %d", i)
		}
	}
	cold1, cold2 := run(true), run(true)
	if cold1.Rank != cold2.Rank || cold1.BestMSE != cold2.BestMSE {
		t.Fatalf("cold-started estimation not deterministic")
	}
	for _, res := range []Result{warm1, cold1} {
		if res.Rank < trueRank-2 || res.Rank > trueRank+4 {
			t.Fatalf("estimated rank %d, want near %d", res.Rank, trueRank)
		}
	}
	// The two paths must follow different MSE trajectories (same draws,
	// different factor initialization after rank 1).
	differ := false
	for i := 0; i < len(warm1.History) && i < len(cold1.History); i++ {
		if warm1.History[i].MSE != cold1.History[i].MSE {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatalf("warm and cold paths produced identical trajectories; knob is dead")
	}
}
