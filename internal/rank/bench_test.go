package rank

import (
	"testing"

	"metascritic/internal/benchscale"
)

// benchConfig sizes the estimation loop from METASCRITIC_BENCH_SCALE: at the
// CI trajectory scale (0.05) it runs a 70-AS oracle world with MaxRank 12,
// which keeps the full §3.2 loop (top-up, holdout draws, ALS completions,
// stopping rule) in play while finishing in seconds.
func benchConfig() (n int, cfg Config) {
	cfg = DefaultConfig()
	cfg.MaxRank = benchscale.N(240, 12)
	cfg.FeatureWeight = 0
	return benchscale.N(1400, 70), cfg
}

func BenchmarkRankEstimate(b *testing.B) {
	n, cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// topUp mutates the world, so every iteration needs a fresh one.
		w := newOracleWorld(n, 5, 0.02, 0.18, 1)
		b.StartTimer()
		res := Estimate(w.E, w.mask, nil, w.topUp, cfg)
		if res.Rank < 1 {
			b.Fatalf("rank %d", res.Rank)
		}
	}
}
