package forensics

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"metascritic"
	"metascritic/internal/bgp"
)

func TestAnalyze(t *testing.T) {
	w := metascritic.GenerateWorld(metascritic.WorldConfig{
		Seed:   5,
		Metros: metascritic.DefaultMetros(0.1),
	})
	g := w.G
	vm, am := g.MetroOfName("Sydney"), g.MetroOfName("Tokyo")
	if vm == nil || am == nil {
		t.Fatalf("default metros missing Sydney/Tokyo")
	}
	p := metascritic.NewPipeline(w)
	p.SeedPublicMeasurements(8, rand.New(rand.NewSource(5)))
	cfg := metascritic.DefaultConfig()
	cfg.MaxMeasurements = 800
	cfg.BatchSize = 60
	cfg.Rank.MaxRank = 6
	cfg.Rank.Iterations = 3
	res, err := p.Snapshot().Run(context.Background(), vm.Index, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	rep, err := Analyze(w, vm, am, []*metascritic.Result{res}, 0.5)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if rep.TotalASes != g.N() || rep.ActualHijacked <= 0 || rep.ActualHijacked >= g.N() {
		t.Fatalf("implausible ground truth: %+v", rep)
	}
	for _, o := range []Outcome{rep.Public, rep.Extended} {
		if o.Accuracy < 0 || o.Accuracy > 1 {
			t.Fatalf("accuracy out of range: %+v", rep)
		}
	}
	if rep.ExtraLinks <= 0 {
		t.Fatalf("the result contributed no links beyond the public mesh: %+v", rep)
	}
	if rep.Extended.Accuracy < rep.Public.Accuracy-0.1 {
		t.Fatalf("extended topology markedly worse than public view: %+v", rep)
	}

	// Determinism: same inputs, same report.
	rep2, err := Analyze(w, vm, am, []*metascritic.Result{res}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Fatalf("Analyze is not deterministic")
	}
}

func TestPredictionTopologySkipsTransitPairs(t *testing.T) {
	w := metascritic.GenerateWorld(metascritic.WorldConfig{
		Seed:   6,
		Metros: metascritic.DefaultMetros(0.1),
	})
	g := w.G
	pub := PublicMesh(g)
	if len(pub) == 0 {
		t.Fatalf("no Tier-1 mesh in the public view")
	}
	topo := PredictionTopology(g, pub)
	if topo == nil {
		t.Fatal("nil topology")
	}
	// The topology must carry a usable routing state: a hijack from any
	// seed reaches someone.
	vm := g.MetroOfName("Sydney")
	seeds := Seeds(g, vm, 2)
	if len(seeds) == 0 {
		t.Fatalf("no seeds at Sydney")
	}
	flags := topo.SimulateHijack(seeds, seeds[:1])
	reached := 0
	for _, f := range flags {
		if f&(bgp.FlagVictim|bgp.FlagAttacker) != 0 {
			reached++
		}
	}
	if reached == 0 {
		t.Fatalf("hijack simulation reached nobody")
	}
}
