// Package forensics implements the paper's §6 application — predicting a
// prefix hijack's blast radius — as a library shared by cmd/hijackmon and
// the serving daemon's /v1/hijack endpoint. It builds prediction
// topologies (public BGP view, optionally extended with metAScritic's
// measured and inferred links), picks announcement seeds, and scores a
// predicted catchment against the simulated ground truth.
package forensics

import (
	"fmt"
	"sort"

	"metascritic"
	"metascritic/internal/asgraph"
	"metascritic/internal/bgp"
)

// PublicMesh returns the peering links any public collector sees: the
// Tier-1 full mesh.
func PublicMesh(g *asgraph.Graph) []asgraph.Pair {
	var pub []asgraph.Pair
	for a := range g.Peers {
		if g.ASes[a].Class != asgraph.Tier1 {
			continue
		}
		for _, b32 := range g.Peers[a] {
			b := int(b32)
			if a < b && g.ASes[b].Class == asgraph.Tier1 {
				pub = append(pub, asgraph.MakePair(a, b))
			}
		}
	}
	sort.Slice(pub, func(i, j int) bool {
		if pub[i].A != pub[j].A {
			return pub[i].A < pub[j].A
		}
		return pub[i].B < pub[j].B
	})
	return pub
}

// PredictionTopology builds a BGP topology from the known c2p hierarchy
// plus the given peering links, dropping duplicates and pairs already
// related by transit.
func PredictionTopology(g *asgraph.Graph, peers []asgraph.Pair) *bgp.Topology {
	t := bgp.NewTopology(g.N())
	for c := range g.Providers {
		for _, p := range g.Providers[c] {
			t.AddC2P(c, int(p))
		}
	}
	added := map[asgraph.Pair]bool{}
	for _, pr := range peers {
		if added[pr] || g.HasProvider(pr.A, pr.B) || g.HasProvider(pr.B, pr.A) {
			continue
		}
		added[pr] = true
		t.AddP2P(pr.A, pr.B)
	}
	return t
}

// MeasuredLinks returns the peering links a result supports at confidence
// thr (measured links plus inferred links rated above the threshold).
func MeasuredLinks(res *metascritic.Result, thr float64) []asgraph.Pair {
	prog := metascritic.NewProgressiveTopology(res)
	links := prog.AtConfidence(thr)
	out := make([]asgraph.Pair, len(links))
	for i, l := range links {
		out[i] = l.Pair
	}
	return out
}

// Seeds picks announcement origins at a metro: up to max transit-ish
// members (the ASes whose announcements actually propagate).
func Seeds(g *asgraph.Graph, metro *asgraph.Metro, max int) []int {
	var out []int
	for _, ai := range metro.Members {
		c := g.ASes[ai].Class
		if (c == asgraph.Transit || c == asgraph.LargeISP) && len(out) < max {
			out = append(out, ai)
		}
	}
	return out
}

// Outcome compares a predicted catchment against the ground truth.
type Outcome struct {
	// Accuracy is the fraction of ASes whose hijacked/clean verdict the
	// prediction got right (predicting both routes counts as right when
	// the AS is actually hijacked).
	Accuracy float64 `json:"accuracy"`
	// PredictedHijacked is the number of ASes the prediction routes to
	// the attacker.
	PredictedHijacked int `json:"predicted_hijacked"`
}

// Score runs the hijack on the prediction topology and scores it against
// the actual catchment flags (from the ground-truth topology's
// SimulateHijack).
func Score(t *bgp.Topology, actual []uint8, victims, attackers []int) Outcome {
	pred := t.SimulateHijack(victims, attackers)
	good, hijacked := 0, 0
	for as := range actual {
		actHij := actual[as]&bgp.FlagAttacker != 0
		predHij := pred[as]&bgp.FlagAttacker != 0
		predLegit := pred[as]&bgp.FlagVictim != 0
		if predHij == actHij || (predHij && predLegit) {
			good++
		}
		if predHij {
			hijacked++
		}
	}
	return Outcome{Accuracy: float64(good) / float64(len(actual)), PredictedHijacked: hijacked}
}

// Report is a full hijack forensics comparison: ground truth vs. the
// public-view prediction vs. the metAScritic-extended prediction.
type Report struct {
	VictimMetro    string  `json:"victim_metro"`
	AttackerMetro  string  `json:"attacker_metro"`
	VictimASNs     []int   `json:"victim_asns"`
	AttackerASNs   []int   `json:"attacker_asns"`
	Threshold      float64 `json:"threshold"`
	ActualHijacked int     `json:"actual_hijacked"`
	TotalASes      int     `json:"total_ases"`
	Public         Outcome `json:"public"`
	Extended       Outcome `json:"extended"`
	// ExtraLinks is the number of metAScritic links added on top of the
	// public mesh for the extended prediction.
	ExtraLinks int `json:"extra_links"`
}

// Analyze runs the full §6 comparison for a victim/attacker metro pair,
// extending the public topology with every provided result's links at
// confidence thr. results may cover any subset of metros (typically the
// victim's and the attacker's).
func Analyze(w *metascritic.World, victim, attacker *asgraph.Metro, results []*metascritic.Result, thr float64) (*Report, error) {
	g := w.G
	vict := Seeds(g, victim, 2)
	att := Seeds(g, attacker, 2)
	if len(vict) == 0 || len(att) == 0 {
		return nil, fmt.Errorf("forensics: no transit seeds at metro %s or %s", victim.Name, attacker.Name)
	}

	truth := bgp.FromGraph(g)
	actual := truth.SimulateHijack(vict, att)
	actualHijacked := 0
	for _, f := range actual {
		if f&bgp.FlagAttacker != 0 {
			actualHijacked++
		}
	}

	pub := PublicMesh(g)
	ext := append([]asgraph.Pair(nil), pub...)
	for _, res := range results {
		if res != nil {
			ext = append(ext, MeasuredLinks(res, thr)...)
		}
	}

	rep := &Report{
		VictimMetro:    victim.Name,
		AttackerMetro:  attacker.Name,
		VictimASNs:     asns(g, vict),
		AttackerASNs:   asns(g, att),
		Threshold:      thr,
		ActualHijacked: actualHijacked,
		TotalASes:      g.N(),
		Public:         Score(PredictionTopology(g, pub), actual, vict, att),
		Extended:       Score(PredictionTopology(g, ext), actual, vict, att),
		ExtraLinks:     len(ext) - len(pub),
	}
	return rep, nil
}

func asns(g *asgraph.Graph, idx []int) []int {
	out := make([]int, len(idx))
	for i, x := range idx {
		out[i] = g.ASes[x].ASN
	}
	return out
}
