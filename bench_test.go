package metascritic_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §3 for the index). Each benchmark drives the
// corresponding experiment against a shared synthetic world and reports
// the headline quantity as a custom metric; run with
//
//	go test -bench=. -benchmem
//
// Scale with METASCRITIC_BENCH_SCALE (default 0.15; 1.0 approaches the
// paper's metro sizes and takes correspondingly longer).

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"metascritic/experiments"
)

var (
	benchOnce sync.Once
	benchH    *experiments.Harness
)

func benchHarness(b *testing.B) *experiments.Harness {
	b.Helper()
	benchOnce.Do(func() {
		scale := 0.15
		if s := os.Getenv("METASCRITIC_BENCH_SCALE"); s != "" {
			if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
				scale = v
			}
		}
		benchH = experiments.NewHarness(experiments.Options{
			Scale:  scale,
			Seed:   1,
			Budget: int(40000 * scale),
		})
		// Pre-run the six study metros so per-benchmark timings measure
		// the experiment itself, not the shared pipeline warm-up.
		benchH.RunPrimaries()
	})
	return benchH
}

func BenchmarkFig1_FeatureCorrelations(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, tbl := experiments.Fig1(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			var cloud, t1 float64
			for _, r := range rows {
				for _, c := range r.WithClouds {
					cloud += c
				}
				t1 += r.WithTier1
			}
			b.ReportMetric(cloud/float64(len(rows)*3), "cloud-copeering-r")
			b.ReportMetric(t1/float64(len(rows)), "tier1-copeering-r")
		}
	}
}

func BenchmarkFig3_PrecisionRecall(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, tbl := experiments.Fig3(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			var auprc float64
			for _, r := range rows {
				auprc += r.Stratified.AUPRC
			}
			b.ReportMetric(auprc/float64(len(rows)), "mean-stratified-AUPRC")
		}
	}
}

func BenchmarkTable2_SelectionStrategies(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs, tbl := experiments.Table2(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			for _, r := range runs {
				if r.Name == "metAScritic" {
					b.ReportMetric(r.FScore, "metascritic-F")
				}
			}
		}
	}
}

func BenchmarkFig4_ProbCalibration(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, tbl := experiments.Fig4(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			b.ReportMetric(res.KSInformative, "KS-informative")
		}
	}
}

func BenchmarkFig5_RatingsVsCoverage(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, tbl := experiments.Fig5(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			if len(rows) == 3 {
				b.ReportMetric(rows[0].MeanAbs-rows[2].MeanAbs, "vp-vs-novp-rating-gap")
			}
		}
	}
}

func BenchmarkFig6_VPCoverage(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, tbl := experiments.Fig6(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			var worst float64
			for _, r := range rows {
				if r.None > worst {
					worst = r.None
				}
			}
			b.ReportMetric(worst, "worst-metro-no-vp-frac")
		}
	}
}

func BenchmarkFig7_HijackPrediction(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, tbl := experiments.Fig7(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			b.ReportMetric(res.MeanBGP, "accuracy-bgp")
			b.ReportMetric(res.MeanInferredHi, "accuracy-inferred")
		}
	}
}

func BenchmarkTable3_Flattening(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, tbl := experiments.Table3(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			var drop float64
			n := 0
			for _, r := range rows {
				if r.Metro != "Global" {
					drop += r.ProvBGP - r.ProvInf
					n++
				}
			}
			b.ReportMetric(drop/float64(n), "provider-frac-drop")
		}
	}
}

func BenchmarkTable4_FullEvaluation(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, tbl := experiments.Table4(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			var p, r float64
			for _, row := range rows {
				p += row.TruthPrecision
				r += row.TruthRecall
			}
			b.ReportMetric(p/float64(len(rows)), "mean-truth-precision")
			b.ReportMetric(r/float64(len(rows)), "mean-truth-recall")
		}
	}
}

func BenchmarkFig8_ROCClassifiers(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, tbl := experiments.Fig8(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			var ms, rf, ncf float64
			for _, r := range rows {
				ms += r.MetascriticAUC
				rf += r.RFAUC
				ncf += r.NCFAUC
			}
			n := float64(len(rows))
			b.ReportMetric(ms/n, "AUC-metascritic")
			b.ReportMetric(rf/n, "AUC-randomforest")
			b.ReportMetric(ncf/n, "AUC-ncf")
		}
	}
}

func BenchmarkFig9_Transferability(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, tbl := experiments.Fig9(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			b.ReportMetric(res.FracAll, "all-locations-frac")
			b.ReportMetric(res.FracHalf, "half-locations-frac")
		}
	}
}

func BenchmarkFig9M_MeasuredTransferability(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, tbl := experiments.Fig9Measured(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			b.ReportMetric(res.FracAll, "all-locations-frac")
			b.ReportMetric(res.FracHalf, "half-locations-frac")
		}
	}
}

func BenchmarkFig10_RankRecovery(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, tbl := experiments.Fig10(h, 60, 5)
		if i == 0 {
			b.Log("\n" + tbl.String())
			b.ReportMetric(float64(res.Series[0].BestRank), "recovered-rank")
			b.ReportMetric(float64(res.TrueRank), "true-rank")
		}
	}
}

func BenchmarkFig11_BatchDiscovery(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, tbl := experiments.Fig11(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			if ms := series["metAScritic"]; len(ms) > 0 {
				b.ReportMetric(float64(ms[len(ms)-1].Entries), "final-entries")
			}
		}
	}
}

func BenchmarkFig12_EntriesVsAccuracy(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buckets, tbl := experiments.Fig12(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			if len(buckets) > 0 {
				b.ReportMetric(buckets[len(buckets)-1].Accuracy, "top-bucket-accuracy")
			}
		}
	}
}

func BenchmarkFig13_ShapleySummary(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		summary, _, tbl := experiments.Fig13And14(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			if len(summary) > 0 {
				b.ReportMetric(summary[0].MeanAbsPhi, "top-feature-mean-abs-phi")
			}
		}
	}
}

func BenchmarkFig14_ShapleyForce(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, force, _ := experiments.Fig13And14(h)
		if i == 0 {
			b.Log("\nFig. 14 force explanation:\n" + force)
		}
	}
}

func BenchmarkFig15_ThresholdSweep(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, tbl := experiments.Fig15(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			for _, p := range pts {
				if p.Threshold > 0.89 && p.Threshold < 0.91 {
					b.ReportMetric(p.Precision, "precision-at-0.9")
				}
			}
		}
	}
}

func BenchmarkTable5_ClassPairLinks(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts, tbl := experiments.Table5(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			total := 0
			for _, c := range counts {
				total += c[1]
			}
			b.ReportMetric(float64(total), "links-added")
		}
	}
}

func BenchmarkFig16_PerMetroLinks(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, tbl := experiments.Fig16(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			total := 0
			for _, r := range rows {
				total += r.Measured + r.Inferred
			}
			b.ReportMetric(float64(total), "total-links")
		}
	}
}

func BenchmarkE3_Efficiency(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, tbl := experiments.E3(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			var ratio float64
			for _, r := range rows {
				ratio += r.Ratio
			}
			b.ReportMetric(ratio/float64(len(rows)), "mean-budget-ratio")
		}
	}
}

func BenchmarkAblation_Epsilon(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, tbl := experiments.AblationEpsilon(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			for _, r := range rows {
				if r.Epsilon == 0.1 {
					b.ReportMetric(r.FScore, "F-at-eps-0.1")
				}
			}
		}
	}
}

func BenchmarkAblation_FeatureWeight(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, tbl := experiments.AblationFeatureWeight(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			b.ReportMetric(rows[0].ComplOutAUPRC, "comploutAUPRC-no-features")
		}
	}
}

func BenchmarkAblation_Transferability(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, tbl := experiments.AblationTransferability(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			gained := 0
			for _, r := range rows {
				gained += r.EntriesTransfer - r.EntriesLocal
			}
			b.ReportMetric(float64(gained), "entries-gained-by-transfer")
		}
	}
}

func BenchmarkAblation_HierarchicalPrior(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, tbl := experiments.AblationHierarchicalPrior(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			if len(rows) == 2 && rows[1].Bootstrap > 0 {
				b.ReportMetric(float64(rows[0].Bootstrap)/float64(rows[1].Bootstrap), "bootstrap-savings-factor")
			}
		}
	}
}

func BenchmarkE7_NonExistence(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, tbl := experiments.E7(h)
		if i == 0 {
			b.Log("\n" + tbl.String())
			for _, r := range rows {
				if r.Policy == "metAScritic" {
					b.ReportMetric(r.WrongNegative, "metascritic-wrong-neg-frac")
				}
			}
		}
	}
}
