module metascritic

go 1.22
