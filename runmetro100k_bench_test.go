package metascritic_test

// Internet-scale end-to-end benchmark: one full RunMetro against an
// InternetMetros 100k-AS world under a bounded route-cache byte budget,
// reporting peak RSS and cache-eviction counters alongside wall-clock.
// This is the ROADMAP item-2 number — "run the full metro pipeline
// against 100k-AS worlds and make per-world wall-clock and RSS
// first-class bench metrics".
//
// The benchmark is opt-in (`make bench-100k` sets METASCRITIC_BENCH_100K):
// world generation alone takes tens of seconds and a single-core run is
// minutes, far beyond the CI trajectory scale of `make bench`. Knobs:
//
//	METASCRITIC_BENCH_100K=1        enable (otherwise the benchmark skips)
//	METASCRITIC_BENCH_ASES=100000   world size (default 100000)
//	METASCRITIC_BENCH_CACHE_MB=256  route-cache budget in MiB (0 = unbounded)
//
// At 100k ASes one packed route view is ~800 KB, so the default 256 MiB
// budget holds ~330 destinations — far below the unbounded footprint of a
// full campaign (every distinct destination it ever touches) — and the
// eviction counters reported here are the evidence the budget actually
// engaged. Eviction cannot change results (propagation is deterministic;
// see TestBudgetedPipelineByteIdentical for the pinned equivalence).

import (
	"context"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"metascritic"
	"metascritic/internal/netsim"
	"metascritic/internal/sysmem"
)

func benchEnvInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 0 {
			return v
		}
	}
	return def
}

func BenchmarkRunMetro100k(b *testing.B) {
	if os.Getenv("METASCRITIC_BENCH_100K") == "" {
		b.Skip("opt-in: set METASCRITIC_BENCH_100K=1 (or run `make bench-100k`)")
	}
	ases := benchEnvInt("METASCRITIC_BENCH_ASES", 100_000)
	cacheMB := benchEnvInt("METASCRITIC_BENCH_CACHE_MB", 256)

	w := netsim.Generate(netsim.Config{Seed: 1, Metros: netsim.InternetMetros(ases)})
	p := metascritic.NewPipeline(w)
	p.SetRouteCacheBudget(int64(cacheMB) << 20)

	// Public-archive seeding, sampled: an Internet-scale world hosts tens
	// of thousands of probes, and seeding every one (the legacy
	// SeedPublicMeasurements contract) would dwarf the pipeline being
	// measured. A strided sample keeps the evidence layer realistically
	// warm at a bounded cost.
	const seedTraces = 800
	rng := rand.New(rand.NewSource(1))
	stride := len(w.Probes) / seedTraces
	if stride < 1 {
		stride = 1
	}
	n := w.G.N()
	for i := 0; i < len(w.Probes); i += stride {
		pr := w.Probes[i]
		if dst := rng.Intn(n); dst != pr.AS {
			p.Store.AddTrace(p.Engine.Run(pr.AS, pr.Metro, dst))
		}
	}

	cfg := metascritic.DefaultConfig()
	cfg.MaxMeasurements = 4000
	cfg.Rank.MaxRank = 12
	cfg.Rank.Iterations = 6

	metro := w.PrimaryMetros()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := p.Snapshot()
		res, err := snap.Run(context.Background(), metro, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			st := p.Engine.Cache.Stats()
			b.ReportMetric(float64(res.Measurements), "measurements")
			b.ReportMetric(float64(len(res.Members)), "members")
			b.ReportMetric(float64(st.Evicted), "cache-evictions")
			b.ReportMetric(float64(st.Bytes), "cache-bytes")
			b.ReportMetric(float64(st.BudgetBytes), "cache-budget-bytes")
			b.ReportMetric(float64(sysmem.PeakRSSBytes()), "peak-rss-bytes")
		}
	}
}
