// Package metascritic is a from-scratch Go reproduction of "metAScritic:
// Reframing AS-Level Topology Discovery as a Recommendation System"
// (Salamatian et al., ACM IMC 2024).
//
// The package ties the system's modules together exactly as Fig. 2 of the
// paper describes: seed an estimated connectivity matrix E_m from public
// traceroutes, iteratively estimate the effective rank of the metro's true
// connectivity matrix while issuing targeted traceroutes (selected by the
// exploitation/exploration strategy machinery over 144 measurement
// strategies), complete the matrix with the hybrid ALS recommender, and
// translate ratings into links via a threshold λ tuned for F-score.
//
// The Internet itself is replaced by the synthetic world of
// internal/netsim (see DESIGN.md for the substitution map); everything the
// inference pipeline touches is public information: traceroute hops, AS
// relationships, footprints, PeeringDB-style features and probe locations.
package metascritic

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"metascritic/internal/als"
	"metascritic/internal/asgraph"
	"metascritic/internal/mat"
	"metascritic/internal/netsim"
	"metascritic/internal/obs"
	"metascritic/internal/probe"
	"metascritic/internal/rank"
	"metascritic/internal/stats"
	"metascritic/internal/traceroute"
)

// Config controls one metro run.
type Config struct {
	// Epsilon is the exploration fraction ε of §3.3.1 (paper default 0.1).
	Epsilon float64
	// BatchSize is the number of traceroutes selected per batch.
	BatchSize int
	// MaxMeasurements caps the targeted traceroutes issued for the metro.
	MaxMeasurements int
	// NegPolicy selects the non-link inference conditions (§3.4 / E.7).
	NegPolicy obs.NegativePolicy
	// Rank configures the effective-rank estimation loop.
	Rank rank.Config
	// Priors optionally seeds strategy success rates from other metros
	// (Appx. D.6); PriorWeight is its pseudo-trial mass.
	Priors      *[probe.NumStrategies]float64
	PriorWeight float64
	// BootstrapPerStrategy is the number of calibration traceroutes run
	// per measurement strategy before targeted selection begins (§3.3.2).
	// When cross-metro Priors are provided, a fifth as many suffice
	// (Appx. D.6 reports ~6x fewer).
	BootstrapPerStrategy int
	// Tune enables the hyperparameter grid search of Appx. D.4 before the
	// final completion.
	Tune bool
	// MeasureWorkers bounds the speculative traceroute fan-out of the
	// measurement pipeline (see measure.go): 0 means GOMAXPROCS, 1 is the
	// exact legacy serial path, N > 1 runs each batch's traceroutes on up
	// to N workers with an ordered commit. The resulting Result is
	// byte-identical across worker counts.
	MeasureWorkers int
	// MaxMetroMembers caps the colocated candidate set a metro run works
	// over: metros with more members are pruned to the top-K by
	// customer-cone size (degree tie-break, original order preserved; see
	// probe.TopMembers). Every per-pair structure — selector penalty
	// planes, the estimate E_m, the ALS ratings — is O(members²), so the
	// cap is what keeps dense Internet-scale metros (Zipf head metros
	// reach thousands of colocated ASes) inside a bounded footprint. The
	// default is far above any legacy-scale metro, so behavior below the
	// threshold is exactly unchanged. 0 disables pruning.
	MaxMetroMembers int
	// StrictBudget makes Run fail with ErrBudgetExhausted when
	// MaxMeasurements runs dry before the bootstrap calibration plan
	// completes, instead of silently proceeding with partially calibrated
	// strategy success rates. Off by default: the paper's system degrades
	// gracefully under tiny budgets, and so do we.
	StrictBudget bool
	Seed         int64
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		Epsilon:              0.1,
		BatchSize:            300,
		MaxMeasurements:      40000,
		NegPolicy:            obs.NegMetascritic,
		Rank:                 rank.DefaultConfig(),
		PriorWeight:          20,
		BootstrapPerStrategy: 6,
		MaxMetroMembers:      1024,
		Seed:                 1,
	}
}

// Calibration records one targeted measurement's predicted informativeness
// probability and its outcome (the data behind Fig. 4).
type Calibration struct {
	P           float64
	Informative bool
	FoundLink   bool // an existing link was revealed
	FoundNon    bool // non-existence evidence was revealed
	Exploration bool
	// Measurement details, for analysis.
	VP     probe.VP
	Target probe.Target
	LinkI  int
	LinkJ  int
	Strat  probe.Strategy
}

// PhaseTimings records wall-clock spent in each phase of a metro run, plus
// the measurement pipeline's concurrency statistics, for the engine's
// aggregated run statistics.
type PhaseTimings struct {
	// Bootstrap covers the per-strategy calibration measurements (§3.3.2).
	Bootstrap time.Duration
	// RankLoop covers the iterative rank estimation with integrated
	// targeted measurement (§3.2 + §3.3).
	RankLoop time.Duration
	// Completion covers the final ALS completion (plus tuning, if any).
	Completion time.Duration
	// Threshold covers the λ holdout search (§3.1).
	Threshold time.Duration
	// Estimate is the wall-clock spent building and delta-refreshing the
	// connectivity estimate E_m (obs.Store.Estimate / Store.Refresh).
	// Like Measure.Wall it is a subset of Bootstrap+RankLoop — previously
	// it was invisible inside RankLoop — so Total does not add it.
	Estimate time.Duration
	// Measure counts the speculative fan-out work of the measurement
	// pipeline (batches, launched/committed/discarded traceroutes,
	// prefetched routes). Its wall-clock is a subset of Bootstrap+RankLoop.
	Measure MeasureStats
	// Allocs counts heap allocations attributed to each phase, sampled as
	// runtime.ReadMemStats deltas at the same boundaries as the wall-clock
	// fields. The runtime counter is process-global, so in a concurrent
	// batch a phase's count includes whatever other goroutines allocated
	// meanwhile — read it from single-run (or Workers=1) sessions when
	// attributing allocations precisely.
	Allocs PhaseAllocs
}

// PhaseAllocs breaks a run's heap allocation count down by phase,
// mirroring the wall-clock fields of PhaseTimings.
type PhaseAllocs struct {
	Bootstrap  uint64
	RankLoop   uint64
	Completion uint64
	Threshold  uint64
}

// Total returns the summed phase allocation count.
func (a PhaseAllocs) Total() uint64 {
	return a.Bootstrap + a.RankLoop + a.Completion + a.Threshold
}

// Total returns the summed phase wall-clock.
func (t PhaseTimings) Total() time.Duration {
	return t.Bootstrap + t.RankLoop + t.Completion + t.Threshold
}

// Add accumulates another run's timings into t: phase wall-clocks and
// allocation counters sum, and the measurement statistics merge. It is
// how the engine aggregates per-metro phases into batch-level stats.
func (t *PhaseTimings) Add(o PhaseTimings) {
	t.Bootstrap += o.Bootstrap
	t.RankLoop += o.RankLoop
	t.Completion += o.Completion
	t.Threshold += o.Threshold
	t.Estimate += o.Estimate
	t.Measure.Merge(o.Measure)
	t.Allocs.Bootstrap += o.Allocs.Bootstrap
	t.Allocs.RankLoop += o.Allocs.RankLoop
	t.Allocs.Completion += o.Allocs.Completion
	t.Allocs.Threshold += o.Allocs.Threshold
}

// PhaseShare is one row of a phase-attribution breakdown: where a run's
// (or a batch's) wall-clock and allocations went.
type PhaseShare struct {
	Phase  string
	Wall   time.Duration
	Frac   float64 // Wall / Total, 0 when Total is 0
	Allocs uint64
}

// Breakdown returns the per-phase attribution table (bootstrap, rank
// loop, completion, threshold — the disjoint phases that sum to Total),
// for profiling output and the engine's batch reports.
func (t PhaseTimings) Breakdown() []PhaseShare {
	total := t.Total()
	frac := func(d time.Duration) float64 {
		if total <= 0 {
			return 0
		}
		return float64(d) / float64(total)
	}
	return []PhaseShare{
		{Phase: "bootstrap", Wall: t.Bootstrap, Frac: frac(t.Bootstrap), Allocs: t.Allocs.Bootstrap},
		{Phase: "rank-loop", Wall: t.RankLoop, Frac: frac(t.RankLoop), Allocs: t.Allocs.RankLoop},
		{Phase: "completion", Wall: t.Completion, Frac: frac(t.Completion), Allocs: t.Allocs.Completion},
		{Phase: "threshold", Wall: t.Threshold, Frac: frac(t.Threshold), Allocs: t.Allocs.Threshold},
	}
}

// Result is the output of running metAScritic on one metro.
type Result struct {
	Metro   int
	Members []int
	// Estimate is the measured matrix E_m after targeted tracerouting.
	Estimate *obs.Estimate
	// Ratings is the completed matrix C_m as continuous scores in [-1,1].
	Ratings *mat.Matrix
	// Rank is the estimated effective rank.
	Rank int
	// RankHistory traces the estimation loop (Fig. 10-style data).
	RankHistory []rank.Step
	// Threshold is the λ maximizing F-score on an internal split.
	Threshold float64
	// Measurements is the number of targeted traceroutes issued.
	Measurements int
	// BootstrapMeasurements is the portion of Measurements spent on the
	// per-strategy calibration phase (§3.3.2). Cross-metro priors cut this
	// ~5x (Appx. D.6), which is what the engine's prior store exploits.
	BootstrapMeasurements int
	// Timings records per-phase wall-clock for this run.
	Timings PhaseTimings
	// Calibrations holds per-measurement probability/outcome records.
	Calibrations []Calibration
	// StrategyRates exports the learned per-strategy success rates for
	// hierarchical initialization of other metros.
	StrategyRates [probe.NumStrategies]float64
	// Lambda/FeatureWeight actually used for the final completion.
	Lambda        float64
	FeatureWeight float64
	// Factors holds the final completion's ALS factor matrices so an
	// incremental Rescore after topology evolution can warm-start from
	// them instead of re-converging from noise. Derived state: snapshot
	// restore leaves it nil, in which case Rescore falls back to a cold
	// factor initialization (still skipping rank sweep and tuning).
	Factors *als.Factors
}

// LinksAbove returns the member-index pairs whose rating is >= thr.
func (r *Result) LinksAbove(thr float64) []asgraph.Pair {
	var out []asgraph.Pair
	n := len(r.Members)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Ratings.At(i, j) >= thr {
				out = append(out, asgraph.Pair{A: r.Members[i], B: r.Members[j]})
			}
		}
	}
	return out
}

// Rating returns the completed score for graph ASes a and b (0 if either
// is not a member).
func (r *Result) Rating(a, b int) float64 {
	i, ok1 := r.Estimate.Index[a]
	j, ok2 := r.Estimate.Index[b]
	if !ok1 || !ok2 {
		return 0
	}
	return r.Ratings.At(i, j)
}

// Pipeline runs metAScritic against a simulated world. The traceroute
// store is shared across metros so that observations transfer
// geographically (§3.4).
type Pipeline struct {
	World  *netsim.World
	Engine *traceroute.Engine
	Store  *obs.Store
	// Hitlist is the set of ASes with probe-able targets (ISI hitlist
	// analog).
	Hitlist []int
}

// NewPipeline builds a pipeline over a world.
func NewPipeline(w *netsim.World) *Pipeline {
	e := traceroute.NewEngine(w)
	// Hop resolution cross-checks the bdrmapit-style mapping against RTT
	// geolocation from the metros that host probes (Appx. D.2).
	probeMetros := map[int]bool{}
	for _, pr := range w.Probes {
		probeMetros[pr.Metro] = true
	}
	var metros []int
	for m := range probeMetros {
		metros = append(metros, m)
	}
	sort.Ints(metros)
	p := &Pipeline{
		World:  w,
		Engine: e,
		Store:  obs.NewStore(w.G, e.Reg.RefinedResolver(metros)),
	}
	// The hitlist is public knowledge of probe-able addresses: ASes that
	// answer probes (the real system uses the responsiveness-ranked ISI
	// hitlist).
	for i, resp := range w.Responsive {
		if resp {
			p.Hitlist = append(p.Hitlist, i)
		}
	}
	return p
}

// SetRouteCacheBudget bounds the pipeline's shared route cache to roughly
// the given number of bytes (0 = unbounded): cold destinations are
// evicted second-chance style and recompute on demand, so results are
// unchanged — only the hit rate moves. See bgp.RouteCache.SetBudget.
func (p *Pipeline) SetRouteCacheBudget(bytes int64) {
	p.Engine.Cache.SetBudget(bytes)
}

// VPs converts the world's probes to selector vantage points.
func (p *Pipeline) VPs() []probe.VP {
	out := make([]probe.VP, len(p.World.Probes))
	for i, pr := range p.World.Probes {
		out[i] = probe.VP{AS: pr.AS, Metro: pr.Metro}
	}
	return out
}

// SeedPublicMeasurements simulates the public RIPE Atlas / Ark archives:
// every probe traceroutes toward a random sample of destinations. These
// traces seed E_m before any targeted measurement.
func (p *Pipeline) SeedPublicMeasurements(perProbe int, rng *rand.Rand) int {
	n := p.World.G.N()
	// Draw the full plan first (the RNG sequence is part of the pipeline's
	// determinism contract), warm the route cache for every distinct
	// destination across the worker pool, then replay the traces in order.
	type seedTrace struct{ as, metro, dst int }
	plan := make([]seedTrace, 0, len(p.World.Probes)*perProbe)
	dests := make([]int, 0, len(p.World.Probes)*perProbe)
	for _, pr := range p.World.Probes {
		for k := 0; k < perProbe; k++ {
			dst := rng.Intn(n)
			if dst == pr.AS {
				continue
			}
			plan = append(plan, seedTrace{pr.AS, pr.Metro, dst})
			dests = append(dests, dst)
		}
	}
	p.Engine.PrefetchRoutes(nil, dests, runtime.GOMAXPROCS(0))
	for _, t := range plan {
		p.Store.AddTrace(p.Engine.Run(t.as, t.metro, t.dst))
	}
	return len(plan)
}

// BuildFeatures assembles the per-member feature matrix used by the hybrid
// recommender: one-hot AS class, peering policy, traffic profile and
// continent, plus log-scaled eyeballs, cone size, footprint size and
// address space (Appx. C / D.3).
func BuildFeatures(g *asgraph.Graph, members []int) *mat.Matrix {
	nClass := int(asgraph.NumClasses)
	nPol := int(asgraph.NumPolicies)
	nProf := int(asgraph.NumProfiles)
	nCont := len(g.Continents)
	cols := nClass + nPol + nProf + nCont + 4
	f := mat.New(len(members), cols)
	for r, ai := range members {
		a := g.ASes[ai]
		c := 0
		f.Set(r, c+int(a.Class), 1)
		c += nClass
		f.Set(r, c+int(a.Policy), 1)
		c += nPol
		f.Set(r, c+int(a.Traffic), 1)
		c += nProf
		cont := g.Countries[a.Country].Continent
		f.Set(r, c+cont, 1)
		c += nCont
		f.Set(r, c, math.Log1p(float64(a.Eyeballs)))
		f.Set(r, c+1, math.Log1p(float64(g.ConeSize(ai))))
		f.Set(r, c+2, float64(len(a.Metros)))
		f.Set(r, c+3, math.Log1p(float64(a.AddrSpace)))
	}
	return f
}

// Snapshot returns a pipeline sharing this pipeline's (immutable) world,
// traceroute engine and hitlist, but owning an O(1) copy-on-write handle
// on the observation store: base and snapshot share all accumulated
// evidence until either mutates, at which point the mutating store
// lazily copies just the structures it touches (obs.Store.Clone). A
// snapshot can run a metro without its targeted traceroutes leaking into
// other runs — the isolation unit behind the concurrent engine: every
// metro of an engine batch measures against the evidence available when
// the batch started.
func (p *Pipeline) Snapshot() *Pipeline {
	return &Pipeline{
		World:   p.World,
		Engine:  p.Engine,
		Store:   p.Store.Clone(),
		Hitlist: p.Hitlist,
	}
}

// CompleteWith re-runs the hybrid completion with explicit hyperparameters
// (used by the evaluation splits to replay a result's configuration over a
// reduced mask).
func CompleteWith(E *mat.Matrix, mask *mat.Mask, features *mat.Matrix, rank int, lambda, featureWeight float64) *mat.Matrix {
	return als.Complete(E, mask, features, als.Options{
		Rank:          rank,
		Lambda:        lambda,
		FeatureWeight: featureWeight,
		Iterations:    15,
		Seed:          1,
	})
}

// CompleteWithout is CompleteWith with the holdout entries removed from the
// observation set — the evaluation-split primitive. The removals are
// applied as an overlay, so the caller's mask is never cloned or mutated,
// and the result is bit-identical to unsetting the entries from a copy.
func CompleteWithout(E *mat.Matrix, mask *mat.Mask, features *mat.Matrix, holdout [][2]int, rank int, lambda, featureWeight float64) *mat.Matrix {
	if featureWeight <= 0 {
		features = nil
	}
	ov := mat.NewOverlay(mask)
	for _, h := range holdout {
		ov.Remove(h[0], h[1])
	}
	return als.NewProblem(E, mask, features).Complete(als.Options{
		Rank:          rank,
		Lambda:        lambda,
		FeatureWeight: featureWeight,
		Iterations:    15,
		Seed:          1,
	}, ov)
}

// pickThreshold runs an internal stratified holdout to choose λ. The
// holdout is applied as an overlay on prob (the final completion problem),
// so no mask clone or observation rebuild happens here.
func (p *Pipeline) pickThreshold(est *obs.Estimate, prob *als.Problem, opts als.Options, rng *rand.Rand) float64 {
	var holdout [][2]int
	ov := mat.NewOverlay(est.Mask)
	n := est.Mask.N()
	for i := 0; i < n; i++ {
		// RowEntries returns a freshly-allocated copy (its documented
		// contract), so shuffling here cannot corrupt the mask's sorted-row
		// CSR invariant; TestRowEntriesReturnsCopy and the end-to-end mask
		// invariant test pin this.
		entries := est.Mask.RowEntries(i)
		rng.Shuffle(len(entries), func(a, b int) { entries[a], entries[b] = entries[b], entries[a] })
		k := len(entries) / 5
		for _, j := range entries[:k] {
			if i < j && ov.Has(i, j) {
				ov.Remove(i, j)
				holdout = append(holdout, [2]int{i, j})
			}
		}
	}
	if len(holdout) < 5 {
		return 0.3 // not enough data; the paper's max-F operating point
	}
	completed := prob.Complete(opts, ov)
	scores := make([]float64, len(holdout))
	labels := make([]bool, len(holdout))
	for k, h := range holdout {
		scores[k] = completed.At(h[0], h[1])
		labels[k] = est.E.At(h[0], h[1]) > 0
	}
	thr, _ := stats.BestF1Threshold(scores, labels)
	// The paper operates λ in [0.1, 1] (Fig. 15); clamp the search result
	// so degenerate holdouts cannot produce an accept-everything λ.
	if thr < 0.1 {
		thr = 0.1
	}
	if thr > 0.95 {
		thr = 0.95
	}
	return thr
}
