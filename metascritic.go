// Package metascritic is a from-scratch Go reproduction of "metAScritic:
// Reframing AS-Level Topology Discovery as a Recommendation System"
// (Salamatian et al., ACM IMC 2024).
//
// The package ties the system's modules together exactly as Fig. 2 of the
// paper describes: seed an estimated connectivity matrix E_m from public
// traceroutes, iteratively estimate the effective rank of the metro's true
// connectivity matrix while issuing targeted traceroutes (selected by the
// exploitation/exploration strategy machinery over 144 measurement
// strategies), complete the matrix with the hybrid ALS recommender, and
// translate ratings into links via a threshold λ tuned for F-score.
//
// The Internet itself is replaced by the synthetic world of
// internal/netsim (see DESIGN.md for the substitution map); everything the
// inference pipeline touches is public information: traceroute hops, AS
// relationships, footprints, PeeringDB-style features and probe locations.
package metascritic

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"metascritic/internal/als"
	"metascritic/internal/asgraph"
	"metascritic/internal/mat"
	"metascritic/internal/netsim"
	"metascritic/internal/obs"
	"metascritic/internal/probe"
	"metascritic/internal/rank"
	"metascritic/internal/stats"
	"metascritic/internal/traceroute"
)

// Config controls one metro run.
type Config struct {
	// Epsilon is the exploration fraction ε of §3.3.1 (paper default 0.1).
	Epsilon float64
	// BatchSize is the number of traceroutes selected per batch.
	BatchSize int
	// MaxMeasurements caps the targeted traceroutes issued for the metro.
	MaxMeasurements int
	// NegPolicy selects the non-link inference conditions (§3.4 / E.7).
	NegPolicy obs.NegativePolicy
	// Rank configures the effective-rank estimation loop.
	Rank rank.Config
	// Priors optionally seeds strategy success rates from other metros
	// (Appx. D.6); PriorWeight is its pseudo-trial mass.
	Priors      *[probe.NumStrategies]float64
	PriorWeight float64
	// BootstrapPerStrategy is the number of calibration traceroutes run
	// per measurement strategy before targeted selection begins (§3.3.2).
	// When cross-metro Priors are provided, a fifth as many suffice
	// (Appx. D.6 reports ~6x fewer).
	BootstrapPerStrategy int
	// Tune enables the hyperparameter grid search of Appx. D.4 before the
	// final completion.
	Tune bool
	// MeasureWorkers bounds the speculative traceroute fan-out of the
	// measurement pipeline (see measure.go): 0 means GOMAXPROCS, 1 is the
	// exact legacy serial path, N > 1 runs each batch's traceroutes on up
	// to N workers with an ordered commit. The resulting Result is
	// byte-identical across worker counts.
	MeasureWorkers int
	Seed           int64
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		Epsilon:              0.1,
		BatchSize:            300,
		MaxMeasurements:      40000,
		NegPolicy:            obs.NegMetascritic,
		Rank:                 rank.DefaultConfig(),
		PriorWeight:          20,
		BootstrapPerStrategy: 6,
		Seed:                 1,
	}
}

// Calibration records one targeted measurement's predicted informativeness
// probability and its outcome (the data behind Fig. 4).
type Calibration struct {
	P           float64
	Informative bool
	FoundLink   bool // an existing link was revealed
	FoundNon    bool // non-existence evidence was revealed
	Exploration bool
	// Measurement details, for analysis.
	VP     probe.VP
	Target probe.Target
	LinkI  int
	LinkJ  int
	Strat  probe.Strategy
}

// PhaseTimings records wall-clock spent in each phase of a metro run, plus
// the measurement pipeline's concurrency statistics, for the engine's
// aggregated run statistics.
type PhaseTimings struct {
	// Bootstrap covers the per-strategy calibration measurements (§3.3.2).
	Bootstrap time.Duration
	// RankLoop covers the iterative rank estimation with integrated
	// targeted measurement (§3.2 + §3.3).
	RankLoop time.Duration
	// Completion covers the final ALS completion (plus tuning, if any).
	Completion time.Duration
	// Threshold covers the λ holdout search (§3.1).
	Threshold time.Duration
	// Estimate is the wall-clock spent building and delta-refreshing the
	// connectivity estimate E_m (obs.Store.Estimate / Store.Refresh).
	// Like Measure.Wall it is a subset of Bootstrap+RankLoop — previously
	// it was invisible inside RankLoop — so Total does not add it.
	Estimate time.Duration
	// Measure counts the speculative fan-out work of the measurement
	// pipeline (batches, launched/committed/discarded traceroutes,
	// prefetched routes). Its wall-clock is a subset of Bootstrap+RankLoop.
	Measure MeasureStats
}

// Total returns the summed phase wall-clock.
func (t PhaseTimings) Total() time.Duration {
	return t.Bootstrap + t.RankLoop + t.Completion + t.Threshold
}

// Result is the output of running metAScritic on one metro.
type Result struct {
	Metro   int
	Members []int
	// Estimate is the measured matrix E_m after targeted tracerouting.
	Estimate *obs.Estimate
	// Ratings is the completed matrix C_m as continuous scores in [-1,1].
	Ratings *mat.Matrix
	// Rank is the estimated effective rank.
	Rank int
	// RankHistory traces the estimation loop (Fig. 10-style data).
	RankHistory []rank.Step
	// Threshold is the λ maximizing F-score on an internal split.
	Threshold float64
	// Measurements is the number of targeted traceroutes issued.
	Measurements int
	// BootstrapMeasurements is the portion of Measurements spent on the
	// per-strategy calibration phase (§3.3.2). Cross-metro priors cut this
	// ~5x (Appx. D.6), which is what the engine's prior store exploits.
	BootstrapMeasurements int
	// Timings records per-phase wall-clock for this run.
	Timings PhaseTimings
	// Calibrations holds per-measurement probability/outcome records.
	Calibrations []Calibration
	// StrategyRates exports the learned per-strategy success rates for
	// hierarchical initialization of other metros.
	StrategyRates [probe.NumStrategies]float64
	// Lambda/FeatureWeight actually used for the final completion.
	Lambda        float64
	FeatureWeight float64
}

// LinksAbove returns the member-index pairs whose rating is >= thr.
func (r *Result) LinksAbove(thr float64) []asgraph.Pair {
	var out []asgraph.Pair
	n := len(r.Members)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Ratings.At(i, j) >= thr {
				out = append(out, asgraph.Pair{A: r.Members[i], B: r.Members[j]})
			}
		}
	}
	return out
}

// Rating returns the completed score for graph ASes a and b (0 if either
// is not a member).
func (r *Result) Rating(a, b int) float64 {
	i, ok1 := r.Estimate.Index[a]
	j, ok2 := r.Estimate.Index[b]
	if !ok1 || !ok2 {
		return 0
	}
	return r.Ratings.At(i, j)
}

// Pipeline runs metAScritic against a simulated world. The traceroute
// store is shared across metros so that observations transfer
// geographically (§3.4).
type Pipeline struct {
	World  *netsim.World
	Engine *traceroute.Engine
	Store  *obs.Store
	// Hitlist is the set of ASes with probe-able targets (ISI hitlist
	// analog).
	Hitlist []int
}

// NewPipeline builds a pipeline over a world.
func NewPipeline(w *netsim.World) *Pipeline {
	e := traceroute.NewEngine(w)
	// Hop resolution cross-checks the bdrmapit-style mapping against RTT
	// geolocation from the metros that host probes (Appx. D.2).
	probeMetros := map[int]bool{}
	for _, pr := range w.Probes {
		probeMetros[pr.Metro] = true
	}
	var metros []int
	for m := range probeMetros {
		metros = append(metros, m)
	}
	sort.Ints(metros)
	p := &Pipeline{
		World:  w,
		Engine: e,
		Store:  obs.NewStore(w.G, e.Reg.RefinedResolver(metros)),
	}
	// The hitlist is public knowledge of probe-able addresses: ASes that
	// answer probes (the real system uses the responsiveness-ranked ISI
	// hitlist).
	for i, resp := range w.Responsive {
		if resp {
			p.Hitlist = append(p.Hitlist, i)
		}
	}
	return p
}

// VPs converts the world's probes to selector vantage points.
func (p *Pipeline) VPs() []probe.VP {
	out := make([]probe.VP, len(p.World.Probes))
	for i, pr := range p.World.Probes {
		out[i] = probe.VP{AS: pr.AS, Metro: pr.Metro}
	}
	return out
}

// SeedPublicMeasurements simulates the public RIPE Atlas / Ark archives:
// every probe traceroutes toward a random sample of destinations. These
// traces seed E_m before any targeted measurement.
func (p *Pipeline) SeedPublicMeasurements(perProbe int, rng *rand.Rand) int {
	n := p.World.G.N()
	// Draw the full plan first (the RNG sequence is part of the pipeline's
	// determinism contract), warm the route cache for every distinct
	// destination across the worker pool, then replay the traces in order.
	type seedTrace struct{ as, metro, dst int }
	plan := make([]seedTrace, 0, len(p.World.Probes)*perProbe)
	dests := make([]int, 0, len(p.World.Probes)*perProbe)
	for _, pr := range p.World.Probes {
		for k := 0; k < perProbe; k++ {
			dst := rng.Intn(n)
			if dst == pr.AS {
				continue
			}
			plan = append(plan, seedTrace{pr.AS, pr.Metro, dst})
			dests = append(dests, dst)
		}
	}
	p.Engine.PrefetchRoutes(nil, dests, runtime.GOMAXPROCS(0))
	for _, t := range plan {
		p.Store.AddTrace(p.Engine.Run(t.as, t.metro, t.dst))
	}
	return len(plan)
}

// BuildFeatures assembles the per-member feature matrix used by the hybrid
// recommender: one-hot AS class, peering policy, traffic profile and
// continent, plus log-scaled eyeballs, cone size, footprint size and
// address space (Appx. C / D.3).
func BuildFeatures(g *asgraph.Graph, members []int) *mat.Matrix {
	nClass := int(asgraph.NumClasses)
	nPol := int(asgraph.NumPolicies)
	nProf := int(asgraph.NumProfiles)
	nCont := len(g.Continents)
	cols := nClass + nPol + nProf + nCont + 4
	f := mat.New(len(members), cols)
	for r, ai := range members {
		a := g.ASes[ai]
		c := 0
		f.Set(r, c+int(a.Class), 1)
		c += nClass
		f.Set(r, c+int(a.Policy), 1)
		c += nPol
		f.Set(r, c+int(a.Traffic), 1)
		c += nProf
		cont := g.Countries[a.Country].Continent
		f.Set(r, c+cont, 1)
		c += nCont
		f.Set(r, c, math.Log1p(float64(a.Eyeballs)))
		f.Set(r, c+1, math.Log1p(float64(g.ConeSize(ai))))
		f.Set(r, c+2, float64(len(a.Metros)))
		f.Set(r, c+3, math.Log1p(float64(a.AddrSpace)))
	}
	return f
}

// Snapshot returns a pipeline sharing this pipeline's (immutable) world,
// traceroute engine and hitlist, but owning an O(1) copy-on-write handle
// on the observation store: base and snapshot share all accumulated
// evidence until either mutates, at which point the mutating store
// lazily copies just the structures it touches (obs.Store.Clone). A
// snapshot can run a metro without its targeted traceroutes leaking into
// other runs — the isolation unit behind the concurrent engine: every
// metro of an engine batch measures against the evidence available when
// the batch started.
func (p *Pipeline) Snapshot() *Pipeline {
	return &Pipeline{
		World:   p.World,
		Engine:  p.Engine,
		Store:   p.Store.Clone(),
		Hitlist: p.Hitlist,
	}
}

// RunMetro executes the full metAScritic loop (Fig. 2) on one metro.
//
// Deprecated-style compatibility wrapper: it is equivalent to
// RunMetroContext with a background context, and panics on an invalid
// Config (the only error a non-cancellable run can produce). New code
// should call RunMetroContext, which reports errors and honors
// cancellation.
func (p *Pipeline) RunMetro(metro int, cfg Config) *Result {
	res, err := p.RunMetroContext(context.Background(), metro, cfg)
	if err != nil {
		panic(fmt.Sprintf("metascritic: RunMetro: %v", err))
	}
	return res
}

// RunMetroContext executes the full metAScritic loop (Fig. 2) on one
// metro. The config is validated up front; ctx cancellation is checked
// between measurements and between estimation rounds, so an abort takes
// effect promptly and returns an error wrapping ctx.Err().
//
// Determinism: a run is a pure function of (world, store contents at
// entry, metro, cfg) — traceroute simulation is hash-based and the only
// RNG is seeded from cfg.Seed — so equal inputs give byte-identical
// Results regardless of what other goroutines do to *other* pipelines.
// cfg.MeasureWorkers is explicitly outside that function: batches of
// traceroutes are simulated speculatively in parallel but committed in
// batch order (measure.go), so every field of Result except the Timings
// telemetry is byte-identical across worker counts.
func (p *Pipeline) RunMetroContext(ctx context.Context, metro int, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("metascritic: metro %d: %w", metro, err)
	}
	g := p.World.G
	if metro < 0 || metro >= len(g.Metros) {
		return nil, fmt.Errorf("metascritic: %w: metro index %d out of range [0,%d)", ErrInvalidConfig, metro, len(g.Metros))
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("metascritic: metro %d: %w", metro, err)
	}
	members := g.Metros[metro].Members
	rng := rand.New(rand.NewSource(cfg.Seed))

	sel := probe.NewSelector(g, metro, members, p.VPs(), p.Hitlist)
	boot := cfg.BootstrapPerStrategy
	if cfg.Priors != nil {
		sel.InitPriors(*cfg.Priors, cfg.PriorWeight)
		boot = (boot + 4) / 5 // transferred priors need far fewer samples
	}

	res := &Result{Metro: metro, Members: members}

	// Working estimate; delta-refreshed in place as measurements land
	// (obs.Store.Refresh re-derives only the pairs the new traces
	// touched, byte-identical to a full rebuild).
	estStart := time.Now()
	est := p.Store.Estimate(metro, members, cfg.NegPolicy)
	res.Timings.Estimate += time.Since(estStart)
	refresh := func() {
		t0 := time.Now()
		p.Store.Refresh(est)
		res.Timings.Estimate += time.Since(t0)
	}
	features := BuildFeatures(g, members)
	budget := cfg.MaxMeasurements
	workers := measureWorkers(cfg)
	mstats := &res.Timings.Measure
	mstats.Workers = workers

	// Bootstrap phase (§3.3.2): calibrate per-strategy success rates with
	// a few random measurements per strategy before targeted selection.
	phaseStart := time.Now()
	if boot > 0 && budget > 0 {
		plan := sel.BootstrapPlan(boot, 600, rng)
		p.runPlan(ctx, workers, plan, &budget, mstats, func(m probe.Measurement, findings []obs.Finding) {
			res.Measurements++
			res.BootstrapMeasurements++
			informative := false
			want := asgraph.MakePair(m.LinkI, m.LinkJ)
			for _, f := range findings {
				if f.Pair == want {
					informative = true
					break
				}
			}
			sel.Report(m, informative)
			// Recorded as exploration-like: Fig. 4 calibration excludes
			// bootstrap probes since they are not P-selected.
			res.Calibrations = append(res.Calibrations, Calibration{
				P: m.P, Informative: informative, Exploration: true,
				VP: m.VP, Target: m.Target, LinkI: m.LinkI, LinkJ: m.LinkJ, Strat: m.Strat,
			})
		})
		refresh()
	}
	res.Timings.Bootstrap = time.Since(phaseStart)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("metascritic: metro %d: bootstrap aborted: %w", metro, err)
	}

	topUp := func(need []int) int {
		before := est.Mask.Count()
		// Translate "additional entries" into absolute per-row targets so
		// any measurement that fills a needy row counts, regardless of
		// which entry we were aiming at. Targets are overshot by the
		// holdout size: the rank loop removes HoldoutPerRow entries per
		// row when scoring, so rows topped to exactly r would drop back
		// below it.
		target := make([]int, len(need))
		for i := range need {
			if need[i] > 0 {
				target[i] = est.Mask.RowCount(i) + need[i] + cfg.Rank.HoldoutPerRow
			}
		}
		stale := 0
		for round := 0; round < 16 && budget > 0 && ctx.Err() == nil; round++ {
			cur := make([]int, len(need))
			remaining := 0
			for i := range target {
				if d := target[i] - est.Mask.RowCount(i); d > 0 {
					cur[i] = d
					remaining += d
				}
			}
			if remaining == 0 {
				break
			}
			size := cfg.BatchSize
			if size > budget {
				size = budget
			}
			countBefore := est.Mask.Count()
			batch := sel.SelectBatch(size, cfg.Epsilon, est.RowFill(), cur, est.Mask.Has, rng)
			if len(batch) == 0 {
				break
			}
			p.runPlan(ctx, workers, batch, &budget, mstats, func(m probe.Measurement, findings []obs.Finding) {
				res.Measurements++
				informative, foundLink, foundNon := false, false, false
				want := asgraph.MakePair(m.LinkI, m.LinkJ)
				for _, f := range findings {
					if f.Pair == want {
						informative = true
						if f.Direct {
							foundLink = true
						} else {
							foundNon = true
						}
					}
				}
				sel.Report(m, informative)
				res.Calibrations = append(res.Calibrations, Calibration{
					P: m.P, Informative: informative,
					FoundLink: foundLink, FoundNon: foundNon,
					Exploration: m.Exploration,
					VP:          m.VP, Target: m.Target,
					LinkI: m.LinkI, LinkJ: m.LinkJ, Strat: m.Strat,
				})
			})
			refresh()
			if est.Mask.Count() == countBefore {
				// A whole batch without a single new entry: give the
				// elusive rows one more chance, then stop (the paper's
				// "limit of successive traceroutes that fail").
				stale++
				if stale >= 2 {
					break
				}
			} else {
				stale = 0
			}
		}
		return (est.Mask.Count() - before) / 2
	}

	// Rank estimation with integrated targeted measurement (§3.2 + §3.3).
	phaseStart = time.Now()
	rcfg := cfg.Rank
	rcfg.Seed = cfg.Seed
	rcfg.Stop = func() bool { return ctx.Err() != nil }
	rres := rank.Estimate(est.E, est.Mask, features, topUp, rcfg)
	res.Rank = rres.Rank
	res.RankHistory = rres.History
	res.Estimate = est
	res.StrategyRates = sel.StrategyRates()
	res.Timings.RankLoop = time.Since(phaseStart)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("metascritic: metro %d: rank estimation aborted: %w", metro, err)
	}

	// Final completion at the estimated rank.
	phaseStart = time.Now()
	opts := als.Options{
		Rank:          rres.Rank,
		Lambda:        rcfg.Lambda,
		FeatureWeight: rcfg.FeatureWeight,
		Iterations:    rcfg.Iterations + 5,
		Seed:          cfg.Seed,
	}
	if cfg.Tune {
		t := als.Tune(est.E, est.Mask, features, rres.Rank, rng)
		opts.Lambda = t.Lambda
		opts.FeatureWeight = t.FeatureWeight
	}
	res.Lambda = opts.Lambda
	res.FeatureWeight = opts.FeatureWeight
	// One completion problem backs both the final ratings and the λ-search
	// holdout below (the holdout is an overlay, so the problem stays valid).
	featArg := features
	if opts.FeatureWeight <= 0 {
		featArg = nil
	}
	prob := als.NewProblem(est.E, est.Mask, featArg)
	res.Ratings = prob.Complete(opts, nil)
	res.Timings.Completion = time.Since(phaseStart)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("metascritic: metro %d: completion aborted: %w", metro, err)
	}

	// λ search: hold out 20% of observed entries, score the completion on
	// them, pick the F-maximizing threshold (§3.1).
	phaseStart = time.Now()
	res.Threshold = p.pickThreshold(est, prob, opts, rng)
	res.Timings.Threshold = time.Since(phaseStart)
	return res, nil
}

// CompleteWith re-runs the hybrid completion with explicit hyperparameters
// (used by the evaluation splits to replay a result's configuration over a
// reduced mask).
func CompleteWith(E *mat.Matrix, mask *mat.Mask, features *mat.Matrix, rank int, lambda, featureWeight float64) *mat.Matrix {
	return als.Complete(E, mask, features, als.Options{
		Rank:          rank,
		Lambda:        lambda,
		FeatureWeight: featureWeight,
		Iterations:    15,
		Seed:          1,
	})
}

// CompleteWithout is CompleteWith with the holdout entries removed from the
// observation set — the evaluation-split primitive. The removals are
// applied as an overlay, so the caller's mask is never cloned or mutated,
// and the result is bit-identical to unsetting the entries from a copy.
func CompleteWithout(E *mat.Matrix, mask *mat.Mask, features *mat.Matrix, holdout [][2]int, rank int, lambda, featureWeight float64) *mat.Matrix {
	if featureWeight <= 0 {
		features = nil
	}
	ov := mat.NewOverlay(mask)
	for _, h := range holdout {
		ov.Remove(h[0], h[1])
	}
	return als.NewProblem(E, mask, features).Complete(als.Options{
		Rank:          rank,
		Lambda:        lambda,
		FeatureWeight: featureWeight,
		Iterations:    15,
		Seed:          1,
	}, ov)
}

// pickThreshold runs an internal stratified holdout to choose λ. The
// holdout is applied as an overlay on prob (the final completion problem),
// so no mask clone or observation rebuild happens here.
func (p *Pipeline) pickThreshold(est *obs.Estimate, prob *als.Problem, opts als.Options, rng *rand.Rand) float64 {
	var holdout [][2]int
	ov := mat.NewOverlay(est.Mask)
	n := est.Mask.N()
	for i := 0; i < n; i++ {
		// RowEntries returns a freshly-allocated copy (its documented
		// contract), so shuffling here cannot corrupt the mask's sorted-row
		// CSR invariant; TestRowEntriesReturnsCopy and the end-to-end mask
		// invariant test pin this.
		entries := est.Mask.RowEntries(i)
		rng.Shuffle(len(entries), func(a, b int) { entries[a], entries[b] = entries[b], entries[a] })
		k := len(entries) / 5
		for _, j := range entries[:k] {
			if i < j && ov.Has(i, j) {
				ov.Remove(i, j)
				holdout = append(holdout, [2]int{i, j})
			}
		}
	}
	if len(holdout) < 5 {
		return 0.3 // not enough data; the paper's max-F operating point
	}
	completed := prob.Complete(opts, ov)
	scores := make([]float64, len(holdout))
	labels := make([]bool, len(holdout))
	for k, h := range holdout {
		scores[k] = completed.At(h[0], h[1])
		labels[k] = est.E.At(h[0], h[1]) > 0
	}
	thr, _ := stats.BestF1Threshold(scores, labels)
	// The paper operates λ in [0.1, 1] (Fig. 15); clamp the search result
	// so degenerate holdouts cannot produce an accept-everything λ.
	if thr < 0.1 {
		thr = 0.1
	}
	if thr > 0.95 {
		thr = 0.95
	}
	return thr
}
