package metascritic

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
)

// mustRun runs a metro with a background context and fails the test on
// error.
func mustRun(t *testing.T, p *Pipeline, metro int, cfg Config) *Result {
	t.Helper()
	res, err := p.Run(context.Background(), metro, cfg)
	if err != nil {
		t.Fatalf("Run metro %d: %v", metro, err)
	}
	return res
}

func TestRunCancelWrapsErrCanceled(t *testing.T) {
	w := smallWorld(31)
	p := NewPipeline(w)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.Run(ctx, 0, DefaultConfig())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-cancelled run: got %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: got %v, want context.Canceled too", err)
	}
	if errors.Is(err, ErrInvalidConfig) || errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("cancel error matches unrelated sentinels: %v", err)
	}
}

// errAfterCtx is a context whose Err flips to context.Canceled after a
// fixed number of polls — a deterministic mid-run cancellation. Done()
// (inherited from Background) never fires, which is fine: every blocking
// point in the run loop checks Err before waiting.
type errAfterCtx struct {
	context.Context
	remaining atomic.Int64
}

func (c *errAfterCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestRunCancelKeepsPartialTimings pins that a cancelled run returns its
// partial Result alongside the error: the phases that ran keep their
// wall-clock (and allocation) telemetry instead of being dropped.
func TestRunCancelKeepsPartialTimings(t *testing.T) {
	w := smallWorld(35)
	p := NewPipeline(w)
	rng := rand.New(rand.NewSource(1))
	p.SeedPublicMeasurements(5, rng)
	cfg := DefaultConfig()
	cfg.BatchSize = 50
	cfg.MaxMeasurements = 500
	cfg.Rank.MaxRank = 5
	cfg.Rank.Iterations = 3

	// Let the entry check and a few bootstrap polls pass, then cancel:
	// the abort lands at (or inside) the bootstrap phase.
	ctx := &errAfterCtx{Context: context.Background()}
	ctx.remaining.Store(4)
	res, err := p.Snapshot().Run(ctx, 0, cfg)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-run cancel: got %v, want ErrCanceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned a nil partial Result")
	}
	if res.Timings.Bootstrap <= 0 {
		t.Fatalf("partial result lost its bootstrap timing: %+v", res.Timings)
	}
	if res.Timings.Allocs.Bootstrap == 0 {
		t.Fatalf("partial result lost its bootstrap alloc counter: %+v", res.Timings.Allocs)
	}
}

func TestRunStrictBudget(t *testing.T) {
	w := smallWorld(32)
	p := NewPipeline(w)
	rng := rand.New(rand.NewSource(1))
	p.SeedPublicMeasurements(5, rng)

	cfg := DefaultConfig()
	cfg.Rank.MaxRank = 5
	cfg.Rank.Iterations = 3
	cfg.StrictBudget = true

	// A budget far below the bootstrap plan size must fail strictly...
	cfg.MaxMeasurements = 17
	if _, err := p.Snapshot().Run(context.Background(), 0, cfg); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("truncated bootstrap: got %v, want ErrBudgetExhausted", err)
	}
	// ...and a zero budget cannot cover any bootstrap at all.
	cfg.MaxMeasurements = 0
	if _, err := p.Snapshot().Run(context.Background(), 0, cfg); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("zero budget with bootstrap: got %v, want ErrBudgetExhausted", err)
	}
	// Zero budget with no bootstrap requested is a legitimate
	// public-data-only run even under StrictBudget.
	cfg.BootstrapPerStrategy = 0
	if _, err := p.Snapshot().Run(context.Background(), 0, cfg); err != nil {
		t.Fatalf("strict zero-budget run without bootstrap failed: %v", err)
	}
	// The lax default keeps the old graceful degradation.
	cfg = DefaultConfig()
	cfg.Rank.MaxRank = 5
	cfg.Rank.Iterations = 3
	cfg.MaxMeasurements = 17
	if _, err := p.Snapshot().Run(context.Background(), 0, cfg); err != nil {
		t.Fatalf("lax truncated bootstrap failed: %v", err)
	}
}

// TestRunSentinels pins the error-path contract of the single entry
// point: Run propagates its sentinel errors (including context
// cancellation) unchanged.
func TestRunSentinels(t *testing.T) {
	w := smallWorld(36)
	p := NewPipeline(w)

	// Run honors its context: a pre-cancelled run reports ErrCanceled and
	// the context's own cause.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Snapshot().Run(ctx, 0, DefaultConfig()); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("Run pre-cancelled: got %v, want ErrCanceled and context.Canceled", err)
	}

	// Run propagates validation sentinels.
	bad := DefaultConfig()
	bad.BatchSize = 0
	if _, err := p.Snapshot().Run(context.Background(), 0, bad); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("Run invalid config: got %v, want ErrInvalidConfig", err)
	}
}

func TestRunErrorMessagesNameTheMetro(t *testing.T) {
	w := smallWorld(34)
	p := NewPipeline(w)
	cfg := DefaultConfig()
	cfg.BatchSize = 0
	_, err := p.Run(context.Background(), 2, cfg)
	if err == nil || !strings.Contains(err.Error(), "metro 2") {
		t.Fatalf("validation error does not name the metro: %v", err)
	}
}
