package metascritic

import (
	"metascritic/internal/netsim"
)

// World is the synthetic Internet the library runs against (alias of the
// internal simulator's world, re-exported so applications can generate and
// inspect worlds through the public API).
type World = netsim.World

// WorldConfig configures world generation.
type WorldConfig = netsim.Config

// MetroSpec describes one metro to generate.
type MetroSpec = netsim.MetroSpec

// GenerateWorld builds a synthetic Internet. Zero-valued fields of cfg get
// defaults; cfg.Metros defaults to the paper's six study metros plus
// secondary metros (DefaultMetros(1.0)).
func GenerateWorld(cfg WorldConfig) *World { return netsim.Generate(cfg) }

// DefaultMetros returns the default metro set scaled by the given factor
// (1.0 ≈ paper-like sizes; 0.1–0.3 for laptop-scale experiments).
func DefaultMetros(scale float64) []MetroSpec { return netsim.DefaultMetros(scale) }

// InternetMetros synthesizes a many-metro set sized for roughly nASes
// ASes (heavy-tailed metro sizes over a realistic geography) — the
// configuration for Internet-scale worlds (~100k ASes, worldgen -ases).
func InternetMetros(nASes int) []MetroSpec { return netsim.InternetMetros(nASes) }
