package metascritic

import (
	"math"
	"math/rand"
	"sort"

	"metascritic/internal/asgraph"
	"metascritic/internal/mat"
)

// This file implements the two §5 frameworks for consuming metAScritic's
// inferences:
//
//   - ProgressiveTopology adds links from the highest confidence rating
//     downward, letting applications pick an operating point on the
//     precision/recall curve ("bounding analysis by sweeping through
//     thresholds", §5.1).
//   - ProbabilisticTopology assigns every candidate link a probability of
//     existing derived from a calibration of ratings against held-out
//     measurements, enabling estimation of network properties as random
//     variables ("enabling probabilistic reasoning", §5.1).

// ScoredLink is one candidate link with its confidence rating.
type ScoredLink struct {
	Pair   asgraph.Pair
	Rating float64
	// Measured reports whether the link was directly observed (rating
	// from E_m) rather than inferred by completion.
	Measured bool
}

// ProgressiveTopology orders a result's links by decreasing confidence.
type ProgressiveTopology struct {
	links []ScoredLink
}

// NewProgressiveTopology extracts all positive-rated links of a result,
// sorted by decreasing rating (measured links first at rating 1).
func NewProgressiveTopology(res *Result) *ProgressiveTopology {
	n := len(res.Members)
	var links []ScoredLink
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pr := asgraph.MakePair(res.Members[i], res.Members[j])
			if v, ok := res.Estimate.Value(res.Members[i], res.Members[j]); ok {
				if v > 0 {
					links = append(links, ScoredLink{Pair: pr, Rating: 1, Measured: true})
				}
				continue
			}
			if r := res.Ratings.At(i, j); r > 0 {
				links = append(links, ScoredLink{Pair: pr, Rating: r})
			}
		}
	}
	sort.SliceStable(links, func(a, b int) bool {
		if links[a].Rating != links[b].Rating {
			return links[a].Rating > links[b].Rating
		}
		if links[a].Pair.A != links[b].Pair.A {
			return links[a].Pair.A < links[b].Pair.A
		}
		return links[a].Pair.B < links[b].Pair.B
	})
	return &ProgressiveTopology{links: links}
}

// Len returns the total number of candidate links.
func (p *ProgressiveTopology) Len() int { return len(p.links) }

// AtConfidence returns every link with rating >= thr, most confident
// first. The returned slice aliases internal storage; do not modify.
func (p *ProgressiveTopology) AtConfidence(thr float64) []ScoredLink {
	k := sort.Search(len(p.links), func(i int) bool { return p.links[i].Rating < thr })
	return p.links[:k]
}

// Sweep calls fn at each distinct confidence level from high to low with
// the cumulative link set at that level; fn returning false stops the
// sweep. This is the "reassess findings while sweeping thresholds"
// pattern of §5.1.
func (p *ProgressiveTopology) Sweep(fn func(thr float64, links []ScoredLink) bool) {
	i := 0
	for i < len(p.links) {
		thr := p.links[i].Rating
		j := i
		for j < len(p.links) && p.links[j].Rating == thr {
			j++
		}
		if !fn(thr, p.links[:j]) {
			return
		}
		i = j
	}
}

// CalibrationPoint maps a rating threshold to the empirical precision of
// links at or above it.
type CalibrationPoint struct {
	Threshold float64
	Precision float64
}

// ProbabilisticTopology assigns each candidate link a probability of
// existing, derived from a precision calibration curve.
type ProbabilisticTopology struct {
	links []ScoredLink
	curve []CalibrationPoint // sorted by increasing threshold
}

// NewProbabilisticTopology builds the probabilistic view. The calibration
// curve is estimated from an internal holdout: measured entries are hidden,
// the completion re-run, and the precision of inferred links computed per
// threshold bucket — the "assign each link a probability of existing based
// on its precision at a given threshold" strategy of §5.1.
func (p *Pipeline) NewProbabilisticTopology(res *Result, seed int64) *ProbabilisticTopology {
	prog := NewProgressiveTopology(res)
	curve := p.calibrationCurve(res, seed)
	return &ProbabilisticTopology{links: prog.links, curve: curve}
}

// calibrationCurve estimates precision-at-threshold from a 20% holdout of
// measured entries.
func (p *Pipeline) calibrationCurve(res *Result, seed int64) []CalibrationPoint {
	est := res.Estimate
	rng := rand.New(rand.NewSource(seed))
	ov := mat.NewOverlay(est.Mask)
	type held struct {
		i, j int
		link bool
	}
	var holdout []held
	var pairs [][2]int
	n := est.Mask.N()
	for i := 0; i < n; i++ {
		entries := est.Mask.RowEntries(i)
		rng.Shuffle(len(entries), func(a, b int) { entries[a], entries[b] = entries[b], entries[a] })
		k := len(entries) / 5
		for _, j := range entries[:k] {
			if i < j && ov.Has(i, j) {
				ov.Remove(i, j)
				holdout = append(holdout, held{i, j, est.E.At(i, j) > 0})
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	features := BuildFeatures(p.World.G, res.Members)
	completed := CompleteWithout(est.E, est.Mask, features, pairs, res.Rank, res.Lambda, res.FeatureWeight)

	var curve []CalibrationPoint
	for thr := 0.0; thr <= 0.91; thr += 0.1 {
		tp, fp := 0, 0
		for _, h := range holdout {
			if completed.At(h.i, h.j) < thr {
				continue
			}
			if h.link {
				tp++
			} else {
				fp++
			}
		}
		prec := 0.0
		if tp+fp > 0 {
			prec = float64(tp) / float64(tp+fp)
		}
		curve = append(curve, CalibrationPoint{Threshold: thr, Precision: prec})
	}
	// Enforce monotonicity (isotonic-style): precision-at-threshold should
	// not decrease as the threshold rises; smooth out holdout noise.
	for k := 1; k < len(curve); k++ {
		if curve[k].Precision < curve[k-1].Precision {
			curve[k].Precision = curve[k-1].Precision
		}
	}
	return curve
}

// Curve returns the calibration curve (threshold → precision).
func (t *ProbabilisticTopology) Curve() []CalibrationPoint {
	return append([]CalibrationPoint(nil), t.curve...)
}

// Probability returns the estimated probability that a link with the given
// rating exists: the calibrated precision at the highest threshold the
// rating clears (measured links get 1).
func (t *ProbabilisticTopology) Probability(l ScoredLink) float64 {
	if l.Measured {
		return 1
	}
	if l.Rating <= 0 {
		return 0
	}
	p := 0.0
	for _, c := range t.curve {
		if l.Rating >= c.Threshold {
			p = c.Precision
		}
	}
	return p
}

// Links returns every candidate link with its probability, most probable
// first.
func (t *ProbabilisticTopology) Links() []ScoredLink {
	return append([]ScoredLink(nil), t.links...)
}

// Sample draws a concrete topology: each candidate link is included
// independently with its probability. Measured links are always included.
func (t *ProbabilisticTopology) Sample(rng *rand.Rand) []asgraph.Pair {
	var out []asgraph.Pair
	for _, l := range t.links {
		if rng.Float64() < t.Probability(l) {
			out = append(out, l.Pair)
		}
	}
	return out
}

// ExpectedLinks returns the expected number of existing links (the sum of
// per-link probabilities) — a random-variable estimate of metro
// connectivity size.
func (t *ProbabilisticTopology) ExpectedLinks() float64 {
	var s float64
	for _, l := range t.links {
		s += t.Probability(l)
	}
	return s
}

// EstimateProperty Monte-Carlo-estimates the mean and standard deviation
// of any topology property f over sampled topologies (§5.1's "estimation
// of Internet properties as random variables").
func (t *ProbabilisticTopology) EstimateProperty(samples int, seed int64, f func(links []asgraph.Pair) float64) (mean, std float64) {
	if samples < 1 {
		samples = 1
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, samples)
	for k := range vals {
		vals[k] = f(t.Sample(rng))
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean = sum / float64(samples)
	var varSum float64
	for _, v := range vals {
		d := v - mean
		varSum += d * d
	}
	if samples > 1 {
		std = math.Sqrt(varSum / float64(samples-1))
	}
	return mean, std
}
