package metascritic

import (
	"fmt"
	"math"
)

// Validate rejects configurations that would make a run silently
// misbehave: NaN or out-of-range exploration fractions, non-positive batch
// sizes, negative prior mass, and zero-valued rank settings (a Config
// should start from DefaultConfig, which fills them). Every run entry
// point calls it, so an invalid Config fails fast with a descriptive
// error instead of producing a quietly wrong topology.
func (c Config) Validate() error {
	if math.IsNaN(c.Epsilon) || c.Epsilon < 0 || c.Epsilon > 1 {
		return fmt.Errorf("%w: Epsilon must be in [0,1], got %v", ErrInvalidConfig, c.Epsilon)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("%w: BatchSize must be positive, got %d", ErrInvalidConfig, c.BatchSize)
	}
	if c.MaxMeasurements < 0 {
		return fmt.Errorf("%w: MaxMeasurements must be non-negative, got %d", ErrInvalidConfig, c.MaxMeasurements)
	}
	if math.IsNaN(c.PriorWeight) || c.PriorWeight < 0 {
		return fmt.Errorf("%w: PriorWeight must be a non-negative number, got %v", ErrInvalidConfig, c.PriorWeight)
	}
	if c.Priors != nil {
		for i, v := range c.Priors {
			if math.IsNaN(v) || v < 0 || v > 1 {
				return fmt.Errorf("%w: Priors[%d] must be a success rate in [0,1], got %v", ErrInvalidConfig, i, v)
			}
		}
	}
	if c.BootstrapPerStrategy < 0 {
		return fmt.Errorf("%w: BootstrapPerStrategy must be non-negative, got %d", ErrInvalidConfig, c.BootstrapPerStrategy)
	}
	if c.MaxMetroMembers < 0 {
		return fmt.Errorf("%w: MaxMetroMembers must be non-negative (0 = no cap), got %d", ErrInvalidConfig, c.MaxMetroMembers)
	}
	if c.MeasureWorkers < 0 {
		return fmt.Errorf("%w: MeasureWorkers must be non-negative (0 = GOMAXPROCS, 1 = serial), got %d", ErrInvalidConfig, c.MeasureWorkers)
	}
	if err := c.Rank.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	return nil
}
