package metascritic

// Speculative measurement pipeline: the per-metro loop issues its selected
// traceroute batches through runPlan, which fans the (pure, hash-based)
// traceroute simulations of one batch out across a bounded worker pool and
// then commits the resulting traces into the observation store, the
// selector statistics and the calibration log in the batch's original
// order. Because every mutation (obs.Store.AddTrace, probe.Selector.Report,
// Result.Calibrations, the budget counter) happens on the committing
// goroutine in batch order, a parallel run is byte-identical to the serial
// one — the workers only ever race on the pure simulation. Each committed
// AddTrace also appends the pairs it touched to the store's dirty log, so
// the post-batch estimate refresh (obs.Store.Refresh) re-derives exactly
// the delta this plan committed rather than rescanning all evidence.
//
// Budget under speculation: a batch may be larger than the remaining
// MaxMeasurements budget (the bootstrap plan is not clamped). The
// speculative window is capped at the remaining budget up front — the
// over-budget tail is never launched, never counted against the budget and
// never committed — and the committer re-checks the budget per item, so
// even a speculative trace that did run is discarded rather than committed
// once the budget is exhausted. Cancellation works the same way: workers
// stop claiming new traceroutes, the committer stops committing, and
// whatever speculative traces were in flight are dropped on the floor
// without touching the store.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"metascritic/internal/obs"
	"metascritic/internal/probe"
	"metascritic/internal/traceroute"
)

// MeasureStats counts the work done by the speculative measurement
// pipeline of one metro run. It is surfaced through Result.Timings and
// aggregated across metros by engine.RunStats. The counts are concurrency
// telemetry, not part of the determinism contract: Committed is identical
// between serial and parallel runs, the rest depends on the worker count.
type MeasureStats struct {
	// Workers is the resolved fan-out width (Config.MeasureWorkers, with 0
	// resolved to GOMAXPROCS).
	Workers int
	// Batches is the number of batches that went through the parallel
	// fan-out path (serial runs leave it 0).
	Batches int
	// Launched is the number of traceroutes actually started by fan-out
	// workers (committed + speculative traces later discarded).
	Launched int
	// Committed is the number of measurements committed in order into the
	// store/selector/calibration log. It equals Result.Measurements.
	Committed int
	// Discarded counts batch items that were not committed: the
	// over-budget tail of a speculative window (never launched) plus
	// launched speculative traces dropped by cancellation.
	Discarded int
	// PrefetchedRoutes is the number of distinct uncached destinations
	// warmed in the route cache ahead of fan-outs.
	PrefetchedRoutes int
	// Wall is the wall-clock spent inside runPlan (fan-out + commit).
	Wall time.Duration
}

// Merge folds another run's stats into s (summing counts, keeping the
// widest worker pool) — the engine's batch aggregation primitive.
func (s *MeasureStats) Merge(o MeasureStats) {
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	s.Batches += o.Batches
	s.Launched += o.Launched
	s.Committed += o.Committed
	s.Discarded += o.Discarded
	s.PrefetchedRoutes += o.PrefetchedRoutes
	s.Wall += o.Wall
}

// commitFunc consumes one committed measurement in batch order: the
// findings its trace produced have already been folded into the store.
type commitFunc func(m probe.Measurement, findings []obs.Finding)

// measureWorkers resolves the configured fan-out width.
func measureWorkers(cfg Config) int {
	if cfg.MeasureWorkers > 0 {
		return cfg.MeasureWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// runPlan executes up to *budget measurements of batch, in order, stopping
// early on cancellation. With workers <= 1 it is the exact legacy serial
// loop: run one traceroute, ingest it, commit, repeat. With workers > 1 the
// traceroutes of the speculative window run concurrently while the
// committer ingests and commits them strictly in batch order, so the
// observable state mutations are identical to the serial path.
func (p *Pipeline) runPlan(ctx context.Context, workers int, batch []probe.Measurement, budget *int, st *MeasureStats, commit commitFunc) {
	if len(batch) == 0 || *budget <= 0 || ctx.Err() != nil {
		return
	}
	start := time.Now()
	defer func() { st.Wall += time.Since(start) }()

	if workers <= 1 {
		for _, m := range batch {
			if *budget <= 0 || ctx.Err() != nil {
				return
			}
			*budget--
			tr := p.Engine.RunTarget(m.VP.AS, m.VP.Metro, m.Target.AS, m.Target.Metro)
			st.Committed++
			st.Launched++
			commit(m, p.Store.AddTrace(tr))
		}
		return
	}

	// Speculative window: items beyond the remaining budget could never be
	// committed, so they are not launched — and not counted. The committer
	// below still guards the budget per item, so the invariant "no
	// uncommitted trace is ever counted or stored" holds even if the window
	// were wider.
	window := len(batch)
	if window > *budget {
		st.Discarded += window - *budget
		window = *budget
	}
	st.Batches++

	// Warm the route cache for the batch's distinct destinations with full
	// parallelism before the per-trace fan-out, so workers mostly hit the
	// cache instead of serializing on singleflight propagation.
	dests := make([]int, 0, window)
	for _, m := range batch[:window] {
		dests = append(dests, m.Target.AS)
	}
	st.PrefetchedRoutes += p.Engine.PrefetchRoutes(ctx, dests, workers)

	traces := make([]traceroute.Trace, window)
	done := make([]chan struct{}, window)
	for i := range done {
		done[i] = make(chan struct{})
	}
	nw := workers
	if nw > window {
		nw = window
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= window || ctx.Err() != nil {
					return
				}
				m := batch[i]
				traces[i] = p.Engine.RunTarget(m.VP.AS, m.VP.Metro, m.Target.AS, m.Target.Metro)
				close(done[i])
			}
		}()
	}

	// Ordered commit: every store/selector/calibration mutation happens
	// here, on one goroutine, in batch order.
	committed := 0
	for i := 0; i < window; i++ {
		if *budget <= 0 || ctx.Err() != nil {
			break
		}
		select {
		case <-done[i]:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		*budget--
		st.Committed++
		committed++
		commit(batch[i], p.Store.AddTrace(traces[i]))
	}
	wg.Wait()

	// Account for speculative traces that completed but were not committed
	// (cancellation landed mid-window). done[i] is closed exactly when
	// traces[i] ran.
	launched := 0
	for _, ch := range done {
		select {
		case <-ch:
			launched++
		default:
		}
	}
	st.Launched += launched
	st.Discarded += launched - committed
}
