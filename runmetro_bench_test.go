package metascritic_test

// End-to-end benchmark of the per-metro pipeline, serial vs speculative
// fan-out (measure.go). Each iteration runs over a snapshot of a shared
// seeded pipeline but with a cold traceroute engine, so the measured work
// includes the route propagations a fresh measurement campaign pays — the
// cost the speculative prefetch + fan-out is designed to parallelize.
// Scale with METASCRITIC_BENCH_SCALE like the experiment benchmarks.
//
// Comparing BENCH_PR*.json wall-clock across recording sessions is
// unreliable: the PR5→PR6 workers=1 "regression" (183.6 → 233.7 ms/op)
// reproduces as 234 vs 254 ms when both trees are re-run back to back on
// one machine, with identical allocs/op (207,318 vs 207,325) — session
// variance, not a code change. Trust allocs/op across sessions, trust
// ns/op only within one (which `make bench` now guarantees by embedding
// the predecessor report as the baseline; see DESIGN.md §7, PR 7).

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"metascritic"
	"metascritic/internal/netsim"
	"metascritic/internal/traceroute"
)

var (
	rmOnce sync.Once
	rmPipe *metascritic.Pipeline
	rmCfg  metascritic.Config
)

func runMetroBenchSetup(b *testing.B) (*metascritic.Pipeline, metascritic.Config) {
	b.Helper()
	rmOnce.Do(func() {
		scale := 0.15
		if s := os.Getenv("METASCRITIC_BENCH_SCALE"); s != "" {
			if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
				scale = v
			}
		}
		w := netsim.Generate(netsim.Config{Seed: 1, Metros: netsim.DefaultMetros(scale)})
		rmPipe = metascritic.NewPipeline(w)
		rng := rand.New(rand.NewSource(1))
		rmPipe.SeedPublicMeasurements(6, rng)

		rmCfg = metascritic.DefaultConfig()
		rmCfg.MaxMeasurements = int(40000 * scale)
		rmCfg.BatchSize = 200
		rmCfg.Rank.MaxRank = 12
		rmCfg.Rank.Iterations = 6
	})
	return rmPipe, rmCfg
}

func BenchmarkRunMetro(b *testing.B) {
	base, cfg := runMetroBenchSetup(b)
	metro := base.World.PrimaryMetros()[0]
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := cfg
			c.MeasureWorkers = workers
			for i := 0; i < b.N; i++ {
				// Cold engine per iteration: route propagation happens
				// inside the timed region, as in a fresh campaign.
				p := base.Snapshot()
				p.Engine = traceroute.NewEngine(base.World)
				res, err := p.Run(context.Background(), metro, c)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					ms := res.Timings.Measure
					b.ReportMetric(float64(res.Measurements), "measurements")
					b.ReportMetric(float64(ms.PrefetchedRoutes), "prefetched-routes")
				}
			}
		})
	}
}
